module sunuintah

go 1.22
