// Operations: the production-runtime features around the timestep loop —
// checkpoint/restart, measured-cost load rebalancing, and regridding — all
// exercised in one run with the solution verified after each disruption.
//
// The script:
//
//  1. run 2 steps on a deliberately skewed patch assignment,
//
//  2. auto-rebalance from measured per-patch kernel costs and run 2 more,
//
//  3. write a checkpoint, restore it into a fresh simulation,
//
//  4. regrid to a finer patch layout, run 2 final steps,
//
//  5. verify the result equals an uninterrupted serial reference.
//
//     go run ./examples/operations
package main

import (
	"bytes"
	"fmt"
	"log"

	"sunuintah/internal/burgers"
	"sunuintah/internal/core"
	"sunuintah/internal/field"
	"sunuintah/internal/grid"
	"sunuintah/internal/loadbalancer"
	"sunuintah/internal/scheduler"
	"sunuintah/internal/taskgraph"
)

func main() {
	cells := grid.IV(16, 16, 32)
	patches := grid.IV(2, 2, 4) // 16 patches
	u := burgers.NewULabel()
	dt := burgers.StableDt(1.0/16, 1.0/16, 1.0/32)
	prob := core.Problem{
		Tasks:   []*taskgraph.Task{burgers.NewAdvanceTask(u, burgers.FastExpLib, false)},
		Initial: map[*taskgraph.Label]func(x, y, z float64) float64{u: burgers.Initial},
		Dt:      dt,
	}
	newSim := func() *core.Simulation {
		s, err := core.NewSimulation(core.Config{
			Cells:       cells,
			PatchCounts: patches,
			NumCGs:      4,
			Scheduler:   scheduler.Config{Mode: scheduler.ModeAsync, Functional: true},
		}, prob)
		if err != nil {
			log.Fatal(err)
		}
		return s
	}

	s := newSim()

	// 1. Skew the assignment: rank 0 carries 13 of 16 patches.
	skew := make([]int, 16)
	skew[13], skew[14], skew[15] = 1, 2, 3
	if err := s.Rebalance(skew); err != nil {
		log.Fatal(err)
	}
	r1, err := s.Run(2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("skewed assignment      %.4f s/step\n", float64(r1.PerStep))

	// 2. Auto-rebalance on the measured per-patch kernel costs.
	assign, err := s.AutoRebalance()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("auto-rebalanced        patches per rank: %v\n", loadbalancer.Counts(assign, 4))
	r2, err := s.Run(2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("balanced               %.4f s/step (%.2fx faster)\n",
		float64(r2.PerStep), float64(r1.PerStep)/float64(r2.PerStep))

	// 3. Checkpoint at step 4 and restore into a fresh simulation.
	var ck bytes.Buffer
	if err := s.WriteCheckpoint(&ck); err != nil {
		log.Fatal(err)
	}
	ckBytes := ck.Len() // the decoder drains the buffer below
	s2 := newSim()
	if err := s2.RestoreCheckpoint(&ck); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint             %.1f KB, restored into a fresh simulation\n",
		float64(ckBytes)/1024)

	// 4. Regrid: re-partition the same cells into 32 smaller patches.
	if err := s2.Regrid(grid.IV(2, 4, 4)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("regridded              %d patches of %v\n",
		s2.Level.Layout.NumPatches(), s2.Level.Layout.PatchSize)
	if _, err := s2.Run(2); err != nil {
		log.Fatal(err)
	}

	// 5. Verify against an uninterrupted serial reference of all 6 steps.
	lv, _ := grid.NewUnitCubeLevel(cells, patches)
	ref := burgers.SerialSolve(lv, 6, dt, burgers.FastExpLib)
	got, err := s2.GatherField(u)
	if err != nil {
		log.Fatal(err)
	}
	d := field.MaxAbsDiff(got, ref, lv.Layout.Domain)
	fmt.Printf("verification           max diff vs uninterrupted reference = %.2e\n", d)
	if d > 1e-13 {
		log.Fatal("solution drifted through the operations")
	}
	fmt.Println("ok")
}
