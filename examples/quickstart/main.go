// Quickstart: the smallest complete use of the runtime.
//
// It declares the Burgers timestep task through the public task-graph API,
// runs six timesteps of a 32^3 problem on four simulated core groups with
// the asynchronous Sunway scheduler, and verifies the computed field
// against the exact manufactured solution.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"sunuintah/internal/burgers"
	"sunuintah/internal/core"
	"sunuintah/internal/grid"
	"sunuintah/internal/scheduler"
	"sunuintah/internal/taskgraph"
)

func main() {
	// The solution variable, with its exact-solution Dirichlet boundary
	// condition attached.
	u := burgers.NewULabel()

	// A problem is a list of coarse tasks plus initial conditions. The
	// Burgers advance task requires u from the old data warehouse with one
	// ghost layer and computes u into the new warehouse on the CPEs.
	prob := core.Problem{
		Tasks: []*taskgraph.Task{
			burgers.NewAdvanceTask(u, burgers.FastExpLib, false),
		},
		Initial: map[*taskgraph.Label]func(x, y, z float64) float64{
			u: burgers.Initial,
		},
		Dt: burgers.StableDt(1.0/32, 1.0/32, 1.0/32),
	}

	// Machine and scheduler configuration: a 32^3 grid split into eight
	// 16^3 patches over four core groups, asynchronous scheduling,
	// functional (real numerics) mode.
	cfg := core.Config{
		Cells:       grid.IV(32, 32, 32),
		PatchCounts: grid.IV(2, 2, 2),
		NumCGs:      4,
		Scheduler: scheduler.Config{
			Mode:       scheduler.ModeAsync,
			Functional: true,
		},
	}

	sim, err := core.NewSimulation(cfg, prob)
	if err != nil {
		log.Fatal(err)
	}
	const steps = 6
	res, err := sim.Run(steps)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ran %d steps in %.4f simulated seconds (%.4f s/step)\n",
		res.Steps, float64(res.WallTime), float64(res.PerStep))
	fmt.Printf("scheduler moved %.1f MB of ghost data over MPI and offloaded %d kernels\n",
		float64(res.BytesOnWire)/1e6, res.Counters.Offloads)

	// Verify against the exact solution u = phi(x,t) phi(y,t) phi(z,t).
	f, err := sim.GatherField(u)
	if err != nil {
		log.Fatal(err)
	}
	finalT := steps * prob.Dt
	maxErr := 0.0
	sim.Level.Layout.Domain.ForEach(func(c grid.IVec) {
		x, y, z := sim.Level.CellCenter(c)
		if e := math.Abs(f.At(c) - burgers.Exact(x, y, z, finalT)); e > maxErr {
			maxErr = e
		}
	})
	fmt.Printf("max error vs exact solution at t=%.4f: %.3e\n", finalT, maxErr)
	if maxErr > 0.05 {
		log.Fatal("verification failed")
	}
	fmt.Println("ok")
}
