// Asyncoverlap: makes the asynchronous scheduler's central mechanism
// visible. It runs the same small problem under the synchronous and the
// asynchronous MPE schedulers with tracing enabled, then reports how much
// MPE-side work (ghost packing/unpacking, warehouse touches, boundary
// fills) each one managed to hide under running CPE kernels, and prints
// the first part of each timeline.
//
//	go run ./examples/asyncoverlap
package main

import (
	"fmt"
	"log"
	"os"

	"sunuintah/internal/burgers"
	"sunuintah/internal/core"
	"sunuintah/internal/grid"
	"sunuintah/internal/scheduler"
	"sunuintah/internal/taskgraph"
	"sunuintah/internal/trace"
)

func run(mode scheduler.Mode) (*core.Result, *trace.Recorder) {
	u := burgers.NewULabel()
	rec := trace.New()
	prob := core.Problem{
		Tasks: []*taskgraph.Task{burgers.NewAdvanceTask(u, burgers.FastExpLib, false)},
		Dt:    1e-5,
	}
	cfg := core.Config{
		Cells:       grid.IV(128, 128, 512),
		PatchCounts: grid.IV(2, 2, 2),
		NumCGs:      2,
		Scheduler:   scheduler.Config{Mode: mode, Trace: rec},
	}
	sim, err := core.NewSimulation(cfg, prob)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(2)
	if err != nil {
		log.Fatal(err)
	}
	return res, rec
}

func main() {
	fmt.Println("same problem, two schedulers (2 CGs, 4 patches each, 2 steps):")
	fmt.Println()

	type outcome struct {
		name    string
		res     *core.Result
		rec     *trace.Recorder
		overlap float64
	}
	var outs []outcome
	for _, m := range []scheduler.Mode{scheduler.ModeSync, scheduler.ModeAsync} {
		res, rec := run(m)
		ov := float64(rec.OverlapTime(0, trace.KindKernel, trace.KindMPEWork)) +
			float64(rec.OverlapTime(0, trace.KindKernel, trace.KindComm))
		outs = append(outs, outcome{m.String(), res, rec, ov})
	}

	for _, o := range outs {
		st := o.res.RankStats[0]
		fmt.Printf("%-6s  %.4f s/step | MPE work %.4fs, comm %.4fs, spin-on-flag %.4fs, idle %.4fs\n",
			o.name, float64(o.res.PerStep), float64(st.MPEWorkTime),
			float64(st.CommTime), float64(st.KernelWaitTime), float64(st.IdleTime))
		fmt.Printf("        MPE work overlapped with running kernels: %.4f s\n", o.overlap)
	}
	sync, async := outs[0], outs[1]
	imp := (float64(sync.res.PerStep) - float64(async.res.PerStep)) / float64(async.res.PerStep) * 100
	fmt.Printf("\nasynchronous improvement (T_sync - T_async)/T_async = %.1f%%\n", imp)
	fmt.Printf("the synchronous scheduler hides %.4fs of MPE work; the asynchronous one %.4fs\n\n",
		sync.overlap, async.overlap)

	fmt.Println("start of the asynchronous rank-0 timeline (ms):")
	async.rec.WriteTimeline(os.Stdout, 0, 25)
}
