// Heat3d: a second PDE on the same runtime, demonstrating that the ported
// framework is not Burgers-specific. It solves the 3-D heat equation
//
//	du/dt = alpha * Lap(u)
//
// with the manufactured solution u = exp(-3 alpha pi^2 t) sin(pi x) sin(pi
// y) sin(pi z). The advance kernel comes from internal/heat3d — the same
// first-class task type the workload scenario generator schedules per
// patch — and a user-defined reduction task tracks the decaying peak
// amplitude each step under the asynchronous Sunway scheduler.
//
//	go run ./examples/heat3d
package main

import (
	"fmt"
	"log"
	"math"

	"sunuintah/internal/core"
	"sunuintah/internal/field"
	"sunuintah/internal/grid"
	"sunuintah/internal/heat3d"
	"sunuintah/internal/mpisim"
	"sunuintah/internal/scheduler"
	"sunuintah/internal/taskgraph"
)

func main() {
	cells := grid.IV(32, 32, 32)
	dx := 1.0 / float64(cells.X)
	dt := heat3d.StableDt(dx, dx, dx)

	u := heat3d.NewLabel()
	advance := heat3d.NewAdvanceTask(u)

	// A reduction task: every step, all ranks agree on the global peak
	// temperature — an "MPI reduce task" the MPE executes (Section V-C
	// step 3d).
	var peaks []float64
	maxTemp := &taskgraph.Task{
		Name:     "heat.maxTemp",
		Kind:     taskgraph.KindReduction,
		Requires: []taskgraph.Dep{{Label: u, DW: taskgraph.NewDW}},
		Reduce: &taskgraph.ReduceSpec{
			Op: mpisim.OpMax,
			Local: func(p *grid.Patch, f *field.Cell) float64 {
				return field.MaxAbs(f, p.Box)
			},
			Result: func(step int, v float64) {
				if step >= len(peaks) {
					peaks = append(peaks, v)
				}
			},
		},
	}

	prob := core.Problem{
		Tasks: []*taskgraph.Task{advance, maxTemp},
		Initial: map[*taskgraph.Label]func(x, y, z float64) float64{
			u: heat3d.Initial,
		},
		Dt: dt,
	}
	cfg := core.Config{
		Cells:       cells,
		PatchCounts: grid.IV(2, 2, 2),
		NumCGs:      4,
		Scheduler:   scheduler.Config{Mode: scheduler.ModeAsync, Functional: true},
	}

	sim, err := core.NewSimulation(cfg, prob)
	if err != nil {
		log.Fatal(err)
	}
	const steps = 10
	res, err := sim.Run(steps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("heat3d: %d steps, %.4f simulated s/step\n", res.Steps, float64(res.PerStep))

	fmt.Println("step  measured peak   analytic peak")
	for s, v := range peaks {
		t := float64(s+1) * dt
		analytic := math.Exp(-3 * heat3d.Alpha * math.Pi * math.Pi * t)
		fmt.Printf("%4d  %13.6f   %13.6f\n", s, v, analytic)
	}

	f, err := sim.GatherField(u)
	if err != nil {
		log.Fatal(err)
	}
	finalT := float64(steps) * dt
	maxErr := 0.0
	sim.Level.Layout.Domain.ForEach(func(c grid.IVec) {
		x, y, z := sim.Level.CellCenter(c)
		if e := math.Abs(f.At(c) - heat3d.Exact(x, y, z, finalT)); e > maxErr {
			maxErr = e
		}
	})
	fmt.Printf("max error vs analytic solution: %.3e\n", maxErr)
	if maxErr > 5e-3 {
		log.Fatal("verification failed")
	}
	fmt.Println("ok")
}
