// Heat3d: a second PDE on the same runtime, demonstrating that the ported
// framework is not Burgers-specific. It solves the 3-D heat equation
//
//	du/dt = alpha * Lap(u)
//
// with the manufactured solution u = exp(-3 alpha pi^2 t) sin(pi x) sin(pi
// y) sin(pi z), using a user-defined offloadable kernel, a user-defined
// reduction task that tracks the decaying peak amplitude each step, and
// the asynchronous Sunway scheduler.
//
//	go run ./examples/heat3d
package main

import (
	"fmt"
	"log"
	"math"

	"sunuintah/internal/core"
	"sunuintah/internal/field"
	"sunuintah/internal/grid"
	"sunuintah/internal/mpisim"
	"sunuintah/internal/scheduler"
	"sunuintah/internal/taskgraph"
)

const alpha = 0.05

func exact(x, y, z, t float64) float64 {
	return math.Exp(-3*alpha*math.Pi*math.Pi*t) *
		math.Sin(math.Pi*x) * math.Sin(math.Pi*y) * math.Sin(math.Pi*z)
}

// heatKernel is the user-provided tile kernel: a 7-point Laplacian with
// forward Euler, written against the LDM tile context exactly as the
// Burgers kernel is.
func heatKernel(u *taskgraph.Label, dt float64) func(tc *taskgraph.TileContext) {
	return func(tc *taskgraph.TileContext) {
		in := tc.In[u].Data
		out := tc.Out[u].Data
		dx := tc.Level.Spacing[0]
		dy := tc.Level.Spacing[1]
		dz := tc.Level.Spacing[2]
		rdx2, rdy2, rdz2 := 1/(dx*dx), 1/(dy*dy), 1/(dz*dz)
		tc.Tile.Box.ForEach(func(c grid.IVec) {
			v := in.At(c)
			lap := (in.At(c.Add(grid.IV(1, 0, 0)))+in.At(c.Sub(grid.IV(1, 0, 0)))-2*v)*rdx2 +
				(in.At(c.Add(grid.IV(0, 1, 0)))+in.At(c.Sub(grid.IV(0, 1, 0)))-2*v)*rdy2 +
				(in.At(c.Add(grid.IV(0, 0, 1)))+in.At(c.Sub(grid.IV(0, 0, 1)))-2*v)*rdz2
			out.Set(c, v+dt*alpha*lap)
		})
	}
}

func main() {
	cells := grid.IV(32, 32, 32)
	dx := 1.0 / float64(cells.X)
	dt := 0.2 * dx * dx / (6 * alpha)

	u := taskgraph.NewLabel("temperature", exact)

	advance := &taskgraph.Task{
		Name: "heat.advance",
		Kind: taskgraph.KindOffload,
		Requires: []taskgraph.Dep{
			{Label: u, DW: taskgraph.OldDW, Ghost: 1},
		},
		Computes: []taskgraph.Dep{
			{Label: u, DW: taskgraph.NewDW},
		},
		Kernel: &taskgraph.Kernel{
			FlopsPerCell: 14,   // 7-point stencil: no exponentials
			Weight:       0.05, // far cheaper per cell than Burgers
			Compute:      heatKernel(u, dt),
		},
	}

	// A reduction task: every step, all ranks agree on the global peak
	// temperature — an "MPI reduce task" the MPE executes (Section V-C
	// step 3d).
	var peaks []float64
	maxTemp := &taskgraph.Task{
		Name:     "heat.maxTemp",
		Kind:     taskgraph.KindReduction,
		Requires: []taskgraph.Dep{{Label: u, DW: taskgraph.NewDW}},
		Reduce: &taskgraph.ReduceSpec{
			Op: mpisim.OpMax,
			Local: func(p *grid.Patch, f *field.Cell) float64 {
				return field.MaxAbs(f, p.Box)
			},
			Result: func(step int, v float64) {
				if step >= len(peaks) {
					peaks = append(peaks, v)
				}
			},
		},
	}

	prob := core.Problem{
		Tasks: []*taskgraph.Task{advance, maxTemp},
		Initial: map[*taskgraph.Label]func(x, y, z float64) float64{
			u: func(x, y, z float64) float64 { return exact(x, y, z, 0) },
		},
		Dt: dt,
	}
	cfg := core.Config{
		Cells:       cells,
		PatchCounts: grid.IV(2, 2, 2),
		NumCGs:      4,
		Scheduler:   scheduler.Config{Mode: scheduler.ModeAsync, Functional: true},
	}

	sim, err := core.NewSimulation(cfg, prob)
	if err != nil {
		log.Fatal(err)
	}
	const steps = 10
	res, err := sim.Run(steps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("heat3d: %d steps, %.4f simulated s/step\n", res.Steps, float64(res.PerStep))

	fmt.Println("step  measured peak   analytic peak")
	for s, v := range peaks {
		t := float64(s+1) * dt
		analytic := math.Exp(-3 * alpha * math.Pi * math.Pi * t)
		fmt.Printf("%4d  %13.6f   %13.6f\n", s, v, analytic)
	}

	f, err := sim.GatherField(u)
	if err != nil {
		log.Fatal(err)
	}
	finalT := steps * dt
	maxErr := 0.0
	sim.Level.Layout.Domain.ForEach(func(c grid.IVec) {
		x, y, z := sim.Level.CellCenter(c)
		if e := math.Abs(f.At(c) - exact(x, y, z, finalT)); e > maxErr {
			maxErr = e
		}
	})
	fmt.Printf("max error vs analytic solution: %.3e\n", maxErr)
	if maxErr > 5e-3 {
		log.Fatal("verification failed")
	}
	fmt.Println("ok")
}
