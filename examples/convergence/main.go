// Convergence: a numerical-verification study of the distributed solver.
// The Burgers discretisation (backward differences in space, forward Euler
// in time) is formally first-order accurate; this example runs the full
// scheduled, offloaded, message-passing solver at increasing resolutions
// to a fixed final time and estimates the observed convergence order
// against the exact manufactured solution.
//
//	go run ./examples/convergence
package main

import (
	"fmt"
	"log"
	"math"

	"sunuintah/internal/burgers"
	"sunuintah/internal/core"
	"sunuintah/internal/grid"
	"sunuintah/internal/scheduler"
	"sunuintah/internal/taskgraph"
)

func solveError(n int, finalT float64) float64 {
	u := burgers.NewULabel()
	cells := grid.IV(n, n, n)
	dx := 1.0 / float64(n)
	dt := burgers.StableDt(dx, dx, dx)
	steps := int(math.Ceil(finalT / dt))
	dt = finalT / float64(steps)

	prob := core.Problem{
		Tasks:   []*taskgraph.Task{burgers.NewAdvanceTask(u, burgers.FastExpLib, true)},
		Initial: map[*taskgraph.Label]func(x, y, z float64) float64{u: burgers.Initial},
		Dt:      dt,
	}
	cfg := core.Config{
		Cells:       cells,
		PatchCounts: grid.IV(2, 2, 2),
		NumCGs:      8,
		Scheduler:   scheduler.Config{Mode: scheduler.ModeAsync, SIMD: true, Functional: true},
	}
	sim, err := core.NewSimulation(cfg, prob)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sim.Run(steps); err != nil {
		log.Fatal(err)
	}
	f, err := sim.GatherField(u)
	if err != nil {
		log.Fatal(err)
	}
	maxErr := 0.0
	sim.Level.Layout.Domain.ForEach(func(c grid.IVec) {
		x, y, z := sim.Level.CellCenter(c)
		if e := math.Abs(f.At(c) - burgers.Exact(x, y, z, finalT)); e > maxErr {
			maxErr = e
		}
	})
	return maxErr
}

func main() {
	const finalT = 0.02
	fmt.Printf("convergence of the scheduled distributed solver to the exact solution at t=%.3f\n\n", finalT)
	fmt.Printf("%6s %14s %10s\n", "n", "max error", "order")
	var prevErr float64
	prevN := 0
	for _, n := range []int{8, 16, 32, 48} {
		e := solveError(n, finalT)
		order := "-"
		if prevN > 0 {
			order = fmt.Sprintf("%.2f", math.Log(prevErr/e)/math.Log(float64(n)/float64(prevN)))
		}
		fmt.Printf("%6d %14.6e %10s\n", n, e, order)
		prevErr, prevN = e, n
	}
	fmt.Println("\nthe scheme is first order; sharp wave fronts (width ~nu/0.5 = 0.02)")
	fmt.Println("depress the observed order on grids that under-resolve them.")
}
