// Scalingstudy: a miniature of the paper's Section VII-B strong-scaling
// experiment. It runs one problem across increasing core-group counts in
// timing-only mode, for both the synchronous and asynchronous schedulers,
// and prints wall times, speed-ups and strong-scaling efficiencies — the
// data behind Figure 5 and Table V.
//
//	go run ./examples/scalingstudy [problem]
package main

import (
	"fmt"
	"log"
	"os"

	"sunuintah/internal/experiments"
)

func main() {
	name := "32x64x512"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	prob, err := experiments.ProblemByName(name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("strong scaling of %s (grid %v, %d steps per run)\n\n",
		prob.Name, prob.GridSize, experiments.Steps)

	sweep := experiments.NewSweep(experiments.Options{})
	fmt.Printf("%6s  %14s %9s %6s   %14s %9s %6s\n",
		"CGs", "sync s/step", "speedup", "eff", "async s/step", "speedup", "eff")

	var baseSync, baseAsync float64
	baseCGs := prob.MinCGs
	for _, cgs := range experiments.CGCounts {
		if cgs < prob.MinCGs {
			continue
		}
		vs, _ := experiments.VariantByName("acc_simd.sync")
		va, _ := experiments.VariantByName("acc_simd.async")
		rs, err := sweep.Run(prob, cgs, vs)
		if err != nil {
			log.Fatal(err)
		}
		ra, err := sweep.Run(prob, cgs, va)
		if err != nil {
			log.Fatal(err)
		}
		ts, ta := rs.PerStepSeconds(), ra.PerStepSeconds()
		if cgs == baseCGs {
			baseSync, baseAsync = ts, ta
		}
		fmt.Printf("%6d  %14.4f %8.2fx %5.0f%%   %14.4f %8.2fx %5.0f%%\n",
			cgs,
			ts, baseSync/ts, experiments.StrongScalingEfficiency(baseSync, baseCGs, ts, cgs),
			ta, baseAsync/ta, experiments.StrongScalingEfficiency(baseAsync, baseCGs, ta, cgs))
	}
	fmt.Printf("\nasync-over-sync improvement at each scale is Table VI/VII's metric;\n")
	fmt.Printf("run 'go run ./cmd/sunbench table6 table7' for the full matrices.\n")
}
