// Advection: the linear transport equation on the ported runtime,
//
//	dq/dt + a . grad(q) = 0
//
// solved with the first-order upwind kernel from internal/advection — a
// first-class scheduled task type, selectable per patch by the workload
// scenario generator's physics mixtures. A Gaussian pulse rides the
// constant velocity field across the periodic-free domain; the scheduled
// run is verified against the package's serial reference solver, which
// must agree bit for bit.
//
//	go run ./examples/advection
package main

import (
	"fmt"
	"log"
	"math"

	"sunuintah/internal/advection"
	"sunuintah/internal/core"
	"sunuintah/internal/grid"
	"sunuintah/internal/scheduler"
	"sunuintah/internal/taskgraph"
)

func main() {
	cells := grid.IV(32, 32, 32)
	dx := 1.0 / float64(cells.X)

	v := advection.DefaultVelocity
	dt := v.StableDt(dx, dx, dx)
	q := v.NewLabel()

	prob := core.Problem{
		Tasks: []*taskgraph.Task{v.NewAdvanceTask(q)},
		Initial: map[*taskgraph.Label]func(x, y, z float64) float64{
			q: v.Initial,
		},
		Dt: dt,
	}
	cfg := core.Config{
		Cells:       cells,
		PatchCounts: grid.IV(2, 2, 2),
		NumCGs:      4,
		Scheduler:   scheduler.Config{Mode: scheduler.ModeAsync, Functional: true},
	}

	sim, err := core.NewSimulation(cfg, prob)
	if err != nil {
		log.Fatal(err)
	}
	const steps = 10
	res, err := sim.Run(steps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("advection: %d steps, %.4f simulated s/step\n", res.Steps, float64(res.PerStep))

	got, err := sim.GatherField(q)
	if err != nil {
		log.Fatal(err)
	}

	// The scheduled run must reproduce the serial reference solver bit
	// for bit: same kernel, same order of operations per cell.
	want := v.SerialSolve(sim.Level, steps, dt)
	maxDiff := 0.0
	sim.Level.Layout.Domain.ForEach(func(c grid.IVec) {
		if d := math.Abs(got.At(c) - want.At(c)); d > maxDiff {
			maxDiff = d
		}
	})
	fmt.Printf("max |scheduled - serial|: %.3g\n", maxDiff)
	if maxDiff != 0 {
		log.Fatal("scheduled run diverged from the serial reference")
	}

	// And it should still track the analytic transported pulse.
	finalT := float64(steps) * dt
	maxErr := 0.0
	sim.Level.Layout.Domain.ForEach(func(c grid.IVec) {
		x, y, z := sim.Level.CellCenter(c)
		if e := math.Abs(got.At(c) - v.Exact(x, y, z, finalT)); e > maxErr {
			maxErr = e
		}
	})
	fmt.Printf("max error vs analytic solution: %.3e\n", maxErr)
	// First-order upwind smears the pulse, so the analytic comparison is
	// a sanity bound, not a convergence claim — the serial-reference
	// bit-identity above is the real verification.
	if maxErr > 0.15 {
		log.Fatal("verification failed")
	}
	fmt.Println("ok")
}
