// Command taskgraphviz compiles a rank's portion of the Burgers task graph
// and emits it as Graphviz DOT: task objects as nodes, intra-step
// dependencies and MPI edges as arrows. Useful for inspecting how the
// distributed graph decomposes across ranks.
//
// Usage:
//
//	taskgraphviz [-cells AxBxC] [-patches AxBxC] [-ranks N] [-rank R] > graph.dot
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"sunuintah/internal/burgers"
	"sunuintah/internal/grid"
	"sunuintah/internal/loadbalancer"
	"sunuintah/internal/taskgraph"
)

func parseIVec(s string) (grid.IVec, error) {
	parts := strings.Split(s, "x")
	if len(parts) != 3 {
		return grid.IVec{}, fmt.Errorf("want AxBxC, got %q", s)
	}
	var v [3]int
	for i, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n <= 0 {
			return grid.IVec{}, fmt.Errorf("bad component %q", p)
		}
		v[i] = n
	}
	return grid.IV(v[0], v[1], v[2]), nil
}

func main() {
	cellsFlag := flag.String("cells", "32x32x32", "global grid size")
	patchesFlag := flag.String("patches", "2x2x2", "patch layout")
	ranks := flag.Int("ranks", 2, "number of ranks")
	rank := flag.Int("rank", 0, "rank whose graph portion to dump")
	flag.Parse()

	cells, err := parseIVec(*cellsFlag)
	if err != nil {
		fatal(err)
	}
	patches, err := parseIVec(*patchesFlag)
	if err != nil {
		fatal(err)
	}
	level, err := grid.NewUnitCubeLevel(cells, patches)
	if err != nil {
		fatal(err)
	}
	assign, err := loadbalancer.Assign(loadbalancer.Block, level.Layout.NumPatches(), *ranks)
	if err != nil {
		fatal(err)
	}
	u := burgers.NewULabel()
	tasks := []*taskgraph.Task{burgers.NewAdvanceTask(u, burgers.FastExpLib, false)}
	g, err := taskgraph.Compile(level, tasks, assign, *rank)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("// task graph of rank %d/%d: %d objects, %d recv edges, %d send edges\n",
		*rank, *ranks, len(g.Objects), len(g.Recvs), len(g.Sends))
	fmt.Println("digraph taskgraph {")
	fmt.Println("  rankdir=LR;")
	fmt.Println("  node [shape=box, fontname=\"monospace\"];")
	for _, o := range g.Objects {
		label := o.Task.Name
		if o.Patch != nil {
			label = fmt.Sprintf("%s\\npatch %d %v", o.Task.Name, o.Patch.ID, o.Patch.Box.Size())
		}
		fmt.Printf("  obj%d [label=\"%s\"];\n", o.Index, label)
		for _, d := range o.Downstream {
			fmt.Printf("  obj%d -> obj%d;\n", o.Index, d.Index)
		}
	}
	for i, e := range g.Recvs {
		fmt.Printf("  recv%d [label=\"recv %s\\n%v <- rank %d\\n%d B\", shape=ellipse, color=blue];\n",
			i, e.Label.Name(), e.Dst.ID, e.SrcRank, e.Bytes)
		for _, o := range e.DstObjs {
			fmt.Printf("  recv%d -> obj%d [color=blue];\n", i, o.Index)
		}
	}
	for i, e := range g.Sends {
		fmt.Printf("  send%d [label=\"send %s\\n%v -> rank %d\\n%d B\", shape=ellipse, color=red];\n",
			i, e.Label.Name(), e.Src.ID, e.DstRank, e.Bytes)
	}
	fmt.Println("}")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "taskgraphviz:", err)
	os.Exit(1)
}
