package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"sunuintah/internal/experiments"
	"sunuintah/internal/jobstore"
	"sunuintah/internal/obs"
	"sunuintah/internal/runner"
)

// Live progress streaming: GET /jobs/{id}/events serves a Server-Sent
// Events stream of a job's per-rank-step progress. Event types:
//
//	state    initial snapshot: {"id","state","spec"}
//	progress one rank finished one timestep (obs.ProgressEvent JSON)
//	dropped  this subscriber lost N events to backpressure
//	done     terminal state reached; the stream closes after this
//
// Keep-alive comments (": keep-alive") pace idle streams. The stream
// rides a bounded ring per subscriber: a slow consumer loses events —
// accounted in "dropped" frames — but never blocks the simulation or the
// publisher. The terminal transition is observed by the heartbeat poll,
// so "done" arrives within one heartbeat of the job finishing.

// progressTopic maps an accepted spec to the bus topic Exec publishes
// under. It mirrors startJob's repeat-seed stamping: the first repeat of
// a noisy spec runs with Seed 1, so the stream follows that repeat.
func progressTopic(spec runner.Spec) string {
	if spec.Noise > 0 {
		spec.Seed = 1
	}
	return spec.Hash()
}

// sseEvent writes one SSE frame and flushes it through to the client.
func sseEvent(w http.ResponseWriter, f http.Flusher, event string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
		return err
	}
	f.Flush()
	return nil
}

// sseState is the payload of "state" and "done" frames.
type sseState struct {
	ID    string          `json:"id"`
	State runner.JobState `json:"state"`
	Spec  string          `json:"spec"`
	Error string          `json:"error,omitempty"`
}

func (s *server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	var cp apiJob
	if ok {
		cp = *j
	}
	s.mu.Unlock()
	if !ok {
		s.writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	f, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	if err := sseEvent(w, f, "state", sseState{ID: cp.ID, State: cp.State, Spec: cp.Spec.String()}); err != nil {
		return
	}
	if jobstore.Terminal(cp.State) {
		sseEvent(w, f, "done", sseState{ID: cp.ID, State: cp.State, Spec: cp.Spec.String(), Error: cp.Error})
		return
	}

	// Subscribe before anything else so no progress window is missed; the
	// heartbeat poll below catches a terminal transition that raced the
	// snapshot above.
	bus := experiments.Progress()
	sub := bus.Subscribe(progressTopic(cp.Spec), 256)
	defer bus.Unsubscribe(sub)

	hb := s.cfg.heartbeat
	if hb <= 0 {
		hb = defaultHeartbeat
	}
	ticker := time.NewTicker(hb)
	defer ticker.Stop()

	// writeProgress emits one delivered event, preceded by its loss
	// accounting when the ring dropped events since the last delivery.
	writeProgress := func(ev obs.ProgressEvent) error {
		if ev.Dropped > 0 {
			if err := sseEvent(w, f, "dropped", map[string]uint64{"dropped": ev.Dropped}); err != nil {
				return err
			}
		}
		return sseEvent(w, f, "progress", ev)
	}

	for {
		select {
		case ev, ok := <-sub.C:
			if !ok {
				return
			}
			if writeProgress(ev) != nil {
				return
			}
		case <-ticker.C:
			s.mu.Lock()
			j, live := s.jobs[id]
			var st runner.JobState
			var errMsg string
			if live {
				st = j.State
				errMsg = j.Error
			}
			s.mu.Unlock()
			if !live || jobstore.Terminal(st) {
				// Terminal means the execution has returned, so every
				// progress event it published is already in the ring:
				// drain the residue so the ticker racing the delivery
				// channel cannot swallow the tail of the stream.
				for drained := false; !drained; {
					select {
					case ev, ok := <-sub.C:
						if !ok || writeProgress(ev) != nil {
							return
						}
					default:
						drained = true
					}
				}
				sseEvent(w, f, "done", sseState{ID: id, State: st, Spec: cp.Spec.String(), Error: errMsg})
				return
			}
			if _, err := fmt.Fprint(w, ": keep-alive\n\n"); err != nil {
				return
			}
			f.Flush()
		case <-r.Context().Done():
			return
		case <-s.ctx.Done():
			return
		}
	}
}

// rootHandler wraps the route table with the per-request handler timeout,
// exempting the SSE route: http.TimeoutHandler's response writer does not
// implement http.Flusher, and an event stream legitimately outlives any
// per-request deadline. The stream bounds itself instead — it closes on
// terminal job state, client disconnect, or server shutdown.
func (s *server) rootHandler(timeout time.Duration) http.Handler {
	h := s.handler()
	timed := h
	if timeout > 0 {
		timed = http.TimeoutHandler(h, timeout, "request timed out\n")
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet &&
			strings.HasPrefix(r.URL.Path, "/jobs/") && strings.HasSuffix(r.URL.Path, "/events") {
			h.ServeHTTP(w, r)
			return
		}
		timed.ServeHTTP(w, r)
	})
}
