package main

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"sunuintah/internal/experiments"
	"sunuintah/internal/jobstore"
	"sunuintah/internal/runner"
	"sunuintah/internal/workload"
)

// apiScenario is one accepted workload-scenario submission and,
// eventually, its per-phase report. Scenario runs share the server's
// pool and cache with single-spec jobs and artifacts.
type apiScenario struct {
	ID        string                      `json:"id"`
	Name      string                      `json:"name"`
	Seed      uint64                      `json:"seed"`
	Jobs      int                         `json:"jobs"` // expanded schedule size
	State     runner.JobState             `json:"state"`
	Submitted time.Time                   `json:"submitted"`
	Finished  *time.Time                  `json:"finished,omitempty"`
	Report    *experiments.ScenarioReport `json:"report,omitempty"`
	Error     string                      `json:"error,omitempty"`
}

// handleScenarioSubmit accepts a declarative workload scenario, expands
// it to validate the schedule up front, and runs every job on the shared
// pool in the background.
func (s *server) handleScenarioSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	sc, err := workload.Parse(body)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	jobs, err := sc.Expand()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(jobs) == 0 {
		s.writeError(w, http.StatusBadRequest, "scenario %q expands to no jobs", sc.Name)
		return
	}
	// Validate every expanded spec now so the submitter gets a 400, not a
	// background failure, for unknown variants or problem names.
	for i, j := range jobs {
		if err := experiments.ValidateSpec(j.Spec); err != nil {
			s.writeError(w, http.StatusBadRequest, "job %d: %v", i, err)
			return
		}
	}

	s.mu.Lock()
	s.nextScenarioID++
	sj := &apiScenario{
		ID:        fmt.Sprintf("s%d", s.nextScenarioID),
		Name:      sc.Name,
		Seed:      sc.Seed,
		Jobs:      len(jobs),
		State:     runner.StateRunning,
		Submitted: time.Now(),
	}
	s.scenarios[sj.ID] = sj
	s.mu.Unlock()

	s.wg.Add(1)
	go s.collectScenario(sj.ID, sc)

	s.writeJSON(w, http.StatusAccepted, map[string]string{"id": sj.ID, "status": "/scenarios/" + sj.ID})
}

func (s *server) collectScenario(id string, sc *workload.Scenario) {
	defer s.wg.Done()
	rep, err := experiments.RunScenario(s.sweep, sc)
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	sj, ok := s.scenarios[id]
	if !ok {
		return
	}
	sj.Finished = &now
	if err != nil {
		sj.State = runner.StateFailed
		sj.Error = err.Error()
		return
	}
	sj.State = runner.StateDone
	sj.Report = rep
}

func (s *server) handleScenario(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	sj, ok := s.scenarios[id]
	var cp apiScenario
	if ok {
		cp = *sj
	}
	s.mu.Unlock()
	if !ok {
		s.writeError(w, http.StatusNotFound, "unknown scenario %q", id)
		return
	}
	s.writeJSON(w, http.StatusOK, cp)
}

// handleScenarios lists scenario summaries (without the full reports).
func (s *server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	type summary struct {
		ID        string          `json:"id"`
		Name      string          `json:"name"`
		Jobs      int             `json:"jobs"`
		State     runner.JobState `json:"state"`
		Submitted time.Time       `json:"submitted"`
	}
	s.mu.Lock()
	out := make([]summary, 0, len(s.scenarios))
	for _, sj := range s.scenarios {
		out = append(out, summary{ID: sj.ID, Name: sj.Name, Jobs: sj.Jobs, State: sj.State, Submitted: sj.Submitted})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, k int) bool {
		return jobstore.NumericID(out[i].ID) < jobstore.NumericID(out[k].ID)
	})
	s.writeJSON(w, http.StatusOK, out)
}
