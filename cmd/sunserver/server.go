package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"sunuintah/internal/admission"
	"sunuintah/internal/experiments"
	"sunuintah/internal/faults"
	"sunuintah/internal/jobstore"
	"sunuintah/internal/obs"
	"sunuintah/internal/runner"
	"sunuintah/internal/trace"
)

// runRequest is the POST /run body: a runner.Spec plus the paper's
// best-of-k repeat protocol for noisy specs.
type runRequest struct {
	runner.Spec
	// Repeats reruns a noisy spec with seeds 1..k and keeps the fastest
	// (ignored when Noise is 0).
	Repeats int `json:"repeats,omitempty"`
}

// apiJob is one accepted request and, eventually, its outcome.
type apiJob struct {
	ID        string          `json:"id"`
	Tenant    string          `json:"tenant,omitempty"`
	Spec      runner.Spec     `json:"spec"`
	Repeats   int             `json:"repeats,omitempty"`
	State     runner.JobState `json:"state"`
	Submitted time.Time       `json:"submitted"`
	Finished  *time.Time      `json:"finished,omitempty"`
	Result    *runner.Result  `json:"result,omitempty"`
	Error     string          `json:"error,omitempty"`

	// poolJobs are the live pool handles (one per repeat) while the job
	// is pending — the DELETE cancel path; nil once terminal.
	poolJobs []*runner.Job
	// admitted marks that the job owes one admission-slot release on its
	// terminal transition.
	admitted bool
}

// serverConfig carries the optional knobs of newServer; the zero value is
// an ephemeral, unthrottled server (what most tests want).
type serverConfig struct {
	steps  int          // default steps for requests that omit them
	shards int          // default engine shards for requests that omit them
	faults *faults.Plan // default fault plan for requests that omit one
	log    *slog.Logger
	pprof  bool                  // mount net/http/pprof under /debug/pprof/
	cache  runner.Cache          // result cache, for restart Result re-population
	store  *jobstore.Store       // persistent job store; nil = in-memory only
	adm    *admission.Controller // admission control; nil = admit everything
	retain int                   // terminal jobs kept in memory (<=0: defaultRetain)
	// heartbeat is the SSE keep-alive (and terminal-state poll) interval
	// of GET /jobs/{id}/events; <=0 selects defaultHeartbeat. Tests set
	// it to milliseconds so stream-close assertions run fast.
	heartbeat time.Duration
}

// defaultHeartbeat paces SSE keep-alive comments and bounds how long a
// follower waits for the "done" event after a job turns terminal.
const defaultHeartbeat = 2 * time.Second

// defaultRetain bounds the in-memory (and journaled) terminal-job history
// so a long-lived server's job map cannot grow without limit.
const defaultRetain = 512

// server fronts one shared runner pool with a JSON HTTP API: simulation
// requests, job status, pool metrics and the paper's artifacts all draw
// from the same workers and content-addressed cache. Accepted jobs are
// journaled to the job store (when configured) so they survive restarts,
// and every submission passes admission control first.
type server struct {
	pool   *experiments.Pool
	sweep  *experiments.Sweep
	cfg    serverConfig
	steps  int
	shards int
	faults *faults.Plan
	start  time.Time
	log    *slog.Logger
	store  *jobstore.Store
	adm    *admission.Controller
	retain int

	// ctx is the server's lifecycle context: collect goroutines wait on
	// it so shutdown actually drains them instead of leaking waiters
	// parked on context.Background. wg tracks those goroutines.
	ctx context.Context
	wg  sync.WaitGroup

	// Operational telemetry, exposed as Prometheus text on /metrics. HTTP
	// counters accumulate in the registry as requests finish; the pool's
	// own atomic counters are mirrored in at scrape time.
	reg       *obs.Registry
	httpReqs  *obs.CounterVec
	httpDur   *obs.HistogramVec
	poolTotal *obs.CounterVec
	poolSecs  *obs.CounterVec
	poolLive  *obs.GaugeVec
	admTotal  *obs.CounterVec
	admLive   *obs.GaugeVec
	info      *obs.GaugeVec
	// Time-Warp telemetry of the most recent completed optimistic job
	// (gauges) and a counter of degraded runs — OptStats made scrapeable.
	optRollback *obs.GaugeVec
	optDepth    *obs.GaugeVec
	optDegraded *obs.CounterVec

	mu             sync.Mutex
	jobs           map[string]*apiJob
	nextID         int
	scenarios      map[string]*apiScenario
	nextScenarioID int
}

// newServer builds the service. ctx is the server lifecycle: cancel it
// only after the pool has drained, then Drain() to collect the last
// bookkeeping goroutines.
func newServer(ctx context.Context, pool *experiments.Pool, sweep *experiments.Sweep, cfg serverConfig) *server {
	if cfg.log == nil {
		cfg.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.retain <= 0 {
		cfg.retain = defaultRetain
	}
	reg := obs.NewRegistry()
	s := &server{
		pool:   pool,
		sweep:  sweep,
		cfg:    cfg,
		steps:  cfg.steps,
		shards: cfg.shards,
		faults: cfg.faults,
		start:  time.Now(),
		log:    cfg.log,
		store:  cfg.store,
		adm:    cfg.adm,
		retain: cfg.retain,
		ctx:    ctx,
		reg:    reg,
		httpReqs: reg.CounterVec("sunserver_http_requests_total",
			"HTTP requests served, by method, route and status code.",
			"method", "path", "code"),
		httpDur: reg.HistogramVec("sunserver_http_request_duration_seconds",
			"HTTP request handling latency in seconds.",
			[]float64{0.001, 0.01, 0.1, 1, 10, 60}, "method", "path"),
		poolTotal: reg.CounterVec("sunserver_pool_jobs_total",
			"Runner-pool job counters, mirrored from the pool at scrape time.",
			"state"),
		poolSecs: reg.CounterVec("sunserver_pool_seconds_total",
			"Host seconds spent executing jobs (exec) and avoided by cache hits (saved).",
			"kind"),
		poolLive: reg.GaugeVec("sunserver_pool_jobs",
			"Runner-pool jobs currently queued or running.",
			"state"),
		admTotal: reg.CounterVec("sunserver_admission_total",
			"Admission decisions, by outcome (accepted, queue_full, quota, shed).",
			"decision"),
		admLive: reg.GaugeVec("sunserver_admission",
			"Admission-control gauges: outstanding jobs, queue depth, exec-time EWMA, journal size.",
			"name"),
		info: reg.GaugeVec("sunserver_info",
			"Service-level gauges: workers, uptime, accepted API jobs, cache hit ratio.",
			"name"),
		optRollback: reg.GaugeVec("sunserver_opt_rollback_frac",
			"Rollback fraction (rolled-back / executed events) of the most recent completed optimistic job."),
		optDepth: reg.GaugeVec("sunserver_opt_depth",
			"Final AIMD speculation depth of the most recent completed optimistic job."),
		optDegraded: reg.CounterVec("sunserver_opt_degraded_total",
			"Completed optimistic jobs that fell back to the conservative coordinator."),
		jobs:      map[string]*apiJob{},
		scenarios: map[string]*apiScenario{},
	}
	s.recoverJobs()
	return s
}

// recoverJobs replays the job store into the API surface: terminal jobs
// reappear in listings (done jobs regain their Result when the
// content-addressed cache still holds it) and incomplete jobs are
// resubmitted to the pool — near-free when the disk cache is warm.
func (s *server) recoverJobs() {
	recs := s.store.Records()
	if len(recs) == 0 {
		return
	}
	s.mu.Lock()
	if max := s.store.MaxID(); max > s.nextID {
		s.nextID = max
	}
	s.mu.Unlock()
	resumed := 0
	for _, rec := range recs {
		j := &apiJob{
			ID: rec.ID, Tenant: rec.Tenant, Spec: rec.Spec, Repeats: rec.Repeats,
			State: rec.State, Submitted: rec.Submitted, Finished: rec.Finished, Error: rec.Error,
		}
		if rec.Terminal() {
			if rec.State == runner.StateDone && rec.Repeats <= 1 && s.cfg.cache != nil {
				if res, ok := s.cfg.cache.Get(rec.Spec.Hash()); ok {
					j.Result = res
				}
			}
			s.mu.Lock()
			s.jobs[j.ID] = j
			s.mu.Unlock()
			continue
		}
		j.State = runner.StateQueued
		j.admitted = true
		s.mu.Lock()
		s.jobs[j.ID] = j
		s.mu.Unlock()
		// The previous incarnation admitted this job; reserve its slot so
		// recovered backlog counts against the admission window.
		s.adm.Reserve()
		repeats := rec.Repeats
		if repeats < 1 {
			repeats = 1
		}
		s.startJob(j.ID, rec.Spec, repeats)
		resumed++
	}
	s.log.Info("job store recovered", "records", len(recs), "resumed", resumed)
}

// Drain waits for the collect goroutines to finish their bookkeeping —
// call after the pool has drained, before closing the job store.
func (s *server) Drain() { s.wg.Wait() }

// handler builds the route table. Wrong-method requests on /run and /jobs
// land on explicit method-less fallbacks that answer 405 with an Allow
// header and a JSON error (the mux's built-in 405 is plain text).
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /{$}", s.handleIndex)
	mux.HandleFunc("POST /run", s.handleRun)
	mux.HandleFunc("/run", s.methodNotAllowed("POST"))
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleJobTrace)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("GET /jobs", s.handleJobs)
	mux.HandleFunc("/jobs", s.methodNotAllowed("GET"))
	mux.HandleFunc("POST /scenarios", s.handleScenarioSubmit)
	mux.HandleFunc("GET /scenarios", s.handleScenarios)
	mux.HandleFunc("/scenarios", s.methodNotAllowed("GET, POST"))
	mux.HandleFunc("GET /scenarios/{id}", s.handleScenario)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /artifacts/{name}", s.handleArtifact)
	if s.cfg.pprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s.instrument(mux)
}

// statusRecorder captures the response code for logging and metrics, and
// forwards Flush so streaming responses work through the wrapper.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer when it streams; a non-Flusher
// underlying writer makes this a no-op rather than a panic.
func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps the route table with request logging and HTTP metrics.
func (s *server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sr := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		t0 := time.Now()
		next.ServeHTTP(sr, r)
		dur := time.Since(t0)
		route := metricRoute(r.URL.Path)
		s.httpReqs.Inc(r.Method, route, strconv.Itoa(sr.status))
		s.httpDur.Observe(dur.Seconds(), r.Method, route)
		s.log.Info("request", "method", r.Method, "path", r.URL.Path,
			"status", sr.status, "duration", dur)
	})
}

// metricRoute collapses request paths onto their route patterns, so metric
// label cardinality stays bounded no matter how many jobs exist.
func metricRoute(p string) string {
	switch {
	case strings.HasPrefix(p, "/scenarios/"):
		return "/scenarios/{id}"
	case strings.HasPrefix(p, "/jobs/"):
		if strings.HasSuffix(p, "/trace") {
			return "/jobs/{id}/trace"
		}
		if strings.HasSuffix(p, "/events") {
			return "/jobs/{id}/events"
		}
		return "/jobs/{id}"
	case strings.HasPrefix(p, "/artifacts/"):
		return "/artifacts/{name}"
	case strings.HasPrefix(p, "/debug/pprof"):
		return "/debug/pprof"
	}
	return p
}

// methodNotAllowed answers a wrong-method request with 405, the Allow
// header, and a JSON error body.
func (s *server) methodNotAllowed(allow string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Allow", allow)
		s.writeError(w, http.StatusMethodNotAllowed, "method %s not allowed; use %s", r.Method, allow)
	}
}

// writeJSON writes an indented JSON response. Encode failures after the
// header has gone out cannot change the status any more, but they are
// logged instead of silently dropped (a half-written body is a client
// disconnect or a marshalling bug — both worth seeing).
func (s *server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.log.Error("response encode", "status", status, "err", err)
	}
}

func (s *server) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	s.writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *server) handleIndex(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{
		"service": "sunserver: simulated Sunway TaihuLight experiment service",
		"endpoints": []string{
			"POST /run", "GET /jobs", "GET /jobs/{id}", "DELETE /jobs/{id}",
			"GET /jobs/{id}/trace", "GET /jobs/{id}/events",
			"POST /scenarios", "GET /scenarios", "GET /scenarios/{id}",
			"GET /metrics", "GET /healthz", "GET /artifacts/{name}",
		},
		"artifacts": experiments.ArtifactNames(),
	})
}

// tenantOf extracts the request's tenant for quota accounting: the
// X-Tenant header, or "default" when absent.
func tenantOf(r *http.Request) string {
	if t := strings.TrimSpace(r.Header.Get("X-Tenant")); t != "" {
		return t
	}
	return "default"
}

// handleRun accepts a spec, validates it, passes admission control, and
// returns a job id immediately; the simulation executes on the shared
// pool. Overload answers 429 with a Retry-After computed from the
// observed exec-time EWMA and the queue depth.
func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req runRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Steps <= 0 {
		req.Steps = s.steps
	}
	// Shards only changes wall-clock speed (results are bit-identical), so
	// the server default fills in requests that don't choose; negative
	// values are rejected below by ValidateSpec.
	if req.Shards == 0 {
		req.Shards = s.shards
	}
	// The server's default fault plan applies to specs that don't bring
	// their own; an explicit all-zero plan opts a request out of it.
	if req.Faults == nil && !s.faults.Zero() {
		req.Faults = s.faults
	}
	if err := experiments.ValidateSpec(req.Spec); err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	repeats := req.Repeats
	if repeats <= 1 || req.Noise == 0 {
		repeats = 1
	}

	tenant := tenantOf(r)
	if dec := s.adm.Admit(tenant, req.Spec); !dec.OK {
		secs := int(math.Ceil(dec.RetryAfter.Seconds()))
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		s.admTotal.Inc(dec.Reason)
		s.writeJSON(w, http.StatusTooManyRequests, map[string]any{
			"error":             fmt.Sprintf("overloaded: %s; retry in %ds", dec.Reason, secs),
			"reason":            dec.Reason,
			"retryAfterSeconds": secs,
		})
		return
	}
	s.admTotal.Inc("accepted")

	s.mu.Lock()
	s.nextID++
	j := &apiJob{
		ID:        fmt.Sprintf("j%d", s.nextID),
		Tenant:    tenant,
		Spec:      req.Spec,
		Repeats:   repeats,
		State:     runner.StateQueued,
		Submitted: time.Now(),
		admitted:  true,
	}
	s.jobs[j.ID] = j
	s.mu.Unlock()
	if err := s.store.Accept(jobstore.Record{
		ID: j.ID, Tenant: tenant, Spec: req.Spec, Repeats: repeats,
		State: runner.StateQueued, Submitted: j.Submitted,
	}); err != nil {
		s.log.Error("jobstore accept", "job", j.ID, "err", err)
	}

	s.startJob(j.ID, req.Spec, repeats)
	s.writeJSON(w, http.StatusAccepted, map[string]string{"id": j.ID, "status": "/jobs/" + j.ID})
}

// startJob submits every repeat of a spec to the pool and spawns the
// collector — the shared path of fresh submissions and restart recovery.
// The paper's "best result is selected" protocol: all repeats up front,
// reduced by min in the background.
func (s *server) startJob(id string, spec runner.Spec, repeats int) {
	jobs := make([]*runner.Job, repeats)
	for rep := 0; rep < repeats; rep++ {
		sp := spec
		if sp.Noise > 0 {
			sp.Seed = uint64(rep + 1)
		}
		jobs[rep] = s.pool.Submit(sp)
	}
	s.mu.Lock()
	if j, ok := s.jobs[id]; ok {
		j.State = runner.StateRunning
		j.poolJobs = jobs
	}
	s.mu.Unlock()
	if err := s.store.SetState(id, runner.StateRunning); err != nil {
		s.log.Error("jobstore state", "job", id, "err", err)
	}
	s.wg.Add(1)
	go s.collect(id, jobs)
}

// collect waits for a job's repeats under the server lifecycle context,
// then publishes the terminal state to the API, the journal and the
// admission controller. A shutdown mid-wait leaves the journal entry
// incomplete on purpose: the next incarnation resumes the job.
func (s *server) collect(id string, jobs []*runner.Job) {
	defer s.wg.Done()
	t0 := time.Now()
	results := make([]*runner.Result, len(jobs))
	var firstErr error
	for i, job := range jobs {
		res, err := job.Wait(s.ctx)
		if err != nil {
			if s.ctx.Err() != nil {
				return // shutting down; journal stays incomplete for recovery
			}
			if firstErr == nil {
				firstErr = err
			}
		}
		results[i] = res
	}
	canceled := errorsIsCanceled(firstErr)
	if firstErr != nil && !canceled && errorsIsInterrupted(firstErr) {
		// The pool was torn down under the job (shutdown grace expired or
		// the pool closed). Not a verdict on the job itself: leave it
		// incomplete in the journal so a restart resumes it.
		return
	}
	wall := time.Since(t0).Seconds()
	now := time.Now()

	state := runner.StateDone
	errMsg := ""
	var final *runner.Result
	switch {
	case canceled:
		state = runner.StateCanceled
	case firstErr != nil:
		state = runner.StateFailed
		errMsg = firstErr.Error()
	default:
		final = runner.MinResult(results)
	}

	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return
	}
	j.Finished = &now
	j.State = state
	j.Error = errMsg
	j.Result = final
	j.poolJobs = nil
	release := j.admitted
	j.admitted = false
	s.gcLocked()
	s.mu.Unlock()

	if err := s.store.Finish(id, state, now, errMsg); err != nil {
		s.log.Error("jobstore finish", "job", id, "err", err)
	}
	// Surface the winning repeat's Time-Warp stats on /metrics. Opt rides
	// outside the Result's identity JSON, so only freshly executed runs
	// carry it — a disk-cache hit leaves the gauges at their last value.
	if final != nil && final.Sim != nil && final.Sim.Opt != nil {
		o := final.Sim.Opt
		s.optRollback.Set(o.RollbackFrac())
		s.optDepth.Set(float64(o.FinalDepth))
		if o.Degraded {
			s.optDegraded.Inc()
		}
	}
	if release {
		// Feed the admission EWMA the job's execution cost: the recorded
		// exec time, capped by the observed wall time so cache hits (whose
		// Result carries the original run's cost) count as the near-zero
		// work they actually were.
		exec := 0.0
		if final != nil && final.ExecSeconds > 0 {
			exec = math.Min(final.ExecSeconds, wall)
		}
		s.adm.Done(exec)
	}
}

// errorsIsCanceled reports a user-initiated cancel (DELETE /jobs/{id}).
func errorsIsCanceled(err error) bool { return errors.Is(err, runner.ErrCanceled) }

// errorsIsInterrupted reports an error caused by tearing the pool down
// under the job rather than by the job itself: shutdown grace expiring
// (context.Canceled from the pool's base context) or a submit racing the
// pool close.
func errorsIsInterrupted(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, runner.ErrClosed)
}

// gcLocked enforces the terminal-job retention cap: oldest (lowest ID)
// terminal jobs are evicted from memory and dropped from the journal so
// neither grows without bound. Caller holds s.mu.
func (s *server) gcLocked() {
	terminal := make([]*apiJob, 0, len(s.jobs))
	for _, j := range s.jobs {
		if jobstore.Terminal(j.State) {
			terminal = append(terminal, j)
		}
	}
	if len(terminal) <= s.retain {
		return
	}
	sort.Slice(terminal, func(i, k int) bool {
		return jobstore.NumericID(terminal[i].ID) < jobstore.NumericID(terminal[k].ID)
	})
	for _, j := range terminal[:len(terminal)-s.retain] {
		delete(s.jobs, j.ID)
		if err := s.store.Drop(j.ID); err != nil {
			s.log.Error("jobstore drop", "job", j.ID, "err", err)
		}
	}
}

func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	var cp apiJob
	if ok {
		cp = *j
	}
	s.mu.Unlock()
	if !ok {
		s.writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	s.writeJSON(w, http.StatusOK, cp)
}

// handleJobCancel aborts a pending job: queued repeats leave the pool
// immediately, running ones have their attempt context cancelled. The
// collector publishes the terminal "canceled" state; poll GET /jobs/{id}
// to observe it.
func (s *server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		s.writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	if jobstore.Terminal(j.State) {
		st := j.State
		s.mu.Unlock()
		s.writeError(w, http.StatusConflict, "job %q already %s", id, st)
		return
	}
	jobs := append([]*runner.Job(nil), j.poolJobs...)
	s.mu.Unlock()

	canceling := false
	for _, pj := range jobs {
		if s.pool.Cancel(pj) {
			canceling = true
		}
	}
	s.writeJSON(w, http.StatusAccepted, map[string]any{"id": id, "canceling": canceling, "status": "/jobs/" + id})
}

// handleJobs lists job summaries (without the full results), sorted by
// numeric job ID so listings are stable across calls and map iterations.
func (s *server) handleJobs(w http.ResponseWriter, r *http.Request) {
	type summary struct {
		ID        string          `json:"id"`
		Tenant    string          `json:"tenant,omitempty"`
		Spec      string          `json:"spec"`
		State     runner.JobState `json:"state"`
		Submitted time.Time       `json:"submitted"`
	}
	s.mu.Lock()
	out := make([]summary, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, summary{ID: j.ID, Tenant: j.Tenant, Spec: j.Spec.String(), State: j.State, Submitted: j.Submitted})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, k int) bool {
		return jobstore.NumericID(out[i].ID) < jobstore.NumericID(out[k].ID)
	})
	s.writeJSON(w, http.StatusOK, out)
}

// handleMetrics serves the registry in the Prometheus text exposition
// format, mirroring the pool's and admission controller's counters in
// first.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.pool.Metrics()
	s.mu.Lock()
	total := len(s.jobs)
	s.mu.Unlock()
	s.poolTotal.Set(float64(m.Submitted), "submitted")
	s.poolTotal.Set(float64(m.Coalesced), "coalesced")
	s.poolTotal.Set(float64(m.Done), "done")
	s.poolTotal.Set(float64(m.Failed), "failed")
	s.poolTotal.Set(float64(m.Canceled), "canceled")
	s.poolTotal.Set(float64(m.Executed), "executed")
	s.poolTotal.Set(float64(m.CacheHits), "cache_hits")
	s.poolTotal.Set(float64(m.Retries), "retries")
	s.poolTotal.Set(float64(m.Panics), "panics")
	s.poolSecs.Set(m.ExecSeconds, "exec")
	s.poolSecs.Set(m.SavedSeconds, "saved")
	s.poolLive.Set(float64(m.Queued), "queued")
	s.poolLive.Set(float64(m.Running), "running")
	if s.adm != nil {
		am := s.adm.Metrics()
		// The counter families are incremented at decision time; only the
		// gauges mirror controller state at scrape time.
		s.admLive.Set(float64(am.Outstanding), "outstanding")
		depth := am.Outstanding - s.pool.Workers()
		if depth < 0 {
			depth = 0
		}
		s.admLive.Set(float64(depth), "queue_depth")
		s.admLive.Set(am.ExecEWMA, "exec_ewma_seconds")
	}
	if s.store != nil {
		s.admLive.Set(float64(s.store.Len()), "journal_records")
		s.admLive.Set(float64(s.store.JournalEntries()), "journal_entries")
	}
	s.info.Set(float64(s.pool.Workers()), "workers")
	s.info.Set(time.Since(s.start).Seconds(), "uptime_seconds")
	s.info.Set(float64(total), "api_jobs")
	s.info.Set(float64(s.retain), "retain_cap")
	s.info.Set(m.HitRate(), "cache_hit_ratio")
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WritePrometheus(w); err != nil {
		s.log.Error("metrics write", "err", err)
	}
}

// handleHealthz answers the liveness probe with enough build and load
// context to identify what is running and how busy it is: uptime, the Go
// toolchain and VCS revision baked in by the build, worker count, and the
// admission/journal backlog.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := len(s.jobs)
	s.mu.Unlock()
	body := map[string]any{
		"status":        "ok",
		"uptimeSeconds": time.Since(s.start).Seconds(),
		"goVersion":     runtime.Version(),
		"workers":       s.pool.Workers(),
		"jobs":          jobs,
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		body["module"] = bi.Main.Path
		for _, kv := range bi.Settings {
			switch kv.Key {
			case "vcs.revision":
				body["vcsRevision"] = kv.Value
			case "vcs.time":
				body["vcsTime"] = kv.Value
			case "vcs.modified":
				body["vcsModified"] = kv.Value == "true"
			}
		}
	}
	if s.adm != nil {
		body["outstanding"] = s.adm.Metrics().Outstanding
	}
	if s.store != nil {
		body["journalRecords"] = s.store.Len()
		body["journalEntries"] = s.store.JournalEntries()
	}
	s.writeJSON(w, http.StatusOK, body)
}

// handleJobTrace serves a finished job's event timeline as a Chrome/
// Perfetto trace file. Only jobs submitted with "trace": true carry one.
func (s *server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	var cp apiJob
	if ok {
		cp = *j
	}
	s.mu.Unlock()
	if !ok {
		s.writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	if cp.State != runner.StateDone || cp.Result == nil || cp.Result.Sim == nil || len(cp.Result.Sim.Trace) == 0 {
		s.writeError(w, http.StatusNotFound,
			"job %q has no recorded trace (submit the spec with \"trace\": true and wait for it to finish)", id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", id+"-trace.json"))
	if err := trace.NewFromEvents(cp.Result.Sim.Trace).WriteChromeTrace(w); err != nil {
		s.log.Error("trace download", "job", id, "err", err)
	}
}

// handleArtifact renders one of the paper's tables or figures from the
// shared sweep: the cells it needs execute on the same pool and cache as
// everything else.
func (s *server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !experiments.IsArtifact(name) {
		s.writeError(w, http.StatusNotFound, "unknown artifact %q", name)
		return
	}
	out, err := experiments.RunArtifact(s.sweep, name, s.steps)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "%s: %v", name, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, out)
}
