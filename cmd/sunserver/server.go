package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"sunuintah/internal/experiments"
	"sunuintah/internal/faults"
	"sunuintah/internal/obs"
	"sunuintah/internal/runner"
	"sunuintah/internal/trace"
)

// runRequest is the POST /run body: a runner.Spec plus the paper's
// best-of-k repeat protocol for noisy specs.
type runRequest struct {
	runner.Spec
	// Repeats reruns a noisy spec with seeds 1..k and keeps the fastest
	// (ignored when Noise is 0).
	Repeats int `json:"repeats,omitempty"`
}

// apiJob is one accepted request and, eventually, its outcome.
type apiJob struct {
	ID        string          `json:"id"`
	Spec      runner.Spec     `json:"spec"`
	Repeats   int             `json:"repeats,omitempty"`
	State     runner.JobState `json:"state"`
	Submitted time.Time       `json:"submitted"`
	Finished  *time.Time      `json:"finished,omitempty"`
	Result    *runner.Result  `json:"result,omitempty"`
	Error     string          `json:"error,omitempty"`
}

// server fronts one shared runner pool with a JSON HTTP API: simulation
// requests, job status, pool metrics and the paper's artifacts all draw
// from the same workers and content-addressed cache.
type server struct {
	pool   *experiments.Pool
	sweep  *experiments.Sweep
	steps  int          // default steps for requests that omit them
	shards int          // default engine shards for requests that omit them
	faults *faults.Plan // default fault plan for requests that omit one (nil: none)
	start  time.Time
	log    *slog.Logger
	pprof  bool // mount net/http/pprof under /debug/pprof/

	// Operational telemetry, exposed as Prometheus text on /metrics. HTTP
	// counters accumulate in the registry as requests finish; the pool's
	// own atomic counters are mirrored in at scrape time.
	reg       *obs.Registry
	httpReqs  *obs.CounterVec
	httpDur   *obs.HistogramVec
	poolTotal *obs.CounterVec
	poolSecs  *obs.CounterVec
	poolLive  *obs.GaugeVec
	info      *obs.GaugeVec

	mu             sync.Mutex
	jobs           map[string]*apiJob
	nextID         int
	scenarios      map[string]*apiScenario
	nextScenarioID int
}

func newServer(pool *experiments.Pool, sweep *experiments.Sweep, defaultSteps, defaultShards int, plan *faults.Plan, logger *slog.Logger, withPprof bool) *server {
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	reg := obs.NewRegistry()
	return &server{
		pool:   pool,
		sweep:  sweep,
		steps:  defaultSteps,
		shards: defaultShards,
		faults: plan,
		start:  time.Now(),
		log:    logger,
		pprof:  withPprof,
		reg:    reg,
		httpReqs: reg.CounterVec("sunserver_http_requests_total",
			"HTTP requests served, by method, route and status code.",
			"method", "path", "code"),
		httpDur: reg.HistogramVec("sunserver_http_request_duration_seconds",
			"HTTP request handling latency in seconds.",
			[]float64{0.001, 0.01, 0.1, 1, 10, 60}, "method", "path"),
		poolTotal: reg.CounterVec("sunserver_pool_jobs_total",
			"Runner-pool job counters, mirrored from the pool at scrape time.",
			"state"),
		poolSecs: reg.CounterVec("sunserver_pool_seconds_total",
			"Host seconds spent executing jobs (exec) and avoided by cache hits (saved).",
			"kind"),
		poolLive: reg.GaugeVec("sunserver_pool_jobs",
			"Runner-pool jobs currently queued or running.",
			"state"),
		info: reg.GaugeVec("sunserver_info",
			"Service-level gauges: workers, uptime, accepted API jobs, cache hit ratio.",
			"name"),
		jobs:      map[string]*apiJob{},
		scenarios: map[string]*apiScenario{},
	}
}

// handler builds the route table. Wrong-method requests on /run and /jobs
// land on explicit method-less fallbacks that answer 405 with an Allow
// header and a JSON error (the mux's built-in 405 is plain text).
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /{$}", s.handleIndex)
	mux.HandleFunc("POST /run", s.handleRun)
	mux.HandleFunc("/run", s.methodNotAllowed("POST"))
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleJobTrace)
	mux.HandleFunc("GET /jobs", s.handleJobs)
	mux.HandleFunc("/jobs", s.methodNotAllowed("GET"))
	mux.HandleFunc("POST /scenarios", s.handleScenarioSubmit)
	mux.HandleFunc("GET /scenarios", s.handleScenarios)
	mux.HandleFunc("/scenarios", s.methodNotAllowed("GET, POST"))
	mux.HandleFunc("GET /scenarios/{id}", s.handleScenario)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /artifacts/{name}", s.handleArtifact)
	if s.pprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s.instrument(mux)
}

// statusRecorder captures the response code for logging and metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

// instrument wraps the route table with request logging and HTTP metrics.
func (s *server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sr := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		t0 := time.Now()
		next.ServeHTTP(sr, r)
		dur := time.Since(t0)
		route := metricRoute(r.URL.Path)
		s.httpReqs.Inc(r.Method, route, strconv.Itoa(sr.status))
		s.httpDur.Observe(dur.Seconds(), r.Method, route)
		s.log.Info("request", "method", r.Method, "path", r.URL.Path,
			"status", sr.status, "duration", dur)
	})
}

// metricRoute collapses request paths onto their route patterns, so metric
// label cardinality stays bounded no matter how many jobs exist.
func metricRoute(p string) string {
	switch {
	case strings.HasPrefix(p, "/scenarios/"):
		return "/scenarios/{id}"
	case strings.HasPrefix(p, "/jobs/"):
		if strings.HasSuffix(p, "/trace") {
			return "/jobs/{id}/trace"
		}
		return "/jobs/{id}"
	case strings.HasPrefix(p, "/artifacts/"):
		return "/artifacts/{name}"
	case strings.HasPrefix(p, "/debug/pprof"):
		return "/debug/pprof"
	}
	return p
}

// methodNotAllowed answers a wrong-method request with 405, the Allow
// header, and a JSON error body.
func (s *server) methodNotAllowed(allow string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Allow", allow)
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed; use %s", r.Method, allow)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *server) handleIndex(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"service": "sunserver: simulated Sunway TaihuLight experiment service",
		"endpoints": []string{
			"POST /run", "GET /jobs", "GET /jobs/{id}", "GET /jobs/{id}/trace",
			"POST /scenarios", "GET /scenarios", "GET /scenarios/{id}",
			"GET /metrics", "GET /healthz", "GET /artifacts/{name}",
		},
		"artifacts": experiments.ArtifactNames(),
	})
}

// handleRun accepts a spec, validates it, and returns a job id
// immediately; the simulation executes on the shared pool.
func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req runRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Steps <= 0 {
		req.Steps = s.steps
	}
	// Shards only changes wall-clock speed (results are bit-identical), so
	// the server default fills in requests that don't choose; negative
	// values are rejected below by ValidateSpec.
	if req.Shards == 0 {
		req.Shards = s.shards
	}
	// The server's default fault plan applies to specs that don't bring
	// their own; an explicit all-zero plan opts a request out of it.
	if req.Faults == nil && !s.faults.Zero() {
		req.Faults = s.faults
	}
	if err := experiments.ValidateSpec(req.Spec); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	repeats := req.Repeats
	if repeats <= 1 || req.Noise == 0 {
		repeats = 1
	}

	s.mu.Lock()
	s.nextID++
	j := &apiJob{
		ID:        fmt.Sprintf("j%d", s.nextID),
		Spec:      req.Spec,
		Repeats:   repeats,
		State:     runner.StateQueued,
		Submitted: time.Now(),
	}
	s.jobs[j.ID] = j
	s.mu.Unlock()

	// Submit every repeat up front, then reduce by min in the background
	// (the paper's "best result is selected" protocol).
	jobs := make([]*runner.Job, repeats)
	for rep := 0; rep < repeats; rep++ {
		spec := req.Spec
		if spec.Noise > 0 {
			spec.Seed = uint64(rep + 1)
		}
		jobs[rep] = s.pool.Submit(spec)
	}
	s.setState(j.ID, runner.StateRunning)
	go s.collect(j.ID, jobs)

	writeJSON(w, http.StatusAccepted, map[string]string{"id": j.ID, "status": "/jobs/" + j.ID})
}

func (s *server) setState(id string, st runner.JobState) {
	s.mu.Lock()
	if j, ok := s.jobs[id]; ok {
		j.State = st
	}
	s.mu.Unlock()
}

func (s *server) collect(id string, jobs []*runner.Job) {
	results := make([]*runner.Result, len(jobs))
	var firstErr error
	for i, job := range jobs {
		res, err := job.Wait(context.Background())
		if err != nil && firstErr == nil {
			firstErr = err
		}
		results[i] = res
	}
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return
	}
	j.Finished = &now
	if firstErr != nil {
		j.State = runner.StateFailed
		j.Error = firstErr.Error()
		return
	}
	j.State = runner.StateDone
	j.Result = runner.MinResult(results)
}

func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	var cp apiJob
	if ok {
		cp = *j
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, cp)
}

// handleJobs lists job summaries (without the full results).
func (s *server) handleJobs(w http.ResponseWriter, r *http.Request) {
	type summary struct {
		ID        string          `json:"id"`
		Spec      string          `json:"spec"`
		State     runner.JobState `json:"state"`
		Submitted time.Time       `json:"submitted"`
	}
	s.mu.Lock()
	out := make([]summary, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, summary{ID: j.ID, Spec: j.Spec.String(), State: j.State, Submitted: j.Submitted})
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

// handleMetrics serves the registry in the Prometheus text exposition
// format, mirroring the pool's atomic counters in first.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.pool.Metrics()
	s.mu.Lock()
	total := len(s.jobs)
	s.mu.Unlock()
	s.poolTotal.Set(float64(m.Submitted), "submitted")
	s.poolTotal.Set(float64(m.Coalesced), "coalesced")
	s.poolTotal.Set(float64(m.Done), "done")
	s.poolTotal.Set(float64(m.Failed), "failed")
	s.poolTotal.Set(float64(m.Executed), "executed")
	s.poolTotal.Set(float64(m.CacheHits), "cache_hits")
	s.poolTotal.Set(float64(m.Retries), "retries")
	s.poolTotal.Set(float64(m.Panics), "panics")
	s.poolSecs.Set(m.ExecSeconds, "exec")
	s.poolSecs.Set(m.SavedSeconds, "saved")
	s.poolLive.Set(float64(m.Queued), "queued")
	s.poolLive.Set(float64(m.Running), "running")
	s.info.Set(float64(s.pool.Workers()), "workers")
	s.info.Set(time.Since(s.start).Seconds(), "uptime_seconds")
	s.info.Set(float64(total), "api_jobs")
	s.info.Set(m.HitRate(), "cache_hit_ratio")
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":        "ok",
		"uptimeSeconds": time.Since(s.start).Seconds(),
	})
}

// handleJobTrace serves a finished job's event timeline as a Chrome/
// Perfetto trace file. Only jobs submitted with "trace": true carry one.
func (s *server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	var cp apiJob
	if ok {
		cp = *j
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	if cp.State != runner.StateDone || cp.Result == nil || cp.Result.Sim == nil || len(cp.Result.Sim.Trace) == 0 {
		writeError(w, http.StatusNotFound,
			"job %q has no recorded trace (submit the spec with \"trace\": true and wait for it to finish)", id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", id+"-trace.json"))
	if err := trace.NewFromEvents(cp.Result.Sim.Trace).WriteChromeTrace(w); err != nil {
		s.log.Error("trace download", "job", id, "err", err)
	}
}

// handleArtifact renders one of the paper's tables or figures from the
// shared sweep: the cells it needs execute on the same pool and cache as
// everything else.
func (s *server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !experiments.IsArtifact(name) {
		writeError(w, http.StatusNotFound, "unknown artifact %q", name)
		return
	}
	out, err := experiments.RunArtifact(s.sweep, name, s.steps)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%s: %v", name, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, out)
}
