package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"sunuintah/internal/experiments"
	"sunuintah/internal/faults"
	"sunuintah/internal/runner"
)

// runRequest is the POST /run body: a runner.Spec plus the paper's
// best-of-k repeat protocol for noisy specs.
type runRequest struct {
	runner.Spec
	// Repeats reruns a noisy spec with seeds 1..k and keeps the fastest
	// (ignored when Noise is 0).
	Repeats int `json:"repeats,omitempty"`
}

// apiJob is one accepted request and, eventually, its outcome.
type apiJob struct {
	ID        string          `json:"id"`
	Spec      runner.Spec     `json:"spec"`
	Repeats   int             `json:"repeats,omitempty"`
	State     runner.JobState `json:"state"`
	Submitted time.Time       `json:"submitted"`
	Finished  *time.Time      `json:"finished,omitempty"`
	Result    *runner.Result  `json:"result,omitempty"`
	Error     string          `json:"error,omitempty"`
}

// server fronts one shared runner pool with a JSON HTTP API: simulation
// requests, job status, pool metrics and the paper's artifacts all draw
// from the same workers and content-addressed cache.
type server struct {
	pool   *experiments.Pool
	sweep  *experiments.Sweep
	steps  int          // default steps for requests that omit them
	shards int          // default engine shards for requests that omit them
	faults *faults.Plan // default fault plan for requests that omit one (nil: none)
	start  time.Time

	mu     sync.Mutex
	jobs   map[string]*apiJob
	nextID int
}

func newServer(pool *experiments.Pool, sweep *experiments.Sweep, defaultSteps, defaultShards int, plan *faults.Plan) *server {
	return &server{
		pool:   pool,
		sweep:  sweep,
		steps:  defaultSteps,
		shards: defaultShards,
		faults: plan,
		start:  time.Now(),
		jobs:   map[string]*apiJob{},
	}
}

// handler builds the route table.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /{$}", s.handleIndex)
	mux.HandleFunc("POST /run", s.handleRun)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /jobs", s.handleJobs)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /artifacts/{name}", s.handleArtifact)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *server) handleIndex(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"service": "sunserver: simulated Sunway TaihuLight experiment service",
		"endpoints": []string{
			"POST /run", "GET /jobs", "GET /jobs/{id}", "GET /metrics", "GET /artifacts/{name}",
		},
		"artifacts": experiments.ArtifactNames(),
	})
}

// handleRun accepts a spec, validates it, and returns a job id
// immediately; the simulation executes on the shared pool.
func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req runRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Steps <= 0 {
		req.Steps = s.steps
	}
	// Shards only changes wall-clock speed (results are bit-identical), so
	// the server default fills in requests that don't choose; negative
	// values are rejected below by ValidateSpec.
	if req.Shards == 0 {
		req.Shards = s.shards
	}
	// The server's default fault plan applies to specs that don't bring
	// their own; an explicit all-zero plan opts a request out of it.
	if req.Faults == nil && !s.faults.Zero() {
		req.Faults = s.faults
	}
	if err := experiments.ValidateSpec(req.Spec); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	repeats := req.Repeats
	if repeats <= 1 || req.Noise == 0 {
		repeats = 1
	}

	s.mu.Lock()
	s.nextID++
	j := &apiJob{
		ID:        fmt.Sprintf("j%d", s.nextID),
		Spec:      req.Spec,
		Repeats:   repeats,
		State:     runner.StateQueued,
		Submitted: time.Now(),
	}
	s.jobs[j.ID] = j
	s.mu.Unlock()

	// Submit every repeat up front, then reduce by min in the background
	// (the paper's "best result is selected" protocol).
	jobs := make([]*runner.Job, repeats)
	for rep := 0; rep < repeats; rep++ {
		spec := req.Spec
		if spec.Noise > 0 {
			spec.Seed = uint64(rep + 1)
		}
		jobs[rep] = s.pool.Submit(spec)
	}
	s.setState(j.ID, runner.StateRunning)
	go s.collect(j.ID, jobs)

	writeJSON(w, http.StatusAccepted, map[string]string{"id": j.ID, "status": "/jobs/" + j.ID})
}

func (s *server) setState(id string, st runner.JobState) {
	s.mu.Lock()
	if j, ok := s.jobs[id]; ok {
		j.State = st
	}
	s.mu.Unlock()
}

func (s *server) collect(id string, jobs []*runner.Job) {
	results := make([]*runner.Result, len(jobs))
	var firstErr error
	for i, job := range jobs {
		res, err := job.Wait(context.Background())
		if err != nil && firstErr == nil {
			firstErr = err
		}
		results[i] = res
	}
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return
	}
	j.Finished = &now
	if firstErr != nil {
		j.State = runner.StateFailed
		j.Error = firstErr.Error()
		return
	}
	j.State = runner.StateDone
	j.Result = runner.MinResult(results)
}

func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	var cp apiJob
	if ok {
		cp = *j
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, cp)
}

// handleJobs lists job summaries (without the full results).
func (s *server) handleJobs(w http.ResponseWriter, r *http.Request) {
	type summary struct {
		ID        string          `json:"id"`
		Spec      string          `json:"spec"`
		State     runner.JobState `json:"state"`
		Submitted time.Time       `json:"submitted"`
	}
	s.mu.Lock()
	out := make([]summary, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, summary{ID: j.ID, Spec: j.Spec.String(), State: j.State, Submitted: j.Submitted})
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.pool.Metrics()
	s.mu.Lock()
	total := len(s.jobs)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"uptimeSeconds": time.Since(s.start).Seconds(),
		"workers":       s.pool.Workers(),
		"requests":      total,
		"pool":          m,
		"hitRate":       m.HitRate(),
	})
}

// handleArtifact renders one of the paper's tables or figures from the
// shared sweep: the cells it needs execute on the same pool and cache as
// everything else.
func (s *server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !experiments.IsArtifact(name) {
		writeError(w, http.StatusNotFound, "unknown artifact %q", name)
		return
	}
	out, err := experiments.RunArtifact(s.sweep, name, s.steps)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%s: %v", name, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, out)
}
