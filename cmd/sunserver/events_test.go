package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sunuintah/internal/experiments"
	"sunuintah/internal/obs"
	"sunuintah/internal/runner"
)

// sseFrame is one parsed Server-Sent Events frame.
type sseFrame struct {
	event string
	data  string
}

type sseReader struct{ sc *bufio.Scanner }

func newSSEReader(r io.Reader) *sseReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	return &sseReader{sc}
}

// next returns the next non-comment frame, or ok=false on stream end.
func (r *sseReader) next() (sseFrame, bool) {
	var f sseFrame
	have := false
	for r.sc.Scan() {
		line := r.sc.Text()
		switch {
		case line == "":
			if have {
				return f, true
			}
		case strings.HasPrefix(line, "event: "):
			f.event, have = strings.TrimPrefix(line, "event: "), true
		case strings.HasPrefix(line, "data: "):
			f.data, have = strings.TrimPrefix(line, "data: "), true
		}
	}
	return sseFrame{}, false
}

// newSSEServer wires a server around exec with a fast heartbeat, serving
// through rootHandler with a short request timeout so the tests also prove
// the SSE route is exempt from http.TimeoutHandler.
func newSSEServer(t *testing.T, exec runner.ExecFunc) (*httptest.Server, *server) {
	t.Helper()
	pool, err := runner.New(runner.Config{Workers: 1, Exec: exec, Cache: runner.NewMemoryCache(0)})
	if err != nil {
		t.Fatal(err)
	}
	sweep := experiments.NewSweepWithPool(experiments.Options{Steps: 1}, pool)
	ctx, cancel := context.WithCancel(context.Background())
	srv := newServer(ctx, pool, sweep, serverConfig{steps: 1, heartbeat: 5 * time.Millisecond})
	ts := httptest.NewServer(srv.rootHandler(100 * time.Millisecond))
	t.Cleanup(func() {
		ts.Close()
		cancel()
		pool.Close()
		srv.Drain()
	})
	return ts, srv
}

// jobTopic recovers the progress-bus topic of an accepted job so tests can
// wait for the stream's subscription before letting the exec publish.
func jobTopic(t *testing.T, srv *server, id string) string {
	t.Helper()
	srv.mu.Lock()
	defer srv.mu.Unlock()
	j, ok := srv.jobs[id]
	if !ok {
		t.Fatalf("job %s not registered", id)
	}
	return progressTopic(j.Spec)
}

func waitSubscribed(t *testing.T, topic string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for experiments.Progress().Subscribers(topic) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stream never subscribed to the progress topic")
		}
		time.Sleep(time.Millisecond)
	}
}

func openStream(t *testing.T, base, id string) *http.Response {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET events status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	return resp
}

// The happy path: a running job streams its progress events and the
// stream closes with "done" when the job completes. The stream outlives
// the 100ms handler timeout, proving the TimeoutHandler exemption.
func TestJobEventsStreamsProgress(t *testing.T) {
	const n = 5
	release := make(chan struct{})
	exec := func(ctx context.Context, spec runner.Spec) (*runner.Result, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-release:
		}
		bus, topic := experiments.Progress(), spec.Hash()
		for i := 0; i < n; i++ {
			bus.Publish(topic, obs.ProgressEvent{
				Rank: 0, Step: i, Steps: n, Done: int64(i + 1), Total: n,
			})
		}
		return &runner.Result{Feasible: true, ExecSeconds: 0.01}, nil
	}
	ts, srv := newSSEServer(t, exec)

	code, id, _ := postSpec(t, ts.URL, fmt.Sprintf(smallSpec, ""), "")
	if code != http.StatusAccepted {
		t.Fatalf("POST /run status = %d", code)
	}
	resp := openStream(t, ts.URL, id)
	rd := newSSEReader(resp.Body)

	first, ok := rd.next()
	if !ok || first.event != "state" {
		t.Fatalf("first frame = %+v, want state", first)
	}
	var st sseState
	if err := json.Unmarshal([]byte(first.data), &st); err != nil {
		t.Fatal(err)
	}
	if st.ID != id {
		t.Fatalf("state frame id = %q, want %q", st.ID, id)
	}

	waitSubscribed(t, jobTopic(t, srv, id))
	time.Sleep(150 * time.Millisecond) // past the 100ms handler timeout
	close(release)

	progress, sawDone := 0, false
	var lastDone int64
	for {
		f, ok := rd.next()
		if !ok {
			break
		}
		switch f.event {
		case "progress":
			var ev obs.ProgressEvent
			if err := json.Unmarshal([]byte(f.data), &ev); err != nil {
				t.Fatal(err)
			}
			progress++
			lastDone = ev.Done
		case "done":
			if err := json.Unmarshal([]byte(f.data), &st); err != nil {
				t.Fatal(err)
			}
			sawDone = true
		}
	}
	if progress != n || lastDone != n {
		t.Fatalf("progress frames = %d (last done %d), want %d", progress, lastDone, n)
	}
	if !sawDone || st.State != runner.StateDone {
		t.Fatalf("stream ended without done frame (sawDone=%v, state=%s)", sawDone, st.State)
	}
}

func TestJobEventsUnknownJob(t *testing.T) {
	ts, _ := newSSEServer(t, instantExec)
	resp, err := http.Get(ts.URL + "/jobs/nope/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

// A job that is already terminal gets its snapshot and an immediate
// "done" — the stream closes without subscribing to anything.
func TestJobEventsTerminalJobClosesImmediately(t *testing.T) {
	ts, _ := newSSEServer(t, instantExec)
	code, id, _ := postSpec(t, ts.URL, fmt.Sprintf(smallSpec, ""), "")
	if code != http.StatusAccepted {
		t.Fatalf("POST /run status = %d", code)
	}
	deadline := time.Now().Add(5 * time.Second)
	var job apiJob
	for {
		getJSON(t, ts.URL+"/jobs/"+id, &job)
		if job.State == runner.StateDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", job.State)
		}
		time.Sleep(2 * time.Millisecond)
	}

	resp := openStream(t, ts.URL, id)
	rd := newSSEReader(resp.Body)
	var events []string
	for {
		f, ok := rd.next()
		if !ok {
			break
		}
		events = append(events, f.event)
	}
	if len(events) != 2 || events[0] != "state" || events[1] != "done" {
		t.Fatalf("terminal-job frames = %v, want [state done]", events)
	}
}

// Cancelling a followed job ends the stream with a terminal "done" frame
// within a heartbeat.
func TestJobEventsCancelClosesStream(t *testing.T) {
	release := make(chan struct{})
	ts, _ := newSSEServer(t, gatedExec(release))
	defer close(release)

	code, id, _ := postSpec(t, ts.URL, fmt.Sprintf(smallSpec, ""), "")
	if code != http.StatusAccepted {
		t.Fatalf("POST /run status = %d", code)
	}
	resp := openStream(t, ts.URL, id)
	rd := newSSEReader(resp.Body)
	if f, ok := rd.next(); !ok || f.event != "state" {
		t.Fatalf("first frame = %+v, want state", f)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+id, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()

	var last sseFrame
	for {
		f, ok := rd.next()
		if !ok {
			break
		}
		last = f
	}
	if last.event != "done" {
		t.Fatalf("stream ended with %+v, want done", last)
	}
	var st sseState
	if err := json.Unmarshal([]byte(last.data), &st); err != nil {
		t.Fatal(err)
	}
	if st.State != runner.StateCanceled && st.State != runner.StateFailed {
		t.Fatalf("done state = %s, want canceled/failed", st.State)
	}
}

// A consumer that never reads must not block the publisher: the exec-side
// publishing loop (50k events against a 256-slot ring) completes while
// the client holds the stream open unread, events beyond the ring are
// dropped, and the loss is reported in-band once delivery resumes.
func TestJobEventsSlowConsumerDropsWithoutBlocking(t *testing.T) {
	const burst = 50000
	release := make(chan struct{})
	burstDone := make(chan struct{})
	tail := make(chan struct{})
	exec := func(ctx context.Context, spec runner.Spec) (*runner.Result, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-release:
		}
		bus, topic := experiments.Progress(), spec.Hash()
		for i := 0; i < burst; i++ {
			bus.Publish(topic, obs.ProgressEvent{Step: i, Done: int64(i + 1), Total: burst})
		}
		close(burstDone)
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-tail:
		}
		for i := 0; i < 5; i++ {
			bus.Publish(topic, obs.ProgressEvent{Step: burst + i, Done: burst, Total: burst})
			time.Sleep(time.Millisecond)
		}
		return &runner.Result{Feasible: true, ExecSeconds: 0.01}, nil
	}
	ts, srv := newSSEServer(t, exec)

	code, id, _ := postSpec(t, ts.URL, fmt.Sprintf(smallSpec, ""), "")
	if code != http.StatusAccepted {
		t.Fatalf("POST /run status = %d", code)
	}
	resp := openStream(t, ts.URL, id)
	rd := newSSEReader(resp.Body)
	if f, ok := rd.next(); !ok || f.event != "state" {
		t.Fatalf("first frame = %+v, want state", f)
	}
	waitSubscribed(t, jobTopic(t, srv, id))
	close(release)

	// The client is not reading: the whole burst must still publish
	// promptly, because the bus drops instead of blocking.
	select {
	case <-burstDone:
	case <-time.After(10 * time.Second):
		t.Fatal("publisher blocked on a slow consumer")
	}

	// Drain in the background, give the handler time to empty the ring,
	// then let the tail publishes land with the accumulated drop count.
	frames := make(chan sseFrame, 1024)
	go func() {
		defer close(frames)
		for {
			f, ok := rd.next()
			if !ok {
				return
			}
			frames <- f
		}
	}()
	time.Sleep(200 * time.Millisecond)
	close(tail)

	progress, dropped, sawDone := 0, uint64(0), false
	for f := range frames {
		switch f.event {
		case "progress":
			progress++
		case "dropped":
			var d map[string]uint64
			if err := json.Unmarshal([]byte(f.data), &d); err != nil {
				t.Fatal(err)
			}
			dropped += d["dropped"]
		case "done":
			sawDone = true
		}
	}
	if progress == 0 {
		t.Fatal("no progress frames delivered")
	}
	if progress >= burst {
		t.Fatalf("slow consumer received all %d events; expected ring-bounded delivery", progress)
	}
	if dropped == 0 {
		t.Fatal("no dropped frame despite overflowing the subscriber ring")
	}
	if !sawDone {
		t.Fatal("stream did not close with done")
	}
}
