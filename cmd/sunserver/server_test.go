package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sunuintah/internal/experiments"
	"sunuintah/internal/faults"
	"sunuintah/internal/runner"
)

func newTestServer(t *testing.T) (*httptest.Server, *runner.Pool) {
	t.Helper()
	pool, err := runner.New(runner.Config{
		Workers: 2,
		Exec:    experiments.Exec,
		Cache:   runner.NewMemoryCache(0),
		Timeout: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	sweep := experiments.NewSweepWithPool(experiments.Options{Steps: 1}, pool)
	ts := httptest.NewServer(newServer(pool, sweep, 1, 0, nil).handler())
	t.Cleanup(func() {
		ts.Close()
		pool.Close()
	})
	return ts, pool
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
	return resp.StatusCode
}

// TestRunFunctionalCaseEndToEnd exercises the acceptance path: POST /run
// with a small functional-mode case, then poll GET /jobs/{id} until the
// verified result arrives.
func TestRunFunctionalCaseEndToEnd(t *testing.T) {
	ts, _ := newTestServer(t)

	body := `{"cells":"32x32x64","layout":"2x2x1","cgs":2,"variant":"acc.async","steps":2,"functional":true}`
	resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var accepted map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&accepted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /run status = %d", resp.StatusCode)
	}
	id := accepted["id"]
	if id == "" {
		t.Fatalf("no job id in %v", accepted)
	}

	deadline := time.Now().Add(30 * time.Second)
	var job apiJob
	for {
		if code := getJSON(t, ts.URL+"/jobs/"+id, &job); code != http.StatusOK {
			t.Fatalf("GET /jobs/%s status = %d", id, code)
		}
		if job.State == runner.StateDone || job.State == runner.StateFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after 30s", id, job.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if job.State != runner.StateDone {
		t.Fatalf("job failed: %s", job.Error)
	}
	if job.Result == nil || !job.Result.Feasible || job.Result.Sim == nil {
		t.Fatalf("job result = %+v", job.Result)
	}
	if job.Result.Sim.Steps != 2 {
		t.Errorf("steps = %d, want 2", job.Result.Sim.Steps)
	}
	if job.Result.Sim.PerStep <= 0 {
		t.Errorf("per-step time = %v", job.Result.Sim.PerStep)
	}

	// The same spec again is a cache hit serving the identical result.
	resp2, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var accepted2 map[string]string
	json.NewDecoder(resp2.Body).Decode(&accepted2)
	resp2.Body.Close()
	var job2 apiJob
	for {
		getJSON(t, ts.URL+"/jobs/"+accepted2["id"], &job2)
		if job2.State == runner.StateDone || job2.State == runner.StateFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cached rerun did not finish")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if job2.State != runner.StateDone || job2.Result.Sim.PerStep != job.Result.Sim.PerStep {
		t.Fatalf("cached rerun differs: %+v", job2.Result)
	}

	var metrics map[string]any
	if code := getJSON(t, ts.URL+"/metrics", &metrics); code != http.StatusOK {
		t.Fatalf("GET /metrics status = %d", code)
	}
	if metrics["hitRate"].(float64) <= 0 {
		t.Errorf("hit rate = %v, want > 0 after identical resubmission", metrics["hitRate"])
	}
}

// TestDefaultFaultPlanApplied runs a chaotic case end to end through the
// HTTP API: the server's -faults plan is attached to specs that omit one,
// the run goes through checkpoint/restart, and the result reports it.
func TestDefaultFaultPlanApplied(t *testing.T) {
	pool, err := runner.New(runner.Config{
		Workers: 2,
		Exec:    experiments.Exec,
		Cache:   runner.NewMemoryCache(0),
		Timeout: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	sweep := experiments.NewSweepWithPool(experiments.Options{Steps: 2}, pool)
	plan := &faults.Plan{Seed: 1, CrashAtStep: 3, CheckpointEvery: 2}
	ts := httptest.NewServer(newServer(pool, sweep, 2, 0, plan).handler())
	t.Cleanup(func() {
		ts.Close()
		pool.Close()
	})

	body := `{"cells":"64x64x128","layout":"2x2x2","cgs":2,"variant":"acc.async","steps":4}`
	resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var accepted map[string]string
	json.NewDecoder(resp.Body).Decode(&accepted)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /run status = %d", resp.StatusCode)
	}

	deadline := time.Now().Add(30 * time.Second)
	var job apiJob
	for {
		getJSON(t, ts.URL+"/jobs/"+accepted["id"], &job)
		if job.State == runner.StateDone || job.State == runner.StateFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job still %s after 30s", job.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if job.State != runner.StateDone {
		t.Fatalf("chaotic job failed: %s", job.Error)
	}
	if job.Spec.Faults == nil || job.Spec.Faults.CrashAtStep != 3 {
		t.Fatalf("default fault plan not applied to spec: %+v", job.Spec.Faults)
	}
	sim := job.Result.Sim
	if sim == nil || sim.Steps != 4 {
		t.Fatalf("chaotic run did not complete: %+v", sim)
	}
	rec := sim.Faults.Recovery
	if rec == nil || rec.Crashes != 1 || !rec.Recovered {
		t.Fatalf("expected one recovered crash, got %+v", rec)
	}
}

func TestRunRejectsBadSpecs(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, body := range []string{
		`{"cgs":1,"variant":"acc.async","steps":1}`,                          // no problem or cells
		`{"problem":"nope","cgs":1,"variant":"acc.async","steps":1}`,         // unknown problem
		`{"problem":"16x16x512","cgs":1,"variant":"warp9","steps":1}`,        // unknown variant
		`{"problem":"16x16x512","cgs":0,"variant":"acc.async","steps":1}`,    // bad CGs
		`{"problem":"16x16x512","cgs":1,"variant":"acc.async","bogus":true}`, // unknown field
	} {
		resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s status = %d, want 400", body, resp.StatusCode)
		}
	}

	resp, err := http.Get(ts.URL + "/jobs/j999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status = %d, want 404", resp.StatusCode)
	}
}

func TestArtifactEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)

	resp, err := http.Get(ts.URL + "/artifacts/table4")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /artifacts/table4 status = %d", resp.StatusCode)
	}
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "acc_simd.async") {
		t.Errorf("table4 output missing variants: %q", out)
	}

	resp2, err := http.Get(ts.URL + "/artifacts/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("unknown artifact status = %d, want 404", resp2.StatusCode)
	}
}
