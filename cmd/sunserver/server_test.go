package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sunuintah/internal/experiments"
	"sunuintah/internal/faults"
	"sunuintah/internal/runner"
)

func newTestServer(t *testing.T) (*httptest.Server, *runner.Pool) {
	t.Helper()
	pool, err := runner.New(runner.Config{
		Workers: 2,
		Exec:    experiments.Exec,
		Cache:   runner.NewMemoryCache(0),
		Timeout: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	sweep := experiments.NewSweepWithPool(experiments.Options{Steps: 1}, pool)
	ts := httptest.NewServer(newServer(context.Background(), pool, sweep, serverConfig{steps: 1}).handler())
	t.Cleanup(func() {
		ts.Close()
		pool.Close()
	})
	return ts, pool
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
	return resp.StatusCode
}

// TestRunFunctionalCaseEndToEnd exercises the acceptance path: POST /run
// with a small functional-mode case, then poll GET /jobs/{id} until the
// verified result arrives.
func TestRunFunctionalCaseEndToEnd(t *testing.T) {
	ts, _ := newTestServer(t)

	body := `{"cells":"32x32x64","layout":"2x2x1","cgs":2,"variant":"acc.async","steps":2,"functional":true}`
	resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var accepted map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&accepted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /run status = %d", resp.StatusCode)
	}
	id := accepted["id"]
	if id == "" {
		t.Fatalf("no job id in %v", accepted)
	}

	deadline := time.Now().Add(30 * time.Second)
	var job apiJob
	for {
		if code := getJSON(t, ts.URL+"/jobs/"+id, &job); code != http.StatusOK {
			t.Fatalf("GET /jobs/%s status = %d", id, code)
		}
		if job.State == runner.StateDone || job.State == runner.StateFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after 30s", id, job.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if job.State != runner.StateDone {
		t.Fatalf("job failed: %s", job.Error)
	}
	if job.Result == nil || !job.Result.Feasible || job.Result.Sim == nil {
		t.Fatalf("job result = %+v", job.Result)
	}
	if job.Result.Sim.Steps != 2 {
		t.Errorf("steps = %d, want 2", job.Result.Sim.Steps)
	}
	if job.Result.Sim.PerStep <= 0 {
		t.Errorf("per-step time = %v", job.Result.Sim.PerStep)
	}

	// The same spec again is a cache hit serving the identical result.
	resp2, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var accepted2 map[string]string
	json.NewDecoder(resp2.Body).Decode(&accepted2)
	resp2.Body.Close()
	var job2 apiJob
	for {
		getJSON(t, ts.URL+"/jobs/"+accepted2["id"], &job2)
		if job2.State == runner.StateDone || job2.State == runner.StateFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cached rerun did not finish")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if job2.State != runner.StateDone || job2.Result.Sim.PerStep != job.Result.Sim.PerStep {
		t.Fatalf("cached rerun differs: %+v", job2.Result)
	}

	// /metrics serves Prometheus text; after the identical resubmission the
	// mirrored pool counters must show the cache hit.
	body2, contentType := getMetrics(t, ts.URL)
	if !strings.HasPrefix(contentType, "text/plain") {
		t.Errorf("metrics Content-Type = %q, want text/plain", contentType)
	}
	if v := promValue(t, body2, `sunserver_pool_jobs_total{state="cache_hits"}`); v < 1 {
		t.Errorf("cache_hits = %v, want >= 1 after identical resubmission", v)
	}
	if v := promValue(t, body2, `sunserver_info{name="cache_hit_ratio"}`); v <= 0 {
		t.Errorf("cache hit ratio = %v, want > 0", v)
	}
	if !strings.Contains(body2, "# TYPE sunserver_http_requests_total counter") {
		t.Errorf("metrics missing http_requests_total TYPE line:\n%s", body2)
	}
	if !strings.Contains(body2, "sunserver_http_request_duration_seconds_bucket") {
		t.Errorf("metrics missing request-duration histogram buckets")
	}
}

// getMetrics fetches /metrics and returns body and Content-Type.
func getMetrics(t *testing.T, base string) (string, string) {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics status = %d", resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b), resp.Header.Get("Content-Type")
}

// promValue extracts one sample value from a Prometheus text body.
func promValue(t *testing.T, body, sample string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, sample+" ") {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(strings.TrimPrefix(line, sample+" "), "%g", &v); err != nil {
			t.Fatalf("bad sample line %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("metric %q not found in:\n%s", sample, body)
	return 0
}

// TestDefaultFaultPlanApplied runs a chaotic case end to end through the
// HTTP API: the server's -faults plan is attached to specs that omit one,
// the run goes through checkpoint/restart, and the result reports it.
func TestDefaultFaultPlanApplied(t *testing.T) {
	pool, err := runner.New(runner.Config{
		Workers: 2,
		Exec:    experiments.Exec,
		Cache:   runner.NewMemoryCache(0),
		Timeout: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	sweep := experiments.NewSweepWithPool(experiments.Options{Steps: 2}, pool)
	plan := &faults.Plan{Seed: 1, CrashAtStep: 3, CheckpointEvery: 2}
	ts := httptest.NewServer(newServer(context.Background(), pool, sweep, serverConfig{steps: 2, faults: plan}).handler())
	t.Cleanup(func() {
		ts.Close()
		pool.Close()
	})

	body := `{"cells":"64x64x128","layout":"2x2x2","cgs":2,"variant":"acc.async","steps":4}`
	resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var accepted map[string]string
	json.NewDecoder(resp.Body).Decode(&accepted)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /run status = %d", resp.StatusCode)
	}

	deadline := time.Now().Add(30 * time.Second)
	var job apiJob
	for {
		getJSON(t, ts.URL+"/jobs/"+accepted["id"], &job)
		if job.State == runner.StateDone || job.State == runner.StateFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job still %s after 30s", job.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if job.State != runner.StateDone {
		t.Fatalf("chaotic job failed: %s", job.Error)
	}
	if job.Spec.Faults == nil || job.Spec.Faults.CrashAtStep != 3 {
		t.Fatalf("default fault plan not applied to spec: %+v", job.Spec.Faults)
	}
	sim := job.Result.Sim
	if sim == nil || sim.Steps != 4 {
		t.Fatalf("chaotic run did not complete: %+v", sim)
	}
	rec := sim.Faults.Recovery
	if rec == nil || rec.Crashes != 1 || !rec.Recovered {
		t.Fatalf("expected one recovered crash, got %+v", rec)
	}
}

func TestRunRejectsBadSpecs(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, body := range []string{
		`{"cgs":1,"variant":"acc.async","steps":1}`,                          // no problem or cells
		`{"problem":"nope","cgs":1,"variant":"acc.async","steps":1}`,         // unknown problem
		`{"problem":"16x16x512","cgs":1,"variant":"warp9","steps":1}`,        // unknown variant
		`{"problem":"16x16x512","cgs":0,"variant":"acc.async","steps":1}`,    // bad CGs
		`{"problem":"16x16x512","cgs":1,"variant":"acc.async","bogus":true}`, // unknown field
	} {
		resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s status = %d, want 400", body, resp.StatusCode)
		}
	}

	resp, err := http.Get(ts.URL + "/jobs/j999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status = %d, want 404", resp.StatusCode)
	}
}

func TestArtifactEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)

	resp, err := http.Get(ts.URL + "/artifacts/table4")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /artifacts/table4 status = %d", resp.StatusCode)
	}
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "acc_simd.async") {
		t.Errorf("table4 output missing variants: %q", out)
	}

	resp2, err := http.Get(ts.URL + "/artifacts/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("unknown artifact status = %d, want 404", resp2.StatusCode)
	}
}

// TestMethodNotAllowed checks that wrong-method requests on /run and /jobs
// answer 405 with an Allow header and a JSON error body.
func TestMethodNotAllowed(t *testing.T) {
	ts, _ := newTestServer(t)
	cases := []struct {
		method, path, allow string
	}{
		{http.MethodGet, "/run", "POST"},
		{http.MethodDelete, "/run", "POST"},
		{http.MethodPost, "/jobs", "GET"},
	}
	for _, c := range cases {
		req, err := http.NewRequest(c.method, ts.URL+c.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var body map[string]string
		json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s status = %d, want 405", c.method, c.path, resp.StatusCode)
		}
		if got := resp.Header.Get("Allow"); got != c.allow {
			t.Errorf("%s %s Allow = %q, want %q", c.method, c.path, got, c.allow)
		}
		if body["error"] == "" {
			t.Errorf("%s %s: no JSON error body", c.method, c.path)
		}
	}
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t)
	var out map[string]any
	if code := getJSON(t, ts.URL+"/healthz", &out); code != http.StatusOK {
		t.Fatalf("GET /healthz status = %d", code)
	}
	if out["status"] != "ok" {
		t.Errorf("healthz status = %v, want ok", out["status"])
	}
}

// TestJobTraceDownload submits a spec with "trace": true and downloads the
// finished job's Chrome trace; a job without a trace answers 404.
func TestJobTraceDownload(t *testing.T) {
	ts, _ := newTestServer(t)

	body := `{"cells":"32x32x64","layout":"2x2x1","cgs":2,"variant":"acc.async","steps":2,"trace":true}`
	resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var accepted map[string]string
	json.NewDecoder(resp.Body).Decode(&accepted)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /run status = %d", resp.StatusCode)
	}
	id := accepted["id"]

	deadline := time.Now().Add(30 * time.Second)
	var job apiJob
	for {
		getJSON(t, ts.URL+"/jobs/"+id, &job)
		if job.State == runner.StateDone || job.State == runner.StateFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job still %s after 30s", job.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if job.State != runner.StateDone {
		t.Fatalf("job failed: %s", job.Error)
	}
	if job.Result.Sim.Obs == nil {
		t.Fatal("traced job has no flight-recorder report")
	}

	tr, err := http.Get(ts.URL + "/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Body.Close()
	if tr.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/%s/trace status = %d", id, tr.StatusCode)
	}
	var chrome struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.NewDecoder(tr.Body).Decode(&chrome); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(chrome.TraceEvents) == 0 {
		t.Error("trace has no events")
	}

	// A job run without "trace": true has nothing to download.
	body2 := `{"cells":"32x32x64","layout":"2x2x1","cgs":2,"variant":"acc.async","steps":1}`
	resp2, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(body2))
	if err != nil {
		t.Fatal(err)
	}
	var accepted2 map[string]string
	json.NewDecoder(resp2.Body).Decode(&accepted2)
	resp2.Body.Close()
	for {
		getJSON(t, ts.URL+"/jobs/"+accepted2["id"], &job)
		if job.State == runner.StateDone || job.State == runner.StateFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("untraced job did not finish")
		}
		time.Sleep(20 * time.Millisecond)
	}
	tr2, err := http.Get(ts.URL + "/jobs/" + accepted2["id"] + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	tr2.Body.Close()
	if tr2.StatusCode != http.StatusNotFound {
		t.Errorf("untraced job trace status = %d, want 404", tr2.StatusCode)
	}
}
