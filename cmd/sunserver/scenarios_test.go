package main

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"sunuintah/internal/runner"
)

// TestScenarioEndToEnd submits a small workload scenario, polls it to
// completion and checks the per-phase report.
func TestScenarioEndToEnd(t *testing.T) {
	ts, _ := newTestServer(t)

	body := `{
		"name": "api-tiny",
		"seed": 2,
		"base": {"cells": "8x8x16", "layout": "1x1x2", "cgs": 2, "variant": "acc.async", "steps": 1},
		"phases": [
			{"name": "burst", "duration": 1, "arrival": {"pattern": "burst", "burst": 2, "every": 1}},
			{"name": "heat", "duration": 1, "arrival": {"pattern": "burst", "burst": 1, "every": 1},
			 "jobs": {"physics": "heat3d"}}
		]
	}`
	resp, err := http.Post(ts.URL+"/scenarios", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var accepted map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&accepted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /scenarios status = %d", resp.StatusCode)
	}
	id := accepted["id"]
	if id == "" {
		t.Fatalf("no scenario id in %v", accepted)
	}

	deadline := time.Now().Add(30 * time.Second)
	var sc apiScenario
	for {
		if code := getJSON(t, ts.URL+"/scenarios/"+id, &sc); code != http.StatusOK {
			t.Fatalf("GET /scenarios/%s status = %d", id, code)
		}
		if sc.State == runner.StateDone || sc.State == runner.StateFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("scenario stuck in state %q", sc.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if sc.State != runner.StateDone {
		t.Fatalf("scenario failed: %s", sc.Error)
	}
	if sc.Jobs != 3 {
		t.Fatalf("expanded %d jobs, want 3", sc.Jobs)
	}
	rep := sc.Report
	if rep == nil || len(rep.Rows) != 2 {
		t.Fatalf("bad report: %+v", rep)
	}
	if rep.Rows[0].Jobs != 2 || rep.Rows[0].Models["burgers"] != 2 {
		t.Fatalf("burst row wrong: %+v", rep.Rows[0])
	}
	if rep.Rows[1].Jobs != 1 || rep.Rows[1].Models["heat3d"] != 1 {
		t.Fatalf("heat row wrong: %+v", rep.Rows[1])
	}

	// The listing includes the scenario.
	var list []map[string]any
	if code := getJSON(t, ts.URL+"/scenarios", &list); code != http.StatusOK {
		t.Fatalf("GET /scenarios status = %d", code)
	}
	found := false
	for _, item := range list {
		if item["id"] == id {
			found = true
		}
	}
	if !found {
		t.Fatalf("scenario %s missing from listing %v", id, list)
	}
}

// TestScenarioRejections covers the 400 paths: malformed JSON, invalid
// scenarios, and schedules referencing unknown variants.
func TestScenarioRejections(t *testing.T) {
	ts, _ := newTestServer(t)
	post := func(body string) (int, string) {
		resp, err := http.Post(ts.URL+"/scenarios", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]string
		json.NewDecoder(resp.Body).Decode(&out)
		return resp.StatusCode, out["error"]
	}

	if code, _ := post(`{not json`); code != http.StatusBadRequest {
		t.Fatalf("malformed JSON accepted: %d", code)
	}
	if code, msg := post(`{"name":"x","seed":1,"base":{"cells":"8x8x8","cgs":2,"variant":"acc.sync","steps":1},"phases":[{"name":"p","duration":1,"arrival":{"pattern":"poisson","rate":1}}]}`); code != http.StatusBadRequest || !strings.Contains(msg, "unknown arrival pattern") {
		t.Fatalf("bad pattern: code %d, msg %q", code, msg)
	}
	if code, msg := post(`{"name":"x","seed":1,"base":{"cells":"8x8x8","cgs":2,"variant":"warp9","steps":1},"phases":[{"name":"p","duration":1,"arrival":{"pattern":"burst","burst":1,"every":1}}]}`); code != http.StatusBadRequest || !strings.Contains(msg, "variant") {
		t.Fatalf("bad variant: code %d, msg %q", code, msg)
	}
}
