package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"sunuintah/internal/admission"
	"sunuintah/internal/experiments"
	"sunuintah/internal/jobstore"
	"sunuintah/internal/loadgen"
	"sunuintah/internal/runner"
	"sunuintah/internal/workload"
)

// instantExec completes immediately with a feasible result; the recorded
// exec time feeds the admission EWMA and the cache.
func instantExec(ctx context.Context, spec runner.Spec) (*runner.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return &runner.Result{Feasible: true, ExecSeconds: 0.01}, nil
}

// gatedExec blocks every execution until release closes (or the attempt
// context is cancelled), holding the server at a controlled saturation.
func gatedExec(release <-chan struct{}) runner.ExecFunc {
	return func(ctx context.Context, spec runner.Spec) (*runner.Result, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-release:
			return &runner.Result{Feasible: true, ExecSeconds: 0.01}, nil
		}
	}
}

// newRobustServer assembles a server around an arbitrary exec function so
// tests control saturation directly. The returned cancel tears down the
// collect-goroutine context (the test cleanup also runs it).
func newRobustServer(t *testing.T, exec runner.ExecFunc, workers int, cfg serverConfig) (*httptest.Server, *server, *runner.Pool) {
	t.Helper()
	cache := cfg.cache
	if cache == nil {
		cache = runner.NewMemoryCache(0)
		cfg.cache = cache
	}
	pool, err := runner.New(runner.Config{Workers: workers, Exec: exec, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	sweep := experiments.NewSweepWithPool(experiments.Options{Steps: cfg.steps}, pool)
	ctx, cancel := context.WithCancel(context.Background())
	srv := newServer(ctx, pool, sweep, cfg)
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(func() {
		ts.Close()
		cancel()
		pool.Close()
		srv.Drain()
	})
	return ts, srv, pool
}

const smallSpec = `{"cells":"8x8x8","cgs":1,"variant":"acc.async","steps":1%s}`

// postSpec submits a spec body and returns the status code, job id (202)
// and Retry-After seconds (429).
func postSpec(t *testing.T, base, body, tenant string) (int, string, int) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/run", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	json.NewDecoder(resp.Body).Decode(&out)
	id, _ := out["id"].(string)
	retryAfter := 0
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if v, err := strconv.Atoi(ra); err == nil {
			retryAfter = v
		}
	}
	return resp.StatusCode, id, retryAfter
}

// waitJobState polls a job until it reaches want (or any terminal state,
// reported as an error if it isn't the wanted one).
func waitJobState(t *testing.T, base, id, want string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		var job struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		if code := getJSON(t, base+"/jobs/"+id, &job); code != http.StatusOK {
			t.Fatalf("GET /jobs/%s = %d", id, code)
		}
		if job.State == want {
			return
		}
		switch job.State {
		case "done", "failed", "canceled":
			t.Fatalf("job %s reached %s (err=%q), want %s", id, job.State, job.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, job.State, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestOverloadReturns429WithRetryAfter fills the admission window and
// checks that overflow is rejected with 429, a positive Retry-After, and
// a machine-readable reason — and that draining the queue reopens
// admission (slots are released exactly once per job).
func TestOverloadReturns429WithRetryAfter(t *testing.T) {
	release := make(chan struct{})
	adm := admission.New(admission.Config{MaxRunning: 1, MaxQueued: 1})
	ts, _, _ := newRobustServer(t, gatedExec(release), 1, serverConfig{steps: 1, adm: adm})
	spec := func(i int) string {
		return fmt.Sprintf(smallSpec, fmt.Sprintf(`,"seed":%d`, i))
	}

	// Window is 1 running + 1 queued: two accepted, third rejected.
	for i := 1; i <= 2; i++ {
		if code, _, _ := postSpec(t, ts.URL, spec(i), ""); code != http.StatusAccepted {
			t.Fatalf("submit %d = %d, want 202", i, code)
		}
	}
	code, _, retryAfter := postSpec(t, ts.URL, spec(3), "")
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-window submit = %d, want 429", code)
	}
	if retryAfter < 1 {
		t.Fatalf("Retry-After = %d, want >= 1", retryAfter)
	}

	body, _ := getMetrics(t, ts.URL)
	if v := promValue(t, body, `sunserver_admission_total{decision="queue_full"}`); v < 1 {
		t.Fatalf("queue_full counter = %g", v)
	}
	if v := promValue(t, body, `sunserver_admission_total{decision="accepted"}`); v != 2 {
		t.Fatalf("accepted counter = %g, want 2", v)
	}

	// Drain and verify the window reopens: released slots readmit.
	close(release)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if code, _, _ := postSpec(t, ts.URL, spec(4), ""); code == http.StatusAccepted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("admission window never reopened after drain")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestTenantQuotaExhaustion checks per-tenant token buckets: one tenant
// exhausting its burst gets 429 reason "quota" while other tenants (and
// the default tenant) are unaffected.
func TestTenantQuotaExhaustion(t *testing.T) {
	adm := admission.New(admission.Config{
		MaxRunning: 8, MaxQueued: 64,
		Quota: admission.Quota{Rate: 1e-9, Burst: 2},
	})
	ts, _, _ := newRobustServer(t, instantExec, 2, serverConfig{steps: 1, adm: adm})
	spec := func(i int) string {
		return fmt.Sprintf(smallSpec, fmt.Sprintf(`,"seed":%d`, i))
	}

	for i := 1; i <= 2; i++ {
		if code, _, _ := postSpec(t, ts.URL, spec(i), "alice"); code != http.StatusAccepted {
			t.Fatalf("alice submit %d = %d, want 202", i, code)
		}
	}
	code, _, retryAfter := postSpec(t, ts.URL, spec(3), "alice")
	if code != http.StatusTooManyRequests {
		t.Fatalf("alice over-quota = %d, want 429", code)
	}
	if retryAfter < 1 {
		t.Fatalf("quota Retry-After = %d, want >= 1", retryAfter)
	}
	// Other tenants are unaffected by alice's exhaustion.
	if code, _, _ := postSpec(t, ts.URL, spec(4), "bob"); code != http.StatusAccepted {
		t.Fatalf("bob = %d, want 202", code)
	}
	if code, _, _ := postSpec(t, ts.URL, spec(5), ""); code != http.StatusAccepted {
		t.Fatalf("default tenant = %d, want 202", code)
	}
	body, _ := getMetrics(t, ts.URL)
	if v := promValue(t, body, `sunserver_admission_total{decision="quota"}`); v < 1 {
		t.Fatalf("quota counter = %g", v)
	}
}

// TestDeleteCancelsJob cancels a queued and a running job through the
// API and checks terminal states, idempotence answers, and that their
// admission slots come back.
func TestDeleteCancelsJob(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	adm := admission.New(admission.Config{MaxRunning: 1, MaxQueued: 2})
	ts, _, _ := newRobustServer(t, gatedExec(release), 1, serverConfig{steps: 1, adm: adm})

	_, running, _ := postSpec(t, ts.URL, fmt.Sprintf(smallSpec, `,"seed":1`), "")
	_, queued, _ := postSpec(t, ts.URL, fmt.Sprintf(smallSpec, `,"seed":2`), "")
	waitJobState(t, ts.URL, running, "running")

	del := func(id string) int {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := del(queued); code != http.StatusAccepted {
		t.Fatalf("DELETE queued = %d, want 202", code)
	}
	waitJobState(t, ts.URL, queued, "canceled")
	if code := del(running); code != http.StatusAccepted {
		t.Fatalf("DELETE running = %d, want 202", code)
	}
	waitJobState(t, ts.URL, running, "canceled")

	if code := del(queued); code != http.StatusConflict {
		t.Fatalf("DELETE terminal job = %d, want 409", code)
	}
	if code := del("j999"); code != http.StatusNotFound {
		t.Fatalf("DELETE unknown job = %d, want 404", code)
	}

	// Both slots released: a window of 1+2 admits three fresh jobs.
	for i := 10; i < 13; i++ {
		code, _, _ := postSpec(t, ts.URL, fmt.Sprintf(smallSpec, fmt.Sprintf(`,"seed":%d`, i)), "")
		if code != http.StatusAccepted {
			t.Fatalf("post-cancel submit %d = %d, want 202", i, code)
		}
	}
}

// TestRestartRecovery is the crash-resume acceptance path: server A
// journals two jobs (one finishes, one is killed mid-run), server B
// opens the same store and cache, re-lists the finished job with its
// cached result, resumes the incomplete one, and ends with every
// journaled job terminal.
func TestRestartRecovery(t *testing.T) {
	storeDir := t.TempDir()
	cache, err := runner.NewDiskCache(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}

	// ---- incarnation A: j1 completes, j2 blocks "forever". ----
	release := make(chan struct{}) // never closed: j2 dies with the server
	blockSeed2 := func(ctx context.Context, spec runner.Spec) (*runner.Result, error) {
		if spec.Seed == 2 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-release:
			}
		}
		return &runner.Result{Feasible: true, ExecSeconds: 0.25}, nil
	}
	storeA, err := jobstore.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	poolA, err := runner.New(runner.Config{Workers: 2, Exec: blockSeed2, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	ctxA, cancelA := context.WithCancel(context.Background())
	srvA := newServer(ctxA, poolA, experiments.NewSweepWithPool(experiments.Options{Steps: 1}, poolA), serverConfig{
		steps: 1, store: storeA, cache: cache,
	})
	tsA := httptest.NewServer(srvA.handler())

	_, j1, _ := postSpec(t, tsA.URL, fmt.Sprintf(smallSpec, `,"seed":1`), "t1")
	waitJobState(t, tsA.URL, j1, "done")
	_, j2, _ := postSpec(t, tsA.URL, fmt.Sprintf(smallSpec, `,"seed":2`), "t1")
	waitJobState(t, tsA.URL, j2, "running")

	// "Kill" A: the lifecycle context dies first (so the collector parks
	// out without journaling a verdict for j2), then the pool is torn
	// down with an already-expired drain deadline — the abrupt path.
	tsA.Close()
	cancelA()
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	poolA.Shutdown(shutCtx)
	shutCancel()
	srvA.Drain()
	if err := storeA.Close(); err != nil {
		t.Fatal(err)
	}

	// ---- incarnation B over the same store and cache. ----
	storeB, err := jobstore.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	poolB, err := runner.New(runner.Config{Workers: 2, Exec: instantExec, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	ctxB, cancelB := context.WithCancel(context.Background())
	srv := newServer(ctxB, poolB, experiments.NewSweepWithPool(experiments.Options{Steps: 1}, poolB), serverConfig{
		steps: 1, store: storeB, cache: cache,
	})
	tsB := httptest.NewServer(srv.handler())
	t.Cleanup(func() {
		tsB.Close()
		cancelB()
		poolB.Close()
		srv.Drain()
		storeB.Close()
	})

	// j1 survived the restart terminal, with its Result straight from the
	// content-addressed cache; j2 resumed and completes.
	var job struct {
		State  string          `json:"state"`
		Tenant string          `json:"tenant"`
		Result *map[string]any `json:"result"`
	}
	if code := getJSON(t, tsB.URL+"/jobs/"+j1, &job); code != http.StatusOK {
		t.Fatalf("GET recovered %s = %d", j1, code)
	}
	if job.State != "done" || job.Result == nil {
		t.Fatalf("recovered %s: state=%s result=%v, want done with cached result", j1, job.State, job.Result)
	}
	if job.Tenant != "t1" {
		t.Fatalf("recovered %s tenant = %q", j1, job.Tenant)
	}
	waitJobState(t, tsB.URL, j2, "done")

	// Acceptance: after kill-and-restart, 100% of journaled jobs reach a
	// terminal state. The in-memory map is current; the journal catches up
	// as collectors flush, so poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if len(storeB.Incomplete()) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("journal still has incomplete jobs: %+v", storeB.Incomplete())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestShutdownDrainsCollectGoroutines asserts the collect-goroutine leak
// fix: with a job parked on a never-finishing execution, cancelling the
// server context and closing the pool lets Drain return promptly.
func TestShutdownDrainsCollectGoroutines(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	pool, err := runner.New(runner.Config{Workers: 1, Exec: gatedExec(release), Cache: runner.NewMemoryCache(0)})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	srv := newServer(ctx, pool, experiments.NewSweepWithPool(experiments.Options{Steps: 1}, pool), serverConfig{steps: 1})
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	_, id, _ := postSpec(t, ts.URL, fmt.Sprintf(smallSpec, `,"seed":1`), "")
	waitJobState(t, ts.URL, id, "running")

	cancel()
	done := make(chan struct{})
	go func() {
		srv.Drain()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("collect goroutines leaked past shutdown")
	}
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	pool.Shutdown(shutCtx)
	shutCancel()
}

// TestJobsListSorted checks listings come back in ascending numeric job
// ID order regardless of map iteration order.
func TestJobsListSorted(t *testing.T) {
	ts, _, _ := newRobustServer(t, instantExec, 2, serverConfig{steps: 1})
	for i := 1; i <= 12; i++ {
		code, _, _ := postSpec(t, ts.URL, fmt.Sprintf(smallSpec, fmt.Sprintf(`,"seed":%d`, i)), "")
		if code != http.StatusAccepted {
			t.Fatalf("submit %d = %d", i, code)
		}
	}
	var list []struct {
		ID string `json:"id"`
	}
	if code := getJSON(t, ts.URL+"/jobs", &list); code != http.StatusOK {
		t.Fatalf("GET /jobs = %d", code)
	}
	if len(list) != 12 {
		t.Fatalf("listed %d jobs, want 12", len(list))
	}
	for i, j := range list {
		if want := fmt.Sprintf("j%d", i+1); j.ID != want {
			t.Fatalf("position %d = %s, want %s", i, j.ID, want)
		}
	}
}

// TestRetentionGCDropsOldTerminalJobs checks the job-map cap: old
// terminal jobs fall out of memory and the journal, newest survive.
func TestRetentionGCDropsOldTerminalJobs(t *testing.T) {
	store, err := jobstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts, _, _ := newRobustServer(t, instantExec, 2, serverConfig{steps: 1, store: store, retain: 3})
	t.Cleanup(func() { store.Close() })

	var last string
	for i := 1; i <= 8; i++ {
		code, id, _ := postSpec(t, ts.URL, fmt.Sprintf(smallSpec, fmt.Sprintf(`,"seed":%d`, i)), "")
		if code != http.StatusAccepted {
			t.Fatalf("submit %d = %d", i, code)
		}
		waitJobState(t, ts.URL, id, "done")
		last = id
	}
	var list []struct {
		ID string `json:"id"`
	}
	getJSON(t, ts.URL+"/jobs", &list)
	if len(list) != 3 {
		t.Fatalf("retained %d jobs, want 3", len(list))
	}
	if list[len(list)-1].ID != last {
		t.Fatalf("newest job %s missing from retained set %v", last, list)
	}
	if n := store.Len(); n != 3 {
		t.Fatalf("journal retained %d records, want 3", n)
	}
}

// TestLoadCheck is the `make loadcheck` smoke gate: a compressed workload
// scenario replayed by the loadgen harness against an in-process server.
// It passes when the server stays coherent under concurrent load — every
// submission is answered, every accepted job reaches a terminal state,
// and nothing errors.
func TestLoadCheck(t *testing.T) {
	adm := admission.New(admission.Config{MaxRunning: 4, MaxQueued: 256, Cost: experiments.EstimateCost})
	ts, _, _ := newRobustServer(t, instantExec, 4, serverConfig{steps: 1, adm: adm})

	sc := &workload.Scenario{
		Name: "loadcheck",
		Seed: 7,
		Base: workload.Template{Cells: "8x8x8", CGs: 1, Variant: "acc.async", Steps: 1},
		Phases: []workload.Phase{
			{Name: "steady", Duration: 2, Arrival: workload.Arrival{Pattern: workload.PatternConstant, Rate: 20}},
			{Name: "burst", Duration: 1, Arrival: workload.Arrival{Pattern: workload.PatternBurst, Burst: 8, Every: 0.5}},
		},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	rep, err := loadgen.Run(ctx, loadgen.Config{
		BaseURL:       ts.URL,
		Scenario:      sc,
		TimeScale:     0.02,
		Clients:       6,
		PollInterval:  5 * time.Millisecond,
		Timeout:       45 * time.Second,
		DistinctSeeds: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs == 0 || rep.Submitted != rep.Jobs {
		t.Fatalf("submitted %d of %d scheduled jobs", rep.Submitted, rep.Jobs)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d transport/protocol errors: %+v", rep.Errors, rep)
	}
	// Zero dropped accepted jobs: everything accepted reaches terminal.
	if rep.Incomplete != 0 {
		t.Fatalf("%d accepted jobs never finished: %+v", rep.Incomplete, rep)
	}
	if rep.Done == 0 {
		t.Fatalf("no jobs completed: %+v", rep)
	}
	if rep.Failed != 0 || rep.Canceled != 0 {
		t.Fatalf("unexpected failures under load: %+v", rep)
	}
	if rep.CompleteLatency.P50 <= 0 || rep.CompleteLatency.P99 < rep.CompleteLatency.P50 {
		t.Fatalf("implausible latency quantiles: %+v", rep.CompleteLatency)
	}
	t.Logf("loadcheck: %d jobs, p50=%.3fs p99=%.3fs reject=%.1f%%",
		rep.Jobs, rep.CompleteLatency.P50, rep.CompleteLatency.P99, 100*rep.RejectRate)
}
