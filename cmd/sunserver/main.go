// Command sunserver serves simulated-Sunway experiment runs over HTTP:
// the first step toward a traffic-serving system built on the runtime.
// Requests execute on a shared worker pool with a content-addressed
// result cache, so identical specs — across clients and restarts — are
// near-free.
//
// Endpoints:
//
//	POST /run              submit a spec, returns {"id": "jN"}
//	GET  /jobs/{id}        job state and, when done, the full result
//	GET  /jobs             job summaries
//	GET  /metrics          pool metrics: queued/running/done/failed, hit rate
//	GET  /artifacts/{name} render a paper table/figure (text)
//
// Example:
//
//	sunserver -addr :8177 &
//	curl -s localhost:8177/run -d '{"cells":"32x32x64","layout":"2x2x1","cgs":2,"variant":"acc.async","steps":2,"functional":true}'
//	curl -s localhost:8177/jobs/j1
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"time"

	"sunuintah/internal/experiments"
	"sunuintah/internal/runner"
)

func main() {
	addr := flag.String("addr", ":8177", "listen address")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "concurrent simulation jobs")
	cacheFlag := flag.String("cache", runner.DefaultCacheDir, `result cache: "off" (memory only) or an on-disk store directory`)
	steps := flag.Int("steps", experiments.Steps, "default timesteps for requests that omit steps")
	timeout := flag.Duration("timeout", 10*time.Minute, "per-job execution timeout (0 disables)")
	flag.Parse()

	var cache runner.Cache = runner.NewMemoryCache(0)
	if *cacheFlag != "off" && *cacheFlag != "" {
		dc, err := runner.NewDiskCache(*cacheFlag, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sunserver:", err)
			os.Exit(1)
		}
		cache = dc
		fmt.Printf("sunserver: on-disk result cache at %s\n", dc.Dir())
	}

	pool, err := runner.New(runner.Config{
		Workers: *jobs,
		Exec:    experiments.Exec,
		Cache:   cache,
		Timeout: *timeout,
		Retries: 2,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sunserver:", err)
		os.Exit(1)
	}
	defer pool.Close()
	sweep := experiments.NewSweepWithPool(experiments.Options{Steps: *steps}, pool)

	srv := newServer(pool, sweep, *steps)
	fmt.Printf("sunserver: %d workers, listening on %s\n", *jobs, *addr)
	if err := http.ListenAndServe(*addr, srv.handler()); err != nil {
		fmt.Fprintln(os.Stderr, "sunserver:", err)
		os.Exit(1)
	}
}
