// Command sunserver serves simulated-Sunway experiment runs over HTTP:
// the first step toward a traffic-serving system built on the runtime.
// Requests execute on a shared worker pool with a content-addressed
// result cache, so identical specs — across clients and restarts — are
// near-free.
//
// Endpoints:
//
//	POST /run              submit a spec, returns {"id": "jN"}
//	GET  /jobs/{id}        job state and, when done, the full result
//	DELETE /jobs/{id}      cancel a pending job
//	GET  /jobs/{id}/trace  Chrome/Perfetto trace of a job run with "trace":true
//	GET  /jobs/{id}/events live job progress as Server-Sent Events
//	GET  /jobs             job summaries, sorted by id
//	GET  /metrics          Prometheus text: HTTP, pool and admission counters
//	GET  /healthz          liveness probe
//	GET  /artifacts/{name} render a paper table/figure (text)
//
// Accepted jobs are journaled to the -store directory, so a crash or
// restart resumes incomplete jobs — near-instantly when the on-disk
// result cache is warm. Every submission passes admission control:
// a bounded outstanding window, optional per-tenant token buckets
// (keyed on the X-Tenant header) and cost-based load shedding; rejected
// requests get 429 with a Retry-After estimated from observed exec times.
//
// Requests run behind a per-request handler timeout; SIGINT/SIGTERM drains
// in-flight jobs for -grace before cancelling them. A -faults plan is
// applied to every spec that does not carry its own, so the whole service
// can run under deterministic chaos. -pprof additionally mounts Go's
// net/http/pprof profiling handlers under /debug/pprof/.
//
// Example:
//
//	sunserver -addr :8177 &
//	curl -s localhost:8177/run -d '{"cells":"32x32x64","layout":"2x2x1","cgs":2,"variant":"acc.async","steps":2,"functional":true}'
//	curl -s localhost:8177/jobs/j1
//	curl -s -X DELETE localhost:8177/jobs/j1
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"sunuintah/internal/admission"
	"sunuintah/internal/experiments"
	"sunuintah/internal/faults"
	"sunuintah/internal/jobstore"
	"sunuintah/internal/runner"
)

func main() {
	addr := flag.String("addr", ":8177", "listen address")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "concurrent simulation jobs")
	cacheFlag := flag.String("cache", runner.DefaultCacheDir, `result cache: "off" (memory only) or an on-disk store directory`)
	storeFlag := flag.String("store", ".sunjobs", `persistent job store: "off" (jobs forgotten on restart) or a journal directory`)
	steps := flag.Int("steps", experiments.Steps, "default timesteps for requests that omit steps")
	shards := flag.Int("shards", 0, "default engine shards for requests that omit them (0 = serial engine)")
	timeout := flag.Duration("timeout", 10*time.Minute, "per-job execution timeout (0 disables)")
	reqTimeout := flag.Duration("request-timeout", 2*time.Minute, "per-HTTP-request handler timeout")
	grace := flag.Duration("grace", 30*time.Second, "drain window for in-flight jobs on SIGINT/SIGTERM")
	faultsFlag := flag.String("faults", "off", `default fault plan for specs that omit one: "off", "default", "default,scale=F" or "key=value,..."`)
	pprofFlag := flag.Bool("pprof", false, "mount net/http/pprof profiling handlers under /debug/pprof/")
	maxQueued := flag.Int("max-queued", 256, "admission: max jobs waiting beyond the running window (<=0 uses the default)")
	quotaRate := flag.Float64("quota-rate", 0, "admission: per-tenant sustained submissions/sec (0 disables tenant quotas)")
	quotaBurst := flag.Float64("quota-burst", 0, "admission: per-tenant burst size (0 defaults to max(rate, 1))")
	shedCost := flag.Float64("shed-cost", 0, "admission: estimated-cost threshold (seconds) above which specs are shed when the queue runs hot (0 disables)")
	retain := flag.Int("retain", defaultRetain, "terminal jobs kept in memory and in the journal")
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	plan, err := faults.Parse(*faultsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sunserver:", err)
		os.Exit(2)
	}
	if *shards < 0 {
		fmt.Fprintf(os.Stderr, "sunserver: -shards must be >= 0 (0 = serial engine), got %d\n", *shards)
		os.Exit(2)
	}

	var cache runner.Cache = runner.NewMemoryCache(0)
	if *cacheFlag != "off" && *cacheFlag != "" {
		dc, err := runner.NewDiskCache(*cacheFlag, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sunserver:", err)
			os.Exit(1)
		}
		cache = dc
		logger.Info("on-disk result cache", "dir", dc.Dir())
	}

	var store *jobstore.Store
	if *storeFlag != "off" && *storeFlag != "" {
		store, err = jobstore.Open(*storeFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sunserver:", err)
			os.Exit(1)
		}
		logger.Info("persistent job store", "dir", *storeFlag, "records", store.Len())
	}

	pool, err := runner.New(runner.Config{
		Workers: *jobs,
		Exec:    experiments.Exec,
		Cache:   cache,
		Timeout: *timeout,
		Retries: 2,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sunserver:", err)
		os.Exit(1)
	}
	sweep := experiments.NewSweepWithPool(experiments.Options{Steps: *steps, Shards: *shards}, pool)

	adm := admission.New(admission.Config{
		MaxQueued:  *maxQueued,
		MaxRunning: *jobs,
		Quota:      admission.Quota{Rate: *quotaRate, Burst: *quotaBurst},
		Cost:       experiments.EstimateCost,
		ShedCost:   *shedCost,
	})

	// srvCtx is the collect-goroutine lifecycle: cancelled only after the
	// pool has drained, so graceful shutdowns still record finished jobs;
	// anything still waiting then bails out and is resumed from the
	// journal by the next incarnation.
	srvCtx, srvCancel := context.WithCancel(context.Background())
	defer srvCancel()

	srv := newServer(srvCtx, pool, sweep, serverConfig{
		steps:  *steps,
		shards: *shards,
		faults: plan,
		log:    logger,
		pprof:  *pprofFlag,
		cache:  cache,
		store:  store,
		adm:    adm,
		retain: *retain,
	})
	httpSrv := &http.Server{
		Addr: *addr,
		// rootHandler applies the request timeout to everything except the
		// SSE stream, which outlives any per-request deadline by design.
		Handler:           srv.rootHandler(*reqTimeout),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// SIGINT/SIGTERM starts a graceful drain: stop accepting connections,
	// finish in-flight requests, then give running jobs the grace window
	// before the pool's base context is cancelled.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if plan != nil {
		logger.Info("default fault plan", "plan", plan.Canonical())
	}
	if *pprofFlag {
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}
	logger.Info("listening", "addr", *addr, "workers", *jobs)
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("serve failed", "err", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		stop() // a second signal kills immediately
		logger.Info("shutting down, draining in-flight work", "grace", *grace)
		drainCtx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := httpSrv.Shutdown(drainCtx); err != nil {
			logger.Error("http shutdown", "err", err)
		}
		drainErr := pool.Shutdown(drainCtx)
		// Collect goroutines either record their finished jobs or park on
		// srvCtx; cancel it and wait so the journal is consistent before
		// the store closes.
		srvCancel()
		srv.Drain()
		if err := store.Close(); err != nil {
			logger.Error("job store close", "err", err)
		}
		if drainErr != nil {
			logger.Error("drain cut short", "err", drainErr)
			os.Exit(1)
		}
		logger.Info("drained cleanly")
	}
}
