// Command sunserver serves simulated-Sunway experiment runs over HTTP:
// the first step toward a traffic-serving system built on the runtime.
// Requests execute on a shared worker pool with a content-addressed
// result cache, so identical specs — across clients and restarts — are
// near-free.
//
// Endpoints:
//
//	POST /run              submit a spec, returns {"id": "jN"}
//	GET  /jobs/{id}        job state and, when done, the full result
//	GET  /jobs/{id}/trace  Chrome/Perfetto trace of a job run with "trace":true
//	GET  /jobs             job summaries
//	GET  /metrics          Prometheus text: HTTP and pool counters, gauges
//	GET  /healthz          liveness probe
//	GET  /artifacts/{name} render a paper table/figure (text)
//
// Requests run behind a per-request handler timeout; SIGINT/SIGTERM drains
// in-flight jobs for -grace before cancelling them. A -faults plan is
// applied to every spec that does not carry its own, so the whole service
// can run under deterministic chaos. -pprof additionally mounts Go's
// net/http/pprof profiling handlers under /debug/pprof/.
//
// Example:
//
//	sunserver -addr :8177 &
//	curl -s localhost:8177/run -d '{"cells":"32x32x64","layout":"2x2x1","cgs":2,"variant":"acc.async","steps":2,"functional":true}'
//	curl -s localhost:8177/jobs/j1
//	curl -s localhost:8177/run -d '{"cells":"64x64x128","layout":"2x2x2","cgs":2,"variant":"acc.async","steps":4,"faults":{"seed":1,"crash":1,"checkpointEvery":2}}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"sunuintah/internal/experiments"
	"sunuintah/internal/faults"
	"sunuintah/internal/runner"
)

func main() {
	addr := flag.String("addr", ":8177", "listen address")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "concurrent simulation jobs")
	cacheFlag := flag.String("cache", runner.DefaultCacheDir, `result cache: "off" (memory only) or an on-disk store directory`)
	steps := flag.Int("steps", experiments.Steps, "default timesteps for requests that omit steps")
	shards := flag.Int("shards", 0, "default engine shards for requests that omit them (0 = serial engine)")
	timeout := flag.Duration("timeout", 10*time.Minute, "per-job execution timeout (0 disables)")
	reqTimeout := flag.Duration("request-timeout", 2*time.Minute, "per-HTTP-request handler timeout")
	grace := flag.Duration("grace", 30*time.Second, "drain window for in-flight jobs on SIGINT/SIGTERM")
	faultsFlag := flag.String("faults", "off", `default fault plan for specs that omit one: "off", "default", "default,scale=F" or "key=value,..."`)
	pprofFlag := flag.Bool("pprof", false, "mount net/http/pprof profiling handlers under /debug/pprof/")
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	plan, err := faults.Parse(*faultsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sunserver:", err)
		os.Exit(2)
	}
	if *shards < 0 {
		fmt.Fprintf(os.Stderr, "sunserver: -shards must be >= 0 (0 = serial engine), got %d\n", *shards)
		os.Exit(2)
	}

	var cache runner.Cache = runner.NewMemoryCache(0)
	if *cacheFlag != "off" && *cacheFlag != "" {
		dc, err := runner.NewDiskCache(*cacheFlag, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sunserver:", err)
			os.Exit(1)
		}
		cache = dc
		logger.Info("on-disk result cache", "dir", dc.Dir())
	}

	pool, err := runner.New(runner.Config{
		Workers: *jobs,
		Exec:    experiments.Exec,
		Cache:   cache,
		Timeout: *timeout,
		Retries: 2,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sunserver:", err)
		os.Exit(1)
	}
	sweep := experiments.NewSweepWithPool(experiments.Options{Steps: *steps, Shards: *shards}, pool)

	srv := newServer(pool, sweep, *steps, *shards, plan, logger, *pprofFlag)
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           http.TimeoutHandler(srv.handler(), *reqTimeout, "request timed out\n"),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// SIGINT/SIGTERM starts a graceful drain: stop accepting connections,
	// finish in-flight requests, then give running jobs the grace window
	// before the pool's base context is cancelled.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if plan != nil {
		logger.Info("default fault plan", "plan", plan.Canonical())
	}
	if *pprofFlag {
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}
	logger.Info("listening", "addr", *addr, "workers", *jobs)
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("serve failed", "err", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		stop() // a second signal kills immediately
		logger.Info("shutting down, draining in-flight work", "grace", *grace)
		drainCtx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := httpSrv.Shutdown(drainCtx); err != nil {
			logger.Error("http shutdown", "err", err)
		}
		if err := pool.Shutdown(drainCtx); err != nil {
			logger.Error("drain cut short", "err", err)
			os.Exit(1)
		}
		logger.Info("drained cleanly")
	}
}
