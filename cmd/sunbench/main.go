// Command sunbench regenerates every table and figure of the paper's
// evaluation on the simulated Sunway TaihuLight, plus the future-work
// ablations. Results print in the paper's layout; EXPERIMENTS.md records
// the paper-vs-measured comparison.
//
// Independent cases execute concurrently on -jobs workers, and results
// are memoised by content hash; with -cache DIR the memo persists on
// disk, so a second invocation skips every completed case. -shards N
// additionally parallelises each case internally on the conservative
// sharded engine (-optimistic switches the shard coordination to the
// Time-Warp engine); results stay bit-identical, so these knobs compose
// freely with the cache.
//
// Usage:
//
//	sunbench [-steps N] [-noise f -repeats k] [-faults plan] [-jobs N]
//	         [-shards N] [-optimistic] [-cache dir|off] [-json file] [-scenario file]
//	         [-report] [-metrics-out file] [-cpuprofile file]
//	         [-memprofile file] [-v] <artifact>...
//
// Artifacts: table1 table2 table3 table4 table5 table6 table7
// fig5 fig6 fig7 fig8 fig9 fig10 ablation-dma ablation-packing
// ablation-groups ablation-tiles chaos workload summary all
//
// -faults injects a deterministic fault plan into every run ("default",
// "default,scale=2", or "seed=1,drop=0.05,crash=0.5,..."; "off" disables).
// The chaos artifact runs its own fault matrix and ignores -faults.
//
// -scenario FILE expands a declarative workload scenario (see
// internal/workload) into its job schedule, runs every job on the pool
// and prints the per-phase report; the "workload" artifact runs the
// built-in default scenario plus a record-and-replay leg.
//
// -report runs a representative case with the flight recorder attached and
// prints its run report (virtual-time series summary, overlap, roofline,
// critical-path breakdown, and — under -shards/-optimistic — the window
// speculation telemetry and Time-Warp stats); -metrics-out FILE
// additionally writes the full report plus the pool's job metrics as
// JSON. Both work with or without artifact arguments.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"sunuintah/internal/experiments"
	"sunuintah/internal/faults"
	"sunuintah/internal/obs"
	"sunuintah/internal/runner"
	"sunuintah/internal/sim"
	"sunuintah/internal/workload"
)

// fmtBytes renders an estimated byte count human-readably.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: sunbench [-steps N] [-noise f -repeats k] [-faults plan] [-jobs N] [-shards N] [-optimistic] [-cache dir|off] [-json file] [-scenario file] [-report] [-metrics-out file] [-cpuprofile file] [-memprofile file] [-v] <artifact>...")
	fmt.Fprintln(os.Stderr, "artifacts: table1..table7 fig5..fig10 ablation-dma ablation-packing ablation-groups ablation-tiles chaos workload summary all")
}

// reorderArgs moves flag tokens ahead of positionals so invocations like
// "sunbench all -jobs 4" work: Go's flag package stops parsing at the
// first non-flag argument.
func reorderArgs(args []string, boolFlags map[string]bool) []string {
	var flags, positional []string
	for i := 0; i < len(args); i++ {
		a := args[i]
		if len(a) < 2 || a[0] != '-' {
			positional = append(positional, a)
			continue
		}
		flags = append(flags, a)
		name := strings.TrimLeft(a, "-")
		if !strings.Contains(a, "=") && !boolFlags[name] && i+1 < len(args) {
			i++
			flags = append(flags, args[i])
		}
	}
	return append(flags, positional...)
}

func main() {
	steps := flag.Int("steps", experiments.Steps, "timesteps per run")
	noise := flag.Float64("noise", 0, "machine-instability jitter fraction (0 disables)")
	repeats := flag.Int("repeats", 1, "with -noise: repeat each case and keep the best, like the paper")
	faultsFlag := flag.String("faults", "off", `fault plan: "off", "default", "default,scale=F" or "seed=N,drop=f,crash=f,..."`)
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "concurrent simulation jobs")
	shards := flag.Int("shards", 0, "engine shards per simulation (0 = serial engine; results are bit-identical)")
	optimistic := flag.Bool("optimistic", false, "coordinate shards with the Time-Warp optimistic engine (needs -shards > 1; results are bit-identical)")
	cacheFlag := flag.String("cache", "off", `result cache: "off", or a directory for an on-disk store (e.g. .suncache)`)
	jsonPath := flag.String("json", "", "also write the full evaluation as structured JSON to this file")
	scenario := flag.String("scenario", "", "run a workload scenario JSON file through the pool and print its per-phase report")
	report := flag.Bool("report", false, "run a representative case with the flight recorder and print its run report")
	metricsOut := flag.String("metrics-out", "", "write the flight-recorder report and pool metrics as JSON to this file (implies -report)")
	verbose := flag.Bool("v", false, "print per-case progress as [done/total, hit-rate]")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile taken at exit to this file")
	flag.CommandLine.Parse(reorderArgs(os.Args[1:], map[string]bool{"v": true, "report": true}))
	args := flag.Args()
	wantReport := *report || *metricsOut != ""
	if len(args) == 0 && !wantReport && *scenario == "" {
		usage()
		os.Exit(2)
	}
	if *shards < 0 {
		fmt.Fprintf(os.Stderr, "sunbench: -shards must be >= 0 (0 = serial engine), got %d\n", *shards)
		os.Exit(2)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sunbench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "sunbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sunbench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "sunbench:", err)
			}
		}()
	}

	// Validate every artifact name up front: an unknown name after valid
	// ones must fail before any sweep runs, not midway through.
	runAll := false
	var wanted []string
	seen := map[string]bool{}
	for _, a := range args {
		if a == "all" {
			runAll = true
			continue
		}
		if !experiments.IsArtifact(a) {
			fmt.Fprintf(os.Stderr, "sunbench: unknown artifact %q\n", a)
			usage()
			os.Exit(2)
		}
		if !seen[a] {
			seen[a] = true
			wanted = append(wanted, a)
		}
	}
	if runAll {
		wanted = experiments.ArtifactNames()
	}

	var cache runner.Cache = runner.NewMemoryCache(0)
	if *cacheFlag != "off" && *cacheFlag != "" {
		dc, err := runner.NewDiskCache(*cacheFlag, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sunbench:", err)
			os.Exit(1)
		}
		cache = dc
	}

	var onEvent func(runner.Event)
	if *verbose {
		onEvent = func(ev runner.Event) {
			switch ev.Type {
			case runner.EventStarted:
				fmt.Fprintf(os.Stderr, "[%d/%d, %.0f%% hit] running %s...\n",
					ev.Done, ev.Total, ev.HitRate*100, ev.Spec)
			case runner.EventRetried:
				fmt.Fprintf(os.Stderr, "[%d/%d] retrying %s: %v\n", ev.Done, ev.Total, ev.Spec, ev.Err)
			case runner.EventCacheHit:
				fmt.Fprintf(os.Stderr, "[%d/%d, %.0f%% hit] cached  %s\n",
					ev.Done, ev.Total, ev.HitRate*100, ev.Spec)
			}
		}
	}

	plan, err := faults.Parse(*faultsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sunbench:", err)
		os.Exit(2)
	}

	pool := experiments.NewPool(*jobs, cache, onEvent)
	defer pool.Close()
	sweep := experiments.NewSweepWithPool(
		experiments.Options{Steps: *steps, Noise: *noise, Repeats: *repeats, Faults: plan, Shards: *shards, Optimistic: *optimistic}, pool)

	// A full (or near-full) evaluation saturates the pool from the start;
	// single artifacts prefetch their own cells.
	if runAll || len(wanted) > 3 {
		sweep.PrefetchEvaluation()
	}

	for _, name := range wanted {
		out, err := experiments.RunArtifact(sweep, name, *steps)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sunbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Print(out)
		fmt.Println()
	}

	if *scenario != "" {
		data, err := os.ReadFile(*scenario)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sunbench:", err)
			os.Exit(1)
		}
		sc, err := workload.Parse(data)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sunbench:", err)
			os.Exit(1)
		}
		rep, err := experiments.RunScenario(sweep, sc)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sunbench:", err)
			os.Exit(1)
		}
		fmt.Print(rep.Format())
	}

	if wantReport {
		if err := runFlightReport(pool, *steps, *shards, *optimistic, *metricsOut); err != nil {
			fmt.Fprintln(os.Stderr, "sunbench:", err)
			os.Exit(1)
		}
	}

	if *jsonPath != "" {
		export, err := experiments.BuildExport(sweep, *steps)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sunbench: json export:", err)
			os.Exit(1)
		}
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sunbench:", err)
			os.Exit(1)
		}
		if err := export.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, "sunbench:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "sunbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
	}

	if *verbose {
		fmt.Fprintln(os.Stderr, "sunbench:", pool.Metrics())
	}
}

// runFlightReport executes a representative small case with the flight
// recorder attached and prints its run report. The run bypasses the result
// cache deliberately: Report is excluded from the content hash, so a cached
// result could legitimately lack the report this invocation asked for.
func runFlightReport(pool *experiments.Pool, steps, shards int, optimistic bool, metricsOut string) error {
	spec := runner.Spec{Cells: "16x16x32", Layout: "2x2x2", CGs: 8,
		Variant: "acc.async", Steps: steps, Shards: shards, Optimistic: optimistic,
		Report: true, Trace: true}
	res, err := experiments.Exec(context.Background(), spec)
	if err != nil {
		return err
	}
	if !res.Feasible || res.Sim == nil {
		return fmt.Errorf("report case %s is infeasible", spec)
	}
	fmt.Printf("flight report for %s:\n", spec)
	res.Sim.Obs.WriteTable(os.Stdout)
	fmt.Println()
	res.Sim.Obs.WriteCriticalPath(os.Stdout)
	fmt.Println()
	if res.Sim.Speculation != nil {
		res.Sim.Speculation.WriteTable(os.Stdout)
		fmt.Println()
	}
	if o := res.Sim.Opt; o != nil {
		fmt.Printf("time-warp: %d windows (%d speculative), %d rollbacks (%d cascaded), "+
			"rollback frac %.3f, depth %d, %d snapshots (%s), %d anti-messages, degraded=%v\n\n",
			o.Windows, o.SpecWindows, o.Rollbacks, o.CascadeRollbacks,
			o.RollbackFrac(), o.FinalDepth, o.Snapshots, fmtBytes(o.SnapshotBytes),
			o.AntiMessages, o.Degraded)
	}
	if metricsOut == "" {
		return nil
	}
	out := struct {
		Spec        runner.Spec     `json:"spec"`
		Report      *obs.Report     `json:"report"`
		Opt         *sim.OptStats   `json:"opt,omitempty"`
		Speculation *obs.SpecReport `json:"speculation,omitempty"`
		Pool        runner.Metrics  `json:"pool"`
	}{spec, res.Sim.Obs, res.Sim.Opt, res.Sim.Speculation, pool.Metrics()}
	f, err := os.Create(metricsOut)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", metricsOut)
	return nil
}
