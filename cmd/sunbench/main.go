// Command sunbench regenerates every table and figure of the paper's
// evaluation on the simulated Sunway TaihuLight, plus the future-work
// ablations. Results print in the paper's layout; EXPERIMENTS.md records
// the paper-vs-measured comparison.
//
// Usage:
//
//	sunbench [-steps N] [-noise f -repeats k] [-json file] [-v] <artifact>...
//
// Artifacts: table1 table2 table3 table4 table5 table6 table7
// fig5 fig6 fig7 fig8 fig9 fig10 ablation-dma ablation-packing
// ablation-groups ablation-tiles summary all
package main

import (
	"flag"
	"fmt"
	"os"

	"sunuintah/internal/experiments"
	"sunuintah/internal/perf"
)

func main() {
	steps := flag.Int("steps", experiments.Steps, "timesteps per run")
	noise := flag.Float64("noise", 0, "machine-instability jitter fraction (0 disables)")
	repeats := flag.Int("repeats", 1, "with -noise: repeat each case and keep the best, like the paper")
	jsonPath := flag.String("json", "", "also write the full evaluation as structured JSON to this file")
	verbose := flag.Bool("v", false, "print per-case progress")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: sunbench [-steps N] [-noise f -repeats k] [-json file] [-v] <artifact>...")
		fmt.Fprintln(os.Stderr, "artifacts: table1..table7 fig5..fig10 ablation-dma ablation-packing ablation-groups ablation-tiles summary all")
		os.Exit(2)
	}

	sweep := experiments.NewSweep(experiments.Options{Steps: *steps, Noise: *noise, Repeats: *repeats})
	if *verbose {
		sweep.Progress = func(key experiments.CaseKey) {
			fmt.Fprintf(os.Stderr, "running %s on %d CGs with %s...\n", key.Problem, key.CGs, key.Variant)
		}
	}

	want := map[string]bool{}
	for _, a := range args {
		if a == "all" {
			for _, k := range []string{"table1", "table2", "table3", "table4", "table5",
				"table6", "table7", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
				"ablation-dma", "ablation-packing", "ablation-groups", "ablation-tiles", "summary"} {
				want[k] = true
			}
		} else {
			want[a] = true
		}
	}

	run := func(name string, fn func() error) {
		if !want[name] {
			return
		}
		delete(want, name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "sunbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("table1", func() error {
		rows, err := experiments.TableI(sweep)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTableI(rows))
		return nil
	})
	run("table2", func() error {
		fmt.Print(experiments.FormatTableII(perf.DefaultParams()))
		return nil
	})
	run("table3", func() error {
		rows, err := experiments.TableIII(sweep)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTableIII(rows))
		return nil
	})
	run("table4", func() error {
		fmt.Print(experiments.FormatTableIV())
		return nil
	})
	run("fig5", func() error {
		series, err := experiments.Figure5(sweep)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatFigure5(series))
		return nil
	})
	run("table5", func() error {
		rows, err := experiments.TableV(sweep)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTableV(rows))
		return nil
	})
	run("table6", func() error {
		t, err := experiments.AsyncImprovement(sweep, false)
		if err != nil {
			return err
		}
		fmt.Print(t.Format())
		fmt.Printf("average improvement: %.1f%%  best: %.1f%%\n", t.Average(), t.Best())
		return nil
	})
	run("table7", func() error {
		t, err := experiments.AsyncImprovement(sweep, true)
		if err != nil {
			return err
		}
		fmt.Print(t.Format())
		fmt.Printf("average improvement: %.1f%%  best: %.1f%%\n", t.Average(), t.Best())
		return nil
	})
	for figNum, probIdx := range map[int]int{6: 0, 7: 3, 8: 6} {
		figNum, probIdx := figNum, probIdx
		run(fmt.Sprintf("fig%d", figNum), func() error {
			fig, err := experiments.Boosts(sweep, experiments.Problems[probIdx])
			if err != nil {
				return err
			}
			fmt.Print(fig.Format(figNum))
			return nil
		})
	}
	run("fig9", func() error {
		series, err := experiments.Figure9And10(sweep)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatFigure9(series))
		return nil
	})
	run("fig10", func() error {
		series, err := experiments.Figure9And10(sweep)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatFigure10(series))
		return nil
	})
	run("ablation-dma", func() error {
		out, err := experiments.AblationAsyncDMA(*steps)
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	})
	run("ablation-packing", func() error {
		out, err := experiments.AblationTilePacking(*steps)
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	})
	run("ablation-groups", func() error {
		out, err := experiments.AblationCPEGroups(*steps)
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	})
	run("ablation-tiles", func() error {
		out, err := experiments.AblationTileSize(*steps)
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	})
	run("summary", func() error {
		out, err := experiments.ShapeSummary(sweep)
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	})

	for name := range want {
		fmt.Fprintf(os.Stderr, "sunbench: unknown artifact %q\n", name)
		os.Exit(2)
	}

	if *jsonPath != "" {
		export, err := experiments.BuildExport(sweep, *steps)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sunbench: json export:", err)
			os.Exit(1)
		}
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sunbench:", err)
			os.Exit(1)
		}
		if err := export.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, "sunbench:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "sunbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
	}
}
