// Command sunload drives a live sunserver with a scheduled workload and
// reports latency quantiles, 429 rates and — with -ramp — the measured
// saturation point of the server's admission window. The schedule comes
// from the workload package's deterministic scenario expansion, so runs
// are reproducible: same scenario, same seed, same offered sequence.
//
// Examples:
//
//	sunload -url http://localhost:8177 -scale 0.01
//	sunload -url http://localhost:8177 -scenario storm.json -clients 8 -tenant bench
//	sunload -url http://localhost:8177 -ramp 0.1,0.03,0.01,0.003 -o saturation.json
//	sunload -url http://localhost:8177 -follow
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"sunuintah/internal/loadgen"
	"sunuintah/internal/workload"
)

func main() {
	url := flag.String("url", "http://localhost:8177", "sunserver base URL")
	scenarioFlag := flag.String("scenario", "", "workload scenario JSON file (default: built-in mixed scenario)")
	scale := flag.Float64("scale", 0.01, "wall seconds per virtual second (smaller = higher offered load)")
	clients := flag.Int("clients", 4, "concurrent submitting clients")
	tenant := flag.String("tenant", "", "X-Tenant header value (exercises per-tenant quotas)")
	timeout := flag.Duration("timeout", 2*time.Minute, "overall run deadline (per ramp rung when -ramp is set)")
	poll := flag.Duration("poll", 25*time.Millisecond, "job status poll interval")
	rampFlag := flag.String("ramp", "", "comma-separated descending time scales for a saturation search (overrides -scale)")
	threshold := flag.Float64("reject-threshold", 0.05, "429 rate that marks saturation during -ramp")
	sameSpecs := flag.Bool("same-specs", false, "submit specs verbatim (identical specs coalesce in the pool; default stamps distinct seeds)")
	follow := flag.Bool("follow", false, "track accepted jobs over the server's live SSE stream instead of polling, printing progress deciles to stderr")
	out := flag.String("o", "", "write the JSON report to this file instead of stdout")
	flag.Parse()

	var sc *workload.Scenario
	if *scenarioFlag != "" {
		data, err := os.ReadFile(*scenarioFlag)
		if err != nil {
			fatal(err)
		}
		if sc, err = workload.Parse(data); err != nil {
			fatal(err)
		}
	}

	cfg := loadgen.Config{
		BaseURL:       strings.TrimRight(*url, "/"),
		Scenario:      sc,
		TimeScale:     *scale,
		Clients:       *clients,
		Tenant:        *tenant,
		PollInterval:  *poll,
		Timeout:       *timeout,
		DistinctSeeds: !*sameSpecs,
		Follow:        *follow,
	}
	if *follow {
		cfg.ProgressOut = os.Stderr
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var report any
	if *rampFlag != "" {
		scales, err := parseScales(*rampFlag)
		if err != nil {
			fatal(err)
		}
		rr, err := loadgen.Ramp(ctx, cfg, scales, *threshold)
		if err != nil {
			fatal(err)
		}
		report = rr
	} else {
		rep, err := loadgen.Run(ctx, cfg)
		if err != nil {
			fatal(err)
		}
		report = rep
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "sunload: report written to", *out)
		return
	}
	os.Stdout.Write(data)
}

func parseScales(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("sunload: bad ramp scale %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sunload:", err)
	os.Exit(1)
}
