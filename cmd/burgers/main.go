// Command burgers runs one configuration of the model fluid-flow problem
// (Section III of the paper) on the simulated Sunway TaihuLight and reports
// the per-timestep wall time, floating-point performance and hardware
// counters — the measurements behind the paper's evaluation.
//
// Timing-only runs (the default) handle every paper-scale problem; with
// -functional the solver computes real field data and verifies it against
// the exact manufactured solution.
//
// Examples:
//
//	burgers -problem 32x64x512 -cgs 16 -variant acc_simd.async
//	burgers -cells 32x32x32 -patches 2x2x2 -cgs 4 -functional -steps 5
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"sunuintah/internal/burgers"
	"sunuintah/internal/core"
	"sunuintah/internal/experiments"
	"sunuintah/internal/field"
	"sunuintah/internal/grid"
	"sunuintah/internal/loadbalancer"
	"sunuintah/internal/scheduler"
	"sunuintah/internal/stats"
	"sunuintah/internal/taskgraph"
	"sunuintah/internal/trace"
)

func parseIVec(s string) (grid.IVec, error) {
	parts := strings.Split(s, "x")
	if len(parts) != 3 {
		return grid.IVec{}, fmt.Errorf("want AxBxC, got %q", s)
	}
	var v [3]int
	for i, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n <= 0 {
			return grid.IVec{}, fmt.Errorf("bad component %q in %q", p, s)
		}
		v[i] = n
	}
	return grid.IV(v[0], v[1], v[2]), nil
}

func main() {
	problem := flag.String("problem", "", "paper problem size by patch name (e.g. 32x64x512); overrides -cells/-patches")
	cellsFlag := flag.String("cells", "64x64x64", "global grid size")
	patchesFlag := flag.String("patches", "2x2x2", "patch layout")
	cgs := flag.Int("cgs", 1, "number of core groups (MPI ranks)")
	variantName := flag.String("variant", "acc_simd.async", "Table IV variant: host.sync acc.sync acc_simd.sync acc.async acc_simd.async")
	steps := flag.Int("steps", experiments.Steps, "timesteps to run")
	functional := flag.Bool("functional", false, "compute real field data and verify against the exact solution")
	asyncDMA := flag.Bool("asyncdma", false, "enable double-buffered memory<->LDM DMA (future work, Section IX)")
	cpeGroups := flag.Int("cpegroups", 1, "CPE groups per core group (future work, Section IX)")
	ieeeExp := flag.Bool("ieee-exp", false, "use the IEEE-conforming (slow) exponential library")
	system := flag.String("system", "scalar", "model problem: scalar (the paper's Burgers) or vector (coupled 3-component Burgers)")
	balancerName := flag.String("balancer", "block", "patch assignment: block, roundrobin, sfc")
	chromeTrace := flag.String("chrometrace", "", "write a Chrome trace-event JSON timeline to this file")
	breakdown := flag.Bool("breakdown", false, "print a per-rank scheduler time breakdown")
	flag.Parse()

	v, err := experiments.VariantByName(*variantName)
	if err != nil {
		fatal(err)
	}

	cells, patches := grid.IVec{}, experiments.PatchCounts
	if *problem != "" {
		spec, err := experiments.ProblemByName(*problem)
		if err != nil {
			fatal(err)
		}
		cells = spec.GridSize
	} else {
		if cells, err = parseIVec(*cellsFlag); err != nil {
			fatal(err)
		}
		if patches, err = parseIVec(*patchesFlag); err != nil {
			fatal(err)
		}
	}

	expLib := burgers.FastExpLib
	if *ieeeExp {
		expLib = burgers.IEEEExpLib
	}
	dt := burgers.StableDt(1.0/float64(cells.X), 1.0/float64(cells.Y), 1.0/float64(cells.Z))
	var prob core.Problem
	var u *taskgraph.Label
	var verifyLabels []*taskgraph.Label
	switch *system {
	case "scalar":
		u = burgers.NewULabel()
		prob = core.Problem{
			Tasks:   []*taskgraph.Task{burgers.NewAdvanceTask(u, expLib, v.SIMD)},
			Initial: map[*taskgraph.Label]func(x, y, z float64) float64{u: burgers.Initial},
			Dt:      dt,
		}
		verifyLabels = []*taskgraph.Label{u}
	case "vector":
		vs := burgers.NewVectorSystem()
		prob = core.Problem{
			Tasks:   []*taskgraph.Task{vs.NewVectorAdvanceTask()},
			Initial: vs.Initial(),
			Dt:      dt / 2, // extra margin for the nonlinear coupling
		}
		dt = prob.Dt
		u = vs.U
		verifyLabels = vs.Labels()
	default:
		fatal(fmt.Errorf("unknown system %q", *system))
	}
	var balancer loadbalancer.Strategy
	switch *balancerName {
	case "block":
		balancer = loadbalancer.Block
	case "roundrobin":
		balancer = loadbalancer.RoundRobin
	case "sfc":
		balancer = loadbalancer.SFC
	default:
		fatal(fmt.Errorf("unknown balancer %q", *balancerName))
	}
	var rec *trace.Recorder
	if *chromeTrace != "" || *breakdown {
		rec = trace.New()
	}
	cfg := core.Config{
		Cells:       cells,
		PatchCounts: patches,
		NumCGs:      *cgs,
		Balancer:    balancer,
		Scheduler: scheduler.Config{
			Mode:       v.Mode,
			SIMD:       v.SIMD,
			Functional: *functional,
			AsyncDMA:   *asyncDMA,
			CPEGroups:  *cpeGroups,
			Trace:      rec,
		},
	}
	if *system == "vector" {
		cfg.Scheduler.TileSize = burgers.VectorTileSize
	}

	sim, err := core.NewSimulation(cfg, prob)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("burgers: grid %v, %d patches of %v, %d CGs, variant %s, dt %.3g, exp %s\n",
		cells, sim.Level.Layout.NumPatches(), sim.Level.Layout.PatchSize, *cgs, v.Name, dt, expLib)

	res, err := sim.Run(*steps)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("\nsteps                 %d\n", res.Steps)
	fmt.Printf("wall time             %.6f s (simulated)\n", float64(res.WallTime))
	fmt.Printf("wall time per step    %.6f s\n", float64(res.PerStep))
	fmt.Printf("floating point        %.2f Gflop/s aggregate (%.2f per CG)\n",
		res.Gflops, res.Gflops/float64(*cgs))
	fmt.Printf("efficiency            %.2f%% of the %d CGs' theoretical peak\n",
		res.Efficiency*100, *cgs)
	fmt.Printf("CPE flops             %d (%.0f%% in exponentials)\n", res.Counters.Flops,
		100*float64(res.Counters.ExpFlops)/math.Max(1, float64(res.Counters.Flops)))
	fmt.Printf("cells computed        %d\n", res.Counters.CellsComputed)
	fmt.Printf("offloads              %d, DMA %d ops / %.1f MB\n",
		res.Counters.Offloads, res.Counters.DMAOps, float64(res.Counters.DMABytes)/1e6)
	fmt.Printf("MPI traffic           %.2f MB\n", float64(res.BytesOnWire)/1e6)

	if *breakdown {
		fmt.Printf("\nper-rank scheduler breakdown (seconds over the whole run):\n")
		var tb stats.Table
		tb.Align = "rrrrrrr"
		tb.AddRow("rank", "mpe-work", "mpe-kernel", "kernel-wait", "comm", "idle", "tasks")
		for r, st := range res.RankStats {
			tb.AddRow(
				fmt.Sprint(r),
				fmt.Sprintf("%.4f", float64(st.MPEWorkTime)),
				fmt.Sprintf("%.4f", float64(st.MPEKernelTime)),
				fmt.Sprintf("%.4f", float64(st.KernelWaitTime)),
				fmt.Sprintf("%.4f", float64(st.CommTime)),
				fmt.Sprintf("%.4f", float64(st.IdleTime)),
				fmt.Sprint(st.TasksRun),
			)
		}
		fmt.Print(tb.String())
	}

	if *chromeTrace != "" {
		f, err := os.Create(*chromeTrace)
		if err != nil {
			fatal(err)
		}
		if err := rec.WriteChromeTrace(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("chrome trace           %s (open in chrome://tracing or Perfetto)\n", *chromeTrace)
	}

	if *functional && *system == "scalar" {
		f, err := sim.GatherField(u)
		if err != nil {
			fatal(err)
		}
		finalT := float64(*steps) * dt
		maxErr := 0.0
		sim.Level.Layout.Domain.ForEach(func(c grid.IVec) {
			x, y, z := sim.Level.CellCenter(c)
			if e := math.Abs(f.At(c) - burgers.Exact(x, y, z, finalT)); e > maxErr {
				maxErr = e
			}
		})
		fmt.Printf("verification          max |u - exact| = %.3e at t = %.4g\n", maxErr, finalT)
	}
	if *functional && *system == "vector" {
		// The coupled system has no closed-form solution; report bounds.
		for _, l := range verifyLabels {
			f, err := sim.GatherField(l)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("verification          max |%s| = %.4f (bounded)\n", l.Name(), field.MaxAbs(f, sim.Level.Layout.Domain))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "burgers:", err)
	os.Exit(1)
}
