// Command benchgate records and enforces the repository's performance
// baseline. It times the wall-clock hot paths of the simulated runtime —
// the monomorphic Burgers kernel, the halo pack/unpack path, the
// warehouse allocate/free churn and the discrete-event loop — plus their
// steady-state allocation counts, and writes them to a JSON baseline
// (`make bench`). In check mode (`make check`) it reruns the workloads
// and fails when a metric regresses by more than the tolerance.
//
// Machine-speed robustness: the baseline includes a calibration metric (a
// fixed pure-CPU loop). A throughput metric only fails the gate when both
// its raw value and its calibration-normalised ratio regress beyond the
// tolerance, so a uniformly slower machine does not trip the gate while a
// genuine hot-path regression does. Allocation metrics are compared
// absolutely (a pool regression shows up as allocs/op > baseline).
//
// Usage:
//
//	benchgate -record [-o BENCH_baseline.json]
//	benchgate -check BENCH_baseline.json [-tol 0.15] [-v]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"sunuintah/internal/burgers"
	"sunuintah/internal/dw"
	"sunuintah/internal/experiments"
	"sunuintah/internal/field"
	"sunuintah/internal/grid"
	"sunuintah/internal/perf"
	"sunuintah/internal/runner"
	"sunuintah/internal/sim"
	"sunuintah/internal/sw26010"
	"sunuintah/internal/taskgraph"
	"sunuintah/internal/workload"
)

// calibName is the machine-speed reference metric every rate is
// normalised by in check mode.
const calibName = "calib.iters_per_s"

// Baseline is the persisted gate file.
type Baseline struct {
	Schema    int                `json:"schema"`
	Go        string             `json:"go"`
	Generated string             `json:"generated"`
	Metrics   map[string]float64 `json:"metrics"`
}

// measureRate returns the best-of-reps throughput of fn (units/second),
// where fn performs n units of work per call. Best-of follows the
// paper's repeat-and-keep-best measurement discipline: it rejects
// scheduler noise, not variance we care about.
func measureRate(n int, reps int, fn func()) float64 {
	fn() // warm caches and pools
	best := 0.0
	for r := 0; r < reps; r++ {
		iters := 1
		for {
			start := time.Now()
			for i := 0; i < iters; i++ {
				fn()
			}
			el := time.Since(start)
			if el >= 20*time.Millisecond {
				if rate := float64(n) * float64(iters) / el.Seconds(); rate > best {
					best = rate
				}
				break
			}
			iters *= 4
		}
	}
	return best
}

func collect() map[string]float64 {
	m := map[string]float64{}

	// Calibration: a fixed FastExp loop — pure CPU, no allocation, no
	// scheduler involvement.
	calib := func() {
		x := -3.7
		s := 0.0
		for i := 0; i < 10000; i++ {
			s += burgers.FastExp(x)
			x += 1e-6
		}
		if s == 0 {
			panic("calibration underflow")
		}
	}
	m[calibName] = measureRate(10000, 5, calib)

	// Kernel throughput per exponential library (cells/s) on the
	// benchmark's 32^3 single-patch grid.
	lv, err := grid.NewUnitCubeLevel(grid.IV(32, 32, 32), grid.IV(1, 1, 1))
	if err != nil {
		panic(err)
	}
	dom := lv.Layout.Domain
	in := field.NewCellWithGhost(dom, 1)
	in.FillFunc(in.Alloc(), func(c grid.IVec) float64 {
		x, y, z := lv.CellCenter(c)
		return burgers.Initial(x, y, z)
	})
	out := field.NewCell(dom)
	dt := burgers.StableDt(lv.Spacing[0], lv.Spacing[1], lv.Spacing[2])
	cells := int(dom.NumCells())
	m["kernel.fast.cells_per_s"] = measureRate(cells, 5, func() {
		burgers.Advance(in, out, dom, lv, 0, dt, burgers.FastExpLib)
	})
	m["kernel.ieee.cells_per_s"] = measureRate(cells, 5, func() {
		burgers.Advance(in, out, dom, lv, 0, dt, burgers.IEEEExpLib)
	})
	m["kernel.allocs_per_op"] = testing.AllocsPerRun(10, func() {
		burgers.Advance(in, out, dom, lv, 0, dt, burgers.FastExpLib)
	})

	// Halo pack/unpack (bytes/s) of one ghost face, pooled payload.
	face := grid.NewBox(grid.IV(0, 0, 31), grid.IV(32, 32, 32))
	faceBytes := int(face.NumCells() * 8)
	buf := field.GetBuf(int(face.NumCells()))
	m["halo.pack.bytes_per_s"] = measureRate(faceBytes, 5, func() {
		buf = in.Pack(face, buf[:0])
	})
	dst := field.NewCellWithGhost(dom, 1)
	m["halo.unpack.bytes_per_s"] = measureRate(faceBytes, 5, func() {
		dst.Unpack(face, buf)
	})
	m["halo.allocs_per_op"] = testing.AllocsPerRun(10, func() {
		p := field.GetBuf(int(face.NumCells()))
		p = in.Pack(face, p)
		dst.Unpack(face, p)
		field.PutSlice(p)
	})
	field.PutSlice(buf)

	// Warehouse allocate/free churn (swaps/s): the per-step variable
	// lifecycle on a 16^3 patch, pooled storage.
	plv, err := grid.NewUnitCubeLevel(grid.IV(16, 16, 16), grid.IV(1, 1, 1))
	if err != nil {
		panic(err)
	}
	patch := plv.Layout.Patch(0)
	cg := sw26010.NewMachine(sim.NewEngine(), perf.DefaultParams(), 1).CG(0)
	pair := dw.NewPair(dw.Functional, cg)
	u := taskgraph.NewLabel("u", nil)
	if err := pair.Old.Allocate(u, patch, 1); err != nil {
		panic(err)
	}
	m["dw.churn.swaps_per_s"] = measureRate(1, 5, func() {
		if err := pair.New.Allocate(u, patch, 1); err != nil {
			panic(err)
		}
		pair.Swap()
	})

	// End-to-end timestep throughput (steps/s) of a 32-rank case, on the
	// serial engine and on the sharded conservative engine. The pair
	// gates the parallel engine: a scheduling or barrier regression shows
	// up in e2e.shards4 even when the micro-metrics above hold steady.
	const e2eSteps = 2
	e2e := func(shards int) func() {
		spec := runner.Spec{Cells: "64x64x128", Layout: "4x4x2", CGs: 32,
			Variant: "acc_simd.async", Steps: e2eSteps, Shards: shards}
		return func() {
			res, err := experiments.Exec(context.Background(), spec)
			if err != nil {
				panic(err)
			}
			if !res.Feasible {
				panic("benchgate: e2e case infeasible")
			}
		}
	}
	m["e2e.serial.steps_per_s"] = measureRate(e2eSteps, 3, e2e(0))
	m["e2e.shards4.steps_per_s"] = measureRate(e2eSteps, 3, e2e(4))

	// Mixed-physics end-to-end throughput (steps/s): all three model
	// problems partitioned across patches with per-patch task predicates
	// and physics-interface BC fills — the workload scenarios' hot path.
	mixedSpec := runner.Spec{Cells: "16x16x32", Layout: "2x2x4", CGs: 4,
		Variant: "acc.async", Steps: e2eSteps,
		Physics: "mix:burgers=1,advection=1,heat3d=1,seed=3"}
	m["e2e.mixed.steps_per_s"] = measureRate(e2eSteps, 3, func() {
		res, err := experiments.Exec(context.Background(), mixedSpec)
		if err != nil {
			panic(err)
		}
		if !res.Feasible {
			panic("benchgate: mixed-physics case infeasible")
		}
	})

	// Scenario expansion throughput (jobs/s): the workload generator's
	// thinned-sampling and storm-wave path, no simulation involved.
	sc := workload.DefaultScenario()
	expanded, err := sc.Expand()
	if err != nil {
		panic(err)
	}
	m["workload.expand.jobs_per_s"] = measureRate(len(expanded), 5, func() {
		if _, err := sc.Expand(); err != nil {
			panic(err)
		}
	})

	// Event-loop throughput (events/s): a self-rescheduling chain.
	m["sim.events_per_s"] = measureRate(100000, 5, func() {
		e := sim.NewEngine()
		n := 0
		var tick func()
		tick = func() {
			n++
			if n < 100000 {
				e.Schedule(sim.Microsecond, tick)
			}
		}
		e.Schedule(sim.Microsecond, tick)
		e.Run()
	})

	return m
}

func record(path string) error {
	b := Baseline{
		Schema:    1,
		Go:        runtime.Version(),
		Generated: time.Now().UTC().Format(time.RFC3339),
		Metrics:   collect(),
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// check compares fresh measurements against the baseline, returning the
// list of failures.
func check(path string, tol float64, verbose bool) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("read baseline: %w (run `make bench` to record one)", err)
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		return nil, fmt.Errorf("parse baseline: %w", err)
	}
	cur := collect()
	baseCalib, curCalib := base.Metrics[calibName], cur[calibName]

	var names []string
	for name := range base.Metrics {
		names = append(names, name)
	}
	sort.Strings(names)

	var failures []string
	for _, name := range names {
		b, c := base.Metrics[name], cur[name]
		if name == calibName {
			if verbose {
				fmt.Printf("%-28s baseline %.3g  current %.3g  (calibration)\n", name, b, c)
			}
			continue
		}
		if _, ok := cur[name]; !ok {
			failures = append(failures, fmt.Sprintf("%s: metric no longer measured", name))
			continue
		}
		if strings.HasSuffix(name, "allocs_per_op") {
			// Absolute: allocation regressions are machine-independent.
			if c > b+0.5 {
				failures = append(failures, fmt.Sprintf("%s: %.1f allocs/op, baseline %.1f", name, c, b))
			}
			if verbose {
				fmt.Printf("%-28s baseline %.1f  current %.1f  allocs/op\n", name, b, c)
			}
			continue
		}
		rawRegressed := c < b*(1-tol)
		normRegressed := true
		if baseCalib > 0 && curCalib > 0 {
			normRegressed = c/curCalib < (b/baseCalib)*(1-tol)
		}
		if verbose {
			ratio := 0.0
			if b > 0 {
				ratio = c / b
			}
			fmt.Printf("%-28s baseline %.3g  current %.3g  (%.0f%% of baseline)\n", name, b, c, ratio*100)
		}
		if rawRegressed && normRegressed {
			failures = append(failures, fmt.Sprintf("%s: %.3g vs baseline %.3g (>%.0f%% regression, calibration-adjusted)",
				name, c, b, tol*100))
		}
	}
	return failures, nil
}

func main() {
	recordFlag := flag.Bool("record", false, "measure and write the baseline")
	out := flag.String("o", "BENCH_baseline.json", "baseline path for -record")
	checkFlag := flag.String("check", "", "baseline file to compare against")
	tol := flag.Float64("tol", 0.15, "allowed fractional regression for rate metrics")
	verbose := flag.Bool("v", false, "print every metric comparison")
	flag.Parse()

	switch {
	case *recordFlag:
		if err := record(*out); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchgate: wrote %s\n", *out)
	case *checkFlag != "":
		failures, err := check(*checkFlag, *tol, *verbose)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(1)
		}
		if len(failures) > 0 {
			for _, f := range failures {
				fmt.Fprintln(os.Stderr, "benchgate: REGRESSION:", f)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchgate: %s ok (tol %.0f%%)\n", *checkFlag, *tol*100)
	default:
		fmt.Fprintln(os.Stderr, "usage: benchgate -record [-o file] | -check file [-tol f] [-v]")
		os.Exit(2)
	}
}
