// Command benchgate records and enforces the repository's performance
// baseline. It times the wall-clock hot paths of the simulated runtime —
// the monomorphic Burgers kernel, the halo pack/unpack path, the
// warehouse allocate/free churn and the discrete-event loop — plus their
// steady-state allocation counts, and writes them to a JSON baseline
// (`make bench`). In check mode (`make check`) it reruns the workloads
// and fails when a metric regresses by more than the tolerance.
//
// Machine-speed robustness: the baseline includes a calibration metric (a
// fixed pure-CPU loop). A throughput metric only fails the gate when both
// its raw value and its calibration-normalised ratio regress beyond the
// tolerance, so a uniformly slower machine does not trip the gate while a
// genuine hot-path regression does. Allocation metrics are compared
// absolutely (a pool regression shows up as allocs/op > baseline).
//
// Usage:
//
//	benchgate -record [-o BENCH_baseline.json]
//	benchgate -check BENCH_baseline.json [-tol 0.15] [-v]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"sunuintah/internal/burgers"
	"sunuintah/internal/core"
	"sunuintah/internal/dw"
	"sunuintah/internal/experiments"
	"sunuintah/internal/field"
	"sunuintah/internal/grid"
	"sunuintah/internal/obs"
	"sunuintah/internal/perf"
	"sunuintah/internal/runner"
	"sunuintah/internal/sim"
	"sunuintah/internal/sw26010"
	"sunuintah/internal/taskgraph"
	"sunuintah/internal/trace"
	"sunuintah/internal/workload"
)

// calibName is the machine-speed reference metric every rate is
// normalised by in check mode.
const calibName = "calib.iters_per_s"

// schemaVersion is the baseline file format this benchgate reads and
// writes. Schema 2 added the recorded GOMAXPROCS and the Time-Warp
// metrics (sim.opt.*, e2e.opt4.speedup_x); schema 3 added the
// observability metrics (obs.overhead_frac, obs.nilprobe.allocs_per_op).
// A stale-schema baseline fails the gate with a re-record instruction
// instead of silently skipping the new metrics.
const schemaVersion = 3

// Baseline is the persisted gate file.
type Baseline struct {
	Schema int    `json:"schema"`
	Go     string `json:"go"`
	// GoMaxProcs records the parallelism the baseline was measured under.
	// Rate metrics are calibration-normalised so this is informational, but
	// the speedup floors are parallelism-dependent — a baseline recorded on
	// a single-core runner explains a 0.9x shards4 ratio at a glance.
	GoMaxProcs int                `json:"gomaxprocs"`
	Generated  string             `json:"generated"`
	Metrics    map[string]float64 `json:"metrics"`
}

// peakSpin is the fastest spin-probe rate observed so far in this process.
// It approximates the host's unthrottled speed and lets measureRate detect
// when an entire metric's sampling ran inside a scheduler-throttle burst.
var peakSpin float64

// spinProbe runs a short fixed FastExp loop (~2ms unthrottled) and returns
// its rate. Measured immediately adjacent to each sample window, it tags
// windows that ran while the host was being throttled.
func spinProbe() float64 {
	const n = 100000
	x := -3.7
	s := 0.0
	start := time.Now()
	for i := 0; i < n; i++ {
		s += burgers.FastExp(x)
		x += 1e-6
	}
	el := time.Since(start)
	if s == 0 {
		panic("spin probe underflow")
	}
	rate := float64(n) / el.Seconds()
	if rate > peakSpin {
		peakSpin = rate
	}
	return rate
}

// measureRate returns the throughput of fn (units/second), where fn performs
// n units of work per call. Shared hosts hand out both throttled and lucky
// scheduler windows, and a best-of estimator turns the recorded baseline
// into an outlier every honest re-run then "regresses" against — so instead
// each ≥20ms sample window is bracketed by spin probes, windows whose
// adjacent probes fell well below the metric's fastest are discarded as
// throttled, and the median of the survivors is reported. If the whole
// metric sampled inside a throttle burst (its best probe is far below the
// process-wide peak), sampling is retried a bounded number of times.
func measureRate(n int, reps int, fn func()) float64 {
	fn() // warm caches and pools
	for attempt := 0; ; attempt++ {
		rate, best := sampleRate(n, reps, fn)
		if best >= 0.7*peakSpin || attempt >= 2 {
			return rate
		}
	}
}

// oneWindow returns fn's throughput over a single timing window of at
// least 20ms, growing the iteration count until the window is long enough
// to time reliably.
func oneWindow(n int, fn func()) float64 {
	iters := 1
	for {
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn()
		}
		el := time.Since(start)
		if el >= 20*time.Millisecond {
			return float64(n) * float64(iters) / el.Seconds()
		}
		iters *= 4
	}
}

func sampleRate(n int, reps int, fn func()) (rate, bestSpin float64) {
	type sample struct{ rate, spin float64 }
	samples := make([]sample, 0, reps)
	for r := 0; r < reps; r++ {
		before := spinProbe()
		measured := oneWindow(n, fn)
		after := spinProbe()
		spin := before
		if after < spin {
			spin = after
		}
		samples = append(samples, sample{measured, spin})
		if spin > bestSpin {
			bestSpin = spin
		}
	}
	rates := make([]float64, 0, len(samples))
	for _, s := range samples {
		if s.spin >= 0.8*bestSpin {
			rates = append(rates, s.rate)
		}
	}
	sort.Float64s(rates)
	if len(rates)%2 == 1 {
		return rates[len(rates)/2], bestSpin
	}
	return (rates[len(rates)/2-1] + rates[len(rates)/2]) / 2, bestSpin
}

func collect() map[string]float64 {
	m := map[string]float64{}

	// Calibration: a fixed FastExp loop — pure CPU, no allocation, no
	// scheduler involvement.
	calib := func() {
		x := -3.7
		s := 0.0
		for i := 0; i < 10000; i++ {
			s += burgers.FastExp(x)
			x += 1e-6
		}
		if s == 0 {
			panic("calibration underflow")
		}
	}
	m[calibName] = measureRate(10000, 5, calib)

	// Observability overhead: the sampler + speculation hooks must cost
	// under 5% of e2e steps/s. The cost is isolated at the core layer:
	// both sides of a pair run the same resolved config with a trace
	// recorder attached (an observed run always records one), and the
	// instrumented side additionally wires every probe and speculation
	// hook with report assembly disabled (obs.Options.HooksOnly) — so the
	// delta is exactly the always-on hook tax, not the one-shot report
	// assembly that only reporting runs pay. The case runs longer than
	// the e2e speedup cases because the sampler's cost is sublinear in
	// run length (decimation bounds every series, so a 2-step window
	// would mostly time the fixed arena setup, not the steady-state tax
	// production jobs pay). Interleaved pairs like the speedup metrics —
	// a throttle burst hits both sides of one pair instead of biasing a
	// whole side — and each pair's overhead clamps at 0 (a recorder
	// faster than its control is measurement noise, not negative cost).
	{
		const obsSteps = 16 // 8x the e2e speedup cases' window
		spec := runner.Spec{Cells: "64x64x128", Layout: "4x4x2", CGs: 32,
			Variant: "acc_simd.async", Steps: obsSteps, Shards: 4}
		baseCfg, prob, err := experiments.SpecConfig(spec)
		if err != nil {
			panic(err)
		}
		runCase := func(hooks bool) func() {
			return func() {
				cfg := baseCfg
				if hooks {
					cfg.Obs = &obs.Options{HooksOnly: true}
				} else {
					cfg.Scheduler.Trace = trace.New()
				}
				s, err := core.NewSimulation(cfg, prob)
				if err != nil {
					panic(err)
				}
				if _, err := s.Run(obsSteps); err != nil {
					panic(err)
				}
			}
		}
		plainFn, hookFn := runCase(false), runCase(true)
		plainFn()
		hookFn()
		// Single-core hosts with a concurrent GC make individual windows
		// of this case swing by ±10%, so per-pair ratios cannot be
		// compared against a 5% budget. Each round interleaves several
		// windows per side, each behind a forced GC (so neither side
		// inherits the other's garbage), and ratios the per-side medians;
		// the metric is the median of three such rounds. The block runs
		// right after calibration, before the e2e suites grow the heap,
		// so every forced-GC window starts from the same small live set.
		window := func(fn func()) float64 {
			runtime.GC()
			return oneWindow(obsSteps, fn)
		}
		const rounds, wins = 3, 5
		ovs := make([]float64, 0, rounds)
		for r := 0; r < rounds; r++ {
			ps := make([]float64, 0, wins)
			ws := make([]float64, 0, wins)
			for i := 0; i < wins; i++ {
				ps = append(ps, window(plainFn))
				ws = append(ws, window(hookFn))
			}
			ov := 1 - median(ws)/median(ps)
			if ov < 0 {
				ov = 0
			}
			ovs = append(ovs, ov)
		}
		m["obs.overhead_frac"] = median(ovs)
	}

	// Kernel throughput per exponential library (cells/s) on the
	// benchmark's 32^3 single-patch grid.
	lv, err := grid.NewUnitCubeLevel(grid.IV(32, 32, 32), grid.IV(1, 1, 1))
	if err != nil {
		panic(err)
	}
	dom := lv.Layout.Domain
	in := field.NewCellWithGhost(dom, 1)
	in.FillFunc(in.Alloc(), func(c grid.IVec) float64 {
		x, y, z := lv.CellCenter(c)
		return burgers.Initial(x, y, z)
	})
	out := field.NewCell(dom)
	dt := burgers.StableDt(lv.Spacing[0], lv.Spacing[1], lv.Spacing[2])
	cells := int(dom.NumCells())
	m["kernel.fast.cells_per_s"] = measureRate(cells, 5, func() {
		burgers.Advance(in, out, dom, lv, 0, dt, burgers.FastExpLib)
	})
	m["kernel.ieee.cells_per_s"] = measureRate(cells, 5, func() {
		burgers.Advance(in, out, dom, lv, 0, dt, burgers.IEEEExpLib)
	})
	m["kernel.allocs_per_op"] = testing.AllocsPerRun(10, func() {
		burgers.Advance(in, out, dom, lv, 0, dt, burgers.FastExpLib)
	})

	// Halo pack/unpack (bytes/s) of one ghost face, pooled payload.
	face := grid.NewBox(grid.IV(0, 0, 31), grid.IV(32, 32, 32))
	faceBytes := int(face.NumCells() * 8)
	buf := field.GetBuf(int(face.NumCells()))
	m["halo.pack.bytes_per_s"] = measureRate(faceBytes, 5, func() {
		buf = in.Pack(face, buf[:0])
	})
	dst := field.NewCellWithGhost(dom, 1)
	m["halo.unpack.bytes_per_s"] = measureRate(faceBytes, 5, func() {
		dst.Unpack(face, buf)
	})
	m["halo.allocs_per_op"] = testing.AllocsPerRun(10, func() {
		p := field.GetBuf(int(face.NumCells()))
		p = in.Pack(face, p)
		dst.Unpack(face, p)
		field.PutSlice(p)
	})
	field.PutSlice(buf)

	// Warehouse allocate/free churn (swaps/s): the per-step variable
	// lifecycle on a 16^3 patch, pooled storage.
	plv, err := grid.NewUnitCubeLevel(grid.IV(16, 16, 16), grid.IV(1, 1, 1))
	if err != nil {
		panic(err)
	}
	patch := plv.Layout.Patch(0)
	cg := sw26010.NewMachine(sim.NewEngine(), perf.DefaultParams(), 1).CG(0)
	pair := dw.NewPair(dw.Functional, cg)
	u := taskgraph.NewLabel("u", nil)
	if err := pair.Old.Allocate(u, patch, 1); err != nil {
		panic(err)
	}
	m["dw.churn.swaps_per_s"] = measureRate(1, 5, func() {
		if err := pair.New.Allocate(u, patch, 1); err != nil {
			panic(err)
		}
		pair.Swap()
	})

	// End-to-end timestep throughput (steps/s) of a 32-rank case, on the
	// serial engine and on the sharded conservative engine. The pair
	// gates the parallel engine: a scheduling or barrier regression shows
	// up in e2e.shards4 even when the micro-metrics above hold steady.
	const e2eSteps = 2
	e2e := func(shards int) func() {
		spec := runner.Spec{Cells: "64x64x128", Layout: "4x4x2", CGs: 32,
			Variant: "acc_simd.async", Steps: e2eSteps, Shards: shards}
		return func() {
			res, err := experiments.Exec(context.Background(), spec)
			if err != nil {
				panic(err)
			}
			if !res.Feasible {
				panic("benchgate: e2e case infeasible")
			}
		}
	}
	m["e2e.serial.steps_per_s"] = measureRate(e2eSteps, 5, e2e(0))
	m["e2e.shards4.steps_per_s"] = measureRate(e2eSteps, 5, e2e(4))
	// The parallel engine's headline ratio, checked against an absolute
	// floor that scales with the machine's parallelism (see speedupFloor).
	// It is measured from interleaved windows — serial and sharded timed
	// back-to-back within each rep and the ratio taken per pair — so a host
	// throttle burst degrades both sides of one sample instead of biasing
	// an entire side, which the two independent rates above are exposed to.
	{
		serialFn, shardFn := e2e(0), e2e(4)
		const reps = 7
		ratios := make([]float64, 0, reps)
		for r := 0; r < reps; r++ {
			s := oneWindow(e2eSteps, serialFn)
			p := oneWindow(e2eSteps, shardFn)
			ratios = append(ratios, p/s)
		}
		sort.Float64s(ratios)
		m["e2e.shards4.speedup_x"] = ratios[reps/2]
	}

	// The Time-Warp knob's e2e ratio: optimistic versus conservative shard
	// coordination on the same shards-4 case, interleaved like the speedup
	// pair above. Rank drivers are processes, so at e2e level the optimistic
	// coordinator takes its documented conservative fallback — the gate is
	// "requesting -optimistic must not cost wall-clock", a flat must-not-lose
	// floor rather than the parallelism floor (see floorFor).
	{
		consFn := e2e(4)
		optFn := func() {
			spec := runner.Spec{Cells: "64x64x128", Layout: "4x4x2", CGs: 32,
				Variant: "acc_simd.async", Steps: e2eSteps, Shards: 4, Optimistic: true}
			res, err := experiments.Exec(context.Background(), spec)
			if err != nil {
				panic(err)
			}
			if !res.Feasible {
				panic("benchgate: e2e opt case infeasible")
			}
		}
		const reps = 7
		ratios := make([]float64, 0, reps)
		for r := 0; r < reps; r++ {
			c := oneWindow(e2eSteps, consFn)
			p := oneWindow(e2eSteps, optFn)
			ratios = append(ratios, p/c)
		}
		sort.Float64s(ratios)
		m["e2e.opt4.speedup_x"] = ratios[reps/2]
	}

	// Mixed-physics end-to-end throughput (steps/s): all three model
	// problems partitioned across patches with per-patch task predicates
	// and physics-interface BC fills — the workload scenarios' hot path.
	mixedSpec := runner.Spec{Cells: "16x16x32", Layout: "2x2x4", CGs: 4,
		Variant: "acc.async", Steps: e2eSteps,
		Physics: "mix:burgers=1,advection=1,heat3d=1,seed=3"}
	m["e2e.mixed.steps_per_s"] = measureRate(e2eSteps, 5, func() {
		res, err := experiments.Exec(context.Background(), mixedSpec)
		if err != nil {
			panic(err)
		}
		if !res.Feasible {
			panic("benchgate: mixed-physics case infeasible")
		}
	})

	// Scenario expansion throughput (jobs/s): the workload generator's
	// thinned-sampling and storm-wave path, no simulation involved.
	sc := workload.DefaultScenario()
	expanded, err := sc.Expand()
	if err != nil {
		panic(err)
	}
	m["workload.expand.jobs_per_s"] = measureRate(len(expanded), 5, func() {
		if _, err := sc.Expand(); err != nil {
			panic(err)
		}
	})

	// Event-loop throughput (events/s): a self-rescheduling chain on the
	// no-handle After path, so the arena's recycling is what is measured
	// rather than per-event handle allocation.
	m["sim.events_per_s"] = measureRate(100000, 5, func() {
		e := sim.NewEngine()
		n := 0
		var tick func()
		tick = func() {
			n++
			if n < 100000 {
				e.After(sim.Microsecond, tick)
			}
		}
		e.After(sim.Microsecond, tick)
		e.Run()
	})

	// Batched cross-shard mail (msgs/s and steady-state allocs): one
	// source shard floods a destination through the post → Flush merge →
	// bulk-inject path, the sharded engine's hot seam.
	{
		const mailBatch = 1024
		runtime.GC() // flush earlier metrics' garbage; the round itself is alloc-free
		ss := sim.NewShardSet(2, sim.Microsecond)
		src, dst := ss.Engine(0), ss.Engine(1)
		sink := sim.NewCounter(dst, "mail-sink")
		round := func() {
			at := dst.Now() + 2*sim.Microsecond
			for i := 0; i < mailBatch; i++ {
				ss.PostCall(src, dst, at+sim.Time(i%64)*sim.Microsecond/256, sink)
			}
			ss.Flush()
			dst.Run()
		}
		round() // warm the arenas and merge buffers
		// More reps than the other metrics: each round is short (~300µs),
		// so the best-of search needs to span several scheduler throttle
		// periods on shared hosts to find an undisturbed window.
		m["sim.mail.msgs_per_s"] = measureRate(mailBatch, 12, round)
		m["sim.mail.allocs_per_op"] = testing.AllocsPerRun(10, round)
	}

	// The disabled-observability fast path must stay allocation-free: a nil
	// SpecRecorder's Observe and a publish to a subscriber-less progress
	// topic are what every non-instrumented run pays per window/step.
	{
		var rec *obs.SpecRecorder
		bus := obs.NewProgressBus()
		ws := sim.WindowStats{Window: 1, Executed: 10}
		ev := obs.ProgressEvent{Rank: 1, Step: 1, Done: 1, Total: 10}
		m["obs.nilprobe.allocs_per_op"] = testing.AllocsPerRun(100, func() {
			rec.Observe(ws)
			bus.Publish("benchgate", ev)
		})
	}

	// Time-Warp optimistic coordination (events/s, and the rollback
	// fraction the adaptive throttle is minimising) on a PHOLD-style model
	// with real speculation: cross-shard sends land one lookahead away, so
	// deep windows mis-speculate and roll back. Both the event count and
	// the rollback fraction are deterministic functions of the model (the
	// engine's bit-identity contract), so the fraction is gated absolutely
	// (see check) and the count can calibrate the rate denominator.
	{
		ref := runTimeWarpModel()
		if ref.Rollbacks == 0 || ref.AntiMessages == 0 {
			panic("benchgate: Time-Warp metric model never rolled back — speculation is not being measured")
		}
		m["sim.opt.rollback_frac"] = ref.RollbackFrac()
		m["sim.opt.events_per_s"] = measureRate(int(ref.EventsExecuted), 5, func() {
			runTimeWarpModel()
		})
	}

	return m
}

// twNode is a PHOLD-style actor for the Time-Warp metrics: each job folds
// (time, payload) into an order-sensitive hash and schedules one
// successor, locally (sub-lookahead delay) or on a pseudo-random peer one
// lookahead away. It mirrors the sim package's bit-identity test model —
// the metric needs genuine speculation with genuine rollbacks, not a
// straight-line event chain.
type twNode struct {
	id    int
	nodes []*twNode
	eng   *sim.Engine
	post  func(dst int, at sim.Time, fn func())

	rng    uint64
	hash   uint64
	budget int64
}

type twState struct {
	rng, hash uint64
	budget    int64
}

func (nd *twNode) SaveState() any { return twState{nd.rng, nd.hash, nd.budget} }

func (nd *twNode) RestoreState(s any) {
	st := s.(twState)
	nd.rng, nd.hash, nd.budget = st.rng, st.hash, st.budget
}

// twMix is a splitmix64 step: the model's deterministic jitter source.
func twMix(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4b9b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

const twLookahead = 5 * sim.Nanosecond

func (nd *twNode) job(payload uint64) {
	t := nd.eng.Now()
	nd.hash = nd.hash*1099511628211 ^ math.Float64bits(float64(t)) ^ payload
	if nd.budget <= 0 {
		return
	}
	nd.budget--
	r := twMix(&nd.rng)
	next := twMix(&nd.rng)
	jitter := sim.Time(r%1000) * 1e-12
	if (r>>32)%100 < 30 {
		dst := int(next % uint64(len(nd.nodes)))
		dn := nd.nodes[dst]
		nd.post(dst, t+twLookahead+sim.Nanosecond+jitter, func() { dn.job(next) })
	} else {
		at := t + 2e-10 + jitter
		nd.eng.ScheduleAt(at, func() { nd.job(next) })
	}
}

// runTimeWarpModel builds and runs the PHOLD model on a 4-shard
// OptimisticShardSet at full speculation depth and returns the run's
// stats. The run is deterministic, so its EventsExecuted and rollback
// fraction are stable across invocations.
func runTimeWarpModel() sim.OptStats {
	const nNodes, nShards, budget = 8, 4, 1000
	o := sim.NewOptimisticShardSet(nShards, twLookahead, sim.OptConfig{MaxDepth: 4})
	nodes := make([]*twNode, nNodes)
	for i := range nodes {
		nodes[i] = &twNode{id: i, rng: uint64(i)*2654435761 + 12345, budget: budget}
	}
	for i, nd := range nodes {
		nd.nodes = nodes
		nd.eng = o.Engine(i % nShards)
		src := nd.eng
		nd.post = func(dst int, at sim.Time, fn func()) {
			o.Post(src, o.Engine(dst%nShards), at, fn)
		}
		o.Register(i%nShards, nd)
	}
	for i, nd := range nodes {
		nd := nd
		payload := uint64(i) * 7777
		nd.eng.ScheduleAt(sim.Time(i+1)*sim.Nanosecond, func() { nd.job(payload) })
	}
	o.Run()
	st := o.Stats()
	if st.Degraded {
		panic("benchgate: Time-Warp metric model degraded to the conservative path")
	}
	return st
}

// speedupFloor is the minimum acceptable e2e.shards4.speedup_x for this
// machine. Four shards can only express their parallelism when the host
// gives the process at least four schedulable CPUs — there the tentpole
// 1.8x target is enforced. With fewer CPUs the engine runs windows inline
// on one thread, so the gate degrades to "sharding must not lose" (with
// headroom for measurement noise on shared single-core runners).
func speedupFloor() float64 {
	switch p := runtime.GOMAXPROCS(0); {
	case p >= 4:
		return 1.8
	case p >= 2:
		return 1.1
	default:
		return 0.85
	}
}

// floorFor maps a speedup metric to its floor. e2e.opt4.speedup_x is
// optimistic-versus-conservative on the same shard count — at e2e level
// the optimistic coordinator takes its documented conservative fallback
// (rank drivers are processes), so the honest gate is "the knob must not
// cost wall-clock" at any parallelism, not the shards-versus-serial
// parallelism floor.
func floorFor(name string) float64 {
	if name == "e2e.opt4.speedup_x" {
		return 0.85
	}
	return speedupFloor()
}

// fracSlack is the absolute headroom for *_frac metrics. They are
// deterministic functions of the gate's models (the optimistic engine's
// bit-identity contract), so any drift is a behaviour change: either a
// regression in the adaptive throttle or an intentional change that must
// re-record the baseline.
const fracSlack = 0.01

func record(path string) error {
	b := Baseline{
		Schema:     schemaVersion,
		Go:         runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Generated:  time.Now().UTC().Format(time.RFC3339),
		Metrics:    collect(),
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// check compares fresh measurements against the baseline, returning the
// list of failures.
func check(path string, tol float64, verbose bool) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("read baseline: %w (run `make bench` to record one)", err)
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		return nil, fmt.Errorf("parse baseline: %w", err)
	}
	if base.Schema != schemaVersion {
		return nil, fmt.Errorf("baseline %s has schema %d, this benchgate requires schema %d (run `make bench` to re-record)",
			path, base.Schema, schemaVersion)
	}
	cur := collect()
	baseCalib, curCalib := base.Metrics[calibName], cur[calibName]

	var names []string
	for name := range base.Metrics {
		names = append(names, name)
	}
	sort.Strings(names)

	var failures []string
	for _, name := range names {
		b, c := base.Metrics[name], cur[name]
		if name == calibName {
			if verbose {
				fmt.Printf("%-28s baseline %.3g  current %.3g  (calibration)\n", name, b, c)
			}
			continue
		}
		if _, ok := cur[name]; !ok {
			failures = append(failures, fmt.Sprintf("%s: metric no longer measured", name))
			continue
		}
		if strings.HasSuffix(name, "speedup_x") {
			// Absolute floor, parallelism-aware: the ratio is already
			// machine-normalised (same host measures both sides).
			floor := floorFor(name)
			if c < floor {
				failures = append(failures, fmt.Sprintf("%s: %.2fx, floor %.2fx (GOMAXPROCS=%d)",
					name, c, floor, runtime.GOMAXPROCS(0)))
			}
			if verbose {
				fmt.Printf("%-28s baseline %.2fx  current %.2fx  (floor %.2fx)\n", name, b, c, floor)
			}
			continue
		}
		if name == "obs.overhead_frac" {
			// The recorder's cost is bounded by contract (<5%), not by its
			// own history: a baseline recorded on a quiet host must not turn
			// ordinary jitter on a noisy one into a regression.
			limit := 0.05
			if b+fracSlack > limit {
				limit = b + fracSlack
			}
			if c > limit {
				failures = append(failures, fmt.Sprintf("%s: %.3f, limit %.3f (observability must stay cheap)",
					name, c, limit))
			}
			if verbose {
				fmt.Printf("%-28s baseline %.3f  current %.3f  (limit %.3f)\n", name, b, c, limit)
			}
			continue
		}
		if strings.HasSuffix(name, "_frac") {
			// Absolute must-not-exceed: the fraction is deterministic, so
			// growth means the speculation/rollback balance changed.
			if c > b+fracSlack {
				failures = append(failures, fmt.Sprintf("%s: %.3f, baseline %.3f (must not exceed by >%.2f)",
					name, c, b, fracSlack))
			}
			if verbose {
				fmt.Printf("%-28s baseline %.3f  current %.3f  (must-not-exceed)\n", name, b, c)
			}
			continue
		}
		if strings.HasSuffix(name, "allocs_per_op") {
			// Absolute: allocation regressions are machine-independent.
			if c > b+0.5 {
				failures = append(failures, fmt.Sprintf("%s: %.1f allocs/op, baseline %.1f", name, c, b))
			}
			if verbose {
				fmt.Printf("%-28s baseline %.1f  current %.1f  allocs/op\n", name, b, c)
			}
			continue
		}
		rawRegressed := c < b*(1-tol)
		normRegressed := true
		if baseCalib > 0 && curCalib > 0 {
			normRegressed = c/curCalib < (b/baseCalib)*(1-tol)
		}
		if verbose {
			ratio := 0.0
			if b > 0 {
				ratio = c / b
			}
			fmt.Printf("%-28s baseline %.3g  current %.3g  (%.0f%% of baseline)\n", name, b, c, ratio*100)
		}
		if rawRegressed && normRegressed {
			failures = append(failures, fmt.Sprintf("%s: %.3g vs baseline %.3g (>%.0f%% regression, calibration-adjusted)",
				name, c, b, tol*100))
		}
	}

	// A metric measured now but absent from the baseline is a hard failure,
	// not a silent skip: a newly added gate metric must land together with
	// its recorded baseline, or it would never actually gate anything.
	var extra []string
	for name := range cur {
		if _, ok := base.Metrics[name]; !ok {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		failures = append(failures, fmt.Sprintf("%s: measured but missing from baseline (run `make bench` to re-record)", name))
	}
	return failures, nil
}

func main() {
	recordFlag := flag.Bool("record", false, "measure and write the baseline")
	out := flag.String("o", "BENCH_baseline.json", "baseline path for -record")
	checkFlag := flag.String("check", "", "baseline file to compare against")
	tol := flag.Float64("tol", 0.15, "allowed fractional regression for rate metrics")
	verbose := flag.Bool("v", false, "print every metric comparison")
	flag.Parse()

	switch {
	case *recordFlag:
		if err := record(*out); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchgate: wrote %s\n", *out)
	case *checkFlag != "":
		failures, err := check(*checkFlag, *tol, *verbose)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(1)
		}
		if len(failures) > 0 {
			for _, f := range failures {
				fmt.Fprintln(os.Stderr, "benchgate: REGRESSION:", f)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchgate: %s ok (tol %.0f%%)\n", *checkFlag, *tol*100)
	default:
		fmt.Fprintln(os.Stderr, "usage: benchgate -record [-o file] | -check file [-tol f] [-v]")
		os.Exit(2)
	}
}

// median returns the middle value of xs (upper middle for even counts)
// without reordering the caller's slice.
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}
