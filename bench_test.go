// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation. Each benchmark regenerates its artifact through the
// experiments package (timing-only runtime, reduced to 2 timesteps so the
// suite completes in minutes) and reports the artifact's headline numbers
// as benchmark metrics.
//
//	go test -bench=. -benchmem
//
// For the full 10-step artifacts in the paper's layout, run
//
//	go run ./cmd/sunbench all
package repro

import (
	"context"
	"fmt"
	"testing"

	"sunuintah/internal/experiments"
	"sunuintah/internal/runner"
	"sunuintah/internal/sim"
	"sunuintah/internal/workload"
)

// benchSteps keeps each regenerated artifact fast enough for a benchmark
// iteration while preserving every shape (per-step costs are step-
// independent in this model).
const benchSteps = 2

func newSweep() *experiments.Sweep {
	return experiments.NewSweep(experiments.Options{Steps: benchSteps})
}

func BenchmarkTable1FlopsPerCell(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TableI(newSweep())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].FlopsPerCell, "flops/cell-small")
		b.ReportMetric(rows[len(rows)-1].FlopsPerCell, "flops/cell-large")
		b.ReportMetric(rows[len(rows)-1].ExpFraction*100, "exp-%")
	}
}

func BenchmarkTable3ProblemSettings(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TableIII(newSweep())
		if err != nil {
			b.Fatal(err)
		}
		starred := 0
		for _, r := range rows {
			if r.Starred {
				starred++
			}
		}
		b.ReportMetric(float64(starred), "oom-verified-rows")
	}
}

func BenchmarkTable5StrongScalingEfficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TableV(newSweep())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].SimdAsync, "eff-%-small-simd.async")
		b.ReportMetric(rows[len(rows)-1].SimdAsync, "eff-%-large-simd.async")
		b.ReportMetric(rows[len(rows)-1].SimdSync, "eff-%-large-simd.sync")
	}
}

func BenchmarkTable6AsyncImprovementNonVec(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.AsyncImprovement(newSweep(), false)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.Average(), "avg-improvement-%")
		b.ReportMetric(t.Best(), "best-improvement-%")
	}
}

func BenchmarkTable7AsyncImprovementVec(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.AsyncImprovement(newSweep(), true)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.Average(), "avg-improvement-%")
		b.ReportMetric(t.Best(), "best-improvement-%")
	}
}

func BenchmarkFig5StrongScalingWallTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := experiments.Figure5(newSweep())
		if err != nil {
			b.Fatal(err)
		}
		// Headline: the largest problem's fastest-variant endpoints.
		for _, fs := range series {
			if fs.Problem == "128x128x512" && fs.Variant == "acc_simd.async" {
				b.ReportMetric(fs.Points[0].PerStep, "s/step-8cg")
				b.ReportMetric(fs.Points[len(fs.Points)-1].PerStep, "s/step-128cg")
			}
		}
	}
}

func benchBoost(b *testing.B, problemIdx int) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Boosts(newSweep(), experiments.Problems[problemIdx])
		if err != nil {
			b.Fatal(err)
		}
		lo, hi := 1e9, 0.0
		for _, pt := range fig.Points {
			if pt.AccAsync < lo {
				lo = pt.AccAsync
			}
			if pt.SimdAsy > hi {
				hi = pt.SimdAsy
			}
		}
		b.ReportMetric(lo, "min-offload-boost-x")
		b.ReportMetric(hi, "max-total-boost-x")
	}
}

func BenchmarkFig6SmallProblemBoost(b *testing.B)  { benchBoost(b, 0) }
func BenchmarkFig7MediumProblemBoost(b *testing.B) { benchBoost(b, 3) }
func BenchmarkFig8LargeProblemBoost(b *testing.B)  { benchBoost(b, 6) }

func BenchmarkFig9FloatingPointPerformance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := experiments.Figure9And10(newSweep())
		if err != nil {
			b.Fatal(err)
		}
		for _, fs := range series {
			if fs.Problem == "128x128x512" {
				last := fs.Points[len(fs.Points)-1]
				b.ReportMetric(last.Gflops, "gflops-128cg")
			}
		}
	}
}

// BenchmarkTimestepEndToEnd times one whole simulated case — build,
// schedule, communicate, run benchSteps timesteps — at several rank
// counts, on the serial engine and on the sharded conservative engine.
// The serial/sharded pairs share a spec, so their s/step metrics expose
// the parallel engine's wall-clock speedup directly (results are
// bit-identical by construction; TestExecShardDeterminism enforces it).
func BenchmarkTimestepEndToEnd(b *testing.B) {
	engines := []struct {
		name       string
		shards     int
		optimistic bool
	}{
		{"serial", 0, false},
		{"shards4", 4, false},
		// The Time-Warp knob on the same case: rank drivers are processes,
		// so this measures the optimistic coordinator's documented
		// conservative fallback — i.e. that requesting -optimistic costs
		// nothing at e2e level (benchgate gates the ratio).
		{"opt4", 4, true},
	}
	for _, ranks := range []int{4, 16, 32} {
		for _, eng := range engines {
			b.Run(fmt.Sprintf("ranks%d/%s", ranks, eng.name), func(b *testing.B) {
				layouts := map[int]string{4: "2x2x1", 16: "4x2x2", 32: "4x4x2"}
				spec := runner.Spec{
					Cells:      "64x64x128",
					Layout:     layouts[ranks],
					CGs:        ranks,
					Variant:    "acc_simd.async",
					Steps:      benchSteps,
					Shards:     eng.shards,
					Optimistic: eng.optimistic,
				}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := experiments.Exec(context.Background(), spec)
					if err != nil {
						b.Fatal(err)
					}
					if !res.Feasible {
						b.Fatal("benchmark case infeasible")
					}
					b.ReportMetric(float64(res.Sim.PerStep), "simulated-s/step")
				}
			})
		}
	}
}

// BenchmarkMixedPhysicsEndToEnd times a run with all three model
// problems (Burgers, advection, heat3d) partitioned across the patch
// layout — the per-patch task-filtering path the workload scenarios
// exercise, with physics-interface BC fills replacing halo exchanges at
// model boundaries.
func BenchmarkMixedPhysicsEndToEnd(b *testing.B) {
	spec := runner.Spec{
		Cells:   "16x16x32",
		Layout:  "2x2x4",
		CGs:     4,
		Variant: "acc.async",
		Steps:   benchSteps,
		Physics: "mix:burgers=1,advection=1,heat3d=1,seed=3",
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Exec(context.Background(), spec)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Feasible {
			b.Fatal("benchmark case infeasible")
		}
		b.ReportMetric(float64(res.Sim.PerStep), "simulated-s/step")
	}
}

// BenchmarkWorkloadScenario times the full scenario sweep: expand the
// default mixed-physics scenario and run every job on a fresh pool.
func BenchmarkWorkloadScenario(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSweep()
		rep, err := experiments.RunScenario(s, workload.DefaultScenario())
		if err != nil {
			b.Fatal(err)
		}
		s.Close()
		b.ReportMetric(float64(rep.Jobs), "jobs")
	}
}

func BenchmarkFig10FloatingPointEfficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := experiments.Figure9And10(newSweep())
		if err != nil {
			b.Fatal(err)
		}
		best := 0.0
		for _, fs := range series {
			for _, pt := range fs.Points {
				if pt.Efficiency > best {
					best = pt.Efficiency
				}
			}
		}
		b.ReportMetric(best*100, "best-efficiency-%")
	}
}

// BenchmarkShardMailMerge measures the batched cross-shard mail path in
// isolation: one source shard posts a window's worth of envelopes to a
// destination shard, the barrier merge (Flush) sorts and bulk-injects
// them, and the destination drains. Steady state must not allocate —
// outboxes, merge buffers and event slots are all recycled.
func BenchmarkShardMailMerge(b *testing.B) {
	const batch = 1024
	ss := sim.NewShardSet(2, sim.Microsecond)
	src, dst := ss.Engine(0), ss.Engine(1)
	sink := sim.NewCounter(dst, "mail-sink")
	round := func() {
		at := dst.Now() + 2*sim.Microsecond
		for i := 0; i < batch; i++ {
			// Spread over 64 instants: ties and distinct times both on
			// the sort path.
			ss.PostCall(src, dst, at+sim.Time(i%64)*sim.Microsecond/256, sink)
		}
		ss.Flush()
		dst.Run()
	}
	round() // warm the arenas
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		round()
	}
	b.StopTimer()
	b.ReportMetric(float64(batch*b.N)/b.Elapsed().Seconds(), "msgs/s")
}

// twbNode is a PHOLD-style actor for BenchmarkOptimisticTimeWarp: each
// job folds (time, payload) into a hash and schedules one successor,
// locally or on a pseudo-random peer one lookahead away, so deep windows
// genuinely mis-speculate and roll back.
type twbNode struct {
	nodes  []*twbNode
	eng    *sim.Engine
	post   func(dst int, at sim.Time, fn func())
	rng    uint64
	hash   uint64
	budget int64
}

type twbState struct {
	rng, hash uint64
	budget    int64
}

func (nd *twbNode) SaveState() any { return twbState{nd.rng, nd.hash, nd.budget} }
func (nd *twbNode) RestoreState(s any) {
	st := s.(twbState)
	nd.rng, nd.hash, nd.budget = st.rng, st.hash, st.budget
}

func twbMix(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4b9b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

const twbLookahead = 5 * sim.Nanosecond

func (nd *twbNode) job(payload uint64) {
	t := nd.eng.Now()
	nd.hash = nd.hash*1099511628211 ^ uint64(t*1e12) ^ payload
	if nd.budget <= 0 {
		return
	}
	nd.budget--
	r := twbMix(&nd.rng)
	next := twbMix(&nd.rng)
	jitter := sim.Time(r%1000) * 1e-12
	if (r>>32)%100 < 30 {
		dst := int(next % uint64(len(nd.nodes)))
		dn := nd.nodes[dst]
		nd.post(dst, t+twbLookahead+sim.Nanosecond+jitter, func() { dn.job(next) })
	} else {
		nd.eng.ScheduleAt(t+2e-10+jitter, func() { nd.job(next) })
	}
}

// BenchmarkOptimisticTimeWarp measures the Time-Warp coordinator end to
// end — speculation, snapshots, rollbacks, anti-messages, fossil
// collection — on the PHOLD model, and reports the rollback fraction the
// adaptive throttle holds the run to.
func BenchmarkOptimisticTimeWarp(b *testing.B) {
	const nNodes, nShards, budget = 8, 4, 1000
	var last sim.OptStats
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o := sim.NewOptimisticShardSet(nShards, twbLookahead, sim.OptConfig{MaxDepth: 4})
		nodes := make([]*twbNode, nNodes)
		for j := range nodes {
			nodes[j] = &twbNode{rng: uint64(j)*2654435761 + 12345, budget: budget}
		}
		for j, nd := range nodes {
			nd.nodes = nodes
			nd.eng = o.Engine(j % nShards)
			src := nd.eng
			nd.post = func(dst int, at sim.Time, fn func()) {
				o.Post(src, o.Engine(dst%nShards), at, fn)
			}
			o.Register(j%nShards, nd)
		}
		for j, nd := range nodes {
			nd := nd
			payload := uint64(j) * 7777
			nd.eng.ScheduleAt(sim.Time(j+1)*sim.Nanosecond, func() { nd.job(payload) })
		}
		o.Run()
		last = o.Stats()
		if last.Degraded {
			b.Fatal("Time-Warp benchmark degraded to the conservative path")
		}
	}
	b.StopTimer()
	if last.Rollbacks == 0 {
		b.Fatal("Time-Warp benchmark never rolled back: speculation was not exercised")
	}
	b.ReportMetric(float64(last.EventsExecuted)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
	b.ReportMetric(last.RollbackFrac(), "rollback-frac")
}

// BenchmarkEventArena measures the engine's no-handle hot path: a
// self-rescheduling Caller chain where every fired event's slot is
// recycled through the arena. Zero allocs per event after warm-up.
func BenchmarkEventArena(b *testing.B) {
	e := sim.NewEngine()
	cnt := sim.NewCounter(e, "arena")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.CallAfter(sim.Microsecond, cnt)
		e.Run()
	}
	b.StopTimer()
	if cnt.Value() != int64(b.N) {
		b.Fatalf("fired %d events, want %d", cnt.Value(), b.N)
	}
}
