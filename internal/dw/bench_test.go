package dw

import (
	"testing"

	"sunuintah/internal/grid"
	"sunuintah/internal/taskgraph"
)

// The steady-state warehouse churn of a timestep: allocate the new
// warehouse's variable, swap (freeing the old). With pooled storage this
// cycle recycles one buffer per variable instead of allocating 36 KB per
// step.

func churnFixture(tb testing.TB) (*Pair, *taskgraph.Label, *grid.Patch) {
	tb.Helper()
	lv, err := grid.NewUnitCubeLevel(grid.IV(16, 16, 16), grid.IV(1, 1, 1))
	if err != nil {
		tb.Fatal(err)
	}
	pair := NewPair(Functional, testCG())
	u := taskgraph.NewLabel("u", nil)
	p := lv.Layout.Patch(0)
	if err := pair.Old.Allocate(u, p, 1); err != nil {
		tb.Fatal(err)
	}
	return pair, u, p
}

func BenchmarkWarehouseChurn(b *testing.B) {
	pair, u, p := churnFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pair.New.Allocate(u, p, 1); err != nil {
			b.Fatal(err)
		}
		pair.Swap()
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "swaps/s")
}

// TestWarehouseChurnSteadyStateAllocs bounds the per-step allocation of
// the allocate/swap cycle: the 36 KB field storage is pooled, leaving
// only the small bookkeeping structures (entry, map cell, warehouse).
func TestWarehouseChurnSteadyStateAllocs(t *testing.T) {
	pair, u, p := churnFixture(t)
	cycle := func() {
		if err := pair.New.Allocate(u, p, 1); err != nil {
			t.Fatal(err)
		}
		pair.Swap()
	}
	cycle() // warm the pool
	if n := testing.AllocsPerRun(20, cycle); n > 8 {
		t.Errorf("warehouse churn allocates %v objects per step, want small bookkeeping only (<= 8)", n)
	}
	// The dominant cost — field storage — must be pooled: one cycle must
	// not allocate anywhere near the 5832-cell backing array.
}
