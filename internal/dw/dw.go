// Package dw implements Uintah's data-warehouse abstraction: the old
// warehouse holds the previous timestep's variables, tasks read from it and
// populate the new warehouse, and at the end of the timestep the warehouses
// swap. Variable storage is accounted against the owning core group's
// memory, reproducing the paper's Table III out-of-memory cases.
//
// A warehouse operates in one of two modes: functional (variables carry
// real field data) or timing-only (only sizes are tracked, so billion-cell
// problems can be scheduled without allocating their storage).
package dw

import (
	"fmt"

	"sunuintah/internal/field"
	"sunuintah/internal/grid"
	"sunuintah/internal/sw26010"
	"sunuintah/internal/taskgraph"
)

// Mode selects functional or timing-only storage.
type Mode int

// Warehouse modes.
const (
	Functional Mode = iota
	TimingOnly
)

type varKey struct {
	label   *taskgraph.Label
	patchID int
}

type varEntry struct {
	data  *field.Cell // nil in timing-only mode
	bytes int64
	ghost int
	// box is the ungrown interior the variable was allocated over, kept so
	// a snapshot can re-create the entry without the originating patch.
	box grid.Box
}

// Warehouse stores one timestep's variables for one rank.
type Warehouse struct {
	mode Mode
	cg   *sw26010.CoreGroup
	vars map[varKey]*varEntry
}

// NewWarehouse creates an empty warehouse accounted against cg.
func NewWarehouse(mode Mode, cg *sw26010.CoreGroup) *Warehouse {
	return &Warehouse{mode: mode, cg: cg, vars: map[varKey]*varEntry{}}
}

// Mode returns the warehouse's storage mode.
func (w *Warehouse) Mode() Mode { return w.mode }

// Allocate creates the variable (label, patch) with the given ghost margin.
// It returns sw26010.ErrOutOfMemory when the core group's usable memory is
// exhausted. Allocating an existing variable is an error.
func (w *Warehouse) Allocate(label *taskgraph.Label, patch *grid.Patch, ghost int) error {
	k := varKey{label, patch.ID}
	if _, ok := w.vars[k]; ok {
		return fmt.Errorf("dw: variable %q already allocated on %v", label.Name(), patch)
	}
	bytes := patch.Box.Grow(ghost).NumCells() * 8
	if err := w.cg.Allocate(bytes); err != nil {
		return err
	}
	e := &varEntry{bytes: bytes, ghost: ghost, box: patch.Box}
	if w.mode == Functional {
		// Pooled storage: Free/FreeAll recycle the backing array, so the
		// per-step allocate/free churn of the warehouse swap is
		// allocation-free in steady state. The pool zeroes on reuse,
		// preserving NewCell's zero-value contract.
		e.data = field.NewCellPooledWithGhost(patch.Box, ghost)
	}
	w.vars[k] = e
	return nil
}

// Get returns the variable's field data, or nil in timing-only mode. It
// panics if the variable was never allocated — a scheduling bug.
func (w *Warehouse) Get(label *taskgraph.Label, patch *grid.Patch) *field.Cell {
	e, ok := w.vars[varKey{label, patch.ID}]
	if !ok {
		panic(fmt.Sprintf("dw: variable %q not allocated on %v", label.Name(), patch))
	}
	return e.data
}

// Exists reports whether the variable is allocated.
func (w *Warehouse) Exists(label *taskgraph.Label, patch *grid.Patch) bool {
	_, ok := w.vars[varKey{label, patch.ID}]
	return ok
}

// Bytes returns the variable's storage footprint.
func (w *Warehouse) Bytes(label *taskgraph.Label, patch *grid.Patch) int64 {
	e, ok := w.vars[varKey{label, patch.ID}]
	if !ok {
		return 0
	}
	return e.bytes
}

// Ghost returns the ghost margin the variable was allocated with.
func (w *Warehouse) Ghost(label *taskgraph.Label, patch *grid.Patch) int {
	e, ok := w.vars[varKey{label, patch.ID}]
	if !ok {
		return 0
	}
	return e.ghost
}

// Free releases one variable back to the core group (used when a patch
// migrates to another rank) and recycles its storage — callers must not
// retain references to the freed field's data (migration and
// checkpointing pack copies before freeing). Freeing an absent variable
// is a no-op.
func (w *Warehouse) Free(label *taskgraph.Label, patch *grid.Patch) {
	k := varKey{label, patch.ID}
	e, ok := w.vars[k]
	if !ok {
		return
	}
	w.cg.Free(e.bytes)
	e.data.Recycle()
	delete(w.vars, k)
}

// TotalBytes returns the warehouse's accounted footprint.
func (w *Warehouse) TotalBytes() int64 {
	var n int64
	for _, e := range w.vars {
		n += e.bytes
	}
	return n
}

// FreeAll releases every variable back to the core group, recycling the
// storage like Free.
func (w *Warehouse) FreeAll() {
	for k, e := range w.vars {
		w.cg.Free(e.bytes)
		e.data.Recycle()
		delete(w.vars, k)
	}
}

// Pair is the old/new warehouse pair of one rank.
type Pair struct {
	mode Mode
	cg   *sw26010.CoreGroup
	Old  *Warehouse
	New  *Warehouse
}

// NewPair creates an empty warehouse pair.
func NewPair(mode Mode, cg *sw26010.CoreGroup) *Pair {
	return &Pair{
		mode: mode,
		cg:   cg,
		Old:  NewWarehouse(mode, cg),
		New:  NewWarehouse(mode, cg),
	}
}

// Select returns the warehouse named by the dependency selector.
func (p *Pair) Select(sel taskgraph.DWSel) *Warehouse {
	if sel == taskgraph.OldDW {
		return p.Old
	}
	return p.New
}

// Swap completes a timestep: the old warehouse's variables are freed, the
// new warehouse becomes old, and a fresh new warehouse is installed.
func (p *Pair) Swap() {
	p.Old.FreeAll()
	p.Old = p.New
	p.New = NewWarehouse(p.mode, p.cg)
}
