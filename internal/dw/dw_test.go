package dw

import (
	"errors"
	"testing"

	"sunuintah/internal/grid"
	"sunuintah/internal/perf"
	"sunuintah/internal/sim"
	"sunuintah/internal/sw26010"
	"sunuintah/internal/taskgraph"
)

func testCG() *sw26010.CoreGroup {
	return sw26010.NewMachine(sim.NewEngine(), perf.DefaultParams(), 1).CG(0)
}

func testPatch(t *testing.T) *grid.Patch {
	t.Helper()
	lv, err := grid.NewUnitCubeLevel(grid.IV(16, 16, 16), grid.IV(1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	return lv.Layout.Patch(0)
}

func TestAllocateGetFunctional(t *testing.T) {
	cg := testCG()
	w := NewWarehouse(Functional, cg)
	u := taskgraph.NewLabel("u", nil)
	p := testPatch(t)
	if err := w.Allocate(u, p, 1); err != nil {
		t.Fatal(err)
	}
	f := w.Get(u, p)
	if f == nil {
		t.Fatal("functional warehouse returned nil field")
	}
	if f.Alloc() != p.Box.Grow(1) {
		t.Fatalf("field alloc = %v", f.Alloc())
	}
	wantBytes := p.Box.Grow(1).NumCells() * 8
	if w.Bytes(u, p) != wantBytes {
		t.Fatalf("bytes = %d, want %d", w.Bytes(u, p), wantBytes)
	}
	if cg.AllocatedBytes() != wantBytes {
		t.Fatalf("cg accounting = %d", cg.AllocatedBytes())
	}
	if w.Ghost(u, p) != 1 {
		t.Fatalf("ghost = %d", w.Ghost(u, p))
	}
}

func TestTimingOnlyTracksSizesWithoutData(t *testing.T) {
	cg := testCG()
	w := NewWarehouse(TimingOnly, cg)
	u := taskgraph.NewLabel("u", nil)
	p := testPatch(t)
	if err := w.Allocate(u, p, 1); err != nil {
		t.Fatal(err)
	}
	if w.Get(u, p) != nil {
		t.Fatal("timing-only warehouse should have nil data")
	}
	if w.Bytes(u, p) == 0 || cg.AllocatedBytes() == 0 {
		t.Fatal("timing-only warehouse must still account memory")
	}
}

func TestDoubleAllocateFails(t *testing.T) {
	w := NewWarehouse(TimingOnly, testCG())
	u := taskgraph.NewLabel("u", nil)
	p := testPatch(t)
	if err := w.Allocate(u, p, 0); err != nil {
		t.Fatal(err)
	}
	if err := w.Allocate(u, p, 0); err == nil {
		t.Fatal("double allocation should fail")
	}
}

func TestGetUnallocatedPanics(t *testing.T) {
	w := NewWarehouse(Functional, testCG())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	w.Get(taskgraph.NewLabel("ghostvar", nil), testPatch(t))
}

func TestOutOfMemoryPropagates(t *testing.T) {
	cg := testCG()
	w := NewWarehouse(TimingOnly, cg)
	u := taskgraph.NewLabel("u", nil)
	lv, _ := grid.NewUnitCubeLevel(grid.IV(1024, 1024, 1024), grid.IV(1, 1, 1))
	p := lv.Layout.Patch(0) // 8 GB variable
	err := w.Allocate(u, p, 1)
	var oom *sw26010.ErrOutOfMemory
	if !errors.As(err, &oom) {
		t.Fatalf("error = %v, want ErrOutOfMemory", err)
	}
}

func TestSwapLifecycle(t *testing.T) {
	cg := testCG()
	pair := NewPair(Functional, cg)
	u := taskgraph.NewLabel("u", nil)
	p := testPatch(t)

	// Step 0: initial condition in old, result in new.
	if err := pair.Old.Allocate(u, p, 1); err != nil {
		t.Fatal(err)
	}
	pair.Old.Get(u, p).Set(grid.IV(3, 3, 3), 1.5)
	if err := pair.New.Allocate(u, p, 1); err != nil {
		t.Fatal(err)
	}
	pair.New.Get(u, p).Set(grid.IV(3, 3, 3), 2.5)

	bytesOne := pair.Old.TotalBytes()
	if cg.AllocatedBytes() != 2*bytesOne {
		t.Fatalf("cg holds %d, want %d", cg.AllocatedBytes(), 2*bytesOne)
	}

	pair.Swap()
	// The new result became the old data; memory for the stale copy was
	// released.
	if got := pair.Old.Get(u, p).At(grid.IV(3, 3, 3)); got != 2.5 {
		t.Fatalf("after swap old value = %v, want 2.5", got)
	}
	if pair.New.Exists(u, p) {
		t.Fatal("fresh new warehouse should be empty")
	}
	if cg.AllocatedBytes() != bytesOne {
		t.Fatalf("after swap cg holds %d, want %d", cg.AllocatedBytes(), bytesOne)
	}
}

func TestSelect(t *testing.T) {
	pair := NewPair(TimingOnly, testCG())
	if pair.Select(taskgraph.OldDW) != pair.Old || pair.Select(taskgraph.NewDW) != pair.New {
		t.Fatal("Select mapping wrong")
	}
}

func TestRepeatedSwapsKeepAccountingBalanced(t *testing.T) {
	cg := testCG()
	pair := NewPair(TimingOnly, cg)
	u := taskgraph.NewLabel("u", nil)
	p := testPatch(t)
	if err := pair.Old.Allocate(u, p, 1); err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 10; step++ {
		if err := pair.New.Allocate(u, p, 1); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		pair.Swap()
	}
	if cg.AllocatedBytes() != pair.Old.TotalBytes() {
		t.Fatalf("leak: cg %d vs warehouse %d", cg.AllocatedBytes(), pair.Old.TotalBytes())
	}
}
