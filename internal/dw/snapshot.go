package dw

import (
	"fmt"

	"sunuintah/internal/field"
)

// Warehouse and Pair implement the sim.StateSaver shape (SaveState /
// RestoreState) so a rank's field state can be snapshotted and rewound
// in memory — no gob, no []byte round trip. A snapshot deep-copies every
// variable's backing array; restoring frees the live variables and
// rebuilds the saved set, so the warehouse ends byte-identical to the
// moment of the save, including the core group's memory accounting.

// varSnap is one saved variable (box/ghost suffice to re-create it; the
// data slice is a private copy, nil in timing-only mode).
type varSnap struct {
	entry varEntry
	data  []float64
}

type warehouseSnap struct {
	vars map[varKey]varSnap
}

// SaveState deep-copies the warehouse's variables.
func (w *Warehouse) SaveState() any {
	s := warehouseSnap{vars: make(map[varKey]varSnap, len(w.vars))}
	for k, e := range w.vars {
		vs := varSnap{entry: *e}
		if e.data != nil {
			vs.data = append([]float64(nil), e.data.Data()...)
		}
		s.vars[k] = vs
	}
	return s
}

// RestoreState frees every live variable and rebuilds the saved set.
func (w *Warehouse) RestoreState(state any) {
	s := state.(warehouseSnap)
	w.FreeAll()
	w.restoreInto(s)
}

// restoreInto rebuilds the saved variables into an empty warehouse (the
// caller has freed the live set — possibly across several warehouses
// first, so a pair restore never transiently overshoots the core group's
// memory cap).
func (w *Warehouse) restoreInto(s warehouseSnap) {
	for k, vs := range s.vars {
		if err := w.cg.Allocate(vs.entry.bytes); err != nil {
			// The snapshot's footprint was accounted when it was taken and
			// everything since has been freed; failure here is a memory
			// accounting bug, not a user error.
			panic(fmt.Sprintf("dw: restoring snapshot: %v", err))
		}
		e := &varEntry{bytes: vs.entry.bytes, ghost: vs.entry.ghost, box: vs.entry.box}
		if w.mode == Functional {
			e.data = field.NewCellPooledWithGhost(e.box, e.ghost)
			copy(e.data.Data(), vs.data)
		}
		w.vars[k] = e
	}
}

type pairSnap struct {
	old, new warehouseSnap
}

// SaveState deep-copies both warehouses of the pair.
func (p *Pair) SaveState() any {
	return pairSnap{
		old: p.Old.SaveState().(warehouseSnap),
		new: p.New.SaveState().(warehouseSnap),
	}
}

// RestoreState rewinds both warehouses. Both are emptied before either
// is refilled, so the core group's accounted footprint never exceeds
// max(live, saved) during the swap.
func (p *Pair) RestoreState(state any) {
	s := state.(pairSnap)
	p.Old.FreeAll()
	p.New.FreeAll()
	p.Old.restoreInto(s.old)
	p.New.restoreInto(s.new)
}
