// Package taskgraph implements Uintah's distributed task graph: user-level
// coarse tasks declaring which variables they require and compute, compiled
// against a patch layout and a patch-to-rank assignment into per-rank task
// objects (task × patch), intra-step dependency edges, and the MPI
// communication edges implied by ghost-cell requirements.
//
// Each rank compiles only its own portion of the graph, as in Uintah; the
// compilation is deterministic, so every rank derives identical message
// tags for matching edges.
package taskgraph

import (
	"fmt"

	"sunuintah/internal/field"
	"sunuintah/internal/grid"
	"sunuintah/internal/mpisim"
)

// Label identifies a simulation variable (Uintah's VarLabel). Labels are
// compared by pointer; create each once and share it.
type Label struct {
	name string
	// BC supplies the physical-boundary value at position (x,y,z) and time
	// t, used to fill ghost cells outside the domain. Nil means zero.
	BC func(x, y, z, t float64) float64
}

// NewLabel creates a variable label with an optional boundary-condition
// function.
func NewLabel(name string, bc func(x, y, z, t float64) float64) *Label {
	return &Label{name: name, BC: bc}
}

// Name returns the label's name.
func (l *Label) Name() string { return l.name }

// DWSel selects which data warehouse a dependency refers to.
type DWSel int

// Warehouse selectors: OldDW holds the previous timestep's results, NewDW
// receives the current timestep's.
const (
	OldDW DWSel = iota
	NewDW
)

func (d DWSel) String() string {
	if d == OldDW {
		return "old"
	}
	return "new"
}

// Dep is one requires/computes declaration.
type Dep struct {
	Label *Label
	DW    DWSel
	Ghost int // ghost layers needed (requires only)
}

// Kind classifies tasks by where they execute.
type Kind int

// Task kinds: offloadable numerical kernels run on the CPE cluster, MPE
// tasks run on the management element, reductions combine a value across
// ranks.
const (
	KindOffload Kind = iota
	KindMPE
	KindReduction
)

// TileContext is passed to a kernel's Compute function for each tile. In
// functional runs the LDM buffers carry real data; in timing-only runs
// their Data fields are nil and Compute is not invoked.
type TileContext struct {
	Patch *grid.Patch
	Tile  grid.Tile
	// In and Out map each required/computed label to its staged LDM
	// buffer. Input buffers cover the tile grown by the ghost width;
	// output buffers cover the tile interior.
	In  map[*Label]*LDMData
	Out map[*Label]*LDMData
	// Step, Time and Dt describe the timestep being computed: Time is the
	// time level of the old warehouse.
	Step int
	Time float64
	Dt   float64
	// Level provides cell geometry.
	Level *grid.Level
}

// LDMData is a tile-local view of a variable staged in LDM.
type LDMData struct {
	Region grid.Box
	Data   *field.Cell // nil in timing-only mode
}

// Kernel describes an offloadable numerical kernel.
type Kernel struct {
	// FlopsPerCell and ExpFlopsPerCell feed the hardware FLOP counters.
	FlopsPerCell    float64
	ExpFlopsPerCell float64
	// Weight scales the calibrated compute time relative to the Burgers
	// kernel (1.0).
	Weight float64
	// Compute performs the tile computation on LDM data (functional runs
	// only).
	Compute func(tc *TileContext)
}

// MPEFunc is the body of an MPE task, invoked once per (task, patch) with
// the patch's fields (nil values in timing-only mode).
type MPEFunc func(patch *grid.Patch, in, out map[*Label]*field.Cell)

// ReduceSpec describes a reduction task: each rank extracts a local
// partial from its patches' fields and the result is combined with MPI.
type ReduceSpec struct {
	Op mpisim.ReduceOp
	// Local extracts the partial value for one patch (functional mode
	// only; timing-only reductions contribute 0).
	Local func(patch *grid.Patch, f *field.Cell) float64
	// Result receives the globally reduced value on every rank.
	Result func(step int, v float64)
}

// Task is a user-level coarse task. Exactly one of Kernel, MPERun, Reduce
// must be set, matching Kind.
type Task struct {
	Name     string
	Kind     Kind
	Requires []Dep
	Computes []Dep

	Kernel *Kernel
	MPERun MPEFunc
	// MPECostWeight scales the MPE-kernel cost model for KindMPE tasks
	// (cells × MPE per-cell time × weight). Zero means negligible cost.
	MPECostWeight float64
	Reduce        *ReduceSpec

	// Patches restricts the task to the patches for which the predicate
	// returns true; nil means every patch (the common case). The
	// predicate must be a pure, rank-independent function of the patch
	// ID: every rank evaluates it during compilation, and consistent
	// answers are what keep send and recv edges matched. A ghost region
	// whose source patch is excluded is filled from the label's boundary
	// condition instead — each physics region is a Dirichlet-bounded
	// subdomain, the way mixed-physics AMR levels couple through
	// prescribed interface boundaries.
	Patches func(patchID int) bool
}

// AppliesTo reports whether the task runs on the patch. A nil Patches
// predicate applies everywhere.
func (t *Task) AppliesTo(patchID int) bool {
	return t.Patches == nil || t.Patches(patchID)
}

// Validate checks structural consistency of the declaration.
func (t *Task) Validate() error {
	switch t.Kind {
	case KindOffload:
		if t.Kernel == nil {
			return fmt.Errorf("taskgraph: offload task %q has no kernel", t.Name)
		}
		if len(t.Computes) == 0 {
			return fmt.Errorf("taskgraph: offload task %q computes nothing", t.Name)
		}
	case KindMPE:
		if t.MPERun == nil && t.MPECostWeight == 0 {
			return fmt.Errorf("taskgraph: MPE task %q has no body and no cost", t.Name)
		}
	case KindReduction:
		if t.Reduce == nil {
			return fmt.Errorf("taskgraph: reduction task %q has no reduce spec", t.Name)
		}
		if len(t.Requires) != 1 {
			return fmt.Errorf("taskgraph: reduction task %q must require exactly one variable", t.Name)
		}
	default:
		return fmt.Errorf("taskgraph: task %q has unknown kind %d", t.Name, t.Kind)
	}
	for _, d := range t.Computes {
		if d.DW != NewDW {
			return fmt.Errorf("taskgraph: task %q computes %q into the old warehouse", t.Name, d.Label.Name())
		}
		if d.Ghost != 0 {
			return fmt.Errorf("taskgraph: task %q computes %q with ghost cells", t.Name, d.Label.Name())
		}
	}
	for _, d := range t.Requires {
		if d.Ghost < 0 {
			return fmt.Errorf("taskgraph: task %q requires %q with negative ghost", t.Name, d.Label.Name())
		}
		if d.DW == NewDW && d.Ghost != 0 {
			return fmt.Errorf("taskgraph: task %q requires %q from the new warehouse with ghost cells (intra-step halo exchange is not supported)", t.Name, d.Label.Name())
		}
	}
	return nil
}
