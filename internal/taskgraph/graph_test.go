package taskgraph

import (
	"testing"

	"sunuintah/internal/grid"
	"sunuintah/internal/loadbalancer"
)

func level(t *testing.T, cells, counts grid.IVec) *grid.Level {
	t.Helper()
	lv, err := grid.NewUnitCubeLevel(cells, counts)
	if err != nil {
		t.Fatal(err)
	}
	return lv
}

func advanceTask(u *Label) *Task {
	return &Task{
		Name: "advance",
		Kind: KindOffload,
		Requires: []Dep{
			{Label: u, DW: OldDW, Ghost: 1},
		},
		Computes: []Dep{
			{Label: u, DW: NewDW},
		},
		Kernel: &Kernel{FlopsPerCell: 311, ExpFlopsPerCell: 215, Weight: 1},
	}
}

func TestValidateRejectsBadTasks(t *testing.T) {
	u := NewLabel("u", nil)
	cases := []*Task{
		{Name: "no-kernel", Kind: KindOffload, Computes: []Dep{{Label: u, DW: NewDW}}},
		{Name: "no-computes", Kind: KindOffload, Kernel: &Kernel{}},
		{Name: "old-computes", Kind: KindOffload, Kernel: &Kernel{},
			Computes: []Dep{{Label: u, DW: OldDW}}},
		{Name: "ghost-computes", Kind: KindOffload, Kernel: &Kernel{},
			Computes: []Dep{{Label: u, DW: NewDW, Ghost: 1}}},
		{Name: "new-ghost-requires", Kind: KindOffload, Kernel: &Kernel{},
			Requires: []Dep{{Label: u, DW: NewDW, Ghost: 1}},
			Computes: []Dep{{Label: u, DW: NewDW}}},
		{Name: "neg-ghost", Kind: KindOffload, Kernel: &Kernel{},
			Requires: []Dep{{Label: u, DW: OldDW, Ghost: -1}},
			Computes: []Dep{{Label: u, DW: NewDW}}},
		{Name: "empty-mpe", Kind: KindMPE},
		{Name: "bad-reduce", Kind: KindReduction, Reduce: &ReduceSpec{},
			Requires: []Dep{{Label: u, DW: NewDW}, {Label: u, DW: OldDW}}},
		{Name: "bad-kind", Kind: Kind(42)},
	}
	for _, task := range cases {
		if err := task.Validate(); err == nil {
			t.Errorf("task %q should fail validation", task.Name)
		}
	}
}

func TestCompileSingleRankHasNoMessages(t *testing.T) {
	lv := level(t, grid.IV(16, 16, 16), grid.IV(2, 2, 2))
	u := NewLabel("u", nil)
	assign := make([]int, 8) // all on rank 0
	g, err := Compile(lv, []*Task{advanceTask(u)}, assign, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Objects) != 8 {
		t.Fatalf("objects = %d, want 8", len(g.Objects))
	}
	if len(g.Recvs) != 0 || len(g.Sends) != 0 {
		t.Fatalf("single rank should have no edges: %d recvs, %d sends", len(g.Recvs), len(g.Sends))
	}
	for _, o := range g.Objects {
		if o.NumRecvs != 0 {
			t.Errorf("object %v has %d recvs", o.Patch, o.NumRecvs)
		}
		// Every patch of a 2x2x2 layout touches 7 local neighbours.
		if len(o.LocalCopies) != 7 {
			t.Errorf("object on %v has %d local copies, want 7", o.Patch, len(o.LocalCopies))
		}
		// Every patch touches the physical boundary.
		if len(o.BCFills) != 1 {
			t.Errorf("object on %v has %d BC fills, want 1", o.Patch, len(o.BCFills))
		}
	}
}

func TestCompileGhostAccountingExact(t *testing.T) {
	// For each object: local copy cells + recv cells + BC cells must equal
	// the full ghost margin.
	lv := level(t, grid.IV(16, 16, 16), grid.IV(2, 2, 2))
	u := NewLabel("u", nil)
	assign := []int{0, 0, 0, 0, 1, 1, 1, 1}
	for rank := 0; rank < 2; rank++ {
		g, err := Compile(lv, []*Task{advanceTask(u)}, assign, rank)
		if err != nil {
			t.Fatal(err)
		}
		recvCells := map[int]int64{} // patch ID -> cells arriving
		for _, e := range g.Recvs {
			recvCells[e.Dst.ID] += e.Cells
		}
		for _, o := range g.Objects {
			var cells int64
			for _, cr := range o.LocalCopies {
				for _, r := range cr.Regions {
					cells += r.NumCells()
				}
			}
			for _, bc := range o.BCFills {
				cells += bc.Cells
			}
			cells += recvCells[o.Patch.ID]
			want := o.Patch.Box.Grow(1).NumCells() - o.Patch.Box.NumCells()
			if cells != want {
				t.Errorf("rank %d patch %v: ghost cells %d, want %d", rank, o.Patch, cells, want)
			}
		}
	}
}

func TestCompileSendRecvSymmetry(t *testing.T) {
	lv := level(t, grid.IV(16, 16, 32), grid.IV(2, 2, 4))
	u := NewLabel("u", nil)
	assign, _ := loadbalancer.Assign(loadbalancer.Block, 16, 4)
	tasks := []*Task{advanceTask(u)}
	graphs := make([]*Graph, 4)
	for r := 0; r < 4; r++ {
		g, err := Compile(lv, tasks, assign, r)
		if err != nil {
			t.Fatal(err)
		}
		graphs[r] = g
	}
	n := lv.Layout.NumPatches()
	// Every send edge must have a matching recv edge with the same tag,
	// byte count, and regions.
	type edgeID struct{ tag int }
	recvByTag := map[int]*Edge{}
	for _, g := range graphs {
		for _, e := range g.Recvs {
			tag := e.BaseTag(n)
			if recvByTag[tag] != nil {
				t.Fatalf("duplicate recv tag %d", tag)
			}
			recvByTag[tag] = e
		}
	}
	sendCount := 0
	for _, g := range graphs {
		for _, e := range g.Sends {
			sendCount++
			r := recvByTag[e.BaseTag(n)]
			if r == nil {
				t.Fatalf("send %v->%v has no matching recv", e.Src, e.Dst)
			}
			if r.Bytes != e.Bytes || r.Cells != e.Cells {
				t.Fatalf("edge size mismatch: send %d B recv %d B", e.Bytes, r.Bytes)
			}
			if e.SrcRank != r.SrcRank || e.DstRank != r.DstRank {
				t.Fatalf("edge rank mismatch")
			}
		}
	}
	if sendCount != len(recvByTag) {
		t.Fatalf("%d sends vs %d recvs", sendCount, len(recvByTag))
	}
	if sendCount == 0 {
		t.Fatal("expected cross-rank edges in a 4-rank decomposition")
	}
}

func TestCompileTaskChain(t *testing.T) {
	lv := level(t, grid.IV(8, 8, 8), grid.IV(1, 1, 1))
	u := NewLabel("u", nil)
	du := NewLabel("du", nil)
	t1 := &Task{
		Name: "derivs", Kind: KindOffload,
		Requires: []Dep{{Label: u, DW: OldDW, Ghost: 1}},
		Computes: []Dep{{Label: du, DW: NewDW}},
		Kernel:   &Kernel{Weight: 1},
	}
	t2 := &Task{
		Name: "update", Kind: KindOffload,
		Requires: []Dep{{Label: u, DW: OldDW}, {Label: du, DW: NewDW}},
		Computes: []Dep{{Label: u, DW: NewDW}},
		Kernel:   &Kernel{Weight: 0.2},
	}
	g, err := Compile(lv, []*Task{t1, t2}, []int{0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Objects) != 2 {
		t.Fatalf("objects = %d", len(g.Objects))
	}
	first, second := g.Objects[0], g.Objects[1]
	if first.Task != t1 || second.Task != t2 {
		t.Fatal("object order should follow task declaration order")
	}
	if len(second.Upstream) != 1 || second.Upstream[0] != first {
		t.Fatal("update must depend on derivs")
	}
	if len(first.Downstream) != 1 || first.Downstream[0] != second {
		t.Fatal("derivs must release update")
	}
	g.ResetForStep()
	if first.State != StateReady {
		t.Error("derivs should start ready")
	}
	if second.State != StateWaiting || second.PendingDeps != 1 {
		t.Errorf("update state = %v deps = %d", second.State, second.PendingDeps)
	}
}

func TestCompileMissingProducerFails(t *testing.T) {
	lv := level(t, grid.IV(8, 8, 8), grid.IV(1, 1, 1))
	u := NewLabel("u", nil)
	ghostTask := &Task{
		Name: "bad", Kind: KindOffload,
		Requires: []Dep{{Label: u, DW: NewDW}},
		Computes: []Dep{{Label: NewLabel("v", nil), DW: NewDW}},
		Kernel:   &Kernel{},
	}
	if _, err := Compile(lv, []*Task{ghostTask}, []int{0}, 0); err == nil {
		t.Fatal("missing producer should fail compilation")
	}
}

func TestCompileReductionDependsOnAllLocalPatches(t *testing.T) {
	lv := level(t, grid.IV(8, 8, 16), grid.IV(1, 1, 4))
	u := NewLabel("u", nil)
	red := &Task{
		Name: "maxU", Kind: KindReduction,
		Requires: []Dep{{Label: u, DW: NewDW}},
		Reduce:   &ReduceSpec{},
	}
	assign := []int{0, 0, 1, 1}
	g, err := Compile(lv, []*Task{advanceTask(u), red}, assign, 0)
	if err != nil {
		t.Fatal(err)
	}
	var redObj *Object
	for _, o := range g.Objects {
		if o.Task == red {
			redObj = o
		}
	}
	if redObj == nil {
		t.Fatal("no reduction object")
	}
	if redObj.Patch != nil {
		t.Error("reduction object should be rank-level")
	}
	if len(redObj.Upstream) != 2 {
		t.Fatalf("reduction upstream = %d, want 2 local patches", len(redObj.Upstream))
	}
}

func TestPaperConfigurationEdgeCounts(t *testing.T) {
	// 8x8x2 layout of 128 patches over 128 ranks: every patch's ghost
	// dependencies are remote.
	lv := level(t, grid.IV(128, 128, 1024), grid.IV(8, 8, 2))
	u := NewLabel("u", nil)
	assign := make([]int, 128)
	for i := range assign {
		assign[i] = i
	}
	g, err := Compile(lv, []*Task{advanceTask(u)}, assign, 37) // interior-ish rank
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Objects) != 1 {
		t.Fatalf("objects = %d", len(g.Objects))
	}
	o := g.Objects[0]
	nbrs := lv.Layout.Neighbours(o.Patch, 1)
	if o.NumRecvs != len(nbrs) {
		t.Errorf("recvs = %d, want %d (all neighbours remote)", o.NumRecvs, len(nbrs))
	}
	if len(o.LocalCopies) != 0 {
		t.Errorf("local copies = %d, want 0", len(o.LocalCopies))
	}
	if len(g.Sends) != len(nbrs) {
		t.Errorf("sends = %d, want %d", len(g.Sends), len(nbrs))
	}
}

func TestResetForStepRestoresState(t *testing.T) {
	lv := level(t, grid.IV(8, 8, 8), grid.IV(2, 1, 1))
	u := NewLabel("u", nil)
	g, err := Compile(lv, []*Task{advanceTask(u)}, []int{0, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	g.ResetForStep()
	o := g.Objects[0]
	if o.State != StateWaiting || o.PendingDeps != o.NumRecvs {
		t.Fatalf("state = %v deps = %d", o.State, o.PendingDeps)
	}
	o.State = StateCompleted
	o.PendingDeps = -5
	g.ResetForStep()
	if o.State != StateWaiting || o.PendingDeps != o.NumRecvs {
		t.Fatal("reset did not restore state")
	}
}

func TestTagUniquenessAcrossEdges(t *testing.T) {
	lv := level(t, grid.IV(16, 16, 32), grid.IV(2, 2, 4))
	u := NewLabel("u", nil)
	assign, _ := loadbalancer.Assign(loadbalancer.Block, 16, 8)
	n := lv.Layout.NumPatches()
	seen := map[int]bool{}
	for r := 0; r < 8; r++ {
		g, err := Compile(lv, []*Task{advanceTask(u)}, assign, r)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range g.Recvs {
			tag := e.BaseTag(n)
			if seen[tag] {
				t.Fatalf("tag %d reused", tag)
			}
			seen[tag] = true
			if tag < 0 || tag >= g.NumTags() {
				t.Fatalf("tag %d outside [0,%d)", tag, g.NumTags())
			}
		}
	}
}

func TestTotalBytesSymmetric(t *testing.T) {
	lv := level(t, grid.IV(16, 16, 32), grid.IV(2, 2, 4))
	u := NewLabel("u", nil)
	assign, _ := loadbalancer.Assign(loadbalancer.Block, 16, 4)
	var sent, recvd int64
	for r := 0; r < 4; r++ {
		g, err := Compile(lv, []*Task{advanceTask(u)}, assign, r)
		if err != nil {
			t.Fatal(err)
		}
		sent += g.TotalSendBytes()
		recvd += g.TotalRecvBytes()
	}
	if sent != recvd || sent == 0 {
		t.Fatalf("sent %d, received %d", sent, recvd)
	}
}
