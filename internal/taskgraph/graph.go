package taskgraph

import (
	"fmt"
	"sort"

	"sunuintah/internal/grid"
)

// ObjState tracks a task object through the scheduler.
type ObjState int

// Task-object lifecycle states.
const (
	StateWaiting   ObjState = iota // dependencies outstanding
	StateReady                     // all inputs available, not yet started
	StatePrepared                  // MPE part done ahead of time, awaiting a CPE slot
	StateRunning                   // offloaded to the CPEs (or executing on the MPE)
	StateCompleted                 // done; downstream dependencies released
)

// CopyReq is a same-rank ghost dependency: regions of Src's data copied
// into a patch's ghost margin by the MPE.
type CopyReq struct {
	Label   *Label
	Src     *grid.Patch
	Regions []grid.Box
	Bytes   int64
}

// BCReq is a physical-boundary ghost fill.
type BCReq struct {
	Label   *Label
	Regions []grid.Box
	Cells   int64
}

// Object is one task instantiated on one patch (Uintah's "task object"; a
// reduction object has Patch == nil and spans the rank's patches).
type Object struct {
	Index int // dense index within the rank's object list
	Task  *Task
	Patch *grid.Patch

	// Upstream/downstream intra-step dependencies (task chains).
	Upstream   []*Object
	Downstream []*Object

	// Remote ghost dependencies: number of recv edges that must complete
	// before this object is ready.
	NumRecvs int

	// MPE-side work attached to this object.
	LocalCopies []CopyReq
	BCFills     []BCReq

	// State is managed by the scheduler at run time.
	State       ObjState
	PendingDeps int // recvs + upstream objects outstanding this step
}

// ResetForStep restores per-step scheduler state.
func (o *Object) ResetForStep() {
	o.State = StateWaiting
	o.PendingDeps = o.NumRecvs + len(o.Upstream)
	if o.PendingDeps == 0 {
		o.State = StateReady
	}
}

// Edge is a ghost-data message between two patches owned by different
// ranks. The sender packs Regions of SrcPatch's Label data (old warehouse)
// and the receiver unpacks them into the ghost margin of DstPatch's copy.
type Edge struct {
	Label    *Label
	LabelIdx int
	Src, Dst *grid.Patch
	SrcRank  int
	DstRank  int
	Regions  []grid.Box
	Cells    int64
	Bytes    int64
	// DstObjs are the receiving rank's objects unblocked by this edge.
	DstObjs []*Object
}

// BaseTag returns the step-invariant message tag for the edge, identical
// on the sending and receiving rank.
func (e *Edge) BaseTag(nPatches int) int {
	return (e.LabelIdx*nPatches+e.Dst.ID)*nPatches + e.Src.ID
}

// Graph is one rank's compiled portion of the distributed task graph.
type Graph struct {
	Level  *grid.Level
	Tasks  []*Task
	Assign []int // patch ID -> owning rank
	Rank   int

	// Objects in deterministic scheduling priority order: task declaration
	// order, then patch ID.
	Objects []*Object
	// Recvs and Sends are this rank's communication edges.
	Recvs []*Edge
	Sends []*Edge
	// Labels is the canonical label table (identical ordering on every
	// rank); LabelIdx indexes into it.
	Labels []*Label

	// LocalPatches are the patches assigned to this rank, in ID order.
	LocalPatches []*grid.Patch

	// Persistent marks labels that survive the warehouse swap (required
	// from the old warehouse by some task); they must never be scrubbed.
	Persistent map[*Label]bool
}

// NumTags returns the size of the step-invariant tag space, used by the
// scheduler to fold the timestep into unique tags.
func (g *Graph) NumTags() int {
	n := g.Level.Layout.NumPatches()
	return len(g.Labels) * n * n
}

// Compile builds rank's portion of the task graph for the given tasks on
// level, with patch p owned by rank assign[p].
func Compile(level *grid.Level, tasks []*Task, assign []int, rank int) (*Graph, error) {
	layout := level.Layout
	if len(assign) != layout.NumPatches() {
		return nil, fmt.Errorf("taskgraph: assignment covers %d patches, layout has %d",
			len(assign), layout.NumPatches())
	}
	for _, t := range tasks {
		if err := t.Validate(); err != nil {
			return nil, err
		}
	}
	g := &Graph{Level: level, Tasks: tasks, Assign: assign, Rank: rank,
		Persistent: map[*Label]bool{}}
	for _, t := range tasks {
		for _, d := range t.Requires {
			if d.DW == OldDW {
				g.Persistent[d.Label] = true
			}
		}
	}

	// Canonical label table: first appearance across task declarations.
	labelIdx := map[*Label]int{}
	addLabel := func(l *Label) {
		if _, ok := labelIdx[l]; !ok {
			labelIdx[l] = len(g.Labels)
			g.Labels = append(g.Labels, l)
		}
	}
	for _, t := range tasks {
		for _, d := range t.Requires {
			addLabel(d.Label)
		}
		for _, d := range t.Computes {
			addLabel(d.Label)
		}
	}

	for _, p := range layout.Patches() {
		if assign[p.ID] == rank {
			g.LocalPatches = append(g.LocalPatches, p)
		}
	}

	// Producers of each (label, NewDW) per task order, for intra-step
	// chains.
	producer := map[*Label]*Task{}
	producerObjs := map[producerKey]*Object{}

	recvKey := map[edgeKey]*Edge{}

	for _, t := range tasks {
		switch t.Kind {
		case KindOffload, KindMPE:
			for _, p := range g.LocalPatches {
				if !t.AppliesTo(p.ID) {
					continue
				}
				obj := &Object{Index: len(g.Objects), Task: t, Patch: p}
				g.Objects = append(g.Objects, obj)
				for _, d := range t.Requires {
					switch {
					case d.DW == NewDW:
						prod := producer[d.Label]
						if prod == nil {
							return nil, fmt.Errorf("taskgraph: task %q requires %q from the new warehouse but no earlier task computes it",
								t.Name, d.Label.Name())
						}
						up := producerObjs[producerKey{prod, p.ID}]
						if up == nil {
							return nil, fmt.Errorf("taskgraph: task %q requires %q from the new warehouse on patch %d but producer %q is excluded there by its patch predicate",
								t.Name, d.Label.Name(), p.ID, prod.Name)
						}
						obj.Upstream = append(obj.Upstream, up)
						up.Downstream = append(up.Downstream, obj)
					case d.Ghost > 0:
						g.addGhostDeps(obj, d, recvKey, labelIdx)
					}
				}
				for _, d := range t.Computes {
					producer[d.Label] = t
					producerObjs[producerKey{t, p.ID}] = obj
				}
			}
		case KindReduction:
			obj := &Object{Index: len(g.Objects), Task: t}
			g.Objects = append(g.Objects, obj)
			d := t.Requires[0]
			if d.DW == NewDW {
				prod := producer[d.Label]
				if prod == nil {
					return nil, fmt.Errorf("taskgraph: reduction %q requires %q before it is computed",
						t.Name, d.Label.Name())
				}
				for _, p := range g.LocalPatches {
					// The reduction folds only the patches where both it
					// and the producer run.
					if !t.AppliesTo(p.ID) || !prod.AppliesTo(p.ID) {
						continue
					}
					up := producerObjs[producerKey{prod, p.ID}]
					obj.Upstream = append(obj.Upstream, up)
					up.Downstream = append(up.Downstream, obj)
				}
			}
		}
	}

	// Send edges: for every local patch Q and every task requirement with
	// ghosts, find remote patches P whose ghost margin includes data from
	// Q.
	sendKey := map[edgeKey]*Edge{}
	for _, t := range tasks {
		for _, d := range t.Requires {
			if d.DW != OldDW || d.Ghost == 0 {
				continue
			}
			for _, q := range g.LocalPatches {
				// Only patches the task runs on exchange its ghosts: an
				// excluded source patch never holds the label, and an
				// excluded destination fills from boundary conditions.
				if !t.AppliesTo(q.ID) {
					continue
				}
				for _, p := range layout.Neighbours(q, d.Ghost) {
					if assign[p.ID] == rank || !t.AppliesTo(p.ID) {
						continue
					}
					for _, gr := range layout.GhostRegions(p, d.Ghost) {
						if gr.Src == nil || gr.Src.ID != q.ID {
							continue
						}
						k := edgeKey{labelIdx[d.Label], q.ID, p.ID}
						e := sendKey[k]
						if e == nil {
							e = &Edge{Label: d.Label, LabelIdx: k.label,
								Src: q, Dst: p, SrcRank: rank, DstRank: assign[p.ID]}
							sendKey[k] = e
							g.Sends = append(g.Sends, e)
						}
						e.addRegion(gr.Region)
					}
				}
			}
		}
	}

	sortEdges(g.Recvs, layout.NumPatches())
	sortEdges(g.Sends, layout.NumPatches())
	return g, nil
}

type producerKey struct {
	task    *Task
	patchID int
}

type edgeKey struct {
	label    int
	src, dst int
}

func (e *Edge) addRegion(r grid.Box) {
	for _, have := range e.Regions {
		if have == r {
			return
		}
	}
	e.Regions = append(e.Regions, r)
	e.Cells += r.NumCells()
	e.Bytes += r.NumCells() * 8
}

// addGhostDeps attaches the ghost dependencies of one requires-with-ghost
// declaration to obj: recv edges for remote sources, local copies for
// same-rank sources, boundary fills for out-of-domain regions.
func (g *Graph) addGhostDeps(obj *Object, d Dep, recvKey map[edgeKey]*Edge, labelIdx map[*Label]int) {
	layout := g.Level.Layout
	copies := map[int]*CopyReq{}
	var bc *BCReq
	for _, gr := range layout.GhostRegions(obj.Patch, d.Ghost) {
		switch {
		case gr.Src == nil || !obj.Task.AppliesTo(gr.Src.ID):
			// Out of the domain, or sourced from a patch the task is
			// excluded from: the region is a physical (or physics-
			// interface) boundary, filled from the label's BC.
			if bc == nil {
				bc = &BCReq{Label: d.Label}
			}
			bc.Regions = append(bc.Regions, gr.Region)
			bc.Cells += gr.Region.NumCells()
		case g.Assign[gr.Src.ID] == g.Rank:
			cr := copies[gr.Src.ID]
			if cr == nil {
				cr = &CopyReq{Label: d.Label, Src: gr.Src}
				copies[gr.Src.ID] = cr
			}
			cr.Regions = append(cr.Regions, gr.Region)
			cr.Bytes += gr.Region.NumCells() * 8
		default:
			k := edgeKey{labelIdx[d.Label], gr.Src.ID, obj.Patch.ID}
			e := recvKey[k]
			if e == nil {
				e = &Edge{Label: d.Label, LabelIdx: k.label,
					Src: gr.Src, Dst: obj.Patch,
					SrcRank: g.Assign[gr.Src.ID], DstRank: g.Rank}
				recvKey[k] = e
				g.Recvs = append(g.Recvs, e)
			}
			e.addRegion(gr.Region)
			// The edge may already serve another object; attach once.
			attached := false
			for _, o := range e.DstObjs {
				if o == obj {
					attached = true
					break
				}
			}
			if !attached {
				e.DstObjs = append(e.DstObjs, obj)
				obj.NumRecvs++
			}
		}
	}
	var srcIDs []int
	for id := range copies {
		srcIDs = append(srcIDs, id)
	}
	sort.Ints(srcIDs)
	for _, id := range srcIDs {
		obj.LocalCopies = append(obj.LocalCopies, *copies[id])
	}
	if bc != nil {
		obj.BCFills = append(obj.BCFills, *bc)
	}
}

func sortEdges(edges []*Edge, nPatches int) {
	sort.Slice(edges, func(i, j int) bool {
		return edges[i].BaseTag(nPatches) < edges[j].BaseTag(nPatches)
	})
}

// ResetForStep re-initialises every object's scheduling state for a new
// timestep.
func (g *Graph) ResetForStep() {
	for _, o := range g.Objects {
		o.ResetForStep()
	}
}

// TotalRecvBytes sums the per-step incoming ghost traffic.
func (g *Graph) TotalRecvBytes() int64 {
	var n int64
	for _, e := range g.Recvs {
		n += e.Bytes
	}
	return n
}

// TotalSendBytes sums the per-step outgoing ghost traffic.
func (g *Graph) TotalSendBytes() int64 {
	var n int64
	for _, e := range g.Sends {
		n += e.Bytes
	}
	return n
}
