// Package athread emulates Sunway's athread offloading library on the
// simulated SW26010: the MPE spawns a function across the 64 CPEs of its
// core group, and the offloaded function moves data between main memory and
// the per-CPE 64 KB LDM with DMA (athread_get/athread_put), computes on the
// LDM working set, and reports completion through a faaw-updated flag in
// main memory.
//
// Each CPE accounts its own virtual time (DMA waits plus compute), so load
// imbalance between CPEs is visible to the scheduler exactly as it would be
// on hardware: the completion flag reaches the CPE count only when the
// slowest CPE finishes.
package athread

import (
	"fmt"

	"sunuintah/internal/field"
	"sunuintah/internal/grid"
	"sunuintah/internal/perf"
	"sunuintah/internal/sim"
	"sunuintah/internal/sw26010"
)

// KernelSpec describes the cost profile of an offloaded kernel, used to
// charge virtual time and hardware counters.
type KernelSpec struct {
	// Name identifies the kernel in traces.
	Name string
	// FlopsPerCell is the counted floating-point work per computed cell
	// (divides and square roots count as one, like the hardware counters).
	FlopsPerCell float64
	// ExpFlopsPerCell is the portion of FlopsPerCell inside the software
	// exponential routines.
	ExpFlopsPerCell float64
	// Weight scales the calibrated per-cell compute time relative to the
	// Burgers kernel (1.0).
	Weight float64
	// SIMD selects the vectorised cost model (compute divided by the
	// calibrated SIMD speed-up).
	SIMD bool
	// OverlapDMA models the paper's future-work asynchronous double-
	// buffered DMA: within each CPE, a tile's transfers overlap the
	// neighbouring tile's compute. Kernels opt in per tile by calling
	// EndTile at tile boundaries.
	OverlapDMA bool
	// PackedDMA models the future-work tile packing: strided tile rows are
	// packed into contiguous transfer buffers, improving DMA efficiency
	// and amortising per-operation latency.
	PackedDMA bool
}

// dmaTime selects the packed or strided transfer model.
func (s KernelSpec) dmaTime(p perf.Params, bytes int64, active int) float64 {
	if s.PackedDMA {
		return p.PackedDMATime(bytes, active)
	}
	return p.DMATime(bytes, active)
}

// Group is the cluster of athreads bound to one core group's CPEs. A group
// runs at most one offloaded kernel at a time, as on the hardware.
type Group struct {
	cg   *sw26010.CoreGroup
	cpes int
	busy bool
}

// NewGroup initialises the athread environment across all of a core
// group's CPEs.
func NewGroup(cg *sw26010.CoreGroup) *Group {
	return NewGroupN(cg, cg.Params.NumCPEs)
}

// NewGroupN initialises an athread environment over a subset of n CPEs,
// supporting the paper's future-work CPE grouping (several patches in
// flight on disjoint CPE groups).
func NewGroupN(cg *sw26010.CoreGroup, n int) *Group {
	if n < 1 || n > cg.Params.NumCPEs {
		panic(fmt.Sprintf("athread: group size %d outside [1,%d]", n, cg.Params.NumCPEs))
	}
	return &Group{cg: cg, cpes: n}
}

// NumCPEs returns the number of CPEs in the group.
func (g *Group) NumCPEs() int { return g.cpes }

// CoreGroup returns the underlying core group.
func (g *Group) CoreGroup() *sw26010.CoreGroup { return g.cg }

// Busy reports whether an offload is in flight.
func (g *Group) Busy() bool { return g.busy }

// CPE is the execution context an offloaded function receives, one per
// computing processing element.
type CPE struct {
	// ID is the CPE index within the cluster (0..63).
	ID int

	group      *Group
	spec       KernelSpec
	active     int // CPEs sharing the memory controller, for DMA contention
	functional bool
	elapsed    sim.Time
	ldmUsed    int64

	// Double-buffering state (spec.OverlapDMA).
	firstTile   bool
	tileDMA     sim.Time
	tileCompute sim.Time
}

// LDMBuf is a region of a main-memory field staged into the CPE's local
// data memory. Data is nil in timing-only runs.
type LDMBuf struct {
	Region grid.Box
	Data   *field.Cell
	bytes  int64
}

// Elapsed returns the virtual time this CPE has consumed so far in the
// current offload.
func (c *CPE) Elapsed() sim.Time { return c.elapsed }

// LDMUsed returns the bytes of LDM currently allocated.
func (c *CPE) LDMUsed() int64 { return c.ldmUsed }

// Get stages region of src into a fresh LDM buffer via a synchronous DMA
// read. src may be nil in timing-only mode. It returns an error when the
// buffer does not fit in the remaining LDM.
func (c *CPE) Get(region grid.Box, src *field.Cell) (*LDMBuf, error) {
	buf, err := c.alloc(region)
	if err != nil {
		return nil, err
	}
	c.chargeDMA(buf.bytes)
	if src != nil {
		buf.Data = field.NewCellPooled(region)
		buf.Data.CopyRegion(src, region)
	}
	return buf, nil
}

// NewBuf allocates an uninitialised LDM buffer for region (the kernel's
// output tile) without a DMA read.
func (c *CPE) NewBuf(region grid.Box) (*LDMBuf, error) {
	buf, err := c.alloc(region)
	if err != nil {
		return nil, err
	}
	if c.functional {
		buf.Data = field.NewCellPooled(region)
	}
	return buf, nil
}

func (c *CPE) alloc(region grid.Box) (*LDMBuf, error) {
	if region.Empty() {
		return nil, fmt.Errorf("athread: empty LDM region %v", region)
	}
	bytes := region.NumCells() * 8
	if c.ldmUsed+bytes > c.group.cg.Params.LDMBytes {
		return nil, fmt.Errorf("athread: CPE %d LDM overflow: %d B in use + %d B requested > %d B",
			c.ID, c.ldmUsed, bytes, c.group.cg.Params.LDMBytes)
	}
	c.ldmUsed += bytes
	return &LDMBuf{Region: region, bytes: bytes}, nil
}

// Put writes buf back to dst via a synchronous DMA write. dst may be nil in
// timing-only mode.
func (c *CPE) Put(dst *field.Cell, buf *LDMBuf) {
	c.chargeDMA(buf.bytes)
	if dst != nil && buf.Data != nil {
		dst.CopyRegion(buf.Data, buf.Region)
	}
}

// Release frees the buffer's LDM and recycles any staged data back to
// the field pool.
func (c *CPE) Release(buf *LDMBuf) {
	c.ldmUsed -= buf.bytes
	if c.ldmUsed < 0 {
		panic("athread: LDM accounting underflow")
	}
	buf.Data.Recycle()
	buf.Data = nil
}

// PutAccounted charges the DMA write of buf exactly like Put without
// copying data: the functional copy is deferred (the scheduler runs the
// numeric bodies of independent tiles on a worker pool after the launch
// accounting completes). The virtual-time and counter effects are
// identical to Put.
func (c *CPE) PutAccounted(buf *LDMBuf) {
	c.chargeDMA(buf.bytes)
}

// ReleaseKeep frees the buffer's LDM accounting like Release but keeps
// its staged data alive for a deferred numeric body; the deferred op
// recycles the data when it finishes.
func (c *CPE) ReleaseKeep(buf *LDMBuf) {
	c.ldmUsed -= buf.bytes
	if c.ldmUsed < 0 {
		panic("athread: LDM accounting underflow")
	}
}

// Compute charges the kernel's per-cell compute cost for cells cells and
// updates the hardware counters.
func (c *CPE) Compute(cells int64) {
	p := c.group.cg.Params
	d := sim.Time(p.CPEComputeTime(cells, c.spec.SIMD, c.spec.Weight) * c.group.cg.Jitter())
	if c.spec.OverlapDMA {
		c.tileCompute += d
	} else {
		c.elapsed += d
	}
	ctr := &c.group.cg.Counters
	ctr.Flops += int64(c.spec.FlopsPerCell * float64(cells))
	ctr.ExpFlops += int64(c.spec.ExpFlopsPerCell * float64(cells))
	ctr.CellsComputed += cells
}

// RepeatTiles charges the cost of processing n identical tiles — each one a
// DMA read of getBytes, a kernel over cellsPerTile cells, and a DMA write
// of putBytes — without per-tile LDM bookkeeping. It is the timing-only
// fast path for uniform tilings; the accounted time and counters are
// exactly what n Get/Compute/Put round trips would charge.
func (c *CPE) RepeatTiles(n int, getBytes, putBytes, cellsPerTile int64) {
	if n <= 0 {
		return
	}
	p := c.group.cg.Params
	dma := sim.Time(c.spec.dmaTime(p, getBytes, c.active)) + sim.Time(c.spec.dmaTime(p, putBytes, c.active))
	compute := sim.Time(p.CPEComputeTime(cellsPerTile, c.spec.SIMD, c.spec.Weight) * c.group.cg.Jitter())
	if c.spec.OverlapDMA {
		// Double buffering: pipeline fill on the first tile, then the
		// steady state is bounded by the slower of transfers and compute.
		c.elapsed += dma + compute + sim.Time(n-1)*max(dma, compute)
	} else {
		c.elapsed += sim.Time(n) * (dma + compute)
	}
	ctr := &c.group.cg.Counters
	cells := int64(n) * cellsPerTile
	ctr.Flops += int64(c.spec.FlopsPerCell * float64(cells))
	ctr.ExpFlops += int64(c.spec.ExpFlopsPerCell * float64(cells))
	ctr.CellsComputed += cells
	ctr.DMABytes += int64(n) * (getBytes + putBytes)
	ctr.DMAOps += int64(2 * n)
}

// EndTile marks a tile boundary for double-buffered DMA accounting: the
// first tile is fully serial (pipeline fill); each later tile costs the
// maximum of its transfers and its compute. Without OverlapDMA it is a
// no-op (transfers were charged serially as they happened).
func (c *CPE) EndTile() {
	if !c.spec.OverlapDMA {
		return
	}
	if c.firstTile {
		c.elapsed += c.tileDMA + c.tileCompute
		c.firstTile = false
	} else {
		c.elapsed += max(c.tileDMA, c.tileCompute)
	}
	c.tileDMA, c.tileCompute = 0, 0
}

func (c *CPE) chargeDMA(bytes int64) {
	p := c.group.cg.Params
	d := sim.Time(c.spec.dmaTime(p, bytes, c.active))
	if c.spec.OverlapDMA {
		c.tileDMA += d
	} else {
		c.elapsed += d
	}
	c.group.cg.Counters.DMABytes += bytes
	c.group.cg.Counters.DMAOps++
}

// Spawn offloads body across the CPE cluster. body runs once per CPE (in
// CPE-ID order, on the caller's goroutine — the emulation is sequential but
// the accounted times are parallel). activeCPEs is the number of CPEs that
// will issue DMA (for memory-controller contention); pass the number of
// CPEs with nonempty tile assignments, or the full cluster size.
// functional selects whether LDM buffers carry real data (NewBuf allocates
// storage) or are timing-only.
//
// On return, every CPE's work is accounted; flag receives one faaw
// increment per CPE at that CPE's virtual finish time. Spawn itself
// returns the cluster's completion time offset from "now" (launch overhead
// plus the slowest CPE), which callers in synchronous mode may simply wait
// for. The group is marked busy until the last increment fires.
//
// Under fault injection a stalled gang never completes; Spawn then returns
// sim.Infinity. Callers that need to recover from stalls should use Launch
// and the returned Offload handle instead.
func (g *Group) Spawn(spec KernelSpec, activeCPEs int, functional bool, flag *sim.Counter, body func(c *CPE)) sim.Time {
	return g.Launch(spec, activeCPEs, functional, flag, body).Done
}

// Offload is the handle of one in-flight Spawn/Launch: its (virtual)
// completion offset, the healthy-cost estimate the scheduler derives
// deadlines from, and the machinery to abort a failed gang so the cluster
// can be reused.
type Offload struct {
	group *Group

	// Done is the cluster completion offset from launch time (launch
	// overhead plus the slowest CPE), or sim.Infinity when Stalled.
	Done sim.Time
	// Estimate is what Done would have been on healthy hardware — the
	// basis for the scheduler's offload deadline.
	Estimate sim.Time
	// Stalled reports an injected gang hang: the completion flag never
	// reaches the CPE count and the group stays busy until Abort.
	Stalled bool

	flagEvents []sim.EventHandle
	busyEvent  sim.EventHandle
	aborted    bool
}

// Abort cancels the offload's pending completion-flag increments and busy-
// clear event and frees the cluster for a new launch. Increments that have
// already fired remain (callers reset the flag before reusing it).
// Idempotent.
func (o *Offload) Abort() {
	if o.aborted {
		return
	}
	o.aborted = true
	for _, h := range o.flagEvents {
		h.Cancel()
	}
	o.busyEvent.Cancel()
	o.group.busy = false
}

// Launch is Spawn returning the full offload handle. When the core group
// has a fault injector attached, each launch draws a fate: a straggling
// gang runs its compute a constant factor slower, and a stalled gang hangs
// — its last CPE never reports completion — until the caller aborts it.
func (g *Group) Launch(spec KernelSpec, activeCPEs int, functional bool, flag *sim.Counter, body func(c *CPE)) *Offload {
	if g.busy {
		panic("athread: overlapping offloads on one CPE cluster")
	}
	g.busy = true
	p := g.cg.Params
	if activeCPEs < 1 || activeCPEs > p.NumCPEs {
		activeCPEs = g.cpes
	}
	g.cg.Counters.Offloads++

	stall := false
	factor := sim.Time(1)
	if g.cg.Faults != nil {
		s, f := g.cg.Faults.OffloadFate(g.cg.ID)
		stall = s
		factor = sim.Time(f)
	}

	launch := sim.Time(p.OffloadCost)
	off := &Offload{group: g, Stalled: stall,
		flagEvents: make([]sim.EventHandle, 0, g.cpes)}
	dmaBefore := g.cg.Counters.DMABytes
	var last, lastHealthy sim.Time
	// One CPE context is reused across the gang: bodies run to completion
	// serially and never retain their context, so a single heap object
	// stands in for all 64 CPEs.
	cpe := new(CPE)
	for id := 0; id < g.cpes; id++ {
		*cpe = CPE{ID: id, group: g, spec: spec, active: activeCPEs, functional: functional, firstTile: true}
		body(cpe)
		if cpe.ldmUsed != 0 {
			panic(fmt.Sprintf("athread: CPE %d leaked %d B of LDM", id, cpe.ldmUsed))
		}
		// Fold any unclosed overlapped-tile accumulators serially.
		cpe.elapsed += cpe.tileDMA + cpe.tileCompute
		healthy := launch + cpe.elapsed + sim.Time(p.FaawCost)
		if healthy > lastHealthy {
			lastHealthy = healthy
		}
		finish := launch + cpe.elapsed*factor + sim.Time(p.FaawCost)
		if finish > last {
			last = finish
		}
		if stall && id == g.cpes-1 {
			// The hung CPE never faaw-updates the flag: the offload can
			// only be cleared by Abort.
			continue
		}
		g.cg.Counters.FaawOps++
		off.flagEvents = append(off.flagEvents,
			g.cg.Engine().ScheduleCall(finish, flag))
	}
	off.Estimate = lastHealthy
	// The CPE bodies accounted their memory<->LDM transfers above; feed
	// the delta to the flight recorder (a plain method call on a possibly
	// nil probe set — no obs dependency, no cost when disabled).
	g.cg.Probes.DMA(g.cg.Engine().Now(), g.cg.Counters.DMABytes-dmaBefore)
	if stall {
		off.Done = sim.Infinity
		return off
	}
	off.Done = last
	off.busyEvent = g.cg.Engine().Schedule(last, func() { g.busy = false })
	return off
}
