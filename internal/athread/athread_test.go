package athread

import (
	"strings"
	"testing"

	"sunuintah/internal/field"
	"sunuintah/internal/grid"
	"sunuintah/internal/perf"
	"sunuintah/internal/sim"
	"sunuintah/internal/sw26010"
)

func newGroup(t *testing.T) (*sim.Engine, *Group) {
	t.Helper()
	eng := sim.NewEngine()
	m := sw26010.NewMachine(eng, perf.DefaultParams(), 1)
	return eng, NewGroup(m.CG(0))
}

var testSpec = KernelSpec{
	Name:            "test",
	FlopsPerCell:    311,
	ExpFlopsPerCell: 215,
	Weight:          1,
	SIMD:            false,
}

func TestSpawnRunsBodyOncePerCPE(t *testing.T) {
	eng, g := newGroup(t)
	flag := sim.NewCounter(eng, "flag")
	var ids []int
	g.Spawn(testSpec, 64, false, flag, func(c *CPE) {
		ids = append(ids, c.ID)
		c.Compute(10)
	})
	if len(ids) != 64 {
		t.Fatalf("body ran %d times", len(ids))
	}
	for i, id := range ids {
		if id != i {
			t.Fatalf("CPE order: ids[%d] = %d", i, id)
		}
	}
	eng.Run()
	if flag.Value() != 64 {
		t.Fatalf("flag = %d, want 64", flag.Value())
	}
}

func TestSpawnCompletionTimeMatchesSlowestCPE(t *testing.T) {
	eng, g := newGroup(t)
	p := g.CoreGroup().Params
	flag := sim.NewCounter(eng, "flag")
	// CPE 7 computes 1000 cells; everyone else idles.
	last := g.Spawn(testSpec, 64, false, flag, func(c *CPE) {
		if c.ID == 7 {
			c.Compute(1000)
		}
	})
	want := sim.Time(p.OffloadCost) + sim.Time(p.CPEComputeTime(1000, false, 1)) + sim.Time(p.FaawCost)
	if diff := float64(last - want); diff > 1e-15 || diff < -1e-15 {
		t.Fatalf("last = %v, want %v", last, want)
	}
	end := eng.Run()
	if end != last {
		t.Fatalf("engine end = %v, want %v", end, last)
	}
}

func TestFlagIncrementsSpreadOverTime(t *testing.T) {
	eng, g := newGroup(t)
	flag := sim.NewCounter(eng, "flag")
	g.Spawn(testSpec, 64, false, flag, func(c *CPE) {
		c.Compute(int64(c.ID) * 100) // imbalanced load
	})
	// Midway through the run, some but not all CPEs have finished.
	p := g.CoreGroup().Params
	mid := sim.Time(p.OffloadCost) + sim.Time(p.CPEComputeTime(3200, false, 1))
	eng.RunUntil(mid)
	v := flag.Value()
	if v == 0 || v == 64 {
		t.Fatalf("flag midway = %d, want partial completion", v)
	}
	eng.Run()
	if flag.Value() != 64 {
		t.Fatalf("flag final = %d", flag.Value())
	}
}

func TestOverlappingSpawnPanics(t *testing.T) {
	eng, g := newGroup(t)
	flag := sim.NewCounter(eng, "flag")
	g.Spawn(testSpec, 64, false, flag, func(c *CPE) { c.Compute(1) })
	if !g.Busy() {
		t.Fatal("group should be busy after spawn")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on overlapping spawn")
		}
	}()
	g.Spawn(testSpec, 64, false, flag, func(c *CPE) {})
}

func TestGroupBecomesIdleAfterCompletion(t *testing.T) {
	eng, g := newGroup(t)
	flag := sim.NewCounter(eng, "flag")
	g.Spawn(testSpec, 64, false, flag, func(c *CPE) { c.Compute(5) })
	eng.Run()
	if g.Busy() {
		t.Fatal("group still busy after completion")
	}
	// A second offload is now legal.
	flag2 := sim.NewCounter(eng, "flag2")
	g.Spawn(testSpec, 64, false, flag2, func(c *CPE) {})
	eng.Run()
	if flag2.Value() != 64 {
		t.Fatal("second offload did not complete")
	}
}

func TestGetComputePutFunctional(t *testing.T) {
	eng, g := newGroup(t)
	flag := sim.NewCounter(eng, "flag")
	interior := grid.BoxFromSize(grid.IV(0, 0, 0), grid.IV(16, 16, 8))
	src := field.NewCellWithGhost(interior, 1)
	src.FillFunc(src.Alloc(), func(c grid.IVec) float64 {
		return float64(c.X + c.Y + c.Z)
	})
	dst := field.NewCell(interior)

	g.Spawn(testSpec, 1, true, flag, func(c *CPE) {
		if c.ID != 0 {
			return
		}
		in, err := c.Get(interior.Grow(1), src)
		if err != nil {
			t.Fatal(err)
		}
		out, err := c.NewBuf(interior)
		if err != nil {
			t.Fatal(err)
		}
		// "Kernel": copy shifted neighbour value.
		interior.ForEach(func(cell grid.IVec) {
			out.Data.Set(cell, in.Data.At(cell.Sub(grid.IV(1, 0, 0))))
		})
		c.Compute(interior.NumCells())
		c.Put(dst, out)
		c.Release(in)
		c.Release(out)
	})
	eng.Run()
	interior.ForEach(func(cell grid.IVec) {
		want := src.At(cell.Sub(grid.IV(1, 0, 0)))
		if dst.At(cell) != want {
			t.Fatalf("cell %v = %v, want %v", cell, dst.At(cell), want)
		}
	})
}

func TestLDMOverflowRejected(t *testing.T) {
	_, g := newGroup(t)
	flag := sim.NewCounter(g.CoreGroup().Engine(), "flag")
	big := grid.BoxFromSize(grid.IV(0, 0, 0), grid.IV(32, 32, 16)) // 128 KiB
	g.Spawn(testSpec, 64, false, flag, func(c *CPE) {
		buf, err := c.Get(big, nil)
		if err == nil {
			t.Fatal("oversized LDM buffer accepted")
		}
		if !strings.Contains(err.Error(), "LDM overflow") {
			t.Fatalf("error = %v", err)
		}
		if buf != nil {
			t.Fatal("buffer returned with error")
		}
	})
}

func TestLDMAccountingAcrossBuffers(t *testing.T) {
	_, g := newGroup(t)
	flag := sim.NewCounter(g.CoreGroup().Engine(), "flag")
	tile := grid.BoxFromSize(grid.IV(0, 0, 0), grid.IV(16, 16, 8))
	g.Spawn(testSpec, 64, false, flag, func(c *CPE) {
		in, err := c.Get(tile.Grow(1), nil) // 25920 B
		if err != nil {
			t.Fatal(err)
		}
		out, err := c.NewBuf(tile) // 16384 B
		if err != nil {
			t.Fatal(err)
		}
		if c.LDMUsed() != 18*18*10*8+16*16*8*8 {
			t.Fatalf("LDM used = %d", c.LDMUsed())
		}
		// The paper's 41.3 KiB working set fits; a third tile buffer
		// does not.
		if _, err := c.NewBuf(tile.Grow(1)); err == nil {
			t.Fatal("third buffer should overflow the 64 KiB LDM")
		}
		c.Release(in)
		c.Release(out)
	})
}

func TestLDMLeakPanics(t *testing.T) {
	_, g := newGroup(t)
	flag := sim.NewCounter(g.CoreGroup().Engine(), "flag")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on leaked LDM")
		}
	}()
	g.Spawn(testSpec, 64, false, flag, func(c *CPE) {
		if _, err := c.Get(grid.BoxFromSize(grid.IV(0, 0, 0), grid.IV(4, 4, 4)), nil); err != nil {
			t.Fatal(err)
		}
		// no Release
	})
}

func TestCountersCharged(t *testing.T) {
	eng, g := newGroup(t)
	flag := sim.NewCounter(eng, "flag")
	tile := grid.BoxFromSize(grid.IV(0, 0, 0), grid.IV(16, 16, 8))
	g.Spawn(testSpec, 64, false, flag, func(c *CPE) {
		in, _ := c.Get(tile.Grow(1), nil)
		out, _ := c.NewBuf(tile)
		c.Compute(tile.NumCells())
		c.Put(nil, out)
		c.Release(in)
		c.Release(out)
	})
	ctr := g.CoreGroup().Counters
	cells := tile.NumCells() * 64
	if ctr.CellsComputed != cells {
		t.Errorf("CellsComputed = %d, want %d", ctr.CellsComputed, cells)
	}
	if ctr.Flops != int64(311*float64(cells)) {
		t.Errorf("Flops = %d", ctr.Flops)
	}
	if ctr.ExpFlops != int64(215*float64(cells)) {
		t.Errorf("ExpFlops = %d", ctr.ExpFlops)
	}
	wantDMA := int64(64) * (tile.Grow(1).NumCells() + tile.NumCells()) * 8
	if ctr.DMABytes != wantDMA {
		t.Errorf("DMABytes = %d, want %d", ctr.DMABytes, wantDMA)
	}
	if ctr.DMAOps != 128 {
		t.Errorf("DMAOps = %d", ctr.DMAOps)
	}
	if ctr.Offloads != 1 || ctr.FaawOps != 64 {
		t.Errorf("Offloads = %d FaawOps = %d", ctr.Offloads, ctr.FaawOps)
	}
}

func TestSIMDSpecRunsFaster(t *testing.T) {
	eng, g := newGroup(t)
	flag := sim.NewCounter(eng, "f1")
	scalarT := g.Spawn(testSpec, 64, false, flag, func(c *CPE) { c.Compute(1000) })
	eng.Run()
	simdSpec := testSpec
	simdSpec.SIMD = true
	flag2 := sim.NewCounter(eng, "f2")
	simdT := g.Spawn(simdSpec, 64, false, flag2, func(c *CPE) { c.Compute(1000) })
	eng.Run()
	if simdT >= scalarT {
		t.Fatalf("simd %v not faster than scalar %v", simdT, scalarT)
	}
}

func TestDMAContentionSlowsTransfers(t *testing.T) {
	eng, g := newGroup(t)
	tile := grid.BoxFromSize(grid.IV(0, 0, 0), grid.IV(16, 16, 8))
	run := func(active int) sim.Time {
		flag := sim.NewCounter(eng, "f")
		d := g.Spawn(testSpec, active, false, flag, func(c *CPE) {
			in, _ := c.Get(tile, nil)
			c.Release(in)
		})
		eng.Run()
		return d
	}
	solo := run(1)
	crowded := run(64)
	if crowded <= solo {
		t.Fatalf("contended spawn %v should be slower than solo %v", crowded, solo)
	}
}

func TestOverlapDMAEndTileMatchesRepeatTiles(t *testing.T) {
	// With double buffering, n tiles cost (dma+compute) + (n-1)*max(dma,
	// compute); the per-tile Get/Compute/Put/EndTile path must charge
	// exactly what the analytic RepeatTiles fast path charges.
	spec := testSpec
	spec.OverlapDMA = true
	tile := grid.BoxFromSize(grid.IV(0, 0, 0), grid.IV(16, 16, 8))
	ghosted := tile.Grow(1)
	const n = 5

	run := func(perTile bool) sim.Time {
		eng, g := newGroup(t)
		flag := sim.NewCounter(eng, "f")
		dur := g.Spawn(spec, 64, false, flag, func(c *CPE) {
			if c.ID != 0 {
				return
			}
			if !perTile {
				c.RepeatTiles(n, ghosted.NumCells()*8, tile.NumCells()*8, tile.NumCells())
				return
			}
			for i := 0; i < n; i++ {
				in, err := c.Get(ghosted, nil)
				if err != nil {
					t.Fatal(err)
				}
				out, err := c.NewBuf(tile)
				if err != nil {
					t.Fatal(err)
				}
				c.Compute(tile.NumCells())
				c.Put(nil, out)
				c.Release(in)
				c.Release(out)
				c.EndTile()
			}
		})
		eng.Run()
		return dur
	}
	slow := run(true)
	fast := run(false)
	if d := float64(slow - fast); d > 1e-12 || d < -1e-12 {
		t.Fatalf("per-tile overlap accounting %v != analytic %v", slow, fast)
	}
}

func TestPackedDMACheaper(t *testing.T) {
	packed := testSpec
	packed.PackedDMA = true
	tile := grid.BoxFromSize(grid.IV(0, 0, 0), grid.IV(16, 16, 8))
	run := func(spec KernelSpec) sim.Time {
		eng, g := newGroup(t)
		flag := sim.NewCounter(eng, "f")
		dur := g.Spawn(spec, 64, false, flag, func(c *CPE) {
			in, _ := c.Get(tile, nil)
			c.Release(in)
		})
		eng.Run()
		return dur
	}
	if a, b := run(packed), run(testSpec); a >= b {
		t.Fatalf("packed DMA (%v) not cheaper than strided (%v)", a, b)
	}
}
