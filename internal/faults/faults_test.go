package faults

import (
	"testing"
)

// Identical seed + plan must reproduce the exact draw sequence.
func TestStreamsDeterministic(t *testing.T) {
	plan := Default()
	a := NewInjector(plan)
	b := NewInjector(plan)
	for i := 0; i < 2000; i++ {
		ad, adup, adel, adeg := a.MsgFate(0)
		bd, bdup, bdel, bdeg := b.MsgFate(0)
		if ad != bd || adup != bdup || adel != bdel || adeg != bdeg {
			t.Fatalf("MsgFate diverged at draw %d", i)
		}
		as, af := a.OffloadFate(0)
		bs, bf := b.OffloadFate(0)
		if as != bs || af != bf {
			t.Fatalf("OffloadFate diverged at draw %d", i)
		}
	}
	if a.Counts != b.Counts {
		t.Fatalf("counts diverged: %+v vs %+v", a.Counts, b.Counts)
	}
	if a.Counts.MsgsDropped == 0 || a.Counts.OffloadStalls == 0 {
		t.Fatalf("default plan injected nothing over 2000 draws: %+v", a.Counts)
	}
}

// Streams are independent: extra draws in one category must not shift
// another category's sequence.
func TestStreamsIndependent(t *testing.T) {
	plan := Default()
	a := NewInjector(plan)
	b := NewInjector(plan)
	for i := 0; i < 100; i++ {
		a.MsgFate(0) // perturb only the message stream on a
	}
	for i := 0; i < 50; i++ {
		as, af := a.OffloadFate(0)
		bs, bf := b.OffloadFate(0)
		if as != bs || af != bf {
			t.Fatalf("offload stream shifted by message draws at %d", i)
		}
	}
}

// Different seeds must produce different fault histories.
func TestSeedMatters(t *testing.T) {
	p1 := Default()
	p2 := Default()
	p2.Seed = 2
	a, b := NewInjector(p1), NewInjector(p2)
	same := true
	for i := 0; i < 500; i++ {
		ad, _, _, _ := a.MsgFate(0)
		bd, _, _, _ := b.MsgFate(0)
		if ad != bd {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical 500-draw drop history")
	}
}

func TestZeroAndNilPlans(t *testing.T) {
	var nilPlan *Plan
	if !nilPlan.Zero() {
		t.Fatal("nil plan must be Zero")
	}
	if NewInjector(nilPlan) != nil {
		t.Fatal("nil plan must yield nil injector")
	}
	if NewInjector(&Plan{Seed: 42}) != nil {
		t.Fatal("seed-only plan injects nothing and must yield nil injector")
	}
	if NewInjector(&Plan{Drop: 0.1}) == nil {
		t.Fatal("nonzero plan must yield an injector")
	}
	if NewInjector(&Plan{CrashAtStep: 3}) == nil {
		t.Fatal("forced-crash plan must yield an injector")
	}
}

func TestNormalizedDefaults(t *testing.T) {
	n := (&Plan{Drop: 0.1}).Normalized()
	if n.DelayFactor != 4 || n.DegradeFactor != 3 || n.StraggleFactor != 3 {
		t.Fatalf("factor defaults wrong: %+v", n)
	}
	if n.MaxRestarts != 4 || n.CheckpointEvery != 2 || n.DeadlineFactor != 4 ||
		n.MaxRetries != 2 || n.UnhealthyAfter != 3 {
		t.Fatalf("policy defaults wrong: %+v", n)
	}
	if n.CheckpointCost != 2e-3 || n.RestartCost != 20e-3 {
		t.Fatalf("cost defaults wrong: %+v", n)
	}
}

// Canonical must be stable and must not distinguish explicit defaults from
// implied ones.
func TestCanonical(t *testing.T) {
	a := &Plan{Drop: 0.1}
	b := &Plan{Drop: 0.1, DelayFactor: 4, MaxRetries: 2}
	if a.Canonical() != b.Canonical() {
		t.Fatalf("explicit default changed canonical form:\n%s\n%s", a.Canonical(), b.Canonical())
	}
	c := &Plan{Drop: 0.1, Seed: 9}
	if a.Canonical() == c.Canonical() {
		t.Fatal("seed not reflected in canonical form")
	}
}

func TestScaled(t *testing.T) {
	p := Default()
	h := p.Scaled(0.5)
	if h.Drop != p.Drop/2 || h.Crash != p.Crash/2 {
		t.Fatalf("Scaled(0.5) wrong: %+v", h)
	}
	if !p.Scaled(0).Zero() {
		t.Fatal("Scaled(0) must be a zero plan")
	}
	if big := p.Scaled(1000); big.Drop != 1 || big.Crash != 1 {
		t.Fatalf("Scaled must clamp rates to 1: %+v", big)
	}
	if p.Scaled(2).MaxRestarts != p.MaxRestarts {
		t.Fatal("Scaled must not touch recovery policy")
	}
}

func TestParse(t *testing.T) {
	if p, err := Parse(""); err != nil || p != nil {
		t.Fatalf("empty spec: %v %v", p, err)
	}
	if p, err := Parse("off"); err != nil || p != nil {
		t.Fatalf("off spec: %v %v", p, err)
	}
	p, err := Parse("default")
	if err != nil {
		t.Fatal(err)
	}
	if *p != *Default() {
		t.Fatalf("default preset mismatch: %+v", p)
	}
	p, err = Parse("default,seed=7,scale=0.5,crash-at=3,crash-rank=1")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || p.Drop != Default().Drop*0.5 || p.CrashAtStep != 3 || p.CrashRank != 1 {
		t.Fatalf("composite spec mismatch: %+v", p)
	}
	p, err = Parse("drop=0.25,stall=0.1,max-retries=5")
	if err != nil {
		t.Fatal(err)
	}
	if p.Drop != 0.25 || p.Stall != 0.1 || p.MaxRetries != 5 {
		t.Fatalf("key=value spec mismatch: %+v", p)
	}
	// A spec that scales everything to zero is a nil plan.
	if p, err := Parse("default,scale=0"); err != nil || p != nil {
		t.Fatalf("scaled-to-zero spec should be nil: %v %v", p, err)
	}
	for _, bad := range []string{"nope", "drop=x", "scale=-1", "frob=1", "seed=-2"} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) should fail", bad)
		}
	}
}

func TestMsgFateConsumesFixedDraws(t *testing.T) {
	// Two plans with very different rates but the same seed must keep the
	// crash stream aligned after arbitrary MsgFate draws (fixed
	// consumption per call).
	hi := &Plan{Seed: 5, Drop: 0.9, Dup: 0.9, Delay: 0.9, Degrade: 0.9, Crash: 0.5}
	lo := &Plan{Seed: 5, Drop: 0.001, Crash: 0.5}
	a, b := NewInjector(hi), NewInjector(lo)
	for i := 0; i < 64; i++ {
		a.MsgFate(0)
		b.MsgFate(0)
	}
	ar, as, af, aok := a.CrashPoint(10, 4)
	br, bs, bf, bok := b.CrashPoint(10, 4)
	if ar != br || as != bs || af != bf || aok != bok {
		t.Fatal("crash stream perturbed by message-fate outcomes")
	}
}

func TestCrashPoint(t *testing.T) {
	inj := NewInjector(&Plan{Seed: 3, CrashAtStep: 4, CrashRank: 2})
	r, s, _, ok := inj.CrashPoint(10, 4)
	if !ok || r != 2 || s != 4 {
		t.Fatalf("forced crash point wrong: rank=%d step=%d ok=%v", r, s, ok)
	}
	// Forced rank clamps to the communicator size.
	inj = NewInjector(&Plan{CrashAtStep: 4, CrashRank: 99})
	if r, _, _, _ := inj.CrashPoint(10, 2); r != 1 {
		t.Fatalf("crash rank not clamped: %d", r)
	}
	// Certain crash: always ok, in range.
	inj = NewInjector(&Plan{Seed: 8, Crash: 1})
	for i := 0; i < 100; i++ {
		r, s, f, ok := inj.CrashPoint(10, 4)
		if !ok || r < 0 || r >= 4 || s < 1 || s > 10 || f < 0 || f >= 1 {
			t.Fatalf("crash draw out of range: rank=%d step=%d frac=%g ok=%v", r, s, f, ok)
		}
	}
	// Impossible crash: never ok.
	inj = NewInjector(&Plan{Seed: 8, Crash: 0, Drop: 0.1})
	if _, _, _, ok := inj.CrashPoint(10, 4); ok {
		t.Fatal("crash drawn with zero crash rate")
	}
}

// Per-rank streams: one rank's draw sequence must not depend on how many
// draws other ranks made, and distinct ranks must see distinct histories.
func TestPerRankStreamsIndependent(t *testing.T) {
	plan := Default()
	a := NewInjector(plan)
	b := NewInjector(plan)
	for i := 0; i < 300; i++ {
		a.MsgFate(1) // perturb only rank 1 on a
		a.OffloadFate(1)
	}
	for i := 0; i < 200; i++ {
		ad, adup, adel, adeg := a.MsgFate(0)
		bd, bdup, bdel, bdeg := b.MsgFate(0)
		if ad != bd || adup != bdup || adel != bdel || adeg != bdeg {
			t.Fatalf("rank 0 message stream shifted by rank 1 draws at %d", i)
		}
		as, af := a.OffloadFate(0)
		bs, bf := b.OffloadFate(0)
		if as != bs || af != bf {
			t.Fatalf("rank 0 offload stream shifted by rank 1 draws at %d", i)
		}
	}
	// Distinct ranks draw distinct histories from one seed.
	c := NewInjector(plan)
	same := true
	for i := 0; i < 500; i++ {
		cd, _, _, _ := c.MsgFate(2)
		cd3, _, _, _ := c.MsgFate(3)
		if cd != cd3 {
			same = false
		}
	}
	if same {
		t.Fatal("ranks 2 and 3 produced identical 500-draw drop history")
	}
}
