// Package faults is the deterministic fault-injection plane of the
// simulated Sunway substrate. A Plan declares seeded probabilities for the
// failure modes the paper's production runs contend with — lost, delayed,
// duplicated messages and degraded links on the interconnect; stalled or
// straggling CPE gangs under athread; whole-core-group crashes — and an
// Injector turns the plan into reproducible per-event draws.
//
// Determinism is the contract: every draw comes from a per-category,
// per-rank splitmix64 stream derived from the plan's seed, so an identical
// seed and plan yields an identical fault history (and therefore
// byte-identical results) regardless of how many worker goroutines execute
// sibling runs — and, because each rank owns its streams, regardless of how
// the sharded engine interleaves ranks across host cores.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"sunuintah/internal/rng"
)

// Plan declares what to inject. The zero value injects nothing; rates are
// probabilities in [0,1] drawn per event (per message transmission, per
// offload, per run for crashes). Factors and costs that are zero take the
// documented defaults when the plan is used.
type Plan struct {
	// Seed selects the fault streams. Identical seed + plan => identical
	// fault history.
	Seed uint64 `json:"seed,omitempty"`

	// Interconnect faults, drawn per message transmission.
	Drop    float64 `json:"drop,omitempty"`    // message lost on the wire
	Dup     float64 `json:"dup,omitempty"`     // message delivered twice
	Delay   float64 `json:"delay,omitempty"`   // wire time multiplied by DelayFactor
	Degrade float64 `json:"degrade,omitempty"` // wire time multiplied by DegradeFactor
	// DelayFactor and DegradeFactor scale the wire time of delayed and
	// degraded transmissions. Defaults 4 and 3.
	DelayFactor   float64 `json:"delayFactor,omitempty"`
	DegradeFactor float64 `json:"degradeFactor,omitempty"`

	// CPE-side faults, drawn per offload.
	Stall    float64 `json:"stall,omitempty"`    // gang hangs; completion flag never fills
	Straggle float64 `json:"straggle,omitempty"` // gang finishes StraggleFactor slower
	// StraggleFactor multiplies a straggling gang's compute time. Default 3.
	StraggleFactor float64 `json:"straggleFactor,omitempty"`

	// Crash is the probability that a whole core group fails during a
	// resilient run (core.RunResilient); the failing rank, step and
	// intra-step position are drawn from the crash stream. CrashAtStep > 0
	// forces exactly one deterministic crash of CrashRank at that 1-based
	// step instead.
	Crash       float64 `json:"crash,omitempty"`
	CrashAtStep int     `json:"crashAtStep,omitempty"`
	CrashRank   int     `json:"crashRank,omitempty"`

	// Recovery policy.
	MaxRestarts     int     `json:"maxRestarts,omitempty"`     // restarts before a run is lost (default 4)
	CheckpointEvery int     `json:"checkpointEvery,omitempty"` // steps between checkpoints (default 2)
	CheckpointCost  float64 `json:"checkpointCost,omitempty"`  // virtual seconds per checkpoint (default 2ms)
	RestartCost     float64 `json:"restartCost,omitempty"`     // virtual seconds per restart (default 20ms)

	// Scheduler resilience tuning.
	DeadlineFactor int `json:"deadlineFactor,omitempty"` // offload deadline as a multiple of the healthy estimate (default 4)
	MaxRetries     int `json:"maxRetries,omitempty"`     // re-offload attempts before MPE fallback (default 2)
	UnhealthyAfter int `json:"unhealthyAfter,omitempty"` // consecutive failures that mark a gang unhealthy (default 3)
}

// Zero reports whether the plan injects nothing (all rates zero and no
// forced crash). A nil or zero plan leaves every fault path disabled and
// runs byte-identical to a build without the fault plane.
func (p *Plan) Zero() bool {
	if p == nil {
		return true
	}
	return p.Drop == 0 && p.Dup == 0 && p.Delay == 0 && p.Degrade == 0 &&
		p.Stall == 0 && p.Straggle == 0 && p.Crash == 0 && p.CrashAtStep == 0
}

// Normalized returns a copy with every defaultable field filled in, the
// form Canonical and the Injector consume (so an explicitly-set default
// hashes identically to an unset one).
func (p *Plan) Normalized() Plan {
	n := *p
	if n.DelayFactor <= 0 {
		n.DelayFactor = 4
	}
	if n.DegradeFactor <= 0 {
		n.DegradeFactor = 3
	}
	if n.StraggleFactor <= 0 {
		n.StraggleFactor = 3
	}
	if n.MaxRestarts <= 0 {
		n.MaxRestarts = 4
	}
	if n.CheckpointEvery <= 0 {
		n.CheckpointEvery = 2
	}
	if n.CheckpointCost <= 0 {
		n.CheckpointCost = 2e-3
	}
	if n.RestartCost <= 0 {
		n.RestartCost = 20e-3
	}
	if n.DeadlineFactor <= 0 {
		n.DeadlineFactor = 4
	}
	if n.MaxRetries <= 0 {
		n.MaxRetries = 2
	}
	if n.UnhealthyAfter <= 0 {
		n.UnhealthyAfter = 3
	}
	return n
}

// Canonical renders the normalized plan as a stable key string for content
// hashing. Field order is fixed; two plans with the same effective
// behaviour produce the same canonical form.
func (p *Plan) Canonical() string {
	n := p.Normalized()
	return fmt.Sprintf("seed=%d;drop=%g;dup=%g;delay=%g;delayf=%g;degrade=%g;degradef=%g;stall=%g;straggle=%g;stragglef=%g;crash=%g;crashat=%d;crashrank=%d;restarts=%d;ckptevery=%d;ckptcost=%g;restartcost=%g;deadlinef=%d;retries=%d;unhealthy=%d",
		n.Seed, n.Drop, n.Dup, n.Delay, n.DelayFactor, n.Degrade, n.DegradeFactor,
		n.Stall, n.Straggle, n.StraggleFactor, n.Crash, n.CrashAtStep, n.CrashRank,
		n.MaxRestarts, n.CheckpointEvery, n.CheckpointCost, n.RestartCost,
		n.DeadlineFactor, n.MaxRetries, n.UnhealthyAfter)
}

// Scaled returns a copy with every fault rate multiplied by f (clamped to
// [0,1]); recovery policy and factors are unchanged. Scaled(0) is a zero
// plan. Used by the chaos artifact's overhead-vs-rate sweep.
func (p *Plan) Scaled(f float64) *Plan {
	n := *p
	clamp := func(r float64) float64 {
		r *= f
		if r < 0 {
			return 0
		}
		if r > 1 {
			return 1
		}
		return r
	}
	n.Drop = clamp(p.Drop)
	n.Dup = clamp(p.Dup)
	n.Delay = clamp(p.Delay)
	n.Degrade = clamp(p.Degrade)
	n.Stall = clamp(p.Stall)
	n.Straggle = clamp(p.Straggle)
	n.Crash = clamp(p.Crash)
	return &n
}

// Default is the chaos evaluation's reference plan: a few percent of every
// fault mode plus a substantial crash probability, the default fault rate
// of the chaos artifact and the CLIs' "-faults default".
func Default() *Plan {
	return &Plan{
		Seed:     1,
		Drop:     0.02,
		Dup:      0.01,
		Delay:    0.05,
		Degrade:  0.05,
		Stall:    0.02,
		Straggle: 0.05,
		Crash:    0.25,
	}
}

// Parse builds a plan from a comma-separated spec like
//
//	"default,seed=7,scale=2"  or  "drop=0.1,stall=0.05,crash=1"
//
// Tokens are applied left to right: "default" loads Default(), "off"/""
// yields a nil plan, "scale=F" multiplies the rates accumulated so far, and
// "key=value" sets one Plan field. Keys: seed, drop, dup, delay, degrade,
// delay-factor, degrade-factor, stall, straggle, straggle-factor, crash,
// crash-at, crash-rank, max-restarts, ckpt-every, ckpt-cost, restart-cost,
// deadline-factor, max-retries, unhealthy-after.
func Parse(s string) (*Plan, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "off" {
		return nil, nil
	}
	p := &Plan{}
	setFloat := map[string]*float64{
		"drop": &p.Drop, "dup": &p.Dup, "delay": &p.Delay, "degrade": &p.Degrade,
		"delay-factor": &p.DelayFactor, "degrade-factor": &p.DegradeFactor,
		"stall": &p.Stall, "straggle": &p.Straggle, "straggle-factor": &p.StraggleFactor,
		"crash": &p.Crash, "ckpt-cost": &p.CheckpointCost, "restart-cost": &p.RestartCost,
	}
	setInt := map[string]*int{
		"crash-at": &p.CrashAtStep, "crash-rank": &p.CrashRank,
		"max-restarts": &p.MaxRestarts, "ckpt-every": &p.CheckpointEvery,
		"deadline-factor": &p.DeadlineFactor, "max-retries": &p.MaxRetries,
		"unhealthy-after": &p.UnhealthyAfter,
	}
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		if tok == "default" {
			*p = *Default()
			continue
		}
		k, v, ok := strings.Cut(tok, "=")
		if !ok {
			return nil, fmt.Errorf("faults: token %q is not key=value (or \"default\")", tok)
		}
		k = strings.TrimSpace(k)
		v = strings.TrimSpace(v)
		switch k {
		case "seed":
			u, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad seed %q: %v", v, err)
			}
			p.Seed = u
		case "scale":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f < 0 {
				return nil, fmt.Errorf("faults: bad scale %q", v)
			}
			*p = *p.Scaled(f)
		default:
			if fp, ok := setFloat[k]; ok {
				f, err := strconv.ParseFloat(v, 64)
				if err != nil || f < 0 {
					return nil, fmt.Errorf("faults: bad value %q for %s", v, k)
				}
				*fp = f
				continue
			}
			if ip, ok := setInt[k]; ok {
				i, err := strconv.Atoi(v)
				if err != nil || i < 0 {
					return nil, fmt.Errorf("faults: bad value %q for %s", v, k)
				}
				*ip = i
				continue
			}
			return nil, fmt.Errorf("faults: unknown key %q (known: %s)", k, knownKeys(setFloat, setInt))
		}
	}
	if p.Zero() {
		return nil, nil
	}
	return p, nil
}

func knownKeys(f map[string]*float64, i map[string]*int) string {
	keys := []string{"seed", "scale"}
	for k := range f {
		keys = append(keys, k)
	}
	for k := range i {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, " ")
}

// Counts tallies injected faults, one bump per injected event. All fields
// marshal; a fault-free faulty-plan run reports explicit zeros.
type Counts struct {
	MsgsDropped    int64 `json:"msgsDropped"`
	MsgsDuplicated int64 `json:"msgsDuplicated"`
	MsgsDelayed    int64 `json:"msgsDelayed"`
	MsgsDegraded   int64 `json:"msgsDegraded"`
	OffloadStalls  int64 `json:"offloadStalls"`
	Stragglers     int64 `json:"stragglers"`
}

// Add accumulates other into c.
func (c *Counts) Add(other Counts) {
	c.MsgsDropped += other.MsgsDropped
	c.MsgsDuplicated += other.MsgsDuplicated
	c.MsgsDelayed += other.MsgsDelayed
	c.MsgsDegraded += other.MsgsDegraded
	c.OffloadStalls += other.OffloadStalls
	c.Stragglers += other.Stragglers
}

// Stream indices: each fault category draws from its own splitmix64
// sequence so adding draws in one category never perturbs another.
const (
	streamMsg = iota
	streamOffload
	streamCrash
	numStreams
)

// Injector performs the seeded draws for one simulation. The message and
// offload categories keep one stream per rank, created on first use: a
// rank's draw sequence depends only on its own fault sites, in their
// engine-serialised order, never on how other ranks' draws interleave.
// That makes the injector safe for the sharded engine, where different
// ranks draw concurrently from different host threads — stream creation is
// mutex-guarded and tallies are atomic; the draws themselves are only ever
// made by the owning rank. The crash stream stays global (a crash point is
// drawn once per run, outside engine execution).
type Injector struct {
	plan       Plan
	crashState *rng.Stream

	mu        sync.Mutex
	msgStates map[int]*rng.Stream
	offStates map[int]*rng.Stream

	// Counts tallies injected faults as they are drawn.
	Counts Counts
}

// NewInjector builds an injector for the plan, or nil when the plan is nil
// or zero — callers gate every fault path on a non-nil injector, so a zero
// plan leaves the substrate bit-identical to the fault-free build.
func NewInjector(p *Plan) *Injector {
	if p.Zero() {
		return nil
	}
	inj := &Injector{
		plan:      p.Normalized(),
		msgStates: make(map[int]*rng.Stream),
		offStates: make(map[int]*rng.Stream),
	}
	inj.crashState = rng.NewSub(inj.plan.Seed, streamCrash, 0)
	return inj
}

// state returns rank's stream for the category, creating it on first use.
// Stream derivation lives in internal/rng (rank 0's streams coincide with
// the historical per-category ones). Only the map access is locked: the
// returned stream is advanced by the owning rank alone, which the engine
// serialises.
func (i *Injector) state(m map[int]*rng.Stream, stream, rank int) *rng.Stream {
	i.mu.Lock()
	st, ok := m[rank]
	if !ok {
		st = rng.NewSub(i.plan.Seed, stream, rank)
		m[rank] = st
	}
	i.mu.Unlock()
	return st
}

// Plan returns the injector's normalized plan.
func (i *Injector) Plan() Plan { return i.plan }

// MsgFate draws the fate of one message transmission sent by rank. Exactly
// four uniforms are consumed from the rank's message stream per call
// regardless of outcome, so the stream position is independent of earlier
// results. When drop is true the other flags are false (a lost message
// cannot also be delivered).
func (i *Injector) MsgFate(rank int) (drop, dup, delay, degrade bool) {
	st := i.state(i.msgStates, streamMsg, rank)
	drop = st.Uniform() < i.plan.Drop
	dup = st.Uniform() < i.plan.Dup
	delay = st.Uniform() < i.plan.Delay
	degrade = st.Uniform() < i.plan.Degrade
	if drop {
		atomic.AddInt64(&i.Counts.MsgsDropped, 1)
		return true, false, false, false
	}
	if dup {
		atomic.AddInt64(&i.Counts.MsgsDuplicated, 1)
	}
	if delay {
		atomic.AddInt64(&i.Counts.MsgsDelayed, 1)
	}
	if degrade {
		atomic.AddInt64(&i.Counts.MsgsDegraded, 1)
	}
	return drop, dup, delay, degrade
}

// OffloadFate draws the fate of one athread offload on rank: a stalled
// gang whose completion flag never fills, or a straggler running factor
// times slower. Two uniforms are consumed from the rank's offload stream
// per call; factor is 1 for a healthy offload.
func (i *Injector) OffloadFate(rank int) (stall bool, factor float64) {
	st := i.state(i.offStates, streamOffload, rank)
	stallDraw := st.Uniform() < i.plan.Stall
	straggleDraw := st.Uniform() < i.plan.Straggle
	if stallDraw {
		atomic.AddInt64(&i.Counts.OffloadStalls, 1)
		return true, 1
	}
	if straggleDraw {
		atomic.AddInt64(&i.Counts.Stragglers, 1)
		return false, i.plan.StraggleFactor
	}
	return false, 1
}

// CrashPoint draws whether (and where) a whole core group crashes during a
// run of nSteps on nRanks ranks: the failing rank, the 1-based step during
// which it dies, and the fraction of that step's expected duration at which
// the crash fires. A plan with CrashAtStep set returns that point
// deterministically without consuming the stream.
func (i *Injector) CrashPoint(nSteps, nRanks int) (rank, step int, frac float64, ok bool) {
	if i.plan.CrashAtStep > 0 {
		r := i.plan.CrashRank
		if r >= nRanks {
			r = nRanks - 1
		}
		return r, i.plan.CrashAtStep, 0.5, true
	}
	if i.plan.Crash <= 0 {
		return 0, 0, 0, false
	}
	happen := i.crashState.Uniform() < i.plan.Crash
	rank = int(i.crashState.Uniform() * float64(nRanks))
	step = 1 + int(i.crashState.Uniform()*float64(nSteps))
	frac = i.crashState.Uniform()
	if !happen {
		return 0, 0, 0, false
	}
	if rank >= nRanks {
		rank = nRanks - 1
	}
	if step > nSteps {
		step = nSteps
	}
	return rank, step, frac, true
}
