// Package jobstore persists sunserver's accepted jobs across process
// restarts: an append-only JSONL journal plus a periodic snapshot, both in
// one directory. Every accepted job and every state transition is one
// journal line; on open, the snapshot is loaded and the journal replayed
// on top of it, tolerating a torn final line from a crash mid-write.
//
// The store deliberately does not persist results. Results live in the
// runner's content-addressed cache keyed by Spec.Hash(), so a recovered
// incomplete job is simply resubmitted to the pool: if the disk cache
// already holds its result it completes instantly, otherwise it re-runs —
// the same at-least-once semantics either way.
//
// A nil *Store is a valid no-op store, so callers can wire persistence
// through unconditionally and turn it off by passing nil.
package jobstore

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"sunuintah/internal/runner"
)

// Record is the durable fact of one accepted job: everything needed to
// resume it after a restart, and nothing derived (results are in the
// content-addressed cache).
type Record struct {
	ID        string          `json:"id"`
	Tenant    string          `json:"tenant,omitempty"`
	Spec      runner.Spec     `json:"spec"`
	Repeats   int             `json:"repeats,omitempty"`
	State     runner.JobState `json:"state"`
	Submitted time.Time       `json:"submitted"`
	Finished  *time.Time      `json:"finished,omitempty"`
	Error     string          `json:"error,omitempty"`
}

// Terminal reports whether the record has reached a terminal state.
func (r Record) Terminal() bool { return Terminal(r.State) }

// Terminal reports whether st is a terminal job state.
func Terminal(st runner.JobState) bool {
	return st == runner.StateDone || st == runner.StateFailed || st == runner.StateCanceled
}

// entry is one journal line.
type entry struct {
	// Op is "accept" (Record set), "state" (ID/State/Finished/Error set)
	// or "drop" (ID set; the job was garbage-collected past retention).
	Op       string          `json:"op"`
	Record   *Record         `json:"record,omitempty"`
	ID       string          `json:"id,omitempty"`
	State    runner.JobState `json:"state,omitempty"`
	Finished *time.Time      `json:"finished,omitempty"`
	Error    string          `json:"error,omitempty"`
}

const (
	snapshotFile = "snapshot.json"
	journalFile  = "journal.jsonl"
	// compactEvery bounds journal growth: after this many appended
	// entries the store folds the journal into a fresh snapshot.
	compactEvery = 4096
)

// Store is the persistent job store. All methods are safe for concurrent
// use and safe on a nil receiver (no-ops).
type Store struct {
	mu       sync.Mutex
	dir      string
	journal  *os.File
	recs     map[string]*Record
	appended int // journal entries since the last snapshot
}

// Open loads (creating if needed) the store at dir: snapshot first, then
// the journal replayed on top. A torn trailing journal line (crash during
// append) is ignored; any other corruption is an error.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("jobstore: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobstore: %w", err)
	}
	s := &Store{dir: dir, recs: map[string]*Record{}}

	if data, err := os.ReadFile(filepath.Join(dir, snapshotFile)); err == nil {
		var snap []Record
		if err := json.Unmarshal(data, &snap); err != nil {
			return nil, fmt.Errorf("jobstore: corrupt snapshot: %w", err)
		}
		for i := range snap {
			rec := snap[i]
			s.recs[rec.ID] = &rec
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("jobstore: %w", err)
	}

	jpath := filepath.Join(dir, journalFile)
	if f, err := os.Open(jpath); err == nil {
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			var e entry
			if err := json.Unmarshal([]byte(line), &e); err != nil {
				// A torn final line is the expected crash artifact; a
				// torn middle line would have been followed by more
				// appends and is equally safe to stop at.
				break
			}
			s.apply(e)
			s.appended++
		}
		f.Close()
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("jobstore: reading journal: %w", err)
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("jobstore: %w", err)
	}

	j, err := os.OpenFile(jpath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobstore: %w", err)
	}
	s.journal = j
	return s, nil
}

// Dir returns the backing directory ("" for a nil store).
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// apply folds one journal entry into the in-memory record set. Caller
// holds s.mu (or is single-threaded during Open).
func (s *Store) apply(e entry) {
	switch e.Op {
	case "accept":
		if e.Record != nil {
			rec := *e.Record
			s.recs[rec.ID] = &rec
		}
	case "state":
		if rec, ok := s.recs[e.ID]; ok {
			rec.State = e.State
			rec.Finished = e.Finished
			rec.Error = e.Error
		}
	case "drop":
		delete(s.recs, e.ID)
	}
}

// append journals one entry and applies it, compacting when due.
func (s *Store) append(e entry) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	data, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	if _, err := s.journal.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("jobstore: journal append: %w", err)
	}
	s.apply(e)
	s.appended++
	if s.appended >= compactEvery {
		return s.compactLocked()
	}
	return nil
}

// Accept journals a newly accepted job.
func (s *Store) Accept(rec Record) error {
	return s.append(entry{Op: "accept", Record: &rec})
}

// SetState journals a non-terminal state transition.
func (s *Store) SetState(id string, st runner.JobState) error {
	return s.append(entry{Op: "state", ID: id, State: st})
}

// Finish journals a terminal transition with its timestamp and, for
// failures, the error message.
func (s *Store) Finish(id string, st runner.JobState, finished time.Time, errMsg string) error {
	return s.append(entry{Op: "state", ID: id, State: st, Finished: &finished, Error: errMsg})
}

// Drop journals that a job was garbage-collected past the retention cap,
// so a restart does not resurrect it.
func (s *Store) Drop(id string) error {
	return s.append(entry{Op: "drop", ID: id})
}

// Records returns every live record sorted by numeric ID.
func (s *Store) Records() []Record {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	out := make([]Record, 0, len(s.recs))
	for _, rec := range s.recs {
		out = append(out, *rec)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return NumericID(out[i].ID) < NumericID(out[j].ID) })
	return out
}

// Incomplete returns the records that have not reached a terminal state,
// sorted by numeric ID — the restart-recovery work list.
func (s *Store) Incomplete() []Record {
	var out []Record
	for _, rec := range s.Records() {
		if !rec.Terminal() {
			out = append(out, rec)
		}
	}
	return out
}

// Len reports the number of live records.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}

// JournalEntries reports entries appended since the last compaction — an
// observability figure for /metrics.
func (s *Store) JournalEntries() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appended
}

// MaxID returns the highest numeric suffix among live record IDs ("j17"
// -> 17), so a restarted server can continue its ID sequence without
// collisions.
func (s *Store) MaxID() int {
	max := 0
	for _, rec := range s.Records() {
		if n := NumericID(rec.ID); n > max {
			max = n
		}
	}
	return max
}

// NumericID extracts the numeric suffix of an ID like "j17"; IDs without
// one sort first.
func NumericID(id string) int {
	i := 0
	for i < len(id) && (id[i] < '0' || id[i] > '9') {
		i++
	}
	n, err := strconv.Atoi(id[i:])
	if err != nil {
		return 0
	}
	return n
}

// Compact folds the journal into a fresh snapshot: the snapshot is
// written atomically (temp file + rename), then the journal is truncated.
func (s *Store) Compact() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	recs := make([]Record, 0, len(s.recs))
	for _, rec := range s.recs {
		recs = append(recs, *rec)
	}
	sort.Slice(recs, func(i, j int) bool { return NumericID(recs[i].ID) < NumericID(recs[j].ID) })
	data, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, snapshotFile+".tmp*")
	if err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("jobstore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("jobstore: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, snapshotFile)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("jobstore: %w", err)
	}
	// The snapshot now holds everything; restart the journal. Truncate
	// via reopen so the append offset resets atomically with the handle.
	if err := s.journal.Close(); err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	j, err := os.OpenFile(filepath.Join(s.dir, journalFile), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	s.journal = j
	s.appended = 0
	return nil
}

// Close compacts and closes the journal.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.compactLocked(); err != nil {
		s.journal.Close()
		return err
	}
	return s.journal.Close()
}
