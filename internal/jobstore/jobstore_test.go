package jobstore

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"sunuintah/internal/runner"
)

func spec(steps int) runner.Spec {
	return runner.Spec{Cells: "16x16x32", Layout: "2x2x1", CGs: 2, Variant: "acc.async", Steps: steps}
}

func TestNilStoreIsNoOp(t *testing.T) {
	var s *Store
	if err := s.Accept(Record{ID: "j1"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Finish("j1", runner.StateDone, time.Now(), ""); err != nil {
		t.Fatal(err)
	}
	if got := s.Records(); got != nil {
		t.Fatalf("nil store records = %v", got)
	}
	if s.MaxID() != 0 || s.Len() != 0 {
		t.Fatal("nil store not empty")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Unix(100, 0).UTC()
	for i, st := range []runner.JobState{runner.StateDone, runner.StateRunning, runner.StateFailed} {
		id := []string{"j1", "j2", "j3"}[i]
		if err := s.Accept(Record{ID: id, Tenant: "t1", Spec: spec(i + 1), Repeats: 1, State: runner.StateQueued, Submitted: t0}); err != nil {
			t.Fatal(err)
		}
		switch st {
		case runner.StateRunning:
			if err := s.SetState(id, runner.StateRunning); err != nil {
				t.Fatal(err)
			}
		default:
			if err := s.Finish(id, st, t0.Add(time.Second), map[bool]string{true: "boom", false: ""}[st == runner.StateFailed]); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: snapshot + journal reproduce the full state.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	recs := s2.Records()
	if len(recs) != 3 {
		t.Fatalf("recovered %d records, want 3", len(recs))
	}
	if recs[0].ID != "j1" || recs[0].State != runner.StateDone || recs[0].Finished == nil {
		t.Fatalf("j1 = %+v", recs[0])
	}
	if recs[1].State != runner.StateRunning {
		t.Fatalf("j2 state = %s", recs[1].State)
	}
	if recs[2].State != runner.StateFailed || recs[2].Error != "boom" {
		t.Fatalf("j3 = %+v", recs[2])
	}
	if recs[1].Spec.Steps != 2 {
		t.Fatalf("j2 spec steps = %d", recs[1].Spec.Steps)
	}
	inc := s2.Incomplete()
	if len(inc) != 1 || inc[0].ID != "j2" {
		t.Fatalf("incomplete = %v", inc)
	}
	if s2.MaxID() != 3 {
		t.Fatalf("MaxID = %d", s2.MaxID())
	}
}

func TestTornTrailingLineIsIgnored(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Accept(Record{ID: "j1", Spec: spec(1), State: runner.StateQueued})
	s.Accept(Record{ID: "j2", Spec: spec(2), State: runner.StateQueued})
	// Simulate a crash mid-append: garbage with no newline at the tail.
	s.journal.Write([]byte(`{"op":"state","id":"j2","sta`))
	s.journal.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("torn journal failed to open: %v", err)
	}
	defer s2.Close()
	if s2.Len() != 2 {
		t.Fatalf("recovered %d records, want 2", s2.Len())
	}
	if got := s2.Records()[1].State; got != runner.StateQueued {
		t.Fatalf("torn state applied: %s", got)
	}
}

func TestDropForgetsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	s.Accept(Record{ID: "j1", Spec: spec(1), State: runner.StateQueued})
	s.Accept(Record{ID: "j2", Spec: spec(2), State: runner.StateQueued})
	s.Finish("j1", runner.StateDone, time.Now(), "")
	s.Drop("j1")
	s.Close()

	s2, _ := Open(dir)
	defer s2.Close()
	recs := s2.Records()
	if len(recs) != 1 || recs[0].ID != "j2" {
		t.Fatalf("dropped job resurrected: %v", recs)
	}
	// MaxID still advances past dropped IDs? j1 was dropped, so MaxID
	// reflects live records only; the server additionally seeds from the
	// snapshot, which is fine because collisions only matter for live IDs.
	if s2.MaxID() != 2 {
		t.Fatalf("MaxID = %d", s2.MaxID())
	}
}

func TestCompactTruncatesJournal(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	for i := 0; i < 10; i++ {
		s.Accept(Record{ID: "j" + string(rune('0'+i)), Spec: spec(1), State: runner.StateQueued})
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if n := s.JournalEntries(); n != 0 {
		t.Fatalf("journal entries after compact = %d", n)
	}
	data, err := os.ReadFile(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	if len(strings.TrimSpace(string(data))) != 0 {
		t.Fatalf("journal not truncated: %q", data)
	}
	// Appends after compaction land in the fresh journal and survive.
	s.Finish("j3", runner.StateDone, time.Now(), "")
	s.Close()
	s2, _ := Open(dir)
	defer s2.Close()
	var found bool
	for _, r := range s2.Records() {
		if r.ID == "j3" && r.State == runner.StateDone {
			found = true
		}
	}
	if !found || s2.Len() != 10 {
		t.Fatalf("post-compact append lost: len=%d found=%v", s2.Len(), found)
	}
}

func TestConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := "j" + string(rune('a'+g)) + string(rune('0'+i%10))
				s.Accept(Record{ID: id, Spec: spec(1), State: runner.StateQueued})
				s.Finish(id, runner.StateDone, time.Now(), "")
			}
		}(g)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := len(s2.Incomplete()); got != 0 {
		t.Fatalf("%d jobs incomplete after concurrent finish", got)
	}
}

func TestNumericID(t *testing.T) {
	for id, want := range map[string]int{"j17": 17, "j1": 1, "s3": 3, "": 0, "jx": 0} {
		if got := NumericID(id); got != want {
			t.Errorf("NumericID(%q) = %d, want %d", id, got, want)
		}
	}
}
