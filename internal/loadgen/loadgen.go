// Package loadgen drives a live sunserver with a scheduled workload and
// measures how it holds up: submit and completion latency quantiles,
// 429 rates and Retry-After honesty, and — via a ramp of increasing
// offered load — the saturation point where admission control starts
// shedding. It reuses the workload package's deterministic scenario
// expansion as the arrival schedule, so a load run is as reproducible
// as the simulations it submits.
//
// The harness is a library so tests can point it at an in-process
// httptest server; cmd/sunload is the thin CLI over it.
package loadgen

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"sunuintah/internal/workload"
)

// Config parameterizes one load run.
type Config struct {
	// BaseURL is the target server root, e.g. "http://localhost:8177".
	BaseURL string
	// Scenario supplies the arrival schedule and job mix; nil uses
	// workload.DefaultScenario.
	Scenario *workload.Scenario
	// TimeScale maps virtual seconds to wall seconds: 1.0 replays in
	// real time, 0.01 compresses 100x (default 0.01 — load harnesses
	// want offered load, not realtime fidelity).
	TimeScale float64
	// Clients is the number of concurrent submitting clients (default 4).
	Clients int
	// Tenant is sent as the X-Tenant header when non-empty, exercising
	// per-tenant quotas.
	Tenant string
	// PollInterval is the job-status poll period (default 25ms).
	PollInterval time.Duration
	// Timeout bounds the whole run including completion polling
	// (default 2 minutes).
	Timeout time.Duration
	// DistinctSeeds stamps every submitted spec with a unique seed so
	// the pool's content-addressed coalescing cannot collapse the run
	// into one execution — a load harness wants N jobs, not 1 job and
	// N-1 cache hits. Seeds change the spec hash but not the simulated
	// result when the spec has no noise.
	DistinctSeeds bool
	// Follow switches accepted jobs from status polling to the server's
	// live SSE stream (GET /jobs/{id}/events): completion is observed
	// from the stream's "done" frame, and progress/dropped frames are
	// tallied into the report. A stream that cannot be established falls
	// back to polling, so Follow degrades rather than fails against
	// servers or proxies without SSE support.
	Follow bool
	// ProgressOut, when non-nil with Follow, receives a line each time a
	// followed job crosses another 10% of completion.
	ProgressOut io.Writer
	// Client overrides the HTTP client (default: 30s timeout).
	Client *http.Client
}

// Quantiles summarizes a latency population in seconds.
type Quantiles struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

func quantiles(samples []float64) Quantiles {
	if len(samples) == 0 {
		return Quantiles{}
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	at := func(q float64) float64 {
		i := int(math.Ceil(q*float64(len(s)))) - 1
		if i < 0 {
			i = 0
		}
		return s[i]
	}
	return Quantiles{P50: at(0.50), P90: at(0.90), P99: at(0.99), Max: s[len(s)-1]}
}

// Report is the outcome of one load run.
type Report struct {
	Scenario  string `json:"scenario"`
	Jobs      int    `json:"jobs"`      // schedule size
	Submitted int    `json:"submitted"` // POSTs that got any HTTP response
	Accepted  int    `json:"accepted"`  // 202s
	Rejected  int    `json:"rejected"`  // 429s
	Errors    int    `json:"errors"`    // transport failures and unexpected codes
	Done      int    `json:"done"`
	Failed    int    `json:"failed"`
	Canceled  int    `json:"canceled"`
	// Incomplete counts accepted jobs that never reached a terminal
	// state before the run deadline — a healthy server reports zero.
	Incomplete int     `json:"incomplete"`
	RejectRate float64 `json:"rejectRate"` // rejected / submitted

	// SubmitLatency is the POST /run round trip; CompleteLatency is
	// submit to observed terminal state (accepted jobs only).
	SubmitLatency   Quantiles `json:"submitLatency"`
	CompleteLatency Quantiles `json:"completeLatency"`

	// RetryAfterMinSeconds/Max summarize the Retry-After values carried
	// by 429s (zero when nothing was rejected).
	RetryAfterMinSeconds float64 `json:"retryAfterMinSeconds,omitempty"`
	RetryAfterMaxSeconds float64 `json:"retryAfterMaxSeconds,omitempty"`

	WallSeconds float64 `json:"wallSeconds"`
	// OfferedRate is the schedule's mean submission rate after time
	// scaling, jobs per wall second.
	OfferedRate float64 `json:"offeredRate"`

	// Follow-mode stream tallies: jobs tracked over SSE to completion,
	// progress frames delivered, and events lost to slow-consumer drop
	// (as reported by the server's "dropped" frames).
	Followed       int    `json:"followed,omitempty"`
	ProgressEvents int    `json:"progressEvents,omitempty"`
	DroppedEvents  uint64 `json:"droppedEvents,omitempty"`
}

type jobOutcome struct {
	submitLatency   float64
	completeLatency float64
	status          int
	retryAfter      float64
	state           string
	err             error
	followed        bool
	progressEvents  int
	droppedEvents   uint64
	lastDecile      int
}

// Run replays cfg.Scenario's schedule against cfg.BaseURL and reports.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("loadgen: BaseURL required")
	}
	sc := cfg.Scenario
	if sc == nil {
		sc = workload.DefaultScenario()
	}
	jobs, err := sc.Expand()
	if err != nil {
		return nil, fmt.Errorf("loadgen: %w", err)
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("loadgen: scenario %q expands to no jobs", sc.Name)
	}
	scale := cfg.TimeScale
	if scale <= 0 {
		scale = 0.01
	}
	clients := cfg.Clients
	if clients <= 0 {
		clients = 4
	}
	poll := cfg.PollInterval
	if poll <= 0 {
		poll = 25 * time.Millisecond
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 2 * time.Minute
	}
	httpc := cfg.Client
	if httpc == nil {
		httpc = &http.Client{Timeout: 30 * time.Second}
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	// The schedule is replayed faithfully: client g sleeps until job i's
	// scaled arrival time before submitting. A shared index feed keeps
	// clients load-balanced no matter how uneven the schedule is.
	idx := make(chan int)
	go func() {
		defer close(idx)
		for i := range jobs {
			select {
			case idx <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	outcomes := make([]jobOutcome, len(jobs))
	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				at := time.Duration(jobs[i].At * scale * float64(time.Second))
				if d := time.Until(start.Add(at)); d > 0 {
					select {
					case <-time.After(d):
					case <-ctx.Done():
						return
					}
				}
				outcomes[i] = submitAndWait(ctx, httpc, cfg, jobs[i], i, poll)
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start).Seconds()

	rep := &Report{Scenario: sc.Name, Jobs: len(jobs), WallSeconds: wall}
	var submitLat, completeLat []float64
	for _, o := range outcomes {
		if o.err != nil && o.status == 0 {
			rep.Errors++
			continue
		}
		rep.Submitted++
		submitLat = append(submitLat, o.submitLatency)
		if o.followed {
			rep.Followed++
		}
		rep.ProgressEvents += o.progressEvents
		rep.DroppedEvents += o.droppedEvents
		switch o.status {
		case http.StatusAccepted:
			rep.Accepted++
			switch o.state {
			case "done":
				rep.Done++
				completeLat = append(completeLat, o.completeLatency)
			case "failed":
				rep.Failed++
			case "canceled":
				rep.Canceled++
			default:
				rep.Incomplete++
			}
		case http.StatusTooManyRequests:
			rep.Rejected++
			if o.retryAfter > 0 {
				if rep.RetryAfterMinSeconds == 0 || o.retryAfter < rep.RetryAfterMinSeconds {
					rep.RetryAfterMinSeconds = o.retryAfter
				}
				if o.retryAfter > rep.RetryAfterMaxSeconds {
					rep.RetryAfterMaxSeconds = o.retryAfter
				}
			}
		default:
			rep.Errors++
		}
	}
	if rep.Submitted > 0 {
		rep.RejectRate = float64(rep.Rejected) / float64(rep.Submitted)
	}
	rep.SubmitLatency = quantiles(submitLat)
	rep.CompleteLatency = quantiles(completeLat)
	if wall > 0 {
		rep.OfferedRate = float64(len(jobs)) / wall
	}
	return rep, nil
}

// submitAndWait POSTs one job and, when accepted, polls it to a terminal
// state.
func submitAndWait(ctx context.Context, httpc *http.Client, cfg Config, job workload.Job, i int, poll time.Duration) jobOutcome {
	spec := job.Spec
	if cfg.DistinctSeeds && spec.Seed == 0 {
		spec.Seed = uint64(i + 1)
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return jobOutcome{err: err}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, cfg.BaseURL+"/run", bytes.NewReader(body))
	if err != nil {
		return jobOutcome{err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	if cfg.Tenant != "" {
		req.Header.Set("X-Tenant", cfg.Tenant)
	}
	t0 := time.Now()
	resp, err := httpc.Do(req)
	if err != nil {
		return jobOutcome{err: err}
	}
	out := jobOutcome{status: resp.StatusCode, submitLatency: time.Since(t0).Seconds()}
	var accepted struct {
		ID string `json:"id"`
	}
	decErr := json.NewDecoder(resp.Body).Decode(&accepted)
	resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		if ra, err := strconv.ParseFloat(resp.Header.Get("Retry-After"), 64); err == nil {
			out.retryAfter = ra
		}
		return out
	}
	if resp.StatusCode != http.StatusAccepted {
		out.err = fmt.Errorf("loadgen: POST /run: status %d", resp.StatusCode)
		return out
	}
	if decErr != nil || accepted.ID == "" {
		out.err = fmt.Errorf("loadgen: POST /run: bad accept body (%v)", decErr)
		return out
	}

	if cfg.Follow {
		state, err := followJob(ctx, httpc, cfg, accepted.ID, &out)
		if err == nil && state != "" {
			out.followed = true
			out.state = state
			out.completeLatency = time.Since(t0).Seconds()
			return out
		}
		// Stream unavailable or cut short: fall through to polling so the
		// run still completes.
	}

	for {
		select {
		case <-ctx.Done():
			return out // incomplete: deadline beat the job
		case <-time.After(poll):
		}
		state, err := jobState(ctx, httpc, cfg.BaseURL, accepted.ID)
		if err != nil {
			continue // transient poll failure; the deadline bounds us
		}
		switch state {
		case "done", "failed", "canceled":
			out.state = state
			out.completeLatency = time.Since(t0).Seconds()
			return out
		}
	}
}

// followJob consumes the job's SSE stream until its "done" frame and
// returns the terminal state. The stream outlives any fixed client
// timeout, so it runs on a client sharing httpc's transport but without
// its deadline; ctx still bounds it.
func followJob(ctx context.Context, httpc *http.Client, cfg Config, id string, out *jobOutcome) (string, error) {
	sseClient := &http.Client{Transport: httpc.Transport}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, cfg.BaseURL+"/jobs/"+id+"/events", nil)
	if err != nil {
		return "", err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := sseClient.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return "", fmt.Errorf("loadgen: GET /jobs/%s/events: status %d", id, resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	event, data := "", ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			// Blank line terminates one frame.
			if state, terminal := consumeFrame(cfg, id, event, data, out); terminal {
				return state, nil
			}
			event, data = "", ""
		case strings.HasPrefix(line, ":"):
			// keep-alive comment
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			data = strings.TrimSpace(strings.TrimPrefix(line, "data:"))
		}
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", fmt.Errorf("loadgen: GET /jobs/%s/events: stream closed before done", id)
}

// consumeFrame folds one SSE frame into the outcome; a "done" frame is
// terminal and carries the job's final state.
func consumeFrame(cfg Config, id, event, data string, out *jobOutcome) (string, bool) {
	switch event {
	case "progress":
		out.progressEvents++
		var ev struct {
			Done  int64 `json:"done"`
			Total int64 `json:"total"`
		}
		if json.Unmarshal([]byte(data), &ev) == nil && cfg.ProgressOut != nil && ev.Total > 0 {
			if d := int(10 * ev.Done / ev.Total); d > out.lastDecile {
				out.lastDecile = d
				fmt.Fprintf(cfg.ProgressOut, "%s: %d/%d (%d%%)\n", id, ev.Done, ev.Total, d*10)
			}
		}
	case "dropped":
		var ev struct {
			Dropped uint64 `json:"dropped"`
		}
		if json.Unmarshal([]byte(data), &ev) == nil {
			out.droppedEvents += ev.Dropped
		}
	case "done":
		var st struct {
			State string `json:"state"`
		}
		if json.Unmarshal([]byte(data), &st) == nil {
			return st.State, true
		}
		return "", true
	}
	return "", false
}

func jobState(ctx context.Context, httpc *http.Client, base, id string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/jobs/"+id, nil)
	if err != nil {
		return "", err
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return "", fmt.Errorf("loadgen: GET /jobs/%s: status %d", id, resp.StatusCode)
	}
	var j struct {
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		return "", err
	}
	return j.State, nil
}

// RampStep is one rung of a saturation ramp.
type RampStep struct {
	TimeScale float64 `json:"timeScale"`
	Report    *Report `json:"report"`
}

// RampReport is the outcome of a saturation search.
type RampReport struct {
	Steps []RampStep `json:"steps"`
	// SaturationScale is the first (largest) time scale whose reject
	// rate crossed the threshold; 0 when the server absorbed every rung.
	SaturationScale float64 `json:"saturationScale,omitempty"`
	// SaturationRate is that rung's offered rate in jobs/sec.
	SaturationRate float64 `json:"saturationRate,omitempty"`
}

// Ramp replays the scenario at each time scale in order (convention:
// descending scales, i.e. rising offered load) and stops at the first
// rung whose 429 rate reaches rejectThreshold — the measured saturation
// point of the admission window.
func Ramp(ctx context.Context, cfg Config, scales []float64, rejectThreshold float64) (*RampReport, error) {
	if len(scales) == 0 {
		return nil, fmt.Errorf("loadgen: ramp needs at least one time scale")
	}
	if rejectThreshold <= 0 {
		rejectThreshold = 0.05
	}
	out := &RampReport{}
	for _, scale := range scales {
		stepCfg := cfg
		stepCfg.TimeScale = scale
		rep, err := Run(ctx, stepCfg)
		if err != nil {
			return out, err
		}
		out.Steps = append(out.Steps, RampStep{TimeScale: scale, Report: rep})
		if rep.RejectRate >= rejectThreshold {
			out.SaturationScale = scale
			out.SaturationRate = rep.OfferedRate
			break
		}
	}
	return out, nil
}
