package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sunuintah/internal/workload"
)

func TestQuantiles(t *testing.T) {
	q := quantiles([]float64{5, 1, 3, 2, 4})
	if q.P50 != 3 || q.Max != 5 {
		t.Fatalf("quantiles = %+v", q)
	}
	if q.P99 != 5 {
		t.Fatalf("p99 of 5 samples = %g, want max", q.P99)
	}
	if z := (quantiles(nil)); z != (Quantiles{}) {
		t.Fatalf("empty quantiles = %+v", z)
	}
}

// stubServer accepts submissions up to a capacity, rejects the rest with
// 429 + Retry-After, and reports every accepted job done on first poll.
type stubServer struct {
	mu       sync.Mutex
	capacity int
	accepted int
	rejected int
	tenants  map[string]int
}

func (st *stubServer) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /run", func(w http.ResponseWriter, r *http.Request) {
		st.mu.Lock()
		defer st.mu.Unlock()
		if st.tenants == nil {
			st.tenants = map[string]int{}
		}
		st.tenants[r.Header.Get("X-Tenant")]++
		if st.accepted >= st.capacity {
			st.rejected++
			w.Header().Set("Retry-After", "7")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]any{"reason": "queue_full"})
			return
		}
		st.accepted++
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]string{"id": fmt.Sprintf("j%d", st.accepted)})
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]string{"state": "done"})
	})
	return mux
}

func scenario(rate float64, duration float64) *workload.Scenario {
	return &workload.Scenario{
		Name: "stub",
		Seed: 3,
		Base: workload.Template{Cells: "8x8x8", CGs: 1, Variant: "acc.async", Steps: 1},
		Phases: []workload.Phase{
			{Name: "p", Duration: duration, Arrival: workload.Arrival{Pattern: workload.PatternConstant, Rate: rate}},
		},
	}
}

func TestRunCountsAcceptsAndRejects(t *testing.T) {
	st := &stubServer{capacity: 5}
	ts := httptest.NewServer(st.handler())
	defer ts.Close()

	rep, err := Run(context.Background(), Config{
		BaseURL:       ts.URL,
		Scenario:      scenario(10, 2),
		TimeScale:     0.001,
		Clients:       3,
		Tenant:        "bench",
		PollInterval:  time.Millisecond,
		Timeout:       20 * time.Second,
		DistinctSeeds: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs == 0 || rep.Submitted != rep.Jobs || rep.Errors != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Accepted != 5 || rep.Done != 5 || rep.Incomplete != 0 {
		t.Fatalf("accepted/done = %d/%d, want 5/5 (%+v)", rep.Accepted, rep.Done, rep)
	}
	if rep.Rejected != rep.Jobs-5 {
		t.Fatalf("rejected = %d, want %d", rep.Rejected, rep.Jobs-5)
	}
	if rep.RetryAfterMinSeconds != 7 || rep.RetryAfterMaxSeconds != 7 {
		t.Fatalf("retry-after bounds = %g..%g, want 7..7", rep.RetryAfterMinSeconds, rep.RetryAfterMaxSeconds)
	}
	if rep.CompleteLatency.P50 <= 0 {
		t.Fatalf("no completion latency recorded: %+v", rep.CompleteLatency)
	}
	st.mu.Lock()
	if st.tenants["bench"] != rep.Jobs {
		t.Fatalf("tenant header on %d of %d requests", st.tenants["bench"], rep.Jobs)
	}
	st.mu.Unlock()
}

func TestRampStopsAtSaturation(t *testing.T) {
	st := &stubServer{capacity: 4}
	ts := httptest.NewServer(st.handler())
	defer ts.Close()

	// Every rung overloads the stub (capacity 4 across the whole server
	// lifetime), so the very first scale saturates and the ramp stops.
	rr, err := Ramp(context.Background(), Config{
		BaseURL:      ts.URL,
		Scenario:     scenario(10, 2),
		Clients:      2,
		PollInterval: time.Millisecond,
		Timeout:      20 * time.Second,
	}, []float64{0.01, 0.001}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.Steps) != 1 {
		t.Fatalf("ramp ran %d rungs, want stop after 1", len(rr.Steps))
	}
	if rr.SaturationScale != 0.01 || rr.SaturationRate <= 0 {
		t.Fatalf("saturation = scale %g rate %g", rr.SaturationScale, rr.SaturationRate)
	}
}

// sseStub extends stubServer with a live-events endpoint that emits a
// fixed script: state, 10 progress frames, one dropped frame, done.
func sseStub(st *stubServer) http.Handler {
	mux := st.handler().(*http.ServeMux)
	mux.HandleFunc("GET /jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		fl := w.(http.Flusher)
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprintf(w, "event: state\ndata: {\"id\":%q,\"state\":\"running\"}\n\n", r.PathValue("id"))
		for i := 1; i <= 10; i++ {
			fmt.Fprintf(w, "event: progress\ndata: {\"done\":%d,\"total\":10}\n\n", i)
		}
		fmt.Fprint(w, "event: dropped\ndata: {\"dropped\":3}\n\n")
		fmt.Fprint(w, ": keep-alive\n\n")
		fmt.Fprint(w, "event: done\ndata: {\"state\":\"done\"}\n\n")
		fl.Flush()
	})
	return mux
}

func TestRunFollowStreamsCompletions(t *testing.T) {
	st := &stubServer{capacity: 4}
	ts := httptest.NewServer(sseStub(st))
	defer ts.Close()

	var progress bytes.Buffer
	rep, err := Run(context.Background(), Config{
		BaseURL:      ts.URL,
		Scenario:     scenario(10, 1),
		TimeScale:    0.001,
		Clients:      1, // single client: ProgressOut is not synchronized
		Follow:       true,
		ProgressOut:  &progress,
		PollInterval: time.Millisecond,
		Timeout:      20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted != 4 || rep.Done != 4 {
		t.Fatalf("accepted/done = %d/%d, want 4/4", rep.Accepted, rep.Done)
	}
	if rep.Followed != 4 {
		t.Fatalf("followed = %d, want 4 (every accepted job streamed)", rep.Followed)
	}
	if rep.ProgressEvents != 40 {
		t.Fatalf("progress events = %d, want 40", rep.ProgressEvents)
	}
	if rep.DroppedEvents != 12 {
		t.Fatalf("dropped events = %d, want 12", rep.DroppedEvents)
	}
	if rep.CompleteLatency.P50 <= 0 {
		t.Fatalf("no completion latency from followed jobs: %+v", rep.CompleteLatency)
	}
	if !strings.Contains(progress.String(), "(100%)") {
		t.Fatalf("decile progress output missing terminal decile:\n%s", progress.String())
	}
}

// A server without the events endpoint must not break -follow: the
// follower falls back to polling and the run still completes.
func TestRunFollowFallsBackToPolling(t *testing.T) {
	st := &stubServer{capacity: 3}
	ts := httptest.NewServer(st.handler()) // no SSE route: GET .../events is 404
	defer ts.Close()

	rep, err := Run(context.Background(), Config{
		BaseURL:      ts.URL,
		Scenario:     scenario(10, 1),
		TimeScale:    0.001,
		Clients:      2,
		Follow:       true,
		PollInterval: time.Millisecond,
		Timeout:      20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted != 3 || rep.Done != 3 {
		t.Fatalf("accepted/done = %d/%d, want 3/3", rep.Accepted, rep.Done)
	}
	if rep.Followed != 0 || rep.ProgressEvents != 0 {
		t.Fatalf("followed/progress = %d/%d, want 0/0 on fallback", rep.Followed, rep.ProgressEvents)
	}
}

func TestRunValidatesConfig(t *testing.T) {
	if _, err := Run(context.Background(), Config{}); err == nil {
		t.Fatal("missing BaseURL accepted")
	}
	if _, err := Ramp(context.Background(), Config{BaseURL: "http://x"}, nil, 0); err == nil {
		t.Fatal("empty ramp accepted")
	}
}
