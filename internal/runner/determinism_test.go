package runner_test

import (
	"context"
	"encoding/json"
	"sync"
	"testing"

	"sunuintah/internal/experiments"
	"sunuintah/internal/runner"
)

// exportBytes is the canonical byte form the cache and the JSON export
// rely on.
func exportBytes(t *testing.T, r *runner.Result) []byte {
	t.Helper()
	r.ExecSeconds = 0 // host wall-clock is the one legitimately varying field
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestDeterminismGuard asserts the invariant the content-addressed cache
// depends on: two runs of the same Spec (same seed, noise=0) produce
// byte-identical exported results, even when executed concurrently by
// different workers in different submission orders. Run it under -race.
func TestDeterminismGuard(t *testing.T) {
	specs := []runner.Spec{
		{Problem: "16x16x512", CGs: 1, Variant: "acc.async", Steps: 1},
		{Problem: "16x16x512", CGs: 2, Variant: "acc_simd.async", Steps: 1},
		{Problem: "16x32x512", CGs: 4, Variant: "acc.sync", Steps: 1},
		{Problem: "16x16x512", CGs: 1, Variant: "host.sync", Steps: 1},
		{Cells: "32x32x64", Layout: "2x2x1", CGs: 2, Variant: "acc.async", Steps: 2, Functional: true},
		// Noisy runs must also be deterministic given the seed.
		{Problem: "16x16x512", CGs: 1, Variant: "acc.async", Steps: 1, Noise: 0.3, Seed: 1},
	}

	// Two pools, no cache: every submission truly executes. The second
	// pool receives the specs in reverse order so worker/job pairings
	// differ between rounds.
	run := func(order []runner.Spec) map[string][]byte {
		pool, err := runner.New(runner.Config{Workers: 4, Exec: experiments.Exec})
		if err != nil {
			t.Fatal(err)
		}
		defer pool.Close()
		out := make(map[string][]byte, len(order))
		var mu sync.Mutex
		var wg sync.WaitGroup
		for _, spec := range order {
			spec := spec
			wg.Add(1)
			go func() {
				defer wg.Done()
				res, err := pool.Run(context.Background(), spec)
				if err != nil {
					t.Errorf("%s: %v", spec, err)
					return
				}
				mu.Lock()
				out[spec.Hash()] = exportBytes(t, res)
				mu.Unlock()
			}()
		}
		wg.Wait()
		return out
	}

	first := run(specs)
	reversed := make([]runner.Spec, len(specs))
	for i, s := range specs {
		reversed[len(specs)-1-i] = s
	}
	second := run(reversed)

	if len(first) != len(specs) || len(second) != len(specs) {
		t.Fatalf("results missing: %d and %d of %d", len(first), len(second), len(specs))
	}
	for i, spec := range specs {
		a, b := first[spec.Hash()], second[spec.Hash()]
		if string(a) != string(b) {
			t.Errorf("spec %d (%s): runs differ\nfirst:  %.200s\nsecond: %.200s", i, spec, a, b)
		}
	}
}

// TestDiskCacheServesIdenticalResults runs a spec, reopens the cache in a
// fresh pool (as a second sunbench invocation would), and checks the
// cached result is byte-identical to a genuine re-execution.
func TestDiskCacheServesIdenticalResults(t *testing.T) {
	dir := t.TempDir()
	spec := runner.Spec{Problem: "16x16x512", CGs: 2, Variant: "acc.async", Steps: 1}

	cache1, err := runner.NewDiskCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	pool1, err := runner.New(runner.Config{Workers: 2, Exec: experiments.Exec, Cache: cache1})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := pool1.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	pool1.Close()

	cache2, err := runner.NewDiskCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	pool2, err := runner.New(runner.Config{Workers: 2, Exec: experiments.Exec, Cache: cache2})
	if err != nil {
		t.Fatal(err)
	}
	defer pool2.Close()
	cached, err := pool2.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if m := pool2.Metrics(); m.CacheHits != 1 || m.Executed != 0 {
		t.Errorf("second pool should hit the warm disk cache: %+v", m)
	}
	if string(exportBytes(t, fresh)) != string(exportBytes(t, cached)) {
		t.Error("warm-cache result differs from the original execution")
	}

	// And a genuine re-execution (no cache) must match both.
	pool3, err := runner.New(runner.Config{Workers: 1, Exec: experiments.Exec})
	if err != nil {
		t.Fatal(err)
	}
	defer pool3.Close()
	rerun, err := pool3.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if string(exportBytes(t, rerun)) != string(exportBytes(t, cached)) {
		t.Error("cached result differs from a fresh execution")
	}
}

// TestInfeasibleResultsCache checks the paper's Table III memory crashes
// are first-class cached outcomes, not errors.
func TestInfeasibleResultsCache(t *testing.T) {
	cache := runner.NewMemoryCache(0)
	pool, err := runner.New(runner.Config{Workers: 1, Exec: experiments.Exec, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	// 64x64x512 (4 GB) crashes on one CG (Table III starred row).
	spec := runner.Spec{Problem: "64x64x512", CGs: 1, Variant: "acc.async", Steps: 1}
	res, err := pool.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Fatal("4 GB problem on one CG should be infeasible")
	}
	if _, err := pool.Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	if m := pool.Metrics(); m.CacheHits != 1 {
		t.Errorf("infeasible outcome should cache: %+v", m)
	}
}
