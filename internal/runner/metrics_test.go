package runner

import (
	"strings"
	"testing"
)

// TestHitRateZeroFinished: a fresh pool (or one whose jobs are all still
// queued) has finished nothing; the hit rate must be a clean zero, not NaN
// from a 0/0 division.
func TestHitRateZeroFinished(t *testing.T) {
	var m Metrics
	if got := m.HitRate(); got != 0 {
		t.Errorf("HitRate of zero metrics = %v, want 0", got)
	}
	m = Metrics{Submitted: 3, Queued: 2, Running: 1, CacheHits: 0}
	if got := m.HitRate(); got != 0 {
		t.Errorf("HitRate with only in-flight jobs = %v, want 0", got)
	}
}

func TestHitRateCountsFailedJobs(t *testing.T) {
	m := Metrics{Done: 3, Failed: 1, CacheHits: 2}
	if got, want := m.HitRate(), 0.5; got != want {
		t.Errorf("HitRate = %v, want %v (failed jobs count as finished)", got, want)
	}
	m = Metrics{Done: 4, CacheHits: 4}
	if got := m.HitRate(); got != 1 {
		t.Errorf("HitRate of all-cached pool = %v, want 1", got)
	}
}

// TestMetricsStringZero: the one-line summary must render sanely (no NaN,
// 0% hit rate) before any job has finished.
func TestMetricsStringZero(t *testing.T) {
	var m Metrics
	s := m.String()
	if strings.Contains(s, "NaN") {
		t.Errorf("zero-metrics String contains NaN: %q", s)
	}
	if !strings.Contains(s, "0% hit rate") {
		t.Errorf("zero-metrics String = %q, want 0%% hit rate", s)
	}
}

func TestMetricsStringRendersCounters(t *testing.T) {
	m := Metrics{Done: 7, Failed: 1, Executed: 5, CacheHits: 2, Retries: 3,
		ExecSeconds: 1.5, SavedSeconds: 0.25}
	s := m.String()
	for _, want := range []string{"7 done", "1 failed", "5 executed", "2 cache hits", "25% hit rate", "3 retries", "exec 1.50s", "saved 0.25s"} {
		if !strings.Contains(s, want) {
			t.Errorf("String = %q, missing %q", s, want)
		}
	}
}
