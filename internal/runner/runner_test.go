package runner

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sunuintah/internal/core"
	"sunuintah/internal/sim"
)

func fakeResult(perStep float64) *Result {
	return &Result{Feasible: true, Sim: &core.Result{Steps: 1, PerStep: sim.Time(perStep), WallTime: sim.Time(perStep)}}
}

func TestSpecHash(t *testing.T) {
	a := Spec{Problem: "16x16x512", CGs: 4, Variant: "acc.async", Steps: 10}
	b := a
	if a.Hash() != b.Hash() {
		t.Error("identical specs must hash identically")
	}
	// Every field must participate in the hash.
	variants := []Spec{
		{Problem: "16x32x512", CGs: 4, Variant: "acc.async", Steps: 10},
		{Problem: "16x16x512", CGs: 8, Variant: "acc.async", Steps: 10},
		{Problem: "16x16x512", CGs: 4, Variant: "acc.sync", Steps: 10},
		{Problem: "16x16x512", CGs: 4, Variant: "acc.async", Steps: 5},
		{Problem: "16x16x512", CGs: 4, Variant: "acc.async", Steps: 10, Noise: 0.1},
		{Problem: "16x16x512", CGs: 4, Variant: "acc.async", Steps: 10, Seed: 2},
		{Problem: "16x16x512", CGs: 4, Variant: "acc.async", Steps: 10, Functional: true},
		{Problem: "16x16x512", CGs: 4, Variant: "acc.async", Steps: 10, AsyncDMA: true},
		{Problem: "16x16x512", CGs: 4, Variant: "acc.async", Steps: 10, TilePacking: true},
		{Problem: "16x16x512", CGs: 4, Variant: "acc.async", Steps: 10, CPEGroups: 2},
		{Problem: "16x16x512", CGs: 4, Variant: "acc.async", Steps: 10, TileSize: "8x8x8"},
		{Problem: "16x16x512", Layout: "2x2x1", CGs: 4, Variant: "acc.async", Steps: 10},
		{Cells: "16x16x512", CGs: 4, Variant: "acc.async", Steps: 10},
	}
	seen := map[string]int{a.Hash(): -1}
	for i, v := range variants {
		h := v.Hash()
		if prev, dup := seen[h]; dup {
			t.Errorf("spec %d collides with %d: %s", i, prev, v)
		}
		seen[h] = i
	}
}

func TestMemoryCacheLRU(t *testing.T) {
	c := NewMemoryCache(2)
	c.Put("a", fakeResult(1))
	c.Put("b", fakeResult(2))
	if _, ok := c.Get("a"); !ok { // refresh a: b becomes LRU
		t.Fatal("a missing")
	}
	c.Put("c", fakeResult(3))
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted as least recently used")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a should survive (recently used)")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("c should be present")
	}
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2", c.Len())
	}
}

func TestDiskCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c, err := NewDiskCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := fakeResult(0.25)
	r.ExecSeconds = 1.5
	c.Put("abc", r)

	// A fresh DiskCache (fresh memory layer) must read it back from disk.
	c2, err := NewDiskCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get("abc")
	if !ok {
		t.Fatal("disk entry missing")
	}
	if !got.Feasible || got.Sim.PerStep != r.Sim.PerStep || got.ExecSeconds != 1.5 {
		t.Errorf("round-trip mismatch: %+v", got)
	}

	// Corrupt entries are misses, not failures.
	if err := os.WriteFile(filepath.Join(dir, "bad.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get("bad"); ok {
		t.Error("corrupt entry should miss")
	}
}

func TestPoolDedupsConcurrentSubmissions(t *testing.T) {
	var runs int64
	block := make(chan struct{})
	p, err := New(Config{
		Workers: 2,
		Exec: func(ctx context.Context, spec Spec) (*Result, error) {
			atomic.AddInt64(&runs, 1)
			<-block
			return fakeResult(1), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	spec := Spec{Problem: "p", CGs: 1, Variant: "v", Steps: 1}
	j1 := p.Submit(spec)
	j2 := p.Submit(spec)
	if j1 != j2 {
		t.Error("pending submissions of the same spec must coalesce onto one job")
	}
	close(block)
	if _, err := j1.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if n := atomic.LoadInt64(&runs); n != 1 {
		t.Errorf("exec ran %d times, want 1", n)
	}
	if m := p.Metrics(); m.Coalesced != 1 || m.Submitted != 1 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestPoolPanicFailsOnlyThatJob(t *testing.T) {
	p, err := New(Config{
		Workers: 2,
		Exec: func(ctx context.Context, spec Spec) (*Result, error) {
			if spec.Problem == "boom" {
				panic("kernel exploded")
			}
			return fakeResult(1), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	bad := p.Submit(Spec{Problem: "boom", CGs: 1, Variant: "v", Steps: 1})
	good := p.Submit(Spec{Problem: "fine", CGs: 1, Variant: "v", Steps: 1})

	if _, err := good.Wait(context.Background()); err != nil {
		t.Fatalf("healthy job failed: %v", err)
	}
	_, err = bad.Wait(context.Background())
	if err == nil {
		t.Fatal("panicking job should fail")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want PanicError, got %T: %v", err, err)
	}
	if pe.Value != "kernel exploded" || len(pe.Stack) == 0 {
		t.Errorf("panic error = %+v", pe)
	}
	if bad.State() != StateFailed || good.State() != StateDone {
		t.Errorf("states = %s / %s", bad.State(), good.State())
	}
	m := p.Metrics()
	if m.Failed != 1 || m.Done != 1 || m.Panics == 0 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestPoolRetriesNoisyJobs(t *testing.T) {
	var attempts int64
	p, err := New(Config{
		Workers: 1,
		Retries: 2,
		Exec: func(ctx context.Context, spec Spec) (*Result, error) {
			if atomic.AddInt64(&attempts, 1) < 3 {
				return nil, errors.New("transient")
			}
			return fakeResult(1), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	res, err := p.Run(context.Background(), Spec{Problem: "p", CGs: 1, Variant: "v", Steps: 1, Noise: 0.1, Seed: 1})
	if err != nil {
		t.Fatalf("noisy job should succeed after retries: %v", err)
	}
	if !res.Feasible {
		t.Error("result should be feasible")
	}
	if n := atomic.LoadInt64(&attempts); n != 3 {
		t.Errorf("attempts = %d, want 3", n)
	}
	if m := p.Metrics(); m.Retries != 2 {
		t.Errorf("retries = %d, want 2", m.Retries)
	}
}

func TestPoolDoesNotRetryDeterministicErrors(t *testing.T) {
	var attempts int64
	p, err := New(Config{
		Workers: 1,
		Retries: 3,
		Exec: func(ctx context.Context, spec Spec) (*Result, error) {
			atomic.AddInt64(&attempts, 1)
			return nil, errors.New("bad spec")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Noise-free failures are deterministic: retrying cannot help.
	if _, err := p.Run(context.Background(), Spec{Problem: "p", CGs: 1, Variant: "v", Steps: 1}); err == nil {
		t.Fatal("want error")
	}
	if n := atomic.LoadInt64(&attempts); n != 1 {
		t.Errorf("attempts = %d, want 1", n)
	}
}

func TestPoolTimeout(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	p, err := New(Config{
		Workers: 1,
		Timeout: 20 * time.Millisecond,
		Exec: func(ctx context.Context, spec Spec) (*Result, error) {
			<-release // hang past the deadline
			return fakeResult(1), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	_, err = p.Run(context.Background(), Spec{Problem: "hang", CGs: 1, Variant: "v", Steps: 1})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline error, got %v", err)
	}
}

func TestPoolCacheHitsAndSavings(t *testing.T) {
	var runs int64
	cache := NewMemoryCache(0)
	exec := func(ctx context.Context, spec Spec) (*Result, error) {
		atomic.AddInt64(&runs, 1)
		return fakeResult(1), nil
	}
	p, err := New(Config{Workers: 2, Exec: exec, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Problem: "p", CGs: 1, Variant: "v", Steps: 1}
	if _, err := p.Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	// Resubmit after completion: served from cache, not re-executed.
	if _, err := p.Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	p.Close()
	if n := atomic.LoadInt64(&runs); n != 1 {
		t.Errorf("exec ran %d times, want 1", n)
	}
	m := p.Metrics()
	if m.CacheHits != 1 || m.Executed != 1 || m.HitRate() != 0.5 {
		t.Errorf("metrics = %+v hitRate=%v", m, m.HitRate())
	}
}

func TestPoolEventsAndProgress(t *testing.T) {
	var mu sync.Mutex
	counts := map[EventType]int{}
	var lastDone, lastTotal int64
	p, err := New(Config{
		Workers: 2,
		Cache:   NewMemoryCache(0),
		Exec: func(ctx context.Context, spec Spec) (*Result, error) {
			return fakeResult(1), nil
		},
		OnEvent: func(ev Event) {
			mu.Lock()
			counts[ev.Type]++
			lastDone, lastTotal = ev.Done, ev.Total
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var jobs []*Job
	for i := 0; i < 5; i++ {
		jobs = append(jobs, p.Submit(Spec{Problem: fmt.Sprintf("p%d", i), CGs: 1, Variant: "v", Steps: 1}))
	}
	for _, j := range jobs {
		if _, err := j.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()
	mu.Lock()
	defer mu.Unlock()
	if counts[EventQueued] != 5 || counts[EventStarted] != 5 || counts[EventDone] != 5 {
		t.Errorf("event counts = %v", counts)
	}
	if lastDone != 5 || lastTotal != 5 {
		t.Errorf("final progress = %d/%d, want 5/5", lastDone, lastTotal)
	}
}

func TestSubmitAfterClose(t *testing.T) {
	p, err := New(Config{Workers: 1, Exec: func(ctx context.Context, spec Spec) (*Result, error) {
		return fakeResult(1), nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	j := p.Submit(Spec{Problem: "p", CGs: 1, Variant: "v", Steps: 1})
	if _, err := j.Wait(context.Background()); !errors.Is(err, ErrClosed) {
		t.Errorf("want ErrClosed, got %v", err)
	}
}

func TestMinResult(t *testing.T) {
	fast, slow := fakeResult(1), fakeResult(2)
	infeasible := &Result{Feasible: false}
	if got := MinResult([]*Result{slow, fast, infeasible}); got != fast {
		t.Errorf("MinResult picked %+v", got)
	}
	if got := MinResult([]*Result{infeasible, nil}); got != infeasible {
		t.Errorf("all-infeasible should return the infeasible result, got %+v", got)
	}
	if got := MinResult(nil); got != nil {
		t.Errorf("empty input should return nil, got %+v", got)
	}
}
