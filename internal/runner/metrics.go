package runner

import (
	"fmt"
	"sync/atomic"
)

// metrics is the pool's internal atomic counter block.
type metrics struct {
	submitted  int64 // jobs accepted by Submit (after dedup coalescing)
	coalesced  int64 // Submit calls joined to an already-pending job
	running    int64 // jobs currently executing
	done       int64 // jobs finished successfully (executed or cache hit)
	failed     int64 // jobs finished with an error
	canceled   int64 // jobs aborted via Pool.Cancel
	executed   int64 // jobs that actually ran (cache misses)
	cacheHits  int64
	retries    int64
	panics     int64
	execNanos  int64 // host nanoseconds spent executing jobs
	savedNanos int64 // host nanoseconds avoided by cache hits
}

// Metrics is a point-in-time snapshot of the pool's counters: the
// progress/metrics surface for sunbench -v and sunserver /metrics.
type Metrics struct {
	Submitted int64 `json:"submitted"`
	Coalesced int64 `json:"coalesced"`
	Queued    int64 `json:"queued"`
	Running   int64 `json:"running"`
	Done      int64 `json:"done"`
	Failed    int64 `json:"failed"`
	Canceled  int64 `json:"canceled"`
	Executed  int64 `json:"executed"`
	CacheHits int64 `json:"cacheHits"`
	Retries   int64 `json:"retries"`
	Panics    int64 `json:"panics"`
	// ExecSeconds is host wall-clock spent actually running jobs;
	// SavedSeconds is the recorded execution time of every cache hit —
	// the wall time the cache avoided.
	ExecSeconds  float64 `json:"execSeconds"`
	SavedSeconds float64 `json:"savedSeconds"`
}

func (m *metrics) snapshot() Metrics {
	s := Metrics{
		Submitted: atomic.LoadInt64(&m.submitted),
		Coalesced: atomic.LoadInt64(&m.coalesced),
		Running:   atomic.LoadInt64(&m.running),
		Done:      atomic.LoadInt64(&m.done),
		Failed:    atomic.LoadInt64(&m.failed),
		Canceled:  atomic.LoadInt64(&m.canceled),
		Executed:  atomic.LoadInt64(&m.executed),
		CacheHits: atomic.LoadInt64(&m.cacheHits),
		Retries:   atomic.LoadInt64(&m.retries),
		Panics:    atomic.LoadInt64(&m.panics),
	}
	s.ExecSeconds = float64(atomic.LoadInt64(&m.execNanos)) / 1e9
	s.SavedSeconds = float64(atomic.LoadInt64(&m.savedNanos)) / 1e9
	s.Queued = s.Submitted - s.Done - s.Failed - s.Canceled - s.Running
	if s.Queued < 0 {
		s.Queued = 0
	}
	return s
}

// HitRate is the fraction of finished jobs served from the cache.
func (s Metrics) HitRate() float64 {
	finished := s.Done + s.Failed + s.Canceled
	if finished == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(finished)
}

// String renders a one-line summary.
func (s Metrics) String() string {
	return fmt.Sprintf("jobs %d done / %d failed (%d executed, %d cache hits, %.0f%% hit rate, %d retries), exec %.2fs, saved %.2fs",
		s.Done, s.Failed, s.Executed, s.CacheHits, s.HitRate()*100, s.Retries, s.ExecSeconds, s.SavedSeconds)
}
