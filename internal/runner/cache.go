package runner

import (
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Cache is a content-addressed result store keyed by Spec.Hash().
// Implementations must be safe for concurrent use.
type Cache interface {
	Get(hash string) (*Result, bool)
	Put(hash string, r *Result)
}

// MemoryCache is a bounded in-memory LRU cache.
type MemoryCache struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recent; values are *memEntry
	entries map[string]*list.Element
}

type memEntry struct {
	hash string
	res  *Result
}

// DefaultMemoryEntries bounds the in-memory cache by default: enough for
// several full evaluation sweeps (~700 cases each) without growing
// unboundedly in a long-lived server.
const DefaultMemoryEntries = 4096

// NewMemoryCache creates an LRU cache holding at most max entries
// (DefaultMemoryEntries if max <= 0).
func NewMemoryCache(max int) *MemoryCache {
	if max <= 0 {
		max = DefaultMemoryEntries
	}
	return &MemoryCache{max: max, order: list.New(), entries: map[string]*list.Element{}}
}

// Get returns the cached result for hash, marking it most recently used.
func (c *MemoryCache) Get(hash string) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[hash]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*memEntry).res, true
}

// Put stores a result, evicting the least recently used entry when full.
func (c *MemoryCache) Put(hash string, r *Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[hash]; ok {
		el.Value.(*memEntry).res = r
		c.order.MoveToFront(el)
		return
	}
	c.entries[hash] = c.order.PushFront(&memEntry{hash: hash, res: r})
	for c.order.Len() > c.max {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*memEntry).hash)
	}
}

// Len reports the number of cached entries.
func (c *MemoryCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// DiskCache layers a MemoryCache over a directory of JSON files, one
// result per file named <hash>.json. It survives process restarts, so a
// second sunbench invocation with a warm cache skips completed jobs.
// Disk failures degrade the cache to memory-only rather than failing jobs.
type DiskCache struct {
	mem *MemoryCache
	dir string
}

// DefaultCacheDir is the conventional on-disk store location.
const DefaultCacheDir = ".suncache"

// NewDiskCache opens (creating if needed) the on-disk store at dir with a
// memory LRU of memEntries in front of it.
func NewDiskCache(dir string, memEntries int) (*DiskCache, error) {
	if dir == "" {
		dir = DefaultCacheDir
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runner: cache dir: %w", err)
	}
	return &DiskCache{mem: NewMemoryCache(memEntries), dir: dir}, nil
}

// Dir returns the backing directory.
func (c *DiskCache) Dir() string { return c.dir }

func (c *DiskCache) path(hash string) string {
	return filepath.Join(c.dir, hash+".json")
}

// Get checks the memory layer first, then the disk store (promoting disk
// hits into memory). Corrupt files are treated as misses.
func (c *DiskCache) Get(hash string) (*Result, bool) {
	if r, ok := c.mem.Get(hash); ok {
		return r, true
	}
	data, err := os.ReadFile(c.path(hash))
	if err != nil {
		return nil, false
	}
	var r Result
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, false
	}
	c.mem.Put(hash, &r)
	return &r, true
}

// Put stores in memory and writes the JSON file atomically (temp file +
// rename), so concurrent writers and crashes never leave partial entries.
func (c *DiskCache) Put(hash string, r *Result) {
	c.mem.Put(hash, r)
	data, err := json.Marshal(r)
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(c.dir, hash+".tmp*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), c.path(hash)); err != nil {
		os.Remove(tmp.Name())
	}
}
