package runner

import (
	"sunuintah/internal/core"
)

// Result is the outcome of one executed Spec. Infeasible cases (the
// paper's Table III memory-allocation crashes) are first-class results —
// they cache like any other outcome — while genuine execution errors stay
// errors and are never cached.
type Result struct {
	Feasible bool `json:"feasible"`
	// Sim holds the full simulation result; nil when infeasible.
	Sim *core.Result `json:"sim,omitempty"`
	// ExecSeconds is the host wall-clock the original execution took.
	// Cache hits report it as time saved.
	ExecSeconds float64 `json:"execSeconds"`
}

// PerStepSeconds returns the simulated wall time per timestep, or 0 for
// infeasible results.
func (r *Result) PerStepSeconds() float64 {
	if r == nil || !r.Feasible || r.Sim == nil {
		return 0
	}
	return float64(r.Sim.PerStep)
}

// MinResult returns the fastest feasible result of a best-of-k repeat set
// (the paper's protocol: "each case is repeated multiple times and the
// best result is selected"). If none is feasible it returns the first
// non-nil result; if all are nil it returns nil.
func MinResult(results []*Result) *Result {
	var best *Result
	for _, r := range results {
		if r == nil {
			continue
		}
		if best == nil {
			best = r
			continue
		}
		if r.Feasible && (!best.Feasible || r.Sim.PerStep < best.Sim.PerStep) {
			best = r
		}
	}
	return best
}
