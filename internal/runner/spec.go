// Package runner turns "run one simulation case" into a first-class job:
// a Spec with a canonical content hash, executed by a worker pool across
// GOMAXPROCS goroutines, memoised in a content-addressed result cache
// (in-memory LRU plus an optional on-disk JSON store), and hardened with
// per-job timeouts, panic recovery and bounded retry.
//
// The package is deliberately ignorant of how a Spec is executed: callers
// supply an ExecFunc (internal/experiments provides the one that builds
// and runs a simulated-Sunway case), which keeps the dependency direction
// experiments -> runner -> core.
package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"sunuintah/internal/faults"
)

// specHashVersion salts every content hash. Bump it whenever the meaning
// of a Spec field (or the executed simulation behind it) changes, so stale
// on-disk cache entries are ignored rather than served.
const specHashVersion = "v1"

// Spec identifies one simulation case: everything that determines the
// run's outcome and nothing else. Runs are deterministic functions of
// their Spec (the determinism guard in this package's tests enforces it),
// which is the invariant the content-addressed cache depends on.
type Spec struct {
	// Problem is a Table III patch-size name (e.g. "32x64x512"). Leave
	// empty to describe a custom case via Cells.
	Problem string `json:"problem,omitempty"`
	// Cells is a custom global grid size "XxYxZ", used when Problem is
	// empty (e.g. small functional-mode cases served by sunserver).
	Cells string `json:"cells,omitempty"`
	// Layout is the patch layout "AxBxC". Empty means the paper's fixed
	// 8x8x2 layout for named problems and 1x1x1 for custom cells.
	Layout string `json:"layout,omitempty"`
	// CGs is the number of core groups (MPI ranks).
	CGs int `json:"cgs"`
	// Variant is a Table IV variant name (e.g. "acc_simd.async").
	Variant string `json:"variant"`
	// Steps is the number of timesteps.
	Steps int `json:"steps"`
	// Noise enables kernel jitter of up to this fraction; Seed selects
	// the jitter stream. The paper's best-of-k protocol is k jobs with
	// seeds 1..k reduced by min, not a Spec field.
	Noise float64 `json:"noise,omitempty"`
	Seed  uint64  `json:"seed,omitempty"`
	// Functional computes real field data instead of timing-only mode.
	Functional bool `json:"functional,omitempty"`

	// Future-work ablation knobs (Section IX).
	AsyncDMA    bool   `json:"asyncDMA,omitempty"`
	TilePacking bool   `json:"tilePacking,omitempty"`
	CPEGroups   int    `json:"cpeGroups,omitempty"`
	TileSize    string `json:"tileSize,omitempty"`

	// Physics selects the scheduled model problem: a registered single
	// model ("burgers", "advection", "heat3d") or a seeded per-patch
	// mixture ("mix:burgers=2,advection=1,heat3d=1,seed=7"). Empty and
	// "burgers" both mean the historical Burgers default and hash
	// identically to a spec without the field, so pre-existing cache
	// entries stay valid. Producers should store the canonical selector
	// form (physics.Selection.Canonical); the runner hashes the string
	// as given.
	Physics string `json:"physics,omitempty"`

	// Faults is the deterministic fault-injection plan; nil (or all-zero)
	// runs the case fault-free and hashes identically to a spec without
	// the field, so pre-existing cache entries stay valid.
	Faults *faults.Plan `json:"faults,omitempty"`

	// Shards selects the conservative parallel engine (0 or 1 = serial).
	// It is a wall-clock knob only: results are bit-identical for every
	// shard count, so — like the pool's worker count — it deliberately
	// never enters the canonical form or the content hash.
	Shards int `json:"shards,omitempty"`

	// Optimistic coordinates the shards with the Time-Warp engine instead
	// of the conservative one. Bit-identical by contract, so — exactly
	// like Shards — it never enters the canonical form or the content
	// hash. No effect unless Shards > 1.
	Optimistic bool `json:"optimistic,omitempty"`

	// Report attaches the flight recorder (core's Result.Obs) and Trace
	// additionally captures the full event timeline. Both are reporting
	// knobs: they never change scheduling, timing or numerics, and the
	// recorded series are bit-identical across Shards and worker counts —
	// so, like Shards, they deliberately never enter the canonical form or
	// the content hash. (A cached result may therefore lack a report the
	// request asked for; callers that need one bypass the cache.)
	Report bool `json:"report,omitempty"`
	Trace  bool `json:"trace,omitempty"`
}

// canonical renders the spec as a stable, unambiguous key string. Every
// field participates; field order is fixed.
func (s Spec) canonical() string {
	key := fmt.Sprintf("%s|problem=%s|cells=%s|layout=%s|cgs=%d|variant=%s|steps=%d|noise=%g|seed=%d|functional=%t|asyncdma=%t|packing=%t|cpegroups=%d|tilesize=%s",
		specHashVersion, s.Problem, s.Cells, s.Layout, s.CGs, s.Variant, s.Steps,
		s.Noise, s.Seed, s.Functional, s.AsyncDMA, s.TilePacking, s.CPEGroups, s.TileSize)
	if p := s.Physics; p != "" && p != "burgers" {
		key += "|physics=" + p
	}
	if !s.Faults.Zero() {
		key += "|faults=" + s.Faults.Canonical()
	}
	return key
}

// Hash is the canonical content hash of the spec: the cache key and the
// pool's dedup key.
func (s Spec) Hash() string {
	sum := sha256.Sum256([]byte(s.canonical()))
	return hex.EncodeToString(sum[:])
}

// String names the spec compactly for progress output.
func (s Spec) String() string {
	name := s.Problem
	if name == "" {
		name = s.Cells
	}
	out := fmt.Sprintf("%s/%s@%dCG", name, s.Variant, s.CGs)
	if p := s.Physics; p != "" && p != "burgers" {
		out += " " + p
	}
	if s.Noise > 0 {
		out += fmt.Sprintf(" seed=%d", s.Seed)
	}
	if !s.Faults.Zero() {
		out += " +faults"
	}
	return out
}
