package runner

import (
	"context"
	"errors"
	"testing"
	"time"

	"sunuintah/internal/faults"
)

func TestFaultPlanHash(t *testing.T) {
	base := Spec{Problem: "32x64x512", CGs: 4, Variant: "acc.async", Steps: 5}

	withZero := base
	withZero.Faults = &faults.Plan{Seed: 42} // all rates zero
	if withZero.Hash() != base.Hash() {
		t.Fatal("a zero fault plan must hash like no plan at all")
	}

	chaotic := base
	chaotic.Faults = faults.Default()
	if chaotic.Hash() == base.Hash() {
		t.Fatal("a non-zero fault plan must change the spec hash")
	}

	reseeded := base
	reseeded.Faults = faults.Default()
	reseeded.Faults.Seed = 99
	if reseeded.Hash() == chaotic.Hash() {
		t.Fatal("the fault seed must participate in the spec hash")
	}
}

func TestBackoffDelayDeterministic(t *testing.T) {
	const base = 10 * time.Millisecond
	hash := Spec{Problem: "32x64x512", CGs: 1, Variant: "acc.async", Steps: 1}.Hash()
	for attempt := 0; attempt < 4; attempt++ {
		d1 := backoffDelay(base, hash, attempt)
		d2 := backoffDelay(base, hash, attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: backoff not deterministic: %v vs %v", attempt, d1, d2)
		}
		exp := base << uint(attempt)
		if d1 < exp/2 || d1 >= exp+exp/2 {
			t.Fatalf("attempt %d: delay %v outside [%v, %v)", attempt, d1, exp/2, exp+exp/2)
		}
	}
	other := Spec{Problem: "64x64x512", CGs: 1, Variant: "acc.async", Steps: 1}.Hash()
	if backoffDelay(base, hash, 0) == backoffDelay(base, other, 0) {
		t.Fatal("distinct jobs should jitter to distinct delays")
	}
	if got := backoffDelay(base, "nothex!", 1); got != base<<1 {
		t.Fatalf("malformed hash should fall back to plain exponential, got %v", got)
	}
}

func TestShutdownDrainsInFlightJobs(t *testing.T) {
	p, err := New(Config{Workers: 2, Exec: func(ctx context.Context, spec Spec) (*Result, error) {
		time.Sleep(20 * time.Millisecond)
		return &Result{Feasible: true}, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	var jobs []*Job
	for i := 0; i < 4; i++ {
		jobs = append(jobs, p.Submit(Spec{Problem: "32x64x512", CGs: 1, Variant: "v", Steps: i + 1}))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := p.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown should drain, got %v", err)
	}
	for _, j := range jobs {
		if r, err := j.Result(); err != nil || r == nil {
			t.Fatalf("job %s not drained: %v", j.Spec, err)
		}
	}
	if j := p.Submit(Spec{Problem: "32x64x512", CGs: 1, Variant: "v", Steps: 99}); !errors.Is(j.err, ErrClosed) {
		t.Fatal("Submit after Shutdown should fail with ErrClosed")
	}
}

func TestShutdownDeadlineCancelsInFlightWork(t *testing.T) {
	sawCancel := make(chan struct{}, 1)
	p, err := New(Config{Workers: 1, Exec: func(ctx context.Context, spec Spec) (*Result, error) {
		<-ctx.Done() // a hung job that only yields to cancellation
		sawCancel <- struct{}{}
		return nil, ctx.Err()
	}})
	if err != nil {
		t.Fatal(err)
	}
	j := p.Submit(Spec{Problem: "32x64x512", CGs: 1, Variant: "v", Steps: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := p.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cut-short shutdown should report the deadline, got %v", err)
	}
	select {
	case <-sawCancel:
	case <-time.After(2 * time.Second):
		t.Fatal("shutdown deadline did not cancel the in-flight attempt")
	}
	if _, err := j.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("hung job should fail with context.Canceled, got %v", err)
	}
}
