package runner

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// slowExec blocks until its context is cancelled or release is closed.
func slowExec(release <-chan struct{}) ExecFunc {
	return func(ctx context.Context, spec Spec) (*Result, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-release:
			return &Result{Feasible: true}, nil
		}
	}
}

func TestCancelQueuedJob(t *testing.T) {
	release := make(chan struct{})
	p, err := New(Config{Workers: 1, Exec: slowExec(release)})
	if err != nil {
		t.Fatal(err)
	}
	// Close drains running jobs, so release must unblock them first:
	// deferred close(release) runs before deferred p.Close().
	defer p.Close()
	defer close(release)

	// One job occupies the single worker; the second stays queued.
	blocker := p.Submit(Spec{Cells: "1x1x1", CGs: 1, Variant: "a", Steps: 1})
	queued := p.Submit(Spec{Cells: "2x2x2", CGs: 1, Variant: "a", Steps: 1})

	if !p.Cancel(queued) {
		t.Fatal("Cancel of queued job reported not pending")
	}
	select {
	case <-queued.Done():
	case <-time.After(time.Second):
		t.Fatal("canceled queued job did not finish")
	}
	if queued.State() != StateCanceled {
		t.Fatalf("state = %s, want canceled", queued.State())
	}
	if _, err := queued.Result(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if m := p.Metrics(); m.Canceled != 1 {
		t.Fatalf("canceled metric = %d", m.Canceled)
	}
	_ = blocker
}

func TestCancelRunningJob(t *testing.T) {
	release := make(chan struct{})
	p, err := New(Config{Workers: 1, Exec: slowExec(release)})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	defer close(release)

	j := p.Submit(Spec{Cells: "1x1x1", CGs: 1, Variant: "a", Steps: 1})
	// Wait until the job is actually running so the cancel goes through
	// the attempt-context path.
	deadline := time.Now().Add(2 * time.Second)
	for j.State() != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if !p.Cancel(j) {
		t.Fatal("Cancel of running job reported not pending")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := j.Wait(ctx); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if j.State() != StateCanceled {
		t.Fatalf("state = %s, want canceled", j.State())
	}

	// A finished job refuses further cancels, and new work still runs.
	if p.Cancel(j) {
		t.Fatal("Cancel of finished job reported pending")
	}
}

func TestCancelDoesNotPoisonWorkerOrCache(t *testing.T) {
	var mu sync.Mutex
	execs := 0
	exec := func(ctx context.Context, spec Spec) (*Result, error) {
		mu.Lock()
		execs++
		mu.Unlock()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return &Result{Feasible: true}, nil
	}
	p, err := New(Config{Workers: 2, Exec: exec, Cache: NewMemoryCache(0)})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	spec := Spec{Cells: "3x3x3", CGs: 1, Variant: "a", Steps: 1}
	j := p.Submit(spec)
	p.Cancel(j)
	<-j.Done()

	// The same spec resubmitted after a cancel executes fresh: a canceled
	// outcome must never have been cached.
	j2 := p.Submit(spec)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	res, err := j2.Wait(ctx)
	if err != nil {
		t.Fatalf("resubmit after cancel failed: %v", err)
	}
	if res == nil || !res.Feasible {
		t.Fatalf("resubmit result = %+v", res)
	}
}

func TestCancelEventEmitted(t *testing.T) {
	var mu sync.Mutex
	var kinds []EventType
	release := make(chan struct{})
	p, err := New(Config{
		Workers: 1,
		Exec:    slowExec(release),
		OnEvent: func(e Event) {
			mu.Lock()
			kinds = append(kinds, e.Type)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	defer close(release)

	blocker := p.Submit(Spec{Cells: "1x1x1", CGs: 1, Variant: "a", Steps: 1})
	queued := p.Submit(Spec{Cells: "2x2x2", CGs: 1, Variant: "a", Steps: 1})
	p.Cancel(queued)
	<-queued.Done()
	mu.Lock()
	var seen bool
	for _, k := range kinds {
		if k == EventCanceled {
			seen = true
		}
	}
	mu.Unlock()
	if !seen {
		t.Fatal("no EventCanceled emitted")
	}
	_ = blocker
}
