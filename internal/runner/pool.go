package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// ExecFunc executes one Spec. Infeasible cases must be reported as a
// Result with Feasible == false (they cache); errors are never cached.
// The pool enforces the per-job timeout around the call, so ExecFunc need
// not watch ctx, though it may to abort early.
type ExecFunc func(ctx context.Context, spec Spec) (*Result, error)

// EventType classifies pool progress events.
type EventType int

// Pool event kinds, in rough lifecycle order.
const (
	EventQueued EventType = iota
	EventStarted
	EventCacheHit
	EventRetried
	EventDone
	EventFailed
	EventCanceled
)

// Event is one progress notification. Done/Total/HitRate snapshot the
// pool at emission time, ready for "[done/total, hit-rate]" progress
// lines.
type Event struct {
	Type    EventType
	Spec    Spec
	Done    int64 // jobs finished (success or failure)
	Total   int64 // jobs submitted so far
	HitRate float64
	Err     error // EventRetried / EventFailed
}

// Config configures a Pool.
type Config struct {
	// Workers is the number of concurrent executors; 0 means
	// runtime.GOMAXPROCS(0). Each simulated case is self-contained, so
	// runs are embarrassingly parallel.
	Workers int
	// Exec runs one spec. Required.
	Exec ExecFunc
	// Cache, when non-nil, memoises results by content hash.
	Cache Cache
	// Timeout bounds each execution attempt; 0 disables. A timed-out
	// attempt fails the job but never the process.
	Timeout time.Duration
	// Retries is the number of extra attempts for retryable failures:
	// panics (always) and errors of jobs using the noise model. 0 means
	// fail on the first error.
	Retries int
	// Backoff is the delay before the first retry, doubling per attempt.
	Backoff time.Duration
	// OnEvent, when non-nil, receives progress events. It may be called
	// concurrently from worker goroutines and must be safe for that.
	OnEvent func(Event)
}

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("runner: pool closed")

// ErrCanceled is the terminal error of a job aborted via Pool.Cancel.
var ErrCanceled = errors.New("runner: job canceled")

// PanicError converts a crashed run into an ordinary, retryable job
// error: the panic fails only its job, not the process.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: job panicked: %v", e.Value)
}

// JobState is a job's lifecycle position.
type JobState string

// Job lifecycle states.
const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// Job is one submitted Spec. Submitting the same Spec (by content hash)
// while a job for it is pending returns the existing job, so concurrent
// callers coalesce onto a single execution.
type Job struct {
	Spec Spec
	Hash string

	state  atomic.Value // JobState
	done   chan struct{}
	result *Result
	err    error

	// canceled and cancelFn are guarded by the owning pool's mu: canceled
	// marks a cancel request observed before the job registered its
	// attempt context, cancelFn aborts a registered in-flight attempt.
	canceled bool
	cancelFn context.CancelFunc
}

// State reports the job's current lifecycle state.
func (j *Job) State() JobState { return j.state.Load().(JobState) }

// Done returns a channel closed when the job finishes.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job finishes or ctx is cancelled.
func (j *Job) Wait(ctx context.Context) (*Result, error) {
	select {
	case <-j.done:
		return j.result, j.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Result returns the outcome of a finished job without blocking; it is
// only valid after Done is closed.
func (j *Job) Result() (*Result, error) { return j.result, j.err }

// Pool executes jobs concurrently with caching, dedup, panic recovery,
// timeouts and bounded retry.
type Pool struct {
	cfg Config

	// baseCtx parents every attempt's context; baseCancel aborts in-flight
	// work when a Shutdown deadline expires.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []*Job
	inflight map[string]*Job // pending jobs by spec hash
	closed   bool
	wg       sync.WaitGroup

	m metrics
}

// New creates and starts a pool.
func New(cfg Config) (*Pool, error) {
	if cfg.Exec == nil {
		return nil, errors.New("runner: Config.Exec is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{cfg: cfg, inflight: map[string]*Job{}}
	p.baseCtx, p.baseCancel = context.WithCancel(context.Background())
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go p.worker()
	}
	return p, nil
}

// Workers reports the pool's concurrency.
func (p *Pool) Workers() int { return p.cfg.Workers }

// Metrics snapshots the pool's counters.
func (p *Pool) Metrics() Metrics { return p.m.snapshot() }

// Submit enqueues a spec and returns its job without blocking. A spec
// already pending (same content hash) returns the pending job. After
// Close, the returned job is already failed with ErrClosed.
func (p *Pool) Submit(spec Spec) *Job {
	hash := spec.Hash()
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		j := newJob(spec, hash)
		j.fail(ErrClosed)
		return j
	}
	if j, ok := p.inflight[hash]; ok {
		atomic.AddInt64(&p.m.coalesced, 1)
		p.mu.Unlock()
		return j
	}
	j := newJob(spec, hash)
	p.inflight[hash] = j
	p.queue = append(p.queue, j)
	atomic.AddInt64(&p.m.submitted, 1)
	p.cond.Signal()
	p.mu.Unlock()
	p.emit(EventQueued, spec, nil)
	return j
}

// Run submits a spec and waits for its result.
func (p *Pool) Run(ctx context.Context, spec Spec) (*Result, error) {
	return p.Submit(spec).Wait(ctx)
}

// Close drains the queue, waits for running jobs and stops the workers.
// Subsequent Submit calls fail with ErrClosed.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
	p.baseCancel()
}

// Shutdown drains the pool gracefully: Submit is refused immediately,
// queued and running jobs get until ctx's deadline to finish, and if the
// deadline passes first the pool's base context is cancelled — aborting
// in-flight attempts cooperatively — before waiting for the workers to
// return. It reports ctx.Err() when the drain was cut short.
func (p *Pool) Shutdown(ctx context.Context) error {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()

	idle := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		p.baseCancel()
		return nil
	case <-ctx.Done():
		p.baseCancel()
		<-idle
		return ctx.Err()
	}
}

func newJob(spec Spec, hash string) *Job {
	j := &Job{Spec: spec, Hash: hash, done: make(chan struct{})}
	j.state.Store(StateQueued)
	return j
}

func (j *Job) fail(err error) { j.failState(StateFailed, err) }

func (j *Job) failState(st JobState, err error) {
	j.err = err
	j.state.Store(st)
	close(j.done)
}

// Cancel aborts a pending job: a still-queued job is removed from the
// queue and finishes immediately with ErrCanceled in StateCanceled; a
// running job has its attempt context cancelled and finishes canceled as
// soon as the execution observes it. Cancel reports whether the job was
// still pending (false once it has finished — including the race where
// the execution completes while Cancel is in flight, in which case the
// result stands). Note that jobs are coalesced by content hash: canceling
// a job cancels it for every submitter that shares it.
func (p *Pool) Cancel(j *Job) bool {
	if j == nil {
		return false
	}
	p.mu.Lock()
	select {
	case <-j.done:
		p.mu.Unlock()
		return false
	default:
	}
	j.canceled = true
	for i, q := range p.queue {
		if q == j {
			p.queue = append(p.queue[:i], p.queue[i+1:]...)
			delete(p.inflight, j.Hash)
			p.mu.Unlock()
			atomic.AddInt64(&p.m.canceled, 1)
			j.failState(StateCanceled, ErrCanceled)
			p.emit(EventCanceled, j.Spec, ErrCanceled)
			return true
		}
	}
	cancel := j.cancelFn
	p.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return true
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.queue) == 0 {
			p.mu.Unlock()
			return
		}
		j := p.queue[0]
		p.queue = p.queue[1:]
		p.mu.Unlock()
		p.execute(j)
	}
}

// execute runs one job to completion: cache lookup, bounded attempts with
// panic recovery and timeout, then result publication.
func (p *Pool) execute(j *Job) {
	// A cancel may have landed between dequeue and here (the worker holds
	// no lock while picking the job up).
	p.mu.Lock()
	if j.canceled {
		p.mu.Unlock()
		p.finish(j, nil, ErrCanceled)
		p.emit(EventCanceled, j.Spec, ErrCanceled)
		return
	}
	p.mu.Unlock()

	if p.cfg.Cache != nil {
		if r, ok := p.cfg.Cache.Get(j.Hash); ok {
			atomic.AddInt64(&p.m.cacheHits, 1)
			atomic.AddInt64(&p.m.savedNanos, int64(r.ExecSeconds*1e9))
			p.finish(j, r, nil)
			p.emit(EventCacheHit, j.Spec, nil)
			p.emit(EventDone, j.Spec, nil)
			return
		}
	}

	// The job's own context layers per-job cancellation over the pool's
	// base context; Cancel aborts this job alone, Shutdown aborts all.
	jobCtx, jobCancel := context.WithCancel(p.baseCtx)
	defer jobCancel()
	p.mu.Lock()
	j.cancelFn = jobCancel
	p.mu.Unlock()

	j.state.Store(StateRunning)
	atomic.AddInt64(&p.m.running, 1)
	p.emit(EventStarted, j.Spec, nil)

	var res *Result
	var err error
	for attempt := 0; ; attempt++ {
		res, err = p.attempt(jobCtx, j.Spec)
		if err == nil || !p.retryable(j.Spec, err) || attempt >= p.cfg.Retries {
			break
		}
		atomic.AddInt64(&p.m.retries, 1)
		p.emit(EventRetried, j.Spec, err)
		if p.cfg.Backoff > 0 {
			select {
			case <-time.After(backoffDelay(p.cfg.Backoff, j.Hash, attempt)):
			case <-jobCtx.Done():
			}
		}
	}
	atomic.AddInt64(&p.m.running, -1)
	atomic.AddInt64(&p.m.executed, 1)

	if err != nil {
		p.finish(j, nil, err)
		if errors.Is(j.err, ErrCanceled) {
			p.emit(EventCanceled, j.Spec, j.err)
		} else {
			p.emit(EventFailed, j.Spec, err)
		}
		return
	}
	if p.cfg.Cache != nil {
		p.cfg.Cache.Put(j.Hash, res)
	}
	p.finish(j, res, nil)
	p.emit(EventDone, j.Spec, nil)
}

// attempt runs the exec function once with panic recovery and the
// per-attempt timeout. The exec call runs in its own goroutine so a hung
// run cannot wedge the worker past the deadline (the abandoned goroutine
// finishes in the background and is discarded).
func (p *Pool) attempt(jobCtx context.Context, spec Spec) (*Result, error) {
	ctx := jobCtx
	cancel := context.CancelFunc(func() {})
	if p.cfg.Timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, p.cfg.Timeout)
	}
	defer cancel()

	type outcome struct {
		res *Result
		err error
	}
	ch := make(chan outcome, 1)
	start := time.Now()
	go func() {
		defer func() {
			if v := recover(); v != nil {
				atomic.AddInt64(&p.m.panics, 1)
				ch <- outcome{nil, &PanicError{Value: v, Stack: debug.Stack()}}
			}
		}()
		res, err := p.cfg.Exec(ctx, spec)
		ch <- outcome{res, err}
	}()

	select {
	case out := <-ch:
		atomic.AddInt64(&p.m.execNanos, int64(time.Since(start)))
		if out.err == nil && out.res != nil {
			out.res.ExecSeconds = time.Since(start).Seconds()
		}
		return out.res, out.err
	case <-ctx.Done():
		atomic.AddInt64(&p.m.execNanos, int64(time.Since(start)))
		return nil, fmt.Errorf("runner: job %s: %w", spec, ctx.Err())
	}
}

// backoffDelay derives the pause before the next retry of a job from the
// job's content hash: exponential doubling per attempt with a jitter
// factor in [0.5, 1.5) drawn by splitmix64 from the hash and attempt
// number. The jitter desynchronises retries of distinct jobs without any
// wall-clock or global-rand dependence, so a given job's retry schedule is
// reproducible across runs and processes.
func backoffDelay(base time.Duration, hash string, attempt int) time.Duration {
	d := base << uint(attempt)
	if len(hash) < 16 {
		return d
	}
	seed, err := strconv.ParseUint(hash[:16], 16, 64)
	if err != nil {
		return d
	}
	z := seed ^ uint64(attempt+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	frac := float64(z>>11) / float64(1<<53)
	return time.Duration(float64(d) * (0.5 + frac))
}

// retryable reports whether a failed attempt should be retried: panics
// always are (the crash may be load-dependent), as are failures of jobs
// using the noise model; timeouts are not, since the timed-out attempt
// may still be running.
func (p *Pool) retryable(spec Spec, err error) bool {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return false
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		return true
	}
	return spec.Noise > 0
}

func (p *Pool) finish(j *Job, res *Result, err error) {
	p.mu.Lock()
	delete(p.inflight, j.Hash)
	canceled := j.canceled
	p.mu.Unlock()
	if err != nil {
		// A failure after a cancel request — whether ErrCanceled directly
		// or the attempt context's cancellation — finishes canceled, not
		// failed.
		if canceled {
			atomic.AddInt64(&p.m.canceled, 1)
			j.failState(StateCanceled, ErrCanceled)
			return
		}
		atomic.AddInt64(&p.m.failed, 1)
		j.fail(err)
		return
	}
	atomic.AddInt64(&p.m.done, 1)
	j.result = res
	j.state.Store(StateDone)
	close(j.done)
}

func (p *Pool) emit(t EventType, spec Spec, err error) {
	if p.cfg.OnEvent == nil {
		return
	}
	s := p.m.snapshot()
	p.cfg.OnEvent(Event{
		Type:    t,
		Spec:    spec,
		Done:    s.Done + s.Failed + s.Canceled,
		Total:   s.Submitted,
		HitRate: s.HitRate(),
		Err:     err,
	})
}
