package experiments

import (
	"testing"

	"sunuintah/internal/runner"
)

// TestEstimateCostOrdersSpecs pins the properties the admission layer
// relies on: monotonicity in cells, steps and (inversely) CGs, SIMD
// discounting, and zero for unresolvable specs.
func TestEstimateCostOrdersSpecs(t *testing.T) {
	small := runner.Spec{Cells: "16x16x32", CGs: 1, Variant: "acc.async", Steps: 2}
	big := runner.Spec{Cells: "64x64x128", CGs: 1, Variant: "acc.async", Steps: 2}
	if cs, cb := EstimateCost(small), EstimateCost(big); cs <= 0 || cb <= cs {
		t.Fatalf("cells monotonicity: small=%g big=%g", cs, cb)
	}

	short := runner.Spec{Cells: "16x16x32", CGs: 1, Variant: "acc.async", Steps: 2}
	long := short
	long.Steps = 20
	if EstimateCost(long) <= EstimateCost(short) {
		t.Fatal("steps monotonicity violated")
	}

	few := runner.Spec{Problem: "32x64x512", CGs: 1, Variant: "acc.async", Steps: 2}
	many := few
	many.CGs = 16
	if EstimateCost(many) >= EstimateCost(few) {
		t.Fatal("more CGs should lower per-CG cost")
	}

	scalar := runner.Spec{Cells: "32x32x64", CGs: 2, Variant: "acc.async", Steps: 2}
	simd := scalar
	simd.Variant = "acc_simd.async"
	if EstimateCost(simd) >= EstimateCost(scalar) {
		t.Fatal("SIMD variant should estimate cheaper")
	}

	if c := EstimateCost(runner.Spec{Variant: "acc.async", CGs: 1, Steps: 1}); c != 0 {
		t.Fatalf("spec without problem/cells estimated %g, want 0", c)
	}
	if c := EstimateCost(runner.Spec{Problem: "nope", CGs: 1, Variant: "acc.async", Steps: 1}); c != 0 {
		t.Fatalf("unknown problem estimated %g, want 0", c)
	}

	// A named problem uses its layout-scaled global grid: the paper's
	// 8x8x2 default layout times the patch size.
	named := runner.Spec{Problem: "16x16x512", CGs: 1, Variant: "acc.async", Steps: 1}
	custom := runner.Spec{Cells: "128x128x1024", CGs: 1, Variant: "acc.async", Steps: 1}
	if cn, cc := EstimateCost(named), EstimateCost(custom); cn != cc {
		t.Fatalf("named vs equivalent custom cells: %g != %g", cn, cc)
	}
}
