package experiments

import (
	"context"
	"fmt"
	"strings"

	"sunuintah/internal/faults"
	"sunuintah/internal/runner"
)

// The chaos artifact measures the resilient runtime under the fault plane:
// the default fault plan is scaled across chaosScales and each scale runs
// chaosSeeds independent fault histories of a small 2-CG case. Reported
// per scale: how many runs recovered versus were lost, the wall-clock
// overhead relative to the fault-free baseline, and the injected-fault /
// recovery-action tallies. Every cell is a deterministic function of its
// spec, and collection order is fixed, so the artifact is byte-identical
// across worker counts and invocations.

// chaosScales multiply the default fault plan's rates; scale 0 is the
// fault-free baseline every overhead is measured against.
var chaosScales = []float64{0, 0.5, 1, 2}

const (
	chaosSeeds  = 8 // independent fault histories per scale
	chaosSteps  = 6 // default timesteps per run
	chaosCGs    = 2 // small case: enough ranks for halo traffic + crashes
	chaosCells  = "64x64x128"
	chaosLayout = "2x2x2"
)

// ChaosRow aggregates one fault-rate scale of the chaos matrix.
type ChaosRow struct {
	Scale     float64
	Runs      int
	Recovered int // runs that completed all steps (crash-free or restarted)
	Crashes   int
	Restarts  int
	MeanWall  float64 // mean virtual wall seconds over recovered runs
	Overhead  float64 // MeanWall vs the scale-0 baseline, in percent

	// Injected faults and recovery actions, summed over the scale's runs.
	Injected   faults.Counts
	Resends    int64
	Reoffloads int64
	Fallbacks  int64
}

// chaosSpec is one cell of the chaos matrix. The sweep's engine knobs
// (Shards, Optimistic) ride along: they are excluded from the content
// hash, and the crash-capable cells force serial execution anyway — core
// applies the same fallback rule to both knobs — so the matrix renders
// byte-identically whatever the engine request was.
func chaosSpec(opt Options, steps int, scale float64, seed uint64) runner.Spec {
	spec := runner.Spec{
		Cells:      chaosCells,
		Layout:     chaosLayout,
		CGs:        chaosCGs,
		Variant:    "acc.async",
		Steps:      steps,
		Shards:     opt.Shards,
		Optimistic: opt.Optimistic,
	}
	if scale > 0 {
		plan := faults.Default().Scaled(scale)
		plan.Seed = seed
		spec.Faults = plan
	}
	return spec
}

// ChaosRows runs the chaos matrix on the sweep's pool and aggregates it
// per scale. steps <= 0 means the default short run.
func ChaosRows(s *Sweep, steps int) ([]ChaosRow, error) {
	if steps <= 0 {
		steps = chaosSteps
	}
	// Submit the whole matrix before collecting anything, so the runs
	// saturate the pool. The fault-free baseline is a single cell: with no
	// plan there is no fault seed for the histories to differ by.
	jobs := map[float64][]*runner.Job{}
	for _, scale := range chaosScales {
		n := chaosSeeds
		if scale == 0 {
			n = 1
		}
		for seed := 1; seed <= n; seed++ {
			jobs[scale] = append(jobs[scale], s.Pool().Submit(chaosSpec(s.opt, steps, scale, uint64(seed))))
		}
	}

	var rows []ChaosRow
	baseline := 0.0
	for _, scale := range chaosScales {
		row := ChaosRow{Scale: scale}
		wall := 0.0
		for _, j := range jobs[scale] {
			res, err := j.Wait(context.Background())
			if err != nil {
				return nil, fmt.Errorf("chaos scale %g: %w", scale, err)
			}
			if !res.Feasible || res.Sim == nil {
				return nil, fmt.Errorf("chaos scale %g: infeasible cell", scale)
			}
			row.Runs++
			sim := res.Sim
			if fr := sim.Faults; fr != nil {
				row.Injected.Add(fr.Injected)
				row.Resends += fr.Resends
				row.Reoffloads += fr.Reoffloads
				row.Fallbacks += fr.MPEFallbacks
				if rec := fr.Recovery; rec != nil {
					row.Crashes += rec.Crashes
					row.Restarts += rec.Restarts
				}
			}
			if sim.Steps == steps {
				row.Recovered++
				wall += float64(sim.WallTime)
			}
		}
		if row.Recovered > 0 {
			row.MeanWall = wall / float64(row.Recovered)
		}
		if scale == 0 {
			baseline = row.MeanWall
		} else if baseline > 0 {
			row.Overhead = (row.MeanWall - baseline) / baseline * 100
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatChaos renders the chaos matrix as a fixed-width table.
func FormatChaos(rows []ChaosRow, steps int) string {
	if steps <= 0 {
		steps = chaosSteps
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Chaos matrix: %s cells (%s patches) @ %d CGs, acc.async, %d steps, %d seeds/scale\n",
		chaosCells, chaosLayout, chaosCGs, steps, chaosSeeds)
	fmt.Fprintf(&b, "fault plan: default rates x scale (crash %.2f/run at x1), checkpoint every %d steps\n\n",
		faults.Default().Crash, faults.Default().Normalized().CheckpointEvery)
	fmt.Fprintf(&b, "%5s %5s %9s %7s %8s %10s %9s %6s %7s %7s %7s %7s\n",
		"scale", "runs", "recovered", "crashes", "restarts", "wall(ms)", "overhead",
		"drops", "resends", "stalls", "re-off", "mpe-fb")
	for _, r := range rows {
		overhead := "-"
		if r.Scale > 0 {
			overhead = fmt.Sprintf("%+.1f%%", r.Overhead)
		}
		fmt.Fprintf(&b, "%5.1f %5d %9s %7d %8d %10.3f %9s %6d %7d %7d %7d %7d\n",
			r.Scale, r.Runs, fmt.Sprintf("%d/%d", r.Recovered, r.Runs),
			r.Crashes, r.Restarts, r.MeanWall*1e3, overhead,
			r.Injected.MsgsDropped, r.Resends, r.Injected.OffloadStalls,
			r.Reoffloads, r.Fallbacks)
	}
	return b.String()
}

// Chaos is the "chaos" artifact: overhead-versus-fault-rate and
// recovered-versus-lost for the resilient runtime.
func Chaos(s *Sweep, steps int) (string, error) {
	rows, err := ChaosRows(s, steps)
	if err != nil {
		return "", err
	}
	return FormatChaos(rows, steps), nil
}
