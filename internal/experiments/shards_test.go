package experiments

import (
	"context"
	"encoding/json"
	"testing"

	"sunuintah/internal/faults"
	"sunuintah/internal/runner"
)

// execJSON runs a spec uncached through Exec and returns the serialised
// result. Exec (not a pool) on purpose: the content cache deliberately
// ignores Shards, so cached runs would alias across shard counts and the
// comparison would be vacuous.
func execJSON(t *testing.T, spec runner.Spec) []byte {
	t.Helper()
	res, err := Exec(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestExecShardDeterminism sweeps a small case matrix — including a
// faulted run — across shard counts and asserts byte-identical run
// artifacts and identical simulated end times. `make race` reruns this
// under the race detector.
func TestExecShardDeterminism(t *testing.T) {
	specs := []runner.Spec{
		{Cells: "16x16x32", Layout: "2x2x2", CGs: 8, Variant: "acc.async", Steps: 3, Functional: true},
		{Cells: "16x16x32", Layout: "2x2x2", CGs: 8, Variant: "acc_simd.sync", Steps: 3},
		{Cells: "16x16x32", Layout: "2x2x2", CGs: 8, Variant: "acc.async", Steps: 3,
			Faults: &faults.Plan{Seed: 5, Drop: 0.1, Dup: 0.1, Stall: 0.05}},
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.String(), func(t *testing.T) {
			ref := execJSON(t, spec)
			var refRes runner.Result
			if err := json.Unmarshal(ref, &refRes); err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{1, 2, 4} {
				s := spec
				s.Shards = shards
				if s.Hash() != spec.Hash() {
					t.Fatalf("shards=%d changed the content hash: the cache key must ignore wall-clock knobs", shards)
				}
				got := execJSON(t, s)
				if string(got) != string(ref) {
					t.Fatalf("shards=%d: result differs from serial engine\nserial:  %s\nsharded: %s",
						shards, ref, got)
				}
				var gotRes runner.Result
				if err := json.Unmarshal(got, &gotRes); err != nil {
					t.Fatal(err)
				}
				if gotRes.Sim != nil && refRes.Sim != nil &&
					gotRes.Sim.StepEnds[len(gotRes.Sim.StepEnds)-1] != refRes.Sim.StepEnds[len(refRes.Sim.StepEnds)-1] {
					t.Fatalf("shards=%d: simulated end time differs", shards)
				}
			}
		})
	}
}

// TestValidateSpecRejectsNegativeShards: bad shard counts fail validation
// with a clear message (sunserver rejects such requests up front).
func TestValidateSpecRejectsNegativeShards(t *testing.T) {
	spec := runner.Spec{Cells: "16x16x32", Layout: "2x2x2", CGs: 2, Variant: "acc.async", Steps: 1, Shards: -1}
	if err := ValidateSpec(spec); err == nil {
		t.Fatal("want error for shards = -1, got nil")
	}
}
