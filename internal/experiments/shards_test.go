package experiments

import (
	"context"
	"encoding/json"
	"testing"

	"sunuintah/internal/faults"
	"sunuintah/internal/runner"
)

// execJSON runs a spec uncached through Exec and returns the serialised
// result. Exec (not a pool) on purpose: the content cache deliberately
// ignores Shards, so cached runs would alias across shard counts and the
// comparison would be vacuous.
func execJSON(t *testing.T, spec runner.Spec) []byte {
	t.Helper()
	res, err := Exec(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestExecShardDeterminism sweeps a small case matrix — including a
// faulted run — across shard counts and asserts byte-identical run
// artifacts and identical simulated end times. `make race` reruns this
// under the race detector.
func TestExecShardDeterminism(t *testing.T) {
	specs := []runner.Spec{
		{Cells: "16x16x32", Layout: "2x2x2", CGs: 8, Variant: "acc.async", Steps: 3, Functional: true},
		{Cells: "16x16x32", Layout: "2x2x2", CGs: 8, Variant: "acc_simd.sync", Steps: 3},
		{Cells: "16x16x32", Layout: "2x2x2", CGs: 8, Variant: "acc.async", Steps: 3,
			Faults: &faults.Plan{Seed: 5, Drop: 0.1, Dup: 0.1, Stall: 0.05}},
		// Flight-recorder runs: Result.Sim.Obs and .Trace ride inside the
		// compared JSON, extending bit-identity to the whole report.
		{Cells: "16x16x32", Layout: "2x2x2", CGs: 8, Variant: "acc.async", Steps: 3,
			Report: true, Trace: true},
		{Cells: "16x16x32", Layout: "2x2x2", CGs: 8, Variant: "acc.async", Steps: 3,
			Faults: &faults.Plan{Seed: 5, Drop: 0.1, Dup: 0.1, Stall: 0.05}, Report: true},
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.String(), func(t *testing.T) {
			ref := execJSON(t, spec)
			var refRes runner.Result
			if err := json.Unmarshal(ref, &refRes); err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{1, 2, 4} {
				s := spec
				s.Shards = shards
				if s.Hash() != spec.Hash() {
					t.Fatalf("shards=%d changed the content hash: the cache key must ignore wall-clock knobs", shards)
				}
				got := execJSON(t, s)
				if string(got) != string(ref) {
					t.Fatalf("shards=%d: result differs from serial engine\nserial:  %s\nsharded: %s",
						shards, ref, got)
				}
				var gotRes runner.Result
				if err := json.Unmarshal(got, &gotRes); err != nil {
					t.Fatal(err)
				}
				if gotRes.Sim != nil && refRes.Sim != nil &&
					gotRes.Sim.StepEnds[len(gotRes.Sim.StepEnds)-1] != refRes.Sim.StepEnds[len(refRes.Sim.StepEnds)-1] {
					t.Fatalf("shards=%d: simulated end time differs", shards)
				}
			}
		})
	}
}

// TestValidateSpecRejectsNegativeShards: bad shard counts fail validation
// with a clear message (sunserver rejects such requests up front).
func TestValidateSpecRejectsNegativeShards(t *testing.T) {
	spec := runner.Spec{Cells: "16x16x32", Layout: "2x2x2", CGs: 2, Variant: "acc.async", Steps: 1, Shards: -1}
	if err := ValidateSpec(spec); err == nil {
		t.Fatal("want error for shards = -1, got nil")
	}
}

// TestShardsWorkersReportBitIdentical runs a flight-recorder spec through
// pools of different worker counts and different shard settings and asserts
// every Result — sampled series included — is byte-identical. Workers and
// Shards are the two host-parallelism knobs; neither may leak into the
// virtual-time report. (Each run uses its own pool with a fresh cache, so
// no comparison is served from a memoised result.)
func TestShardsWorkersReportBitIdentical(t *testing.T) {
	spec := runner.Spec{Cells: "16x16x32", Layout: "2x2x2", CGs: 8, Variant: "acc.async",
		Steps: 3, Report: true, Trace: true}

	run := func(workers, shards int) []byte {
		t.Helper()
		s := spec
		s.Shards = shards
		pool := NewPool(workers, runner.NewMemoryCache(0), nil)
		defer pool.Close()
		res, err := pool.Submit(s).Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if res.Sim == nil || res.Sim.Obs == nil || res.Sim.Obs.Samples == 0 {
			t.Fatalf("workers=%d shards=%d: no flight-recorder report", workers, shards)
		}
		blob, err := json.Marshal(res.Sim)
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}

	ref := run(1, 0)
	for _, c := range []struct{ workers, shards int }{{4, 0}, {1, 2}, {4, 4}} {
		if got := run(c.workers, c.shards); string(got) != string(ref) {
			t.Fatalf("workers=%d shards=%d: report differs from workers=1 serial run",
				c.workers, c.shards)
		}
	}
}

// TestReportExcludedFromHash: Report and Trace are reporting knobs — they
// must not change the content hash, so a report-bearing request aliases the
// same cache entry as the plain spec.
func TestReportExcludedFromHash(t *testing.T) {
	base := runner.Spec{Cells: "16x16x32", Layout: "2x2x2", CGs: 8, Variant: "acc.async", Steps: 3}
	withReport := base
	withReport.Report = true
	withReport.Trace = true
	if base.Hash() != withReport.Hash() {
		t.Fatal("Report/Trace changed the content hash; they must stay cache-transparent")
	}
}
