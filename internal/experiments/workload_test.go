package experiments

import (
	"strings"
	"testing"

	"sunuintah/internal/runner"
	"sunuintah/internal/workload"
)

// TestWorkloadArtifact is the "make workload" determinism gate: the
// scenario sweep plus record-and-replay leg must render byte-identically
// regardless of pool concurrency and engine sharding.
func TestWorkloadArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("workload artifact is not a -short test")
	}
	const steps = 2
	render := func(workers, shards int) string {
		s := NewSweepWithPool(Options{Shards: shards},
			NewPool(workers, runner.NewMemoryCache(0), nil))
		defer s.Pool().Close()
		out, err := Workload(s, steps)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := render(1, 0)
	parallel := render(4, 0)
	if serial != parallel {
		t.Fatalf("workload artifact depends on worker count:\n--- 1 worker ---\n%s\n--- 4 workers ---\n%s", serial, parallel)
	}
	sharded := render(4, 2)
	if serial != sharded {
		t.Fatalf("workload artifact depends on shard count:\n--- serial ---\n%s\n--- 2 shards ---\n%s", serial, sharded)
	}
	for _, want := range []string{
		"scenario mixed-default", "steady", "diurnal", "regrid-storm",
		"recorded", "trace replay", "replay-0",
	} {
		if !strings.Contains(serial, want) {
			t.Fatalf("artifact missing %q:\n%s", want, serial)
		}
	}
	// The storm phase must actually mix all three models.
	storm := serial[strings.Index(serial, "regrid-storm"):]
	storm = storm[:strings.Index(storm, "\n")]
	for _, model := range []string{"burgers", "advection", "heat3d"} {
		if !strings.Contains(storm, model+":") {
			t.Fatalf("storm row missing model %s: %q", model, storm)
		}
	}
}

// TestRunScenarioAggregates pins the per-phase aggregation on a tiny
// hand-built scenario.
func TestRunScenarioAggregates(t *testing.T) {
	sc := &workload.Scenario{
		Name: "tiny",
		Seed: 3,
		Base: workload.Template{
			Cells: "8x8x16", Layout: "1x1x2", CGs: 2,
			Variant: "acc.async", Steps: 2,
		},
		Phases: []workload.Phase{
			{Name: "b", Duration: 2, Arrival: workload.Arrival{Pattern: workload.PatternBurst, Burst: 2, Every: 1}},
			{Name: "h", Duration: 1, Arrival: workload.Arrival{Pattern: workload.PatternConstant, Rate: 2},
				Jobs: &workload.Template{Physics: "heat3d"}},
		},
	}
	s := NewSweepWithPool(Options{}, NewPool(2, runner.NewMemoryCache(0), nil))
	defer s.Pool().Close()
	rep, err := RunScenario(s, sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs == 0 || rep.Makespan <= 0 {
		t.Fatalf("bad report: %+v", rep)
	}
	if len(rep.Rows) != 2 || rep.Rows[0].Phase != "b" || rep.Rows[1].Phase != "h" {
		t.Fatalf("rows out of phase order: %+v", rep.Rows)
	}
	if rep.Rows[0].Jobs != 4 { // 2 waves x burst 2
		t.Fatalf("burst phase jobs = %d, want 4", rep.Rows[0].Jobs)
	}
	if rep.Rows[0].Models["burgers"] != 4 || len(rep.Rows[0].Models) != 1 {
		t.Fatalf("burst phase models = %v", rep.Rows[0].Models)
	}
	if rep.Rows[1].Jobs > 0 && rep.Rows[1].Models["heat3d"] != rep.Rows[1].Jobs {
		t.Fatalf("heat phase models = %v for %d jobs", rep.Rows[1].Models, rep.Rows[1].Jobs)
	}
	if rep.Rows[0].MeanWall <= 0 {
		t.Fatalf("mean wall missing: %+v", rep.Rows[0])
	}
}

// TestRunScenarioRejectsBadSpecs ensures validation runs before any job
// is submitted.
func TestRunScenarioRejectsBadSpecs(t *testing.T) {
	sc := &workload.Scenario{
		Name: "bad",
		Base: workload.Template{Cells: "8x8x8", CGs: 2, Variant: "no-such-variant", Steps: 1},
		Phases: []workload.Phase{
			{Name: "p", Duration: 1, Arrival: workload.Arrival{Pattern: workload.PatternBurst, Burst: 1, Every: 1}},
		},
	}
	s := NewSweepWithPool(Options{}, NewPool(1, runner.NewMemoryCache(0), nil))
	defer s.Pool().Close()
	if _, err := RunScenario(s, sc); err == nil {
		t.Fatal("scenario with unknown variant accepted")
	}
}
