package experiments

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the export golden file")

func buildExportBytes(t *testing.T, jobs int) []byte {
	t.Helper()
	s := NewSweep(Options{Steps: 1, Jobs: jobs})
	defer s.Close()
	e, err := BuildExport(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestExportGolden locks the full JSON export down to the byte: it must
// be stable under the parallel execution order (serial and 8-worker runs
// identical) and match the checked-in golden file. Regenerate with
//
//	go test ./internal/experiments -run TestExportGolden -update
//
// after an intentional cost-model or export-schema change.
func TestExportGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	parallel := buildExportBytes(t, 8)
	serial := buildExportBytes(t, 1)
	if !bytes.Equal(parallel, serial) {
		t.Fatal("export differs between serial and parallel execution")
	}

	golden := filepath.Join("testdata", "export.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, parallel, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", golden, len(parallel))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create it): %v", err)
	}
	if !bytes.Equal(parallel, want) {
		t.Errorf("export deviates from %s (%d vs %d bytes); if the cost model changed intentionally, regenerate with -update",
			golden, len(parallel), len(want))
	}

	// The golden bytes must round-trip as structured data.
	var back Export
	if err := json.Unmarshal(want, &back); err != nil {
		t.Fatalf("golden export does not round-trip: %v", err)
	}
	if len(back.TableI) != 7 || len(back.TableV) != 7 || len(back.Figure5) != 28 {
		t.Errorf("round-tripped export incomplete: %d/%d/%d", len(back.TableI), len(back.TableV), len(back.Figure5))
	}
	if back.TableVI == nil || back.TableVI.Average == 0 {
		t.Error("round-tripped table VI missing")
	}
}
