package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// Export is the machine-readable form of the full evaluation: every table
// and figure as structured data, for plotting or regression tracking.
type Export struct {
	// Steps per case and the sweep options used.
	Steps int `json:"steps"`

	TableI   []TableIRow     `json:"tableI"`
	TableIII []TableIIIRow   `json:"tableIII"`
	TableV   []TableVRow     `json:"tableV"`
	TableVI  *exportImprove  `json:"tableVI"`
	TableVII *exportImprove  `json:"tableVII"`
	Figure5  []Figure5Series `json:"figure5"`
	Figure6  *BoostFigure    `json:"figure6"`
	Figure7  *BoostFigure    `json:"figure7"`
	Figure8  *BoostFigure    `json:"figure8"`
	Figure9  []FlopsSeries   `json:"figure9And10"`
}

// exportImprove is ImprovementTable with NaN cells nulled for JSON.
type exportImprove struct {
	Vectorised bool         `json:"vectorised"`
	CGs        []int        `json:"cgs"`
	Problems   []string     `json:"problems"`
	Cells      [][]*float64 `json:"cells"`
	Average    float64      `json:"average"`
	Best       float64      `json:"best"`
}

func exportImprovement(t *ImprovementTable) *exportImprove {
	out := &exportImprove{
		Vectorised: t.Vectorised,
		CGs:        t.CGs,
		Problems:   t.Problems,
		Average:    t.Average(),
		Best:       t.Best(),
	}
	for _, row := range t.Cells {
		var er []*float64
		for _, v := range row {
			if math.IsNaN(v) {
				er = append(er, nil)
			} else {
				v := v
				er = append(er, &v)
			}
		}
		out.Cells = append(out.Cells, er)
	}
	return out
}

// BuildExport runs (or reuses) every artifact in the sweep and assembles
// the machine-readable bundle.
func BuildExport(s *Sweep, steps int) (*Export, error) {
	s.PrefetchEvaluation()
	e := &Export{Steps: steps}
	var err error
	if e.TableI, err = TableI(s); err != nil {
		return nil, fmt.Errorf("table I: %w", err)
	}
	if e.TableIII, err = TableIII(s); err != nil {
		return nil, fmt.Errorf("table III: %w", err)
	}
	if e.TableV, err = TableV(s); err != nil {
		return nil, fmt.Errorf("table V: %w", err)
	}
	t6, err := AsyncImprovement(s, false)
	if err != nil {
		return nil, fmt.Errorf("table VI: %w", err)
	}
	e.TableVI = exportImprovement(t6)
	t7, err := AsyncImprovement(s, true)
	if err != nil {
		return nil, fmt.Errorf("table VII: %w", err)
	}
	e.TableVII = exportImprovement(t7)
	if e.Figure5, err = Figure5(s); err != nil {
		return nil, fmt.Errorf("figure 5: %w", err)
	}
	for figNum, dst := range map[int]**BoostFigure{6: &e.Figure6, 7: &e.Figure7, 8: &e.Figure8} {
		idx := map[int]int{6: 0, 7: 3, 8: 6}[figNum]
		fig, err := Boosts(s, Problems[idx])
		if err != nil {
			return nil, fmt.Errorf("figure %d: %w", figNum, err)
		}
		*dst = fig
	}
	if e.Figure9, err = Figure9And10(s); err != nil {
		return nil, fmt.Errorf("figures 9/10: %w", err)
	}
	return e, nil
}

// WriteJSON serialises the export with indentation.
func (e *Export) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e)
}
