package experiments

import (
	"errors"
	"fmt"

	"sunuintah/internal/core"
	"sunuintah/internal/sw26010"
)

// CaseKey identifies one experimental cell.
type CaseKey struct {
	Problem string
	CGs     int
	Variant string
}

// CaseResult is a memoised run outcome. Infeasible cells (the paper's
// memory-allocation crashes) carry Feasible == false.
type CaseResult struct {
	Key      CaseKey
	Feasible bool
	Result   *core.Result
}

// Sweep lazily runs and memoises experimental cells. It is not safe for
// concurrent use.
type Sweep struct {
	opt   Options
	cache map[CaseKey]*CaseResult
	// Progress, when non-nil, is called before each fresh run.
	Progress func(key CaseKey)
}

// NewSweep creates an empty sweep with the given extra options.
func NewSweep(opt Options) *Sweep {
	return &Sweep{opt: opt, cache: map[CaseKey]*CaseResult{}}
}

// Run returns the memoised result of one cell, running it on first use.
// Out-of-memory failures are recorded as infeasible rather than errors,
// mirroring the paper's starred Table III rows.
func (s *Sweep) Run(prob ProblemSpec, cgs int, v Variant) (*CaseResult, error) {
	key := CaseKey{prob.Name, cgs, v.Name}
	if r, ok := s.cache[key]; ok {
		return r, nil
	}
	if s.Progress != nil {
		s.Progress(key)
	}
	res, err := RunCase(prob, cgs, v, s.opt)
	if err != nil {
		var oom *sw26010.ErrOutOfMemory
		if errors.As(err, &oom) {
			r := &CaseResult{Key: key, Feasible: false}
			s.cache[key] = r
			return r, nil
		}
		return nil, fmt.Errorf("case %v: %w", key, err)
	}
	r := &CaseResult{Key: key, Feasible: true, Result: res}
	s.cache[key] = r
	return r, nil
}

// PerStepSeconds returns the wall time per timestep of a feasible cell.
func (r *CaseResult) PerStepSeconds() float64 {
	if !r.Feasible {
		return 0
	}
	return float64(r.Result.PerStep)
}

// ScalingSeries runs a problem with one variant across every CG count from
// the problem's minimum to 128 and returns the feasible results keyed by
// CG count.
func (s *Sweep) ScalingSeries(prob ProblemSpec, v Variant) (map[int]*CaseResult, error) {
	out := map[int]*CaseResult{}
	for _, cgs := range CGCounts {
		if cgs < prob.MinCGs {
			continue
		}
		r, err := s.Run(prob, cgs, v)
		if err != nil {
			return nil, err
		}
		if r.Feasible {
			out[cgs] = r
		}
	}
	return out, nil
}

// Improvement is the paper's asynchronous-scheduler metric
// (T_sync - T_async) / T_async, in percent.
func Improvement(tSync, tAsync float64) float64 {
	return (tSync - tAsync) / tAsync * 100
}

// StrongScalingEfficiency is T(min)*min / (T(n)*n), in percent.
func StrongScalingEfficiency(tMin float64, minCGs int, tN float64, nCGs int) float64 {
	return tMin * float64(minCGs) / (tN * float64(nCGs)) * 100
}
