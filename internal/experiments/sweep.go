package experiments

import (
	"context"
	"fmt"
	"sync"

	"sunuintah/internal/core"
	"sunuintah/internal/runner"
)

// CaseKey identifies one experimental cell.
type CaseKey struct {
	Problem string
	CGs     int
	Variant string
}

// CaseResult is a memoised run outcome. Infeasible cells (the paper's
// memory-allocation crashes) carry Feasible == false.
type CaseResult struct {
	Key      CaseKey
	Feasible bool
	Result   *core.Result
}

// Sweep runs and memoises experimental cells on top of a runner pool:
// independent cells execute concurrently across the pool's workers, and
// the pool's content-addressed cache makes repeated artifacts (and, with
// a disk cache, repeated invocations) near-free. Sweep is safe for
// concurrent use.
type Sweep struct {
	opt     Options
	pool    *Pool
	ownPool bool

	mu   sync.Mutex
	memo map[CaseKey]*CaseResult
	jobs map[CaseKey][]*runner.Job // pending submissions, one job per repeat
	// Progress, when non-nil, is called before each fresh (non-memoised)
	// run. For richer progress (done/total, hit rate) attach an event
	// handler to the pool instead.
	Progress func(key CaseKey)
}

// NewSweep creates a sweep with its own pool: opt.Jobs workers (default
// GOMAXPROCS) and an in-memory result cache. Use NewSweepWithPool to
// share a pool (and its cache) across sweeps or with a server.
func NewSweep(opt Options) *Sweep {
	s := NewSweepWithPool(opt, NewPool(opt.Jobs, runner.NewMemoryCache(0), nil))
	s.ownPool = true
	return s
}

// NewSweepWithPool creates a sweep executing on an existing pool.
func NewSweepWithPool(opt Options, pool *Pool) *Sweep {
	return &Sweep{
		opt:  opt,
		pool: pool,
		memo: map[CaseKey]*CaseResult{},
		jobs: map[CaseKey][]*runner.Job{},
	}
}

// Pool returns the sweep's underlying runner pool.
func (s *Sweep) Pool() *Pool { return s.pool }

// Close shuts down the sweep's pool if the sweep owns it.
func (s *Sweep) Close() {
	if s.ownPool {
		s.pool.Close()
	}
}

// specs expands one cell into its job specs: the paper's best-of-k
// protocol turns a noisy case into k jobs with distinct seeds, reduced by
// min at collection time.
func (s *Sweep) specs(prob ProblemSpec, cgs int, v Variant) []runner.Spec {
	repeats := s.opt.Repeats
	if repeats <= 1 || s.opt.Noise == 0 {
		repeats = 1
	}
	out := make([]runner.Spec, repeats)
	for rep := 0; rep < repeats; rep++ {
		out[rep] = SpecFor(prob, cgs, v, s.opt, uint64(rep+1))
	}
	return out
}

// submit returns the cell's jobs, submitting them on first use: each
// cell is handed to the pool exactly once per sweep, whether it is first
// touched by Prefetch or by Run.
func (s *Sweep) submit(key CaseKey, prob ProblemSpec, cgs int, v Variant) []*runner.Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, done := s.memo[key]; done {
		return nil
	}
	if jobs, ok := s.jobs[key]; ok {
		return jobs
	}
	specs := s.specs(prob, cgs, v)
	jobs := make([]*runner.Job, len(specs))
	for i, spec := range specs {
		jobs[i] = s.pool.Submit(spec)
	}
	s.jobs[key] = jobs
	return jobs
}

// Prefetch submits a cell's jobs without waiting for them, so later Run
// calls collect already-executing work. Memoised cells are skipped; the
// pool dedups everything else.
func (s *Sweep) Prefetch(prob ProblemSpec, cgs int, v Variant) {
	key := CaseKey{prob.Name, cgs, v.Name}
	s.submit(key, prob, cgs, v)
}

// PrefetchSeries submits a whole scaling series (every CG count from the
// problem's minimum upward) without waiting.
func (s *Sweep) PrefetchSeries(prob ProblemSpec, v Variant) {
	for _, cgs := range CGCounts {
		if cgs < prob.MinCGs {
			continue
		}
		s.Prefetch(prob, cgs, v)
	}
}

// Run returns the memoised result of one cell, executing it on the pool
// on first use. Out-of-memory failures are recorded as infeasible rather
// than errors, mirroring the paper's starred Table III rows.
func (s *Sweep) Run(prob ProblemSpec, cgs int, v Variant) (*CaseResult, error) {
	key := CaseKey{prob.Name, cgs, v.Name}
	s.mu.Lock()
	if r, ok := s.memo[key]; ok {
		s.mu.Unlock()
		return r, nil
	}
	_, pending := s.jobs[key]
	progress := s.Progress
	s.mu.Unlock()
	if progress != nil && !pending {
		progress(key)
	}

	jobs := s.submit(key, prob, cgs, v)
	if jobs == nil { // memoised by a concurrent Run between the checks
		s.mu.Lock()
		r := s.memo[key]
		s.mu.Unlock()
		return r, nil
	}
	results := make([]*runner.Result, len(jobs))
	for i, j := range jobs {
		res, err := j.Wait(context.Background())
		if err != nil {
			return nil, fmt.Errorf("case %v: %w", key, err)
		}
		results[i] = res
	}
	best := runner.MinResult(results)

	r := &CaseResult{Key: key, Feasible: best.Feasible, Result: best.Sim}
	s.mu.Lock()
	if prev, ok := s.memo[key]; ok {
		r = prev // a concurrent Run won the memoisation race
	} else {
		s.memo[key] = r
		delete(s.jobs, key)
	}
	s.mu.Unlock()
	return r, nil
}

// RunSpec executes an arbitrary spec on the sweep's pool, bypassing the
// cell memo (the pool's content-addressed cache still applies). Ablations
// use it for cells outside the CaseKey space.
func (s *Sweep) RunSpec(spec runner.Spec) (*runner.Result, error) {
	return s.pool.Run(context.Background(), spec)
}

// PerStepSeconds returns the wall time per timestep of a feasible cell.
func (r *CaseResult) PerStepSeconds() float64 {
	if !r.Feasible {
		return 0
	}
	return float64(r.Result.PerStep)
}

// ScalingSeries runs a problem with one variant across every CG count
// from the problem's minimum to 128 and returns the feasible results
// keyed by CG count. The whole series is prefetched before collection, so
// its points execute concurrently.
func (s *Sweep) ScalingSeries(prob ProblemSpec, v Variant) (map[int]*CaseResult, error) {
	s.PrefetchSeries(prob, v)
	out := map[int]*CaseResult{}
	for _, cgs := range CGCounts {
		if cgs < prob.MinCGs {
			continue
		}
		r, err := s.Run(prob, cgs, v)
		if err != nil {
			return nil, err
		}
		if r.Feasible {
			out[cgs] = r
		}
	}
	return out, nil
}

// Improvement is the paper's asynchronous-scheduler metric
// (T_sync - T_async) / T_async, in percent.
func Improvement(tSync, tAsync float64) float64 {
	return (tSync - tAsync) / tAsync * 100
}

// StrongScalingEfficiency is T(min)*min / (T(n)*n), in percent.
func StrongScalingEfficiency(tMin float64, minCGs int, tN float64, nCGs int) float64 {
	return tMin * float64(minCGs) / (tN * float64(nCGs)) * 100
}
