package experiments

import (
	"context"
	"fmt"
	"strings"

	"sunuintah/internal/obs"
	"sunuintah/internal/physics"
	"sunuintah/internal/runner"
	"sunuintah/internal/workload"
)

// The workload artifact exercises the declarative scenario layer end to
// end: the default mixed-physics scenario (steady trickle, diurnal
// modulation, a regrid storm cycling patch layouts) expands into a job
// schedule, every job runs on the sweep's pool, and the per-phase
// aggregate is printed. A second leg records one representative mixed
// run with the flight recorder, folds its report into per-window phase
// stats, converts the trace back into a synthetic replay scenario and
// runs that through the same path — proving record-and-replay closes
// the loop. Submission and collection order are fixed and every cell is
// deterministic, so the artifact is byte-identical across worker and
// shard counts.

// ScenarioPhaseRow aggregates the runs of one scenario phase.
type ScenarioPhaseRow struct {
	Phase string
	Jobs  int
	// Models counts expanded jobs by participating physics model (a
	// mixed job counts once per participating model).
	Models map[string]int
	// MeanWall is the mean virtual wall seconds per job.
	MeanWall float64
	// Makespan is the latest virtual completion time of the phase's jobs
	// (arrival offset + run wall time), measuring how far work from this
	// phase stretches past its arrivals.
	Makespan float64
}

// ScenarioReport is the outcome of running one expanded scenario.
type ScenarioReport struct {
	Scenario string
	Jobs     int
	// Makespan is max over jobs of (arrival time + wall time).
	Makespan float64
	Rows     []ScenarioPhaseRow // scenario phase order
}

// RunScenario expands the scenario and runs every job on the sweep's
// pool: all jobs are submitted before any is collected, so the schedule
// saturates the workers, and collection follows expansion order, so the
// report is deterministic for a given scenario.
func RunScenario(s *Sweep, sc *workload.Scenario) (*ScenarioReport, error) {
	jobs, err := sc.Expand()
	if err != nil {
		return nil, err
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("experiments: scenario %q expands to no jobs", sc.Name)
	}
	for _, j := range jobs {
		if err := ValidateSpec(j.Spec); err != nil {
			return nil, fmt.Errorf("experiments: scenario %q: %w", sc.Name, err)
		}
	}
	handles := make([]*runner.Job, len(jobs))
	for i, j := range jobs {
		handles[i] = s.Pool().Submit(j.Spec)
	}

	rep := &ScenarioReport{Scenario: sc.Name, Jobs: len(jobs)}
	rows := map[string]*ScenarioPhaseRow{}
	for _, ph := range sc.Phases {
		row := &ScenarioPhaseRow{Phase: ph.Name, Models: map[string]int{}}
		rows[ph.Name] = row
		rep.Rows = append(rep.Rows, ScenarioPhaseRow{}) // placeholder, filled below
	}
	wallSums := map[string]float64{}
	for i, h := range handles {
		res, err := h.Wait(context.Background())
		if err != nil {
			return nil, fmt.Errorf("experiments: scenario %q job %d (%s): %w",
				sc.Name, i, jobs[i].Spec, err)
		}
		if !res.Feasible || res.Sim == nil {
			return nil, fmt.Errorf("experiments: scenario %q job %d (%s): infeasible",
				sc.Name, i, jobs[i].Spec)
		}
		row := rows[jobs[i].Phase]
		row.Jobs++
		sel, err := physics.Parse(jobs[i].Spec.Physics)
		if err != nil {
			return nil, err
		}
		for _, sh := range sel.Shares {
			row.Models[sh.Name]++
		}
		wall := float64(res.Sim.WallTime)
		wallSums[jobs[i].Phase] += wall
		if done := jobs[i].At + wall; done > row.Makespan {
			row.Makespan = done
		}
	}
	for i, ph := range sc.Phases {
		row := rows[ph.Name]
		if row.Jobs > 0 {
			row.MeanWall = wallSums[ph.Name] / float64(row.Jobs)
		}
		if row.Makespan > rep.Makespan {
			rep.Makespan = row.Makespan
		}
		rep.Rows[i] = *row
	}
	return rep, nil
}

// Format renders the scenario report as a fixed-width table.
func (r *ScenarioReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s: %d jobs, virtual makespan %.4g s\n", r.Scenario, r.Jobs, r.Makespan)
	fmt.Fprintf(&b, "%-14s %5s %9s %12s %10s  %s\n",
		"phase", "jobs", "wall(ms)", "makespan(s)", "models", "mix")
	for _, row := range r.Rows {
		var mix []string
		for _, name := range physics.Names() {
			if n := row.Models[name]; n > 0 {
				mix = append(mix, fmt.Sprintf("%s:%d", name, n))
			}
		}
		fmt.Fprintf(&b, "%-14s %5d %9.3f %12.4g %10d  %s\n",
			row.Phase, row.Jobs, row.MeanWall*1e3, row.Makespan,
			len(row.Models), strings.Join(mix, " "))
	}
	return b.String()
}

// replaySpec is the representative mixed-physics case the workload
// artifact records and replays: all three models on one layout, flight
// recorder and tracer attached.
func replaySpec(steps int) runner.Spec {
	if steps <= 0 {
		steps = 3
	}
	return runner.Spec{
		Cells:   "16x16x32",
		Layout:  "2x2x4",
		CGs:     4,
		Variant: "acc.async",
		Steps:   steps,
		Physics: "mix:burgers=1,advection=1,heat3d=1,seed=3",
		Report:  true,
		Trace:   true,
	}
}

// Workload is the "workload" artifact: the default scenario sweep plus
// the record-and-replay leg.
func Workload(s *Sweep, steps int) (string, error) {
	var b strings.Builder

	rep, err := RunScenario(s, workload.DefaultScenario())
	if err != nil {
		return "", err
	}
	b.WriteString(rep.Format())
	b.WriteString("\n")

	// Record one representative mixed run. The run bypasses the result
	// cache deliberately: Report/Trace are excluded from the content
	// hash, so a cached result could legitimately lack the timeline this
	// leg needs.
	spec := replaySpec(steps)
	res, err := Exec(context.Background(), spec)
	if err != nil {
		return "", err
	}
	if !res.Feasible || res.Sim == nil {
		return "", fmt.Errorf("experiments: workload replay case %s is infeasible", spec)
	}

	replay, err := workload.FromTrace(res.Sim.Trace, workload.ReplayOptions{
		Bins:        3,
		TasksPerJob: 16,
		Base: workload.Template{
			Cells: spec.Cells, Layout: spec.Layout, CGs: spec.CGs,
			Variant: spec.Variant, Steps: spec.Steps,
		},
		Seed: 7,
	})
	if err != nil {
		return "", err
	}

	// Fold the recorded run's flight report over the replay windows —
	// the per-phase view of the run the replay scenario was cut from.
	var windows []obs.PhaseWindow
	start := 0.0
	for _, ph := range replay.Phases {
		windows = append(windows, obs.PhaseWindow{Name: ph.Name, Start: start, End: start + ph.Duration})
		start += ph.Duration
	}
	if len(windows) > 0 {
		// The final samples' midpoints can lie past the run end; stretch
		// the last window so the fold covers the whole grid.
		windows[len(windows)-1].End = start * 2
	}
	fmt.Fprintf(&b, "recorded %s:\n", spec)
	obs.WritePhaseTable(&b, res.Sim.Obs.FoldPhases(windows))
	b.WriteString("\n")

	replayRep, err := RunScenario(s, replay)
	if err != nil {
		return "", fmt.Errorf("experiments: trace replay: %w", err)
	}
	b.WriteString("trace replay of the recorded run:\n")
	b.WriteString(replayRep.Format())
	return b.String(), nil
}
