package experiments

import (
	"fmt"
	"sort"

	"sunuintah/internal/perf"
)

// Artifact names, in the paper's presentation order.
var artifactOrder = []string{
	"table1", "table2", "table3", "table4", "fig5", "table5", "table6",
	"table7", "fig6", "fig7", "fig8", "fig9", "fig10",
	"ablation-dma", "ablation-packing", "ablation-groups", "ablation-tiles",
	"chaos", "workload", "summary",
}

// artifactFuncs renders each artifact from a sweep. steps parameterises
// the ablations, which run outside the sweep's fixed options.
var artifactFuncs = map[string]func(s *Sweep, steps int) (string, error){
	"table1": func(s *Sweep, _ int) (string, error) {
		rows, err := TableI(s)
		if err != nil {
			return "", err
		}
		return FormatTableI(rows), nil
	},
	"table2": func(*Sweep, int) (string, error) {
		return FormatTableII(perf.DefaultParams()), nil
	},
	"table3": func(s *Sweep, _ int) (string, error) {
		rows, err := TableIII(s)
		if err != nil {
			return "", err
		}
		return FormatTableIII(rows), nil
	},
	"table4": func(*Sweep, int) (string, error) {
		return FormatTableIV(), nil
	},
	"table5": func(s *Sweep, _ int) (string, error) {
		rows, err := TableV(s)
		if err != nil {
			return "", err
		}
		return FormatTableV(rows), nil
	},
	"table6": func(s *Sweep, _ int) (string, error) { return improvementArtifact(s, false) },
	"table7": func(s *Sweep, _ int) (string, error) { return improvementArtifact(s, true) },
	"fig5": func(s *Sweep, _ int) (string, error) {
		series, err := Figure5(s)
		if err != nil {
			return "", err
		}
		return FormatFigure5(series), nil
	},
	"fig6": func(s *Sweep, _ int) (string, error) { return boostArtifact(s, 6, 0) },
	"fig7": func(s *Sweep, _ int) (string, error) { return boostArtifact(s, 7, 3) },
	"fig8": func(s *Sweep, _ int) (string, error) { return boostArtifact(s, 8, 6) },
	"fig9": func(s *Sweep, _ int) (string, error) {
		series, err := Figure9And10(s)
		if err != nil {
			return "", err
		}
		return FormatFigure9(series), nil
	},
	"fig10": func(s *Sweep, _ int) (string, error) {
		series, err := Figure9And10(s)
		if err != nil {
			return "", err
		}
		return FormatFigure10(series), nil
	},
	"ablation-dma":     AblationAsyncDMA,
	"ablation-packing": AblationTilePacking,
	"ablation-groups":  AblationCPEGroups,
	"ablation-tiles":   AblationTileSize,
	"chaos":            Chaos,
	"workload":         Workload,
	"summary":          func(s *Sweep, _ int) (string, error) { return ShapeSummary(s) },
}

func improvementArtifact(s *Sweep, vectorised bool) (string, error) {
	t, err := AsyncImprovement(s, vectorised)
	if err != nil {
		return "", err
	}
	return t.Format() + fmt.Sprintf("average improvement: %.1f%%  best: %.1f%%\n", t.Average(), t.Best()), nil
}

func boostArtifact(s *Sweep, figNum, probIdx int) (string, error) {
	fig, err := Boosts(s, Problems[probIdx])
	if err != nil {
		return "", err
	}
	return fig.Format(figNum), nil
}

// ArtifactNames lists every artifact in presentation order.
func ArtifactNames() []string {
	return append([]string(nil), artifactOrder...)
}

// IsArtifact reports whether name is a known artifact.
func IsArtifact(name string) bool {
	_, ok := artifactFuncs[name]
	return ok
}

// RunArtifact renders one named artifact from the sweep.
func RunArtifact(s *Sweep, name string, steps int) (string, error) {
	fn, ok := artifactFuncs[name]
	if !ok {
		known := ArtifactNames()
		sort.Strings(known)
		return "", fmt.Errorf("experiments: unknown artifact %q (known: %v)", name, known)
	}
	return fn(s, steps)
}

// PrefetchEvaluation submits every cell of the full evaluation (the exact
// union the tables, figures and export need) without waiting, so a
// multi-artifact run saturates the pool from the start.
func (s *Sweep) PrefetchEvaluation() {
	accNames := []string{"acc.sync", "acc.async", "acc_simd.sync", "acc_simd.async"}
	for _, prob := range Problems {
		for _, name := range accNames {
			v, _ := VariantByName(name)
			s.PrefetchSeries(prob, v)
		}
		// Table III verifies the starred minima by attempting the
		// allocation one CG below each.
		if prob.MinCGs > 1 {
			v, _ := VariantByName("acc.async")
			s.Prefetch(prob, prob.MinCGs/2, v)
		}
	}
	// Figures 6-8 compare against the MPE-only baseline on the small,
	// medium and large problems.
	host, _ := VariantByName("host.sync")
	for _, idx := range []int{0, 3, 6} {
		s.PrefetchSeries(Problems[idx], host)
	}
}
