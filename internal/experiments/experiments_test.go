package experiments

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestProblemsMatchTableIII(t *testing.T) {
	if len(Problems) != 7 {
		t.Fatalf("problems = %d, want 7", len(Problems))
	}
	// Spot-check the table's rows.
	first, last := Problems[0], Problems[6]
	if first.Name != "16x16x512" || first.GridSize.String() != "128x128x1024" {
		t.Errorf("first problem = %+v", first)
	}
	if first.MemBytes != 256<<20 {
		t.Errorf("first problem memory = %d, want 256 MB", first.MemBytes)
	}
	if last.Name != "128x128x512" || last.GridSize.String() != "1024x1024x1024" {
		t.Errorf("last problem = %+v", last)
	}
	if last.MemBytes != 16<<30 {
		t.Errorf("last problem memory = %d, want 16 GB", last.MemBytes)
	}
	if last.MinCGs != 8 {
		t.Errorf("last problem min CGs = %d, want 8", last.MinCGs)
	}
	// Sizes double round-robin along x and y.
	for i := 1; i < len(Problems); i++ {
		if Problems[i].GridSize.Volume() != 2*Problems[i-1].GridSize.Volume() {
			t.Errorf("problem %d does not double problem %d", i, i-1)
		}
	}
}

func TestVariantsMatchTableIV(t *testing.T) {
	if len(Variants) != 5 {
		t.Fatalf("variants = %d, want 5", len(Variants))
	}
	names := []string{"host.sync", "acc.sync", "acc_simd.sync", "acc.async", "acc_simd.async"}
	for i, want := range names {
		if Variants[i].Name != want {
			t.Errorf("variant %d = %q, want %q", i, Variants[i].Name, want)
		}
	}
	if _, err := VariantByName("nope"); err == nil {
		t.Error("unknown variant should error")
	}
	if _, err := ProblemByName("nope"); err == nil {
		t.Error("unknown problem should error")
	}
}

func TestMetricHelpers(t *testing.T) {
	if got := Improvement(1.2, 1.0); math.Abs(got-20) > 1e-12 {
		t.Errorf("Improvement = %v", got)
	}
	// Perfect scaling: doubling CGs halves time.
	if got := StrongScalingEfficiency(1.0, 1, 1.0/128, 128); math.Abs(got-100) > 1e-9 {
		t.Errorf("efficiency = %v", got)
	}
	// Half-perfect.
	if got := StrongScalingEfficiency(1.0, 1, 1.0/64, 128); math.Abs(got-50) > 1e-9 {
		t.Errorf("efficiency = %v", got)
	}
}

func TestSweepMemoises(t *testing.T) {
	s := NewSweep(Options{Steps: 1})
	runs := 0
	s.Progress = func(CaseKey) { runs++ }
	prob := Problems[0]
	v, _ := VariantByName("acc.async")
	if _, err := s.Run(prob, 1, v); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(prob, 1, v); err != nil {
		t.Fatal(err)
	}
	if runs != 1 {
		t.Fatalf("sweep ran %d times, want memoised single run", runs)
	}
}

func TestSweepRecordsInfeasibleCases(t *testing.T) {
	s := NewSweep(Options{Steps: 1})
	prob, _ := ProblemByName("64x64x512") // 4 GB: crashes on one CG
	v, _ := VariantByName("acc.async")
	r, err := s.Run(prob, 1, v)
	if err != nil {
		t.Fatal(err)
	}
	if r.Feasible {
		t.Fatal("4 GB problem on one CG should be infeasible (Table III)")
	}
	r2, err := s.Run(prob, 2, v)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Feasible {
		t.Fatal("4 GB problem on two CGs should fit")
	}
}

func TestTableIStructure(t *testing.T) {
	s := NewSweep(Options{Steps: 1})
	rows, err := TableI(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		// FLOPs per cell in the paper's neighbourhood (299-311 with their
		// 36-flop software exp; ours counts a leaner exp).
		if r.FlopsPerCell < 200 || r.FlopsPerCell > 330 {
			t.Errorf("row %d flops/cell = %v", i, r.FlopsPerCell)
		}
		// Exponential share ~2/3 (paper: 215/311).
		if r.ExpFraction < 0.55 || r.ExpFraction > 0.75 {
			t.Errorf("row %d exp fraction = %v", i, r.ExpFraction)
		}
		// Rising with problem size (ghost dilution shrinks).
		if i > 0 && r.FlopsPerCell < rows[i-1].FlopsPerCell {
			t.Errorf("flops/cell not increasing at row %d", i)
		}
		// Ghosted cell counts match the paper exactly.
	}
	if rows[0].TotalCells != 17339400 {
		t.Errorf("16x16x512 ghosted cells = %d, want 17339400 (paper)", rows[0].TotalCells)
	}
	if rows[6].TotalCells != 1080045576 {
		t.Errorf("128x128x512 ghosted cells = %d, want 1080045576 (paper)", rows[6].TotalCells)
	}
	out := FormatTableI(rows)
	if !strings.Contains(out, "TABLE I") || !strings.Contains(out, "16x16x512") {
		t.Error("formatting broken")
	}
}

func TestTableIIIVerifiesStarredRows(t *testing.T) {
	s := NewSweep(Options{Steps: 1})
	rows, err := TableIII(s)
	if err != nil {
		t.Fatal(err)
	}
	starred := 0
	for _, r := range rows {
		if r.Starred {
			starred++
			if !r.OneCGOOM {
				t.Errorf("%s starred but no OOM verified below the minimum", r.Problem)
			}
		}
	}
	if starred != 3 {
		t.Fatalf("starred rows = %d, want 3 (Table III)", starred)
	}
}

func TestFormattersProduceOutput(t *testing.T) {
	if !strings.Contains(FormatTableIV(), "acc_simd.async") {
		t.Error("table IV formatting broken")
	}
}

// TestShapesLockIn is the calibration guard: the qualitative claims of the
// paper must keep holding as the code evolves. It runs a reduced sweep.
func TestShapesLockIn(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep")
	}
	s := NewSweep(Options{Steps: 3})

	// Async beats sync on the medium problem at small and mid CG counts.
	med, _ := ProblemByName("32x64x512")
	for _, cgs := range []int{1, 16} {
		sy, _ := VariantByName("acc.sync")
		as, _ := VariantByName("acc.async")
		rs, err := s.Run(med, cgs, sy)
		if err != nil {
			t.Fatal(err)
		}
		ra, err := s.Run(med, cgs, as)
		if err != nil {
			t.Fatal(err)
		}
		imp := Improvement(rs.PerStepSeconds(), ra.PerStepSeconds())
		if imp < 3 || imp > 45 {
			t.Errorf("async improvement at %d CGs = %.1f%%, want in (3,45)", cgs, imp)
		}
	}

	// At 128 CGs (one patch per rank) the improvement collapses toward
	// zero or slightly negative, the paper's observed anomaly region.
	{
		sy, _ := VariantByName("acc.sync")
		as, _ := VariantByName("acc.async")
		rs, _ := s.Run(med, 128, sy)
		ra, _ := s.Run(med, 128, as)
		imp := Improvement(rs.PerStepSeconds(), ra.PerStepSeconds())
		if imp > 3 || imp < -8 {
			t.Errorf("async improvement at 128 CGs = %.1f%%, want ~0", imp)
		}
	}

	// Offload boost in the paper's 2.7-6.0x band; SIMD adds 1.2-2.2x.
	small, _ := ProblemByName("16x16x512")
	for _, prob := range []ProblemSpec{small, med} {
		fig, err := Boosts(s, prob)
		if err != nil {
			t.Fatal(err)
		}
		for _, pt := range fig.Points {
			if pt.AccAsync < 2.5 || pt.AccAsync > 7.0 {
				t.Errorf("%s offload boost at %d CGs = %.2f", prob.Name, pt.CGs, pt.AccAsync)
			}
			extra := pt.SimdAsy / pt.AccAsync
			if extra < 1.1 || extra > 2.3 {
				t.Errorf("%s simd extra boost at %d CGs = %.2f", prob.Name, pt.CGs, extra)
			}
		}
	}

	// FP efficiency ~1% of peak, growing with problem size.
	large, _ := ProblemByName("128x128x512")
	v, _ := VariantByName("acc_simd.async")
	rLarge, err := s.Run(large, 8, v)
	if err != nil {
		t.Fatal(err)
	}
	if eff := rLarge.Result.Efficiency; eff < 0.006 || eff > 0.016 {
		t.Errorf("large-problem efficiency = %.4f, want ~0.01 (paper: 1.0-1.17%%)", eff)
	}
	rSmall, err := s.Run(small, 8, v)
	if err != nil {
		t.Fatal(err)
	}
	if rSmall.Result.Efficiency >= rLarge.Result.Efficiency {
		t.Error("efficiency should grow with problem size (Figure 10)")
	}

	// Strong scaling: sync scales better than async on the largest
	// problem (paper: 97.7% vs 83.1%), and small problems scale worst.
	sy, _ := VariantByName("acc_simd.sync")
	as, _ := VariantByName("acc_simd.async")
	effOf := func(prob ProblemSpec, v Variant) float64 {
		series, err := s.ScalingSeries(prob, v)
		if err != nil {
			t.Fatal(err)
		}
		return StrongScalingEfficiency(
			series[prob.MinCGs].PerStepSeconds(), prob.MinCGs,
			series[128].PerStepSeconds(), 128)
	}
	largeSync := effOf(large, sy)
	largeAsync := effOf(large, as)
	smallAsync := effOf(small, as)
	if largeSync < largeAsync {
		t.Errorf("sync (%.1f%%) should scale at least as well as async (%.1f%%) on the largest problem",
			largeSync, largeAsync)
	}
	if smallAsync >= largeAsync {
		t.Errorf("small problem (%.1f%%) should scale worse than large (%.1f%%)", smallAsync, largeAsync)
	}
	if smallAsync < 15 || smallAsync > 60 {
		t.Errorf("small-problem simd.async efficiency = %.1f%%, paper band ~31.7%%", smallAsync)
	}
	if largeSync < 85 {
		t.Errorf("large-problem simd.sync efficiency = %.1f%%, paper ~96.1%%", largeSync)
	}
}

func TestNoiseAndBestOfRepeats(t *testing.T) {
	prob := Problems[0]
	v, _ := VariantByName("acc.async")
	// Without noise, runs are bit-identical.
	a, err := RunCase(prob, 1, v, Options{Steps: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCase(prob, 1, v, Options{Steps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.PerStep != b.PerStep {
		t.Fatalf("noise-free runs differ: %v vs %v", a.PerStep, b.PerStep)
	}
	// Noise slows runs down; best-of-5 recovers part of it and is
	// deterministic given the seeds.
	noisy1, err := RunCase(prob, 1, v, Options{Steps: 1, Noise: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if noisy1.PerStep <= a.PerStep {
		t.Fatalf("noisy run (%v) should be slower than clean (%v)", noisy1.PerStep, a.PerStep)
	}
	best5, err := RunCase(prob, 1, v, Options{Steps: 1, Noise: 0.3, Repeats: 5})
	if err != nil {
		t.Fatal(err)
	}
	if best5.PerStep > noisy1.PerStep {
		t.Fatalf("best-of-5 (%v) worse than single noisy run (%v)", best5.PerStep, noisy1.PerStep)
	}
	again, err := RunCase(prob, 1, v, Options{Steps: 1, Noise: 0.3, Repeats: 5})
	if err != nil {
		t.Fatal(err)
	}
	if best5.PerStep != again.PerStep {
		t.Fatal("best-of-repeats should be deterministic")
	}
}

func TestExportJSONRoundTrips(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	s := NewSweep(Options{Steps: 1})
	e, err := BuildExport(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	for _, key := range []string{"tableI", "tableV", "tableVI", "figure5", "figure9And10"} {
		if back[key] == nil {
			t.Errorf("export missing %q", key)
		}
	}
	if len(e.TableI) != 7 || len(e.TableV) != 7 {
		t.Error("export tables incomplete")
	}
}
