package experiments

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"sunuintah/internal/core"
	"sunuintah/internal/grid"
	"sunuintah/internal/obs"
	"sunuintah/internal/perf"
	"sunuintah/internal/physics"
	"sunuintah/internal/runner"
	"sunuintah/internal/scheduler"
	"sunuintah/internal/sw26010"
)

// SpecFor builds the runner.Spec of one experimental cell under the given
// sweep options and noise seed. The Spec is self-contained: Exec needs
// nothing else to reproduce the run.
func SpecFor(prob ProblemSpec, cgs int, v Variant, opt Options, seed uint64) runner.Spec {
	steps := opt.Steps
	if steps <= 0 {
		steps = Steps
	}
	spec := runner.Spec{
		Problem:     prob.Name,
		CGs:         cgs,
		Variant:     v.Name,
		Steps:       steps,
		AsyncDMA:    opt.AsyncDMA,
		TilePacking: opt.TilePacking,
		CPEGroups:   opt.CPEGroups,
	}
	if opt.TileSize != (grid.IVec{}) {
		spec.TileSize = opt.TileSize.String()
	}
	if opt.Noise > 0 {
		spec.Noise = opt.Noise
		spec.Seed = seed
	}
	if !opt.Faults.Zero() {
		spec.Faults = opt.Faults
	}
	spec.Shards = opt.Shards
	spec.Optimistic = opt.Optimistic
	spec.Report = opt.Report
	spec.Trace = opt.Trace
	return spec
}

// ParseIVec parses an "XxYxZ" size string.
func ParseIVec(s string) (grid.IVec, error) {
	parts := strings.Split(s, "x")
	if len(parts) != 3 {
		return grid.IVec{}, fmt.Errorf("experiments: want AxBxC, got %q", s)
	}
	var v [3]int
	for i, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n <= 0 {
			return grid.IVec{}, fmt.Errorf("experiments: bad component %q in %q", p, s)
		}
		v[i] = n
	}
	return grid.IV(v[0], v[1], v[2]), nil
}

// ValidateSpec checks a spec's names and shape without building the
// simulation, so services can reject bad requests up front.
func ValidateSpec(spec runner.Spec) error {
	if _, err := VariantByName(spec.Variant); err != nil {
		return err
	}
	switch {
	case spec.Problem != "":
		if _, err := ProblemByName(spec.Problem); err != nil {
			return err
		}
	case spec.Cells != "":
		if _, err := ParseIVec(spec.Cells); err != nil {
			return err
		}
	default:
		return errors.New("experiments: spec needs a problem name or custom cells")
	}
	if spec.Layout != "" {
		if _, err := ParseIVec(spec.Layout); err != nil {
			return err
		}
	}
	if spec.TileSize != "" {
		if _, err := ParseIVec(spec.TileSize); err != nil {
			return err
		}
	}
	if spec.CGs <= 0 {
		return fmt.Errorf("experiments: spec needs a positive CG count, got %d", spec.CGs)
	}
	if spec.Steps <= 0 {
		return fmt.Errorf("experiments: spec needs positive steps, got %d", spec.Steps)
	}
	if spec.Shards < 0 {
		return fmt.Errorf("experiments: spec shards must be >= 0 (0 = serial engine), got %d", spec.Shards)
	}
	if _, err := physics.Parse(spec.Physics); err != nil {
		return err
	}
	return nil
}

// EstimateCost returns a cheap a-priori estimate of a spec's simulated
// compute demand in CPE-cluster seconds per core group: total cell
// updates times the calibrated per-cell kernel cost, spread over the
// spec's CGs. It never builds the simulation, so an admission layer can
// price a request in nanoseconds and shed expensive specs before cheap
// ones. Unresolvable specs estimate as 0 (validation rejects them
// elsewhere; admission should not double as a validator).
func EstimateCost(spec runner.Spec) float64 {
	var cells grid.IVec
	switch {
	case spec.Problem != "":
		prob, err := ProblemByName(spec.Problem)
		if err != nil {
			return 0
		}
		layout := PatchCounts
		if spec.Layout != "" {
			if l, err := ParseIVec(spec.Layout); err == nil {
				layout = l
			}
		}
		cells = prob.PatchSize.Mul(layout)
	case spec.Cells != "":
		c, err := ParseIVec(spec.Cells)
		if err != nil {
			return 0
		}
		cells = c
	default:
		return 0
	}
	p := perf.DefaultParams()
	cycles := p.CPECyclesPerCellScalar
	if v, err := VariantByName(spec.Variant); err == nil && v.SIMD {
		cycles /= p.SIMDSpeedup
	}
	cgs := float64(spec.CGs)
	if cgs < 1 {
		cgs = 1
	}
	steps := float64(spec.Steps)
	if steps < 1 {
		steps = 1
	}
	n := float64(cells.X) * float64(cells.Y) * float64(cells.Z)
	clusterRate := p.CPEClockHz * float64(p.NumCPEs)
	return n * steps * cycles / (clusterRate * cgs)
}

// SpecConfig resolves a Spec into the core configuration and problem it
// executes. Exec composes it with progress publishing and resilient
// running; it is exported so harnesses (benchgate's observability
// overhead metric) can run the same case with hand-controlled
// instrumentation knobs that Spec does not expose.
func SpecConfig(spec runner.Spec) (core.Config, core.Problem, error) {
	return specConfig(spec)
}

// specConfig resolves a Spec into the configuration and problem of its
// simulation.
func specConfig(spec runner.Spec) (core.Config, core.Problem, error) {
	fail := func(err error) (core.Config, core.Problem, error) {
		return core.Config{}, core.Problem{}, err
	}
	v, err := VariantByName(spec.Variant)
	if err != nil {
		return fail(err)
	}
	var cells, layout grid.IVec
	switch {
	case spec.Problem != "":
		prob, err := ProblemByName(spec.Problem)
		if err != nil {
			return fail(err)
		}
		layout = PatchCounts
		if spec.Layout != "" {
			if layout, err = ParseIVec(spec.Layout); err != nil {
				return fail(err)
			}
		}
		cells = prob.PatchSize.Mul(layout)
	case spec.Cells != "":
		if cells, err = ParseIVec(spec.Cells); err != nil {
			return fail(err)
		}
		layout = grid.IV(1, 1, 1)
		if spec.Layout != "" {
			if layout, err = ParseIVec(spec.Layout); err != nil {
				return fail(err)
			}
		}
	default:
		return fail(errors.New("experiments: spec needs a problem name or custom cells"))
	}
	if spec.CGs <= 0 {
		return fail(fmt.Errorf("experiments: spec needs a positive CG count, got %d", spec.CGs))
	}
	if spec.Steps <= 0 {
		return fail(fmt.Errorf("experiments: spec needs positive steps, got %d", spec.Steps))
	}

	sel, err := physics.Parse(spec.Physics)
	if err != nil {
		return fail(err)
	}
	problem, err := sel.NewProblem(cells, layout, v.SIMD)
	if err != nil {
		return fail(err)
	}
	cfg := core.Config{
		Cells:       cells,
		PatchCounts: layout,
		NumCGs:      spec.CGs,
		Scheduler: scheduler.Config{
			Mode:        v.Mode,
			SIMD:        v.SIMD,
			Functional:  spec.Functional,
			AsyncDMA:    spec.AsyncDMA,
			TilePacking: spec.TilePacking,
			CPEGroups:   spec.CPEGroups,
		},
	}
	if spec.TileSize != "" {
		ts, err := ParseIVec(spec.TileSize)
		if err != nil {
			return fail(err)
		}
		cfg.Scheduler.TileSize = ts
	}
	if spec.Noise > 0 {
		params := perf.DefaultParams()
		params.NoiseFraction = spec.Noise
		params.NoiseSeed = spec.Seed
		cfg.Params = &params
	}
	if !spec.Faults.Zero() {
		cfg.Faults = spec.Faults
	}
	cfg.Shards = spec.Shards
	cfg.Optimistic = spec.Optimistic
	if spec.Report || spec.Trace {
		cfg.Obs = &obs.Options{Trace: spec.Trace}
	}
	return cfg, problem, nil
}

// buildSpecCase resolves a Spec into a ready-to-run simulation.
func buildSpecCase(spec runner.Spec) (*core.Simulation, error) {
	cfg, problem, err := specConfig(spec)
	if err != nil {
		return nil, err
	}
	return core.NewSimulation(cfg, problem)
}

// progress is the process-wide live-progress bus. Executions publish one
// event per rank-step under the spec's content hash as the topic, so any
// holder of the same spec (sunserver's SSE handler, a test) can follow a
// run without threading a sink through the pool — Submit carries no
// per-job context. Publishing to a topic nobody subscribed to is a cheap
// no-op, so Exec publishes unconditionally.
var progress = obs.NewProgressBus()

// Progress returns the process-wide job progress bus. Topics are
// runner.Spec content hashes (Spec.Hash), matching what Exec publishes.
func Progress() *obs.ProgressBus { return progress }

// Exec is the runner.ExecFunc for experimental cells: it resolves the
// spec, builds the simulation and runs it. Out-of-memory failures (the
// paper's Table III crashes) become infeasible results so the cache
// remembers them; every other failure is an error.
func Exec(ctx context.Context, spec runner.Spec) (*runner.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	run := func() (*core.Result, error) {
		cfg, problem, err := specConfig(spec)
		if err != nil {
			return nil, err
		}
		topic := spec.Hash()
		cfg.Progress = func(u core.ProgressUpdate) {
			progress.Publish(topic, obs.ProgressEvent{
				Rank: u.Rank, Step: u.Step, Steps: u.Steps,
				Done: u.Done, Total: u.Total,
				VirtualSeconds: u.VirtualSeconds,
			})
		}
		// Fault-plan specs run resiliently: a CG crash tears the run down
		// and checkpoint/restart carries it to completion. With no plan
		// RunResilient is exactly NewSimulation + Run.
		return core.RunResilient(cfg, problem, spec.Steps)
	}
	res, err := run()
	if err != nil {
		var oom *sw26010.ErrOutOfMemory
		if errors.As(err, &oom) {
			return &runner.Result{Feasible: false}, nil
		}
		return nil, fmt.Errorf("spec %s: %w", spec, err)
	}
	return &runner.Result{Feasible: true, Sim: res}, nil
}

// NewPool builds a runner pool wired to Exec. workers <= 0 means
// GOMAXPROCS; cache and onEvent may be nil.
func NewPool(workers int, cache runner.Cache, onEvent func(runner.Event)) *Pool {
	p, err := runner.New(runner.Config{
		Workers: workers,
		Exec:    Exec,
		Cache:   cache,
		Retries: 2,
		OnEvent: onEvent,
	})
	if err != nil {
		panic(err) // unreachable: Exec is always non-nil
	}
	return p
}

// Pool is re-exported so sweep construction sites read naturally.
type Pool = runner.Pool
