package experiments

import (
	"fmt"
	"math"
	"strings"

	"sunuintah/internal/grid"
	"sunuintah/internal/perf"
)

// TableIRow is one row of Table I: FLOPs per cell counted by the CPE
// performance counters, divided (as the paper does) by the ghost-inclusive
// cell count of the whole grid.
type TableIRow struct {
	Problem      string
	TotalCells   int64 // grid grown by one ghost layer
	TotalFlops   int64 // CPE-counter flops for one timestep
	FlopsPerCell float64
	ExpFraction  float64
}

// TableI regenerates the FLOP-per-cell experiment with the acc.async
// variant at each problem's minimum CG count.
func TableI(s *Sweep) ([]TableIRow, error) {
	v, _ := VariantByName("acc.async")
	for _, prob := range Problems {
		s.Prefetch(prob, prob.MinCGs, v)
	}
	var rows []TableIRow
	for _, prob := range Problems {
		r, err := s.Run(prob, prob.MinCGs, v)
		if err != nil {
			return nil, err
		}
		if !r.Feasible {
			return nil, fmt.Errorf("table I: %s infeasible at %d CGs", prob.Name, prob.MinCGs)
		}
		ghosted := prob.GridSize.Add(grid.IV(2, 2, 2)).Volume()
		perStepFlops := r.Result.Counters.Flops / int64(r.Result.Steps)
		rows = append(rows, TableIRow{
			Problem:      prob.Name,
			TotalCells:   ghosted,
			TotalFlops:   perStepFlops,
			FlopsPerCell: float64(perStepFlops) / float64(ghosted),
			ExpFraction:  float64(r.Result.Counters.ExpFlops) / float64(r.Result.Counters.Flops),
		})
	}
	return rows, nil
}

// FormatTableI renders Table I in the paper's layout.
func FormatTableI(rows []TableIRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE I: FLOP per cell for the model problem (counted on the CPEs)\n")
	fmt.Fprintf(&b, "%-13s %13s %15s %15s %9s\n", "Problem Size", "Total Cells", "Total FLOPs", "FLOPs per Cell", "exp share")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-13s %13d %15d %15.0f %8.1f%%\n",
			r.Problem, r.TotalCells, r.TotalFlops, r.FlopsPerCell, r.ExpFraction*100)
	}
	return b.String()
}

// FormatTableII prints the machine-model parameters (the paper's Table II
// plus the calibrated software constants).
func FormatTableII(p perf.Params) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE II: major system parameters of the simulated Sunway TaihuLight\n")
	fmt.Fprintf(&b, "  Node architecture        1 SW26010 processor (4 CGs, used as 4 nodes)\n")
	fmt.Fprintf(&b, "  CG cores                 1 MPE + %d CPEs\n", p.NumCPEs)
	fmt.Fprintf(&b, "  CG peak                  %.1f Gflop/s (MPE %.1f + CPEs %.1f)\n",
		p.CGPeakFlops()/1e9, p.MPEPeakFlops/1e9, p.CPEClusterPeakFlops/1e9)
	fmt.Fprintf(&b, "  CG memory                %d GiB (usable for fields: %.2f GiB)\n",
		p.MemBytesPerCG>>30, float64(p.UsableFieldBytesPerCG)/(1<<30))
	fmt.Fprintf(&b, "  Memory bandwidth         %.1f GB/s per CG\n", p.MemBandwidth/1e9)
	fmt.Fprintf(&b, "  LDM per CPE              %d KiB\n", p.LDMBytes>>10)
	fmt.Fprintf(&b, "  Interconnect             %.0f GB/s P2P, %.1f us latency\n",
		p.LinkBandwidth/1e9, p.LinkLatency*1e6)
	fmt.Fprintf(&b, "  Calibrated: CPE scalar kernel %.0f cyc/cell, SIMD /%.1f, MPE kernel %.0f cyc/cell\n",
		p.CPECyclesPerCellScalar, p.SIMDSpeedup, p.MPECyclesPerCellScalar)
	return b.String()
}

// TableIIIRow is one row of Table III.
type TableIIIRow struct {
	Problem  string
	Patch    string
	Grid     string
	MemGB    float64
	MinCGs   int
	Starred  bool
	OneCGOOM bool
}

// TableIII regenerates the problem-settings table, verifying each starred
// minimum by actually attempting the allocation one CG below it.
func TableIII(s *Sweep) ([]TableIIIRow, error) {
	v, _ := VariantByName("acc.async")
	for _, prob := range Problems {
		if prob.MinCGs > 1 {
			s.Prefetch(prob, prob.MinCGs/2, v)
		}
		s.Prefetch(prob, prob.MinCGs, v)
	}
	var rows []TableIIIRow
	for _, prob := range Problems {
		row := TableIIIRow{
			Problem: prob.Name,
			Patch:   prob.PatchSize.String(),
			Grid:    prob.GridSize.String(),
			MemGB:   float64(prob.MemBytes) / (1 << 30),
			MinCGs:  prob.MinCGs,
			Starred: prob.MinCGs > 1,
		}
		if prob.MinCGs > 1 {
			below := prob.MinCGs / 2
			r, err := s.Run(prob, below, v)
			if err != nil {
				return nil, err
			}
			if r.Feasible {
				return nil, fmt.Errorf("table III: %s unexpectedly feasible at %d CGs", prob.Name, below)
			}
			row.OneCGOOM = true
		}
		// The minimum itself must be feasible.
		r, err := s.Run(prob, prob.MinCGs, v)
		if err != nil {
			return nil, err
		}
		if !r.Feasible {
			return nil, fmt.Errorf("table III: %s infeasible at its minimum %d CGs", prob.Name, prob.MinCGs)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTableIII renders Table III.
func FormatTableIII(rows []TableIIIRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE III: problem settings (memory errors verified below each starred minimum)\n")
	fmt.Fprintf(&b, "%-14s %-12s %-15s %8s %6s\n", "Problem", "Patch Size", "Grid Size", "Mem", "Min")
	for _, r := range rows {
		star := ""
		if r.Starred {
			star = "*"
		}
		mem := fmt.Sprintf("%.0fGB", r.MemGB)
		if r.MemGB < 1 {
			mem = fmt.Sprintf("%.0fMB", r.MemGB*1024)
		}
		fmt.Fprintf(&b, "%-14s %-12s %-15s %8s %5dCG%s\n", r.Problem+star, r.Patch, r.Grid, mem, r.MinCGs, star)
	}
	return b.String()
}

// FormatTableIV renders the variant matrix.
func FormatTableIV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE IV: experimental variants\n")
	fmt.Fprintf(&b, "%-15s %-22s %-7s %-13s\n", "Variant", "Scheduler Mode", "Tiling", "Vectorization")
	modes := map[string]string{
		"host.sync":      "MPE-only",
		"acc.sync":       "synchronous MPE+CPE",
		"acc_simd.sync":  "synchronous MPE+CPE",
		"acc.async":      "asynchronous MPE+CPE",
		"acc_simd.async": "asynchronous MPE+CPE",
	}
	for _, v := range Variants {
		tiling, vec := "Yes", "No"
		if v.Name == "host.sync" {
			tiling = "No"
		}
		if v.SIMD {
			vec = "Yes"
		}
		fmt.Fprintf(&b, "%-15s %-22s %-7s %-13s\n", v.Name, modes[v.Name], tiling, vec)
	}
	return b.String()
}

// TableVRow holds one problem's strong-scaling efficiencies (percent, from
// each problem's minimum CG count to 128) for the four accelerated
// variants.
type TableVRow struct {
	Problem    string
	AccSync    float64
	AccAsync   float64
	SimdSync   float64
	SimdAsync  float64
	Infeasible bool
}

// TableV computes strong-scaling efficiency for every problem and
// accelerated variant.
func TableV(s *Sweep) ([]TableVRow, error) {
	names := []string{"acc.sync", "acc.async", "acc_simd.sync", "acc_simd.async"}
	for _, prob := range Problems {
		for _, name := range names {
			v, _ := VariantByName(name)
			s.PrefetchSeries(prob, v)
		}
	}
	var rows []TableVRow
	for _, prob := range Problems {
		row := TableVRow{Problem: prob.Name}
		for _, name := range names {
			v, _ := VariantByName(name)
			series, err := s.ScalingSeries(prob, v)
			if err != nil {
				return nil, err
			}
			minR, ok1 := series[prob.MinCGs]
			maxR, ok2 := series[128]
			if !ok1 || !ok2 {
				row.Infeasible = true
				continue
			}
			eff := StrongScalingEfficiency(minR.PerStepSeconds(), prob.MinCGs, maxR.PerStepSeconds(), 128)
			switch name {
			case "acc.sync":
				row.AccSync = eff
			case "acc.async":
				row.AccAsync = eff
			case "acc_simd.sync":
				row.SimdSync = eff
			case "acc_simd.async":
				row.SimdAsync = eff
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTableV renders Table V.
func FormatTableV(rows []TableVRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE V: strong scaling efficiency (min CGs -> 128 CGs)\n")
	fmt.Fprintf(&b, "%-14s %9s %10s %10s %11s\n", "Problem", "acc.sync", "acc.async", "simd.sync", "simd.async")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %8.1f%% %9.1f%% %9.1f%% %10.1f%%\n",
			r.Problem, r.AccSync, r.AccAsync, r.SimdSync, r.SimdAsync)
	}
	return b.String()
}

// ImprovementTable holds Table VI or VII: the async-over-sync improvement
// percentage per problem and CG count. Missing cells (below the problem's
// minimum CG count) are NaN.
type ImprovementTable struct {
	Vectorised bool
	CGs        []int
	Problems   []string
	// Cells[p][c] is the improvement of problem p at CGs[c], in percent.
	Cells [][]float64
}

// AsyncImprovement computes Table VI (vectorised=false) or Table VII
// (vectorised=true).
func AsyncImprovement(s *Sweep, vectorised bool) (*ImprovementTable, error) {
	syncName, asyncName := "acc.sync", "acc.async"
	if vectorised {
		syncName, asyncName = "acc_simd.sync", "acc_simd.async"
	}
	vs, _ := VariantByName(syncName)
	va, _ := VariantByName(asyncName)
	for _, prob := range Problems {
		s.PrefetchSeries(prob, vs)
		s.PrefetchSeries(prob, va)
	}
	t := &ImprovementTable{Vectorised: vectorised, CGs: CGCounts}
	for _, prob := range Problems {
		t.Problems = append(t.Problems, prob.Name)
		row := make([]float64, len(CGCounts))
		for i, cgs := range CGCounts {
			row[i] = nan()
			if cgs < prob.MinCGs {
				continue
			}
			rs, err := s.Run(prob, cgs, vs)
			if err != nil {
				return nil, err
			}
			ra, err := s.Run(prob, cgs, va)
			if err != nil {
				return nil, err
			}
			if !rs.Feasible || !ra.Feasible {
				continue
			}
			row[i] = Improvement(rs.PerStepSeconds(), ra.PerStepSeconds())
		}
		t.Cells = append(t.Cells, row)
	}
	return t, nil
}

// Format renders an improvement table in the paper's layout.
func (t *ImprovementTable) Format() string {
	var b strings.Builder
	n := "VI"
	kind := "non-vectorized"
	if t.Vectorised {
		n, kind = "VII", "vectorized"
	}
	fmt.Fprintf(&b, "TABLE %s: performance improvement of the asynchronous mode (%s kernel)\n", n, kind)
	fmt.Fprintf(&b, "%-13s", "Num CGs")
	for _, c := range t.CGs {
		fmt.Fprintf(&b, "%8d", c)
	}
	fmt.Fprintln(&b)
	for i, prob := range t.Problems {
		fmt.Fprintf(&b, "%-13s", prob)
		for _, v := range t.Cells[i] {
			if v != v {
				fmt.Fprintf(&b, "%8s", "-")
			} else {
				fmt.Fprintf(&b, "%7.1f%%", v)
			}
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// Average returns the mean over all defined cells (the paper quotes 13.5%
// for Table VI).
func (t *ImprovementTable) Average() float64 {
	var sum float64
	var n int
	for _, row := range t.Cells {
		for _, v := range row {
			if v == v {
				sum += v
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Best returns the maximum defined cell.
func (t *ImprovementTable) Best() float64 {
	best := nan()
	for _, row := range t.Cells {
		for _, v := range row {
			if v == v && (best != best || v > best) {
				best = v
			}
		}
	}
	return best
}

func nan() float64 { return math.NaN() }
