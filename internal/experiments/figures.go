package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// ScalingPoint is one point of a Figure 5 wall-time series.
type ScalingPoint struct {
	CGs     int
	PerStep float64 // seconds per timestep
}

// Figure5Series is the strong-scaling wall time of one problem under one
// variant.
type Figure5Series struct {
	Problem string
	Variant string
	Points  []ScalingPoint
}

// Figure5 regenerates the wall-time strong-scaling curves for the four
// accelerated variants over every problem.
func Figure5(s *Sweep) ([]Figure5Series, error) {
	names := []string{"acc.sync", "acc.async", "acc_simd.sync", "acc_simd.async"}
	for _, prob := range Problems {
		for _, name := range names {
			v, _ := VariantByName(name)
			s.PrefetchSeries(prob, v)
		}
	}
	var out []Figure5Series
	for _, prob := range Problems {
		for _, name := range names {
			v, _ := VariantByName(name)
			series, err := s.ScalingSeries(prob, v)
			if err != nil {
				return nil, err
			}
			fs := Figure5Series{Problem: prob.Name, Variant: name}
			var cgs []int
			for c := range series {
				cgs = append(cgs, c)
			}
			sort.Ints(cgs)
			for _, c := range cgs {
				fs.Points = append(fs.Points, ScalingPoint{CGs: c, PerStep: series[c].PerStepSeconds()})
			}
			out = append(out, fs)
		}
	}
	return out, nil
}

// FormatFigure5 renders the Figure 5 data as aligned series.
func FormatFigure5(series []Figure5Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIGURE 5: wall time per timestep (seconds), strong scaling\n")
	cur := ""
	for _, fs := range series {
		if fs.Problem != cur {
			cur = fs.Problem
			fmt.Fprintf(&b, "problem %s\n", cur)
			fmt.Fprintf(&b, "  %-15s", "variant\\CGs")
			for _, c := range CGCounts {
				fmt.Fprintf(&b, "%10d", c)
			}
			fmt.Fprintln(&b)
		}
		fmt.Fprintf(&b, "  %-15s", fs.Variant)
		byCG := map[int]float64{}
		for _, pt := range fs.Points {
			byCG[pt.CGs] = pt.PerStep
		}
		for _, c := range CGCounts {
			if v, ok := byCG[c]; ok {
				fmt.Fprintf(&b, "%10.4f", v)
			} else {
				fmt.Fprintf(&b, "%10s", "-")
			}
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// BoostPoint is one bar of Figures 6-8: the speed-up of a variant over the
// host.sync baseline at one CG count.
type BoostPoint struct {
	CGs      int
	AccAsync float64 // T_host / T_acc.async
	SimdAsy  float64 // T_host / T_acc_simd.async
}

// BoostFigure holds one of Figures 6 (small), 7 (medium), 8 (large).
type BoostFigure struct {
	Problem string
	Points  []BoostPoint
}

// Boosts computes the optimisation-step performance boosts for one
// problem: host.sync as the baseline against the offloaded and the
// offloaded+vectorised asynchronous variants.
func Boosts(s *Sweep, prob ProblemSpec) (*BoostFigure, error) {
	host, _ := VariantByName("host.sync")
	acc, _ := VariantByName("acc.async")
	simd, _ := VariantByName("acc_simd.async")
	fig := &BoostFigure{Problem: prob.Name}
	for _, v := range []Variant{host, acc, simd} {
		s.PrefetchSeries(prob, v)
	}
	for _, cgs := range CGCounts {
		if cgs < prob.MinCGs {
			continue
		}
		rh, err := s.Run(prob, cgs, host)
		if err != nil {
			return nil, err
		}
		ra, err := s.Run(prob, cgs, acc)
		if err != nil {
			return nil, err
		}
		rs, err := s.Run(prob, cgs, simd)
		if err != nil {
			return nil, err
		}
		if !rh.Feasible || !ra.Feasible || !rs.Feasible {
			continue
		}
		fig.Points = append(fig.Points, BoostPoint{
			CGs:      cgs,
			AccAsync: rh.PerStepSeconds() / ra.PerStepSeconds(),
			SimdAsy:  rh.PerStepSeconds() / rs.PerStepSeconds(),
		})
	}
	return fig, nil
}

// Format renders a boost figure.
func (f *BoostFigure) Format(figNum int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIGURE %d: performance boost over host.sync, problem %s\n", figNum, f.Problem)
	fmt.Fprintf(&b, "  %-8s %12s %16s %12s\n", "CGs", "acc.async", "acc_simd.async", "simd extra")
	for _, pt := range f.Points {
		fmt.Fprintf(&b, "  %-8d %11.2fx %15.2fx %11.2fx\n",
			pt.CGs, pt.AccAsync, pt.SimdAsy, pt.SimdAsy/pt.AccAsync)
	}
	return b.String()
}

// FlopsPoint is one point of Figures 9 and 10.
type FlopsPoint struct {
	CGs        int
	Gflops     float64
	Efficiency float64 // fraction of the running CGs' theoretical peak
}

// FlopsSeries holds one problem's floating-point performance under
// acc_simd.async.
type FlopsSeries struct {
	Problem string
	Points  []FlopsPoint
}

// Figure9And10 computes the floating-point performance (Figure 9) and
// efficiency (Figure 10) of the best variant.
func Figure9And10(s *Sweep) ([]FlopsSeries, error) {
	v, _ := VariantByName("acc_simd.async")
	for _, prob := range Problems {
		s.PrefetchSeries(prob, v)
	}
	var out []FlopsSeries
	for _, prob := range Problems {
		series, err := s.ScalingSeries(prob, v)
		if err != nil {
			return nil, err
		}
		fs := FlopsSeries{Problem: prob.Name}
		var cgs []int
		for c := range series {
			cgs = append(cgs, c)
		}
		sort.Ints(cgs)
		for _, c := range cgs {
			r := series[c].Result
			fs.Points = append(fs.Points, FlopsPoint{
				CGs:        c,
				Gflops:     r.Gflops,
				Efficiency: r.Efficiency,
			})
		}
		out = append(out, fs)
	}
	return out, nil
}

// FormatFigure9 renders the Gflops series.
func FormatFigure9(series []FlopsSeries) string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIGURE 9: floating point performance (Gflop/s), acc_simd.async\n")
	fmt.Fprintf(&b, "%-14s", "problem\\CGs")
	for _, c := range CGCounts {
		fmt.Fprintf(&b, "%9d", c)
	}
	fmt.Fprintln(&b)
	for _, fs := range series {
		fmt.Fprintf(&b, "%-14s", fs.Problem)
		byCG := map[int]FlopsPoint{}
		for _, pt := range fs.Points {
			byCG[pt.CGs] = pt
		}
		for _, c := range CGCounts {
			if pt, ok := byCG[c]; ok {
				fmt.Fprintf(&b, "%9.1f", pt.Gflops)
			} else {
				fmt.Fprintf(&b, "%9s", "-")
			}
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// FormatFigure10 renders the efficiency series.
func FormatFigure10(series []FlopsSeries) string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIGURE 10: floating point efficiency (%% of theoretical peak), acc_simd.async\n")
	fmt.Fprintf(&b, "%-14s", "problem\\CGs")
	for _, c := range CGCounts {
		fmt.Fprintf(&b, "%9d", c)
	}
	fmt.Fprintln(&b)
	for _, fs := range series {
		fmt.Fprintf(&b, "%-14s", fs.Problem)
		byCG := map[int]FlopsPoint{}
		for _, pt := range fs.Points {
			byCG[pt.CGs] = pt
		}
		for _, c := range CGCounts {
			if pt, ok := byCG[c]; ok {
				fmt.Fprintf(&b, "%8.2f%%", pt.Efficiency*100)
			} else {
				fmt.Fprintf(&b, "%9s", "-")
			}
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}
