package experiments

import (
	"context"
	"fmt"
	"strings"

	"sunuintah/internal/grid"
	"sunuintah/internal/runner"
)

// submitAll hands every spec to the sweep's pool up front (so the cells
// execute concurrently) and returns the job handles for in-order
// collection.
func submitAll(s *Sweep, specs []runner.Spec) []*runner.Job {
	jobs := make([]*runner.Job, len(specs))
	for i, spec := range specs {
		jobs[i] = s.Pool().Submit(spec)
	}
	return jobs
}

// AblationAsyncDMA measures the paper's future-work asynchronous
// double-buffered DMA (Section IX) on the medium problem: tile transfers
// overlap tile compute within each CPE.
func AblationAsyncDMA(s *Sweep, steps int) (string, error) {
	prob, _ := ProblemByName("32x64x512")
	v, _ := VariantByName("acc_simd.async")
	cgCounts := []int{1, 8, 64}
	var specs []runner.Spec
	for _, cgs := range cgCounts {
		specs = append(specs,
			SpecFor(prob, cgs, v, Options{Steps: steps}, 0),
			SpecFor(prob, cgs, v, Options{Steps: steps, AsyncDMA: true}, 0))
	}
	jobs := submitAll(s, specs)
	var b strings.Builder
	fmt.Fprintf(&b, "ABLATION: asynchronous memory<->LDM DMA (double buffering), %s, acc_simd.async\n", prob.Name)
	fmt.Fprintf(&b, "  %-6s %14s %14s %9s\n", "CGs", "sync DMA (s)", "async DMA (s)", "speedup")
	for i, cgs := range cgCounts {
		base, err := jobs[2*i].Wait(context.Background())
		if err != nil {
			return "", err
		}
		dma, err := jobs[2*i+1].Wait(context.Background())
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "  %-6d %14.4f %14.4f %8.2fx\n",
			cgs, base.PerStepSeconds(), dma.PerStepSeconds(),
			base.PerStepSeconds()/dma.PerStepSeconds())
	}
	return b.String(), nil
}

// AblationTilePacking measures the future-work packed tile transfers
// (Section IX: "it is also possible to pack the tiles to improve data
// transfer performance").
func AblationTilePacking(s *Sweep, steps int) (string, error) {
	prob, _ := ProblemByName("32x64x512")
	v, _ := VariantByName("acc_simd.async")
	cgCounts := []int{1, 8, 64}
	var specs []runner.Spec
	for _, cgs := range cgCounts {
		specs = append(specs,
			SpecFor(prob, cgs, v, Options{Steps: steps}, 0),
			SpecFor(prob, cgs, v, Options{Steps: steps, TilePacking: true}, 0))
	}
	jobs := submitAll(s, specs)
	var b strings.Builder
	fmt.Fprintf(&b, "ABLATION: packed tile transfers, %s, acc_simd.async\n", prob.Name)
	fmt.Fprintf(&b, "  %-6s %15s %15s %9s\n", "CGs", "strided (s)", "packed (s)", "speedup")
	for i, cgs := range cgCounts {
		base, err := jobs[2*i].Wait(context.Background())
		if err != nil {
			return "", err
		}
		packed, err := jobs[2*i+1].Wait(context.Background())
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "  %-6d %15.4f %15.4f %8.2fx\n",
			cgs, base.PerStepSeconds(), packed.PerStepSeconds(),
			base.PerStepSeconds()/packed.PerStepSeconds())
	}
	return b.String(), nil
}

// AblationCPEGroups measures the future-work CPE grouping: splitting the
// 64 CPEs into groups that each compute a different patch, enabling task
// and data parallelism on one CG.
func AblationCPEGroups(s *Sweep, steps int) (string, error) {
	prob, _ := ProblemByName("32x32x512")
	v, _ := VariantByName("acc_simd.async")
	groupCounts := []int{1, 2, 4}
	var specs []runner.Spec
	for _, groups := range groupCounts {
		specs = append(specs, SpecFor(prob, 8, v, Options{Steps: steps, CPEGroups: groups}, 0))
	}
	jobs := submitAll(s, specs)
	var b strings.Builder
	fmt.Fprintf(&b, "ABLATION: CPE grouping (patches in flight per CG), %s, acc_simd.async, 8 CGs\n", prob.Name)
	fmt.Fprintf(&b, "  %-8s %14s %9s\n", "groups", "per step (s)", "vs 1")
	var base float64
	for i, groups := range groupCounts {
		res, err := jobs[i].Wait(context.Background())
		if err != nil {
			return "", err
		}
		t := res.PerStepSeconds()
		if groups == 1 {
			base = t
		}
		fmt.Fprintf(&b, "  %-8d %14.4f %8.2fx\n", groups, t, base/t)
	}
	return b.String(), nil
}

// AblationTileSize sweeps the LDM tile shape (Section VI-A: the paper
// chooses 16x16x8 as close to optimal within the 64 KB LDM).
func AblationTileSize(s *Sweep, steps int) (string, error) {
	prob, _ := ProblemByName("32x64x512")
	v, _ := VariantByName("acc.async")
	shapes := []grid.IVec{
		grid.IV(8, 8, 8),
		grid.IV(16, 16, 4),
		grid.IV(16, 16, 8), // the paper's choice
		grid.IV(32, 16, 8),
		grid.IV(32, 32, 8), // exceeds the 64 KB LDM
	}
	var specs []runner.Spec
	for _, ts := range shapes {
		specs = append(specs, SpecFor(prob, 8, v, Options{Steps: steps, TileSize: ts}, 0))
	}
	jobs := submitAll(s, specs)
	var b strings.Builder
	fmt.Fprintf(&b, "ABLATION: tile size (64 KiB LDM), %s, acc.async, 8 CGs\n", prob.Name)
	fmt.Fprintf(&b, "  %-10s %14s %14s %s\n", "tile", "working set", "per step (s)", "note")
	for i, ts := range shapes {
		ws := grid.WorkingSetBytes(grid.Tile{Box: grid.BoxFromSize(grid.IV(0, 0, 0), ts)}, 1)
		res, err := jobs[i].Wait(context.Background())
		if err != nil {
			fmt.Fprintf(&b, "  %-10s %11.1f KiB %14s rejected: %v\n", ts.String(), float64(ws)/1024, "-", err)
			continue
		}
		note := ""
		if ts == grid.IV(16, 16, 8) {
			note = "<- paper's choice"
		}
		fmt.Fprintf(&b, "  %-10s %11.1f KiB %14.4f %s\n", ts.String(), float64(ws)/1024, res.PerStepSeconds(), note)
	}
	return b.String(), nil
}

// ShapeSummary checks the qualitative claims of the paper against the
// model and reports each: the five shape properties listed in DESIGN.md.
func ShapeSummary(s *Sweep) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "SHAPE SUMMARY: paper's qualitative claims vs this reproduction\n\n")

	// 1. Strong-scaling efficiency span and its growth with problem size.
	tv, err := TableV(s)
	if err != nil {
		return "", err
	}
	lo, hi := 1e9, -1e9
	for _, r := range tv {
		for _, e := range []float64{r.AccSync, r.AccAsync, r.SimdSync, r.SimdAsync} {
			if e < lo {
				lo = e
			}
			if e > hi {
				hi = e
			}
		}
	}
	fmt.Fprintf(&b, "1. strong-scaling efficiency span: %.1f%% .. %.1f%% (paper: 31.7%%..97.7%% across all variants)\n", lo, hi)
	small := tv[0].SimdAsync
	large := tv[len(tv)-1].SimdAsync
	fmt.Fprintf(&b, "   efficiency grows with size (simd.async): smallest %.1f%%, largest %.1f%% -> %v\n",
		small, large, large > small)

	// 2. Async improvement averages and best cases.
	t6, err := AsyncImprovement(s, false)
	if err != nil {
		return "", err
	}
	t7, err := AsyncImprovement(s, true)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "2. async improvement, non-vectorized: avg %.1f%%, best %.1f%% (paper: avg 13.5%%, best 39.3%%)\n",
		t6.Average(), t6.Best())
	fmt.Fprintf(&b, "   async improvement, vectorized:     avg %.1f%%, best %.1f%% (paper: best 22.8%%)\n",
		t7.Average(), t7.Best())

	// 3. Offload and SIMD boosts.
	for _, idx := range []int{0, 3, 6} {
		fig, err := Boosts(s, Problems[idx])
		if err != nil {
			return "", err
		}
		loA, hiA := 1e9, -1e9
		loS, hiS := 1e9, -1e9
		for _, pt := range fig.Points {
			if pt.AccAsync < loA {
				loA = pt.AccAsync
			}
			if pt.AccAsync > hiA {
				hiA = pt.AccAsync
			}
			extra := pt.SimdAsy / pt.AccAsync
			if extra < loS {
				loS = extra
			}
			if extra > hiS {
				hiS = extra
			}
		}
		fmt.Fprintf(&b, "3. %-12s offload boost %.1f-%.1fx, simd extra %.1f-%.1fx (paper: 2.7-6.0x, 1.3-2.2x)\n",
			Problems[idx].Name, loA, hiA, loS, hiS)
	}

	// 4. Floating-point efficiency.
	f9, err := Figure9And10(s)
	if err != nil {
		return "", err
	}
	best := 0.0
	for _, fs := range f9 {
		for _, pt := range fs.Points {
			if pt.Efficiency > best {
				best = pt.Efficiency
			}
		}
	}
	fmt.Fprintf(&b, "4. best FP efficiency: %.2f%% of peak (paper: 1.17%%)\n", best*100)
	for _, fs := range f9 {
		if fs.Problem == "128x128x512" && len(fs.Points) > 0 {
			last := fs.Points[len(fs.Points)-1]
			fmt.Fprintf(&b, "   aggregate at %d CGs, largest problem: %.1f Gflop/s (paper: 974.5 at 128 CGs)\n",
				last.CGs, last.Gflops)
		}
	}
	return b.String(), nil
}
