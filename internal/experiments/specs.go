// Package experiments reproduces every table and figure of the paper's
// evaluation (Section VII): the FLOP-per-cell counts (Table I), the
// problem settings (Table III), the scheduler/optimisation variants
// (Table IV), strong scaling (Figure 5, Table V), asynchronous-scheduler
// effectiveness (Tables VI and VII), optimisation-step boosts (Figures
// 6-8), floating-point performance and efficiency (Figures 9 and 10), and
// the future-work ablations of Section IX.
//
// All experiments run the real runtime in timing-only mode: identical
// scheduling, communication and counter behaviour to functional runs, with
// field storage elided so the 1024^3 cases fit anywhere.
package experiments

import (
	"fmt"

	"sunuintah/internal/burgers"
	"sunuintah/internal/core"
	"sunuintah/internal/faults"
	"sunuintah/internal/grid"
	"sunuintah/internal/perf"
	"sunuintah/internal/scheduler"
	"sunuintah/internal/taskgraph"
)

// Steps is the number of timesteps per evaluation run ("run for 10
// timesteps for performance evaluation purposes").
const Steps = 10

// PatchCounts is the fixed 8x8x2 layout of 128 patches.
var PatchCounts = grid.IV(8, 8, 2)

// CGCounts are the rank counts of the strong-scaling experiments.
var CGCounts = []int{1, 2, 4, 8, 16, 32, 64, 128}

// ProblemSpec is one row of Table III.
type ProblemSpec struct {
	Name      string
	PatchSize grid.IVec
	GridSize  grid.IVec
	MemBytes  int64 // the two-warehouse field footprint of the whole grid
	MinCGs    int   // smallest CG count that does not hit Table III's memory errors
}

// Problems are the seven problem sizes of Table III, built the way the
// paper describes: start from the smallest possible patch (16x16x512 for
// 16x16x8 tiles on 64 CPEs) and double along x and y round-robin.
var Problems = buildProblems()

func buildProblems() []ProblemSpec {
	sizes := []grid.IVec{
		grid.IV(16, 16, 512),
		grid.IV(16, 32, 512),
		grid.IV(32, 32, 512),
		grid.IV(32, 64, 512),
		grid.IV(64, 64, 512),
		grid.IV(64, 128, 512),
		grid.IV(128, 128, 512),
	}
	mins := []int{1, 1, 1, 1, 2, 4, 8}
	out := make([]ProblemSpec, len(sizes))
	for i, ps := range sizes {
		gs := ps.Mul(PatchCounts)
		out[i] = ProblemSpec{
			Name:      ps.String(),
			PatchSize: ps,
			GridSize:  gs,
			MemBytes:  gs.Volume() * 16, // u in two warehouses
			MinCGs:    mins[i],
		}
	}
	return out
}

// ProblemByName looks a problem up by its patch-size name.
func ProblemByName(name string) (ProblemSpec, error) {
	for _, p := range Problems {
		if p.Name == name {
			return p, nil
		}
	}
	return ProblemSpec{}, fmt.Errorf("experiments: unknown problem %q", name)
}

// Variant is one row of Table IV.
type Variant struct {
	Name string
	Mode scheduler.Mode
	SIMD bool
}

// Variants are the five experimental variants of Table IV.
var Variants = []Variant{
	{"host.sync", scheduler.ModeMPEOnly, false},
	{"acc.sync", scheduler.ModeSync, false},
	{"acc_simd.sync", scheduler.ModeSync, true},
	{"acc.async", scheduler.ModeAsync, false},
	{"acc_simd.async", scheduler.ModeAsync, true},
}

// VariantByName looks a variant up by its Table IV name.
func VariantByName(name string) (Variant, error) {
	for _, v := range Variants {
		if v.Name == name {
			return v, nil
		}
	}
	return Variant{}, fmt.Errorf("experiments: unknown variant %q", name)
}

// Options tweak a run beyond the paper's matrix (future-work ablations and
// the machine-noise measurement protocol).
type Options struct {
	AsyncDMA    bool
	TilePacking bool
	CPEGroups   int
	TileSize    grid.IVec
	Steps       int
	// Noise enables kernel jitter of up to this fraction; Repeats then
	// reruns each case with distinct noise seeds and keeps the fastest,
	// reproducing the paper's protocol: "each case is repeated multiple
	// times and the best result is selected".
	Noise   float64
	Repeats int

	// Jobs is the worker count of a Sweep's own runner pool (0 means
	// GOMAXPROCS). Ignored by the serial RunCase path.
	Jobs int

	// Shards runs each case on the conservative parallel engine with this
	// many shards (0 or 1 = serial engine). Like Jobs, it only changes
	// wall-clock speed: results are bit-identical for every shard count,
	// so it never participates in the result-cache key.
	Shards int

	// Optimistic coordinates the shards with the Time-Warp engine instead
	// of the conservative one. Bit-identical by contract, so — like
	// Shards — it never participates in the result-cache key. No effect
	// unless Shards > 1.
	Optimistic bool

	// Faults injects deterministic chaos into every case: a non-zero plan
	// routes runs through core.RunResilient (checkpoint/restart under CG
	// crashes) and participates in the runner's content hash. Nil or
	// all-zero runs fault-free.
	Faults *faults.Plan

	// Report attaches the flight recorder to every case; Trace additionally
	// captures the full event timeline. Reporting knobs only — like Shards,
	// they never participate in the result-cache key.
	Report bool
	Trace  bool

	// seed is the per-repeat noise seed set by RunCase.
	seed uint64
}

// caseConfig assembles the configuration and problem of one experimental
// cell, shared by the serial path (NewCase/RunCase) and resilient runs.
func caseConfig(prob ProblemSpec, cgs int, v Variant, opt Options) (core.Config, core.Problem) {
	u := burgers.NewULabel()
	dx := 1.0 / float64(prob.GridSize.X)
	dy := 1.0 / float64(prob.GridSize.Y)
	dz := 1.0 / float64(prob.GridSize.Z)
	problem := core.Problem{
		Tasks: []*taskgraph.Task{burgers.NewAdvanceTask(u, burgers.FastExpLib, v.SIMD)},
		Dt:    burgers.StableDt(dx, dy, dz),
	}
	cfg := core.Config{
		Cells:       prob.GridSize,
		PatchCounts: PatchCounts,
		NumCGs:      cgs,
		Scheduler: scheduler.Config{
			Mode:        v.Mode,
			SIMD:        v.SIMD,
			TileSize:    opt.TileSize,
			Functional:  false,
			AsyncDMA:    opt.AsyncDMA,
			TilePacking: opt.TilePacking,
			CPEGroups:   opt.CPEGroups,
		},
	}
	if opt.Noise > 0 {
		params := perf.DefaultParams()
		params.NoiseFraction = opt.Noise
		params.NoiseSeed = opt.seed
		cfg.Params = &params
	}
	if !opt.Faults.Zero() {
		cfg.Faults = opt.Faults
	}
	cfg.Shards = opt.Shards
	cfg.Optimistic = opt.Optimistic
	return cfg, problem
}

// NewCase assembles a timing-only simulation for one experimental cell.
func NewCase(prob ProblemSpec, cgs int, v Variant, opt Options) (*core.Simulation, error) {
	cfg, problem := caseConfig(prob, cgs, v, opt)
	return core.NewSimulation(cfg, problem)
}

// RunCase builds and runs one experimental cell for the given number of
// steps (Options.Steps, default Steps). With Noise and Repeats set it runs
// the case once per noise seed and returns the fastest result, like the
// paper.
func RunCase(prob ProblemSpec, cgs int, v Variant, opt Options) (*core.Result, error) {
	n := opt.Steps
	if n <= 0 {
		n = Steps
	}
	repeats := opt.Repeats
	if repeats <= 1 || opt.Noise == 0 {
		repeats = 1
	}
	var best *core.Result
	for rep := 0; rep < repeats; rep++ {
		opt.seed = uint64(rep + 1)
		cfg, problem := caseConfig(prob, cgs, v, opt)
		res, err := core.RunResilient(cfg, problem, n)
		if err != nil {
			return nil, err
		}
		if best == nil || res.PerStep < best.PerStep {
			best = res
		}
	}
	return best, nil
}
