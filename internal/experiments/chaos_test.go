package experiments

import (
	"strings"
	"testing"

	"sunuintah/internal/runner"
)

// TestChaos is the "make chaos" determinism gate: the chaos matrix must
// render byte-identically regardless of pool concurrency, and at the
// default fault rate at least 95% of runs must recover.
func TestChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos matrix is not a -short test")
	}
	const steps = 4
	render := func(workers int) string {
		s := NewSweepWithPool(Options{}, NewPool(workers, runner.NewMemoryCache(0), nil))
		defer s.Pool().Close()
		out, err := Chaos(s, steps)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := render(1)
	parallel := render(4)
	if serial != parallel {
		t.Fatalf("chaos artifact depends on worker count:\n--- 1 worker ---\n%s\n--- 4 workers ---\n%s", serial, parallel)
	}
	if !strings.Contains(serial, "Chaos matrix") {
		t.Fatalf("unexpected artifact shape:\n%s", serial)
	}

	// Composing the matrix with the engine knobs must change nothing: the
	// crash-capable cells force serial execution (core applies the same
	// fallback rule to Shards and Optimistic — a CG crash is a
	// zero-lookahead global teardown no speculation window can roll back),
	// and the fault-free baseline runs the engines under their bit-identity
	// contract. Byte-equality of the rendered artifact is the gate.
	optimistic := func() string {
		s := NewSweepWithPool(Options{Shards: 4, Optimistic: true}, NewPool(4, runner.NewMemoryCache(0), nil))
		defer s.Pool().Close()
		out, err := Chaos(s, steps)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}()
	if optimistic != serial {
		t.Fatalf("chaos artifact depends on the engine knobs:\n--- serial ---\n%s\n--- shards=4 optimistic ---\n%s", serial, optimistic)
	}

	s := NewSweepWithPool(Options{}, NewPool(0, runner.NewMemoryCache(0), nil))
	defer s.Pool().Close()
	rows, err := ChaosRows(s, steps)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(chaosScales) {
		t.Fatalf("want %d scales, got %d", len(chaosScales), len(rows))
	}
	for _, r := range rows {
		if r.Scale == 0 {
			if r.Recovered != r.Runs || r.Crashes != 0 {
				t.Fatalf("baseline row not fault-free: %+v", r)
			}
			continue
		}
		if r.Scale == 1 {
			if float64(r.Recovered) < 0.95*float64(r.Runs) {
				t.Fatalf("default fault rate recovered %d/%d (< 95%%)", r.Recovered, r.Runs)
			}
			if r.Crashes == 0 || r.Restarts == 0 {
				t.Fatalf("default fault rate never exercised checkpoint/restart: %+v", r)
			}
			if r.Overhead <= 0 {
				t.Fatalf("faulty runs should cost more than the baseline: %+v", r)
			}
		}
	}
}
