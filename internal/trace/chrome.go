package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one entry of the Chrome trace-event format ("traceEvents"
// array, "X" complete events), loadable in chrome://tracing or Perfetto.
type chromeEvent struct {
	Name     string            `json:"name"`
	Category string            `json:"cat"`
	Phase    string            `json:"ph"`
	TimeUS   float64           `json:"ts"`
	DurUS    float64           `json:"dur"`
	PID      int               `json:"pid"`
	TID      int               `json:"tid"`
	Args     map[string]string `json:"args,omitempty"`
}

// laneOf maps an interval kind to a per-rank display lane: the MPE thread
// (bookkeeping, communication, host kernels) versus the CPE cluster.
func laneOf(k Kind) int {
	switch k {
	case KindKernel:
		return 1 // CPE cluster lane
	case KindFault, KindRecovery:
		return 2 // fault-plane lane
	default:
		return 0 // MPE lane
	}
}

// WriteChromeTrace serialises the recorder in the Chrome trace-event JSON
// format: one process per rank, lane 0 for the MPE and lane 1 for the CPE
// cluster. Virtual seconds map to microseconds of trace time.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	events := []chromeEvent{}
	if r != nil {
		for _, e := range r.snapshot() {
			events = append(events, chromeEvent{
				Name:     e.Name,
				Category: string(e.Kind),
				Phase:    "X",
				TimeUS:   float64(e.Start) * 1e6,
				DurUS:    float64(e.Duration()) * 1e6,
				PID:      e.Rank,
				TID:      laneOf(e.Kind),
				Args:     map[string]string{"step": fmt.Sprint(e.Step)},
			})
		}
	}
	doc := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
		DisplayUnit string        `json:"displayTimeUnit"`
	}{events, "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
