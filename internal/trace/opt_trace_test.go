package trace

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"sunuintah/internal/sim"
)

// traceNode is a PHOLD-style actor whose side effect IS the trace: every
// job appends one interval to the node's event log, and the log rides in
// the Time-Warp saved state, so a rollback truncates it along with the
// model state. What survives to the end of the run is exactly the
// committed timeline — the property the Perfetto export depends on.
type traceNode struct {
	id    int
	nodes []*traceNode
	eng   *sim.Engine
	post  func(dst int, at sim.Time, fn func())

	rng    uint64
	seq    int
	budget int
	evs    []Event
}

type traceNodeState struct {
	rng    uint64
	seq    int
	budget int
	evs    []Event
}

func (nd *traceNode) SaveState() any {
	return traceNodeState{nd.rng, nd.seq, nd.budget, append([]Event(nil), nd.evs...)}
}

func (nd *traceNode) RestoreState(s any) {
	st := s.(traceNodeState)
	nd.rng, nd.seq, nd.budget = st.rng, st.seq, st.budget
	nd.evs = append(nd.evs[:0], st.evs...)
}

func mix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4b9b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

const traceLookahead = 5 * sim.Nanosecond

func (nd *traceNode) job(payload uint64) {
	t := nd.eng.Now()
	dur := sim.Time(1+payload%97) * 1e-12
	nd.evs = append(nd.evs, Event{
		Rank: nd.id, Step: nd.seq, Kind: KindKernel,
		Name: "job", Start: t, End: t + dur,
	})
	nd.seq++
	if nd.budget <= 0 {
		return
	}
	nd.budget--
	r := mix64(&nd.rng)
	next := mix64(&nd.rng)
	jitter := sim.Time(r%1000) * 1e-12
	if (r>>32)%100 < 30 {
		dst := int(next % uint64(len(nd.nodes)))
		dn := nd.nodes[dst]
		nd.post(dst, t+traceLookahead+sim.Nanosecond+jitter, func() { dn.job(next) })
	} else {
		at := t + 2e-10 + jitter
		nd.eng.ScheduleAt(at, func() { nd.job(next) })
	}
}

// runTraceModel runs the model on either coordination flavour and returns
// the committed events plus the optimistic stats (zero-value for the
// conservative run).
func runTraceModel(optimistic bool) ([]Event, sim.OptStats) {
	const nNodes, nShards, budget = 8, 4, 200
	var (
		engine func(int) *sim.Engine
		post   func(src, dst *sim.Engine, at sim.Time, fn func())
		reg    func(int, sim.StateSaver)
		run    func() sim.Time
		stats  func() sim.OptStats
	)
	if optimistic {
		o := sim.NewOptimisticShardSet(nShards, traceLookahead, sim.OptConfig{MaxDepth: 4})
		engine, post, run, stats = o.Engine, o.Post, o.Run, o.Stats
		reg = o.Register
	} else {
		ss := sim.NewShardSet(nShards, traceLookahead)
		engine, post, run = ss.Engine, ss.Post, ss.Run
		reg = func(int, sim.StateSaver) {}
		stats = func() sim.OptStats { return sim.OptStats{} }
	}
	nodes := make([]*traceNode, nNodes)
	for i := range nodes {
		nodes[i] = &traceNode{id: i, rng: uint64(i)*2654435761 + 12345, budget: budget}
	}
	for i, nd := range nodes {
		nd.nodes = nodes
		nd.eng = engine(i % nShards)
		src := nd.eng
		nd.post = func(dst int, at sim.Time, fn func()) {
			post(src, engine(dst%nShards), at, fn)
		}
		reg(i%nShards, nd)
	}
	for i, nd := range nodes {
		nd := nd
		payload := uint64(i) * 7777
		nd.eng.ScheduleAt(sim.Time(i+1)*sim.Nanosecond, func() { nd.job(payload) })
	}
	run()
	var all []Event
	for _, nd := range nodes {
		all = append(all, nd.evs...)
	}
	return Sorted(all), stats()
}

// TestChromeTraceOptimisticCommittedOnly: a rollback-heavy Time-Warp run
// exports the same Perfetto trace as the conservative run of the same
// model — committed slices only, each exactly once, no orphans from
// rolled-back speculation.
func TestChromeTraceOptimisticCommittedOnly(t *testing.T) {
	opt, stats := runTraceModel(true)
	if stats.Degraded {
		t.Fatal("optimistic run degraded to the conservative path")
	}
	if stats.Rollbacks == 0 || stats.EventsRolledBack == 0 {
		t.Fatalf("model never rolled back (rollbacks=%d, rolledBack=%d) — nothing speculative is being exported",
			stats.Rollbacks, stats.EventsRolledBack)
	}
	cons, _ := runTraceModel(false)

	if len(opt) != len(cons) {
		t.Fatalf("committed event count differs: optimistic %d vs conservative %d", len(opt), len(cons))
	}
	if len(opt) < 500 {
		t.Fatalf("suspiciously small committed timeline: %d events", len(opt))
	}
	// Each (rank, step) pair commits exactly once: a duplicate would be a
	// rolled-back execution leaking into the export as an orphaned slice.
	seen := map[[2]int]bool{}
	for _, e := range opt {
		key := [2]int{e.Rank, e.Step}
		if seen[key] {
			t.Fatalf("duplicate committed slice for rank %d step %d", e.Rank, e.Step)
		}
		seen[key] = true
		if e.End < e.Start || math.IsInf(float64(e.End), 0) {
			t.Fatalf("malformed slice: %+v", e)
		}
	}

	var optBuf, consBuf bytes.Buffer
	if err := NewFromEvents(opt).WriteChromeTrace(&optBuf); err != nil {
		t.Fatal(err)
	}
	if err := NewFromEvents(cons).WriteChromeTrace(&consBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(optBuf.Bytes(), consBuf.Bytes()) {
		t.Fatal("Perfetto export differs between optimistic and conservative coordination")
	}
	var doc struct {
		TraceEvents []struct {
			Phase string  `json:"ph"`
			DurUS float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(optBuf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != len(opt) {
		t.Fatalf("export has %d slices, want %d", len(doc.TraceEvents), len(opt))
	}
	for i, ev := range doc.TraceEvents {
		if ev.Phase != "X" || ev.DurUS < 0 {
			t.Fatalf("slice %d malformed: %+v", i, ev)
		}
	}
}
