package trace

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestWriteChromeTraceGolden(t *testing.T) {
	r := New()
	r.Add(Event{Rank: 0, Step: 2, Kind: KindKernel, Name: "burgers", Start: 2e-6, End: 4e-6})
	r.Add(Event{Rank: 1, Step: 2, Kind: KindComm, Name: "halo", Start: 2e-6, End: 4e-6})
	r.Add(Event{Rank: 0, Step: 2, Kind: KindFault, Name: "drop", Start: 5e-6, End: 5e-6})
	var b strings.Builder
	if err := r.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	want := `{"traceEvents":[` +
		`{"name":"burgers","cat":"kernel","ph":"X","ts":2,"dur":2,"pid":0,"tid":1,"args":{"step":"2"}},` +
		`{"name":"halo","cat":"comm","ph":"X","ts":2,"dur":2,"pid":1,"tid":0,"args":{"step":"2"}},` +
		`{"name":"drop","cat":"fault","ph":"X","ts":5,"dur":0,"pid":0,"tid":2,"args":{"step":"2"}}` +
		`],"displayTimeUnit":"ms"}` + "\n"
	if b.String() != want {
		t.Fatalf("chrome trace JSON:\n got %s\nwant %s", b.String(), want)
	}
}

func TestWriteChromeTraceEmptyRecorder(t *testing.T) {
	var b strings.Builder
	if err := New().WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	// An empty recorder must still emit a valid document with an empty
	// (not null) traceEvents array — Perfetto rejects null.
	if !strings.Contains(b.String(), `"traceEvents":[]`) {
		t.Fatalf("empty trace = %s", b.String())
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatal(err)
	}
}

func TestWriteChromeTraceNilRecorder(t *testing.T) {
	var r *Recorder
	var b strings.Builder
	if err := r.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"traceEvents":[]`) {
		t.Fatalf("nil trace = %s", b.String())
	}
}

func TestLaneAssignment(t *testing.T) {
	cases := map[Kind]int{
		KindKernel:   1,
		KindFault:    2,
		KindRecovery: 2,
		KindMPEWork:  0,
		KindComm:     0,
		KindIdle:     0,
	}
	for k, lane := range cases {
		if got := laneOf(k); got != lane {
			t.Errorf("laneOf(%s) = %d, want %d", k, got, lane)
		}
	}
}
