// Package trace records scheduler activity on the virtual timeline: task
// selections, MPE bookkeeping, kernel offloads, MPI traffic. Recorders are
// optional — a nil *Recorder is safe to use and records nothing — and feed
// the timeline output of the asyncoverlap example and scheduler tests.
package trace

import (
	"cmp"
	"fmt"
	"io"
	"slices"
	"sort"
	"strings"
	"sync"

	"sunuintah/internal/sim"
)

// Kind classifies a traced interval.
type Kind string

// Interval kinds recorded by the scheduler.
const (
	KindMPEWork Kind = "mpe"     // packing, unpacking, touches, BC fills
	KindKernel  Kind = "kernel"  // CPE cluster busy with an offloaded kernel
	KindMPEKern Kind = "mpekern" // kernel executed on the MPE (host mode)
	KindComm    Kind = "comm"    // MPI posting and testing
	KindReduce  Kind = "reduce"  // reductions
	KindIdle    Kind = "idle"    // scheduler polling with nothing to do

	// Fault-plane markers (zero-duration unless noted): injected faults and
	// the scheduler's recovery actions.
	KindFault    Kind = "fault"    // injected fault (drop, dup, stall, crash, ...)
	KindRecovery Kind = "recovery" // recovery action (resend, re-offload, MPE fallback)
)

// Event is one traced interval.
type Event struct {
	Rank  int
	Step  int
	Kind  Kind
	Name  string
	Start sim.Time
	End   sim.Time
}

// Duration returns End-Start.
func (e Event) Duration() sim.Time { return e.End - e.Start }

// Recorder accumulates events. The zero value is usable; a nil recorder
// discards everything.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// New creates an empty recorder.
func New() *Recorder { return &Recorder{} }

// NewFromEvents creates a recorder pre-loaded with the given events — the
// inverse of Events(), used to rehydrate a recorder from an exported
// Result timeline (for example to serve a Perfetto download of a stored
// job).
func NewFromEvents(events []Event) *Recorder {
	r := New()
	r.events = append(r.events, events...)
	return r
}

// Add records one interval. Safe on a nil receiver and safe for
// concurrent use — the sharded engine records from several host threads.
// Note that insertion order is then wall-clock arrival order, so
// order-sensitive consumers (WriteTimeline) should sort; the aggregate
// accessors are order-insensitive.
func (r *Recorder) Add(ev Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

// snapshot returns a consistent copy of the event slice. Every reader
// goes through it: Add may be appending concurrently from another shard's
// host thread, and handing out the live slice would race on both the
// header and the backing array.
func (r *Recorder) snapshot() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.events) == 0 {
		return nil
	}
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Events returns a copy of all recorded events in insertion order.
func (r *Recorder) Events() []Event {
	return r.snapshot()
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Sorted returns a copy of events in canonical order: (Start, End, Rank,
// Step, Kind, Name). Concurrent shard threads append in wall-clock
// arrival order, so exported timelines must be canonicalised to stay
// byte-identical across -shards/-workers settings.
func Sorted(events []Event) []Event {
	out := make([]Event, len(events))
	copy(out, events)
	SortEvents(out)
	return out
}

// SortEvents sorts events in place into the same canonical order as
// Sorted. Callers that already own their slice (a Recorder.Events
// snapshot) use it to avoid a second copy of the whole timeline; the
// concrete-typed comparison also sorts several times faster than the
// reflection-based sort.Slice path, which matters because this sort is
// the biggest single post-processing cost of an observed run.
func SortEvents(events []Event) {
	slices.SortFunc(events, func(a, b Event) int {
		switch {
		case a.Start != b.Start:
			return cmp.Compare(a.Start, b.Start)
		case a.End != b.End:
			return cmp.Compare(a.End, b.End)
		case a.Rank != b.Rank:
			return a.Rank - b.Rank
		case a.Step != b.Step:
			return a.Step - b.Step
		case a.Kind != b.Kind:
			return strings.Compare(string(a.Kind), string(b.Kind))
		default:
			return strings.Compare(a.Name, b.Name)
		}
	})
}

// TotalByKind sums interval durations per kind, optionally filtered by
// rank (rank < 0 means all ranks).
func (r *Recorder) TotalByKind(rank int) map[Kind]sim.Time {
	out := map[Kind]sim.Time{}
	for _, e := range r.snapshot() {
		if rank >= 0 && e.Rank != rank {
			continue
		}
		out[e.Kind] += e.Duration()
	}
	return out
}

// OverlapTime returns, for one rank, the total virtual time during which
// an interval of kind a and an interval of kind b are simultaneously open —
// the quantity that demonstrates the asynchronous scheduler's
// computation/communication overlap. With a == b it returns the time during
// which at least two intervals of that kind are open (for example two
// kernels in flight on different CPE groups).
func (r *Recorder) OverlapTime(rank int, a, b Kind) sim.Time {
	if r == nil {
		return 0
	}
	if a == b {
		return r.selfOverlap(rank, a)
	}
	type edge struct {
		t     sim.Time
		kind  Kind
		delta int
	}
	var edges []edge
	for _, e := range r.snapshot() {
		if e.Rank != rank || (e.Kind != a && e.Kind != b) {
			continue
		}
		edges = append(edges, edge{e.Start, e.Kind, +1}, edge{e.End, e.Kind, -1})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].t != edges[j].t {
			return edges[i].t < edges[j].t
		}
		return edges[i].delta < edges[j].delta // close before open at ties
	})
	var total sim.Time
	var openA, openB int
	var since sim.Time
	for _, ed := range edges {
		if openA > 0 && openB > 0 {
			total += ed.t - since
		}
		if ed.kind == a {
			openA += ed.delta
		} else {
			openB += ed.delta
		}
		since = ed.t
	}
	return total
}

// selfOverlap returns the time during which two or more intervals of the
// kind are open simultaneously on the rank.
func (r *Recorder) selfOverlap(rank int, k Kind) sim.Time {
	type edge struct {
		t     sim.Time
		delta int
	}
	var edges []edge
	for _, e := range r.snapshot() {
		if e.Rank != rank || e.Kind != k {
			continue
		}
		edges = append(edges, edge{e.Start, +1}, edge{e.End, -1})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].t != edges[j].t {
			return edges[i].t < edges[j].t
		}
		return edges[i].delta < edges[j].delta
	})
	var total sim.Time
	open := 0
	var since sim.Time
	for _, ed := range edges {
		if open >= 2 {
			total += ed.t - since
		}
		open += ed.delta
		since = ed.t
	}
	return total
}

// WriteTimeline renders a compact per-rank textual timeline, most useful
// for small runs.
func (r *Recorder) WriteTimeline(w io.Writer, rank int, maxEvents int) {
	events := r.snapshot()
	n := 0
	for _, e := range events {
		if e.Rank != rank {
			continue
		}
		if maxEvents > 0 && n >= maxEvents {
			fmt.Fprintf(w, "  ... (%d more events)\n", len(events)-n)
			return
		}
		fmt.Fprintf(w, "  [%12.6f, %12.6f] step %2d %-8s %s\n",
			float64(e.Start)*1e3, float64(e.End)*1e3, e.Step, e.Kind, e.Name)
		n++
	}
}
