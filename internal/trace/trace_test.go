package trace

import (
	"io"
	"reflect"
	"strings"
	"sync"
	"testing"

	"sunuintah/internal/sim"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Add(Event{Kind: KindKernel, Start: 0, End: 1})
	if r.Events() != nil {
		t.Fatal("nil recorder returned events")
	}
	if got := r.OverlapTime(0, KindKernel, KindMPEWork); got != 0 {
		t.Fatal("nil recorder overlap nonzero")
	}
	if len(r.TotalByKind(-1)) != 0 {
		t.Fatal("nil recorder totals nonzero")
	}
	var sb strings.Builder
	r.WriteTimeline(&sb, 0, 10) // must not panic
}

func TestTotalByKind(t *testing.T) {
	r := New()
	r.Add(Event{Rank: 0, Kind: KindKernel, Start: 0, End: 2})
	r.Add(Event{Rank: 0, Kind: KindKernel, Start: 3, End: 4})
	r.Add(Event{Rank: 0, Kind: KindMPEWork, Start: 1, End: 2})
	r.Add(Event{Rank: 1, Kind: KindKernel, Start: 0, End: 10})
	tot := r.TotalByKind(0)
	if tot[KindKernel] != 3 || tot[KindMPEWork] != 1 {
		t.Fatalf("totals = %v", tot)
	}
	all := r.TotalByKind(-1)
	if all[KindKernel] != 13 {
		t.Fatalf("all-ranks kernel total = %v", all[KindKernel])
	}
}

func TestOverlapTimeDistinctKinds(t *testing.T) {
	r := New()
	r.Add(Event{Rank: 0, Kind: KindKernel, Start: 0, End: 10})
	r.Add(Event{Rank: 0, Kind: KindMPEWork, Start: 4, End: 6})
	r.Add(Event{Rank: 0, Kind: KindMPEWork, Start: 12, End: 14})
	if got := r.OverlapTime(0, KindKernel, KindMPEWork); got != 2 {
		t.Fatalf("overlap = %v, want 2", got)
	}
	// Symmetric.
	if got := r.OverlapTime(0, KindMPEWork, KindKernel); got != 2 {
		t.Fatalf("reverse overlap = %v, want 2", got)
	}
	// Other ranks unaffected.
	if got := r.OverlapTime(1, KindKernel, KindMPEWork); got != 0 {
		t.Fatalf("rank 1 overlap = %v", got)
	}
}

func TestOverlapTimeAdjacentIntervalsDoNotCount(t *testing.T) {
	r := New()
	r.Add(Event{Rank: 0, Kind: KindKernel, Start: 0, End: 5})
	r.Add(Event{Rank: 0, Kind: KindMPEWork, Start: 5, End: 8})
	if got := r.OverlapTime(0, KindKernel, KindMPEWork); got != 0 {
		t.Fatalf("touching intervals overlap = %v, want 0", got)
	}
}

func TestSelfOverlap(t *testing.T) {
	r := New()
	r.Add(Event{Rank: 0, Kind: KindKernel, Start: 0, End: 10})
	r.Add(Event{Rank: 0, Kind: KindKernel, Start: 6, End: 12})
	r.Add(Event{Rank: 0, Kind: KindKernel, Start: 20, End: 22})
	if got := r.OverlapTime(0, KindKernel, KindKernel); got != 4 {
		t.Fatalf("self overlap = %v, want 4", got)
	}
}

func TestWriteTimelineFiltersAndLimits(t *testing.T) {
	r := New()
	for i := 0; i < 5; i++ {
		r.Add(Event{Rank: 0, Step: i, Kind: KindComm, Name: "x", Start: 0, End: 1})
	}
	r.Add(Event{Rank: 1, Kind: KindKernel, Name: "other", Start: 0, End: 1})
	var sb strings.Builder
	r.WriteTimeline(&sb, 0, 3)
	out := sb.String()
	if strings.Count(out, "comm") != 3 {
		t.Fatalf("timeline = %q", out)
	}
	if strings.Contains(out, "other") {
		t.Fatal("timeline leaked another rank's events")
	}
	if !strings.Contains(out, "more events") {
		t.Fatal("timeline missing truncation marker")
	}
}

func TestEventDuration(t *testing.T) {
	e := Event{Start: 1.5, End: 4}
	if e.Duration() != 2.5 {
		t.Fatalf("duration = %v", e.Duration())
	}
}

// The regression this locks down: Events and the aggregate readers used
// to hand out / iterate the live slice while sharded engines Add from
// other host threads. Run under -race (the Makefile race target does).
func TestRecorderConcurrentAddAndRead(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.Add(Event{Rank: w, Step: i, Kind: KindKernel,
					Start: sim.Time(i), End: sim.Time(i + 1)})
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		evs := r.Events()
		for _, e := range evs {
			if e.End <= e.Start {
				t.Errorf("torn event: %+v", e)
			}
		}
		_ = r.TotalByKind(-1)
		_ = r.OverlapTime(0, KindKernel, KindComm)
		_ = r.Len()
		r.WriteTimeline(io.Discard, 0, 4)
		if err := r.WriteChromeTrace(io.Discard); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestEventsReturnsCopy(t *testing.T) {
	r := New()
	r.Add(Event{Rank: 0, Kind: KindComm, Start: 1, End: 2})
	evs := r.Events()
	evs[0].Rank = 99
	if r.Events()[0].Rank != 0 {
		t.Fatal("Events handed out the live slice")
	}
}

func TestSortedCanonicalOrder(t *testing.T) {
	in := []Event{
		{Rank: 1, Step: 0, Kind: KindComm, Name: "b", Start: 2, End: 3},
		{Rank: 0, Step: 1, Kind: KindKernel, Name: "a", Start: 1, End: 4},
		{Rank: 0, Step: 0, Kind: KindKernel, Name: "a", Start: 1, End: 2},
		{Rank: 0, Step: 0, Kind: KindComm, Name: "z", Start: 1, End: 2},
	}
	got := Sorted(in)
	want := []Event{
		{Rank: 0, Step: 0, Kind: KindComm, Name: "z", Start: 1, End: 2},
		{Rank: 0, Step: 0, Kind: KindKernel, Name: "a", Start: 1, End: 2},
		{Rank: 0, Step: 1, Kind: KindKernel, Name: "a", Start: 1, End: 4},
		{Rank: 1, Step: 0, Kind: KindComm, Name: "b", Start: 2, End: 3},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sorted = %v", got)
	}
	// Input untouched, and sorting any permutation converges.
	if in[0].Rank != 1 {
		t.Fatal("Sorted mutated its input")
	}
	again := Sorted(got)
	if !reflect.DeepEqual(again, want) {
		t.Fatal("Sorted not idempotent")
	}
}

func TestNewFromEventsRoundTrip(t *testing.T) {
	evs := []Event{
		{Rank: 0, Kind: KindKernel, Name: "k", Start: 0, End: 1},
		{Rank: 1, Kind: KindComm, Name: "c", Start: 1, End: 2},
	}
	r := NewFromEvents(evs)
	if !reflect.DeepEqual(r.Events(), evs) {
		t.Fatalf("round trip lost events: %v", r.Events())
	}
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
}
