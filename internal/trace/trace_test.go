package trace

import (
	"strings"
	"testing"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Add(Event{Kind: KindKernel, Start: 0, End: 1})
	if r.Events() != nil {
		t.Fatal("nil recorder returned events")
	}
	if got := r.OverlapTime(0, KindKernel, KindMPEWork); got != 0 {
		t.Fatal("nil recorder overlap nonzero")
	}
	if len(r.TotalByKind(-1)) != 0 {
		t.Fatal("nil recorder totals nonzero")
	}
	var sb strings.Builder
	r.WriteTimeline(&sb, 0, 10) // must not panic
}

func TestTotalByKind(t *testing.T) {
	r := New()
	r.Add(Event{Rank: 0, Kind: KindKernel, Start: 0, End: 2})
	r.Add(Event{Rank: 0, Kind: KindKernel, Start: 3, End: 4})
	r.Add(Event{Rank: 0, Kind: KindMPEWork, Start: 1, End: 2})
	r.Add(Event{Rank: 1, Kind: KindKernel, Start: 0, End: 10})
	tot := r.TotalByKind(0)
	if tot[KindKernel] != 3 || tot[KindMPEWork] != 1 {
		t.Fatalf("totals = %v", tot)
	}
	all := r.TotalByKind(-1)
	if all[KindKernel] != 13 {
		t.Fatalf("all-ranks kernel total = %v", all[KindKernel])
	}
}

func TestOverlapTimeDistinctKinds(t *testing.T) {
	r := New()
	r.Add(Event{Rank: 0, Kind: KindKernel, Start: 0, End: 10})
	r.Add(Event{Rank: 0, Kind: KindMPEWork, Start: 4, End: 6})
	r.Add(Event{Rank: 0, Kind: KindMPEWork, Start: 12, End: 14})
	if got := r.OverlapTime(0, KindKernel, KindMPEWork); got != 2 {
		t.Fatalf("overlap = %v, want 2", got)
	}
	// Symmetric.
	if got := r.OverlapTime(0, KindMPEWork, KindKernel); got != 2 {
		t.Fatalf("reverse overlap = %v, want 2", got)
	}
	// Other ranks unaffected.
	if got := r.OverlapTime(1, KindKernel, KindMPEWork); got != 0 {
		t.Fatalf("rank 1 overlap = %v", got)
	}
}

func TestOverlapTimeAdjacentIntervalsDoNotCount(t *testing.T) {
	r := New()
	r.Add(Event{Rank: 0, Kind: KindKernel, Start: 0, End: 5})
	r.Add(Event{Rank: 0, Kind: KindMPEWork, Start: 5, End: 8})
	if got := r.OverlapTime(0, KindKernel, KindMPEWork); got != 0 {
		t.Fatalf("touching intervals overlap = %v, want 0", got)
	}
}

func TestSelfOverlap(t *testing.T) {
	r := New()
	r.Add(Event{Rank: 0, Kind: KindKernel, Start: 0, End: 10})
	r.Add(Event{Rank: 0, Kind: KindKernel, Start: 6, End: 12})
	r.Add(Event{Rank: 0, Kind: KindKernel, Start: 20, End: 22})
	if got := r.OverlapTime(0, KindKernel, KindKernel); got != 4 {
		t.Fatalf("self overlap = %v, want 4", got)
	}
}

func TestWriteTimelineFiltersAndLimits(t *testing.T) {
	r := New()
	for i := 0; i < 5; i++ {
		r.Add(Event{Rank: 0, Step: i, Kind: KindComm, Name: "x", Start: 0, End: 1})
	}
	r.Add(Event{Rank: 1, Kind: KindKernel, Name: "other", Start: 0, End: 1})
	var sb strings.Builder
	r.WriteTimeline(&sb, 0, 3)
	out := sb.String()
	if strings.Count(out, "comm") != 3 {
		t.Fatalf("timeline = %q", out)
	}
	if strings.Contains(out, "other") {
		t.Fatal("timeline leaked another rank's events")
	}
	if !strings.Contains(out, "more events") {
		t.Fatal("timeline missing truncation marker")
	}
}

func TestEventDuration(t *testing.T) {
	e := Event{Start: 1.5, End: 4}
	if e.Duration() != 2.5 {
		t.Fatalf("duration = %v", e.Duration())
	}
}
