package openacc

import (
	"errors"
	"testing"

	"sunuintah/internal/athread"
	"sunuintah/internal/perf"
	"sunuintah/internal/sim"
	"sunuintah/internal/sw26010"
)

func TestParallelLoopBlocksUntilComplete(t *testing.T) {
	eng := sim.NewEngine()
	cg := sw26010.NewMachine(eng, perf.DefaultParams(), 1).CG(0)
	acc := New(cg)
	spec := LoopSpec{Name: "loop", FlopsPerCell: 10, Weight: 1}
	var doneAt sim.Time
	var dur sim.Time
	eng.Spawn("mpe", func(p *sim.Process) {
		dur = acc.ParallelLoop(p, spec, 64, false, func(c *athread.CPE) {
			c.Compute(1000)
		})
		doneAt = p.Now()
	})
	eng.Run()
	if dur <= 0 {
		t.Fatal("loop consumed no time")
	}
	if doneAt < dur {
		t.Fatalf("ParallelLoop returned at %v before the cluster finished at %v", doneAt, dur)
	}
	if cg.Counters.CellsComputed != 64*1000 {
		t.Fatalf("cells = %d", cg.Counters.CellsComputed)
	}
}

func TestAsyncEntryPointsUnsupported(t *testing.T) {
	eng := sim.NewEngine()
	cg := sw26010.NewMachine(eng, perf.DefaultParams(), 1).CG(0)
	acc := New(cg)
	if _, err := acc.AsyncTest(); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("AsyncTest err = %v", err)
	}
	if err := acc.AsyncWait(); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("AsyncWait err = %v", err)
	}
}

func TestSequentialLoopsReuseCluster(t *testing.T) {
	eng := sim.NewEngine()
	cg := sw26010.NewMachine(eng, perf.DefaultParams(), 1).CG(0)
	acc := New(cg)
	spec := LoopSpec{Name: "loop", Weight: 1}
	eng.Spawn("mpe", func(p *sim.Process) {
		for i := 0; i < 3; i++ {
			acc.ParallelLoop(p, spec, 64, false, func(c *athread.CPE) { c.Compute(10) })
		}
	})
	eng.Run()
	if cg.Counters.Offloads != 3 {
		t.Fatalf("offloads = %d", cg.Counters.Offloads)
	}
}
