// Package openacc emulates the Sunway OpenACC compiler interface over the
// athread layer, as a documented contrast to the low-level path the paper
// takes. Section IV-B: "the Sunway OpenACC interface does not expose all
// the features of SW26010 and the current implementation does not support
// OpenACC runtime functions such as acc_async_test. For this reason a more
// low-level athreads interface is used here."
//
// Concretely: this facade can offload a parallel loop across the CPE
// cluster, but completion can only be awaited synchronously — there is no
// way to test an offload for completion and do other work meanwhile, which
// is exactly the capability the asynchronous scheduler requires. The
// package exists so the trade-off is executable, not just prose: a
// scheduler built on it can only ever be the paper's "acc.sync" variant.
package openacc

import (
	"errors"

	"sunuintah/internal/athread"
	"sunuintah/internal/sim"
	"sunuintah/internal/sw26010"
)

// ErrUnsupported is returned by the async-query entry points the Sunway
// OpenACC runtime does not implement.
var ErrUnsupported = errors.New("openacc: acc_async_test is not supported by the Sunway OpenACC runtime")

// Accel is an OpenACC-style accelerator view of one core group's CPE
// cluster.
type Accel struct {
	group *athread.Group
	flag  *sim.Counter
	seq   int
}

// New initialises the accelerator on a core group.
func New(cg *sw26010.CoreGroup) *Accel {
	return &Accel{group: athread.NewGroup(cg)}
}

// LoopSpec describes an offloaded parallel loop's cost, mirroring
// athread.KernelSpec (the OpenACC compiler generates the same CPE code).
type LoopSpec = athread.KernelSpec

// ParallelLoop offloads body across the CPE cluster and blocks the calling
// process until every CPE finishes — OpenACC's synchronous kernels
// construct. activeCPEs and functional have athread.Group.Spawn semantics.
// It returns the offload's duration.
func (a *Accel) ParallelLoop(p *sim.Process, spec LoopSpec, activeCPEs int, functional bool, body func(c *athread.CPE)) sim.Time {
	a.seq++
	flag := sim.NewCounter(a.group.CoreGroup().Engine(), "openacc.flag")
	dur := a.group.Spawn(spec, activeCPEs, functional, flag, body)
	flag.WaitFor(p, int64(a.group.NumCPEs()))
	return dur
}

// AsyncTest would poll an asynchronous offload for completion; the Sunway
// implementation does not provide it. It always returns ErrUnsupported,
// making the limitation explicit at the call site.
func (a *Accel) AsyncTest() (bool, error) {
	return false, ErrUnsupported
}

// AsyncWait would block on a previously launched asynchronous region;
// without async launches it has nothing to wait for.
func (a *Accel) AsyncWait() error { return ErrUnsupported }
