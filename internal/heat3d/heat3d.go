// Package heat3d is a third complete model problem for the runtime — the
// 3-D heat equation
//
//	du/dt = alpha * Lap(u)
//
// discretised with a 7-point Laplacian and forward Euler. The
// manufactured solution u = exp(-3 alpha pi^2 t) sin(pi x) sin(pi y)
// sin(pi z) supplies initial data, boundary conditions and verification.
// Where Burgers is exponential-heavy and advection is pure streaming,
// the heat stencil sits between them: arithmetic-only like advection but
// with a wider read pattern, a mid-roofline workload for mixed-physics
// scenarios.
package heat3d

import (
	"math"

	"sunuintah/internal/field"
	"sunuintah/internal/grid"
	"sunuintah/internal/taskgraph"
)

// Alpha is the thermal diffusivity of the model problem.
const Alpha = 0.05

// FlopsPerCell is the counted work of the 7-point update: three
// second-difference terms (4 ops each) plus the Euler combination.
const FlopsPerCell = 14

// KernelWeight is the compute-time scale relative to the Burgers kernel:
// no exponentials, slightly more arithmetic than upwind advection.
const KernelWeight = 0.05

// Exact returns the manufactured solution at (x,y,z,t).
func Exact(x, y, z, t float64) float64 {
	return math.Exp(-3*Alpha*math.Pi*math.Pi*t) *
		math.Sin(math.Pi*x) * math.Sin(math.Pi*y) * math.Sin(math.Pi*z)
}

// Initial is the t=0 profile.
func Initial(x, y, z float64) float64 { return Exact(x, y, z, 0) }

// StableDt returns a stability-safe explicit timestep for the spacings
// (0.2 of the diffusive limit, matching the historical heat3d example:
// 0.2*dx^2/(6*Alpha) on a cubic grid).
func StableDt(dx, dy, dz float64) float64 {
	s := 1/(dx*dx) + 1/(dy*dy) + 1/(dz*dz)
	return 0.2 / (2 * Alpha * s)
}

// NewLabel creates the temperature variable with its exact-solution
// boundary condition.
func NewLabel() *taskgraph.Label {
	return taskgraph.NewLabel("T", Exact)
}

// advance applies one forward-Euler Laplacian step on region, reading
// the flat backing array with precomputed strides like the advection and
// Burgers kernels do.
func advance(in, out *field.Cell, region grid.Box, lv *grid.Level, dt float64) {
	dx, dy, dz := lv.Spacing[0], lv.Spacing[1], lv.Spacing[2]
	rdx2, rdy2, rdz2 := 1/(dx*dx), 1/(dy*dy), 1/(dz*dz)
	ys, zs := in.Strides()
	data := in.Data()
	for k := region.Lo.Z; k < region.Hi.Z; k++ {
		for j := region.Lo.Y; j < region.Hi.Y; j++ {
			base := in.Index(grid.IV(region.Lo.X, j, k))
			for i := region.Lo.X; i < region.Hi.X; i++ {
				idx := base + (i - region.Lo.X)
				v := data[idx]
				lap := (data[idx+1]+data[idx-1]-2*v)*rdx2 +
					(data[idx+ys]+data[idx-ys]-2*v)*rdy2 +
					(data[idx+zs]+data[idx-zs]-2*v)*rdz2
				out.Set(grid.IV(i, j, k), v+dt*Alpha*lap)
			}
		}
	}
}

// NewAdvanceTask builds the heat timestep task in the same shape as the
// Burgers and advection ones: requires T from the old warehouse with one
// ghost layer, computes T into the new warehouse on the CPE cluster.
func NewAdvanceTask(u *taskgraph.Label) *taskgraph.Task {
	return &taskgraph.Task{
		Name: "heat.advance",
		Kind: taskgraph.KindOffload,
		Requires: []taskgraph.Dep{
			{Label: u, DW: taskgraph.OldDW, Ghost: 1},
		},
		Computes: []taskgraph.Dep{
			{Label: u, DW: taskgraph.NewDW},
		},
		Kernel: &taskgraph.Kernel{
			FlopsPerCell: FlopsPerCell,
			Weight:       KernelWeight,
			Compute: func(tc *taskgraph.TileContext) {
				advance(tc.In[u].Data, tc.Out[u].Data, tc.Tile.Box, tc.Level, tc.Dt)
			},
		},
	}
}

// SerialSolve is the runtime-free reference: the whole grid advanced on
// a single ghosted field with exact-solution boundary ghosts.
func SerialSolve(lv *grid.Level, nSteps int, dt float64) *field.Cell {
	dom := lv.Layout.Domain
	old := field.NewCellWithGhost(dom, 1)
	fresh := field.NewCellWithGhost(dom, 1)
	old.FillFunc(dom, func(c grid.IVec) float64 {
		x, y, z := lv.CellCenter(c)
		return Initial(x, y, z)
	})
	t := 0.0
	for s := 0; s < nSteps; s++ {
		shell := dom.Grow(1)
		shell.ForEach(func(c grid.IVec) {
			if dom.Contains(c) {
				return
			}
			x, y, z := lv.CellCenter(c)
			old.Set(c, Exact(x, y, z, t))
		})
		advance(old, fresh, dom, lv, dt)
		old, fresh = fresh, old
		t += dt
	}
	return old
}
