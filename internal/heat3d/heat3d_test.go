package heat3d

import (
	"math"
	"testing"

	"sunuintah/internal/core"
	"sunuintah/internal/grid"
	"sunuintah/internal/scheduler"
	"sunuintah/internal/taskgraph"
)

func level(t *testing.T, n int) *grid.Level {
	t.Helper()
	lv, err := grid.NewUnitCubeLevel(grid.IV(n, n, n), grid.IV(2, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	return lv
}

func TestExactDecays(t *testing.T) {
	// The manufactured solution is a decaying standing mode: the peak
	// amplitude at the centre follows exp(-3 alpha pi^2 t).
	x, y, z := 0.5, 0.5, 0.5
	t0, t1 := Exact(x, y, z, 0.0), Exact(x, y, z, 0.5)
	if t1 >= t0 || t1 <= 0 {
		t.Fatalf("solution does not decay: u(0)=%v u(0.5)=%v", t0, t1)
	}
	want := t0 * math.Exp(-3*Alpha*math.Pi*math.Pi*0.5)
	if math.Abs(t1-want) > 1e-12 {
		t.Fatalf("decay rate wrong: got %v want %v", t1, want)
	}
}

func TestStableDtMatchesHistoricalExample(t *testing.T) {
	// The promoted package must keep the heat3d example's timestep:
	// 0.2*dx^2/(6*Alpha) on a cubic grid.
	dx := 1.0 / 32
	want := 0.2 * dx * dx / (6 * Alpha)
	if got := StableDt(dx, dx, dx); math.Abs(got-want) > 1e-18 {
		t.Fatalf("StableDt = %v, want %v", got, want)
	}
}

func TestSerialSolveTracksExact(t *testing.T) {
	lv := level(t, 32)
	dx := lv.Spacing[0]
	dt := StableDt(dx, dx, dx)
	const steps = 10
	u := SerialSolve(lv, steps, dt)
	finalT := steps * dt
	maxErr := 0.0
	lv.Layout.Domain.ForEach(func(c grid.IVec) {
		x, y, z := lv.CellCenter(c)
		if e := math.Abs(u.At(c) - Exact(x, y, z, finalT)); e > maxErr {
			maxErr = e
		}
	})
	if maxErr > 5e-3 {
		t.Fatalf("error vs exact = %v", maxErr)
	}
}

func TestScheduledRunMatchesSerialSolve(t *testing.T) {
	// The scheduled task must produce exactly the serial reference: same
	// stencil, same boundary handling, bit-identical across the runtime.
	cells := grid.IV(16, 16, 16)
	u := NewLabel()
	dx := 1.0 / float64(cells.X)
	dt := StableDt(dx, dx, dx)
	prob := core.Problem{
		Tasks: []*taskgraph.Task{NewAdvanceTask(u)},
		Initial: map[*taskgraph.Label]func(x, y, z float64) float64{
			u: Initial,
		},
		Dt: dt,
	}
	cfg := core.Config{
		Cells:       cells,
		PatchCounts: grid.IV(2, 2, 2),
		NumCGs:      4,
		Scheduler:   scheduler.Config{Mode: scheduler.ModeAsync, Functional: true},
	}
	sim, err := core.NewSimulation(cfg, prob)
	if err != nil {
		t.Fatal(err)
	}
	const steps = 5
	if _, err := sim.Run(steps); err != nil {
		t.Fatal(err)
	}
	got, err := sim.GatherField(u)
	if err != nil {
		t.Fatal(err)
	}
	want := SerialSolve(sim.Level, steps, dt)
	sim.Level.Layout.Domain.ForEach(func(c grid.IVec) {
		if got.At(c) != want.At(c) {
			t.Fatalf("cell %v: scheduled %v != serial %v", c, got.At(c), want.At(c))
		}
	})
}
