package mpisim

// rankSnap is an MPI rank's rewindable step-boundary state: the traffic
// and fault counters plus the collective cursor and duplicate-detection
// window. In-flight requests (posted receives, unexpected messages) are
// not captured — at an aligned step boundary every request has completed
// and both lists are empty.
type rankSnap struct {
	bytesSent     int64
	bytesReceived int64
	msgsSent      int64
	msgsReceived  int64
	testCalls     int64
	resends       int64
	dupsDiscarded int64
	sendSeq       int64
	nextColl      int
	seen          map[int64]bool
}

// SaveState captures the rank's counters (the sim.StateSaver shape, for
// optimistic rollback and in-memory rank rewind). Call it only at step
// boundaries with no requests outstanding.
func (r *Rank) SaveState() any {
	s := rankSnap{
		bytesSent: r.BytesSent, bytesReceived: r.BytesReceived,
		msgsSent: r.MsgsSent, msgsReceived: r.MsgsReceived,
		testCalls: r.TestCalls, resends: r.Resends,
		dupsDiscarded: r.DupsDiscarded,
		sendSeq:       r.sendSeq, nextColl: r.nextColl,
	}
	if r.seen != nil {
		s.seen = make(map[int64]bool, len(r.seen))
		for k, v := range r.seen {
			s.seen[k] = v
		}
	}
	return s
}

// RestoreState rewinds the rank's counters to a SaveState snapshot.
func (r *Rank) RestoreState(state any) {
	s := state.(rankSnap)
	r.BytesSent, r.BytesReceived = s.bytesSent, s.bytesReceived
	r.MsgsSent, r.MsgsReceived = s.msgsSent, s.msgsReceived
	r.TestCalls, r.Resends = s.testCalls, s.resends
	r.DupsDiscarded = s.dupsDiscarded
	r.sendSeq, r.nextColl = s.sendSeq, s.nextColl
	r.seen = nil
	if s.seen != nil {
		r.seen = make(map[int64]bool, len(s.seen))
		for k, v := range s.seen {
			r.seen[k] = v
		}
	}
	r.recvs = r.recvs[:0]
	r.unexpected = r.unexpected[:0]
}
