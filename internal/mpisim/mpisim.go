// Package mpisim is a simulated MPI subset sufficient for the Uintah
// scheduler: non-blocking point-to-point sends and receives with tag
// matching, request testing, and blocking reductions.
//
// Two behaviours of real MPI that the paper's scheduler design depends on
// are modelled faithfully:
//
//   - Transfers take latency + bytes/bandwidth on the interconnect
//     (Table II: ~1 us, 16 GB/s bidirectional P2P).
//   - Completion is only observable through Test/Wait, and each call costs
//     MPE time. "In most MPI implementations, the non-blocking sends and
//     receives do not progress without the help of the host processor"
//     (Section V-C, citing Denis & Trahay): a rank that spins on a
//     completion flag without testing sees none of its communication
//     finish, which is precisely the handicap of the synchronous scheduler.
//
// Payloads are real []float64 slices, so the simulated application's
// numerics are correct across ranks; timing-only runs pass nil payloads
// with an explicit byte count.
package mpisim

import (
	"fmt"
	"math"

	"sunuintah/internal/faults"
	"sunuintah/internal/perf"
	"sunuintah/internal/sim"
	"sunuintah/internal/trace"
)

// Comm is a communicator spanning size ranks (one per core group).
type Comm struct {
	eng    *sim.Engine
	params perf.Params
	ranks  []*Rank

	// Fault plane. A nil injector leaves every legacy path untouched.
	inj *faults.Injector
	rec *trace.Recorder
	// nextSeq numbers transmissions for duplicate suppression at receivers.
	nextSeq int64
}

// SetFaults attaches a fault injector (and an optional trace recorder for
// fault/recovery markers) to the communicator. With a non-nil injector,
// sends draw a per-transmission fate — drop, duplicate, delay, degrade —
// and dropped messages are re-sent by the owning rank's Test/Wait
// progression, mirroring how real non-blocking MPI only progresses under
// host attention.
func (c *Comm) SetFaults(inj *faults.Injector, rec *trace.Recorder) {
	c.inj = inj
	c.rec = rec
}

// NewComm builds a communicator with the given number of ranks.
func NewComm(eng *sim.Engine, params perf.Params, size int) *Comm {
	if size <= 0 {
		panic("mpisim: communicator needs at least one rank")
	}
	c := &Comm{eng: eng, params: params}
	for r := 0; r < size; r++ {
		c.ranks = append(c.ranks, &Rank{comm: c, rank: r})
	}
	return c
}

// Size returns the number of ranks.
func (c *Comm) Size() int { return len(c.ranks) }

// Rank returns rank r's endpoint.
func (c *Comm) Rank(r int) *Rank {
	if r < 0 || r >= len(c.ranks) {
		panic(fmt.Sprintf("mpisim: rank %d out of range [0,%d)", r, len(c.ranks)))
	}
	return c.ranks[r]
}

// Rank is one MPI process's endpoint.
type Rank struct {
	comm *Comm
	rank int

	recvs      []*Request // posted, unmatched receives
	unexpected []*message // arrived or in-flight messages with no receive yet

	// Collectives executed so far, for in-order matching across ranks.
	collectives []*collective
	nextColl    int

	// Stats.
	BytesSent     int64
	BytesReceived int64
	MsgsSent      int64
	MsgsReceived  int64
	TestCalls     int64

	// Fault-plane state and stats (used only with an injector attached).
	seen          map[int64]bool // transmission seqs already delivered
	Resends       int64          // retransmissions of dropped messages
	DupsDiscarded int64          // duplicate deliveries suppressed
}

// RankID returns this endpoint's rank number.
func (r *Rank) RankID() int { return r.rank }

type message struct {
	src, tag  int
	bytes     int64
	payload   []float64
	arrivesAt sim.Time
	// seq identifies the logical transmission for duplicate suppression;
	// 0 when no injector is attached.
	seq int64
}

// Request is the handle of a non-blocking operation.
type Request struct {
	isSend  bool
	src     int // sends: destination; receives: expected source
	tag     int
	bytes   int64
	payload []float64 // receives: filled on match

	matched bool
	doneAt  sim.Time
	sig     *sim.Signal

	// Fault-plane state for dropped sends awaiting retransmission.
	pending    *sendState       // non-nil while the last transmission was lost
	retryEvent *sim.EventHandle // autonomous backstop resend
	retryAfter sim.Time         // earliest Test/Wait-driven resend time
}

// sendState is everything needed to retransmit a dropped send.
type sendState struct {
	dst, tag int
	payload  []float64
	bytes    int64
	seq      int64
	attempt  int
}

// Payload returns the received data (nil for sends, timing-only transfers,
// or before completion).
func (q *Request) Payload() []float64 { return q.payload }

// Signal returns the signal fired when the request completes, for callers
// that want to block or register wake-ups instead of polling.
func (q *Request) Signal() *sim.Signal { return q.sig }

// Bytes returns the message size.
func (q *Request) Bytes() int64 { return q.bytes }

// Isend posts a non-blocking send of payload (may be nil) with the given
// on-wire size to rank dst with the given tag. The calling process is
// charged the posting cost. The send completes locally once the data has
// left the sender (one wire time).
func (r *Rank) Isend(p *sim.Process, dst, tag int, payload []float64, bytes int64) *Request {
	if bytes < 0 {
		panic("mpisim: negative message size")
	}
	p.Sleep(sim.Time(r.comm.params.MPIPostCost))
	now := r.comm.eng.Now()
	wire := sim.Time(r.comm.params.MessageTimeBetween(r.rank, dst, bytes))
	req := &Request{
		isSend: true, src: dst, tag: tag, bytes: bytes,
		sig: sim.NewSignal(r.comm.eng, fmt.Sprintf("send %d->%d tag %d", r.rank, dst, tag)),
	}
	r.BytesSent += bytes
	r.MsgsSent++

	if r.comm.inj != nil {
		r.comm.nextSeq++
		r.transmit(req, &sendState{dst: dst, tag: tag, payload: payload,
			bytes: bytes, seq: r.comm.nextSeq, attempt: 1})
		return req
	}

	req.matched = true
	req.doneAt = now + wire
	r.comm.eng.Schedule(wire, req.sig.Fire)
	m := &message{src: r.rank, tag: tag, bytes: bytes, payload: payload, arrivesAt: now + wire}
	dstRank := r.comm.Rank(dst)
	r.comm.eng.Schedule(wire, func() { dstRank.deliver(m) })
	return req
}

// maxSendAttempts bounds retransmission: the fate draw on the final attempt
// is forced to deliver, so a send can be delayed arbitrarily but never lost
// forever (the substrate models transient faults, not partitions).
const maxSendAttempts = 6

// transmit performs one on-wire attempt of a send under fault injection.
func (r *Rank) transmit(req *Request, st *sendState) {
	c := r.comm
	now := c.eng.Now()
	wire := sim.Time(c.params.MessageTimeBetween(r.rank, st.dst, st.bytes))
	drop, dup, delay, degrade := c.inj.MsgFate()
	if st.attempt >= maxSendAttempts {
		drop = false
	}
	if delay {
		wire *= sim.Time(c.inj.Plan().DelayFactor)
		c.traceFault(r.rank, "msg-delay", st)
	}
	if degrade {
		wire *= sim.Time(c.inj.Plan().DegradeFactor)
		c.traceFault(r.rank, "msg-degrade", st)
	}

	if drop {
		// Lost on the wire: the send stays incomplete, and retransmission
		// is driven by the sender's Test/Wait progression (with an
		// autonomous backstop so a rank blocked elsewhere still recovers).
		c.traceFault(r.rank, "msg-drop", st)
		req.pending = st
		req.retryAfter = now + 2*wire
		req.retryEvent = c.eng.Schedule(4*wire, func() { r.resend(req) })
		return
	}

	req.matched = true
	req.doneAt = now + wire
	c.eng.Schedule(wire, req.sig.Fire)
	m := &message{src: r.rank, tag: st.tag, bytes: st.bytes, payload: st.payload,
		arrivesAt: now + wire, seq: st.seq}
	dstRank := c.Rank(st.dst)
	c.eng.Schedule(wire, func() { dstRank.deliver(m) })
	if dup {
		// A duplicate of the same transmission lands a little later; the
		// receiver suppresses it by sequence number.
		c.traceFault(r.rank, "msg-dup", st)
		d := *m
		d.arrivesAt = now + wire*3/2
		c.eng.Schedule(wire*3/2, func() { dstRank.deliver(&d) })
	}
}

// resend retransmits a dropped send. Idempotent: once the request has a
// successful transmission in flight it does nothing, so the Test-driven and
// backstop paths can race harmlessly.
func (r *Rank) resend(req *Request) {
	if req.matched || req.pending == nil {
		return
	}
	st := req.pending
	req.pending = nil
	req.retryEvent = nil
	st.attempt++
	r.Resends++
	r.comm.traceRecovery(r.rank, "msg-resend", st)
	r.transmit(req, st)
}

// traceFault and traceRecovery emit zero-duration fault-plane markers.
func (c *Comm) traceFault(rank int, name string, st *sendState) {
	if c.rec == nil {
		return
	}
	now := c.eng.Now()
	c.rec.Add(trace.Event{Rank: rank, Step: -1, Kind: trace.KindFault,
		Name:  fmt.Sprintf("%s dst=%d tag=%d try=%d", name, st.dst, st.tag, st.attempt),
		Start: now, End: now})
}

func (c *Comm) traceRecovery(rank int, name string, st *sendState) {
	if c.rec == nil {
		return
	}
	now := c.eng.Now()
	c.rec.Add(trace.Event{Rank: rank, Step: -1, Kind: trace.KindRecovery,
		Name:  fmt.Sprintf("%s dst=%d tag=%d try=%d", name, st.dst, st.tag, st.attempt),
		Start: now, End: now})
}

// Irecv posts a non-blocking receive for a message from src with the given
// tag. The calling process is charged the posting cost. Matching follows
// posting order for identical (src, tag) pairs.
func (r *Rank) Irecv(p *sim.Process, src, tag int) *Request {
	p.Sleep(sim.Time(r.comm.params.MPIPostCost))
	req := &Request{
		src: src, tag: tag,
		sig: sim.NewSignal(r.comm.eng, fmt.Sprintf("recv %d<-%d tag %d", r.rank, src, tag)),
	}
	// Check the unexpected queue first (message already arrived or is in
	// flight).
	for i, m := range r.unexpected {
		if m.src == src && m.tag == tag {
			r.unexpected = append(r.unexpected[:i], r.unexpected[i+1:]...)
			r.complete(req, m)
			return req
		}
	}
	r.recvs = append(r.recvs, req)
	return req
}

// deliver matches an arriving message against posted receives.
func (r *Rank) deliver(m *message) {
	if r.comm.inj != nil {
		// Suppress duplicate deliveries of the same logical transmission.
		if r.seen[m.seq] {
			r.DupsDiscarded++
			return
		}
		if r.seen == nil {
			r.seen = map[int64]bool{}
		}
		r.seen[m.seq] = true
	}
	for i, req := range r.recvs {
		if req.src == m.src && req.tag == m.tag {
			r.recvs = append(r.recvs[:i], r.recvs[i+1:]...)
			r.complete(req, m)
			return
		}
	}
	r.unexpected = append(r.unexpected, m)
}

func (r *Rank) complete(req *Request, m *message) {
	now := r.comm.eng.Now()
	req.matched = true
	req.bytes = m.bytes
	req.payload = m.payload
	if m.arrivesAt > now {
		req.doneAt = m.arrivesAt
		r.comm.eng.Schedule(m.arrivesAt-now, req.sig.Fire)
	} else {
		req.doneAt = now
		req.sig.Fire()
	}
	r.BytesReceived += m.bytes
	r.MsgsReceived++
}

// Test checks a request for completion, charging the calling process the
// per-test cost. It reports whether the operation has finished.
func (r *Rank) Test(p *sim.Process, req *Request) bool {
	p.Sleep(sim.Time(r.comm.params.MPITestCost))
	r.TestCalls++
	if r.comm.inj != nil && req.isSend && req.pending != nil &&
		r.comm.eng.Now() >= req.retryAfter {
		// Host attention progresses the library: a send whose transmission
		// was lost is retried here, ahead of the autonomous backstop.
		if req.retryEvent.Cancel() {
			r.resend(req)
		}
	}
	return req.matched && req.doneAt <= r.comm.eng.Now()
}

// TestAll tests a batch of requests with a single charge per request,
// returning the number completed.
func (r *Rank) TestAll(p *sim.Process, reqs []*Request) int {
	done := 0
	for _, req := range reqs {
		if r.Test(p, req) {
			done++
		}
	}
	return done
}

// Wait blocks the calling process until the request completes. Unlike
// Test-polling, Wait models a blocking MPI_Wait (the library progresses the
// request internally).
func (r *Rank) Wait(p *sim.Process, req *Request) {
	r.TestCalls++
	p.Sleep(sim.Time(r.comm.params.MPITestCost))
	if req.matched && req.doneAt <= r.comm.eng.Now() {
		return
	}
	if r.comm.inj != nil && req.isSend && req.pending != nil {
		// A blocking wait keeps the library progressing: pull the resend
		// forward to the earliest retry time instead of the late backstop.
		if req.retryEvent.Cancel() {
			delay := req.retryAfter - r.comm.eng.Now()
			r.comm.eng.Schedule(delay, func() { r.resend(req) })
		}
	}
	req.sig.Wait(p)
}

// Done reports completion without charging any cost (for assertions).
func (q *Request) Done(now sim.Time) bool { return q.matched && q.doneAt <= now }

// ---- Collectives ----

// ReduceOp is a reduction operator.
type ReduceOp int

// Supported reduction operators.
const (
	OpSum ReduceOp = iota
	OpMax
	OpMin
)

type collective struct {
	op      ReduceOp
	arrived int
	value   float64
	sig     *sim.Signal
	result  float64
	doneSet bool
}

// Allreduce combines x across all ranks with op and returns the result,
// blocking until every rank has contributed. Every rank must call
// collectives in the same order. The modelled cost is the software base
// cost plus a 2*ceil(log2(P)) latency tree after the last arrival.
func (r *Rank) Allreduce(p *sim.Process, x float64, op ReduceOp) float64 {
	c := r.comm
	idx := r.nextColl
	r.nextColl++
	// The collective object is shared: rank 0's slice is authoritative.
	root := c.ranks[0]
	for len(root.collectives) <= idx {
		root.collectives = append(root.collectives, nil)
	}
	coll := root.collectives[idx]
	if coll == nil {
		coll = &collective{op: op, sig: sim.NewSignal(c.eng, fmt.Sprintf("allreduce#%d", idx))}
		switch op {
		case OpMax:
			coll.value = math.Inf(-1)
		case OpMin:
			coll.value = math.Inf(1)
		}
		root.collectives[idx] = coll
	}
	if coll.op != op {
		panic("mpisim: mismatched collective operations across ranks")
	}
	p.Sleep(sim.Time(c.params.ReduceBaseCost))
	switch op {
	case OpSum:
		coll.value += x
	case OpMax:
		coll.value = math.Max(coll.value, x)
	case OpMin:
		coll.value = math.Min(coll.value, x)
	}
	coll.arrived++
	if coll.arrived == c.Size() {
		levels := 0
		for 1<<levels < c.Size() {
			levels++
		}
		delay := sim.Time(2*float64(levels)*c.params.LinkLatency + c.params.ReduceBaseCost)
		coll.result = coll.value
		coll.doneSet = true
		c.eng.Schedule(delay, coll.sig.Fire)
	}
	coll.sig.Wait(p)
	return coll.result
}

// Barrier blocks until every rank has entered it.
func (r *Rank) Barrier(p *sim.Process) {
	r.Allreduce(p, 0, OpSum)
}
