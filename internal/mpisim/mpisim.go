// Package mpisim is a simulated MPI subset sufficient for the Uintah
// scheduler: non-blocking point-to-point sends and receives with tag
// matching, request testing, and blocking reductions.
//
// Two behaviours of real MPI that the paper's scheduler design depends on
// are modelled faithfully:
//
//   - Transfers take latency + bytes/bandwidth on the interconnect
//     (Table II: ~1 us, 16 GB/s bidirectional P2P).
//   - Completion is only observable through Test/Wait, and each call costs
//     MPE time. "In most MPI implementations, the non-blocking sends and
//     receives do not progress without the help of the host processor"
//     (Section V-C, citing Denis & Trahay): a rank that spins on a
//     completion flag without testing sees none of its communication
//     finish, which is precisely the handicap of the synchronous scheduler.
//
// Payloads are real []float64 slices, so the simulated application's
// numerics are correct across ranks; timing-only runs pass nil payloads
// with an explicit byte count.
package mpisim

import (
	"fmt"
	"math"
	"sync"

	"sunuintah/internal/faults"
	"sunuintah/internal/obs"
	"sunuintah/internal/perf"
	"sunuintah/internal/sim"
	"sunuintah/internal/trace"
)

// Comm is a communicator spanning size ranks (one per core group).
type Comm struct {
	params perf.Params
	ranks  []*Rank

	// engs[r] is the engine that owns rank r's processes and timers. With
	// the serial engine every entry is the same engine; under sharding the
	// entries follow the rank partition and shards coordinates them.
	engs   []*sim.Engine
	shards *sim.ShardSet

	// coalesce enables batched completion polls (TestSweep). On by
	// default; the event-count experiments switch it off for comparison.
	coalesce bool

	// Fault plane. A nil injector leaves every legacy path untouched.
	inj *faults.Injector
	rec *trace.Recorder

	// Collectives in flight, matched across ranks by call index.
	collMu      sync.Mutex
	collectives []*collective
}

// SetFaults attaches a fault injector (and an optional trace recorder for
// fault/recovery markers) to the communicator. With a non-nil injector,
// sends draw a per-transmission fate — drop, duplicate, delay, degrade —
// and dropped messages are re-sent by the owning rank's Test/Wait
// progression, mirroring how real non-blocking MPI only progresses under
// host attention.
func (c *Comm) SetFaults(inj *faults.Injector, rec *trace.Recorder) {
	c.inj = inj
	c.rec = rec
}

// SetObs attaches the flight recorder's per-rank probes: sends record the
// in-flight message/byte series (rising at post time, falling at the
// sender-computed arrival instant, so no event ever touches another
// rank's engine) and fault-plane markers bump the fault/recovery
// counters. Observability only — no simulated behaviour changes.
func (c *Comm) SetObs(s *obs.Sampler) {
	for _, rk := range c.ranks {
		rk.probes = s.Rank(rk.rank)
	}
}

// NewComm builds a communicator with the given number of ranks.
func NewComm(eng *sim.Engine, params perf.Params, size int) *Comm {
	if size <= 0 {
		panic("mpisim: communicator needs at least one rank")
	}
	c := &Comm{params: params, coalesce: true}
	for r := 0; r < size; r++ {
		c.ranks = append(c.ranks, &Rank{comm: c, rank: r})
		c.engs = append(c.engs, eng)
	}
	return c
}

// Shard routes the communicator over the engines of a sharded run: engs[r]
// is the engine owning rank r. Deliveries between ranks on different
// engines then travel as cross-shard mail with their virtual wire time as
// the delivery time, and collective completions fan out through the
// barrier in canonical order. Must be called before any traffic.
func (c *Comm) Shard(ss *sim.ShardSet, engs []*sim.Engine) {
	if len(engs) != len(c.ranks) {
		panic("mpisim: Shard needs one engine per rank")
	}
	c.shards = ss
	copy(c.engs, engs)
}

// SetTestCoalescing toggles batched completion polling (TestSweep). It is
// on by default; switching it off restores one poll event per request, for
// measuring the event-count saving.
func (c *Comm) SetTestCoalescing(on bool) { c.coalesce = on }

// Size returns the number of ranks.
func (c *Comm) Size() int { return len(c.ranks) }

// Rank returns rank r's endpoint.
func (c *Comm) Rank(r int) *Rank {
	if r < 0 || r >= len(c.ranks) {
		panic(fmt.Sprintf("mpisim: rank %d out of range [0,%d)", r, len(c.ranks)))
	}
	return c.ranks[r]
}

// Rank is one MPI process's endpoint.
type Rank struct {
	comm *Comm
	rank int

	recvs      []*Request // posted, unmatched receives
	unexpected []*message // arrived or in-flight messages with no receive yet

	// nextColl indexes this rank's next collective call, for in-order
	// matching across ranks (the objects live on the Comm).
	nextColl int

	// Stats.
	BytesSent     int64
	BytesReceived int64
	MsgsSent      int64
	MsgsReceived  int64
	TestCalls     int64

	// Fault-plane state and stats (used only with an injector attached).
	seen          map[int64]bool // transmission seqs already delivered
	sendSeq       int64          // rank-local transmission counter
	Resends       int64          // retransmissions of dropped messages
	DupsDiscarded int64          // duplicate deliveries suppressed

	// probes is this rank's flight-recorder hook set (nil = disabled).
	// Touched only from this rank's engine events, so sharding never
	// races on it.
	probes *obs.RankProbes

	// msgFree is this rank's envelope freelist. A sender issues envelopes
	// from its own pool (on its own engine) and the receiver retires them
	// into its pool (on its engine) once consumed, so neither end ever
	// locks and halo-exchange traffic recycles envelopes steadily.
	msgFree []*message
	// reqFree is the request freelist (see Free).
	reqFree []*Request
}

// getMsg issues an empty envelope from this rank's freelist.
func (r *Rank) getMsg() *message {
	if n := len(r.msgFree); n > 0 {
		m := r.msgFree[n-1]
		r.msgFree[n-1] = nil
		r.msgFree = r.msgFree[:n-1]
		return m
	}
	return &message{}
}

// putMsg retires a fully consumed envelope into this rank's freelist.
func (r *Rank) putMsg(m *message) {
	*m = message{}
	r.msgFree = append(r.msgFree, m)
}

// getReq issues a zeroed request from this rank's freelist.
func (r *Rank) getReq() *Request {
	if n := len(r.reqFree); n > 0 {
		q := r.reqFree[n-1]
		r.reqFree[n-1] = nil
		r.reqFree = r.reqFree[:n-1]
		return q
	}
	return &Request{}
}

// Free retires a completed request into this rank's pool for reuse by a
// later Isend/Irecv. Callers hand back a request only once they are done
// with it entirely — completion observed, payload consumed, nobody left
// waiting on its signal. Under fault injection requests stay heap-managed
// (retry backstops may still reference them), so Free is a no-op there.
func (r *Rank) Free(req *Request) {
	if r.comm.inj != nil || req == nil {
		return
	}
	*req = Request{}
	r.reqFree = append(r.reqFree, req)
}

// RankID returns this endpoint's rank number.
func (r *Rank) RankID() int { return r.rank }

// eng returns the engine owning this rank.
func (r *Rank) eng() *sim.Engine { return r.comm.engs[r.rank] }

// sendCall schedules c on dst's engine after delay of this rank's virtual
// time — directly when both ranks share an engine, as batched cross-shard
// mail otherwise. The delay is a wire time, which core guarantees is at
// least the shard-pair lookahead for every cross-shard rank pair, so the
// staged item always clears the destination's window end. Taking a Caller
// (the message envelope itself) keeps the whole path allocation-free.
func (r *Rank) sendCall(dst int, delay sim.Time, c sim.Caller) {
	se, de := r.eng(), r.comm.engs[dst]
	if se == de {
		se.CallAfter(delay, c)
		return
	}
	r.comm.shards.PostCall(se, de, se.Now()+delay, c)
}

type message struct {
	dst       *Rank
	src, tag  int
	bytes     int64
	payload   []float64
	arrivesAt sim.Time
	// seq identifies the logical transmission for duplicate suppression;
	// 0 when no injector is attached.
	seq int64
}

// Call delivers the message at its destination: the envelope is its own
// wire-arrival Caller, so a send schedules no closure. Envelopes are
// freelist-managed per rank (getMsg/putMsg) and recycled once consumed.
func (m *message) Call() { m.dst.deliver(m) }

// Request is the handle of a non-blocking operation.
type Request struct {
	isSend  bool
	src     int // sends: destination; receives: expected source
	tag     int
	bytes   int64
	payload []float64 // receives: filled on match

	matched bool
	doneAt  sim.Time
	sig     sim.Signal

	// Fault-plane state for dropped sends awaiting retransmission.
	pending    *sendState      // non-nil while the last transmission was lost
	retryEvent sim.EventHandle // autonomous backstop resend
	retryAfter sim.Time        // earliest Test/Wait-driven resend time
}

// sendState is everything needed to retransmit a dropped send.
type sendState struct {
	dst, tag int
	payload  []float64
	bytes    int64
	seq      int64
	attempt  int
}

// Payload returns the received data (nil for sends, timing-only transfers,
// or before completion).
func (q *Request) Payload() []float64 { return q.payload }

// Signal returns the signal fired when the request completes, for callers
// that want to block or register wake-ups instead of polling. The signal is
// embedded in the request, so a request costs one allocation even when the
// per-rank pool is cold.
func (q *Request) Signal() *sim.Signal { return &q.sig }

// Bytes returns the message size.
func (q *Request) Bytes() int64 { return q.bytes }

// Isend posts a non-blocking send of payload (may be nil) with the given
// on-wire size to rank dst with the given tag. The calling process is
// charged the posting cost. The send completes locally once the data has
// left the sender (one wire time).
func (r *Rank) Isend(p *sim.Process, dst, tag int, payload []float64, bytes int64) *Request {
	if bytes < 0 {
		panic("mpisim: negative message size")
	}
	p.Sleep(sim.Time(r.comm.params.MPIPostCost))
	now := r.eng().Now()
	wire := sim.Time(r.comm.params.MessageTimeBetween(r.rank, dst, bytes))
	req := r.getReq()
	req.isSend, req.src, req.tag, req.bytes = true, dst, tag, bytes
	req.sig.Init(r.eng(), "send")
	r.BytesSent += bytes
	r.MsgsSent++

	if r.comm.inj != nil {
		// Transmission seqs are rank-local (disambiguated by the rank in
		// the high bits) so concurrent shards never contend on a counter.
		r.sendSeq++
		r.transmit(req, &sendState{dst: dst, tag: tag, payload: payload,
			bytes: bytes, seq: int64(r.rank+1)<<32 | r.sendSeq, attempt: 1})
		return req
	}

	req.matched = true
	req.doneAt = now + wire
	r.eng().CallAfter(wire, &req.sig)
	m := r.getMsg()
	*m = message{dst: r.comm.Rank(dst), src: r.rank, tag: tag, bytes: bytes,
		payload: payload, arrivesAt: now + wire}
	r.sendCall(dst, wire, m)
	r.probes.MsgSent(now, bytes, now+wire)
	return req
}

// maxSendAttempts bounds retransmission: the fate draw on the final attempt
// is forced to deliver, so a send can be delayed arbitrarily but never lost
// forever (the substrate models transient faults, not partitions).
const maxSendAttempts = 6

// transmit performs one on-wire attempt of a send under fault injection.
func (r *Rank) transmit(req *Request, st *sendState) {
	c := r.comm
	now := r.eng().Now()
	wire := sim.Time(c.params.MessageTimeBetween(r.rank, st.dst, st.bytes))
	drop, dup, delay, degrade := c.inj.MsgFate(r.rank)
	if st.attempt >= maxSendAttempts {
		drop = false
	}
	if delay {
		wire *= sim.Time(c.inj.Plan().DelayFactor)
		c.traceFault(r.rank, "msg-delay", st)
	}
	if degrade {
		wire *= sim.Time(c.inj.Plan().DegradeFactor)
		c.traceFault(r.rank, "msg-degrade", st)
	}

	if drop {
		// Lost on the wire: the send stays incomplete, and retransmission
		// is driven by the sender's Test/Wait progression (with an
		// autonomous backstop so a rank blocked elsewhere still recovers).
		c.traceFault(r.rank, "msg-drop", st)
		req.pending = st
		req.retryAfter = now + 2*wire
		req.retryEvent = r.eng().Schedule(4*wire, func() { r.resend(req) })
		return
	}

	req.matched = true
	req.doneAt = now + wire
	r.eng().CallAfter(wire, &req.sig)
	m := r.getMsg()
	*m = message{dst: c.Rank(st.dst), src: r.rank, tag: st.tag, bytes: st.bytes,
		payload: st.payload, arrivesAt: now + wire, seq: st.seq}
	r.sendCall(st.dst, wire, m)
	r.probes.MsgSent(now, st.bytes, now+wire)
	if dup {
		// A duplicate of the same transmission lands a little later; the
		// receiver suppresses it by sequence number.
		c.traceFault(r.rank, "msg-dup", st)
		d := r.getMsg()
		*d = *m
		d.arrivesAt = now + wire*3/2
		r.sendCall(st.dst, wire*3/2, d)
		r.probes.MsgSent(now, st.bytes, now+wire*3/2)
	}
}

// resend retransmits a dropped send. Idempotent: once the request has a
// successful transmission in flight it does nothing, so the Test-driven and
// backstop paths can race harmlessly.
func (r *Rank) resend(req *Request) {
	if req.matched || req.pending == nil {
		return
	}
	st := req.pending
	req.pending = nil
	req.retryEvent = sim.EventHandle{}
	st.attempt++
	r.Resends++
	r.comm.traceRecovery(r.rank, "msg-resend", st)
	r.transmit(req, st)
}

// traceFault and traceRecovery emit zero-duration fault-plane markers and
// bump the flight recorder's per-rank counters. Both run on the faulting
// rank's own engine.
func (c *Comm) traceFault(rank int, name string, st *sendState) {
	c.ranks[rank].probes.Fault(c.engs[rank].Now())
	if c.rec == nil {
		return
	}
	now := c.engs[rank].Now()
	c.rec.Add(trace.Event{Rank: rank, Step: -1, Kind: trace.KindFault,
		Name:  fmt.Sprintf("%s dst=%d tag=%d try=%d", name, st.dst, st.tag, st.attempt),
		Start: now, End: now})
}

func (c *Comm) traceRecovery(rank int, name string, st *sendState) {
	c.ranks[rank].probes.Recovery(c.engs[rank].Now())
	if c.rec == nil {
		return
	}
	now := c.engs[rank].Now()
	c.rec.Add(trace.Event{Rank: rank, Step: -1, Kind: trace.KindRecovery,
		Name:  fmt.Sprintf("%s dst=%d tag=%d try=%d", name, st.dst, st.tag, st.attempt),
		Start: now, End: now})
}

// Irecv posts a non-blocking receive for a message from src with the given
// tag. The calling process is charged the posting cost. Matching follows
// posting order for identical (src, tag) pairs.
func (r *Rank) Irecv(p *sim.Process, src, tag int) *Request {
	p.Sleep(sim.Time(r.comm.params.MPIPostCost))
	req := r.getReq()
	req.src, req.tag = src, tag
	req.sig.Init(r.eng(), "recv")
	// Check the unexpected queue first (message already arrived or is in
	// flight).
	for i, m := range r.unexpected {
		if m.src == src && m.tag == tag {
			r.unexpected = append(r.unexpected[:i], r.unexpected[i+1:]...)
			r.complete(req, m)
			return req
		}
	}
	r.recvs = append(r.recvs, req)
	return req
}

// deliver matches an arriving message against posted receives. It runs on
// the receiving rank's engine; consumed envelopes retire into this rank's
// freelist (unmatched ones wait on the unexpected queue and retire when a
// receive claims them).
func (r *Rank) deliver(m *message) {
	if r.comm.inj != nil {
		// Suppress duplicate deliveries of the same logical transmission.
		if r.seen[m.seq] {
			r.DupsDiscarded++
			r.putMsg(m)
			return
		}
		if r.seen == nil {
			r.seen = map[int64]bool{}
		}
		r.seen[m.seq] = true
	}
	for i, req := range r.recvs {
		if req.src == m.src && req.tag == m.tag {
			r.recvs = append(r.recvs[:i], r.recvs[i+1:]...)
			r.complete(req, m)
			return
		}
	}
	r.unexpected = append(r.unexpected, m)
}

func (r *Rank) complete(req *Request, m *message) {
	now := r.eng().Now()
	req.matched = true
	req.bytes = m.bytes
	req.payload = m.payload
	if m.arrivesAt > now {
		req.doneAt = m.arrivesAt
		r.eng().CallAt(m.arrivesAt, &req.sig)
	} else {
		req.doneAt = now
		req.sig.Fire()
	}
	r.BytesReceived += m.bytes
	r.MsgsReceived++
	r.putMsg(m)
}

// Test checks a request for completion, charging the calling process the
// per-test cost. It reports whether the operation has finished.
func (r *Rank) Test(p *sim.Process, req *Request) bool {
	p.Sleep(sim.Time(r.comm.params.MPITestCost))
	r.TestCalls++
	if r.comm.inj != nil && req.isSend && req.pending != nil &&
		r.eng().Now() >= req.retryAfter {
		// Host attention progresses the library: a send whose transmission
		// was lost is retried here, ahead of the autonomous backstop.
		if req.retryEvent.Cancel() {
			r.resend(req)
		}
	}
	return req.matched && req.doneAt <= r.eng().Now()
}

// TestSweep tests a batch of already-posted send requests, semantically
// identical to calling Test on each in order, and reports each result.
// With coalescing on and no fault injector, the per-request poll events
// collapse into a single sleep covering the whole sweep: a send's doneAt
// is fixed at post time, so the result of the i-th test is exactly
// req.matched && doneAt <= t_i, where t_i is the virtual instant the i-th
// serial Test would have returned — reproduced by the same float
// additions, so results and timestamps are bit-identical to the serial
// sweep while executing one event instead of len(reqs).
//
// Under fault injection Test drives retransmission mid-sweep, so the
// batched shortcut is disabled and the sweep degrades to per-request
// polls.
func (r *Rank) TestSweep(p *sim.Process, reqs []*Request) []bool {
	return r.TestSweepInto(p, reqs, nil)
}

// TestSweepInto is TestSweep writing its results into res (grown as
// needed), letting steady-state pollers reuse one buffer across sweeps.
func (r *Rank) TestSweepInto(p *sim.Process, reqs []*Request, res []bool) []bool {
	for len(res) < len(reqs) {
		res = append(res, false)
	}
	res = res[:len(reqs)]
	if len(reqs) == 0 {
		return res
	}
	if !r.comm.coalesce || r.comm.inj != nil {
		for i, req := range reqs {
			res[i] = r.Test(p, req)
		}
		return res
	}
	cost := sim.Time(r.comm.params.MPITestCost)
	t := r.eng().Now()
	for i, req := range reqs {
		t += cost // same accumulation as sequential Sleeps
		res[i] = req.matched && req.doneAt <= t
	}
	r.TestCalls += int64(len(reqs))
	p.SleepUntil(t)
	return res
}

// TestAll tests a batch of requests with a single charge per request,
// returning the number completed.
func (r *Rank) TestAll(p *sim.Process, reqs []*Request) int {
	done := 0
	for _, req := range reqs {
		if r.Test(p, req) {
			done++
		}
	}
	return done
}

// Wait blocks the calling process until the request completes. Unlike
// Test-polling, Wait models a blocking MPI_Wait (the library progresses the
// request internally).
func (r *Rank) Wait(p *sim.Process, req *Request) {
	r.TestCalls++
	p.Sleep(sim.Time(r.comm.params.MPITestCost))
	if req.matched && req.doneAt <= r.eng().Now() {
		return
	}
	if r.comm.inj != nil && req.isSend && req.pending != nil {
		// A blocking wait keeps the library progressing: pull the resend
		// forward to the earliest retry time instead of the late backstop.
		if req.retryEvent.Cancel() {
			delay := req.retryAfter - r.eng().Now()
			r.eng().Schedule(delay, func() { r.resend(req) })
		}
	}
	req.sig.Wait(p)
}

// Done reports completion without charging any cost (for assertions).
func (q *Request) Done(now sim.Time) bool { return q.matched && q.doneAt <= now }

// ---- Collectives ----

// ReduceOp is a reduction operator.
type ReduceOp int

// Supported reduction operators.
const (
	OpSum ReduceOp = iota
	OpMax
	OpMin
)

type collective struct {
	op      ReduceOp
	arrived int
	contrib []float64     // staged per-rank contributions
	sigs    []*sim.Signal // per-rank completion signal, on the rank's engine
	lastAt  sim.Time      // latest virtual arrival
	result  float64
}

// Allreduce combines x across all ranks with op and returns the result,
// blocking until every rank has contributed. Every rank must call
// collectives in the same order. The modelled cost is the software base
// cost plus a 2*ceil(log2(P)) latency tree after the last arrival.
//
// Contributions are staged per rank and reduced in rank order once the
// last rank arrives, and each rank's completion fires on its own engine —
// under sharding through the barrier mailbox in rank order (tagged mail),
// so neither the float reduction order nor the wake order depends on
// which shard's contribution happened to land last in wall-clock time.
func (r *Rank) Allreduce(p *sim.Process, x float64, op ReduceOp) float64 {
	c := r.comm
	idx := r.nextColl
	r.nextColl++
	p.Sleep(sim.Time(c.params.ReduceBaseCost))

	c.collMu.Lock()
	for len(c.collectives) <= idx {
		c.collectives = append(c.collectives, nil)
	}
	coll := c.collectives[idx]
	if coll == nil {
		coll = &collective{op: op,
			contrib: make([]float64, c.Size()),
			sigs:    make([]*sim.Signal, c.Size())}
		c.collectives[idx] = coll
	}
	if coll.op != op {
		c.collMu.Unlock()
		panic("mpisim: mismatched collective operations across ranks")
	}
	coll.contrib[r.rank] = x
	coll.sigs[r.rank] = sim.NewSignal(r.eng(), "allreduce")
	if now := r.eng().Now(); now > coll.lastAt {
		coll.lastAt = now
	}
	coll.arrived++
	if coll.arrived == c.Size() {
		acc := coll.contrib[0]
		for _, v := range coll.contrib[1:] {
			switch op {
			case OpSum:
				acc += v
			case OpMax:
				acc = math.Max(acc, v)
			case OpMin:
				acc = math.Min(acc, v)
			}
		}
		coll.result = acc
		levels := 0
		for 1<<levels < c.Size() {
			levels++
		}
		delay := sim.Time(2*float64(levels)*c.params.LinkLatency + c.params.ReduceBaseCost)
		fireAt := coll.lastAt + delay
		if c.shards == nil {
			// Serial: the detecting rank executes at lastAt, the latest
			// arrival. Fire every rank's signal then, in rank order.
			for q := range coll.sigs {
				r.eng().CallAfter(delay, coll.sigs[q])
			}
		} else {
			// Sharded: the wall-clock-last contributor is nondeterministic,
			// so the fires travel as tagged barrier mail keyed by
			// (fireAt, lastAt, collective, rank) — injected in the same
			// order whichever shard posts them. The fire lies at least a
			// full tree latency past every shard's window, so it is never
			// late (delay >= 2*LinkLatency > lookahead).
			for q := range coll.sigs {
				c.shards.PostTagged(r.eng(), c.engs[q], fireAt, coll.lastAt,
					uint64(idx)*uint64(c.Size())+uint64(q), coll.sigs[q])
			}
		}
	}
	sig := coll.sigs[r.rank]
	c.collMu.Unlock()
	sig.Wait(p)
	c.collMu.Lock()
	result := coll.result
	c.collMu.Unlock()
	return result
}

// Barrier blocks until every rank has entered it.
func (r *Rank) Barrier(p *sim.Process) {
	r.Allreduce(p, 0, OpSum)
}
