// Package mpisim is a simulated MPI subset sufficient for the Uintah
// scheduler: non-blocking point-to-point sends and receives with tag
// matching, request testing, and blocking reductions.
//
// Two behaviours of real MPI that the paper's scheduler design depends on
// are modelled faithfully:
//
//   - Transfers take latency + bytes/bandwidth on the interconnect
//     (Table II: ~1 us, 16 GB/s bidirectional P2P).
//   - Completion is only observable through Test/Wait, and each call costs
//     MPE time. "In most MPI implementations, the non-blocking sends and
//     receives do not progress without the help of the host processor"
//     (Section V-C, citing Denis & Trahay): a rank that spins on a
//     completion flag without testing sees none of its communication
//     finish, which is precisely the handicap of the synchronous scheduler.
//
// Payloads are real []float64 slices, so the simulated application's
// numerics are correct across ranks; timing-only runs pass nil payloads
// with an explicit byte count.
package mpisim

import (
	"fmt"
	"math"

	"sunuintah/internal/perf"
	"sunuintah/internal/sim"
)

// Comm is a communicator spanning size ranks (one per core group).
type Comm struct {
	eng    *sim.Engine
	params perf.Params
	ranks  []*Rank
}

// NewComm builds a communicator with the given number of ranks.
func NewComm(eng *sim.Engine, params perf.Params, size int) *Comm {
	if size <= 0 {
		panic("mpisim: communicator needs at least one rank")
	}
	c := &Comm{eng: eng, params: params}
	for r := 0; r < size; r++ {
		c.ranks = append(c.ranks, &Rank{comm: c, rank: r})
	}
	return c
}

// Size returns the number of ranks.
func (c *Comm) Size() int { return len(c.ranks) }

// Rank returns rank r's endpoint.
func (c *Comm) Rank(r int) *Rank {
	if r < 0 || r >= len(c.ranks) {
		panic(fmt.Sprintf("mpisim: rank %d out of range [0,%d)", r, len(c.ranks)))
	}
	return c.ranks[r]
}

// Rank is one MPI process's endpoint.
type Rank struct {
	comm *Comm
	rank int

	recvs      []*Request // posted, unmatched receives
	unexpected []*message // arrived or in-flight messages with no receive yet

	// Collectives executed so far, for in-order matching across ranks.
	collectives []*collective
	nextColl    int

	// Stats.
	BytesSent     int64
	BytesReceived int64
	MsgsSent      int64
	MsgsReceived  int64
	TestCalls     int64
}

// RankID returns this endpoint's rank number.
func (r *Rank) RankID() int { return r.rank }

type message struct {
	src, tag  int
	bytes     int64
	payload   []float64
	arrivesAt sim.Time
}

// Request is the handle of a non-blocking operation.
type Request struct {
	isSend  bool
	src     int // sends: destination; receives: expected source
	tag     int
	bytes   int64
	payload []float64 // receives: filled on match

	matched bool
	doneAt  sim.Time
	sig     *sim.Signal
}

// Payload returns the received data (nil for sends, timing-only transfers,
// or before completion).
func (q *Request) Payload() []float64 { return q.payload }

// Signal returns the signal fired when the request completes, for callers
// that want to block or register wake-ups instead of polling.
func (q *Request) Signal() *sim.Signal { return q.sig }

// Bytes returns the message size.
func (q *Request) Bytes() int64 { return q.bytes }

// Isend posts a non-blocking send of payload (may be nil) with the given
// on-wire size to rank dst with the given tag. The calling process is
// charged the posting cost. The send completes locally once the data has
// left the sender (one wire time).
func (r *Rank) Isend(p *sim.Process, dst, tag int, payload []float64, bytes int64) *Request {
	if bytes < 0 {
		panic("mpisim: negative message size")
	}
	p.Sleep(sim.Time(r.comm.params.MPIPostCost))
	now := r.comm.eng.Now()
	wire := sim.Time(r.comm.params.MessageTimeBetween(r.rank, dst, bytes))
	req := &Request{
		isSend: true, src: dst, tag: tag, bytes: bytes,
		matched: true, doneAt: now + wire,
		sig: sim.NewSignal(r.comm.eng, fmt.Sprintf("send %d->%d tag %d", r.rank, dst, tag)),
	}
	r.comm.eng.Schedule(wire, req.sig.Fire)
	r.BytesSent += bytes
	r.MsgsSent++

	m := &message{src: r.rank, tag: tag, bytes: bytes, payload: payload, arrivesAt: now + wire}
	dstRank := r.comm.Rank(dst)
	r.comm.eng.Schedule(wire, func() { dstRank.deliver(m) })
	return req
}

// Irecv posts a non-blocking receive for a message from src with the given
// tag. The calling process is charged the posting cost. Matching follows
// posting order for identical (src, tag) pairs.
func (r *Rank) Irecv(p *sim.Process, src, tag int) *Request {
	p.Sleep(sim.Time(r.comm.params.MPIPostCost))
	req := &Request{
		src: src, tag: tag,
		sig: sim.NewSignal(r.comm.eng, fmt.Sprintf("recv %d<-%d tag %d", r.rank, src, tag)),
	}
	// Check the unexpected queue first (message already arrived or is in
	// flight).
	for i, m := range r.unexpected {
		if m.src == src && m.tag == tag {
			r.unexpected = append(r.unexpected[:i], r.unexpected[i+1:]...)
			r.complete(req, m)
			return req
		}
	}
	r.recvs = append(r.recvs, req)
	return req
}

// deliver matches an arriving message against posted receives.
func (r *Rank) deliver(m *message) {
	for i, req := range r.recvs {
		if req.src == m.src && req.tag == m.tag {
			r.recvs = append(r.recvs[:i], r.recvs[i+1:]...)
			r.complete(req, m)
			return
		}
	}
	r.unexpected = append(r.unexpected, m)
}

func (r *Rank) complete(req *Request, m *message) {
	now := r.comm.eng.Now()
	req.matched = true
	req.bytes = m.bytes
	req.payload = m.payload
	if m.arrivesAt > now {
		req.doneAt = m.arrivesAt
		r.comm.eng.Schedule(m.arrivesAt-now, req.sig.Fire)
	} else {
		req.doneAt = now
		req.sig.Fire()
	}
	r.BytesReceived += m.bytes
	r.MsgsReceived++
}

// Test checks a request for completion, charging the calling process the
// per-test cost. It reports whether the operation has finished.
func (r *Rank) Test(p *sim.Process, req *Request) bool {
	p.Sleep(sim.Time(r.comm.params.MPITestCost))
	r.TestCalls++
	return req.matched && req.doneAt <= r.comm.eng.Now()
}

// TestAll tests a batch of requests with a single charge per request,
// returning the number completed.
func (r *Rank) TestAll(p *sim.Process, reqs []*Request) int {
	done := 0
	for _, req := range reqs {
		if r.Test(p, req) {
			done++
		}
	}
	return done
}

// Wait blocks the calling process until the request completes. Unlike
// Test-polling, Wait models a blocking MPI_Wait (the library progresses the
// request internally).
func (r *Rank) Wait(p *sim.Process, req *Request) {
	r.TestCalls++
	p.Sleep(sim.Time(r.comm.params.MPITestCost))
	if req.matched && req.doneAt <= r.comm.eng.Now() {
		return
	}
	req.sig.Wait(p)
}

// Done reports completion without charging any cost (for assertions).
func (q *Request) Done(now sim.Time) bool { return q.matched && q.doneAt <= now }

// ---- Collectives ----

// ReduceOp is a reduction operator.
type ReduceOp int

// Supported reduction operators.
const (
	OpSum ReduceOp = iota
	OpMax
	OpMin
)

type collective struct {
	op      ReduceOp
	arrived int
	value   float64
	sig     *sim.Signal
	result  float64
	doneSet bool
}

// Allreduce combines x across all ranks with op and returns the result,
// blocking until every rank has contributed. Every rank must call
// collectives in the same order. The modelled cost is the software base
// cost plus a 2*ceil(log2(P)) latency tree after the last arrival.
func (r *Rank) Allreduce(p *sim.Process, x float64, op ReduceOp) float64 {
	c := r.comm
	idx := r.nextColl
	r.nextColl++
	// The collective object is shared: rank 0's slice is authoritative.
	root := c.ranks[0]
	for len(root.collectives) <= idx {
		root.collectives = append(root.collectives, nil)
	}
	coll := root.collectives[idx]
	if coll == nil {
		coll = &collective{op: op, sig: sim.NewSignal(c.eng, fmt.Sprintf("allreduce#%d", idx))}
		switch op {
		case OpMax:
			coll.value = math.Inf(-1)
		case OpMin:
			coll.value = math.Inf(1)
		}
		root.collectives[idx] = coll
	}
	if coll.op != op {
		panic("mpisim: mismatched collective operations across ranks")
	}
	p.Sleep(sim.Time(c.params.ReduceBaseCost))
	switch op {
	case OpSum:
		coll.value += x
	case OpMax:
		coll.value = math.Max(coll.value, x)
	case OpMin:
		coll.value = math.Min(coll.value, x)
	}
	coll.arrived++
	if coll.arrived == c.Size() {
		levels := 0
		for 1<<levels < c.Size() {
			levels++
		}
		delay := sim.Time(2*float64(levels)*c.params.LinkLatency + c.params.ReduceBaseCost)
		coll.result = coll.value
		coll.doneSet = true
		c.eng.Schedule(delay, coll.sig.Fire)
	}
	coll.sig.Wait(p)
	return coll.result
}

// Barrier blocks until every rank has entered it.
func (r *Rank) Barrier(p *sim.Process) {
	r.Allreduce(p, 0, OpSum)
}
