package mpisim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sunuintah/internal/perf"
	"sunuintah/internal/sim"
)

func newComm(size int) (*sim.Engine, *Comm) {
	eng := sim.NewEngine()
	return eng, NewComm(eng, perf.DefaultParams(), size)
}

func TestSendRecvDeliversPayload(t *testing.T) {
	eng, c := newComm(2)
	payload := []float64{1, 2, 3}
	var got []float64
	eng.Spawn("rank0", func(p *sim.Process) {
		c.Rank(0).Isend(p, 1, 7, payload, 24)
	})
	eng.Spawn("rank1", func(p *sim.Process) {
		req := c.Rank(1).Irecv(p, 0, 7)
		c.Rank(1).Wait(p, req)
		got = req.Payload()
	})
	eng.Run()
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("payload = %v", got)
	}
}

func TestRecvBeforeSendMatches(t *testing.T) {
	eng, c := newComm(2)
	var doneAt sim.Time
	eng.Spawn("rank1", func(p *sim.Process) {
		req := c.Rank(1).Irecv(p, 0, 1)
		c.Rank(1).Wait(p, req)
		doneAt = p.Now()
	})
	eng.Spawn("rank0", func(p *sim.Process) {
		p.Sleep(5e-6)
		c.Rank(0).Isend(p, 1, 1, nil, 1000)
	})
	eng.Run()
	params := perf.DefaultParams()
	// Send is posted at 5us + post cost; arrival adds wire time (ranks 0
	// and 1 share a node, so the on-chip path applies).
	want := sim.Time(5e-6+params.MPIPostCost) + sim.Time(params.MessageTimeBetween(0, 1, 1000))
	if doneAt < want {
		t.Fatalf("recv done at %v, want >= %v", doneAt, want)
	}
}

func TestUnexpectedMessageQueue(t *testing.T) {
	eng, c := newComm(2)
	var got float64
	eng.Spawn("rank0", func(p *sim.Process) {
		c.Rank(0).Isend(p, 1, 9, []float64{42}, 8)
	})
	eng.Spawn("rank1", func(p *sim.Process) {
		p.Sleep(1e-3) // message arrives long before the receive posts
		req := c.Rank(1).Irecv(p, 0, 9)
		if !c.Rank(1).Test(p, req) {
			t.Error("late receive of arrived message should complete on first test")
		}
		got = req.Payload()[0]
	})
	eng.Run()
	if got != 42 {
		t.Fatalf("got %v", got)
	}
}

func TestTagAndSourceMatching(t *testing.T) {
	eng, c := newComm(3)
	var fromTag1, fromTag2, fromRank2 float64
	eng.Spawn("rank0", func(p *sim.Process) {
		c.Rank(0).Isend(p, 1, 2, []float64{20}, 8)
		c.Rank(0).Isend(p, 1, 1, []float64{10}, 8)
	})
	eng.Spawn("rank2", func(p *sim.Process) {
		c.Rank(2).Isend(p, 1, 1, []float64{30}, 8)
	})
	eng.Spawn("rank1", func(p *sim.Process) {
		r1 := c.Rank(1).Irecv(p, 0, 1)
		r2 := c.Rank(1).Irecv(p, 0, 2)
		r3 := c.Rank(1).Irecv(p, 2, 1)
		c.Rank(1).Wait(p, r1)
		c.Rank(1).Wait(p, r2)
		c.Rank(1).Wait(p, r3)
		fromTag1, fromTag2, fromRank2 = r1.Payload()[0], r2.Payload()[0], r3.Payload()[0]
	})
	eng.Run()
	if fromTag1 != 10 || fromTag2 != 20 || fromRank2 != 30 {
		t.Fatalf("got %v %v %v", fromTag1, fromTag2, fromRank2)
	}
}

func TestSameTagFIFOOrder(t *testing.T) {
	eng, c := newComm(2)
	var first, second float64
	eng.Spawn("rank0", func(p *sim.Process) {
		c.Rank(0).Isend(p, 1, 5, []float64{1}, 8)
		c.Rank(0).Isend(p, 1, 5, []float64{2}, 8)
	})
	eng.Spawn("rank1", func(p *sim.Process) {
		a := c.Rank(1).Irecv(p, 0, 5)
		b := c.Rank(1).Irecv(p, 0, 5)
		c.Rank(1).Wait(p, a)
		c.Rank(1).Wait(p, b)
		first, second = a.Payload()[0], b.Payload()[0]
	})
	eng.Run()
	if first != 1 || second != 2 {
		t.Fatalf("order = %v, %v", first, second)
	}
}

func TestTestReflectsWireTime(t *testing.T) {
	eng, c := newComm(2)
	params := perf.DefaultParams()
	bytes := int64(16 << 20) // 16 MB: 1 ms on the wire
	eng.Spawn("rank0", func(p *sim.Process) {
		c.Rank(0).Isend(p, 1, 1, nil, bytes)
	})
	eng.Spawn("rank1", func(p *sim.Process) {
		req := c.Rank(1).Irecv(p, 0, 1)
		if c.Rank(1).Test(p, req) {
			t.Error("16 MB message cannot complete instantly")
		}
		p.Sleep(sim.Time(params.MessageTime(bytes)) + 1e-6)
		if !c.Rank(1).Test(p, req) {
			t.Error("message should have arrived after wire time")
		}
	})
	eng.Run()
}

func TestTestChargesTime(t *testing.T) {
	eng, c := newComm(2)
	params := perf.DefaultParams()
	eng.Spawn("rank1", func(p *sim.Process) {
		req := c.Rank(1).Irecv(p, 0, 1)
		start := p.Now()
		for i := 0; i < 100; i++ {
			c.Rank(1).Test(p, req)
		}
		elapsed := float64(p.Now() - start)
		want := 100 * params.MPITestCost
		if math.Abs(elapsed-want) > 1e-12 {
			t.Errorf("100 tests took %v, want %v", elapsed, want)
		}
	})
	eng.Spawn("rank0", func(p *sim.Process) {
		p.Sleep(1)
		c.Rank(0).Isend(p, 1, 1, nil, 8)
	})
	eng.Run()
	if c.Rank(1).TestCalls != 100 {
		t.Errorf("TestCalls = %d", c.Rank(1).TestCalls)
	}
}

func TestSendRequestCompletesAfterWire(t *testing.T) {
	eng, c := newComm(2)
	eng.Spawn("rank0", func(p *sim.Process) {
		req := c.Rank(0).Isend(p, 1, 1, nil, 16<<20)
		if c.Rank(0).Test(p, req) {
			t.Error("send of 16 MB should not complete instantly")
		}
		c.Rank(0).Wait(p, req)
	})
	eng.Spawn("rank1", func(p *sim.Process) {
		c.Rank(1).Wait(p, c.Rank(1).Irecv(p, 0, 1))
	})
	eng.Run()
}

func TestAllreduceSum(t *testing.T) {
	eng, c := newComm(4)
	results := make([]float64, 4)
	for r := 0; r < 4; r++ {
		r := r
		eng.Spawn("rank", func(p *sim.Process) {
			p.Sleep(sim.Time(r) * 1e-6) // stagger arrivals
			results[r] = c.Rank(r).Allreduce(p, float64(r+1), OpSum)
		})
	}
	eng.Run()
	for r, v := range results {
		if v != 10 {
			t.Fatalf("rank %d result = %v, want 10", r, v)
		}
	}
}

func TestAllreduceMaxMin(t *testing.T) {
	eng, c := newComm(3)
	maxs := make([]float64, 3)
	mins := make([]float64, 3)
	vals := []float64{3, -7, 5}
	for r := 0; r < 3; r++ {
		r := r
		eng.Spawn("rank", func(p *sim.Process) {
			maxs[r] = c.Rank(r).Allreduce(p, vals[r], OpMax)
			mins[r] = c.Rank(r).Allreduce(p, vals[r], OpMin)
		})
	}
	eng.Run()
	for r := 0; r < 3; r++ {
		if maxs[r] != 5 || mins[r] != -7 {
			t.Fatalf("rank %d: max %v min %v", r, maxs[r], mins[r])
		}
	}
}

func TestAllreduceSingleRank(t *testing.T) {
	eng, c := newComm(1)
	var got float64
	eng.Spawn("rank0", func(p *sim.Process) {
		got = c.Rank(0).Allreduce(p, 3.5, OpSum)
	})
	eng.Run()
	if got != 3.5 {
		t.Fatalf("got %v", got)
	}
}

func TestBarrierSynchronises(t *testing.T) {
	eng, c := newComm(3)
	exits := make([]sim.Time, 3)
	for r := 0; r < 3; r++ {
		r := r
		eng.Spawn("rank", func(p *sim.Process) {
			p.Sleep(sim.Time(r) * 1e-3)
			c.Rank(r).Barrier(p)
			exits[r] = p.Now()
		})
	}
	eng.Run()
	if exits[0] != exits[1] || exits[1] != exits[2] {
		t.Fatalf("exit times diverge: %v", exits)
	}
	if exits[0] < 2e-3 {
		t.Fatalf("barrier exited before last arrival: %v", exits)
	}
}

func TestStatsAccounting(t *testing.T) {
	eng, c := newComm(2)
	eng.Spawn("rank0", func(p *sim.Process) {
		c.Rank(0).Isend(p, 1, 1, nil, 100)
		c.Rank(0).Isend(p, 1, 2, nil, 200)
	})
	eng.Spawn("rank1", func(p *sim.Process) {
		c.Rank(1).Wait(p, c.Rank(1).Irecv(p, 0, 1))
		c.Rank(1).Wait(p, c.Rank(1).Irecv(p, 0, 2))
	})
	eng.Run()
	if c.Rank(0).BytesSent != 300 || c.Rank(0).MsgsSent != 2 {
		t.Errorf("sender stats: %d B, %d msgs", c.Rank(0).BytesSent, c.Rank(0).MsgsSent)
	}
	if c.Rank(1).BytesReceived != 300 || c.Rank(1).MsgsReceived != 2 {
		t.Errorf("receiver stats: %d B, %d msgs", c.Rank(1).BytesReceived, c.Rank(1).MsgsReceived)
	}
}

// Property: an all-to-all random exchange delivers every payload intact
// regardless of posting order.
func TestPropertyRandomExchange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		eng, c := newComm(n)
		sent := make([][]float64, n*n)
		got := make([][]float64, n*n)
		for r := 0; r < n; r++ {
			r := r
			eng.Spawn("rank", func(p *sim.Process) {
				// Post receives and sends in a rank-dependent shuffled order.
				var reqs []*Request
				var slots []int
				if r%2 == 0 {
					p.Sleep(sim.Time(rng.Intn(10)) * 1e-6)
				}
				for s := 0; s < n; s++ {
					if s == r {
						continue
					}
					reqs = append(reqs, c.Rank(r).Irecv(p, s, 1))
					slots = append(slots, s*n+r)
				}
				for d := 0; d < n; d++ {
					if d == r {
						continue
					}
					payload := []float64{float64(r*1000 + d)}
					sent[r*n+d] = payload
					c.Rank(r).Isend(p, d, 1, payload, 8)
				}
				for i, req := range reqs {
					c.Rank(r).Wait(p, req)
					got[slots[i]] = req.Payload()
				}
			})
		}
		eng.Run()
		for r := 0; r < n; r++ {
			for d := 0; d < n; d++ {
				if r == d {
					continue
				}
				if len(got[r*n+d]) != 1 || got[r*n+d][0] != sent[r*n+d][0] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestIntraNodeMessagesFasterThanInterNode(t *testing.T) {
	eng, c := newComm(8) // ranks 0-3 on node 0, 4-7 on node 1
	params := perf.DefaultParams()
	bytes := int64(8 << 20)
	var intra, inter sim.Time
	eng.Spawn("rank0", func(p *sim.Process) {
		c.Rank(0).Isend(p, 1, 1, nil, bytes) // same node
		c.Rank(0).Isend(p, 4, 2, nil, bytes) // other node
	})
	eng.Spawn("rank1", func(p *sim.Process) {
		start := p.Now()
		c.Rank(1).Wait(p, c.Rank(1).Irecv(p, 0, 1))
		intra = p.Now() - start
	})
	eng.Spawn("rank4", func(p *sim.Process) {
		start := p.Now()
		c.Rank(4).Wait(p, c.Rank(4).Irecv(p, 0, 2))
		inter = p.Now() - start
	})
	eng.Run()
	if intra >= inter {
		t.Fatalf("intra-node transfer (%v) should beat inter-node (%v)", intra, inter)
	}
	_ = params
}
