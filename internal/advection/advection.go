// Package advection is a second complete model problem for the runtime —
// the 3-D linear advection equation
//
//	du/dt + a . grad(u) = 0
//
// with constant positive velocity a, discretised with first-order upwind
// differences and forward Euler. The exact solution is the translated
// initial profile u(x,t) = g(x - a t), used for initial data, boundary
// conditions and verification. Where the Burgers problem exercises an
// exponential-heavy stencil, this one is a pure streaming kernel with a
// high bytes-per-flop ratio, sitting at the opposite end of the roofline.
package advection

import (
	"math"

	"sunuintah/internal/field"
	"sunuintah/internal/grid"
	"sunuintah/internal/taskgraph"
)

// Velocity is the constant advection speed per axis (positive components,
// matching the upwind direction of the kernel).
type Velocity struct {
	Ax, Ay, Az float64
}

// DefaultVelocity is a gently anisotropic transport field.
var DefaultVelocity = Velocity{Ax: 1.0, Ay: 0.5, Az: 0.25}

// Gaussian initial profile centred in the domain.
func gaussian(x, y, z float64) float64 {
	dx, dy, dz := x-0.35, y-0.35, z-0.35
	return math.Exp(-((dx*dx + dy*dy + dz*dz) / 0.06))
}

// Exact returns the translated profile at time t.
func (v Velocity) Exact(x, y, z, t float64) float64 {
	return gaussian(x-v.Ax*t, y-v.Ay*t, z-v.Az*t)
}

// Initial is the t=0 profile.
func (v Velocity) Initial(x, y, z float64) float64 { return v.Exact(x, y, z, 0) }

// StableDt returns a CFL-safe timestep for the given spacings.
func (v Velocity) StableDt(dx, dy, dz float64) float64 {
	s := v.Ax/dx + v.Ay/dy + v.Az/dz
	return 0.9 / s
}

// FlopsPerCell is the counted work of the upwind update: three
// difference/scale terms (3 ops each) plus the combination and Euler
// update.
const FlopsPerCell = 3*3 + 4

// KernelWeight is the compute-time scale relative to the Burgers kernel:
// no exponentials, no divides — a tiny fraction of the cost.
const KernelWeight = 0.04

// NewLabel creates the advected variable with its exact-solution boundary
// condition.
func (v Velocity) NewLabel() *taskgraph.Label {
	return taskgraph.NewLabel("q", func(x, y, z, t float64) float64 {
		return v.Exact(x, y, z, t)
	})
}

// advance applies one upwind Euler step on region.
func (v Velocity) advance(in, out *field.Cell, region grid.Box, lv *grid.Level, dt float64) {
	rdx := 1 / lv.Spacing[0]
	rdy := 1 / lv.Spacing[1]
	rdz := 1 / lv.Spacing[2]
	ys, zs := in.Strides()
	data := in.Data()
	for k := region.Lo.Z; k < region.Hi.Z; k++ {
		for j := region.Lo.Y; j < region.Hi.Y; j++ {
			base := in.Index(grid.IV(region.Lo.X, j, k))
			for i := region.Lo.X; i < region.Hi.X; i++ {
				idx := base + (i - region.Lo.X)
				u := data[idx]
				du := v.Ax*(u-data[idx-1])*rdx +
					v.Ay*(u-data[idx-ys])*rdy +
					v.Az*(u-data[idx-zs])*rdz
				out.Set(grid.IV(i, j, k), u-dt*du)
			}
		}
	}
}

// NewAdvanceTask builds the advection timestep task in the same shape as
// the Burgers one: requires q from the old warehouse with one ghost layer,
// computes q into the new warehouse on the CPE cluster.
func (v Velocity) NewAdvanceTask(q *taskgraph.Label) *taskgraph.Task {
	return &taskgraph.Task{
		Name: "advection.advance",
		Kind: taskgraph.KindOffload,
		Requires: []taskgraph.Dep{
			{Label: q, DW: taskgraph.OldDW, Ghost: 1},
		},
		Computes: []taskgraph.Dep{
			{Label: q, DW: taskgraph.NewDW},
		},
		Kernel: &taskgraph.Kernel{
			FlopsPerCell: FlopsPerCell,
			Weight:       KernelWeight,
			Compute: func(tc *taskgraph.TileContext) {
				v.advance(tc.In[q].Data, tc.Out[q].Data, tc.Tile.Box, tc.Level, tc.Dt)
			},
		},
	}
}

// SerialSolve is the runtime-free reference: the whole grid advanced on a
// single ghosted field with exact-solution boundary ghosts.
func (v Velocity) SerialSolve(lv *grid.Level, nSteps int, dt float64) *field.Cell {
	dom := lv.Layout.Domain
	old := field.NewCellWithGhost(dom, 1)
	fresh := field.NewCellWithGhost(dom, 1)
	old.FillFunc(dom, func(c grid.IVec) float64 {
		x, y, z := lv.CellCenter(c)
		return v.Initial(x, y, z)
	})
	t := 0.0
	for s := 0; s < nSteps; s++ {
		shell := dom.Grow(1)
		shell.ForEach(func(c grid.IVec) {
			if dom.Contains(c) {
				return
			}
			x, y, z := lv.CellCenter(c)
			old.Set(c, v.Exact(x, y, z, t))
		})
		v.advance(old, fresh, dom, lv, dt)
		old, fresh = fresh, old
		t += dt
	}
	return old
}
