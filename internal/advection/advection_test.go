package advection

import (
	"math"
	"testing"

	"sunuintah/internal/core"
	"sunuintah/internal/field"
	"sunuintah/internal/grid"
	"sunuintah/internal/scheduler"
	"sunuintah/internal/taskgraph"
)

func level(t *testing.T, n int) *grid.Level {
	t.Helper()
	lv, err := grid.NewUnitCubeLevel(grid.IV(n, n, n), grid.IV(2, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	return lv
}

func TestExactTranslates(t *testing.T) {
	v := DefaultVelocity
	// The profile at (x,t) equals the initial profile at x - a t.
	x, y, z, tt := 0.6, 0.5, 0.4, 0.1
	want := v.Initial(x-v.Ax*tt, y-v.Ay*tt, z-v.Az*tt)
	if got := v.Exact(x, y, z, tt); got != want {
		t.Fatalf("Exact = %v, want %v", got, want)
	}
}

func TestStableDtCFL(t *testing.T) {
	v := DefaultVelocity
	dx := 1.0 / 32
	dt := v.StableDt(dx, dx, dx)
	cfl := dt * (v.Ax + v.Ay + v.Az) / dx
	if cfl <= 0 || cfl > 1 {
		t.Fatalf("CFL = %v, want in (0,1]", cfl)
	}
}

func TestSerialSolveTracksExact(t *testing.T) {
	v := DefaultVelocity
	lv := level(t, 32)
	dx := lv.Spacing[0]
	dt := v.StableDt(dx, dx, dx)
	const steps = 10
	u := v.SerialSolve(lv, steps, dt)
	finalT := steps * dt
	maxErr := 0.0
	lv.Layout.Domain.ForEach(func(c grid.IVec) {
		x, y, z := lv.CellCenter(c)
		if e := math.Abs(u.At(c) - v.Exact(x, y, z, finalT)); e > maxErr {
			maxErr = e
		}
	})
	// First-order upwind smears the Gaussian; the error stays modest over
	// a short horizon.
	if maxErr > 0.12 {
		t.Fatalf("error vs exact = %v", maxErr)
	}
}

func TestUpwindConvergesFirstOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("convergence study")
	}
	v := DefaultVelocity
	finalT := 0.05
	errAt := func(n int) float64 {
		lv := level(t, n)
		dx := lv.Spacing[0]
		dt := v.StableDt(dx, dx, dx)
		steps := int(math.Ceil(finalT / dt))
		dt = finalT / float64(steps)
		u := v.SerialSolve(lv, steps, dt)
		maxErr := 0.0
		lv.Layout.Domain.ForEach(func(c grid.IVec) {
			x, y, z := lv.CellCenter(c)
			if e := math.Abs(u.At(c) - v.Exact(x, y, z, finalT)); e > maxErr {
				maxErr = e
			}
		})
		return maxErr
	}
	e16, e32 := errAt(16), errAt(32)
	ratio := e16 / e32
	if ratio < 1.4 || ratio > 3.0 {
		t.Fatalf("convergence ratio = %.2f (e16=%g e32=%g), want ~2", ratio, e16, e32)
	}
}

func TestDistributedMatchesSerial(t *testing.T) {
	v := DefaultVelocity
	lv := level(t, 16)
	dx := lv.Spacing[0]
	dt := v.StableDt(dx, dx, dx)
	const steps = 4
	ref := v.SerialSolve(lv, steps, dt)

	q := v.NewLabel()
	prob := core.Problem{
		Tasks:   []*taskgraph.Task{v.NewAdvanceTask(q)},
		Initial: map[*taskgraph.Label]func(x, y, z float64) float64{q: v.Initial},
		Dt:      dt,
	}
	for _, mode := range []scheduler.Mode{scheduler.ModeSync, scheduler.ModeAsync} {
		cfg := core.Config{
			Cells:       grid.IV(16, 16, 16),
			PatchCounts: grid.IV(2, 2, 2),
			NumCGs:      4,
			Scheduler:   scheduler.Config{Mode: mode, Functional: true, TileSize: grid.IV(8, 8, 4)},
		}
		s, err := core.NewSimulation(cfg, prob)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(steps); err != nil {
			t.Fatal(err)
		}
		got, err := s.GatherField(q)
		if err != nil {
			t.Fatal(err)
		}
		if d := field.MaxAbsDiff(got, ref, lv.Layout.Domain); d > 1e-13 {
			t.Fatalf("%v: distributed result differs from serial by %g", mode, d)
		}
	}
}

func TestAdvectionKernelMuchCheaperThanBurgers(t *testing.T) {
	// The streaming kernel's cost weight puts it far below Burgers: a
	// timing run should reflect that in the counters and per-step time.
	v := DefaultVelocity
	q := v.NewLabel()
	prob := core.Problem{
		Tasks: []*taskgraph.Task{v.NewAdvanceTask(q)},
		Dt:    1e-3,
	}
	cfg := core.Config{
		Cells:       grid.IV(64, 64, 64),
		PatchCounts: grid.IV(2, 2, 2),
		NumCGs:      2,
		Scheduler:   scheduler.Config{Mode: scheduler.ModeAsync},
	}
	s, err := core.NewSimulation(cfg, prob)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	wantFlops := int64(FlopsPerCell * 64 * 64 * 64 * 2)
	if res.Counters.Flops != wantFlops {
		t.Fatalf("flops = %d, want %d", res.Counters.Flops, wantFlops)
	}
	if res.Counters.ExpFlops != 0 {
		t.Fatal("advection has no exponentials")
	}
}
