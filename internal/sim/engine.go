// Package sim implements a deterministic, process-model discrete-event
// simulation engine. It is the substrate on which the Sunway machine model,
// the simulated MPI library, and the Uintah schedulers execute: every
// component that "takes time" is a Process whose delays advance a shared
// virtual clock.
//
// The engine is strictly cooperative. At any instant exactly one process
// goroutine is running; all others are parked waiting for the engine to hand
// control back. Events that fire at the same virtual time are executed in
// the order they were scheduled, so a simulation is reproducible run to run.
package sim

import (
	"fmt"
	"math"
	"sort"
)

// Time is virtual time in seconds.
type Time float64

// Infinity is a sentinel time later than any event.
const Infinity Time = Time(math.MaxFloat64)

// Duration helpers for readability at call sites.
const (
	Nanosecond  Time = 1e-9
	Microsecond Time = 1e-6
	Millisecond Time = 1e-3
	Second      Time = 1
)

// Caller is an allocation-free event target: scheduling a Caller instead of
// a func() closure lets a long-lived actor (a process, a signal, a message
// envelope) be its own callback, so the hot paths — process wake-ups,
// signal fires, message deliveries — schedule millions of events without
// allocating a fresh func value per event.
type Caller interface{ Call() }

// event is a single entry in the engine's calendar queue. Exactly one of
// fn and c is set. Events are arena-managed: the engine recycles them
// through a freelist, and gen invalidates stale EventHandles when a slot
// is reused (see EventHandle.Cancel).
type event struct {
	at  Time
	seq uint64 // tie-breaker: schedule order
	fn  func()
	c   Caller
	// index in the queue, maintained by the heap operations; -1 when
	// popped.
	index     int
	cancelled bool
	// gen counts reuses of this slot; an EventHandle carries the gen it
	// was issued under and goes inert once they diverge.
	gen uint32
	// external marks an event injected as cross-shard mail by the
	// optimistic coordinator: calendar snapshots exclude it (the
	// coordinator's input log re-injects surviving mail after a rollback,
	// refreshing the anti-message handles).
	external bool
}

// eventQueue is a typed, slice-backed 4-ary min-heap on (at, seq). It
// replaces container/heap, whose any-typed Push/Pop box every event and
// make an indirect interface call per sift comparison — this queue is
// the hottest structure of the simulation (every DMA, message and poll
// goes through it). The 4-ary layout halves the tree depth, trading
// slightly more comparisons per level for far fewer cache misses.
// Cancellation stays lazy: cancelled events keep their slot and are
// skipped on pop, preserving the FIFO tie-break (seq) semantics exactly.
type eventQueue struct {
	evs []*event
}

// less orders a before b by time, then by schedule order.
func (q *eventQueue) less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Len returns the number of queued events (including cancelled ones
// still awaiting their lazy removal).
func (q *eventQueue) Len() int { return len(q.evs) }

// push inserts ev, maintaining the heap order.
func (q *eventQueue) push(ev *event) {
	ev.index = len(q.evs)
	q.evs = append(q.evs, ev)
	q.siftUp(ev.index)
}

// pop removes and returns the earliest event.
func (q *eventQueue) pop() *event {
	ev := q.evs[0]
	n := len(q.evs) - 1
	last := q.evs[n]
	q.evs[n] = nil
	q.evs = q.evs[:n]
	if n > 0 {
		q.evs[0] = last
		last.index = 0
		q.siftDown(0)
	}
	ev.index = -1
	return ev
}

func (q *eventQueue) siftUp(i int) {
	ev := q.evs[i]
	for i > 0 {
		parent := (i - 1) / 4
		p := q.evs[parent]
		if !q.less(ev, p) {
			break
		}
		q.evs[i] = p
		p.index = i
		i = parent
	}
	q.evs[i] = ev
	ev.index = i
}

func (q *eventQueue) siftDown(i int) {
	ev := q.evs[i]
	n := len(q.evs)
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if q.less(q.evs[c], q.evs[min]) {
				min = c
			}
		}
		if !q.less(q.evs[min], ev) {
			break
		}
		q.evs[i] = q.evs[min]
		q.evs[i].index = i
		i = min
	}
	q.evs[i] = ev
	ev.index = i
}

// reinit restores the heap property over the whole slice — used after a
// bulk append, where one O(n) pass beats m individual O(log n) sifts.
func (q *eventQueue) reinit() {
	n := len(q.evs)
	if n == 0 {
		return
	}
	for i, ev := range q.evs {
		ev.index = i
	}
	for i := (n - 2) / 4; i >= 0; i-- {
		q.siftDown(i)
	}
}

// Engine is a discrete-event simulation kernel.
//
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventQueue
	procs   []*Process
	stopped bool
	// nextPID numbers processes for deterministic diagnostics.
	nextPID int
	// active counts live (spawned, not yet finished) processes.
	active int
	// interrupted records the reason passed to Interrupt, if any.
	interrupted string
	// executed counts events run, for measuring event-loop pressure.
	executed uint64

	// free is the event arena: fired and cancelled events return here and
	// are reissued by the schedule calls, so a steady-state simulation
	// allocates no calendar entries at all.
	free []*event

	// shardSet is non-nil when this engine is one shard of a ShardSet. An
	// empty calendar then means "waiting for cross-shard mail", not
	// deadlock — the coordinator owns the global deadlock check — and the
	// engine executes only inside the windows the coordinator grants.
	shardSet *ShardSet
	shardID  int
	// outbox[d] stages cross-shard events addressed to shard d posted
	// during the current window; the coordinator drains every box at the
	// barrier. mailSeq orders the items of one source.
	outbox  [][]mailItem
	mailSeq uint64
	// selfMailAt caps the running window at the earliest outbox item
	// addressed to this same engine (PostTagged routes even self-sends
	// through the barrier for deterministic ordering): the clock must not
	// pass an undelivered item's time. Infinity when none is pending.
	selfMailAt Time
	// outMailAt caps the running window at the earliest instant a response
	// to this window's own outbound mail could arrive: a post waking shard
	// d at time a can provoke a reply at a + lat[d][src], which the window
	// ends — computed before the post existed — know nothing about. In the
	// busy regime windows are at most one lookahead wide and the cap
	// (>= two lookaheads out) never binds; it matters when a wide window
	// wakes an idle shard. Infinity when nothing was posted. The
	// optimistic coordinator leaves it unset while speculating — a late
	// reply there is an ordinary straggler, repaired by rollback.
	outMailAt Time
}

// NewEngine returns an empty simulation at time zero.
func NewEngine() *Engine {
	return &Engine{selfMailAt: Infinity, outMailAt: Infinity}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// getEvent issues a calendar entry at the given time from the arena,
// assigning the next sequence number.
func (e *Engine) getEvent(at Time) *event {
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.cancelled = false
	} else {
		ev = &event{}
	}
	ev.at = at
	ev.seq = e.seq
	e.seq++
	return ev
}

// putEvent returns a popped event to the arena. Bumping gen turns any
// outstanding handle to the old incarnation inert before the slot is
// reissued.
func (e *Engine) putEvent(ev *event) {
	ev.fn = nil
	ev.c = nil
	ev.external = false
	ev.gen++
	e.free = append(e.free, ev)
}

// Schedule registers fn to run at now+delay. Negative delays are clamped to
// zero (the event runs "now", after currently pending same-time events).
// The returned handle may be used to cancel the event before it fires.
// Hot paths that never cancel should prefer After or CallAfter, which skip
// the handle allocation.
func (e *Engine) Schedule(delay Time, fn func()) EventHandle {
	if delay < 0 {
		delay = 0
	}
	ev := e.getEvent(e.now + delay)
	ev.fn = fn
	e.queue.push(ev)
	return EventHandle{ev: ev, gen: ev.gen}
}

// ScheduleAt registers fn to run at the absolute virtual time at, which
// must not lie in the past. It is the barrier-time injection primitive of
// the sharded engine: cross-shard mail carries absolute delivery times,
// and the receiving engine's clock may trail the sender's.
func (e *Engine) ScheduleAt(at Time, fn func()) EventHandle {
	if at < e.now {
		panic(fmt.Sprintf("sim: ScheduleAt(%v) is before now %v", at, e.now))
	}
	ev := e.getEvent(at)
	ev.fn = fn
	e.queue.push(ev)
	return EventHandle{ev: ev, gen: ev.gen}
}

// ScheduleCall registers c to run at now+delay, like Schedule without the
// closure: the Caller itself is the callback.
func (e *Engine) ScheduleCall(delay Time, c Caller) EventHandle {
	if delay < 0 {
		delay = 0
	}
	ev := e.getEvent(e.now + delay)
	ev.c = c
	e.queue.push(ev)
	return EventHandle{ev: ev, gen: ev.gen}
}

// After registers fn to run at now+delay without issuing a cancel handle —
// the allocation-free form of Schedule for fire-and-forget events.
func (e *Engine) After(delay Time, fn func()) {
	if delay < 0 {
		delay = 0
	}
	ev := e.getEvent(e.now + delay)
	ev.fn = fn
	e.queue.push(ev)
}

// CallAfter registers c to run at now+delay: no handle, no closure. This is
// the engine's cheapest scheduling primitive and the one every built-in
// synchronisation object (Process sleeps, Signal fires, Mailbox sends,
// Resource releases, Counter thresholds) runs on.
func (e *Engine) CallAfter(delay Time, c Caller) {
	if delay < 0 {
		delay = 0
	}
	ev := e.getEvent(e.now + delay)
	ev.c = c
	e.queue.push(ev)
}

// CallAt registers c to run at the absolute time at (which must not lie in
// the past), the handle-free, closure-free form of ScheduleAt.
func (e *Engine) CallAt(at Time, c Caller) {
	if at < e.now {
		panic(fmt.Sprintf("sim: CallAt(%v) is before now %v", at, e.now))
	}
	ev := e.getEvent(at)
	ev.c = c
	e.queue.push(ev)
}

// EventHandle allows cancelling a scheduled callback.
type EventHandle struct {
	ev  *event
	gen uint32
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op: a fired event's slot returns to the
// engine's arena under a new generation, so a stale handle can never
// cancel the slot's next occupant — and the zero-value handle cancels
// nothing. Reports whether the event was live. Handles are small values;
// issuing one never allocates.
func (h EventHandle) Cancel() bool {
	if h.ev == nil || h.gen != h.ev.gen || h.ev.cancelled || h.ev.index == -1 {
		return false
	}
	h.ev.cancelled = true
	return true
}

// fire runs a just-popped event's callback after recycling the slot: the
// callback routinely schedules new events, and handing the slot back first
// lets that schedule reuse it immediately.
func (e *Engine) fire(ev *event) {
	fn, c := ev.fn, ev.c
	e.putEvent(ev)
	if c != nil {
		c.Call()
	} else {
		fn()
	}
}

// Run drives the simulation until no events remain or Stop is called.
// It returns the final virtual time.
func (e *Engine) Run() Time {
	return e.RunUntil(Infinity)
}

// RunUntil drives the simulation until the calendar is empty, Stop is
// called, or the next event would fire strictly after the deadline. Events
// exactly at the deadline are executed.
func (e *Engine) RunUntil(deadline Time) Time {
	for !e.stopped && e.queue.Len() > 0 {
		next := e.queue.evs[0]
		if next.at > deadline {
			e.now = deadline
			return e.now
		}
		e.queue.pop()
		if next.cancelled {
			e.putEvent(next)
			continue
		}
		if next.at < e.now {
			panic(fmt.Sprintf("sim: event at %v is before now %v", next.at, e.now))
		}
		e.now = next.at
		e.executed++
		e.fire(next)
	}
	if e.active > 0 && !e.stopped && e.shardSet == nil {
		// Every runnable process is blocked and no event can wake any of
		// them: the model has deadlocked. Surface it loudly with a roster.
		// (A shard engine legitimately idles here waiting for cross-shard
		// mail; its ShardSet owns the global deadlock check.)
		panic("sim: deadlock: " + e.blockedRoster())
	}
	return e.now
}

// RunWindow executes every event strictly before end, leaving the clock at
// the last executed event (not at end): the sharded coordinator needs the
// true event times to compute the next lookahead window, and mail is
// injected with absolute times at the barrier.
func (e *Engine) RunWindow(end Time) {
	for !e.stopped && e.queue.Len() > 0 {
		if e.selfMailAt < end {
			end = e.selfMailAt
		}
		if e.outMailAt < end {
			end = e.outMailAt
		}
		next := e.queue.evs[0]
		if next.at >= end {
			return
		}
		e.queue.pop()
		if next.cancelled {
			e.putEvent(next)
			continue
		}
		if next.at < e.now {
			panic(fmt.Sprintf("sim: event at %v is before now %v", next.at, e.now))
		}
		e.now = next.at
		e.executed++
		e.fire(next)
	}
}

// injectMail appends a batch of barrier mail, already in canonical merge
// order, to the calendar in one pass: each item takes the next sequence
// number in batch order, so same-time ties at the receiver resolve
// identically for every shard count. Large batches (relative to the
// resident calendar) are appended raw and re-heapified in O(n); small
// ones go through ordinary pushes.
func (e *Engine) injectMail(items []mailItem) {
	bulk := len(items) > e.queue.Len()
	for i := range items {
		it := &items[i]
		if it.at < e.now {
			panic(fmt.Sprintf("sim: mail at %v is before now %v", it.at, e.now))
		}
		ev := e.getEvent(it.at)
		ev.fn = it.fn
		ev.c = it.c
		if bulk {
			ev.index = len(e.queue.evs)
			e.queue.evs = append(e.queue.evs, ev)
		} else {
			e.queue.push(ev)
		}
	}
	if bulk {
		e.queue.reinit()
	}
}

// NextEventTime returns the time of the earliest live event, or Infinity
// with an empty (or fully cancelled) calendar. Cancelled events at the top
// of the heap are removed on the way.
func (e *Engine) NextEventTime() Time {
	for e.queue.Len() > 0 {
		if e.queue.evs[0].cancelled {
			e.putEvent(e.queue.pop())
			continue
		}
		return e.queue.evs[0].at
	}
	return Infinity
}

// EventsExecuted returns the number of events the engine has run — the
// denominator of event-loop efficiency measurements (for example the
// coalesced-polling gate).
func (e *Engine) EventsExecuted() uint64 { return e.executed }

// Stop halts the run loop after the current event completes. Parked process
// goroutines are abandoned (the engine is single-use after Stop).
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// Interrupt stops the run loop like Stop, additionally recording a reason —
// used by the fault plane to model a hard failure (e.g. a core-group crash)
// that tears the whole simulation down mid-run. Parked process goroutines
// are abandoned, exactly as with Stop. Only the first reason is kept.
func (e *Engine) Interrupt(reason string) {
	if e.interrupted == "" {
		e.interrupted = reason
	}
	e.stopped = true
}

// Interrupted returns the reason passed to Interrupt, or "" if the engine
// was not interrupted.
func (e *Engine) Interrupted() string { return e.interrupted }

// PendingEvents returns the number of live calendar entries (cancelled
// events still in the heap are not counted).
func (e *Engine) PendingEvents() int {
	n := 0
	for _, ev := range e.queue.evs {
		if !ev.cancelled {
			n++
		}
	}
	return n
}

// ActiveProcesses returns the number of spawned, unfinished processes.
func (e *Engine) ActiveProcesses() int { return e.active }

func (e *Engine) blockedRoster() string {
	var names []string
	for _, p := range e.procs {
		if !p.finished {
			names = append(names, fmt.Sprintf("%s(blocked at %q)", p.name, p.blockedOn))
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return "no live processes"
	}
	s := ""
	for i, n := range names {
		if i > 0 {
			s += ", "
		}
		s += n
	}
	return s
}
