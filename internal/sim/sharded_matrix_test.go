package sim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestShardSetLatencyMatrixValidation exercises the constructor's guard
// rails: non-square matrices and non-positive pair lookaheads are refused
// (a zero or negative pair admits no window and would livelock the
// coordinator), while Infinity marks pairs that never interact.
func TestShardSetLatencyMatrixValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}

	mustPanic("zero pair", func() {
		NewShardSetLatencies([][]Time{
			{0, 0},
			{Microsecond, 0},
		})
	})
	mustPanic("negative pair", func() {
		NewShardSetLatencies([][]Time{
			{0, -Microsecond},
			{Microsecond, 0},
		})
	})
	mustPanic("ragged matrix", func() {
		NewShardSetLatencies([][]Time{
			{0, Microsecond},
			{Microsecond},
		})
	})
	mustPanic("empty matrix", func() { NewShardSetLatencies(nil) })
	mustPanic("zero uniform", func() { NewShardSet(2, 0) })

	// Asymmetric finite entries plus an Infinity pair: the diagonal is
	// ignored, Lookahead reports the global minimum, PairLookahead the
	// entries.
	ss := NewShardSetLatencies([][]Time{
		{-1, 2 * Microsecond, Infinity},
		{Microsecond, -1, 3 * Microsecond},
		{Infinity, 4 * Microsecond, -1},
	})
	if got := ss.Lookahead(); got != Microsecond {
		t.Fatalf("Lookahead() = %v, want %v", got, Microsecond)
	}
	if got := ss.PairLookahead(0, 1); got != 2*Microsecond {
		t.Fatalf("PairLookahead(0,1) = %v, want %v", got, 2*Microsecond)
	}
	if got := ss.PairLookahead(1, 0); got != Microsecond {
		t.Fatalf("PairLookahead(1,0) = %v, want %v", got, Microsecond)
	}
	if got := ss.PairLookahead(0, 2); got != Infinity {
		t.Fatalf("PairLookahead(0,2) = %v, want Infinity", got)
	}
}

// TestShardSetAsymmetricMatrixMatchesSerial runs three shards under an
// asymmetric latency matrix — each direction of each pair has its own
// minimum wire time — and asserts virtual timestamps identical to the same
// traffic on one serial engine. Shard 2 is reachable only at a much larger
// latency, so its windows run far ahead of the chatty 0<->1 pair.
func TestShardSetAsymmetricMatrixMatchesSerial(t *testing.T) {
	lat := [][]Time{
		{-1, 2 * Microsecond, 8 * Microsecond},
		{3 * Microsecond, -1, 8 * Microsecond},
		{8 * Microsecond, 8 * Microsecond, -1},
	}
	const hops = 40

	run := func(engOf func(i int) *Engine, send func(src, dst int, at Time, fn func()), drive func() Time) (map[string]Time, Time) {
		log := make(map[string]Time)
		var mu sync.Mutex
		note := func(key string, at Time) {
			mu.Lock()
			log[key] = at
			mu.Unlock()
		}
		var hop func(from, to, n int)
		hop = func(from, to, n int) {
			if n >= hops {
				return
			}
			wire := lat[from][to]
			e := engOf(from)
			at := e.Now() + wire
			send(from, to, at, func() {
				note(fmt.Sprintf("hop %d->%d #%d", from, to, n), engOf(to).Now())
				// Bounce between 0 and 1, detouring via 2 every 8th hop
				// so the slow pair sees traffic too.
				next := 1 - to
				if n%8 == 7 {
					next = 2
				}
				if to == 2 {
					next = 0
				}
				hop(to, next, n+1)
			})
		}
		engOf(0).Schedule(0, func() { hop(0, 1, 0) })
		engOf(1).Schedule(Microsecond/4, func() { hop(1, 0, 0) })
		return log, drive()
	}

	serial := NewEngine()
	wantLog, wantEnd := run(
		func(int) *Engine { return serial },
		func(src, dst int, at Time, fn func()) { serial.ScheduleAt(at, fn) },
		serial.Run)

	ss := NewShardSetLatencies(lat)
	gotLog, gotEnd := run(
		ss.Engine,
		func(src, dst int, at Time, fn func()) { ss.Post(ss.Engine(src), ss.Engine(dst), at, fn) },
		ss.Run)

	if gotEnd != wantEnd {
		t.Fatalf("end time: sharded %v, serial %v", gotEnd, wantEnd)
	}
	if len(gotLog) != len(wantLog) {
		t.Fatalf("log length: sharded %d, serial %d", len(gotLog), len(wantLog))
	}
	for k, want := range wantLog {
		if got, ok := gotLog[k]; !ok || got != want {
			t.Fatalf("%s: sharded time %v, serial %v", k, got, want)
		}
	}
}

// TestShardSetIdleShardMidWindow drives one shard through a long event
// chain while the other goes fully idle partway through, then is revived
// by late mail. An idle shard must stop constraining windows (its next
// event time is Infinity) without deadlocking the coordinator, and the
// revival mail must still respect the pair lookahead.
func TestShardSetIdleShardMidWindow(t *testing.T) {
	const look = Microsecond
	ss := NewShardSet(2, look)
	a, b := ss.Engine(0), ss.Engine(1)

	// Shard 1: a short burst, then nothing.
	var bRan atomic.Int64
	for i := 1; i <= 5; i++ {
		b.After(Time(i)*look/2, func() { bRan.Add(1) })
	}

	// Shard 0: a long self-rescheduling chain that outlives shard 1's
	// burst by far, then revives shard 1 with cross-shard mail.
	var aEnd Time
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < 400 {
			a.After(look/4, tick)
			return
		}
		aEnd = a.Now()
		ss.Post(a, b, a.Now()+2*look, func() { bRan.Add(100) })
	}
	a.After(0, tick)

	end := ss.Run()
	if got := bRan.Load(); got != 105 {
		t.Fatalf("shard-1 events: got %d, want 105 (5 burst + revived)", got)
	}
	if want := aEnd + 2*look; end != want {
		t.Fatalf("end time %v, want %v (revival delivery)", end, want)
	}
}

// TestShardSetMailStormMatchesSerial is the adversarial batching case:
// every other shard floods shard 0 with mail inside a handful of windows —
// far more items than shard 0's resident calendar, forcing the bulk
// injectMail path (append + heapify) — with deliberate timestamp ties
// across source shards. The observed execution order must be the canonical
// (time, postTime, srcShard, seq) merge order, bit-identical to the same
// storm run serially.
func TestShardSetMailStormMatchesSerial(t *testing.T) {
	const (
		shards  = 4
		perSrc  = 800
		look    = Microsecond
		baseGap = Microsecond / 64
	)

	type rec struct {
		src, n int
		at     Time
	}

	run := func(engOf func(i int) *Engine, send func(src int, at Time, fn func()), drive func()) []rec {
		var got []rec
		for s := 1; s < shards; s++ {
			src := s
			e := engOf(src)
			e.After(0, func() {
				now := e.Now()
				for i := 0; i < perSrc; i++ {
					n := i
					// Half the storm lands on shared instants (ties
					// across all three sources), half on per-source
					// offsets.
					at := now + 2*look + Time(i/2)*baseGap
					send(src, at, func() {
						got = append(got, rec{src: src, n: n, at: engOf(0).Now()})
					})
				}
			})
		}
		drive()
		return got
	}

	serial := NewEngine()
	want := run(
		func(int) *Engine { return serial },
		func(src int, at Time, fn func()) { serial.ScheduleAt(at, fn) },
		func() { serial.Run() })

	ss := NewShardSet(shards, look)
	got := run(
		ss.Engine,
		func(src int, at Time, fn func()) { ss.Post(ss.Engine(src), ss.Engine(0), at, fn) },
		func() { ss.Run() })

	if len(got) != len(want) || len(got) != (shards-1)*perSrc {
		t.Fatalf("storm delivered %d events, serial %d, want %d", len(got), len(want), (shards-1)*perSrc)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("storm order diverges at %d: sharded %+v, serial %+v", i, got[i], want[i])
		}
	}
}

// TestShardSetMailBelowLookaheadPanics asserts the delivery-time guard: a
// cross-shard post inside the pair lookahead would violate the window
// invariant and must panic rather than silently reorder.
func TestShardSetMailBelowLookaheadPanics(t *testing.T) {
	ss := NewShardSet(2, Microsecond)
	a, b := ss.Engine(0), ss.Engine(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mail inside the pair lookahead")
		}
	}()
	ss.Post(a, b, a.Now()+Microsecond/2, func() {})
}
