package sim

import (
	"testing"
)

func TestProcessSleepAdvancesTime(t *testing.T) {
	e := NewEngine()
	var wake []Time
	e.Spawn("sleeper", func(p *Process) {
		p.Sleep(1)
		wake = append(wake, p.Now())
		p.Sleep(2.5)
		wake = append(wake, p.Now())
	})
	end := e.Run()
	if end != 3.5 {
		t.Fatalf("end = %v, want 3.5", end)
	}
	if len(wake) != 2 || wake[0] != 1 || wake[1] != 3.5 {
		t.Fatalf("wake = %v", wake)
	}
}

func TestProcessesInterleaveDeterministically(t *testing.T) {
	e := NewEngine()
	var trace []string
	mk := func(name string, period Time) {
		e.Spawn(name, func(p *Process) {
			for i := 0; i < 3; i++ {
				p.Sleep(period)
				trace = append(trace, name)
			}
		})
	}
	mk("a", 1)
	mk("b", 1.5)
	e.Run()
	// times: a@1, b@1.5, a@2, then both at t=3 — b's event was scheduled
	// earlier (at 1.5) so it wins the tie — then b@4.5.
	want := []string{"a", "b", "a", "b", "a", "b"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestSignalWakesAllWaiters(t *testing.T) {
	e := NewEngine()
	sig := NewSignal(e, "go")
	var woke []string
	for _, name := range []string{"w1", "w2", "w3"} {
		name := name
		e.Spawn(name, func(p *Process) {
			sig.Wait(p)
			woke = append(woke, name)
			if p.Now() != 5 {
				t.Errorf("%s woke at %v, want 5", name, p.Now())
			}
		})
	}
	e.Spawn("firer", func(p *Process) {
		p.Sleep(5)
		sig.Fire()
	})
	e.Run()
	if len(woke) != 3 {
		t.Fatalf("woke = %v", woke)
	}
}

func TestSignalWaitAfterFireReturnsImmediately(t *testing.T) {
	e := NewEngine()
	sig := NewSignal(e, "done")
	sig.Fire()
	ran := false
	e.Spawn("late", func(p *Process) {
		sig.Wait(p)
		ran = true
		if p.Now() != 0 {
			t.Errorf("late waiter at %v, want 0", p.Now())
		}
	})
	e.Run()
	if !ran {
		t.Fatal("late waiter did not run")
	}
	if !sig.Fired() {
		t.Fatal("Fired() = false")
	}
}

func TestProcessDoneJoin(t *testing.T) {
	e := NewEngine()
	var order []string
	worker := e.Spawn("worker", func(p *Process) {
		p.Sleep(2)
		order = append(order, "worker")
	})
	e.Spawn("joiner", func(p *Process) {
		worker.Done().Wait(p)
		order = append(order, "joiner")
		if p.Now() != 2 {
			t.Errorf("join at %v, want 2", p.Now())
		}
	})
	e.Run()
	if len(order) != 2 || order[0] != "worker" || order[1] != "joiner" {
		t.Fatalf("order = %v", order)
	}
	if !worker.Finished() {
		t.Fatal("worker not finished")
	}
}

func TestMailboxFIFOAndBlocking(t *testing.T) {
	e := NewEngine()
	mb := NewMailbox[int](e, "mb")
	var got []int
	e.Spawn("consumer", func(p *Process) {
		for i := 0; i < 3; i++ {
			got = append(got, mb.Recv(p))
		}
	})
	e.Spawn("producer", func(p *Process) {
		for i := 1; i <= 3; i++ {
			p.Sleep(1)
			mb.Send(i * 10)
		}
	})
	e.Run()
	if len(got) != 3 || got[0] != 10 || got[1] != 20 || got[2] != 30 {
		t.Fatalf("got = %v", got)
	}
}

func TestMailboxTryRecv(t *testing.T) {
	e := NewEngine()
	mb := NewMailbox[string](e, "mb")
	if _, ok := mb.TryRecv(); ok {
		t.Fatal("TryRecv on empty mailbox succeeded")
	}
	mb.Send("x")
	if mb.Len() != 1 {
		t.Fatalf("Len = %d", mb.Len())
	}
	v, ok := mb.TryRecv()
	if !ok || v != "x" {
		t.Fatalf("TryRecv = %q, %v", v, ok)
	}
}

func TestResourceLimitsConcurrency(t *testing.T) {
	e := NewEngine()
	res := NewResource(e, "dma", 2)
	maxInUse := 0
	for i := 0; i < 6; i++ {
		e.Spawn("user", func(p *Process) {
			res.Acquire(p)
			if res.InUse() > maxInUse {
				maxInUse = res.InUse()
			}
			p.Sleep(1)
			res.Release()
		})
	}
	end := e.Run()
	if maxInUse != 2 {
		t.Fatalf("max in use = %d, want 2", maxInUse)
	}
	// 6 unit-time jobs on 2 servers take 3 time units.
	if end != 3 {
		t.Fatalf("end = %v, want 3", end)
	}
}

func TestResourceUseHelper(t *testing.T) {
	e := NewEngine()
	res := NewResource(e, "mc", 1)
	ran := false
	e.Spawn("u", func(p *Process) {
		res.Use(p, 2, func() { ran = true })
	})
	end := e.Run()
	if !ran || end != 2 {
		t.Fatalf("ran=%v end=%v", ran, end)
	}
	if res.InUse() != 0 {
		t.Fatal("resource not released")
	}
}

func TestResourceReleaseWithoutAcquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e := NewEngine()
	NewResource(e, "r", 1).Release()
}

func TestCounterWaitFor(t *testing.T) {
	e := NewEngine()
	c := NewCounter(e, "flag")
	reached := Time(-1)
	e.Spawn("waiter", func(p *Process) {
		c.WaitFor(p, 3)
		reached = p.Now()
	})
	e.Spawn("adder", func(p *Process) {
		for i := 0; i < 3; i++ {
			p.Sleep(1)
			c.Add(1)
		}
	})
	e.Run()
	if reached != 3 {
		t.Fatalf("waiter woke at %v, want 3", reached)
	}
	if c.Value() != 3 {
		t.Fatalf("counter = %d", c.Value())
	}
}

func TestCounterWaitForAlreadyReached(t *testing.T) {
	e := NewEngine()
	c := NewCounter(e, "flag")
	c.Add(5)
	ran := false
	e.Spawn("w", func(p *Process) {
		c.WaitFor(p, 5)
		ran = true
	})
	e.Run()
	if !ran {
		t.Fatal("waiter blocked despite threshold reached")
	}
}

func TestCounterReset(t *testing.T) {
	e := NewEngine()
	c := NewCounter(e, "flag")
	c.Add(7)
	c.Reset()
	if c.Value() != 0 {
		t.Fatalf("value after reset = %d", c.Value())
	}
}

func TestDeadlockDetection(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected deadlock panic")
		}
	}()
	e := NewEngine()
	sig := NewSignal(e, "never")
	e.Spawn("stuck", func(p *Process) { sig.Wait(p) })
	e.Run()
}

func TestActiveProcessesAccounting(t *testing.T) {
	e := NewEngine()
	e.Spawn("p1", func(p *Process) { p.Sleep(1) })
	e.Spawn("p2", func(p *Process) { p.Sleep(2) })
	if e.ActiveProcesses() != 2 {
		t.Fatalf("active = %d, want 2", e.ActiveProcesses())
	}
	e.Run()
	if e.ActiveProcesses() != 0 {
		t.Fatalf("active after run = %d, want 0", e.ActiveProcesses())
	}
}

func TestResourceFIFOOrder(t *testing.T) {
	e := NewEngine()
	res := NewResource(e, "r", 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Spawn("u", func(p *Process) {
			p.Sleep(Time(i) * 0.001) // arrive in index order
			res.Acquire(p)
			order = append(order, i)
			p.Sleep(0.01)
			res.Release()
		})
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("resource not FIFO: %v", order)
		}
	}
}

func TestSignalOnFireAfterFired(t *testing.T) {
	e := NewEngine()
	s := NewSignal(e, "s")
	s.Fire()
	ran := false
	s.OnFire(func() { ran = true })
	e.Run()
	if !ran {
		t.Fatal("OnFire after Fire did not run")
	}
}

func TestCounterOnReachMultipleThresholds(t *testing.T) {
	e := NewEngine()
	c := NewCounter(e, "c")
	var hits []int64
	c.OnReach(2, func() { hits = append(hits, 2) })
	c.OnReach(5, func() { hits = append(hits, 5) })
	e.Spawn("adder", func(p *Process) {
		for i := 0; i < 5; i++ {
			p.Sleep(1)
			c.Add(1)
		}
	})
	e.Run()
	if len(hits) != 2 || hits[0] != 2 || hits[1] != 5 {
		t.Fatalf("hits = %v", hits)
	}
}

func TestMailboxMultipleWaitersServedInOrder(t *testing.T) {
	e := NewEngine()
	mb := NewMailbox[int](e, "mb")
	var got []int
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn("consumer", func(p *Process) {
			p.Sleep(Time(i) * 0.001)
			v := mb.Recv(p)
			got = append(got, v*10+i)
		})
	}
	e.Spawn("producer", func(p *Process) {
		p.Sleep(0.01)
		for i := 1; i <= 3; i++ {
			mb.Send(i)
		}
	})
	e.Run()
	if len(got) != 3 {
		t.Fatalf("got = %v", got)
	}
	// First waiter receives the first message.
	if got[0] != 10 {
		t.Fatalf("first delivery = %d, want 10", got[0])
	}
}
