package sim

import "fmt"

// Process is a simulated thread of control. A process runs on its own
// goroutine but never concurrently with the engine or another process: it
// executes until it blocks (Sleep, Wait, ...) and then hands control back.
//
// All Process methods must be called from the process's own body function.
type Process struct {
	eng  *Engine
	name string
	pid  int

	resume chan struct{} // engine -> process: run
	parked chan struct{} // process -> engine: I have blocked or finished

	finished  bool
	blockedOn string // diagnostics: what the process is waiting for
	doneSig   *Signal
}

// Spawn starts a new process executing body. The body begins running at the
// current virtual time, after the currently executing event/process yields.
// The name appears in deadlock diagnostics.
func (e *Engine) Spawn(name string, body func(p *Process)) *Process {
	p := &Process{
		eng:    e,
		name:   name,
		pid:    e.nextPID,
		resume: make(chan struct{}),
		parked: make(chan struct{}),
	}
	p.doneSig = NewSignal(e, name+".done")
	e.nextPID++
	e.procs = append(e.procs, p)
	e.active++

	go func() {
		<-p.resume // wait for first activation
		body(p)
		p.finished = true
		e.active--
		p.doneSig.Fire()
		p.parked <- struct{}{}
	}()

	e.Schedule(0, func() { p.run() })
	return p
}

// run transfers control to the process goroutine and waits for it to park.
// It is always invoked from an engine event callback, so the strict
// one-runner-at-a-time invariant holds.
func (p *Process) run() {
	if p.finished {
		panic(fmt.Sprintf("sim: resuming finished process %s", p.name))
	}
	p.resume <- struct{}{}
	<-p.parked
}

// yield parks the process and returns control to the engine. The process
// resumes when some event calls run() again.
func (p *Process) yield(why string) {
	p.blockedOn = why
	p.parked <- struct{}{}
	<-p.resume
	p.blockedOn = ""
}

// Engine returns the engine this process runs on.
func (p *Process) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Process) Now() Time { return p.eng.now }

// Name returns the process name given at Spawn.
func (p *Process) Name() string { return p.name }

// Sleep advances the process by d of virtual time. Other processes and
// events run in the interim. A non-positive d yields the processor for the
// current instant (other same-time events run) and resumes.
func (p *Process) Sleep(d Time) {
	p.eng.Schedule(d, func() { p.run() })
	p.yield(fmt.Sprintf("sleep(%g)", float64(d)))
}

// SleepUntil suspends the process until the absolute virtual time at.
// Unlike Sleep(at-Now()), the wake time is exactly at — no float rounding
// from the subtract-then-add round trip — which batched operations rely on
// to land on the same instant as the equivalent sequence of Sleeps.
func (p *Process) SleepUntil(at Time) {
	p.eng.ScheduleAt(at, func() { p.run() })
	p.yield(fmt.Sprintf("sleepUntil(%g)", float64(at)))
}

// Done returns a signal fired when the process body returns. Other
// processes may Wait on it to join this process.
func (p *Process) Done() *Signal { return p.doneSig }

// Finished reports whether the process body has returned.
func (p *Process) Finished() bool { return p.finished }

// Signal is a one-shot broadcast event: processes block on Wait until some
// actor calls Fire, after which Wait returns immediately forever.
type Signal struct {
	eng       *Engine
	name      string
	fired     bool
	waiters   []*Process
	callbacks []func()
}

// NewSignal creates an unfired signal.
func NewSignal(e *Engine, name string) *Signal {
	return &Signal{eng: e, name: name}
}

// Fired reports whether Fire has been called.
func (s *Signal) Fired() bool { return s.fired }

// Fire triggers the signal, waking all waiters at the current virtual time.
// Firing twice is a no-op.
func (s *Signal) Fire() {
	if s.fired {
		return
	}
	s.fired = true
	waiters := s.waiters
	s.waiters = nil
	for _, w := range waiters {
		w := w
		s.eng.Schedule(0, func() { w.run() })
	}
	callbacks := s.callbacks
	s.callbacks = nil
	for _, fn := range callbacks {
		s.eng.Schedule(0, fn)
	}
}

// Wait blocks the calling process until the signal fires.
func (s *Signal) Wait(p *Process) {
	if s.fired {
		return
	}
	s.waiters = append(s.waiters, p)
	p.yield("signal:" + s.name)
}

// OnFire schedules fn to run when the signal fires (immediately, at the
// current time, if it already has). Each registered callback runs once.
func (s *Signal) OnFire(fn func()) {
	if s.fired {
		s.eng.Schedule(0, fn)
		return
	}
	s.callbacks = append(s.callbacks, fn)
}

// Mailbox is an unbounded FIFO queue of messages with blocking receive.
// Any actor (process or event callback) may Send; only processes Recv.
type Mailbox[T any] struct {
	eng     *Engine
	name    string
	items   []T
	waiters []*Process
}

// NewMailbox creates an empty mailbox.
func NewMailbox[T any](e *Engine, name string) *Mailbox[T] {
	return &Mailbox[T]{eng: e, name: name}
}

// Len returns the number of queued messages.
func (m *Mailbox[T]) Len() int { return len(m.items) }

// Send enqueues v and wakes one waiting receiver, if any.
func (m *Mailbox[T]) Send(v T) {
	m.items = append(m.items, v)
	if len(m.waiters) > 0 {
		w := m.waiters[0]
		m.waiters = m.waiters[1:]
		m.eng.Schedule(0, func() { w.run() })
	}
}

// Recv dequeues the oldest message, blocking the calling process until one
// is available.
func (m *Mailbox[T]) Recv(p *Process) T {
	for len(m.items) == 0 {
		m.waiters = append(m.waiters, p)
		p.yield("mailbox:" + m.name)
	}
	v := m.items[0]
	m.items = m.items[1:]
	return v
}

// TryRecv dequeues a message without blocking. ok is false if empty.
func (m *Mailbox[T]) TryRecv() (v T, ok bool) {
	if len(m.items) == 0 {
		return v, false
	}
	v = m.items[0]
	m.items = m.items[1:]
	return v, true
}

// Resource is a counting semaphore representing a pool of identical units
// (for example DMA channels or memory-controller slots). Acquire blocks the
// calling process while no unit is free.
type Resource struct {
	eng      *Engine
	name     string
	capacity int
	inUse    int
	waiters  []*Process
}

// NewResource creates a resource with the given number of units.
// Capacity must be positive.
func NewResource(e *Engine, name string, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive: " + name)
	}
	return &Resource{eng: e, name: name, capacity: capacity}
}

// Acquire claims one unit, blocking until available.
func (r *Resource) Acquire(p *Process) {
	for r.inUse >= r.capacity {
		r.waiters = append(r.waiters, p)
		p.yield("resource:" + r.name)
	}
	r.inUse++
}

// Release returns one unit and wakes one waiter.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: release of idle resource " + r.name)
	}
	r.inUse--
	if len(r.waiters) > 0 {
		w := r.waiters[0]
		r.waiters = r.waiters[1:]
		r.eng.Schedule(0, func() { w.run() })
	}
}

// InUse returns the number of currently held units.
func (r *Resource) InUse() int { return r.inUse }

// Capacity returns the total number of units.
func (r *Resource) Capacity() int { return r.capacity }

// Use runs fn while holding one unit of the resource for the given service
// time: acquire, sleep(serviceTime), optional fn, release.
func (r *Resource) Use(p *Process, serviceTime Time, fn func()) {
	r.Acquire(p)
	p.Sleep(serviceTime)
	if fn != nil {
		fn()
	}
	r.Release()
}

// Counter is a monotonically increasing integer with the ability to wait
// until it reaches a threshold. It models completion flags updated with the
// SW26010 faaw (fetch-and-add word) instruction.
type Counter struct {
	eng      *Engine
	name     string
	value    int64
	waiters  []counterWaiter
	reachCBs []counterCallback
}

type counterWaiter struct {
	threshold int64
	proc      *Process
}

type counterCallback struct {
	threshold int64
	fn        func()
}

// NewCounter creates a counter at zero.
func NewCounter(e *Engine, name string) *Counter {
	return &Counter{eng: e, name: name}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.value }

// Add increments the counter and wakes waiters whose threshold is reached.
func (c *Counter) Add(delta int64) {
	c.value += delta
	var keep []counterWaiter
	for _, w := range c.waiters {
		if c.value >= w.threshold {
			w := w
			c.eng.Schedule(0, func() { w.proc.run() })
		} else {
			keep = append(keep, w)
		}
	}
	c.waiters = keep
	var keepCB []counterCallback
	for _, cb := range c.reachCBs {
		if c.value >= cb.threshold {
			c.eng.Schedule(0, cb.fn)
		} else {
			keepCB = append(keepCB, cb)
		}
	}
	c.reachCBs = keepCB
}

// Reset sets the counter back to zero. Waiters are unaffected (they keep
// their absolute thresholds against the new value).
func (c *Counter) Reset() { c.value = 0 }

// WaitFor blocks the calling process until the counter value is at least
// threshold.
func (c *Counter) WaitFor(p *Process, threshold int64) {
	if c.value >= threshold {
		return
	}
	c.waiters = append(c.waiters, counterWaiter{threshold: threshold, proc: p})
	p.yield(fmt.Sprintf("counter:%s>=%d", c.name, threshold))
}

// OnReach schedules fn once the counter value reaches threshold
// (immediately if it already has). Each registered callback runs once.
func (c *Counter) OnReach(threshold int64, fn func()) {
	if c.value >= threshold {
		c.eng.Schedule(0, fn)
		return
	}
	c.reachCBs = append(c.reachCBs, counterCallback{threshold: threshold, fn: fn})
}
