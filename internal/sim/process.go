package sim

import "fmt"

// Process is a simulated thread of control. A process runs on its own
// goroutine but never concurrently with the engine or another process: it
// executes until it blocks (Sleep, Wait, ...) and then hands control back.
//
// All Process methods must be called from the process's own body function.
type Process struct {
	eng  *Engine
	name string
	pid  int

	resume chan struct{} // engine -> process: run
	parked chan struct{} // process -> engine: I have blocked or finished

	finished  bool
	blockedOn string // diagnostics: what the process is waiting for
	doneSig   *Signal
}

// Call resumes the process: a Process is its own wake-up Caller, so
// sleeps and signal fires schedule it without allocating a closure.
func (p *Process) Call() { p.run() }

// Spawn starts a new process executing body. The body begins running at the
// current virtual time, after the currently executing event/process yields.
// The name appears in deadlock diagnostics.
func (e *Engine) Spawn(name string, body func(p *Process)) *Process {
	if e.shardSet != nil && e.shardSet.opt != nil && e.shardSet.opt.speculating {
		panic("sim: cannot spawn a process on a speculating optimistic shard: " +
			"process stacks cannot roll back (spawn before Run, or run with MaxDepth 0)")
	}
	p := &Process{
		eng:    e,
		name:   name,
		pid:    e.nextPID,
		resume: make(chan struct{}),
		parked: make(chan struct{}),
	}
	p.doneSig = NewSignal(e, name+".done")
	e.nextPID++
	e.procs = append(e.procs, p)
	e.active++

	go func() {
		<-p.resume // wait for first activation
		body(p)
		p.finished = true
		e.active--
		p.doneSig.Fire()
		p.parked <- struct{}{}
	}()

	e.CallAfter(0, p)
	return p
}

// run transfers control to the process goroutine and waits for it to park.
// It is always invoked from an engine event callback, so the strict
// one-runner-at-a-time invariant holds.
func (p *Process) run() {
	if p.finished {
		panic(fmt.Sprintf("sim: resuming finished process %s", p.name))
	}
	p.resume <- struct{}{}
	<-p.parked
}

// yield parks the process and returns control to the engine. The process
// resumes when some event calls run() again.
func (p *Process) yield(why string) {
	p.blockedOn = why
	p.parked <- struct{}{}
	<-p.resume
	p.blockedOn = ""
}

// Engine returns the engine this process runs on.
func (p *Process) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Process) Now() Time { return p.eng.now }

// Name returns the process name given at Spawn.
func (p *Process) Name() string { return p.name }

// Sleep advances the process by d of virtual time. Other processes and
// events run in the interim. A non-positive d yields the processor for the
// current instant (other same-time events run) and resumes.
func (p *Process) Sleep(d Time) {
	p.eng.CallAfter(d, p)
	p.yield("sleep")
}

// SleepUntil suspends the process until the absolute virtual time at.
// Unlike Sleep(at-Now()), the wake time is exactly at — no float rounding
// from the subtract-then-add round trip — which batched operations rely on
// to land on the same instant as the equivalent sequence of Sleeps.
func (p *Process) SleepUntil(at Time) {
	p.eng.CallAt(at, p)
	p.yield("sleep-until")
}

// Done returns a signal fired when the process body returns. Other
// processes may Wait on it to join this process.
func (p *Process) Done() *Signal { return p.doneSig }

// Finished reports whether the process body has returned.
func (p *Process) Finished() bool { return p.finished }

// Signal is a one-shot broadcast event: processes block on Wait until some
// actor calls Fire, after which Wait returns immediately forever.
type Signal struct {
	eng       *Engine
	name      string
	waitTag   string // precomputed yield diagnostic, built once per signal
	fired     bool
	waiters   []*Process
	callbacks []func()
}

// NewSignal creates an unfired signal.
func NewSignal(e *Engine, name string) *Signal {
	return &Signal{eng: e, name: name}
}

// Init (re)initialises a signal in place to the unfired state, for callers
// that embed Signals in pooled structures instead of allocating with
// NewSignal. The caller must only reuse a signal after it has fired and its
// waiters have drained; the drained waiter/callback capacity is kept, so a
// pooled request's signal stops allocating once warm.
func (s *Signal) Init(e *Engine, name string) {
	if s.name != name {
		s.waitTag = ""
	}
	s.eng = e
	s.name = name
	s.fired = false
	s.waiters = s.waiters[:0]
	s.callbacks = s.callbacks[:0]
}

// tag returns the yield diagnostic for Wait, built on first use: most
// signals fire without ever blocking a process, and skipping the eager
// concatenation keeps signal setup allocation-free.
func (s *Signal) tag() string {
	if s.waitTag == "" {
		s.waitTag = "signal:" + s.name
	}
	return s.waitTag
}

// Call fires the signal: a Signal is its own completion Caller, so
// "schedule this signal to fire after the wire time" costs no closure.
func (s *Signal) Call() { s.Fire() }

// Fired reports whether Fire has been called.
func (s *Signal) Fired() bool { return s.fired }

// Fire triggers the signal, waking all waiters at the current virtual time.
// Firing twice is a no-op.
func (s *Signal) Fire() {
	if s.fired {
		return
	}
	s.fired = true
	for _, w := range s.waiters {
		s.eng.CallAfter(0, w)
	}
	for _, fn := range s.callbacks {
		s.eng.After(0, fn)
	}
	// Drop the references but keep the capacity: once fired, Wait and
	// OnFire never append again (they act immediately), and a pooled
	// owner's Init reuses the drained storage.
	for i := range s.waiters {
		s.waiters[i] = nil
	}
	s.waiters = s.waiters[:0]
	for i := range s.callbacks {
		s.callbacks[i] = nil
	}
	s.callbacks = s.callbacks[:0]
}

// Wait blocks the calling process until the signal fires.
func (s *Signal) Wait(p *Process) {
	if s.fired {
		return
	}
	s.waiters = append(s.waiters, p)
	p.yield(s.tag())
}

// OnFire schedules fn to run when the signal fires (immediately, at the
// current time, if it already has). Each registered callback runs once.
func (s *Signal) OnFire(fn func()) {
	if s.fired {
		s.eng.After(0, fn)
		return
	}
	s.callbacks = append(s.callbacks, fn)
}

// Mailbox is an unbounded FIFO queue of messages with blocking receive.
// Any actor (process or event callback) may Send; only processes Recv.
type Mailbox[T any] struct {
	eng     *Engine
	name    string
	waitTag string
	items   []T
	waiters []*Process
}

// NewMailbox creates an empty mailbox.
func NewMailbox[T any](e *Engine, name string) *Mailbox[T] {
	return &Mailbox[T]{eng: e, name: name, waitTag: "mailbox:" + name}
}

// Len returns the number of queued messages.
func (m *Mailbox[T]) Len() int { return len(m.items) }

// Send enqueues v and wakes one waiting receiver, if any.
func (m *Mailbox[T]) Send(v T) {
	m.items = append(m.items, v)
	if len(m.waiters) > 0 {
		w := m.waiters[0]
		m.waiters = m.waiters[1:]
		m.eng.CallAfter(0, w)
	}
}

// Recv dequeues the oldest message, blocking the calling process until one
// is available.
func (m *Mailbox[T]) Recv(p *Process) T {
	for len(m.items) == 0 {
		m.waiters = append(m.waiters, p)
		p.yield(m.waitTag)
	}
	v := m.items[0]
	m.items = m.items[1:]
	return v
}

// TryRecv dequeues a message without blocking. ok is false if empty.
func (m *Mailbox[T]) TryRecv() (v T, ok bool) {
	if len(m.items) == 0 {
		return v, false
	}
	v = m.items[0]
	m.items = m.items[1:]
	return v, true
}

// Resource is a counting semaphore representing a pool of identical units
// (for example DMA channels or memory-controller slots). Acquire blocks the
// calling process while no unit is free.
type Resource struct {
	eng      *Engine
	name     string
	waitTag  string
	capacity int
	inUse    int
	waiters  []*Process
}

// NewResource creates a resource with the given number of units.
// Capacity must be positive.
func NewResource(e *Engine, name string, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive: " + name)
	}
	return &Resource{eng: e, name: name, waitTag: "resource:" + name, capacity: capacity}
}

// Acquire claims one unit, blocking until available.
func (r *Resource) Acquire(p *Process) {
	for r.inUse >= r.capacity {
		r.waiters = append(r.waiters, p)
		p.yield(r.waitTag)
	}
	r.inUse++
}

// Release returns one unit and wakes one waiter.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: release of idle resource " + r.name)
	}
	r.inUse--
	if len(r.waiters) > 0 {
		w := r.waiters[0]
		r.waiters = r.waiters[1:]
		r.eng.CallAfter(0, w)
	}
}

// InUse returns the number of currently held units.
func (r *Resource) InUse() int { return r.inUse }

// Capacity returns the total number of units.
func (r *Resource) Capacity() int { return r.capacity }

// Use runs fn while holding one unit of the resource for the given service
// time: acquire, sleep(serviceTime), optional fn, release.
func (r *Resource) Use(p *Process, serviceTime Time, fn func()) {
	r.Acquire(p)
	p.Sleep(serviceTime)
	if fn != nil {
		fn()
	}
	r.Release()
}

// Counter is a monotonically increasing integer with the ability to wait
// until it reaches a threshold. It models completion flags updated with the
// SW26010 faaw (fetch-and-add word) instruction.
type Counter struct {
	eng      *Engine
	name     string
	waitTag  string
	value    int64
	waiters  []counterWaiter
	reachCBs []counterCallback
}

// Call increments the counter by one: a Counter is its own faaw-style
// Caller, so per-CPE completion-flag updates schedule without a closure.
func (c *Counter) Call() { c.Add(1) }

type counterWaiter struct {
	threshold int64
	proc      *Process
}

type counterCallback struct {
	threshold int64
	fn        func()
}

// NewCounter creates a counter at zero.
func NewCounter(e *Engine, name string) *Counter {
	return &Counter{eng: e, name: name, waitTag: "counter:" + name}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.value }

// Add increments the counter and wakes waiters whose threshold is reached.
// Unreached waiters are compacted in place, so the steady-state faaw path
// (64 CPE flag updates per offload, one waiter) never allocates.
func (c *Counter) Add(delta int64) {
	c.value += delta
	keep := c.waiters[:0]
	for _, w := range c.waiters {
		if c.value >= w.threshold {
			c.eng.CallAfter(0, w.proc)
		} else {
			keep = append(keep, w)
		}
	}
	for i := len(keep); i < len(c.waiters); i++ {
		c.waiters[i] = counterWaiter{}
	}
	c.waiters = keep
	keepCB := c.reachCBs[:0]
	for _, cb := range c.reachCBs {
		if c.value >= cb.threshold {
			c.eng.After(0, cb.fn)
		} else {
			keepCB = append(keepCB, cb)
		}
	}
	for i := len(keepCB); i < len(c.reachCBs); i++ {
		c.reachCBs[i] = counterCallback{}
	}
	c.reachCBs = keepCB
}

// Reset sets the counter back to zero. Waiters are unaffected (they keep
// their absolute thresholds against the new value).
func (c *Counter) Reset() { c.value = 0 }

// WaitFor blocks the calling process until the counter value is at least
// threshold.
func (c *Counter) WaitFor(p *Process, threshold int64) {
	if c.value >= threshold {
		return
	}
	c.waiters = append(c.waiters, counterWaiter{threshold: threshold, proc: p})
	p.yield(c.waitTag)
}

// OnReach schedules fn once the counter value reaches threshold
// (immediately if it already has). Each registered callback runs once.
func (c *Counter) OnReach(threshold int64, fn func()) {
	if c.value >= threshold {
		c.eng.After(0, fn)
		return
	}
	c.reachCBs = append(c.reachCBs, counterCallback{threshold: threshold, fn: fn})
}
