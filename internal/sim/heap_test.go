package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// TestEventQueueOrdering drives the 4-ary heap with a large pseudo-random
// schedule (including many time ties) and checks the pop order against a
// stable sort on (at, seq) — the engine's FIFO tie-break contract.
func TestEventQueueOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var q eventQueue
	const n = 5000
	evs := make([]*event, 0, n)
	for i := 0; i < n; i++ {
		// Coarse times force frequent ties so the seq tie-break is
		// exercised heavily.
		ev := &event{at: Time(rng.Intn(50)), seq: uint64(i)}
		evs = append(evs, ev)
		q.push(ev)
	}
	want := append([]*event(nil), evs...)
	sort.SliceStable(want, func(i, j int) bool {
		if want[i].at != want[j].at {
			return want[i].at < want[j].at
		}
		return want[i].seq < want[j].seq
	})
	for i := 0; i < n; i++ {
		got := q.pop()
		if got != want[i] {
			t.Fatalf("pop %d: got (at=%v seq=%d), want (at=%v seq=%d)",
				i, got.at, got.seq, want[i].at, want[i].seq)
		}
		if got.index != -1 {
			t.Fatalf("popped event keeps index %d", got.index)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("queue not empty after draining: %d", q.Len())
	}
}

// TestEventQueueInterleavedPushPop mixes pushes and pops, verifying the
// heap invariant holds under churn (the engine's steady state).
func TestEventQueueInterleavedPushPop(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var q eventQueue
	var seq uint64
	lastAt := Time(-1)
	for round := 0; round < 200; round++ {
		for i := 0; i < rng.Intn(20); i++ {
			q.push(&event{at: lastAt + Time(rng.Intn(10)) + 1, seq: seq})
			seq++
		}
		for i := 0; i < rng.Intn(15) && q.Len() > 0; i++ {
			ev := q.pop()
			if ev.at < lastAt {
				t.Fatalf("pop went backwards: %v after %v", ev.at, lastAt)
			}
			lastAt = ev.at
		}
	}
}

// TestCancelledEventsSkippedAndCancelSemantics checks the engine-level
// cancel path against the new queue: cancelled events do not fire, Cancel
// on fired/cancelled events reports false, and FIFO order among the
// survivors is preserved.
func TestCancelledEventsSkippedAndCancelSemantics(t *testing.T) {
	e := NewEngine()
	var fired []int
	var handles []EventHandle
	for i := 0; i < 100; i++ {
		i := i
		handles = append(handles, e.Schedule(Time(i%10), func() { fired = append(fired, i) }))
	}
	for i, h := range handles {
		if i%3 == 0 {
			if !h.Cancel() {
				t.Fatalf("cancel of live event %d reported dead", i)
			}
			if h.Cancel() {
				t.Fatalf("double cancel of %d reported live", i)
			}
		}
	}
	e.Run()
	seenAt := map[int]int{}
	prevAt := -1
	for _, i := range fired {
		if i%3 == 0 {
			t.Fatalf("cancelled event %d fired", i)
		}
		at := i % 10
		if at < prevAt {
			t.Fatalf("events fired out of time order: %d after %d", at, prevAt)
		}
		if at == prevAt && seenAt[at] > i {
			t.Fatalf("FIFO tie-break violated at time %d", at)
		}
		prevAt = at
		seenAt[at] = i
	}
	if len(fired) != 66 {
		t.Fatalf("fired %d events, want 66", len(fired))
	}
	for _, h := range handles {
		if h.Cancel() {
			t.Fatal("cancel after run reported a live event")
		}
	}
}

// BenchmarkEventLoop measures raw scheduler throughput: a self-
// rescheduling event chain, the engine's hot path (push + pop + dispatch
// per event).
func BenchmarkEventLoop(b *testing.B) {
	e := NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.Schedule(Microsecond, tick)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.Schedule(Microsecond, tick)
	e.Run()
	b.ReportMetric(float64(n)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkEventQueueChurn measures the queue under a deep calendar:
// push/pop against 4096 resident events.
func BenchmarkEventQueueChurn(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var q eventQueue
	var seq uint64
	for i := 0; i < 4096; i++ {
		q.push(&event{at: Time(rng.Float64()), seq: seq})
		seq++
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := q.pop()
		ev.at += Time(rng.Float64())
		q.push(ev)
	}
}
