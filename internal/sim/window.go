package sim

// WindowStats describes one coordinator barrier: the window the shards
// are about to run, plus the cumulative engine counters at that instant.
// Counters are cumulative rather than per-window deltas on purpose — a
// bounded recorder that decimates its rows (obs.SpecRecorder) keeps the
// stream self-consistent, and consumers diff adjacent kept rows.
//
// For a fixed configuration (shard count, speculation depth) the stream
// is a deterministic function of the model, like every other virtual-time
// output. Across configurations it legitimately differs — windows are an
// engine artifact, not a model observable — which is why it is carried
// outside the bit-identity surfaces (core.Result JSON).
type WindowStats struct {
	Window      int64 // 1-based barrier ordinal
	GVT         Time  // global virtual time: minimum next-event time across shards
	MaxNow      Time  // latest shard clock at the barrier
	WindowStart Time  // earliest event the window will run (== GVT)
	WindowEnd   Time  // latest finite window end granted; 0 if none is finite
	Runnable    int   // shards with work inside their window

	// Cumulative engine counters. Executed includes rolled-back work
	// (re-execution counts again); RolledBack and the counters below it
	// stay zero under the conservative coordinator.
	Executed         uint64
	RolledBack       uint64
	Rollbacks        int64
	CascadeRollbacks int64
	AntiMessages     int64
	DupSends         int64
	Snapshots        int64
	SnapshotBytes    int64
	MailInjected     int64

	// AIMD speculation depth range across shards at this barrier, and
	// whether any shard's window extends past its conservative end.
	MinDepth    int
	MaxDepth    int
	Speculative bool
}

// WindowObserver receives one WindowStats per coordinator barrier. It is
// called on the coordinator goroutine between windows (never concurrently
// with shard execution), so it may read engine state but must be cheap —
// it sits on the barrier's critical path.
type WindowObserver func(WindowStats)

// SetWindowObserver installs fn as the barrier observer. A nil observer
// (the default) costs one predictable branch per barrier. The optimistic
// coordinator shares the field: degraded Time-Warp runs stream the
// conservative barrier telemetry through the same observer.
func (ss *ShardSet) SetWindowObserver(fn WindowObserver) { ss.winObs = fn }

// observeWindow reports one conservative barrier. GVT for the
// conservative engine is simply the earliest next event: nothing ever
// runs ahead of it, so lag and speculation counters are structurally
// zero.
func (ss *ShardSet) observeWindow(runnable int) {
	ws := WindowStats{
		Window:       ss.windows,
		Runnable:     runnable,
		MailInjected: ss.mailDelivered,
	}
	gvt := Infinity
	end := Time(0)
	for i, e := range ss.engines {
		ws.Executed += e.executed
		if ss.next[i] < gvt {
			gvt = ss.next[i]
		}
		if ss.ends[i] < Infinity && ss.ends[i] > end {
			end = ss.ends[i]
		}
	}
	ws.GVT = gvt
	ws.WindowStart = gvt
	ws.WindowEnd = end
	ws.MaxNow = ss.Now()
	ss.winObs(ws)
}

// observeOptWindow reports one Time-Warp barrier: fossilCollect has just
// refreshed GVT and the window ends (including speculative extensions)
// are computed, so the row captures the coordinator's exact dispatch
// decision.
func (o *OptimisticShardSet) observeOptWindow(runnable int) {
	ws := WindowStats{
		Window:           o.stats.Windows,
		Runnable:         runnable,
		GVT:              o.stats.GVT,
		WindowStart:      o.stats.GVT,
		RolledBack:       o.stats.EventsRolledBack,
		Rollbacks:        o.stats.Rollbacks,
		CascadeRollbacks: o.stats.CascadeRollbacks,
		AntiMessages:     o.stats.AntiMessages,
		DupSends:         o.stats.DupSends,
		Snapshots:        o.stats.Snapshots,
		SnapshotBytes:    o.stats.SnapshotBytes,
		MailInjected:     o.stats.MailInjected,
	}
	end := Time(0)
	minD := -1
	for i, e := range o.engines {
		ws.Executed += e.executed
		if o.ends[i] < Infinity && o.ends[i] > end {
			end = o.ends[i]
		}
		sh := &o.shards[i]
		if o.next[i] < o.ends[i] && sh.consEnd < o.ends[i] {
			ws.Speculative = true
		}
		if minD < 0 || sh.depth < minD {
			minD = sh.depth
		}
		if sh.depth > ws.MaxDepth {
			ws.MaxDepth = sh.depth
		}
	}
	ws.Executed += o.stats.EventsRolledBack
	ws.WindowEnd = end
	ws.MaxNow = o.Now()
	if minD > 0 {
		ws.MinDepth = minD
	}
	o.winObs(ws)
}
