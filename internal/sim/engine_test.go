package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleRunsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []Time
	e.Schedule(3, func() { got = append(got, e.Now()) })
	e.Schedule(1, func() { got = append(got, e.Now()) })
	e.Schedule(2, func() { got = append(got, e.Now()) })
	end := e.Run()
	if end != 3 {
		t.Fatalf("end time = %v, want 3", end)
	}
	want := []Time{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestSameTimeEventsRunInScheduleOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("order violated at %d: %v", i, got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var trace []string
	e.Schedule(1, func() {
		trace = append(trace, "a")
		e.Schedule(1, func() { trace = append(trace, "b") })
		e.Schedule(0, func() { trace = append(trace, "a0") })
	})
	e.Run()
	want := []string{"a", "a0", "b"}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
	if e.Now() != 2 {
		t.Fatalf("now = %v, want 2", e.Now())
	}
}

func TestNegativeDelayClampsToNow(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(2, func() {
		e.Schedule(-5, func() {
			fired = true
			if e.Now() != 2 {
				t.Errorf("negative-delay event at %v, want 2", e.Now())
			}
		})
	})
	e.Run()
	if !fired {
		t.Fatal("clamped event did not fire")
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	h := e.Schedule(1, func() { fired = true })
	if !h.Cancel() {
		t.Fatal("first cancel should report live event")
	}
	if h.Cancel() {
		t.Fatal("second cancel should report dead event")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelAfterFireIsNoop(t *testing.T) {
	e := NewEngine()
	h := e.Schedule(1, func() {})
	e.Run()
	if h.Cancel() {
		t.Fatal("cancel after fire should report dead event")
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, d := range []Time{1, 2, 3, 4} {
		d := d
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	end := e.RunUntil(2)
	if end != 2 {
		t.Fatalf("end = %v, want 2", end)
	}
	if len(fired) != 2 {
		t.Fatalf("fired = %v, want events at 1,2", fired)
	}
	// Resume to the end.
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("after resume fired = %v, want 4 events", fired)
	}
}

func TestStopHaltsRun(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Schedule(1, func() { count++; e.Stop() })
	e.Schedule(2, func() { count++ })
	e.Run()
	if count != 1 {
		t.Fatalf("count = %d, want 1 (Stop should halt)", count)
	}
	if !e.Stopped() {
		t.Fatal("Stopped() = false after Stop")
	}
}

func TestPendingEventsExcludesCancelled(t *testing.T) {
	e := NewEngine()
	e.Schedule(1, func() {})
	h := e.Schedule(2, func() {})
	h.Cancel()
	if got := e.PendingEvents(); got != 1 {
		t.Fatalf("PendingEvents = %d, want 1", got)
	}
}

// Property: for any set of delays, events fire in nondecreasing time order
// and the engine's final clock equals the maximum delay.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		e := NewEngine()
		var fired []Time
		for _, r := range raw {
			d := Time(r) / 1000
			e.Schedule(d, func() { fired = append(fired, e.Now()) })
		}
		end := e.Run()
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		var maxd Time
		for _, r := range raw {
			if d := Time(r) / 1000; d > maxd {
				maxd = d
			}
		}
		return end == maxd && len(fired) == len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaved schedule/cancel sequences never fire cancelled
// events and always fire live ones.
func TestPropertyCancelNeverFires(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		type rec struct {
			h     EventHandle
			fired *bool
		}
		var recs []rec
		var cancelled []int
		for i := 0; i < int(n); i++ {
			fired := new(bool)
			h := e.Schedule(Time(rng.Intn(100)), func() { *fired = true })
			recs = append(recs, rec{h, fired})
			if rng.Intn(3) == 0 {
				k := rng.Intn(len(recs))
				recs[k].h.Cancel()
				cancelled = append(cancelled, k)
			}
		}
		e.Run()
		isCancelled := map[int]bool{}
		for _, k := range cancelled {
			isCancelled[k] = true
		}
		for i, r := range recs {
			if isCancelled[i] && *r.fired {
				return false
			}
			if !isCancelled[i] && !*r.fired {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	runOnce := func() []int {
		e := NewEngine()
		var order []int
		for i := 0; i < 50; i++ {
			i := i
			e.Schedule(Time(i%7), func() { order = append(order, i) })
		}
		e.Run()
		return order
	}
	a, b := runOnce(), runOnce()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at %d: %v vs %v", i, a, b)
		}
	}
}
