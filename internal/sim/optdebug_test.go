package sim

import "testing"

// optTraceLog is a rollback-aware per-node execution log: entries append on
// job execution and truncate back on rollback via the saver mechanism
// (earlier entries are never mutated, so restoring the length restores the
// committed prefix).
type optTraceRec struct {
	at      Time
	payload uint64
}

type optTraceLog struct{ recs []optTraceRec }

func (l *optTraceLog) SaveState() any     { return len(l.recs) }
func (l *optTraceLog) RestoreState(s any) { l.recs = l.recs[:s.(int)] }

// TestOptimisticCommittedTrace checks a property stronger than final-state
// equality: the committed per-node execution sequence — every (time,
// payload) pair that survives rollback — matches the serial run event for
// event. A speculative execution that was undone and exactly repeated
// would pass the final-hash test; this catches ordering and duplicate
// delivery bugs directly.
func TestOptimisticCommittedTrace(t *testing.T) {
	const nNodes, budget = 8, 1500
	const nShards = 2

	runSerial := func() [][]optTraceRec {
		eng := NewEngine()
		nodes := newOptNodes(nNodes, budget)
		logs := make([]*optTraceLog, nNodes)
		for i, nd := range nodes {
			logs[i] = &optTraceLog{}
			ln := logs[i]
			nd.trace = func(at Time, p uint64) { ln.recs = append(ln.recs, optTraceRec{at, p}) }
			nd.eng = eng
			nd.post = func(src *Engine, dst int, at Time, fn func()) { eng.ScheduleAt(at, fn) }
		}
		kickOptNodes(nodes)
		eng.Run()
		out := make([][]optTraceRec, nNodes)
		for i, l := range logs {
			out[i] = l.recs
		}
		return out
	}

	runOpt := func() [][]optTraceRec {
		o := NewOptimisticShardSet(nShards, optModelLat, OptConfig{MaxDepth: 1})
		ss := o.ShardSet
		nodes := newOptNodes(nNodes, budget)
		logs := make([]*optTraceLog, nNodes)
		for i, nd := range nodes {
			logs[i] = &optTraceLog{}
			ln := logs[i]
			nd.trace = func(at Time, p uint64) { ln.recs = append(ln.recs, optTraceRec{at, p}) }
			nd.eng = ss.Engine(i % nShards)
			nd.post = func(src *Engine, dst int, at Time, fn func()) {
				ss.Post(src, ss.Engine(dst%nShards), at, fn)
			}
			o.Register(i%nShards, nd)
			o.Register(i%nShards, ln)
		}
		kickOptNodes(nodes)
		o.Run()
		out := make([][]optTraceRec, nNodes)
		for i, l := range logs {
			out[i] = l.recs
		}
		return out
	}

	want := runSerial()
	got := runOpt()
	for i := range want {
		n := len(want[i])
		if len(got[i]) < n {
			n = len(got[i])
		}
		diverged := false
		for k := 0; k < n; k++ {
			if want[i][k] != got[i][k] {
				t.Errorf("node %d: first divergence at index %d: got {at=%.17g payload=%d}, want {at=%.17g payload=%d}",
					i, k, float64(got[i][k].at), got[i][k].payload, float64(want[i][k].at), want[i][k].payload)
				diverged = true
				break
			}
		}
		if !diverged && len(want[i]) != len(got[i]) {
			t.Errorf("node %d: committed event counts differ: got %d, want %d (common prefix matches)",
				i, len(got[i]), len(want[i]))
		}
	}
}
