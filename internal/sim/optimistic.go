package sim

import (
	"fmt"
	"runtime"
	"sync"
)

// StateSaver snapshots and restores one piece of per-shard model state.
// An optimistic shard's registered savers are saved together with the
// engine calendar before a speculative window and restored on rollback.
// SaveState must return a self-contained value: later mutation of the
// live state must not alter it (deep-copy mutable structures).
type StateSaver interface {
	SaveState() any
	RestoreState(any)
}

// OptConfig tunes the optimistic (Time-Warp) coordinator.
type OptConfig struct {
	// MaxDepth bounds speculation: a shard may run up to MaxDepth quanta
	// past its conservative window end. 0 disables speculation entirely —
	// the set then runs the conservative coordinator's exact code path.
	MaxDepth int
	// Quantum is the virtual-time length of one speculation depth unit.
	// Defaults to the narrowest pair lookahead.
	Quantum Time
	// SnapEvery is the base snapshot interval in windows (default 1:
	// snapshot before every window). The adaptive policy stretches the
	// interval up to 8x on clean streaks and snaps back to the base after
	// a rollback.
	SnapEvery int
}

// OptStats summarises a Time-Warp run.
type OptStats struct {
	Windows          int64  // coordinator barriers
	SpecWindows      int64  // shard-windows that ran past their conservative end
	Snapshots        int64  // state snapshots taken
	Rollbacks        int64  // straggler-triggered restores
	CascadeRollbacks int64  // restores forced by an anti-message arriving late
	AntiMessages     int64  // sent messages annihilated
	DupSends         int64  // coast-forward re-sends suppressed as duplicates
	EventsExecuted   uint64 // events run, including re-execution after rollback
	EventsRolledBack uint64 // executed events whose effects were undone
	MailInjected     int64  // cross-shard messages delivered
	// SnapshotBytes estimates the state volume copied into snapshots
	// (calendar events plus saver states, at a fixed per-entry size) —
	// telemetry for the snapshot-interval policy, not an allocator
	// measurement.
	SnapshotBytes int64
	// FinalDepth is the highest per-shard AIMD speculation depth at the
	// moment Stats was taken — where the throttle settled.
	FinalDepth int
	GVT        Time // last computed global virtual time
	// Degraded reports that Run fell back to the conservative coordinator
	// (MaxDepth 0, or live processes — goroutine stacks cannot roll back).
	Degraded bool
}

// RollbackFrac returns the fraction of executed events that were later
// rolled back — the health metric the adaptive throttle is minimising.
func (s OptStats) RollbackFrac() float64 {
	if s.EventsExecuted == 0 {
		return 0
	}
	return float64(s.EventsRolledBack) / float64(s.EventsExecuted)
}

// optMsg is one cross-shard message under optimistic coordination. The
// same struct is shared by the sender's sent log (for anti-messages), the
// destination's input log (for re-injection after rollback), and the
// barrier's pending list, so annihilation is a single flag flip visible
// to all three.
type optMsg struct {
	item        mailItem
	src, dst    int
	handle      EventHandle // current calendar entry at dst; refreshed on re-injection
	injected    bool
	annihilated bool
}

// msgKey identifies a logical message by the canonical merge quad, which
// the engine already guarantees is globally unique. Re-execution after a
// rollback reproduces the quad exactly (mailSeq is restored with the
// snapshot), which is what makes coast-forward duplicate suppression a
// map lookup.
type msgKey struct {
	at       Time
	postTime Time
	srcShard int
	seq      uint64
}

// optSnapshot is one shard's saved state: the engine calendar (local
// events only — mail is re-injected from the input log, refreshing the
// anti-message handles) plus every registered saver's state.
type optSnapshot struct {
	at           Time
	seq, mailSeq uint64
	executed     uint64
	events       []event
	state        []any
	anchor       bool // the pristine pre-execution snapshot taken at Run entry
}

// optShard is the coordinator's per-shard bookkeeping.
type optShard struct {
	savers []StateSaver
	snaps  []*optSnapshot
	// adaptive throttle: depth quanta of allowed speculation, grown on
	// clean windows, halved on rollback.
	depth       int
	cleanStreak int
	// adaptive snapshot interval.
	sinceSnap    int
	snapInterval int
	consEnd      Time // this window's conservative end, for speculation stats
	// coastMax is the highest rollback threshold this shard has restored
	// under: live sends with postTime below it may still be awaiting
	// confirmation by coast-forward re-execution, so input changes below
	// it must rescan the sent log. -Infinity when the shard has never
	// rolled back (the scan is skipped entirely).
	coastMax Time
	// pending holds this barrier's staged inbound messages in canonical
	// order; inLog holds every injected message in injection order;
	// sentLog holds every outbound message in send order; liveSends
	// indexes non-annihilated sends for duplicate suppression.
	pending   []*optMsg
	inLog     []*optMsg
	sentLog   []*optMsg
	liveSends map[msgKey]*optMsg
}

// OptimisticShardSet coordinates shard engines with Time-Warp style
// speculation: a shard may execute events past its conservative lookahead
// window, snapshotting its calendar and registered StateSaver state at
// adaptive intervals. A straggler (cross-shard mail timestamped before the
// destination's clock, detected at the barrier) rolls the destination back
// to the latest snapshot strictly before the straggler, annihilates the
// mail it had sent from the undone span via anti-messages (cascading into
// further rollbacks when the destination already executed them), re-injects
// surviving input mail, and re-executes. Re-sends that coast-forward
// re-execution reproduces verbatim are suppressed as duplicates, so an
// annihilation threshold at the rollback target is safe. GVT — the minimum
// next-event time across shards at the barrier — drives fossil collection:
// snapshots, logs and send indexes strictly below the last snapshot below
// GVT are reclaimed, keeping the event arena and snapshot store bounded.
//
// The contract is the conservative set's bit-identity bar, with two extra
// model obligations: (1) event-driven state only — processes cannot roll
// back, so Run degrades to the conservative coordinator whenever any shard
// has a live process (or MaxDepth is 0), and Spawn panics mid-speculation;
// (2) all mutable model state must be registered through Register, event
// times of distinct events must be distinct across shards (tagged fan-outs
// to different shards may share a time), tagged mail must satisfy
// at >= postTime with postTime the posting shard's clock, and EventHandles
// must not be retained across barriers.
type OptimisticShardSet struct {
	*ShardSet
	cfg    OptConfig
	shards []optShard
	stats  OptStats
	// speculating is true inside runTimeWarp; Spawn consults it.
	speculating bool
}

// NewOptimisticShardSet creates n engines under one uniform lookahead with
// Time-Warp coordination.
func NewOptimisticShardSet(n int, lookahead Time, cfg OptConfig) *OptimisticShardSet {
	return newOptimistic(NewShardSet(n, lookahead), cfg)
}

// NewOptimisticLatencies creates engines coordinated by a per-shard-pair
// latency matrix (see NewShardSetLatencies) with Time-Warp coordination.
func NewOptimisticLatencies(lat [][]Time, cfg OptConfig) *OptimisticShardSet {
	return newOptimistic(NewShardSetLatencies(lat), cfg)
}

func newOptimistic(ss *ShardSet, cfg OptConfig) *OptimisticShardSet {
	if cfg.MaxDepth < 0 {
		panic("sim: optimistic MaxDepth must be non-negative")
	}
	if cfg.Quantum < 0 {
		panic("sim: optimistic Quantum must be non-negative")
	}
	if cfg.Quantum == 0 {
		cfg.Quantum = ss.minLat
	}
	if cfg.SnapEvery < 1 {
		cfg.SnapEvery = 1
	}
	o := &OptimisticShardSet{ShardSet: ss, cfg: cfg, shards: make([]optShard, len(ss.engines))}
	for i := range o.shards {
		sh := &o.shards[i]
		sh.depth = min(1, cfg.MaxDepth)
		sh.snapInterval = cfg.SnapEvery
		sh.liveSends = map[msgKey]*optMsg{}
	}
	ss.opt = o
	return o
}

// Register attaches a saver to shard i's snapshot set. Every piece of
// mutable model state the shard's events touch must be registered, or a
// rollback would resurrect the calendar against unrewound state.
func (o *OptimisticShardSet) Register(shard int, s StateSaver) {
	o.shards[shard].savers = append(o.shards[shard].savers, s)
}

// Stats returns a snapshot of the coordinator's counters. EventsExecuted
// counts every event run including re-execution (the engines' own counters
// are rewound on restore, so the rolled-back work is added back here).
func (o *OptimisticShardSet) Stats() OptStats {
	st := o.stats
	for _, e := range o.engines {
		st.EventsExecuted += e.executed
	}
	st.EventsExecuted += st.EventsRolledBack
	for i := range o.shards {
		if d := o.shards[i].depth; d > st.FinalDepth {
			st.FinalDepth = d
		}
	}
	return st
}

// Run drives the shards to completion, like ShardSet.Run. With MaxDepth 0
// or any live process it is exactly the conservative coordinator (the
// Degraded stat records the fallback); otherwise it runs Time-Warp.
func (o *OptimisticShardSet) Run() Time {
	active := 0
	for _, e := range o.engines {
		active += e.active
	}
	if o.cfg.MaxDepth == 0 || active > 0 {
		o.stats.Degraded = true
		return o.ShardSet.Run()
	}
	return o.runTimeWarp()
}

// resetSpec clears speculation state between Run segments: snapshots and
// logs from a previous segment reference a dead virtual-time span.
func (o *OptimisticShardSet) resetSpec() {
	for i := range o.shards {
		sh := &o.shards[i]
		sh.snaps = sh.snaps[:0]
		sh.pending = sh.pending[:0]
		sh.inLog = sh.inLog[:0]
		sh.sentLog = sh.sentLog[:0]
		clear(sh.liveSends)
		sh.sinceSnap = 0
		sh.coastMax = -Infinity
	}
}

func (o *OptimisticShardSet) runTimeWarp() Time {
	o.speculating = true
	defer func() { o.speculating = false }()
	o.resetSpec()
	for i := range o.shards {
		o.snapshot(i)
		o.shards[i].snaps[0].anchor = true
	}

	n := len(o.engines)
	inline := runtime.GOMAXPROCS(0) == 1
	var work []chan Time
	var wg sync.WaitGroup
	if n > 1 && !inline {
		work = make([]chan Time, n)
		for i := range work {
			work[i] = make(chan Time, 1)
			go func(e *Engine, ch chan Time) {
				for end := range ch {
					e.RunWindow(end)
					wg.Done()
				}
			}(o.engines[i], work[i])
		}
		defer func() {
			for _, ch := range work {
				close(ch)
			}
		}()
	}

	for {
		o.collectMail()
		o.repairStragglers()
		o.injectPending()

		reason := o.Interrupted()
		stopped := o.stopReq.Load()
		for _, e := range o.engines {
			if e.stopped {
				stopped = true
			}
		}
		if reason != "" || stopped {
			for _, e := range o.engines {
				if reason != "" && e.interrupted == "" {
					e.interrupted = reason
				}
				e.stopped = true
			}
			return o.Now()
		}

		idle := true
		for i, e := range o.engines {
			t := e.NextEventTime()
			o.next[i] = t
			if t < Infinity {
				idle = false
			}
		}
		if idle {
			// Time-Warp mode has no processes (checked at Run entry,
			// enforced by Spawn), so drained calendars mean completion.
			o.resetSpec()
			return o.Now()
		}

		o.fossilCollect()

		// Window ends: the conservative bound per shard, extended by the
		// shard's current speculation depth.
		runnable := 0
		last := -1
		for i := range o.engines {
			end := Infinity
			for j := range o.engines {
				if j == i || o.next[j] == Infinity {
					continue
				}
				if w := o.next[j] + o.lat[j][i]; w < end {
					end = w
				}
			}
			sh := &o.shards[i]
			sh.consEnd = end
			if end < Infinity && sh.depth > 0 {
				end += Time(sh.depth) * o.cfg.Quantum
			}
			o.ends[i] = end
			if o.next[i] < end {
				runnable++
				last = i
			}
		}
		o.stats.Windows++

		// Snapshot ahead of the window at the adaptive interval, so a
		// straggler landing in this window's span has a nearby restore
		// point.
		for i := range o.engines {
			if o.next[i] >= o.ends[i] {
				continue
			}
			sh := &o.shards[i]
			sh.sinceSnap++
			if sh.sinceSnap >= sh.snapInterval {
				o.snapshot(i)
			}
		}
		if o.winObs != nil {
			o.observeOptWindow(runnable)
		}

		if runnable == 1 {
			o.engines[last].RunWindow(o.ends[last])
		} else if inline {
			for i := range o.engines {
				if o.next[i] < o.ends[i] {
					o.engines[i].RunWindow(o.ends[i])
				}
			}
		} else {
			wg.Add(runnable)
			for i := range o.engines {
				if o.next[i] < o.ends[i] {
					work[i] <- o.ends[i]
				}
			}
			wg.Wait()
		}

		for i := range o.engines {
			sh := &o.shards[i]
			if o.next[i] < o.ends[i] && sh.consEnd < Infinity && o.engines[i].now >= sh.consEnd {
				o.stats.SpecWindows++
			}
		}
	}
}

// collectMail drains every outbox into per-destination pending lists,
// wrapping each item into an optMsg shared by the sender's sent log and —
// once injected — the destination's input log. Re-sends that reproduce a
// live earlier send verbatim (coast-forward after a partial rollback) are
// suppressed here.
func (o *OptimisticShardSet) collectMail() {
	for _, e := range o.engines {
		e.selfMailAt = Infinity
		e.outMailAt = Infinity
	}
	for s, e := range o.engines {
		src := &o.shards[s]
		for d := range o.engines {
			box := e.outbox[d]
			if len(box) == 0 {
				continue
			}
			for i := range box {
				it := box[i]
				box[i].fn, box[i].c = nil, nil
				k := msgKey{it.at, it.postTime, it.srcShard, it.seq}
				if prev, ok := src.liveSends[k]; ok && !prev.annihilated {
					// Coast-forward duplicate: the original survived the
					// sender's rollback and is already at (or headed to)
					// the destination.
					o.stats.DupSends++
					continue
				}
				m := &optMsg{item: it, src: s, dst: d}
				src.liveSends[k] = m
				src.sentLog = append(src.sentLog, m)
				o.shards[d].pending = append(o.shards[d].pending, m)
			}
			e.outbox[d] = box[:0]
		}
	}
	for i := range o.shards {
		if p := o.shards[i].pending; len(p) > 1 {
			sortOptMsgs(p)
		}
	}
}

// repairStragglers applies the repair operation for every shard receiving
// mail this barrier, at the earliest arriving timestamp: a rollback when
// the shard's clock has passed it, and in any case an invalidation of the
// shard's speculative output history from that instant on.
func (o *OptimisticShardSet) repairStragglers() {
	for d := range o.shards {
		t := Infinity
		for _, m := range o.shards[d].pending {
			if !m.annihilated && m.item.at < t {
				t = m.item.at
			}
		}
		if t < Infinity {
			o.repair(d, t)
		}
	}
}

// repair records that shard d's input set changes at virtual time t and
// processes the consequences to a fixpoint. If d's clock has reached t,
// the change is a straggler: d restores the latest snapshot strictly
// before t. In every case, d's history from t onward is being rewritten,
// so its live sends with postTime >= t are annihilated via anti-messages
// — they belong to an execution that will not be reproduced. Live sends
// with postTime < t survive: the coast-forward re-execution up to t sees
// unchanged inputs, reproduces them verbatim, and collectMail suppresses
// the re-sends as duplicates. Every annihilated message is itself an
// input change at its destination, cascading through the same operation
// (a further rollback when the destination had executed it), which is
// what keeps coast-forward sound when inputs change below an earlier
// rollback's target. Thresholds chain upward from arriving-mail times,
// all > GVT, so annihilation never reaches below a fossil horizon.
func (o *OptimisticShardSet) repair(d int, t Time) {
	type req struct {
		shard int
		at    Time
	}
	queue := []req{{d, t}}
	for len(queue) > 0 {
		r := queue[0]
		queue = queue[1:]
		e := o.engines[r.shard]
		sh := &o.shards[r.shard]
		restored := false
		if e.now >= r.at {
			idx := -1
			for i := len(sh.snaps) - 1; i >= 0; i-- {
				if sh.snaps[i].at < r.at {
					idx = i
					break
				}
			}
			if idx < 0 {
				// The only legitimate miss is a target at the pristine Run
				// entry time: restoring the anchor undoes nothing, so "at
				// or before" is as good as "strictly before" there.
				if len(sh.snaps) > 0 && sh.snaps[0].anchor && sh.snaps[0].at <= r.at {
					idx = 0
				} else {
					panic(fmt.Sprintf("sim: optimistic rollback of shard %d to %v has no snapshot (fossil horizon bug)",
						r.shard, r.at))
				}
			}
			snap := sh.snaps[idx]
			o.stats.Rollbacks++
			o.stats.EventsRolledBack += e.executed - snap.executed
			e.restoreSnapshot(snap)
			for si, sv := range sh.savers {
				sv.RestoreState(snap.state[si])
			}
			sh.snaps = sh.snaps[:idx+1]
			sh.depth /= 2
			sh.cleanStreak = 0
			sh.snapInterval = o.cfg.SnapEvery
			sh.sinceSnap = 0
			restored = true
			// Sends kept live below r.at are now ahead of the rewound
			// clock, awaiting confirmation by re-execution; input changes
			// below r.at must re-examine them.
			if r.at > sh.coastMax {
				sh.coastMax = r.at
			}
		}

		// Anti-messages: annihilate live sends from the rewritten span.
		// Without a restore, such sends exist only while coast-forwarding
		// (postTime ahead of the clock), so the coastMax guard skips the
		// scan in the steady state.
		if restored || sh.coastMax >= r.at {
			for _, m := range sh.sentLog {
				if m.annihilated || m.item.postTime < r.at {
					continue
				}
				m.annihilated = true
				delete(sh.liveSends, msgKey{m.item.at, m.item.postTime, m.item.srcShard, m.item.seq})
				o.stats.AntiMessages++
				if !m.injected {
					continue // still pending this barrier; injectPending skips it
				}
				if !m.handle.Cancel() {
					// Already executed at the destination: the cascaded
					// repair below will roll it back.
					o.stats.CascadeRollbacks++
				}
				// Whether the copy was cancelled in the destination's
				// calendar or already executed, the destination's input
				// set changed at m.item.at.
				queue = append(queue, req{m.dst, m.item.at})
			}
		}

		if restored {
			// Re-inject surviving input mail from the undone span with
			// fresh handles (snapshots exclude mail events precisely so
			// this is the single source of truth for in-flight messages).
			for _, m := range sh.inLog {
				if m.annihilated || m.item.at <= e.now {
					continue
				}
				m.handle = e.injectExternal(&m.item)
			}
		}
	}
}

// injectPending delivers this barrier's surviving staged mail in canonical
// order, recording each message in the destination's input log.
func (o *OptimisticShardSet) injectPending() {
	for d := range o.shards {
		sh := &o.shards[d]
		e := o.engines[d]
		for _, m := range sh.pending {
			if m.annihilated {
				continue
			}
			m.handle = e.injectExternal(&m.item)
			m.injected = true
			sh.inLog = append(sh.inLog, m)
			o.stats.MailInjected++
		}
		sh.pending = sh.pending[:0]
	}
}

// Per-entry size estimates behind OptStats.SnapshotBytes: one saved
// calendar event (the event struct) and one opaque saver state (interface
// header plus a small boxed value). Fixed constants keep the counter
// deterministic across architectures.
const (
	snapEventBytes = 64
	snapStateBytes = 32
)

// snapshot saves shard i's engine calendar and registered state.
func (o *OptimisticShardSet) snapshot(i int) {
	e := o.engines[i]
	sh := &o.shards[i]
	snap := &optSnapshot{at: e.now, seq: e.seq, mailSeq: e.mailSeq, executed: e.executed}
	for _, ev := range e.queue.evs {
		if ev.cancelled || ev.external {
			continue
		}
		snap.events = append(snap.events, *ev)
	}
	for _, sv := range sh.savers {
		snap.state = append(snap.state, sv.SaveState())
	}
	sh.snaps = append(sh.snaps, snap)
	sh.sinceSnap = 0
	o.stats.Snapshots++
	o.stats.SnapshotBytes += int64(len(snap.events))*snapEventBytes +
		int64(len(snap.state))*snapStateBytes
	// A clean stretch of windows earns back speculation depth and a
	// longer snapshot interval.
	sh.cleanStreak++
	if sh.cleanStreak >= 4 {
		sh.cleanStreak = 0
		if sh.depth < o.cfg.MaxDepth {
			sh.depth++
		}
		if sh.snapInterval < 8*o.cfg.SnapEvery {
			sh.snapInterval *= 2
		}
	}
}

// fossilCollect computes GVT (the minimum next-event time across shards at
// this barrier — all mail is injected, so calendars carry every in-flight
// message) and reclaims history no rollback can reach: every rollback
// target is > GVT, so the latest snapshot strictly below GVT anchors each
// shard and everything older is garbage.
func (o *OptimisticShardSet) fossilCollect() {
	gvt := Infinity
	for i := range o.engines {
		if o.next[i] < gvt {
			gvt = o.next[i]
		}
	}
	o.stats.GVT = gvt
	for i := range o.shards {
		sh := &o.shards[i]
		keep := -1
		for k := len(sh.snaps) - 1; k >= 0; k-- {
			if sh.snaps[k].at < gvt {
				keep = k
				break
			}
		}
		if keep <= 0 {
			continue
		}
		horizon := sh.snaps[keep].at
		sh.snaps = append(sh.snaps[:0], sh.snaps[keep:]...)

		live := sh.inLog[:0]
		for _, m := range sh.inLog {
			if !m.annihilated && m.item.at > horizon {
				live = append(live, m)
			}
		}
		clearMsgTail(sh.inLog, len(live))
		sh.inLog = live

		sent := sh.sentLog[:0]
		for _, m := range sh.sentLog {
			if m.annihilated {
				// Already removed from liveSends at annihilation; the quad
				// may since have been re-sent, so deleting by key here
				// would clobber the live successor's index entry.
				continue
			}
			if m.item.postTime <= horizon {
				delete(sh.liveSends, msgKey{m.item.at, m.item.postTime, m.item.srcShard, m.item.seq})
				continue
			}
			sent = append(sent, m)
		}
		clearMsgTail(sh.sentLog, len(sent))
		sh.sentLog = sent
	}
}

// clearMsgTail nils the compacted-away tail of a message log so the
// reusable slice does not pin dead messages (and their closures).
func clearMsgTail(s []*optMsg, from int) {
	for i := from; i < len(s); i++ {
		s[i] = nil
	}
}

// sortOptMsgs orders a pending batch by the canonical mail order, the
// pointer-slice analogue of sortMail.
func sortOptMsgs(ms []*optMsg) {
	n := len(ms)
	for i := n/2 - 1; i >= 0; i-- {
		siftDownOptMsgs(ms, i, n)
	}
	for i := n - 1; i > 0; i-- {
		ms[0], ms[i] = ms[i], ms[0]
		siftDownOptMsgs(ms, 0, i)
	}
}

func siftDownOptMsgs(ms []*optMsg, i, n int) {
	for {
		c := 2*i + 1
		if c >= n {
			return
		}
		if c+1 < n && mailLess(&ms[c].item, &ms[c+1].item) {
			c++
		}
		if !mailLess(&ms[i].item, &ms[c].item) {
			return
		}
		ms[i], ms[c] = ms[c], ms[i]
		i = c
	}
}

// injectExternal schedules one cross-shard mail item under optimistic
// coordination, marking the calendar entry external (excluded from
// snapshots) and returning the anti-message handle.
func (e *Engine) injectExternal(it *mailItem) EventHandle {
	if it.at < e.now {
		panic(fmt.Sprintf("sim: optimistic mail at %v is before now %v", it.at, e.now))
	}
	ev := e.getEvent(it.at)
	ev.fn = it.fn
	ev.c = it.c
	ev.external = true
	e.queue.push(ev)
	return EventHandle{ev: ev, gen: ev.gen}
}

// restoreSnapshot rewinds the engine to a snapshot taken by the optimistic
// coordinator: the current calendar is recycled (bumping generations, so
// stale handles go inert), the snapshot's local events are reissued, and
// the clock and counters rewind. Mail events are not part of snapshots;
// the coordinator re-injects them from its input log.
func (e *Engine) restoreSnapshot(s *optSnapshot) {
	for _, ev := range e.queue.evs {
		ev.index = -1
		e.putEvent(ev)
	}
	e.queue.evs = e.queue.evs[:0]
	for i := range s.events {
		sv := &s.events[i]
		var ev *event
		if n := len(e.free); n > 0 {
			ev = e.free[n-1]
			e.free[n-1] = nil
			e.free = e.free[:n-1]
		} else {
			ev = &event{}
		}
		gen := ev.gen
		*ev = *sv
		ev.gen = gen // the slot's generation, not the snapshot's stale one
		ev.cancelled = false
		ev.external = false
		e.queue.evs = append(e.queue.evs, ev)
	}
	e.queue.reinit()
	e.now = s.at
	e.seq = s.seq
	e.mailSeq = s.mailSeq
	e.executed = s.executed
	e.selfMailAt = Infinity
	e.outMailAt = Infinity
}
