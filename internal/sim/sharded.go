package sim

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// mailItem is one staged cross-shard event: a callback to run at an
// absolute virtual time on another shard's engine. Items are merged at
// every barrier in the canonical (at, postTime, srcShard, seq) order, so
// the destination engine sees the same tie-break order regardless of how
// ranks are partitioned into shards.
type mailItem struct {
	at       Time
	postTime Time
	srcShard int
	seq      uint64
	dst      *Engine
	fn       func()
}

// ShardSet is a conservative parallel discrete-event coordinator: it owns
// S engines (shards), each with its own calendar and process set, and
// advances them in lookahead windows. The lookahead is the minimum virtual
// latency of any cross-shard interaction (for the simulated Sunway, the
// interconnect's first-byte time): an event executed at time t can only
// affect another shard at t+lookahead or later, so every shard may safely
// run ahead to the earliest event of any other shard plus the lookahead.
// Cross-shard effects are staged in per-shard outboxes and exchanged at a
// deterministic barrier between windows.
//
// The contract is bit-identical results: for a model whose only cross-
// shard channel is Post/PostTagged with delivery delays of at least the
// lookahead, a ShardSet run produces the same virtual timestamps, the
// same event outcomes, and the same final state as the single-engine run,
// for every shard count.
type ShardSet struct {
	engines   []*Engine
	lookahead Time
	stopReq   atomic.Bool

	// scratch for Run.
	mail []mailItem
	next []Time
	ends []Time
}

// NewShardSet creates n engines coordinated with the given lookahead.
func NewShardSet(n int, lookahead Time) *ShardSet {
	if n < 1 {
		panic("sim: shard set needs at least one engine")
	}
	if lookahead <= 0 {
		panic("sim: shard lookahead must be positive")
	}
	ss := &ShardSet{lookahead: lookahead,
		next: make([]Time, n), ends: make([]Time, n)}
	for i := 0; i < n; i++ {
		e := NewEngine()
		e.shardSet = ss
		e.shardID = i
		ss.engines = append(ss.engines, e)
	}
	return ss
}

// NumShards returns the number of engines.
func (ss *ShardSet) NumShards() int { return len(ss.engines) }

// Engine returns shard i's engine.
func (ss *ShardSet) Engine(i int) *Engine { return ss.engines[i] }

// Lookahead returns the window width.
func (ss *ShardSet) Lookahead() Time { return ss.lookahead }

// Post schedules fn to run at absolute time at on dst. With dst the
// posting engine it is a plain ScheduleAt; otherwise the event is staged
// in src's outbox and injected at the next barrier, which requires
// at >= src.Now() + Lookahead(). Must be called from src's executing
// event (or before Run starts).
func (ss *ShardSet) Post(src, dst *Engine, at Time, fn func()) {
	if src == dst {
		src.ScheduleAt(at, fn)
		return
	}
	src.outbox = append(src.outbox, mailItem{
		at: at, postTime: src.now, srcShard: src.shardID, seq: src.mailSeq,
		dst: dst, fn: fn})
	src.mailSeq++
}

// PostTagged stages a globally-ordered cross-shard event: items with the
// same (at, postTime) are ordered by tag alone and sort ahead of ordinary
// mail, independent of which shard happened to post them. Collectives use
// it so the completion events they fan out to every rank are injected in
// rank order no matter which contributor arrived last. Unlike Post it
// always goes through the barrier, even to the posting shard itself.
func (ss *ShardSet) PostTagged(src, dst *Engine, at, postTime Time, tag uint64, fn func()) {
	src.outbox = append(src.outbox, mailItem{
		at: at, postTime: postTime, srcShard: -1, seq: tag, dst: dst, fn: fn})
	if dst == src && at < src.selfMailAt {
		// The window must not run past the undelivered self-send.
		src.selfMailAt = at
	}
}

// RequestStop asks the coordinator to stop every shard at the next
// barrier. Safe to call from any shard's goroutine (it is how a shard
// propagates Engine.Stop or Interrupt to its siblings).
func (ss *ShardSet) RequestStop() { ss.stopReq.Store(true) }

// Interrupted returns the first interrupt reason recorded on any shard,
// in shard order, or "".
func (ss *ShardSet) Interrupted() string {
	for _, e := range ss.engines {
		if e.interrupted != "" {
			return e.interrupted
		}
	}
	return ""
}

// Now returns the latest virtual time any shard has reached.
func (ss *ShardSet) Now() Time {
	max := Time(0)
	for _, e := range ss.engines {
		if e.now > max {
			max = e.now
		}
	}
	return max
}

// AlignNow advances every shard's clock to the global maximum and returns
// it. Called between run segments (checkpoint intervals), where the
// single-engine simulation carries one clock across segments: newly
// spawned processes must start at the same instant on every shard. Safe
// once the calendars are drained — pop skips cancelled leftovers before
// the before-now check.
func (ss *ShardSet) AlignNow() Time {
	max := ss.Now()
	for _, e := range ss.engines {
		if e.now < max {
			e.now = max
		}
	}
	return max
}

// deliverMail merges every outbox in canonical order and injects the
// items into their destination calendars. The destination assigns its
// event sequence numbers in merge order, so same-time ties at a receiver
// resolve identically for every shard count.
func (ss *ShardSet) deliverMail() {
	ss.mail = ss.mail[:0]
	for _, e := range ss.engines {
		ss.mail = append(ss.mail, e.outbox...)
		e.outbox = e.outbox[:0]
		e.selfMailAt = Infinity
	}
	if len(ss.mail) == 0 {
		return
	}
	sort.Slice(ss.mail, func(i, j int) bool {
		a, b := ss.mail[i], ss.mail[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.postTime != b.postTime {
			return a.postTime < b.postTime
		}
		if a.srcShard != b.srcShard {
			return a.srcShard < b.srcShard
		}
		return a.seq < b.seq
	})
	for _, m := range ss.mail {
		m.dst.ScheduleAt(m.at, m.fn)
	}
}

// Run drives every shard until all calendars drain, a stop or interrupt
// is requested, or the model deadlocks (panic, as in Engine.RunUntil).
// It returns the latest virtual time reached.
//
// Each iteration delivers staged mail, computes per-shard window ends —
// shard i may run to min over other shards j of (next_j + lookahead), so
// a shard that is alone in a stretch of virtual time crosses it in one
// window — and executes the eligible shards concurrently, one goroutine
// per shard (inline when only one shard has work).
func (ss *ShardSet) Run() Time {
	for {
		ss.deliverMail()

		// Propagate stops and interrupts recorded during the last window.
		reason := ss.Interrupted()
		stopped := ss.stopReq.Load()
		for _, e := range ss.engines {
			if e.stopped {
				stopped = true
			}
		}
		if reason != "" || stopped {
			for _, e := range ss.engines {
				if reason != "" && e.interrupted == "" {
					e.interrupted = reason
				}
				e.stopped = true
			}
			return ss.Now()
		}

		min1, min2 := Infinity, Infinity
		argmin := -1
		for i, e := range ss.engines {
			t := e.NextEventTime()
			ss.next[i] = t
			if t < min1 {
				min2 = min1
				min1 = t
				argmin = i
			} else if t < min2 {
				min2 = t
			}
		}
		if min1 == Infinity {
			active := 0
			for _, e := range ss.engines {
				active += e.active
			}
			if active > 0 {
				var rosters []string
				for i, e := range ss.engines {
					if e.active > 0 {
						rosters = append(rosters, e.blockedRoster())
					}
					_ = i
				}
				panic("sim: deadlock: " + strings.Join(rosters, ", "))
			}
			return ss.Now()
		}

		runnable := 0
		last := -1
		for i := range ss.engines {
			minOther := min1
			if i == argmin {
				minOther = min2
			}
			ss.ends[i] = Infinity
			if minOther < Infinity {
				ss.ends[i] = minOther + ss.lookahead
			}
			if ss.next[i] < ss.ends[i] {
				runnable++
				last = i
			}
		}
		if runnable == 1 {
			// Lone-runner fast path: no other shard can be affected before
			// this shard's window end, so run it inline on this goroutine.
			ss.engines[last].RunWindow(ss.ends[last])
			continue
		}
		var wg sync.WaitGroup
		for i, e := range ss.engines {
			if ss.next[i] >= ss.ends[i] {
				continue
			}
			wg.Add(1)
			go func(e *Engine, end Time) {
				defer wg.Done()
				e.RunWindow(end)
			}(e, ss.ends[i])
		}
		wg.Wait()
	}
}
