package sim

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
)

// mailItem is one staged cross-shard event: a callback (a closure or an
// allocation-free Caller) to run at an absolute virtual time on another
// shard's engine. Each destination's items are merged at every barrier in
// the canonical (at, postTime, srcShard, seq) order, so the destination
// engine sees the same tie-break order regardless of how ranks are
// partitioned into shards.
type mailItem struct {
	at       Time
	postTime Time
	srcShard int
	seq      uint64
	fn       func()
	c        Caller
}

// mailLess is the canonical merge order.
func mailLess(a, b *mailItem) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.postTime != b.postTime {
		return a.postTime < b.postTime
	}
	if a.srcShard != b.srcShard {
		return a.srcShard < b.srcShard
	}
	return a.seq < b.seq
}

// sortMail orders a batch by mailLess with an in-place heapsort: zero
// allocations (the generic sort packages escape a closure or an interface
// per call), deterministic because the key is a total order — no two items
// share (at, postTime, srcShard, seq).
func sortMail(items []mailItem) {
	n := len(items)
	for i := n/2 - 1; i >= 0; i-- {
		siftDownMail(items, i, n)
	}
	for i := n - 1; i > 0; i-- {
		items[0], items[i] = items[i], items[0]
		siftDownMail(items, 0, i)
	}
}

// siftDownMail maintains a max-heap on mailLess over items[i:n).
func siftDownMail(items []mailItem, i, n int) {
	for {
		c := 2*i + 1
		if c >= n {
			return
		}
		if c+1 < n && mailLess(&items[c], &items[c+1]) {
			c++
		}
		if !mailLess(&items[i], &items[c]) {
			return
		}
		items[i], items[c] = items[c], items[i]
		i = c
	}
}

// ShardSet is a conservative parallel discrete-event coordinator: it owns
// S engines (shards), each with its own calendar and process set, and
// advances them in lookahead windows. The lookahead is a per-shard-pair
// latency matrix: lat[j][i] is the minimum virtual latency of any
// interaction from shard j to shard i (for the simulated Sunway, the
// interconnect's first-byte time between the closest rank pair crossing
// that shard boundary). An event executed on shard j at time t can only
// affect shard i at t+lat[j][i] or later, so shard i may safely run ahead
// to min over j of (next_j + lat[j][i]) — throttling only on neighbours
// that can actually reach it inside the window, not on a single global
// minimum. Cross-shard effects are staged in per-destination outboxes and
// exchanged at a deterministic barrier between windows.
//
// The contract is bit-identical results: for a model whose only cross-
// shard channels are Post/PostCall/PostTagged with delivery delays of at
// least the pair's lookahead, a ShardSet run produces the same virtual
// timestamps, the same event outcomes, and the same final state as the
// single-engine run, for every shard count.
type ShardSet struct {
	engines []*Engine
	// lat[i][j] is the minimum latency of an i -> j interaction. The
	// diagonal is unused (same-shard effects are ordinary calendar
	// events). Entries may be Infinity (that pair never interacts).
	lat     [][]Time
	minLat  Time
	stopReq atomic.Bool
	// opt is non-nil when this set is the conservative substrate of an
	// OptimisticShardSet; Spawn consults it to reject processes while the
	// coordinator is speculating (process stacks cannot roll back).
	opt *OptimisticShardSet

	// inbox[d] is shard d's reusable merge buffer at the barrier.
	inbox [][]mailItem
	next  []Time
	ends  []Time

	// winObs, when set, receives one WindowStats per coordinator barrier
	// (see SetWindowObserver); windows and mailDelivered feed it.
	winObs        WindowObserver
	windows       int64
	mailDelivered int64
}

// NewShardSet creates n engines coordinated with one uniform lookahead for
// every shard pair — the conservative special case of the latency matrix.
func NewShardSet(n int, lookahead Time) *ShardSet {
	if n < 1 {
		panic("sim: shard set needs at least one engine")
	}
	if lookahead <= 0 {
		panic("sim: shard lookahead must be positive")
	}
	lat := make([][]Time, n)
	for i := range lat {
		lat[i] = make([]Time, n)
		for j := range lat[i] {
			lat[i][j] = lookahead
		}
	}
	return NewShardSetLatencies(lat)
}

// NewShardSetLatencies creates len(lat) engines coordinated by a
// per-shard-pair latency matrix: lat[i][j] is the minimum virtual latency
// of any interaction from shard i to shard j. The matrix must be square
// and every off-diagonal entry positive (a zero or negative pair lookahead
// admits no window and would livelock the coordinator); Infinity marks a
// pair that never interacts. The diagonal is ignored.
func NewShardSetLatencies(lat [][]Time) *ShardSet {
	n := len(lat)
	if n < 1 {
		panic("sim: shard set needs at least one engine")
	}
	min := Infinity
	own := make([][]Time, n)
	for i, row := range lat {
		if len(row) != n {
			panic(fmt.Sprintf("sim: latency matrix row %d has %d entries, want %d", i, len(row), n))
		}
		own[i] = make([]Time, n)
		copy(own[i], row)
		for j, l := range row {
			if i == j {
				continue
			}
			if l <= 0 {
				panic(fmt.Sprintf("sim: non-positive lookahead %v for shard pair (%d,%d)", l, i, j))
			}
			if l < min {
				min = l
			}
		}
	}
	ss := &ShardSet{lat: own, minLat: min,
		inbox: make([][]mailItem, n),
		next:  make([]Time, n), ends: make([]Time, n)}
	for i := 0; i < n; i++ {
		e := NewEngine()
		e.shardSet = ss
		e.shardID = i
		e.outbox = make([][]mailItem, n)
		ss.engines = append(ss.engines, e)
	}
	return ss
}

// NumShards returns the number of engines.
func (ss *ShardSet) NumShards() int { return len(ss.engines) }

// Engine returns shard i's engine.
func (ss *ShardSet) Engine(i int) *Engine { return ss.engines[i] }

// Lookahead returns the narrowest pair lookahead — the uniform window
// width a matrix-free coordinator would have used.
func (ss *ShardSet) Lookahead() Time { return ss.minLat }

// PairLookahead returns the minimum latency of an i -> j interaction.
func (ss *ShardSet) PairLookahead(i, j int) Time { return ss.lat[i][j] }

// Post schedules fn to run at absolute time at on dst. With dst the
// posting engine it is a plain ScheduleAt; otherwise the event is staged
// in src's per-destination outbox and injected at the next barrier, which
// requires at >= src.Now() + PairLookahead(src, dst). Must be called from
// src's executing event (or before Run starts).
func (ss *ShardSet) Post(src, dst *Engine, at Time, fn func()) {
	if src == dst {
		src.ScheduleAt(at, fn)
		return
	}
	ss.checkMailTime(src, dst, at)
	src.outbox[dst.shardID] = append(src.outbox[dst.shardID], mailItem{
		at: at, postTime: src.now, srcShard: src.shardID, seq: src.mailSeq, fn: fn})
	src.mailSeq++
	ss.capOutbound(src, dst.shardID, at)
}

// PostCall is Post with an allocation-free Caller in place of a closure —
// the batched-mail fast path of the simulated MPI library.
func (ss *ShardSet) PostCall(src, dst *Engine, at Time, c Caller) {
	if src == dst {
		src.CallAt(at, c)
		return
	}
	ss.checkMailTime(src, dst, at)
	src.outbox[dst.shardID] = append(src.outbox[dst.shardID], mailItem{
		at: at, postTime: src.now, srcShard: src.shardID, seq: src.mailSeq, c: c})
	src.mailSeq++
	ss.capOutbound(src, dst.shardID, at)
}

// capOutbound shrinks the source's running window so it cannot outrun a
// reply to mail it just posted: the destination may act at the mail's time
// and affect the source lat[dst][src] later. Without the cap a wide window
// (an idle destination does not constrain the end computation) could run
// past that reply, breaking causality at the next injection. Latency
// matrices are assumed to satisfy the triangle inequality, as the physical
// interconnect model's do, so capping the poster alone also protects third
// shards. A speculating optimistic coordinator skips the cap: late replies
// there are stragglers, repaired by rollback — that freedom to overrun is
// exactly what it speculates on.
func (ss *ShardSet) capOutbound(src *Engine, dstID int, at Time) {
	if ss.opt != nil && ss.opt.speculating {
		return
	}
	if w := at + ss.lat[dstID][src.shardID]; w < src.outMailAt {
		src.outMailAt = w
	}
}

// checkMailTime enforces the conservative contract at the source: mail
// that could arrive inside the current window would already have been
// missed by the destination's window end.
func (ss *ShardSet) checkMailTime(src, dst *Engine, at Time) {
	if la := ss.lat[src.shardID][dst.shardID]; at < src.now+la {
		panic(fmt.Sprintf("sim: cross-shard mail at %v from shard %d (now %v) violates the pair lookahead %v to shard %d",
			at, src.shardID, src.now, la, dst.shardID))
	}
}

// PostTagged stages a globally-ordered cross-shard event: items with the
// same (at, postTime) are ordered by tag alone and sort ahead of ordinary
// mail, independent of which shard happened to post them. Collectives use
// it so the completion events they fan out to every rank are injected in
// rank order no matter which contributor arrived last. Unlike Post it
// always goes through the barrier, even to the posting shard itself.
func (ss *ShardSet) PostTagged(src, dst *Engine, at, postTime Time, tag uint64, c Caller) {
	src.outbox[dst.shardID] = append(src.outbox[dst.shardID], mailItem{
		at: at, postTime: postTime, srcShard: -1, seq: tag, c: c})
	if dst == src {
		if at < src.selfMailAt {
			// The window must not run past the undelivered self-send.
			src.selfMailAt = at
		}
		return
	}
	ss.capOutbound(src, dst.shardID, at)
}

// RequestStop asks the coordinator to stop every shard at the next
// barrier. Safe to call from any shard's goroutine (it is how a shard
// propagates Engine.Stop or Interrupt to its siblings).
func (ss *ShardSet) RequestStop() { ss.stopReq.Store(true) }

// Interrupted returns the first interrupt reason recorded on any shard,
// in shard order, or "".
func (ss *ShardSet) Interrupted() string {
	for _, e := range ss.engines {
		if e.interrupted != "" {
			return e.interrupted
		}
	}
	return ""
}

// Now returns the latest virtual time any shard has reached.
func (ss *ShardSet) Now() Time {
	max := Time(0)
	for _, e := range ss.engines {
		if e.now > max {
			max = e.now
		}
	}
	return max
}

// AlignNow advances every shard's clock to the global maximum and returns
// it. Called between run segments (checkpoint intervals), where the
// single-engine simulation carries one clock across segments: newly
// spawned processes must start at the same instant on every shard. Safe
// once the calendars are drained — pop skips cancelled leftovers before
// the before-now check.
func (ss *ShardSet) AlignNow() Time {
	max := ss.Now()
	for _, e := range ss.engines {
		if e.now < max {
			e.now = max
		}
	}
	return max
}

// Flush merges every outbox in canonical per-destination order and
// injects the items into their destination calendars: one sorted batch
// append per destination instead of a per-message post. The destination
// assigns its event sequence numbers in merge order, so same-time ties at
// a receiver resolve identically for every shard count. Run performs the
// same exchange at every barrier; Flush is exported for staging mail
// before Run starts (setup phases, measurements).
func (ss *ShardSet) Flush() {
	for _, e := range ss.engines {
		e.selfMailAt = Infinity
		e.outMailAt = Infinity
	}
	for d, de := range ss.engines {
		batch := ss.inbox[d][:0]
		for _, e := range ss.engines {
			batch = append(batch, e.outbox[d]...)
			e.outbox[d] = e.outbox[d][:0]
		}
		ss.inbox[d] = batch
		if len(batch) == 0 {
			continue
		}
		if len(batch) > 1 {
			sortMail(batch)
		}
		ss.mailDelivered += int64(len(batch))
		de.injectMail(batch)
		// Drop the callback references so the reusable buffer does not
		// pin closures or envelopes until the next barrier overwrites it.
		for i := range batch {
			batch[i].fn, batch[i].c = nil, nil
		}
	}
}

// Run drives every shard until all calendars drain, a stop or interrupt
// is requested, or the model deadlocks (panic, as in Engine.RunUntil).
// It returns the latest virtual time reached.
//
// Each iteration delivers staged mail, computes per-shard window ends —
// shard i may run to min over other shards j of (next_j + lat[j][i]), so
// a shard only throttles on neighbours that can reach it, and a shard
// that is alone in a stretch of virtual time crosses it in one window —
// and executes the eligible shards concurrently. The workers are
// persistent for the duration of Run and park on their work channel
// between windows, so a window costs two channel operations per shard
// rather than a goroutine spawn.
func (ss *ShardSet) Run() Time {
	n := len(ss.engines)
	// With a single OS-schedulable thread, fanning a window out to worker
	// goroutines only buys context switches: run every window's shards
	// inline instead. Results are identical either way — shards within a
	// window are independent by construction — so parallel dispatch is
	// purely a wall-clock choice.
	inline := runtime.GOMAXPROCS(0) == 1
	var work []chan Time
	var wg sync.WaitGroup
	if n > 1 && !inline {
		work = make([]chan Time, n)
		for i := range work {
			work[i] = make(chan Time, 1)
			go func(e *Engine, ch chan Time) {
				for end := range ch {
					e.RunWindow(end)
					wg.Done()
				}
			}(ss.engines[i], work[i])
		}
		defer func() {
			for _, ch := range work {
				close(ch)
			}
		}()
	}
	for {
		ss.Flush()

		// Propagate stops and interrupts recorded during the last window.
		reason := ss.Interrupted()
		stopped := ss.stopReq.Load()
		for _, e := range ss.engines {
			if e.stopped {
				stopped = true
			}
		}
		if reason != "" || stopped {
			for _, e := range ss.engines {
				if reason != "" && e.interrupted == "" {
					e.interrupted = reason
				}
				e.stopped = true
			}
			return ss.Now()
		}

		idle := true
		for i, e := range ss.engines {
			t := e.NextEventTime()
			ss.next[i] = t
			if t < Infinity {
				idle = false
			}
		}
		if idle {
			active := 0
			for _, e := range ss.engines {
				active += e.active
			}
			if active > 0 {
				var rosters []string
				for _, e := range ss.engines {
					if e.active > 0 {
						rosters = append(rosters, e.blockedRoster())
					}
				}
				panic("sim: deadlock: " + strings.Join(rosters, ", "))
			}
			return ss.Now()
		}

		// The shard holding the globally earliest event is always
		// runnable (its window end exceeds its next event by at least the
		// smallest positive pair lookahead), so progress is guaranteed.
		runnable := 0
		last := -1
		for i := range ss.engines {
			end := Infinity
			for j := range ss.engines {
				if j == i || ss.next[j] == Infinity {
					continue
				}
				if w := ss.next[j] + ss.lat[j][i]; w < end {
					end = w
				}
			}
			ss.ends[i] = end
			if ss.next[i] < end {
				runnable++
				last = i
			}
		}
		ss.windows++
		if ss.winObs != nil {
			ss.observeWindow(runnable)
		}
		if runnable == 1 {
			// Lone-runner fast path: no other shard can be affected before
			// this shard's window end, so run it inline on this goroutine.
			ss.engines[last].RunWindow(ss.ends[last])
			continue
		}
		if inline {
			for i := range ss.engines {
				if ss.next[i] < ss.ends[i] {
					ss.engines[i].RunWindow(ss.ends[i])
				}
			}
			continue
		}
		wg.Add(runnable)
		for i := range ss.engines {
			if ss.next[i] < ss.ends[i] {
				work[i] <- ss.ends[i]
			}
		}
		wg.Wait()
	}
}
