package sim

import (
	"math"
	"strings"
	"testing"
)

// mix64 is a splitmix64 step: the model's deterministic jitter source.
func mix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4b9b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

const optModelLat Time = 5 * Nanosecond

// optNode is an event-driven PHOLD-style actor: each job folds (time,
// payload) into an order-sensitive hash and schedules one successor,
// locally (sub-lookahead delay) or on a random peer (>= lookahead away).
// Jittered sub-nanosecond offsets keep event times globally distinct, the
// optimistic engine's determinism precondition.
type optNode struct {
	id    int
	nodes []*optNode
	eng   *Engine
	post  func(src *Engine, dst int, at Time, fn func())

	rng    uint64
	hash   uint64
	count  int64
	budget int64

	// trace, when set, observes every job execution (diagnostics only).
	trace func(at Time, payload uint64)
}

type optNodeState struct {
	rng, hash     uint64
	count, budget int64
}

func (nd *optNode) SaveState() any {
	return optNodeState{nd.rng, nd.hash, nd.count, nd.budget}
}

func (nd *optNode) RestoreState(s any) {
	st := s.(optNodeState)
	nd.rng, nd.hash, nd.count, nd.budget = st.rng, st.hash, st.count, st.budget
}

func (nd *optNode) job(payload uint64) {
	t := nd.eng.Now()
	if nd.trace != nil {
		nd.trace(t, payload)
	}
	nd.hash = nd.hash*1099511628211 ^ math.Float64bits(float64(t)) ^ payload
	nd.count++
	if nd.budget <= 0 {
		return
	}
	nd.budget--
	r := mix64(&nd.rng)
	next := mix64(&nd.rng)
	jitter := Time(r%1000) * 1e-12
	if (r>>32)%100 < 30 {
		dst := int(next % uint64(len(nd.nodes)))
		dn := nd.nodes[dst]
		nd.post(nd.eng, dst, t+optModelLat+Nanosecond+jitter, func() { dn.job(next) })
	} else {
		at := t + 2e-10 + jitter
		nd.eng.ScheduleAt(at, func() { nd.job(next) })
	}
}

type optNodeRes struct {
	hash, rng uint64
	count     int64
}

func newOptNodes(nNodes int, budget int64) []*optNode {
	nodes := make([]*optNode, nNodes)
	for i := range nodes {
		nodes[i] = &optNode{id: i, rng: uint64(i)*2654435761 + 12345, budget: budget}
	}
	for _, nd := range nodes {
		nd.nodes = nodes
	}
	return nodes
}

func kickOptNodes(nodes []*optNode) {
	for i, nd := range nodes {
		nd := nd
		payload := uint64(i) * 7777
		nd.eng.ScheduleAt(nd.eng.Now()+Time(i+1)*Nanosecond, func() { nd.job(payload) })
	}
}

func collectOptNodes(nodes []*optNode) []optNodeRes {
	out := make([]optNodeRes, len(nodes))
	for i, nd := range nodes {
		out[i] = optNodeRes{nd.hash, nd.rng, nd.count}
	}
	return out
}

// runOptSerial runs the model on a single engine: the reference result.
func runOptSerial(nNodes int, budget int64) ([]optNodeRes, Time) {
	eng := NewEngine()
	nodes := newOptNodes(nNodes, budget)
	for _, nd := range nodes {
		nd.eng = eng
		nd.post = func(src *Engine, dst int, at Time, fn func()) { eng.ScheduleAt(at, fn) }
	}
	kickOptNodes(nodes)
	end := eng.Run()
	return collectOptNodes(nodes), end
}

// runOptSharded runs the model on nShards engines, optimistically when
// cfg.MaxDepth > 0 via an OptimisticShardSet, else conservatively.
func runOptSharded(nNodes, nShards int, budget int64, cfg OptConfig, optimistic bool) ([]optNodeRes, Time, OptStats) {
	var ss *ShardSet
	var o *OptimisticShardSet
	if optimistic {
		o = NewOptimisticShardSet(nShards, optModelLat, cfg)
		ss = o.ShardSet
	} else {
		ss = NewShardSet(nShards, optModelLat)
	}
	nodes := newOptNodes(nNodes, budget)
	shardOf := func(node int) int { return node % nShards }
	for i, nd := range nodes {
		nd.eng = ss.Engine(shardOf(i))
		nd.post = func(src *Engine, dst int, at Time, fn func()) {
			ss.Post(src, ss.Engine(shardOf(dst)), at, fn)
		}
		if o != nil {
			o.Register(shardOf(i), nd)
		}
	}
	kickOptNodes(nodes)
	var end Time
	if o != nil {
		end = o.Run()
		return collectOptNodes(nodes), end, o.Stats()
	}
	end = ss.Run()
	return collectOptNodes(nodes), end, OptStats{}
}

func requireSameModel(t *testing.T, label string, want, got []optNodeRes, wantEnd, gotEnd Time) {
	t.Helper()
	if wantEnd != gotEnd {
		t.Errorf("%s: final time %v, want %v", label, gotEnd, wantEnd)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Errorf("%s: node %d state %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// TestOptimisticBitIdentical is the optimistic engine's core contract: for
// an event-driven model with registered state, the Time-Warp run matches
// the single-engine run exactly — hashes, counts, rng cursors and final
// virtual time — at every shard count and speculation depth, with real
// rollbacks occurring along the way.
func TestOptimisticBitIdentical(t *testing.T) {
	const nNodes, budget = 8, 1500
	want, wantEnd := runOptSerial(nNodes, budget)

	var sawRollback, sawAnti, sawCascade bool
	for _, shards := range []int{1, 2, 4, 8} {
		// Conservative sanity first: the substrate must agree before the
		// speculative layers are worth debugging.
		got, end, _ := runOptSharded(nNodes, shards, budget, OptConfig{}, false)
		requireSameModel(t, "conservative", want, got, wantEnd, end)

		for _, depth := range []int{1, 4} {
			got, end, st := runOptSharded(nNodes, shards, budget, OptConfig{MaxDepth: depth}, true)
			label := "optimistic"
			requireSameModel(t, label, want, got, wantEnd, end)
			if st.Degraded {
				t.Errorf("shards=%d depth=%d unexpectedly degraded", shards, depth)
			}
			if st.Rollbacks > 0 {
				sawRollback = true
			}
			if st.AntiMessages > 0 {
				sawAnti = true
			}
			if st.CascadeRollbacks > 0 {
				sawCascade = true
			}
			t.Logf("shards=%d depth=%d: windows=%d spec=%d snaps=%d rollbacks=%d cascades=%d anti=%d dup=%d exec=%d undone=%d frac=%.3f",
				shards, depth, st.Windows, st.SpecWindows, st.Snapshots, st.Rollbacks,
				st.CascadeRollbacks, st.AntiMessages, st.DupSends,
				st.EventsExecuted, st.EventsRolledBack, st.RollbackFrac())
		}
	}
	if !sawRollback {
		t.Error("no configuration triggered a rollback: speculation was never exercised")
	}
	if !sawAnti {
		t.Error("no configuration annihilated a sent message: anti-messages were never exercised")
	}
	if !sawCascade {
		t.Error("no configuration cascaded a rollback: late anti-messages were never exercised")
	}
}

// TestOptimisticDepthZeroConservative: MaxDepth 0 is the conservative
// coordinator's exact code path (Degraded is recorded), still bit-identical.
func TestOptimisticDepthZeroConservative(t *testing.T) {
	const nNodes, budget = 8, 400
	want, wantEnd := runOptSerial(nNodes, budget)
	got, end, st := runOptSharded(nNodes, 4, budget, OptConfig{MaxDepth: 0}, true)
	requireSameModel(t, "depth0", want, got, wantEnd, end)
	if !st.Degraded {
		t.Error("MaxDepth 0 should report Degraded (conservative fallback)")
	}
}

// TestOptimisticProcessesDegrade: live processes force the conservative
// path — goroutine stacks cannot roll back — and the run still completes
// with the same model results.
func TestOptimisticProcessesDegrade(t *testing.T) {
	const nNodes, budget = 8, 400
	want, wantEnd := runOptSerial(nNodes, budget)

	o := NewOptimisticShardSet(4, optModelLat, OptConfig{MaxDepth: 4})
	ss := o.ShardSet
	nodes := newOptNodes(nNodes, budget)
	for i, nd := range nodes {
		nd.eng = ss.Engine(i % 4)
		nd.post = func(src *Engine, dst int, at Time, fn func()) {
			ss.Post(src, ss.Engine(dst%4), at, fn)
		}
		o.Register(i%4, nd)
	}
	kickOptNodes(nodes)
	ss.Engine(0).Spawn("idler", func(p *Process) { p.Sleep(3 * Nanosecond) })
	end := o.Run()
	requireSameModel(t, "processes", want, collectOptNodes(nodes), wantEnd, end)
	if !o.Stats().Degraded {
		t.Error("a live process should degrade the run to the conservative path")
	}
}

// TestOptimisticSpawnWhileSpeculatingPanics: spawning a process from an
// event while the coordinator speculates is unrecoverable and must fail
// loudly rather than corrupt a later rollback.
func TestOptimisticSpawnWhileSpeculatingPanics(t *testing.T) {
	// Only shard 0 has work, so the lone-runner fast path executes the
	// offending event inline on this goroutine and the panic is catchable
	// regardless of GOMAXPROCS.
	o := NewOptimisticShardSet(2, optModelLat, OptConfig{MaxDepth: 2})
	e0 := o.Engine(0)
	e0.ScheduleAt(Nanosecond, func() {
		e0.Spawn("late", func(p *Process) { p.Sleep(Nanosecond) })
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected a panic from Spawn during speculation")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "cannot spawn") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	o.Run()
}

// TestOptimisticMultiSegment mirrors core's segmented drive (run, schedule
// more work, run again): speculation state must reset cleanly between
// segments and stay bit-identical to the serial two-segment run.
func TestOptimisticMultiSegment(t *testing.T) {
	const nNodes, budget = 8, 500

	// Serial reference, two segments.
	eng := NewEngine()
	nodes := newOptNodes(nNodes, budget)
	for _, nd := range nodes {
		nd.eng = eng
		nd.post = func(src *Engine, dst int, at Time, fn func()) { eng.ScheduleAt(at, fn) }
	}
	kickOptNodes(nodes)
	eng.Run()
	for _, nd := range nodes {
		nd.budget = budget
	}
	kickOptNodes(nodes)
	wantEnd := eng.Run()
	want := collectOptNodes(nodes)

	// Optimistic, two segments.
	o := NewOptimisticShardSet(4, optModelLat, OptConfig{MaxDepth: 4})
	ss := o.ShardSet
	snodes := newOptNodes(nNodes, budget)
	for i, nd := range snodes {
		nd.eng = ss.Engine(i % 4)
		nd.post = func(src *Engine, dst int, at Time, fn func()) {
			ss.Post(src, ss.Engine(dst%4), at, fn)
		}
		o.Register(i%4, nd)
	}
	kickOptNodes(snodes)
	o.Run()
	o.AlignNow()
	for _, nd := range snodes {
		nd.budget = budget
	}
	kickOptNodes(snodes)
	o.Run()
	end := o.AlignNow()
	requireSameModel(t, "segments", want, collectOptNodes(snodes), wantEnd, end)
}
