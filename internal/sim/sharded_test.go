package sim

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

// TestShardSetPingPongMatchesSerial models two ranks exchanging timestamped
// messages with a wire latency of 2µs (≥ the 1µs lookahead) and asserts the
// sharded run produces the identical execution log and end time as the same
// model on one engine.
func TestShardSetPingPongMatchesSerial(t *testing.T) {
	const hops = 50
	const wire = 2 * Microsecond

	type post func(srcRank, dstRank int, at Time, fn func())

	// Concurrent shard windows interleave their wall-clock side effects, so
	// the comparison keys each hop by identity and checks its virtual
	// timestamp — the quantity the engine promises to reproduce exactly.
	run := func(engOf func(rank int) *Engine, send post, drive func() Time) (log map[string]Time, end Time) {
		log = make(map[string]Time)
		var mu sync.Mutex
		var hop func(from, to, n int)
		hop = func(from, to, n int) {
			if n >= hops {
				return
			}
			e := engOf(from)
			at := e.Now() + wire
			send(from, to, at, func() {
				mu.Lock()
				log[fmt.Sprintf("hop %d->%d #%d", from, to, n)] = engOf(to).Now()
				mu.Unlock()
				hop(to, from, n+1)
			})
		}
		engOf(0).Schedule(0, func() { hop(0, 1, 0) })
		// A second, phase-shifted stream on rank 1 creates same-window traffic
		// in both directions.
		engOf(1).Schedule(Microsecond/2, func() { hop(1, 0, 0) })
		return log, drive()
	}

	serial := NewEngine()
	wantLog, wantEnd := run(
		func(int) *Engine { return serial },
		func(src, dst int, at Time, fn func()) { serial.ScheduleAt(at, fn) },
		serial.Run)

	ss := NewShardSet(2, Microsecond)
	gotLog, gotEnd := run(
		ss.Engine,
		func(src, dst int, at Time, fn func()) { ss.Post(ss.Engine(src), ss.Engine(dst), at, fn) },
		ss.Run)

	if gotEnd != wantEnd {
		t.Fatalf("end time: sharded %v, serial %v", gotEnd, wantEnd)
	}
	if len(gotLog) != len(wantLog) {
		t.Fatalf("log length: sharded %d, serial %d", len(gotLog), len(wantLog))
	}
	for k, want := range wantLog {
		if got, ok := gotLog[k]; !ok || got != want {
			t.Fatalf("%s: sharded time %v, serial %v", k, got, want)
		}
	}
}

// TestShardSetMailTieOrder posts cross-shard mail from every shard to shard 0
// at one shared delivery instant and asserts execution follows the canonical
// (at, postTime, srcShard, seq) order, not goroutine scheduling order.
func TestShardSetMailTieOrder(t *testing.T) {
	ss := NewShardSet(4, Microsecond)
	var got []int
	const at = 10 * Microsecond
	for s := 3; s >= 0; s-- {
		src := ss.Engine(s)
		for k := 0; k < 3; k++ {
			id := s*10 + k
			ss.Post(src, ss.Engine(0), at, func() { got = append(got, id) })
		}
	}
	ss.Run()
	want := []int{0, 1, 2, 10, 11, 12, 20, 21, 22, 30, 31, 32}
	if len(got) != len(want) {
		t.Fatalf("executed %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order[%d] = %d, want %d (full: %v)", i, got[i], want[i], got)
		}
	}
}

// TestShardSetInterruptPropagates interrupts one shard mid-run and asserts
// every engine stops with the same reason at the next barrier.
func TestShardSetInterruptPropagates(t *testing.T) {
	ss := NewShardSet(2, Microsecond)
	e0, e1 := ss.Engine(0), ss.Engine(1)
	for i := 1; i <= 100; i++ {
		at := Time(i) * 10 * Microsecond
		e0.ScheduleAt(at, func() {})
		e1.ScheduleAt(at, func() {})
	}
	e0.ScheduleAt(50*Microsecond, func() {
		e0.Interrupt("cg0 crashed")
		ss.RequestStop()
	})
	ss.Run()
	if got := ss.Interrupted(); got != "cg0 crashed" {
		t.Fatalf("Interrupted() = %q, want %q", got, "cg0 crashed")
	}
	for i := 0; i < 2; i++ {
		if !ss.Engine(i).Stopped() {
			t.Fatalf("shard %d not stopped after interrupt", i)
		}
		if ss.Engine(i).Interrupted() != "cg0 crashed" {
			t.Fatalf("shard %d reason = %q", i, ss.Engine(i).Interrupted())
		}
	}
}

// TestShardSetLoneRunner checks that a shard with no peers holding events
// runs to completion (windows extend to Infinity rather than livelocking).
func TestShardSetLoneRunner(t *testing.T) {
	ss := NewShardSet(3, Microsecond)
	n := 0
	var last Time
	var tick func()
	tick = func() {
		n++
		last = ss.Engine(1).Now()
		if n < 1000 {
			ss.Engine(1).Schedule(Microsecond/4, tick)
		}
	}
	ss.Engine(1).Schedule(0, tick)
	end := ss.Run()
	if n != 1000 {
		t.Fatalf("ran %d ticks, want 1000", n)
	}
	if end != last {
		t.Fatalf("end = %v, want last tick time %v", end, last)
	}
}

// TestShardSetWakesIdleShard: a shard whose window is otherwise unbounded
// (every peer idle) must still stop at the earliest instant a reply to its
// own outbound mail could arrive. Shard 0 wakes idle shard 1 mid-run while
// holding a long local event chain; shard 1's response would land in shard
// 0's past without the outMailAt window cap.
func TestShardSetWakesIdleShard(t *testing.T) {
	const lat = 5 * Nanosecond
	const chain = 50

	type side struct{ hash uint64 }
	fold := func(s *side, at Time, tag uint64) {
		s.hash = s.hash*1099511628211 ^ math.Float64bits(float64(at)) ^ tag
	}

	// model wires the scenario onto two engines (possibly the same one):
	// a dense local chain on side 0, one wake-up post to side 1, and side
	// 1's reply back into the middle of side 0's chain.
	model := func(e0, e1 *Engine, post func(src, dst *Engine, at Time, fn func())) (*side, *side) {
		s0, s1 := &side{}, &side{}
		for k := 1; k <= chain; k++ {
			at := Time(k) * Nanosecond
			e0.ScheduleAt(at, func() { fold(s0, at, 1) })
		}
		e0.ScheduleAt(Nanosecond+Time(1e-12), func() {
			wake := e0.Now() + lat
			post(e0, e1, wake, func() {
				fold(s1, e1.Now(), 2)
				reply := e1.Now() + lat
				post(e1, e0, reply, func() { fold(s0, e0.Now(), 3) })
			})
		})
		return s0, s1
	}

	eng := NewEngine()
	w0, w1 := model(eng, eng, func(src, dst *Engine, at Time, fn func()) {
		src.ScheduleAt(at, fn)
	})
	wantEnd := eng.Run()

	ss := NewShardSet(2, lat)
	g0, g1 := model(ss.Engine(0), ss.Engine(1), func(src, dst *Engine, at Time, fn func()) {
		ss.Post(src, dst, at, fn)
	})
	end := ss.Run()

	if end != wantEnd {
		t.Errorf("final time %v, want %v", end, wantEnd)
	}
	if g0.hash != w0.hash || g1.hash != w1.hash {
		t.Errorf("hashes (%x,%x), want (%x,%x)", g0.hash, g1.hash, w0.hash, w1.hash)
	}
}
