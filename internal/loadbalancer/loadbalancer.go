// Package loadbalancer assigns mesh patches to MPI ranks. The paper's
// experiments use equally sized patches with the patch count an exact
// multiple of the rank count, so a contiguous block assignment in patch-ID
// order (z-major) is both balanced and locality-preserving; round-robin is
// provided as a comparison strategy.
package loadbalancer

import "fmt"

// Strategy names a patch-assignment policy.
type Strategy int

// Available strategies.
const (
	// Block assigns contiguous runs of patch IDs to each rank.
	Block Strategy = iota
	// RoundRobin deals patches out cyclically.
	RoundRobin
)

func (s Strategy) String() string {
	switch s {
	case Block:
		return "block"
	case RoundRobin:
		return "round-robin"
	case SFC:
		return "sfc"
	}
	return fmt.Sprintf("strategy(%d)", int(s))
}

// Assign distributes nPatches patches over nRanks ranks, returning the
// owning rank of each patch ID. Every rank receives either
// floor(nPatches/nRanks) or ceil(nPatches/nRanks) patches.
func Assign(strategy Strategy, nPatches, nRanks int) ([]int, error) {
	if nPatches <= 0 || nRanks <= 0 {
		return nil, fmt.Errorf("loadbalancer: need positive patches (%d) and ranks (%d)", nPatches, nRanks)
	}
	if nRanks > nPatches {
		return nil, fmt.Errorf("loadbalancer: %d ranks exceed %d patches (idle ranks are not supported)", nRanks, nPatches)
	}
	out := make([]int, nPatches)
	switch strategy {
	case Block:
		// Rank r owns patches [r*nPatches/nRanks, (r+1)*nPatches/nRanks).
		for p := range out {
			out[p] = rankOfBlock(p, nPatches, nRanks)
		}
	case RoundRobin:
		for p := range out {
			out[p] = p % nRanks
		}
	default:
		return nil, fmt.Errorf("loadbalancer: unknown strategy %v", strategy)
	}
	return out, nil
}

// rankOfBlock inverts the block partition boundaries lo(r) = r*nPatches/nRanks.
func rankOfBlock(p, nPatches, nRanks int) int {
	// Candidate from proportional position, corrected to the true block.
	r := p * nRanks / nPatches
	for r+1 < nRanks && p >= (r+1)*nPatches/nRanks {
		r++
	}
	for r > 0 && p < r*nPatches/nRanks {
		r--
	}
	return r
}

// Counts returns how many patches each rank received.
func Counts(assign []int, nRanks int) []int {
	c := make([]int, nRanks)
	for _, r := range assign {
		c[r]++
	}
	return c
}
