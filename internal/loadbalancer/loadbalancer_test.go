package loadbalancer

import (
	"testing"
	"testing/quick"
)

func TestBlockAssignmentEvenSplit(t *testing.T) {
	assign, err := Assign(Block, 128, 8)
	if err != nil {
		t.Fatal(err)
	}
	counts := Counts(assign, 8)
	for r, c := range counts {
		if c != 16 {
			t.Fatalf("rank %d has %d patches, want 16", r, c)
		}
	}
	// Contiguity: rank never decreases with patch ID.
	for p := 1; p < len(assign); p++ {
		if assign[p] < assign[p-1] {
			t.Fatalf("block assignment not contiguous at patch %d", p)
		}
	}
}

func TestBlockAssignmentAllPaperCGCounts(t *testing.T) {
	for _, cgs := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		assign, err := Assign(Block, 128, cgs)
		if err != nil {
			t.Fatalf("cgs=%d: %v", cgs, err)
		}
		counts := Counts(assign, cgs)
		want := 128 / cgs
		for r, c := range counts {
			if c != want {
				t.Fatalf("cgs=%d rank %d: %d patches, want %d", cgs, r, c, want)
			}
		}
	}
}

func TestRoundRobin(t *testing.T) {
	assign, err := Assign(RoundRobin, 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 0, 1, 2, 0}
	for p, r := range want {
		if assign[p] != r {
			t.Fatalf("assign = %v", assign)
		}
	}
}

func TestAssignErrors(t *testing.T) {
	if _, err := Assign(Block, 0, 1); err == nil {
		t.Error("zero patches should fail")
	}
	if _, err := Assign(Block, 4, 0); err == nil {
		t.Error("zero ranks should fail")
	}
	if _, err := Assign(Block, 4, 8); err == nil {
		t.Error("more ranks than patches should fail")
	}
	if _, err := Assign(Strategy(99), 4, 2); err == nil {
		t.Error("unknown strategy should fail")
	}
}

// Property: block assignment is balanced within one patch and covers every
// rank, for arbitrary sizes.
func TestPropertyBlockBalanced(t *testing.T) {
	f := func(np, nr uint8) bool {
		nPatches := 1 + int(np)%200
		nRanks := 1 + int(nr)%50
		if nRanks > nPatches {
			nRanks = nPatches
		}
		assign, err := Assign(Block, nPatches, nRanks)
		if err != nil {
			return false
		}
		counts := Counts(assign, nRanks)
		lo, hi := nPatches, 0
		for _, c := range counts {
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		return lo >= 1 && hi-lo <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStrategyString(t *testing.T) {
	if Block.String() != "block" || RoundRobin.String() != "round-robin" {
		t.Error("strategy names wrong")
	}
}
