package loadbalancer

import (
	"fmt"
	"sort"

	"sunuintah/internal/grid"
)

// SFC assigns contiguous segments of a Morton space-filling curve.
const SFC Strategy = 2

// AssignWithLayout dispatches to the strategy's assignment function,
// covering the layout-aware SFC strategy as well as the ID-based ones.
func AssignWithLayout(strategy Strategy, layout *grid.Layout, nRanks int) ([]int, error) {
	if strategy == SFC {
		return AssignSFC(layout, nRanks)
	}
	return Assign(strategy, layout.NumPatches(), nRanks)
}

// AssignSFC orders the layout's patches along a Morton (Z-order)
// space-filling curve over their layout positions and assigns contiguous
// curve segments to ranks. Compared to ID-order blocks this keeps each
// rank's patches spatially compact in all three dimensions, reducing ghost
// traffic — the locality-aware policy Uintah's measurement-based load
// balancer approximates.
func AssignSFC(layout *grid.Layout, nRanks int) ([]int, error) {
	n := layout.NumPatches()
	if nRanks <= 0 || nRanks > n {
		return nil, fmt.Errorf("loadbalancer: %d ranks for %d patches", nRanks, n)
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		pa := layout.Patch(order[a]).Pos
		pb := layout.Patch(order[b]).Pos
		return mortonKey(pa) < mortonKey(pb)
	})
	out := make([]int, n)
	for idx, patchID := range order {
		out[patchID] = rankOfBlock(idx, n, nRanks)
	}
	return out, nil
}

// mortonKey interleaves the bits of a patch position (Z-order curve).
func mortonKey(p grid.IVec) uint64 {
	return interleave(uint64(p.X)) | interleave(uint64(p.Y))<<1 | interleave(uint64(p.Z))<<2
}

// interleave spreads the low 21 bits of v so consecutive bits are three
// apart.
func interleave(v uint64) uint64 {
	v &= (1 << 21) - 1
	v = (v | v<<32) & 0x1f00000000ffff
	v = (v | v<<16) & 0x1f0000ff0000ff
	v = (v | v<<8) & 0x100f00f00f00f00f
	v = (v | v<<4) & 0x10c30c30c30c30c3
	v = (v | v<<2) & 0x1249249249249249
	return v
}

// AssignWeighted partitions patches (in ID order) into contiguous rank
// segments whose weight sums are as even as a greedy threshold scan makes
// them. Weights model per-patch cost estimates from a previous timestep —
// the "help from the load balancer" of scheduler step 2 when patches are
// not uniform.
func AssignWeighted(weights []float64, nRanks int) ([]int, error) {
	n := len(weights)
	if n == 0 || nRanks <= 0 || nRanks > n {
		return nil, fmt.Errorf("loadbalancer: %d ranks for %d weighted patches", nRanks, n)
	}
	var total float64
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("loadbalancer: negative weight %v at patch %d", w, i)
		}
		total += w
	}
	out := make([]int, n)
	rank := 0
	var acc float64
	for p := 0; p < n; p++ {
		out[p] = rank
		acc += weights[p]
		if rank == nRanks-1 {
			continue
		}
		// Advance to the next rank when this one's share is filled, or
		// when the remaining patches are only just enough to give every
		// remaining rank one patch.
		remainingAfter := n - p - 1
		ranksAfter := nRanks - 1 - rank
		threshold := total / float64(nRanks) * float64(rank+1)
		if acc >= threshold || remainingAfter == ranksAfter {
			rank++
		}
	}
	return out, nil
}

// Imbalance returns max/mean of per-rank weight sums (1.0 is perfect).
func Imbalance(assign []int, weights []float64, nRanks int) float64 {
	sums := make([]float64, nRanks)
	for p, r := range assign {
		w := 1.0
		if weights != nil {
			w = weights[p]
		}
		sums[r] += w
	}
	var maxs, total float64
	for _, s := range sums {
		if s > maxs {
			maxs = s
		}
		total += s
	}
	mean := total / float64(nRanks)
	if mean == 0 {
		return 1
	}
	return maxs / mean
}
