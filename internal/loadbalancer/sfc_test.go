package loadbalancer

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sunuintah/internal/grid"
)

func paperLayout(t *testing.T) *grid.Layout {
	t.Helper()
	l, err := grid.NewLayout(grid.BoxFromSize(grid.IV(0, 0, 0), grid.IV(128, 128, 1024)), grid.IV(8, 8, 2))
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestAssignSFCBalancedAndComplete(t *testing.T) {
	l := paperLayout(t)
	for _, ranks := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		assign, err := AssignSFC(l, ranks)
		if err != nil {
			t.Fatal(err)
		}
		counts := Counts(assign, ranks)
		for r, c := range counts {
			if c != 128/ranks {
				t.Fatalf("ranks=%d: rank %d got %d patches", ranks, r, c)
			}
		}
	}
}

func TestAssignSFCImprovesLocality(t *testing.T) {
	// For a cubic layout at 8 ranks, SFC segments should produce at most
	// as much cross-rank ghost surface as ID-order blocks (which slice
	// into thin slabs).
	l, err := grid.NewLayout(grid.BoxFromSize(grid.IV(0, 0, 0), grid.IV(32, 32, 32)), grid.IV(4, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	crossSurface := func(assign []int) int64 {
		var total int64
		for _, p := range l.Patches() {
			for _, gr := range l.GhostRegions(p, 1) {
				if gr.Src != nil && assign[gr.Src.ID] != assign[p.ID] {
					total += gr.Region.NumCells()
				}
			}
		}
		return total
	}
	block, _ := Assign(Block, l.NumPatches(), 8)
	sfc, err := AssignSFC(l, 8)
	if err != nil {
		t.Fatal(err)
	}
	if crossSurface(sfc) > crossSurface(block) {
		t.Fatalf("SFC surface %d worse than block %d", crossSurface(sfc), crossSurface(block))
	}
}

func TestMortonKeyOrdering(t *testing.T) {
	// Morton order of a 2x2x2 cube visits one octant fully before the
	// next in the canonical x-fastest interleave.
	if mortonKey(grid.IV(0, 0, 0)) >= mortonKey(grid.IV(1, 0, 0)) {
		t.Fatal("x bit not least significant")
	}
	if mortonKey(grid.IV(1, 0, 0)) >= mortonKey(grid.IV(0, 1, 0)) {
		t.Fatal("y above x")
	}
	if mortonKey(grid.IV(1, 1, 0)) >= mortonKey(grid.IV(0, 0, 1)) {
		t.Fatal("z most significant")
	}
}

func TestAssignWeightedRespectsWeights(t *testing.T) {
	// One heavy patch: the greedy scan should give the heavy patch its
	// own rank region and pack light ones together.
	weights := []float64{10, 1, 1, 1, 1, 1, 1, 1, 1, 1}
	assign, err := AssignWeighted(weights, 2)
	if err != nil {
		t.Fatal(err)
	}
	if assign[0] != 0 {
		t.Fatal("first patch must be on rank 0")
	}
	// The heavy patch alone is over half the total, so rank 0 should end
	// quickly.
	if assign[1] != 1 {
		t.Fatalf("assign = %v: light patches should move to rank 1", assign)
	}
	imb := Imbalance(assign, weights, 2)
	uniform, _ := Assign(Block, len(weights), 2)
	if imb > Imbalance(uniform, weights, 2) {
		t.Fatalf("weighted imbalance %v worse than uniform blocks", imb)
	}
}

func TestAssignWeightedErrors(t *testing.T) {
	if _, err := AssignWeighted(nil, 1); err == nil {
		t.Error("empty weights should fail")
	}
	if _, err := AssignWeighted([]float64{1, -1}, 1); err == nil {
		t.Error("negative weight should fail")
	}
	if _, err := AssignWeighted([]float64{1}, 2); err == nil {
		t.Error("more ranks than patches should fail")
	}
}

// Property: weighted assignment is contiguous, covers all ranks, and every
// rank gets at least one patch.
func TestPropertyWeightedAssignment(t *testing.T) {
	f := func(seed int64, n, r uint8) bool {
		nPatches := 1 + int(n)%64
		nRanks := 1 + int(r)%16
		if nRanks > nPatches {
			nRanks = nPatches
		}
		rng := rand.New(rand.NewSource(seed))
		weights := make([]float64, nPatches)
		for i := range weights {
			weights[i] = rng.Float64() * 10
		}
		assign, err := AssignWeighted(weights, nRanks)
		if err != nil {
			return false
		}
		counts := Counts(assign, nRanks)
		for _, c := range counts {
			if c == 0 {
				return false
			}
		}
		for i := 1; i < len(assign); i++ {
			if assign[i] < assign[i-1] || assign[i] > assign[i-1]+1 {
				return false
			}
		}
		return assign[len(assign)-1] == nRanks-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
