package field

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sunuintah/internal/grid"
)

func box(lo, hi grid.IVec) grid.Box { return grid.NewBox(lo, hi) }

func TestIndexRoundTrip(t *testing.T) {
	f := NewCell(box(grid.IV(-1, -1, -1), grid.IV(3, 4, 5)))
	seen := map[int]bool{}
	f.Alloc().ForEach(func(c grid.IVec) {
		idx := f.Index(c)
		if seen[idx] {
			t.Fatalf("index %d reused at %v", idx, c)
		}
		seen[idx] = true
	})
	if int64(len(seen)) != f.Alloc().NumCells() {
		t.Fatalf("indexed %d cells, want %d", len(seen), f.Alloc().NumCells())
	}
}

func TestIndexOrderMatchesForEach(t *testing.T) {
	f := NewCell(box(grid.IV(0, 0, 0), grid.IV(3, 3, 3)))
	want := 0
	f.Alloc().ForEach(func(c grid.IVec) {
		if f.Index(c) != want {
			t.Fatalf("index(%v) = %d, want %d", c, f.Index(c), want)
		}
		want++
	})
}

func TestAtSet(t *testing.T) {
	f := NewCellWithGhost(box(grid.IV(0, 0, 0), grid.IV(4, 4, 4)), 1)
	if f.Alloc() != box(grid.IV(-1, -1, -1), grid.IV(5, 5, 5)) {
		t.Fatalf("alloc = %v", f.Alloc())
	}
	f.Set(grid.IV(-1, -1, -1), 3.5)
	f.Set(grid.IV(4, 4, 4), -2)
	if f.At(grid.IV(-1, -1, -1)) != 3.5 || f.At(grid.IV(4, 4, 4)) != -2 {
		t.Fatal("ghost cells not stored correctly")
	}
}

func TestIndexPanicsOutOfBounds(t *testing.T) {
	f := NewCell(box(grid.IV(0, 0, 0), grid.IV(2, 2, 2)))
	for _, c := range []grid.IVec{grid.IV(-1, 0, 0), grid.IV(0, 2, 0), grid.IV(0, 0, 5)} {
		c := c
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Index(%v) should panic", c)
				}
			}()
			f.Index(c)
		}()
	}
}

func TestFillAndFillFunc(t *testing.T) {
	f := NewCell(box(grid.IV(0, 0, 0), grid.IV(4, 4, 4)))
	f.Fill(f.Alloc(), 7)
	inner := box(grid.IV(1, 1, 1), grid.IV(3, 3, 3))
	f.FillFunc(inner, func(c grid.IVec) float64 { return float64(c.X + 10*c.Y + 100*c.Z) })
	if f.At(grid.IV(0, 0, 0)) != 7 {
		t.Error("outer fill lost")
	}
	if f.At(grid.IV(2, 1, 2)) != 2+10+200 {
		t.Errorf("FillFunc value = %v", f.At(grid.IV(2, 1, 2)))
	}
}

func TestCopyRegionBetweenDifferentAllocations(t *testing.T) {
	// Source patch [0,4)^3, destination patch [4,8)x[0,4)x[0,4) with ghost
	// margin; copy the source's high-x face into the dest's ghost layer.
	src := NewCell(box(grid.IV(0, 0, 0), grid.IV(4, 4, 4)))
	src.FillFunc(src.Alloc(), func(c grid.IVec) float64 {
		return float64(c.X) + 0.1*float64(c.Y) + 0.01*float64(c.Z)
	})
	dst := NewCellWithGhost(box(grid.IV(4, 0, 0), grid.IV(8, 4, 4)), 1)
	region := box(grid.IV(3, 0, 0), grid.IV(4, 4, 4))
	dst.CopyRegion(src, region)
	region.ForEach(func(c grid.IVec) {
		if dst.At(c) != src.At(c) {
			t.Fatalf("cell %v: dst %v != src %v", c, dst.At(c), src.At(c))
		}
	})
}

func TestCopyRegionPanicsOutsideAllocation(t *testing.T) {
	src := NewCell(box(grid.IV(0, 0, 0), grid.IV(2, 2, 2)))
	dst := NewCell(box(grid.IV(0, 0, 0), grid.IV(2, 2, 2)))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	dst.CopyRegion(src, box(grid.IV(0, 0, 0), grid.IV(3, 2, 2)))
}

func TestPackUnpackRoundTrip(t *testing.T) {
	a := NewCell(box(grid.IV(0, 0, 0), grid.IV(5, 4, 3)))
	rng := rand.New(rand.NewSource(1))
	a.FillFunc(a.Alloc(), func(grid.IVec) float64 { return rng.Float64() })
	region := box(grid.IV(1, 0, 1), grid.IV(4, 4, 2))

	buf := a.Pack(region, nil)
	if int64(len(buf)) != region.NumCells() {
		t.Fatalf("packed %d values, want %d", len(buf), region.NumCells())
	}
	b := NewCell(a.Alloc())
	rest := b.Unpack(region, buf)
	if len(rest) != 0 {
		t.Fatalf("unpack left %d values", len(rest))
	}
	if MaxAbsDiff(a, b, region) != 0 {
		t.Fatal("round trip mismatch")
	}
	// Cells outside the region stay zero.
	if b.At(grid.IV(0, 0, 0)) != 0 {
		t.Fatal("unpack wrote outside region")
	}
}

func TestPackAppends(t *testing.T) {
	f := NewCell(box(grid.IV(0, 0, 0), grid.IV(2, 1, 1)))
	f.Set(grid.IV(0, 0, 0), 1)
	f.Set(grid.IV(1, 0, 0), 2)
	buf := []float64{9}
	buf = f.Pack(f.Alloc(), buf)
	if len(buf) != 3 || buf[0] != 9 || buf[1] != 1 || buf[2] != 2 {
		t.Fatalf("buf = %v", buf)
	}
}

// Property: Pack/Unpack round-trips arbitrary regions of arbitrary fields.
func TestPropertyPackUnpack(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		size := grid.IV(1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6))
		lo := grid.IV(rng.Intn(5)-2, rng.Intn(5)-2, rng.Intn(5)-2)
		a := NewCell(grid.BoxFromSize(lo, size))
		a.FillFunc(a.Alloc(), func(grid.IVec) float64 { return rng.NormFloat64() })
		// Random sub-region.
		rlo := grid.IV(lo.X+rng.Intn(size.X), lo.Y+rng.Intn(size.Y), lo.Z+rng.Intn(size.Z))
		rhi := grid.IV(
			rlo.X+1+rng.Intn(lo.X+size.X-rlo.X),
			rlo.Y+1+rng.Intn(lo.Y+size.Y-rlo.Y),
			rlo.Z+1+rng.Intn(lo.Z+size.Z-rlo.Z))
		region := grid.NewBox(rlo, rhi)
		b := NewCell(a.Alloc())
		rest := b.Unpack(region, a.Pack(region, nil))
		return len(rest) == 0 && MaxAbsDiff(a, b, region) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNorms(t *testing.T) {
	f := NewCell(box(grid.IV(0, 0, 0), grid.IV(2, 1, 1)))
	f.Set(grid.IV(0, 0, 0), 3)
	f.Set(grid.IV(1, 0, 0), -4)
	if got := MaxAbs(f, f.Alloc()); got != 4 {
		t.Errorf("MaxAbs = %v", got)
	}
	want := math.Sqrt((9.0 + 16.0) / 2.0)
	if got := L2Norm(f, f.Alloc()); math.Abs(got-want) > 1e-15 {
		t.Errorf("L2Norm = %v, want %v", got, want)
	}
	if L2Norm(f, grid.NewBox(grid.IV(0, 0, 0), grid.IV(0, 1, 1))) != 0 {
		t.Error("empty-region norm should be 0")
	}
}

func TestStrides(t *testing.T) {
	f := NewCell(box(grid.IV(0, 0, 0), grid.IV(5, 7, 2)))
	ys, zs := f.Strides()
	if ys != 5 || zs != 35 {
		t.Fatalf("strides = %d,%d", ys, zs)
	}
	// Walking with strides matches Index.
	c := grid.IV(2, 3, 1)
	if f.Index(c) != 1*zs+3*ys+2 {
		t.Fatal("stride arithmetic mismatch")
	}
}
