package field

import (
	"fmt"
	"math/bits"
	"sync"

	"sunuintah/internal/grid"
)

// The package-level slice pool behind steady-state-allocation-free
// stepping: warehouse variables, LDM staging buffers, halo-exchange
// payloads and kernel scratch all draw []float64 storage from here and
// return it when released, so after warm-up a timestep performs no heap
// allocation in the kernel or halo paths.
//
// Buffers are binned by power-of-two capacity: GetSlice(n) allocates with
// capacity rounded up to a power of two, so a recycled buffer lands back
// in the class it was taken from and serves any later request of similar
// size. The free lists are mutex-protected (not a sync.Pool): put/get of
// a []float64 through an interface would itself allocate the slice
// header, and the mutex keeps buffers alive across GCs, which matters for
// AllocsPerRun-style steady-state checks.

// maxPerClass bounds each size class so a transient burst (e.g. a large
// sweep) cannot pin memory forever; excess buffers fall to the GC.
const maxPerClass = 256

var slicePool struct {
	mu      sync.Mutex
	classes map[int][][]float64
}

// classFor returns the power-of-two capacity class serving requests of n
// values (the smallest power of two >= n, minimum 1).
func classFor(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// GetSlice returns a zeroed slice of length n from the pool (allocating
// one with power-of-two capacity on a miss). Safe for concurrent use.
func GetSlice(n int) []float64 {
	s := GetBuf(n)[:n]
	clear(s)
	return s
}

// GetBuf returns a zero-length slice with capacity >= n from the pool,
// for append-style fills (Pack payloads). Safe for concurrent use.
func GetBuf(n int) []float64 {
	c := classFor(n)
	slicePool.mu.Lock()
	if slicePool.classes != nil {
		if list := slicePool.classes[c]; len(list) > 0 {
			s := list[len(list)-1]
			list[len(list)-1] = nil
			slicePool.classes[c] = list[:len(list)-1]
			slicePool.mu.Unlock()
			return s[:0]
		}
	}
	slicePool.mu.Unlock()
	return make([]float64, 0, c)
}

// PutSlice returns a buffer to the pool. The caller must not use s (or
// any alias of its backing array) afterwards. Buffers whose capacity is
// not a power of two are binned by the largest power of two they can
// fully serve. nil and zero-capacity slices are ignored.
func PutSlice(s []float64) {
	c := cap(s)
	if c == 0 {
		return
	}
	// Bin by the largest power of two <= cap: every request routed to
	// that class fits.
	c = 1 << (bits.Len(uint(c)) - 1)
	slicePool.mu.Lock()
	if slicePool.classes == nil {
		slicePool.classes = map[int][][]float64{}
	}
	if list := slicePool.classes[c]; len(list) < maxPerClass {
		slicePool.classes[c] = append(list, s[:0])
	}
	slicePool.mu.Unlock()
}

// NewCellPooled allocates a field over box like NewCell, drawing storage
// from the pool. Recycle the cell to return the storage.
func NewCellPooled(box grid.Box) *Cell {
	if box.Empty() {
		panic(fmt.Sprintf("field: empty allocation box %v", box))
	}
	s := box.Size()
	return &Cell{
		alloc:  box,
		stride: [2]int{s.X, s.X * s.Y},
		data:   GetSlice(int(box.NumCells())),
	}
}

// NewCellPooledWithGhost is NewCellPooled over interior grown by ghost.
func NewCellPooledWithGhost(interior grid.Box, ghost int) *Cell {
	return NewCellPooled(interior.Grow(ghost))
}

// Recycle returns the cell's storage to the pool and clears the cell.
// The cell (and any alias of its data) must not be used afterwards.
// Recycling a nil or already-recycled cell is a no-op, so it composes
// with timing-only paths where cells are absent.
func (f *Cell) Recycle() {
	if f == nil || f.data == nil {
		return
	}
	PutSlice(f.data)
	f.data = nil
}
