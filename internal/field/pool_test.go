package field

import (
	"sync"
	"testing"

	"sunuintah/internal/grid"
)

func TestGetSliceZeroedAndSized(t *testing.T) {
	s := GetSlice(10)
	if len(s) != 10 || cap(s) < 10 {
		t.Fatalf("GetSlice(10): len=%d cap=%d", len(s), cap(s))
	}
	for i := range s {
		s[i] = float64(i + 1)
	}
	PutSlice(s)
	// The recycled buffer must come back zeroed.
	r := GetSlice(10)
	for i, v := range r {
		if v != 0 {
			t.Fatalf("recycled slice not zeroed at %d: %g", i, v)
		}
	}
	PutSlice(r)
}

func TestGetBufReuse(t *testing.T) {
	b := GetBuf(100)
	if len(b) != 0 || cap(b) < 100 {
		t.Fatalf("GetBuf(100): len=%d cap=%d", len(b), cap(b))
	}
	b = append(b, 1, 2, 3)
	PutSlice(b)
	if n := testing.AllocsPerRun(20, func() {
		s := GetBuf(100)
		s = append(s, 4, 5, 6)
		PutSlice(s)
	}); n != 0 {
		t.Errorf("GetBuf/PutSlice cycle allocates %v per run, want 0", n)
	}
}

func TestPutSliceOddCapacityStillServes(t *testing.T) {
	// A buffer grown by append may have a non-power-of-two capacity; it is
	// binned by the largest class it can fully serve.
	odd := make([]float64, 0, 100) // bins into class 64
	PutSlice(odd)
	s := GetBuf(60)
	if cap(s) < 60 {
		t.Fatalf("GetBuf(60) after odd put: cap=%d", cap(s))
	}
	PutSlice(s)
}

func TestClassFor(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1024: 1024, 1025: 2048}
	for n, want := range cases {
		if got := classFor(n); got != want {
			t.Errorf("classFor(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestCellRecycleRoundTrip(t *testing.T) {
	box := grid.NewBox(grid.IV(0, 0, 0), grid.IV(4, 4, 4))
	f := NewCellPooled(box)
	f.Fill(box, 7)
	f.Recycle()
	f.Recycle() // double recycle is a no-op
	var nilCell *Cell
	nilCell.Recycle() // nil recycle is a no-op

	g := NewCellPooled(box)
	if v := g.At(grid.IV(1, 2, 3)); v != 0 {
		t.Fatalf("pooled cell not zeroed: %g", v)
	}
	if n := testing.AllocsPerRun(20, func() {
		c := NewCellPooledWithGhost(box, 1)
		c.Recycle()
	}); n > 1 { // the Cell header itself may allocate; the data must not
		t.Errorf("pooled cell cycle allocates %v per run, want <= 1", n)
	}
	g.Recycle()
}

func TestPoolConcurrentAccess(t *testing.T) {
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := GetSlice(1 + i%512)
				s[0] = 1
				PutSlice(s)
			}
		}()
	}
	wg.Wait()
}
