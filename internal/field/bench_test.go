package field

import (
	"testing"

	"sunuintah/internal/grid"
)

// Halo-exchange micro-benchmarks: one ghost face of a 32^3 patch, the
// payload shape ExecuteStep packs per neighbour.

func haloFixture(b *testing.B) (*Cell, *Cell, grid.Box) {
	interior := grid.NewBox(grid.IV(0, 0, 0), grid.IV(32, 32, 32))
	f := NewCellWithGhost(interior, 1)
	g := NewCellWithGhost(interior, 1)
	i := 0.0
	f.FillFunc(f.Alloc(), func(c grid.IVec) float64 { i++; return i })
	face := grid.NewBox(grid.IV(0, 0, 31), grid.IV(32, 32, 32))
	return f, g, face
}

func BenchmarkPack(b *testing.B) {
	f, _, face := haloFixture(b)
	buf := GetBuf(int(face.NumCells()))
	b.SetBytes(face.NumCells() * 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = f.Pack(face, buf[:0])
	}
	b.StopTimer()
	PutSlice(buf)
}

func BenchmarkUnpack(b *testing.B) {
	f, g, face := haloFixture(b)
	buf := f.Pack(face, GetBuf(int(face.NumCells())))
	b.SetBytes(face.NumCells() * 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Unpack(face, buf)
	}
	b.StopTimer()
	PutSlice(buf)
}

func BenchmarkCopyRegion(b *testing.B) {
	f, g, face := haloFixture(b)
	b.SetBytes(face.NumCells() * 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.CopyRegion(f, face)
	}
}
