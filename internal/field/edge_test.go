package field

import (
	"testing"

	"sunuintah/internal/grid"
)

// Edge cases of the pack/unpack/copy trio: empty regions, single-row
// regions, and ghost-only slabs (regions entirely inside the ghost
// margin, which is what halo exchange actually moves).

func ghostedFixture() (*Cell, grid.Box) {
	interior := grid.NewBox(grid.IV(0, 0, 0), grid.IV(4, 4, 4))
	f := NewCellWithGhost(interior, 1)
	i := 0.0
	f.FillFunc(f.Alloc(), func(c grid.IVec) float64 {
		i++
		return i
	})
	return f, interior
}

func TestPackUnpackEmptyBox(t *testing.T) {
	f, _ := ghostedFixture()
	empty := grid.NewBox(grid.IV(2, 2, 2), grid.IV(2, 3, 3))
	buf := f.Pack(empty, nil)
	if len(buf) != 0 {
		t.Fatalf("packing an empty box produced %d values", len(buf))
	}
	if rest := f.Unpack(empty, buf); len(rest) != 0 {
		t.Fatalf("unpacking an empty box left %d values", len(rest))
	}
}

func TestCopyRegionEmptyBoxIsNoop(t *testing.T) {
	f, _ := ghostedFixture()
	g, _ := ghostedFixture()
	empty := grid.NewBox(grid.IV(1, 1, 1), grid.IV(1, 1, 1))
	// Must not panic even though an empty box trivially "fits" nowhere.
	f.CopyRegion(g, empty)
}

func TestPackUnpackSingleRow(t *testing.T) {
	f, _ := ghostedFixture()
	row := grid.NewBox(grid.IV(0, 2, 2), grid.IV(4, 3, 3))
	buf := f.Pack(row, nil)
	if len(buf) != 4 {
		t.Fatalf("single-row pack: %d values, want 4", len(buf))
	}
	g, _ := ghostedFixture()
	g.Fill(g.Alloc(), 0)
	rest := g.Unpack(row, buf)
	if len(rest) != 0 {
		t.Fatalf("single-row unpack left %d values", len(rest))
	}
	row.ForEach(func(c grid.IVec) {
		if g.At(c) != f.At(c) {
			t.Fatalf("row mismatch at %v: %g != %g", c, g.At(c), f.At(c))
		}
	})
}

func TestPackUnpackGhostOnlySlab(t *testing.T) {
	f, interior := ghostedFixture()
	// The low-z ghost plane: one cell thick, entirely outside the interior.
	slab := grid.NewBox(
		grid.IV(interior.Lo.X, interior.Lo.Y, interior.Lo.Z-1),
		grid.IV(interior.Hi.X, interior.Hi.Y, interior.Lo.Z))
	buf := f.Pack(slab, nil)
	if want := slab.NumCells(); int64(len(buf)) != want {
		t.Fatalf("ghost slab pack: %d values, want %d", len(buf), want)
	}
	g, _ := ghostedFixture()
	g.Fill(g.Alloc(), -1)
	g.Unpack(slab, buf)
	slab.ForEach(func(c grid.IVec) {
		if g.At(c) != f.At(c) {
			t.Fatalf("slab mismatch at %v", c)
		}
	})
	// Interior untouched by the ghost-only unpack.
	if v := g.At(interior.Lo); v != -1 {
		t.Fatalf("interior corrupted by ghost unpack: %g", v)
	}
}

func TestCopyRegionGhostOnlySlab(t *testing.T) {
	f, interior := ghostedFixture()
	g, _ := ghostedFixture()
	g.Fill(g.Alloc(), 0)
	slab := grid.NewBox(
		grid.IV(interior.Lo.X-1, interior.Lo.Y, interior.Lo.Z),
		grid.IV(interior.Lo.X, interior.Hi.Y, interior.Hi.Z))
	g.CopyRegion(f, slab)
	slab.ForEach(func(c grid.IVec) {
		if g.At(c) != f.At(c) {
			t.Fatalf("ghost copy mismatch at %v", c)
		}
	})
	if v := g.At(interior.Lo); v != 0 {
		t.Fatalf("copy leaked outside region: %g", v)
	}
}

// TestPackPooledZeroAlloc proves the halo pack/unpack path is
// allocation-free once the payload buffer comes from the pool.
func TestPackPooledZeroAlloc(t *testing.T) {
	f, interior := ghostedFixture()
	g, _ := ghostedFixture()
	slab := grid.NewBox(
		grid.IV(interior.Lo.X, interior.Lo.Y, interior.Hi.Z-1),
		interior.Hi)
	n := int(slab.NumCells())
	PutSlice(GetBuf(n)) // warm the class
	if allocs := testing.AllocsPerRun(20, func() {
		buf := GetBuf(n)
		buf = f.Pack(slab, buf)
		g.Unpack(slab, buf)
		PutSlice(buf)
	}); allocs != 0 {
		t.Errorf("pooled pack/unpack allocates %v per run, want 0", allocs)
	}
}
