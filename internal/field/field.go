// Package field implements cell-centred variable storage on patches: a
// contiguous float64 array covering a patch plus an optional ghost margin,
// with region copies and pack/unpack used for ghost exchange and MPI
// payloads.
package field

import (
	"fmt"
	"math"

	"sunuintah/internal/grid"
)

// Cell is a cell-centred double-precision field allocated over a box
// (usually a patch box grown by the ghost width). Storage is x-fastest,
// z-slowest, matching grid.Box.ForEach order.
type Cell struct {
	alloc  grid.Box
	stride [2]int // y stride, z stride (x stride is 1)
	data   []float64
}

// NewCell allocates a field over box (every value zero).
func NewCell(box grid.Box) *Cell {
	if box.Empty() {
		panic(fmt.Sprintf("field: empty allocation box %v", box))
	}
	s := box.Size()
	return &Cell{
		alloc:  box,
		stride: [2]int{s.X, s.X * s.Y},
		data:   make([]float64, box.NumCells()),
	}
}

// NewCellWithGhost allocates a field over interior grown by ghost cells.
func NewCellWithGhost(interior grid.Box, ghost int) *Cell {
	return NewCell(interior.Grow(ghost))
}

// Alloc returns the allocated (ghost-inclusive) box.
func (f *Cell) Alloc() grid.Box { return f.alloc }

// Data exposes the raw storage in allocation order. Kernels use it for
// speed; the slice must not be resized.
func (f *Cell) Data() []float64 { return f.data }

// Index returns the storage offset of cell c. It panics if c is outside
// the allocated box.
func (f *Cell) Index(c grid.IVec) int {
	r := c.Sub(f.alloc.Lo)
	if r.X < 0 || r.Y < 0 || r.Z < 0 {
		panic(fmt.Sprintf("field: cell %v below allocation %v", c, f.alloc))
	}
	s := f.alloc.Size()
	if r.X >= s.X || r.Y >= s.Y || r.Z >= s.Z {
		panic(fmt.Sprintf("field: cell %v above allocation %v", c, f.alloc))
	}
	return r.Z*f.stride[1] + r.Y*f.stride[0] + r.X
}

// At returns the value at cell c.
func (f *Cell) At(c grid.IVec) float64 { return f.data[f.Index(c)] }

// Set stores v at cell c.
func (f *Cell) Set(c grid.IVec, v float64) { f.data[f.Index(c)] = v }

// Strides returns (yStride, zStride); the x stride is 1.
func (f *Cell) Strides() (int, int) { return f.stride[0], f.stride[1] }

// Fill sets every cell in region to v. The region must lie inside the
// allocation.
func (f *Cell) Fill(region grid.Box, v float64) {
	f.forRows(region, func(base, n int) {
		row := f.data[base : base+n]
		for i := range row {
			row[i] = v
		}
	})
}

// FillFunc sets every cell in region to fn(c).
func (f *Cell) FillFunc(region grid.Box, fn func(c grid.IVec) float64) {
	region.ForEach(func(c grid.IVec) { f.data[f.Index(c)] = fn(c) })
}

// CopyRegion copies region from src into f. The region must be allocated
// in both fields; cell coordinates are global, so this performs the
// neighbour-ghost copy used by same-rank dependencies.
func (f *Cell) CopyRegion(src *Cell, region grid.Box) {
	if region.Empty() {
		return
	}
	if !f.alloc.ContainsBox(region) {
		panic(fmt.Sprintf("field: copy region %v outside dst allocation %v", region, f.alloc))
	}
	if !src.alloc.ContainsBox(region) {
		panic(fmt.Sprintf("field: copy region %v outside src allocation %v", region, src.alloc))
	}
	// Row-wise copy using both fields' strides.
	for k := region.Lo.Z; k < region.Hi.Z; k++ {
		for j := region.Lo.Y; j < region.Hi.Y; j++ {
			lo := grid.IV(region.Lo.X, j, k)
			d := f.Index(lo)
			s := src.Index(lo)
			n := region.Hi.X - region.Lo.X
			copy(f.data[d:d+n], src.data[s:s+n])
		}
	}
}

// Pack appends region's values (in ForEach order) to buf and returns the
// extended slice. Used to serialise ghost regions into MPI payloads.
func (f *Cell) Pack(region grid.Box, buf []float64) []float64 {
	f.forRows(region, func(base, n int) {
		buf = append(buf, f.data[base:base+n]...)
	})
	return buf
}

// Unpack reads region's values from buf (written by Pack with the same
// region) and returns the remaining tail of buf.
func (f *Cell) Unpack(region grid.Box, buf []float64) []float64 {
	f.forRows(region, func(base, n int) {
		copy(f.data[base:base+n], buf[:n])
		buf = buf[n:]
	})
	return buf
}

// forRows invokes fn(baseIndex, rowLen) for every x-row of region.
func (f *Cell) forRows(region grid.Box, fn func(base, n int)) {
	if region.Empty() {
		return
	}
	if !f.alloc.ContainsBox(region) {
		panic(fmt.Sprintf("field: region %v outside allocation %v", region, f.alloc))
	}
	n := region.Hi.X - region.Lo.X
	for k := region.Lo.Z; k < region.Hi.Z; k++ {
		for j := region.Lo.Y; j < region.Hi.Y; j++ {
			fn(f.Index(grid.IV(region.Lo.X, j, k)), n)
		}
	}
}

// MaxAbsDiff returns the largest absolute difference between f and g over
// region (allocated in both).
func MaxAbsDiff(f, g *Cell, region grid.Box) float64 {
	maxd := 0.0
	region.ForEach(func(c grid.IVec) {
		if d := math.Abs(f.At(c) - g.At(c)); d > maxd {
			maxd = d
		}
	})
	return maxd
}

// L2Norm returns the root-mean-square of f over region.
func L2Norm(f *Cell, region grid.Box) float64 {
	var sum float64
	var n int64
	region.ForEach(func(c grid.IVec) {
		v := f.At(c)
		sum += v * v
		n++
	})
	if n == 0 {
		return 0
	}
	return math.Sqrt(sum / float64(n))
}

// MaxAbs returns the largest absolute value of f over region.
func MaxAbs(f *Cell, region grid.Box) float64 {
	maxv := 0.0
	region.ForEach(func(c grid.IVec) {
		if v := math.Abs(f.At(c)); v > maxv {
			maxv = v
		}
	})
	return maxv
}
