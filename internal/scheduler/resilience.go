package scheduler

import (
	"fmt"

	"sunuintah/internal/sim"
	"sunuintah/internal/taskgraph"
	"sunuintah/internal/trace"
)

// This file is the scheduler's recovery layer under fault injection: every
// offload carries a deadline derived from its healthy-cost estimate; a
// deadline miss (an injected stall, or a straggler beyond the deadline
// factor) aborts the gang and retries with exponential backoff; gangs that
// keep failing are marked unhealthy and their kernels degrade to MPE
// execution, so the rank always makes progress. All entry points are gated
// on s.inj != nil — fault-free runs never reach this code.

// mark emits a zero-duration fault-plane trace marker.
func (s *Rank) mark(step int, kind trace.Kind, name string, at sim.Time) {
	s.cfg.Trace.Add(trace.Event{Rank: s.mpi.RankID(), Step: step, Kind: kind,
		Name: name, Start: at, End: at})
}

// handleOffloadTimeout aborts a slot's overdue offload and either schedules
// a backed-off retry or degrades the task to the MPE.
func (s *Rank) handleOffloadTimeout(p *sim.Process, step int, t, dt float64, sl *slot, completed *int) error {
	now := p.Now()
	obj := sl.obj
	fs := s.faultStats()
	fs.OffloadTimeouts++
	sl.off.Abort()
	sl.off = nil
	sl.obj = nil
	s.probeGangs()
	sl.flag.Reset()
	sl.attempts++
	sl.consecFails++
	s.cfg.Probes.Fault(now)
	s.mark(step, trace.KindFault, fmt.Sprintf("offload-timeout %s try=%d", obj.Task.Name, sl.attempts), now)

	plan := s.inj.Plan()
	if !sl.unhealthy && sl.consecFails >= plan.UnhealthyAfter {
		// The gang failed too many offloads in a row: take it out of
		// rotation for the rest of the run.
		sl.unhealthy = true
		fs.UnhealthyGangs++
		s.mark(step, trace.KindFault, "gang-unhealthy", now)
	}
	if sl.unhealthy || sl.attempts > plan.MaxRetries {
		sl.attempts = 0
		return s.fallbackToMPE(p, step, t, dt, obj, completed)
	}
	// Exponential backoff from half the healthy estimate.
	backoff := sl.estimate / 2 * sim.Time(int64(1)<<uint(sl.attempts-1))
	sl.pending = obj
	sl.retryAt = now + backoff
	return nil
}

// retryPending relaunches a slot's aborted object once its backoff expires.
func (s *Rank) retryPending(p *sim.Process, step int, t, dt float64, sl *slot) error {
	obj := sl.pending
	sl.pending = nil
	fs := s.faultStats()
	fs.Reoffloads++
	s.cfg.Probes.Recovery(p.Now())
	s.mark(step, trace.KindRecovery, fmt.Sprintf("re-offload %s try=%d", obj.Task.Name, sl.attempts+1), p.Now())
	return s.offload(p, step, t, dt, obj, sl)
}

// fallbackToMPE executes a kernel object on the MPE — graceful degradation
// when a gang is unhealthy or an offload has exhausted its retries. The
// MPE path recomputes the task from the same warehouse inputs, so the
// numerics match the offloaded kernel exactly.
func (s *Rank) fallbackToMPE(p *sim.Process, step int, t, dt float64, obj *taskgraph.Object, completed *int) error {
	fs := s.faultStats()
	fs.MPEFallbacks++
	s.cfg.Probes.Recovery(p.Now())
	s.mark(step, trace.KindRecovery, fmt.Sprintf("mpe-fallback %s", obj.Task.Name), p.Now())
	if err := s.runOnMPE(p, step, t, dt, obj); err != nil {
		return err
	}
	s.completeObject(obj, completed)
	return nil
}

// drainToMPE runs every prepared and ready kernel object on the MPE: the
// degraded mode once all gangs are unhealthy. Reports whether it executed
// anything.
func (s *Rank) drainToMPE(p *sim.Process, step int, t, dt float64, completed *int) (bool, error) {
	progressed := false
	for {
		var obj *taskgraph.Object
		if len(s.prepared) > 0 {
			obj = s.prepared[0]
			s.prepared = s.prepared[1:]
			s.cfg.Probes.Prepared(p.Now(), len(s.prepared))
		} else {
			obj = s.nextReady(true)
			if obj == nil {
				return progressed, nil
			}
			if err := s.processMPEPart(p, step, t, obj); err != nil {
				return progressed, err
			}
		}
		if err := s.fallbackToMPE(p, step, t, dt, obj, completed); err != nil {
			return progressed, err
		}
		progressed = true
	}
}

// syncOffloadWait blocks on a sync-mode offload's completion flag with the
// fault deadline armed: on a timeout the gang is aborted and the kernel is
// retried (after backoff, still blocking) or degraded to the MPE. Used in
// place of the plain flag spin when an injector is attached.
func (s *Rank) syncOffloadWait(p *sim.Process, step int, t, dt float64, sl *slot, completed *int) error {
	eng := s.cg.Engine()
	n := int64(sl.group.NumCPEs())
	for {
		if sl.flag.Value() >= n {
			s.completeObject(sl.obj, completed)
			s.clearSlot(sl)
			return nil
		}
		wake := sim.NewSignal(eng, fmt.Sprintf("rank%d.syncwait", s.mpi.RankID()))
		sl.flag.OnReach(n, wake.Fire)
		var dl sim.EventHandle
		if sl.deadline > p.Now() {
			dl = eng.Schedule(sl.deadline-p.Now(), wake.Fire)
		} else {
			dl = eng.Schedule(0, wake.Fire)
		}
		t0 := p.Now()
		wake.Wait(p)
		s.Stats.KernelWaitTime += p.Now() - t0
		dl.Cancel()
		if sl.flag.Value() >= n {
			s.completeObject(sl.obj, completed)
			s.clearSlot(sl)
			return nil
		}
		// Deadline hit: abort and either retry (blocking through the
		// backoff, as the synchronous scheduler cannot do anything else)
		// or fall back to the MPE.
		if err := s.handleOffloadTimeout(p, step, t, dt, sl, completed); err != nil {
			return err
		}
		if sl.pending == nil {
			return nil // degraded to the MPE inside handleOffloadTimeout
		}
		if wait := sl.retryAt - p.Now(); wait > 0 {
			s.charge(p, wait, &s.Stats.IdleTime, trace.KindIdle, step, "retry backoff")
		}
		if err := s.retryPending(p, step, t, dt, sl); err != nil {
			return err
		}
	}
}

// clearSlot resets a slot's per-offload state after completion.
func (s *Rank) clearSlot(sl *slot) {
	sl.obj = nil
	sl.off = nil
	sl.attempts = 0
	sl.consecFails = 0
	s.probeGangs()
}
