package scheduler

import "sunuintah/internal/sim"

// rankSnap is the scheduler's rewindable cross-step state: the stats
// buckets, the measured per-patch costs, the warehouse pair and the core
// group's counters. Intra-step machinery (pending sends/receives, offload
// slots, work-ahead queue) is transient and empty at step boundaries,
// which is where snapshots are taken.
type rankSnap struct {
	stats     Stats
	faults    *FaultStats
	patchCost map[int]sim.Time
	dws       any
	cg        any
}

// SaveState deep-copies the rank's step-boundary state (the
// sim.StateSaver shape). It must be called between steps — with tasks in
// flight the transient queues are not captured.
func (s *Rank) SaveState() any {
	snap := rankSnap{
		stats:     s.Stats,
		patchCost: make(map[int]sim.Time, len(s.patchCost)),
		dws:       s.DWs.SaveState(),
		cg:        s.cg.SaveState(),
	}
	if s.Stats.Faults != nil {
		f := *s.Stats.Faults
		snap.faults = &f
	}
	for k, v := range s.patchCost {
		snap.patchCost[k] = v
	}
	return snap
}

// RestoreState rewinds the rank to a SaveState snapshot: warehouses
// first (their free/allocate churn moves the core group's accounting),
// then the core group overwrite that makes the accounting exact, then
// the scheduler's own counters.
func (s *Rank) RestoreState(state any) {
	snap := state.(rankSnap)
	s.DWs.RestoreState(snap.dws)
	s.cg.RestoreState(snap.cg)
	s.Stats = snap.stats
	s.Stats.Faults = nil
	if snap.faults != nil {
		f := *snap.faults
		s.Stats.Faults = &f
	}
	s.patchCost = make(map[int]sim.Time, len(snap.patchCost))
	for k, v := range snap.patchCost {
		s.patchCost[k] = v
	}
	s.prepared = s.prepared[:0]
}
