package scheduler

import (
	"fmt"
	"sunuintah/internal/field"
	"sunuintah/internal/grid"

	"sunuintah/internal/mpisim"
	"sunuintah/internal/sim"
	"sunuintah/internal/taskgraph"
	"sunuintah/internal/trace"
)

// bcFlopsPerCell is the counted floating-point work of one boundary-
// condition evaluation on the MPE: a product of three phi values, six
// exponentials plus the rational combination.
const bcFlopsPerCell = 221

// ExecuteStep runs one timestep of the compiled task graph on this rank,
// following the MPE task-scheduler loop of Section V-C:
//
//  1. post non-blocking receives for tasks depending on remote data,
//  2. when the CPE completion flag is set, complete the running task,
//     select the next ready offloadable task, process its MPE part and
//     offload it (asynchronously, synchronously, or run it on the MPE),
//  3. test posted sends and receives and update dependent task states,
//  4. execute ready MPE tasks such as reductions.
//
// t is the old warehouse's time level and dt the step size. On return, all
// local tasks have completed, all sends have drained, and the warehouses
// have swapped.
func (s *Rank) ExecuteStep(p *sim.Process, step int, t, dt float64) error {
	g := s.graph
	g.ResetForStep()
	if s.cfg.Scrub {
		s.resetConsumers()
	}
	nPatches := g.Level.Layout.NumPatches()
	tagOf := func(e *taskgraph.Edge) int { return step*g.NumTags() + e.BaseTag(nPatches) }

	// Step 1 and step 4 of Section V-C: prepare for scheduling (flags,
	// athread environment) and check whether task-graph recompilation,
	// load balancing or regridding is needed. This per-step infrastructure
	// cost is what limits strong scaling once kernels get short.
	s.charge(p, sim.Time(s.params.StepFixedCost), &s.Stats.MPEWorkTime,
		trace.KindMPEWork, step, "step setup/teardown")

	// Step 3a: post non-blocking receives.
	s.recvs = s.recvs[:0]
	for _, e := range g.Recvs {
		t0 := p.Now()
		req := s.mpi.Irecv(p, e.SrcRank, tagOf(e))
		s.noteComm(p, t0, step, s.note("irecv ", e.Label.Name()))
		s.recvs = append(s.recvs, pendingRecv{edge: e, req: req})
	}

	// Post sends: the data they carry was completed by the previous
	// timestep (or initialisation), so it is ready now. Packing is MPE
	// work.
	s.sends = s.sends[:0]
	for _, e := range g.Sends {
		var payload []float64
		if s.cfg.Functional {
			// The payload buffer is pooled: the receiver recycles it after
			// unpacking (unpackRecv), so steady-state halo exchange
			// allocates nothing.
			f := s.DWs.Old.Get(e.Label, e.Src)
			payload = field.GetBuf(int(e.Bytes / 8))
			for _, r := range e.Regions {
				payload = f.Pack(r, payload)
			}
		}
		s.charge(p, sim.Time(s.params.LocalCopyTime(e.Bytes)), &s.Stats.MPEWorkTime,
			trace.KindMPEWork, step, s.note("pack ", e.Label.Name()))
		t0 := p.Now()
		req := s.mpi.Isend(p, e.DstRank, tagOf(e), payload, e.Bytes)
		s.noteComm(p, t0, step, s.note("isend ", e.Label.Name()))
		s.sends = append(s.sends, pendingSend{req: req})
	}

	completed := 0
	total := len(g.Objects)
	s.cfg.Probes.QueueDepth(p.Now(), total)
	s.cfg.Probes.Prepared(p.Now(), len(s.prepared))

	for {
		progressed := false

		// Step 3b: completion-flag checks on every CPE slot. Under fault
		// injection this is also where overdue offloads are aborted and
		// backed-off retries are relaunched.
		for _, sl := range s.slots {
			if sl.pending != nil {
				if sl.unhealthy {
					obj := sl.pending
					sl.pending = nil
					if err := s.fallbackToMPE(p, step, t, dt, obj, &completed); err != nil {
						return err
					}
					progressed = true
				} else if p.Now() >= sl.retryAt {
					if err := s.retryPending(p, step, t, dt, sl); err != nil {
						return err
					}
					progressed = true
				}
			}
			if sl.obj == nil {
				continue
			}
			s.charge(p, sim.Time(s.params.PollCost), &s.Stats.CommTime,
				trace.KindComm, step, "poll flag")
			if sl.flag.Value() >= int64(sl.group.NumCPEs()) {
				s.completeObject(sl.obj, &completed)
				s.clearSlot(sl)
				progressed = true
			} else if s.inj != nil && p.Now() >= sl.deadline {
				if err := s.handleOffloadTimeout(p, step, t, dt, sl, &completed); err != nil {
					return err
				}
				progressed = true
			}
		}

		// Graceful degradation: with every gang unhealthy no slot will ever
		// be free again, so kernels execute on the MPE instead.
		if s.inj != nil && s.cfg.Mode != ModeMPEOnly && s.allUnhealthy() {
			did, err := s.drainToMPE(p, step, t, dt, &completed)
			if err != nil {
				return err
			}
			progressed = progressed || did
		}

		// Offload ready kernels into free slots (or run them on the MPE).
		// Objects prepared ahead of time go first — their MPE part is
		// already done.
		for {
			sl := s.freeSlot()
			if sl == nil {
				break
			}
			var obj *taskgraph.Object
			if len(s.prepared) > 0 {
				obj = s.prepared[0]
				s.prepared = s.prepared[1:]
				s.cfg.Probes.Prepared(p.Now(), len(s.prepared))
			} else {
				obj = s.nextReady(true)
				if obj == nil {
					break
				}
				if err := s.processMPEPart(p, step, t, obj); err != nil {
					return err
				}
			}
			if s.cfg.Mode == ModeMPEOnly {
				if err := s.runOnMPE(p, step, t, dt, obj); err != nil {
					return err
				}
				s.completeObject(obj, &completed)
			} else {
				if err := s.offload(p, step, t, dt, obj, sl); err != nil {
					return err
				}
				if s.cfg.Mode == ModeSync {
					if s.inj != nil {
						// Blocking wait with the fault deadline armed, so a
						// stalled gang is aborted and recovered.
						if err := s.syncOffloadWait(p, step, t, dt, sl, &completed); err != nil {
							return err
						}
					} else {
						// Spin until the completion flag is set: no overlap
						// of computation with other work (Section V-C).
						t0 := p.Now()
						sl.flag.WaitFor(p, int64(sl.group.NumCPEs()))
						s.Stats.KernelWaitTime += p.Now() - t0
						s.cfg.Trace.Add(trace.Event{Rank: s.mpi.RankID(), Step: step,
							Kind: trace.KindKernel, Name: "spin " + obj.Task.Name,
							Start: t0, End: p.Now()})
						s.completeObject(sl.obj, &completed)
						sl.obj = nil
						s.probeGangs()
					}
				}
			}
			progressed = true
		}

		// Work-ahead (asynchronous mode): while the CPEs are busy, process
		// the MPE part of the next ready kernel — allocate its outputs,
		// copy same-rank ghosts, fill boundary conditions — so it can be
		// offloaded the instant the completion flag is set. This is the
		// "continues with jobs" overlap of Section V-C applied to task
		// preparation; the synchronous scheduler, spinning on the flag,
		// cannot do any of it.
		if s.cfg.Mode == ModeAsync {
			for len(s.prepared) < len(s.slots) {
				obj := s.nextReady(true)
				if obj == nil {
					break
				}
				if err := s.processMPEPart(p, step, t, obj); err != nil {
					return err
				}
				obj.State = taskgraph.StatePrepared
				s.prepared = append(s.prepared, obj)
				s.cfg.Probes.Prepared(p.Now(), len(s.prepared))
				progressed = true
			}
		}

		// Step 3c: test posted receives and sends; completed receives are
		// unpacked and release their dependent tasks.
		for i := range s.recvs {
			r := &s.recvs[i]
			if r.done {
				continue
			}
			t0 := p.Now()
			ok := s.mpi.Test(p, r.req)
			s.noteComm(p, t0, step, "test recv")
			if !ok {
				continue
			}
			r.done = true
			s.unpackRecv(p, step, r)
			// The request is fully consumed (payload unpacked above):
			// hand it back to the rank's pool.
			s.mpi.Free(r.req)
			r.req = nil
			progressed = true
		}
		// The send sweep only retires request handles — completed sends
		// release no work — so its polls coalesce into one batched sweep
		// (one engine event instead of one per request). The per-request
		// spans are synthesized at the exact instants the serial polls
		// would have occupied, so accounting and traces are unchanged.
		s.sweepIdx = s.sweepIdx[:0]
		s.sweepReqs = s.sweepReqs[:0]
		for i := range s.sends {
			if !s.sends[i].done {
				s.sweepIdx = append(s.sweepIdx, i)
				s.sweepReqs = append(s.sweepReqs, s.sends[i].req)
			}
		}
		if len(s.sweepReqs) > 0 {
			// Span boundaries accumulate the per-test cost exactly as the
			// serial polls' clock did, so times and CommTime stay bitwise
			// identical whether or not the sweep was coalesced.
			start := p.Now()
			s.sweepOks = s.mpi.TestSweepInto(p, s.sweepReqs, s.sweepOks[:0])
			for k, i := range s.sweepIdx {
				sd := &s.sends[i]
				if s.sweepOks[k] {
					sd.done = true
					// Send requests carry no payload to read back: retire
					// the handle into the rank's pool right away.
					s.mpi.Free(sd.req)
					sd.req = nil
				}
				end := start + sim.Time(s.params.MPITestCost)
				s.noteCommSpan(start, end, step, "test send")
				start = end
			}
		}

		// Step 3d: execute ready MPE tasks (reductions, small kernels).
		for {
			obj := s.nextReady(false)
			if obj == nil {
				break
			}
			if err := s.runMPEObject(p, step, t, obj); err != nil {
				return err
			}
			s.completeObject(obj, &completed)
			progressed = true
		}

		if completed == total && s.commDrained() {
			break
		}
		if !progressed {
			s.waitForEvent(p, step)
		}
	}

	// Step 4: the timestep is finished; the new warehouse becomes old.
	s.DWs.Swap()
	s.Stats.StepsRun++
	return nil
}

// noteComm attributes the virtual time an MPI call consumed to the
// communication bucket.
func (s *Rank) noteComm(p *sim.Process, t0 sim.Time, step int, name string) {
	s.noteCommSpan(t0, p.Now(), step, name)
}

// noteCommSpan attributes an explicit [start, end) interval to the
// communication bucket — used by batched sweeps, which synthesize the
// per-request spans the serial polls would have produced.
func (s *Rank) noteCommSpan(start, end sim.Time, step int, name string) {
	d := end - start
	if d <= 0 {
		return
	}
	s.Stats.CommTime += d
	s.cfg.Trace.Add(trace.Event{Rank: s.mpi.RankID(), Step: step,
		Kind: trace.KindComm, Name: name, Start: start, End: end})
}

// nextReady returns the lowest-index ready object, selecting offloadable
// kernels or MPE-side tasks. In in-order mode, an object is only eligible
// once every lower-index object of the same class has at least started.
func (s *Rank) nextReady(offloadable bool) *taskgraph.Object {
	for _, o := range s.graph.Objects {
		isKernel := o.Task.Kind == taskgraph.KindOffload
		if isKernel != offloadable {
			continue
		}
		if o.State == taskgraph.StateReady {
			return o
		}
		if s.cfg.InOrder && o.State == taskgraph.StateWaiting {
			// The next-in-order object is not ready yet: wait for it
			// rather than skipping ahead.
			return nil
		}
	}
	return nil
}

// completeObject marks an object done, releases its downstream
// dependencies, and scrubs any new-warehouse inputs whose last consumer
// this was.
func (s *Rank) completeObject(o *taskgraph.Object, completed *int) {
	o.State = taskgraph.StateCompleted
	*completed++
	s.Stats.TasksRun++
	s.cfg.Probes.QueueDelta(s.cg.Engine().Now(), -1)
	for _, d := range o.Downstream {
		d.PendingDeps--
		if d.PendingDeps == 0 && d.State == taskgraph.StateWaiting {
			d.State = taskgraph.StateReady
		}
	}
	if !s.cfg.Scrub {
		return
	}
	for _, d := range o.Task.Requires {
		if d.DW != taskgraph.NewDW {
			continue
		}
		if o.Patch != nil {
			s.noteConsumed(d.Label, o.Patch.ID)
		} else {
			for _, p := range s.graph.LocalPatches {
				if !o.Task.AppliesTo(p.ID) {
					continue
				}
				s.noteConsumed(d.Label, p.ID)
			}
		}
	}
}

// processMPEPart performs the MPE-side work of a selected task object:
// task bookkeeping, allocating its outputs in the new warehouse, copying
// same-rank ghost regions, and filling physical-boundary ghosts.
func (s *Rank) processMPEPart(p *sim.Process, step int, t float64, obj *taskgraph.Object) error {
	s.charge(p, sim.Time(s.params.TaskFixedCost), &s.Stats.MPEWorkTime,
		trace.KindMPEWork, step, s.note("select ", obj.Task.Name))

	for _, d := range obj.Task.Computes {
		if s.DWs.New.Exists(d.Label, obj.Patch) {
			continue
		}
		if err := s.DWs.New.Allocate(d.Label, obj.Patch, s.maxGhost[d.Label]); err != nil {
			return err
		}
		bytes := s.DWs.New.Bytes(d.Label, obj.Patch)
		s.charge(p, sim.Time(s.params.TouchTime(bytes)), &s.Stats.MPEWorkTime,
			trace.KindMPEWork, step, s.note("touch ", d.Label.Name()))
	}

	for _, cr := range obj.LocalCopies {
		if s.cfg.Functional {
			dst := s.DWs.Old.Get(cr.Label, obj.Patch)
			src := s.DWs.Old.Get(cr.Label, cr.Src)
			for _, r := range cr.Regions {
				dst.CopyRegion(src, r)
			}
		}
		s.charge(p, sim.Time(s.params.LocalCopyTime(2*cr.Bytes)), &s.Stats.MPEWorkTime,
			trace.KindMPEWork, step, s.note("ghost copy ", cr.Label.Name()))
	}

	for _, bc := range obj.BCFills {
		if s.cfg.Functional {
			f := s.DWs.Old.Get(bc.Label, obj.Patch)
			lv := s.graph.Level
			fill := bc.Label.BC
			for _, r := range bc.Regions {
				if fill == nil {
					f.Fill(r, 0)
					continue
				}
				f.FillFunc(r, func(c grid.IVec) float64 {
					x, y, z := lv.CellCenter(c)
					return fill(x, y, z, t)
				})
			}
		}
		s.charge(p, sim.Time(s.params.BCFillTime(bc.Cells)), &s.Stats.MPEWorkTime,
			trace.KindMPEWork, step, s.note("bc fill ", bc.Label.Name()))
		s.cg.Counters.MPEFlops += bc.Cells * bcFlopsPerCell
	}
	return nil
}

// unpackRecv copies a completed receive's payload into the destination
// patch's ghost margin and releases dependent tasks.
func (s *Rank) unpackRecv(p *sim.Process, step int, r *pendingRecv) {
	e := r.edge
	if s.cfg.Functional {
		f := s.DWs.Old.Get(e.Label, e.Dst)
		payload := r.req.Payload()
		buf := payload
		for _, region := range e.Regions {
			buf = f.Unpack(region, buf)
		}
		if len(buf) != 0 {
			panic(fmt.Sprintf("scheduler: recv payload for %s %v->%v has %d values left over",
				e.Label.Name(), e.Src, e.Dst, len(buf)))
		}
		// The payload came from the sender's pool draw and is fully
		// consumed: recycle it. Duplicate deliveries under fault injection
		// are suppressed by sequence number before their payload is read,
		// and resends stop once the receive has matched, so nothing reads
		// this buffer again.
		field.PutSlice(payload)
	}
	s.charge(p, sim.Time(s.params.LocalCopyTime(e.Bytes)), &s.Stats.MPEWorkTime,
		trace.KindMPEWork, step, s.note("unpack ", e.Label.Name()))
	for _, o := range e.DstObjs {
		o.PendingDeps--
		if o.PendingDeps == 0 && o.State == taskgraph.StateWaiting {
			o.State = taskgraph.StateReady
		}
	}
}

// runMPEObject executes a ready MPE-side object: a small MPE task or a
// reduction.
func (s *Rank) runMPEObject(p *sim.Process, step int, t float64, obj *taskgraph.Object) error {
	switch obj.Task.Kind {
	case taskgraph.KindMPE:
		return s.runMPETask(p, step, obj)
	case taskgraph.KindReduction:
		return s.runReduction(p, step, obj)
	}
	return fmt.Errorf("scheduler: object %q is not an MPE task", obj.Task.Name)
}

func (s *Rank) runMPETask(p *sim.Process, step int, obj *taskgraph.Object) error {
	task := obj.Task
	for _, d := range task.Computes {
		if s.DWs.New.Exists(d.Label, obj.Patch) {
			continue
		}
		if err := s.DWs.New.Allocate(d.Label, obj.Patch, s.maxGhost[d.Label]); err != nil {
			return err
		}
	}
	cells := obj.Patch.NumCells()
	s.charge(p, sim.Time(s.params.MPEKernelTime(cells, task.MPECostWeight)),
		&s.Stats.MPEKernelTime, trace.KindMPEKern, step, task.Name)
	if s.cfg.Functional && task.MPERun != nil {
		ins := map[*taskgraph.Label]*field.Cell{}
		outs := map[*taskgraph.Label]*field.Cell{}
		for _, d := range task.Requires {
			ins[d.Label] = s.DWs.Select(d.DW).Get(d.Label, obj.Patch)
		}
		for _, d := range task.Computes {
			outs[d.Label] = s.DWs.New.Get(d.Label, obj.Patch)
		}
		task.MPERun(obj.Patch, ins, outs)
	}
	return nil
}

func (s *Rank) runReduction(p *sim.Process, step int, obj *taskgraph.Object) error {
	task := obj.Task
	d := task.Requires[0]
	var partial float64
	switch task.Reduce.Op {
	case mpisim.OpMax:
		partial = negInf
	case mpisim.OpMin:
		partial = posInf
	}
	var bytes int64
	for _, patch := range s.graph.LocalPatches {
		// A patch-filtered reduction folds (and pays for) only its own
		// patches; its predicate must match its producer's.
		if !task.AppliesTo(patch.ID) {
			continue
		}
		bytes += patch.NumCells() * 8
		if s.cfg.Functional && task.Reduce.Local != nil {
			v := task.Reduce.Local(patch, s.DWs.Select(d.DW).Get(d.Label, patch))
			switch task.Reduce.Op {
			case mpisim.OpSum:
				partial += v
			case mpisim.OpMax:
				if v > partial {
					partial = v
				}
			case mpisim.OpMin:
				if v < partial {
					partial = v
				}
			}
		}
	}
	s.charge(p, sim.Time(s.params.LocalCopyTime(bytes)), &s.Stats.MPEWorkTime,
		trace.KindReduce, step, s.note("local reduce ", task.Name))
	t0 := p.Now()
	result := s.mpi.Allreduce(p, partial, task.Reduce.Op)
	s.Stats.CommTime += p.Now() - t0
	s.cfg.Trace.Add(trace.Event{Rank: s.mpi.RankID(), Step: step,
		Kind: trace.KindReduce, Name: task.Name, Start: t0, End: p.Now()})
	if task.Reduce.Result != nil {
		task.Reduce.Result(step, result)
	}
	return nil
}

// commDrained reports whether every posted send and receive has been
// observed complete.
func (s *Rank) commDrained() bool {
	for i := range s.recvs {
		if !s.recvs[i].done {
			return false
		}
	}
	for i := range s.sends {
		if !s.sends[i].done {
			return false
		}
	}
	return true
}

// waitForEvent parks the MPE until something it is waiting on can make
// progress: a completion flag reaching its threshold or an outstanding
// request finishing on the wire. The virtual time spent corresponds to the
// scheduler's idle polling.
func (s *Rank) waitForEvent(p *sim.Process, step int) {
	eng := s.cg.Engine()
	if s.wakeName == "" {
		s.wakeName = fmt.Sprintf("rank%d.wake", s.mpi.RankID())
	}
	// In fault-free runs the one-shot wake signal is pooled: stale
	// registrations only live on still-unfired request signals and flag
	// counters that this park re-arms anyway, so an extra Fire from an old
	// registration is an idempotent no-op at the exact instant a fresh
	// registration would have fired. Under fault injection aborted
	// offloads can leave registrations on counters that reach their
	// threshold much later, so each park gets a fresh signal there.
	var wake *sim.Signal
	var fire func()
	if s.inj == nil {
		if s.wake == nil {
			s.wake = sim.NewSignal(eng, s.wakeName)
			s.wakeFire = s.wake.Fire
		} else {
			s.wake.Init(eng, s.wakeName)
		}
		wake, fire = s.wake, s.wakeFire
	} else {
		wake = sim.NewSignal(eng, s.wakeName)
		fire = wake.Fire
	}
	armed := false
	// Cancellable timer wake-ups (offload deadlines, retry backoffs) so
	// stale timers don't linger once the rank is awake again.
	var timers []sim.EventHandle
	for _, sl := range s.slots {
		if sl.obj != nil {
			sl.flag.OnReach(int64(sl.group.NumCPEs()), fire)
			armed = true
			if s.inj != nil {
				// A stalled gang never fires the flag: the deadline is the
				// guaranteed wake-up that lets the scheduler recover.
				timers = append(timers, eng.Schedule(sl.deadline-p.Now(), fire))
			}
		}
		if s.inj != nil && sl.pending != nil {
			if sl.unhealthy {
				// Handled immediately on the next loop pass.
				timers = append(timers, eng.Schedule(0, fire))
			} else {
				timers = append(timers, eng.Schedule(sl.retryAt-p.Now(), fire))
			}
			armed = true
		}
	}
	for i := range s.recvs {
		if !s.recvs[i].done {
			s.recvs[i].req.Signal().OnFire(fire)
			armed = true
		}
	}
	for i := range s.sends {
		if !s.sends[i].done {
			s.sends[i].req.Signal().OnFire(fire)
			armed = true
		}
	}
	if !armed {
		panic(fmt.Sprintf("scheduler: rank %d stalled with nothing to wait for", s.mpi.RankID()))
	}
	t0 := p.Now()
	wake.Wait(p)
	for _, h := range timers {
		h.Cancel()
	}
	s.Stats.IdleTime += p.Now() - t0
	s.cfg.Trace.Add(trace.Event{Rank: s.mpi.RankID(), Step: step,
		Kind: trace.KindIdle, Name: "wait", Start: t0, End: p.Now()})
}
