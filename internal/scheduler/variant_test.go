package scheduler

import (
	"testing"

	"sunuintah/internal/grid"
)

func TestVariantNamesMatchTableIV(t *testing.T) {
	cases := []struct {
		cfg  Config
		want string
	}{
		{Config{Mode: ModeMPEOnly}, "host.sync"},
		{Config{Mode: ModeMPEOnly, SIMD: true}, "host.sync"},
		{Config{Mode: ModeSync}, "acc.sync"},
		{Config{Mode: ModeSync, SIMD: true}, "acc_simd.sync"},
		{Config{Mode: ModeAsync}, "acc.async"},
		{Config{Mode: ModeAsync, SIMD: true}, "acc_simd.async"},
	}
	for _, c := range cases {
		if got := c.cfg.Variant(); got != c.want {
			t.Errorf("Variant(%v, simd=%v) = %q, want %q", c.cfg.Mode, c.cfg.SIMD, got, c.want)
		}
	}
}

func TestModeString(t *testing.T) {
	if ModeMPEOnly.String() != "mpe-only" || ModeSync.String() != "sync" || ModeAsync.String() != "async" {
		t.Error("mode names wrong")
	}
}

func TestDefaultTileSizeIsPapers(t *testing.T) {
	if DefaultTileSize != grid.IV(16, 16, 8) {
		t.Errorf("default tile = %v, want 16x16x8", DefaultTileSize)
	}
}
