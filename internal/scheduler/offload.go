package scheduler

import (
	"fmt"
	"math"

	"sunuintah/internal/athread"
	"sunuintah/internal/field"
	"sunuintah/internal/grid"
	"sunuintah/internal/sim"
	"sunuintah/internal/taskgraph"
	"sunuintah/internal/trace"
)

var (
	negInf = math.Inf(-1)
	posInf = math.Inf(1)
)

// slot is one offload lane: a (sub-)cluster of CPEs with its completion
// flag and the object currently running on it. With CPEGroups == 1 there
// is a single slot spanning all 64 CPEs, as in the paper; more slots
// implement the future-work CPE grouping.
type slot struct {
	group *athread.Group
	flag  *sim.Counter
	obj   *taskgraph.Object

	// Resilience state (meaningful only under fault injection).
	off         *athread.Offload  // handle of the in-flight offload
	deadline    sim.Time          // absolute abort time for the in-flight offload
	estimate    sim.Time          // healthy completion estimate of the last launch
	attempts    int               // launches of the current object so far
	pending     *taskgraph.Object // aborted object awaiting its backoff retry
	retryAt     sim.Time          // absolute time of the next retry
	consecFails int               // consecutive timed-out offloads on this gang
	unhealthy   bool              // gang taken out of rotation; kernels go to the MPE
}

// initSlots builds the offload lanes; called from New.
func (s *Rank) initSlots() {
	n := s.cfg.CPEGroups
	per := s.params.NumCPEs / n
	if per < 1 {
		per = 1
	}
	for i := 0; i < n; i++ {
		s.slots = append(s.slots, &slot{
			group: athread.NewGroupN(s.cg, per),
			flag:  sim.NewCounter(s.cg.Engine(), fmt.Sprintf("rank%d.flag%d", s.mpi.RankID(), i)),
		})
	}
}

// freeSlot returns an idle offload lane, or nil. Lanes holding an aborted
// object awaiting retry, and gangs marked unhealthy, are not free.
func (s *Rank) freeSlot() *slot {
	for _, sl := range s.slots {
		if sl.obj == nil && !sl.group.Busy() && sl.pending == nil && !sl.unhealthy {
			return sl
		}
	}
	return nil
}

// allUnhealthy reports whether every offload lane's gang has been marked
// unhealthy — the point where the scheduler degrades to MPE-only kernel
// execution for the rest of the run.
func (s *Rank) allUnhealthy() bool {
	for _, sl := range s.slots {
		if !sl.unhealthy {
			return false
		}
	}
	return true
}

// ioVar couples a dependency with its (possibly nil) main-memory field.
type ioVar struct {
	dep taskgraph.Dep
	f   *field.Cell
}

// gatherIO resolves a task object's inputs and outputs against the
// warehouses. Fields are nil in timing-only mode.
func (s *Rank) gatherIO(obj *taskgraph.Object) (ins, outs []ioVar) {
	for _, d := range obj.Task.Requires {
		var f *field.Cell
		if s.cfg.Functional {
			f = s.DWs.Select(d.DW).Get(d.Label, obj.Patch)
		}
		ins = append(ins, ioVar{dep: d, f: f})
	}
	for _, d := range obj.Task.Computes {
		var f *field.Cell
		if s.cfg.Functional {
			f = s.DWs.New.Get(d.Label, obj.Patch)
		}
		outs = append(outs, ioVar{dep: d, f: f})
	}
	return ins, outs
}

// kernelSpec builds the cost descriptor of an offloaded kernel under the
// current configuration.
func (s *Rank) kernelSpec(task *taskgraph.Task) athread.KernelSpec {
	k := task.Kernel
	w := k.Weight
	if w == 0 {
		w = 1
	}
	return athread.KernelSpec{
		Name:            task.Name,
		FlopsPerCell:    k.FlopsPerCell,
		ExpFlopsPerCell: k.ExpFlopsPerCell,
		Weight:          w,
		SIMD:            s.cfg.SIMD,
		OverlapDMA:      s.cfg.AsyncDMA,
		PackedDMA:       s.cfg.TilePacking,
	}
}

// ldmWorkingSet returns the per-tile LDM requirement of a task: each input
// staged with its ghost margin plus each output tile.
func ldmWorkingSet(task *taskgraph.Task, tile grid.Tile) int64 {
	var bytes int64
	for _, d := range task.Requires {
		bytes += tile.Box.Grow(d.Ghost).NumCells() * 8
	}
	bytes += int64(len(task.Computes)) * tile.Box.NumCells() * 8
	return bytes
}

// offload launches a kernel task on a CPE slot: the CPE tile scheduler of
// Section V-D. The patch is subdivided into LDM-sized tiles, tiles are
// assigned to CPEs by natural z-partition, and each CPE loops over its
// tiles performing athread_get, kernel, athread_put, finally bumping the
// completion flag with faaw.
func (s *Rank) offload(p *sim.Process, step int, t, dt float64, obj *taskgraph.Object, sl *slot) error {
	task := obj.Task
	patch := obj.Patch
	tiling, err := grid.NewTiling(patch, s.cfg.TileSize)
	if err != nil {
		return err
	}
	// LDM feasibility on the nominal (largest) tile shape.
	nominal := grid.Tile{Box: grid.BoxFromSize(patch.Box.Lo, s.cfg.TileSize.Min(patch.Box.Size()))}
	if ws := ldmWorkingSet(task, nominal); ws > s.params.LDMBytes {
		return fmt.Errorf("scheduler: task %q tile %v needs %d B of LDM, only %d available",
			task.Name, s.cfg.TileSize, ws, s.params.LDMBytes)
	}

	assign := tiling.AssignZ(sl.group.NumCPEs())
	active := 0
	for _, tiles := range assign {
		if len(tiles) > 0 {
			active++
		}
	}
	ins, outs := s.gatherIO(obj)
	spec := s.kernelSpec(task)

	// Uniform tilings in timing-only mode take the analytic fast path.
	uniform := !s.cfg.Functional && tilingUniform(patch, s.cfg.TileSize)
	var getBytes, putBytes, cellsPerTile int64
	if uniform {
		tile := tiling.Tile(grid.IV(0, 0, 0))
		cellsPerTile = tile.Box.NumCells()
		for _, iv := range ins {
			getBytes += tile.Box.Grow(iv.dep.Ghost).NumCells() * 8
		}
		putBytes = int64(len(outs)) * cellsPerTile * 8
	}

	s.charge(p, sim.Time(s.params.OffloadCost), &s.Stats.MPEWorkTime,
		trace.KindMPEWork, step, "offload "+task.Name)

	sl.flag.Reset()
	var tileErr error
	// deferred collects the tiles' numeric bodies when parallel host
	// execution is on: the launch body stages data and charges virtual
	// time serially (deterministic accounting), while the pure per-tile
	// numerics — disjoint output regions, no shared state — run on the
	// worker pool below before the offload call returns, so downstream
	// tasks always observe completed outputs.
	var deferred []func()
	start := p.Now()
	off := sl.group.Launch(spec, active, s.cfg.Functional, sl.flag, func(c *athread.CPE) {
		tiles := assign[c.ID]
		if len(tiles) == 0 {
			return
		}
		if uniform {
			c.RepeatTiles(len(tiles), getBytes, putBytes, cellsPerTile)
			return
		}
		for _, tile := range tiles {
			if tileErr != nil {
				return
			}
			if err := s.runTile(c, obj, tile, step, t, dt, ins, outs, &deferred); err != nil {
				tileErr = err
				return
			}
		}
	})
	if tileErr != nil {
		return tileErr
	}
	runOps(s.cfg.Workers, deferred)
	// A stalled gang never completes; account its healthy estimate so the
	// trace and the load balancer never see Infinity.
	dur := off.Done
	if off.Stalled {
		dur = off.Estimate
	}
	obj.State = taskgraph.StateRunning
	sl.obj = obj
	sl.off = off
	s.probeGangs()
	if s.inj != nil {
		sl.estimate = off.Estimate
		sl.deadline = start + off.Estimate*sim.Time(s.inj.Plan().DeadlineFactor)
	}
	s.patchCost[patch.ID] += dur
	s.Stats.Offloads++
	name := task.Name
	if patch != nil {
		name = fmt.Sprintf("%s p%d", task.Name, patch.ID)
	}
	s.cfg.Trace.Add(trace.Event{Rank: s.mpi.RankID(), Step: step,
		Kind: trace.KindKernel, Name: name, Start: start, End: start + dur})
	return nil
}

// tilingUniform reports whether every tile of the patch has the nominal
// shape (the patch size divides evenly).
func tilingUniform(patch *grid.Patch, tileSize grid.IVec) bool {
	s := patch.Box.Size()
	return s.X%tileSize.X == 0 && s.Y%tileSize.Y == 0 && s.Z%tileSize.Z == 0
}

// runTile performs one tile's get/compute/put round trip on a CPE. When
// deferred is non-nil and the host worker pool is enabled, the tile's
// numeric body (kernel + output write-back + buffer recycling) is
// appended to deferred instead of running inline; all virtual-time and
// counter accounting still happens here, serially and in the exact order
// of the inline path.
func (s *Rank) runTile(c *athread.CPE, obj *taskgraph.Object, tile grid.Tile,
	step int, t, dt float64, ins, outs []ioVar, deferred *[]func()) error {
	var bufs []*athread.LDMBuf
	release := func() {
		for _, b := range bufs {
			c.Release(b)
		}
	}
	inMap := map[*taskgraph.Label]*taskgraph.LDMData{}
	for _, iv := range ins {
		region := tile.Box.Grow(iv.dep.Ghost)
		buf, err := c.Get(region, iv.f)
		if err != nil {
			release()
			return err
		}
		bufs = append(bufs, buf)
		inMap[iv.dep.Label] = &taskgraph.LDMData{Region: region, Data: buf.Data}
	}
	outMap := map[*taskgraph.Label]*taskgraph.LDMData{}
	var outBufs []*athread.LDMBuf
	for _, ov := range outs {
		buf, err := c.NewBuf(tile.Box)
		if err != nil {
			release()
			for _, b := range outBufs {
				c.Release(b)
			}
			return err
		}
		outBufs = append(outBufs, buf)
		outMap[ov.dep.Label] = &taskgraph.LDMData{Region: tile.Box, Data: buf.Data}
	}
	compute := obj.Task.Kernel.Compute
	if deferred != nil && s.cfg.Functional && s.cfg.Workers > 1 && compute != nil {
		tc := &taskgraph.TileContext{
			Patch: obj.Patch, Tile: tile,
			In: inMap, Out: outMap,
			Step: step, Time: t, Dt: dt,
			Level: s.graph.Level,
		}
		c.Compute(tile.Box.NumCells())
		for i := range outs {
			c.PutAccounted(outBufs[i])
		}
		for _, b := range bufs {
			c.ReleaseKeep(b)
		}
		for _, b := range outBufs {
			c.ReleaseKeep(b)
		}
		c.EndTile()
		tileBox := tile.Box
		outFields := make([]*field.Cell, len(outs))
		for i, ov := range outs {
			outFields[i] = ov.f
		}
		stagedIn, stagedOut := bufs, outBufs
		*deferred = append(*deferred, func() {
			compute(tc)
			for i, f := range outFields {
				f.CopyRegion(stagedOut[i].Data, tileBox)
			}
			for _, b := range stagedIn {
				b.Data.Recycle()
				b.Data = nil
			}
			for _, b := range stagedOut {
				b.Data.Recycle()
				b.Data = nil
			}
		})
		return nil
	}
	if s.cfg.Functional && compute != nil {
		compute(&taskgraph.TileContext{
			Patch: obj.Patch, Tile: tile,
			In: inMap, Out: outMap,
			Step: step, Time: t, Dt: dt,
			Level: s.graph.Level,
		})
	}
	c.Compute(tile.Box.NumCells())
	for i, ov := range outs {
		c.Put(ov.f, outBufs[i])
	}
	release()
	for _, b := range outBufs {
		c.Release(b)
	}
	c.EndTile()
	return nil
}

// runOnMPE executes a kernel task directly on the MPE (the paper's
// host.sync baseline): no tiling, no offload, the whole patch computed by
// the management element.
func (s *Rank) runOnMPE(p *sim.Process, step int, t, dt float64, obj *taskgraph.Object) error {
	task := obj.Task
	cells := obj.Patch.NumCells()
	w := task.Kernel.Weight
	if w == 0 {
		w = 1
	}
	kernelTime := sim.Time(s.params.MPEKernelTime(cells, w))
	s.patchCost[obj.Patch.ID] += kernelTime
	s.charge(p, kernelTime, &s.Stats.MPEKernelTime,
		trace.KindMPEKern, step, fmt.Sprintf("%s p%d (mpe)", task.Name, obj.Patch.ID))
	if s.cfg.Functional && task.Kernel.Compute != nil {
		ins, outs := s.gatherIO(obj)
		inMap := map[*taskgraph.Label]*taskgraph.LDMData{}
		for _, iv := range ins {
			inMap[iv.dep.Label] = &taskgraph.LDMData{
				Region: obj.Patch.Box.Grow(iv.dep.Ghost), Data: iv.f}
		}
		outMap := map[*taskgraph.Label]*taskgraph.LDMData{}
		for _, ov := range outs {
			outMap[ov.dep.Label] = &taskgraph.LDMData{Region: obj.Patch.Box, Data: ov.f}
		}
		task.Kernel.Compute(&taskgraph.TileContext{
			Patch: obj.Patch, Tile: grid.Tile{Box: obj.Patch.Box},
			In: inMap, Out: outMap,
			Step: step, Time: t, Dt: dt,
			Level: s.graph.Level,
		})
	}
	ctr := &s.cg.Counters
	ctr.MPEFlops += int64(task.Kernel.FlopsPerCell * float64(cells))
	ctr.CellsComputed += cells
	return nil
}
