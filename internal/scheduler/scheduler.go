// Package scheduler implements the paper's Sunway-specific Uintah task
// scheduler (Section V): an MPE task scheduler that distributes, readies
// and completes task objects while driving MPI, and a CPE tile scheduler
// that partitions each offloaded patch into LDM-sized tiles across the 64
// CPEs.
//
// The MPE scheduler supports the paper's three operation modes:
//
//   - ModeMPEOnly ("host"): the ready task's kernel executes on the MPE
//     itself, with no offloading.
//   - ModeSync ("acc…sync"): the kernel is offloaded and the MPE spins on
//     the completion flag — no overlap of computation with communication.
//   - ModeAsync ("acc…async"): the offload returns immediately and the MPE
//     keeps posting/testing MPI requests, unpacking ghost data and
//     preparing further tasks while the CPEs compute. This is the paper's
//     primary contribution.
package scheduler

import (
	"fmt"
	"runtime"

	"sunuintah/internal/athread"
	"sunuintah/internal/dw"
	"sunuintah/internal/faults"
	"sunuintah/internal/grid"
	"sunuintah/internal/mpisim"
	"sunuintah/internal/obs"
	"sunuintah/internal/perf"
	"sunuintah/internal/sim"
	"sunuintah/internal/sw26010"
	"sunuintah/internal/taskgraph"
	"sunuintah/internal/trace"
)

// Mode selects the scheduler's operation mode (Section V-C).
type Mode int

// Scheduler operation modes.
const (
	ModeMPEOnly Mode = iota
	ModeSync
	ModeAsync
)

func (m Mode) String() string {
	switch m {
	case ModeMPEOnly:
		return "mpe-only"
	case ModeSync:
		return "sync"
	case ModeAsync:
		return "async"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Config selects a scheduler variant (the paper's Table IV) plus the
// future-work extensions of Section IX.
type Config struct {
	Mode Mode
	// SIMD selects the vectorised kernel cost model (Section VI-B).
	SIMD bool
	// TileSize is the LDM tile shape; the paper uses 16x16x8.
	TileSize grid.IVec
	// Functional runs real numerics; otherwise timing-only.
	Functional bool
	// Trace optionally records the scheduler's activity timeline.
	Trace *trace.Recorder
	// Probes is this rank's flight-recorder probe set: virtual-time series
	// of queue depth, work-ahead backlog and gang occupancy. nil disables
	// sampling at zero cost. Like Workers, it is a reporting knob only —
	// it never changes the simulated outcome and never enters the
	// runner's spec hash.
	Probes *obs.RankProbes

	// AsyncDMA enables the paper's future-work double-buffered
	// memory<->LDM transfers: each tile's DMA overlaps the previous
	// tile's compute.
	AsyncDMA bool
	// TilePacking enables the future-work packed tile transfers (better
	// DMA efficiency, amortised latency).
	TilePacking bool
	// CPEGroups > 1 splits the CPE cluster into that many groups, each
	// computing a different patch concurrently (future-work task+data
	// parallelism). 0 or 1 means the whole cluster works one patch.
	CPEGroups int
	// Scrub frees non-persistent new-warehouse variables as soon as their
	// last intra-step consumer completes (Uintah's data-warehouse variable
	// scrubbing), lowering the memory high-water mark for task chains.
	Scrub bool
	// Workers bounds the host worker pool that executes the numeric
	// bodies of independent tiles in functional mode — the software
	// analogue of the CPE gangs computing tiles in parallel. 0 means
	// GOMAXPROCS; 1 runs the bodies inline (serial). Results are
	// byte-identical for every value: tile outputs are disjoint and no
	// cross-tile combining happens on the pool, so this is a wall-clock
	// knob only (it never enters the runner's spec hash).
	Workers int
	// InOrder forces strict task-declaration x patch-ID execution order,
	// disabling the out-of-order selection Uintah normally allows ("in
	// ordered or possibly out of order fashion" — Section II). Useful as a
	// baseline for measuring what out-of-order readiness buys.
	InOrder bool
}

// DefaultTileSize is the paper's tile shape.
var DefaultTileSize = grid.IV(16, 16, 8)

// Variant returns the paper's Table IV variant name for the configuration.
func (c Config) Variant() string {
	switch c.Mode {
	case ModeMPEOnly:
		return "host.sync"
	case ModeSync:
		if c.SIMD {
			return "acc_simd.sync"
		}
		return "acc.sync"
	case ModeAsync:
		if c.SIMD {
			return "acc_simd.async"
		}
		return "acc.async"
	}
	return "unknown"
}

// Stats aggregates one rank's per-run scheduler statistics.
type Stats struct {
	TasksRun       int64
	Offloads       int64
	MPEKernelTime  sim.Time
	KernelWaitTime sim.Time // MPE blocked on the completion flag (sync mode)
	MPEWorkTime    sim.Time // packing, unpacking, touches, BC fills, copies
	CommTime       sim.Time // posting and testing MPI requests
	IdleTime       sim.Time // waiting with nothing to do
	StepsRun       int

	// Faults counts the rank's recovery actions under fault injection;
	// nil (and absent from JSON) on fault-free runs.
	Faults *FaultStats `json:"Faults,omitempty"`
}

// FaultStats counts a rank's scheduler-level fault recoveries.
type FaultStats struct {
	OffloadTimeouts int64 // offloads aborted at their deadline
	Reoffloads      int64 // aborted offloads relaunched on the CPEs
	MPEFallbacks    int64 // kernels degraded to MPE execution
	UnhealthyGangs  int64 // CPE gangs marked unhealthy (kept off rotation)
}

// Add accumulates other into f.
func (f *FaultStats) Add(other FaultStats) {
	f.OffloadTimeouts += other.OffloadTimeouts
	f.Reoffloads += other.Reoffloads
	f.MPEFallbacks += other.MPEFallbacks
	f.UnhealthyGangs += other.UnhealthyGangs
}

// faultStats lazily allocates the fault counters (only faulty runs carry
// them, keeping fault-free JSON unchanged).
func (s *Rank) faultStats() *FaultStats {
	if s.Stats.Faults == nil {
		s.Stats.Faults = &FaultStats{}
	}
	return s.Stats.Faults
}

// Rank is one MPI rank's scheduler instance: the MPE-side state machine
// plus the CPE tile scheduler for its core group.
type Rank struct {
	cfg    Config
	params perf.Params
	graph  *taskgraph.Graph
	cg     *sw26010.CoreGroup
	group  *athread.Group
	mpi    *mpisim.Rank
	DWs    *dw.Pair

	flag     *sim.Counter
	maxGhost map[*taskgraph.Label]int

	// inj mirrors cg.Faults; nil on fault-free runs (every resilience path
	// is gated on it, so the fault-free schedule is untouched).
	inj *faults.Injector

	// Per-step communication state.
	recvs []pendingRecv
	sends []pendingSend
	// Scratch buffers for the coalesced send sweep, reused across polls so
	// the steady-state step loop allocates nothing.
	sweepIdx  []int
	sweepReqs []*mpisim.Request
	sweepOks  []bool
	// wakeName is the precomputed diagnostic name for waitForEvent's
	// one-shot wake signal; wake/wakeFire are the pooled signal and its
	// method value, reused across parks in fault-free runs.
	wakeName string
	wake     *sim.Signal
	wakeFire func()
	// notes interns "prefix + label" trace annotations: the step loop
	// emits the same few dozen strings every step, and building them once
	// keeps the steady-state loop free of string allocation.
	notes map[noteKey]string

	// patchCost accumulates each local patch's kernel time, feeding the
	// measurement-based load balancer.
	patchCost map[int]sim.Time

	// slots are the offload lanes (one per CPE group).
	slots []*slot
	// prepared queues objects whose MPE part was processed ahead of time
	// while the CPEs were busy (asynchronous mode's work-ahead).
	prepared []*taskgraph.Object
	// consumers counts this step's outstanding intra-step readers of each
	// new-warehouse variable, for scrubbing.
	consumers map[scrubKey]int

	Stats Stats
}

type noteKey struct{ prefix, name string }

// note returns the interned concatenation prefix+name.
func (s *Rank) note(prefix, name string) string {
	k := noteKey{prefix, name}
	if v, ok := s.notes[k]; ok {
		return v
	}
	if s.notes == nil {
		s.notes = map[noteKey]string{}
	}
	v := prefix + name
	s.notes[k] = v
	return v
}

type pendingRecv struct {
	edge *taskgraph.Edge
	req  *mpisim.Request
	done bool
}

type pendingSend struct {
	req  *mpisim.Request
	done bool
}

// New creates the scheduler for one rank. The graph must have been
// compiled for mpi's rank ID.
func New(cfg Config, graph *taskgraph.Graph, cg *sw26010.CoreGroup, mpi *mpisim.Rank) (*Rank, error) {
	if graph.Rank != mpi.RankID() {
		return nil, fmt.Errorf("scheduler: graph compiled for rank %d, MPI rank is %d", graph.Rank, mpi.RankID())
	}
	if !cfg.TileSize.AllPositive() {
		cfg.TileSize = DefaultTileSize
	}
	if cfg.CPEGroups < 1 {
		cfg.CPEGroups = 1
	}
	if cfg.Workers < 1 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	mode := dw.TimingOnly
	if cfg.Functional {
		mode = dw.Functional
	}
	s := &Rank{
		cfg:    cfg,
		params: cg.Params,
		graph:  graph,
		cg:     cg,
		group:  athread.NewGroup(cg),
		mpi:    mpi,
		DWs:    dw.NewPair(mode, cg),
		flag:   sim.NewCounter(cg.Engine(), fmt.Sprintf("rank%d.flag", mpi.RankID())),
	}
	s.inj = cg.Faults
	s.patchCost = map[int]sim.Time{}
	s.maxGhost = map[*taskgraph.Label]int{}
	for _, t := range graph.Tasks {
		for _, d := range t.Requires {
			if d.Ghost > s.maxGhost[d.Label] {
				s.maxGhost[d.Label] = d.Ghost
			}
		}
		for _, d := range t.Computes {
			if _, ok := s.maxGhost[d.Label]; !ok {
				s.maxGhost[d.Label] = 0
			}
		}
	}
	s.initSlots()
	return s, nil
}

// Graph returns the rank's compiled task graph.
func (s *Rank) Graph() *taskgraph.Graph { return s.graph }

// SetGraph installs a newly compiled graph (after load balancing or
// regridding changed the patch assignment). The warehouses are untouched:
// the caller is responsible for having migrated variable data to match the
// new assignment.
func (s *Rank) SetGraph(g *taskgraph.Graph) error {
	if g.Rank != s.mpi.RankID() {
		return fmt.Errorf("scheduler: graph compiled for rank %d, MPI rank is %d", g.Rank, s.mpi.RankID())
	}
	s.graph = g
	s.prepared = s.prepared[:0]
	return nil
}

// MaxGhost returns the allocation ghost width of a label (the maximum any
// task requires).
func (s *Rank) MaxGhost(l *taskgraph.Label) int { return s.maxGhost[l] }

// CoreGroup returns the rank's core group.
func (s *Rank) CoreGroup() *sw26010.CoreGroup { return s.cg }

// PatchCosts returns the accumulated kernel time of each local patch, the
// per-patch cost estimates a measurement-based load balancer consumes.
func (s *Rank) PatchCosts() map[int]sim.Time { return s.patchCost }

// ResetPatchCosts clears the measurements (after a rebalance).
func (s *Rank) ResetPatchCosts() { s.patchCost = map[int]sim.Time{} }

// scrubKey identifies a new-warehouse variable instance.
type scrubKey struct {
	label   *taskgraph.Label
	patchID int
}

// resetConsumers rebuilds the intra-step consumer counts for scrubbing.
func (s *Rank) resetConsumers() {
	s.consumers = map[scrubKey]int{}
	for _, o := range s.graph.Objects {
		for _, d := range o.Task.Requires {
			if d.DW != taskgraph.NewDW {
				continue
			}
			if o.Patch != nil {
				s.consumers[scrubKey{d.Label, o.Patch.ID}]++
			} else {
				for _, p := range s.graph.LocalPatches {
					if !o.Task.AppliesTo(p.ID) {
						continue
					}
					s.consumers[scrubKey{d.Label, p.ID}]++
				}
			}
		}
	}
}

// noteConsumed decrements a variable's outstanding readers and scrubs it
// when the last one finishes (non-persistent labels only).
func (s *Rank) noteConsumed(l *taskgraph.Label, patchID int) {
	k := scrubKey{l, patchID}
	n, ok := s.consumers[k]
	if !ok {
		return
	}
	n--
	s.consumers[k] = n
	if n == 0 && !s.graph.Persistent[l] {
		s.DWs.New.Free(l, s.graph.Level.Layout.Patch(patchID))
	}
}

// charge advances the process by d and attributes it to a stats bucket and
// the trace.
func (s *Rank) charge(p *sim.Process, d sim.Time, bucket *sim.Time, kind trace.Kind, step int, name string) {
	if d <= 0 {
		return
	}
	start := p.Now()
	p.Sleep(d)
	*bucket += d
	s.cfg.Trace.Add(trace.Event{
		Rank: s.mpi.RankID(), Step: step, Kind: kind, Name: name,
		Start: start, End: p.Now(),
	})
}

// probeGangs records the current CPE-gang occupancy (slots with an
// offload in flight) on the flight recorder. Called wherever a slot's obj
// is set or cleared; a nil probe set makes it free.
func (s *Rank) probeGangs() {
	if s.cfg.Probes == nil {
		return
	}
	busy := 0
	for _, sl := range s.slots {
		if sl.obj != nil {
			busy++
		}
	}
	s.cfg.Probes.Gangs(s.cg.Engine().Now(), busy)
}
