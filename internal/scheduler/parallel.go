package scheduler

import (
	"sync"
	"sync/atomic"
)

// runOps executes the deferred numeric tile bodies collected during an
// offload on a bounded worker pool and waits for all of them. Every op
// writes a disjoint output region and touches no shared scheduler or
// accounting state, so execution order does not matter and the results
// are byte-identical for any worker count. Panics inside ops (kernel
// bugs) are re-raised on the caller's goroutine.
func runOps(workers int, ops []func()) {
	if len(ops) == 0 {
		return
	}
	if workers <= 1 || len(ops) == 1 {
		for _, op := range ops {
			op()
		}
		return
	}
	if workers > len(ops) {
		workers = len(ops)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var panicMu sync.Mutex
	var panicVal any
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicVal == nil {
						panicVal = r
					}
					panicMu.Unlock()
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ops) {
					return
				}
				ops[i]()
			}
		}()
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}
