package scheduler_test

import (
	"strings"
	"testing"

	"sunuintah/internal/burgers"
	"sunuintah/internal/core"
	"sunuintah/internal/grid"
	"sunuintah/internal/scheduler"
	"sunuintah/internal/taskgraph"
	"sunuintah/internal/trace"
)

func timingSim(t *testing.T, cells grid.IVec, cgs int, cfg scheduler.Config) *core.Simulation {
	t.Helper()
	u := burgers.NewULabel()
	prob := core.Problem{
		Tasks: []*taskgraph.Task{burgers.NewAdvanceTask(u, burgers.FastExpLib, cfg.SIMD)},
		Dt:    1e-5,
	}
	s, err := core.NewSimulation(core.Config{
		Cells:       cells,
		PatchCounts: grid.IV(2, 2, 2),
		NumCGs:      cgs,
		Scheduler:   cfg,
	}, prob)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSyncModeNeverOverlapsKernelWithMPEWork(t *testing.T) {
	rec := trace.New()
	s := timingSim(t, grid.IV(64, 64, 64), 2,
		scheduler.Config{Mode: scheduler.ModeSync, Trace: rec})
	if _, err := s.Run(2); err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < 2; rank++ {
		if ov := rec.OverlapTime(rank, trace.KindKernel, trace.KindMPEWork); ov > 0 {
			t.Errorf("rank %d: sync scheduler overlapped %.6fs of MPE work with kernels", rank, float64(ov))
		}
	}
}

func TestAsyncModeOverlapsKernelWithMPEWork(t *testing.T) {
	rec := trace.New()
	s := timingSim(t, grid.IV(64, 64, 64), 2,
		scheduler.Config{Mode: scheduler.ModeAsync, Trace: rec})
	if _, err := s.Run(2); err != nil {
		t.Fatal(err)
	}
	total := trace.Kind("")
	_ = total
	anyOverlap := false
	for rank := 0; rank < 2; rank++ {
		if rec.OverlapTime(rank, trace.KindKernel, trace.KindMPEWork) > 0 {
			anyOverlap = true
		}
	}
	if !anyOverlap {
		t.Fatal("async scheduler showed no computation/MPE-work overlap")
	}
}

func TestAsyncFasterThanSyncWithMultiplePatches(t *testing.T) {
	run := func(mode scheduler.Mode) float64 {
		s := timingSim(t, grid.IV(64, 64, 64), 2, scheduler.Config{Mode: mode})
		res, err := s.Run(2)
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.PerStep)
	}
	if a, b := run(scheduler.ModeAsync), run(scheduler.ModeSync); a >= b {
		t.Fatalf("async %.6f not faster than sync %.6f", a, b)
	}
}

func TestHostModePerformsNoOffloads(t *testing.T) {
	s := timingSim(t, grid.IV(32, 32, 32), 1, scheduler.Config{Mode: scheduler.ModeMPEOnly})
	res, err := s.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Offloads != 0 {
		t.Fatalf("host mode performed %d offloads", res.Counters.Offloads)
	}
	if res.Counters.MPEFlops == 0 {
		t.Fatal("host mode should count MPE kernel flops")
	}
	if res.Counters.Flops != 0 {
		t.Fatal("host mode should not count CPE flops")
	}
}

func TestOffloadModesDriveTheCPEs(t *testing.T) {
	s := timingSim(t, grid.IV(32, 32, 32), 1, scheduler.Config{Mode: scheduler.ModeAsync})
	res, err := s.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Offloads != 8 { // 8 patches, one offload each
		t.Fatalf("offloads = %d, want 8", res.Counters.Offloads)
	}
	if res.Counters.FaawOps != 8*64 {
		t.Fatalf("faaw ops = %d, want one per CPE per offload", res.Counters.FaawOps)
	}
	if res.Counters.DMAOps == 0 || res.Counters.DMABytes == 0 {
		t.Fatal("tile scheduler issued no DMA")
	}
}

func TestLDMOverflowSurfacesAsError(t *testing.T) {
	// A 32x32x16 tile with ghosts needs ~270 KB, far over the 64 KB LDM.
	s := timingSim(t, grid.IV(64, 64, 64), 1, scheduler.Config{
		Mode:     scheduler.ModeAsync,
		TileSize: grid.IV(32, 32, 16),
	})
	_, err := s.Run(1)
	if err == nil || !strings.Contains(err.Error(), "LDM") {
		t.Fatalf("expected LDM feasibility error, got %v", err)
	}
}

func TestCPEGroupsRunKernelsConcurrently(t *testing.T) {
	rec := trace.New()
	s := timingSim(t, grid.IV(64, 64, 64), 1, scheduler.Config{
		Mode:      scheduler.ModeAsync,
		CPEGroups: 2,
		Trace:     rec,
	})
	if _, err := s.Run(1); err != nil {
		t.Fatal(err)
	}
	if ov := rec.OverlapTime(0, trace.KindKernel, trace.KindKernel); ov <= 0 {
		// Two kernel intervals of the same kind overlapping requires two
		// slots busy at once.
		t.Fatal("CPE groups never ran two kernels concurrently")
	}
}

func TestAsyncDMAFasterThanSyncDMA(t *testing.T) {
	run := func(asyncDMA bool) float64 {
		s := timingSim(t, grid.IV(64, 64, 64), 1, scheduler.Config{
			Mode:     scheduler.ModeAsync,
			AsyncDMA: asyncDMA,
		})
		res, err := s.Run(1)
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.PerStep)
	}
	if a, b := run(true), run(false); a >= b {
		t.Fatalf("async DMA %.6f not faster than sync DMA %.6f", a, b)
	}
}

func TestStatsAccounting(t *testing.T) {
	s := timingSim(t, grid.IV(64, 64, 64), 2, scheduler.Config{Mode: scheduler.ModeSync})
	res, err := s.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	for r, st := range res.RankStats {
		if st.StepsRun != 3 {
			t.Errorf("rank %d ran %d steps", r, st.StepsRun)
		}
		if st.TasksRun != 4*3 { // 4 local patches x 3 steps
			t.Errorf("rank %d ran %d tasks", r, st.TasksRun)
		}
		if st.KernelWaitTime <= 0 {
			t.Errorf("rank %d sync mode should record kernel wait", r)
		}
		if st.MPEWorkTime <= 0 {
			t.Errorf("rank %d recorded no MPE work", r)
		}
	}
}

func TestGhostBytesFlowBothWays(t *testing.T) {
	s := timingSim(t, grid.IV(64, 64, 64), 2, scheduler.Config{Mode: scheduler.ModeAsync})
	if _, err := s.Run(2); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 2; r++ {
		rk := s.Comm.Rank(r)
		if rk.BytesSent == 0 || rk.BytesReceived == 0 {
			t.Fatalf("rank %d: sent %d received %d", r, rk.BytesSent, rk.BytesReceived)
		}
		if rk.BytesSent != rk.BytesReceived {
			// Symmetric decomposition: equal traffic both ways.
			t.Fatalf("rank %d traffic asymmetric: %d vs %d", r, rk.BytesSent, rk.BytesReceived)
		}
	}
}

func TestTraceRecordsKernelsPerOffload(t *testing.T) {
	rec := trace.New()
	s := timingSim(t, grid.IV(32, 32, 32), 1, scheduler.Config{
		Mode: scheduler.ModeAsync, Trace: rec})
	if _, err := s.Run(2); err != nil {
		t.Fatal(err)
	}
	kernels := 0
	for _, e := range rec.Events() {
		if e.Kind == trace.KindKernel {
			kernels++
			if e.End <= e.Start {
				t.Fatalf("kernel event with non-positive duration: %+v", e)
			}
		}
	}
	if kernels != 16 { // 8 patches x 2 steps
		t.Fatalf("traced %d kernel intervals, want 16", kernels)
	}
}

func TestTilePackingFasterThanStrided(t *testing.T) {
	run := func(packing bool) float64 {
		s := timingSim(t, grid.IV(64, 64, 64), 1, scheduler.Config{
			Mode:        scheduler.ModeAsync,
			TilePacking: packing,
		})
		res, err := s.Run(1)
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.PerStep)
	}
	if a, b := run(true), run(false); a >= b {
		t.Fatalf("packed DMA %.6f not faster than strided %.6f", a, b)
	}
}

func TestInOrderNeverFasterThanOutOfOrder(t *testing.T) {
	run := func(inOrder bool) float64 {
		s := timingSim(t, grid.IV(64, 64, 64), 2, scheduler.Config{
			Mode:    scheduler.ModeAsync,
			InOrder: inOrder,
		})
		res, err := s.Run(2)
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.PerStep)
	}
	if ordered, free := run(true), run(false); ordered < free {
		t.Fatalf("in-order (%.6f) faster than out-of-order (%.6f)", ordered, free)
	}
}
