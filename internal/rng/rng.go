// Package rng provides the seeded splitmix64 streams behind every
// deterministic random plane in the repo: fault injection, per-patch
// physics assignment, and workload scenario expansion.
//
// The contract is bit-stability. A stream is a plain splitmix64 sequence
// (Weyl increment + output mix); SubSeed derives independent substream
// states from one seed so that adding draws in one category never
// perturbs another, and a per-lane stream (per rank, per patch, per
// phase) depends only on its own draw sites in their own order. The
// constants and arithmetic are shared verbatim with the historical
// implementation inside internal/faults, so fault histories recorded
// before the extraction replay identically.
package rng

const (
	// golden is the splitmix64 Weyl increment (2^64 / phi).
	golden = 0x9e3779b97f4a7c15
	// laneMix decorrelates lanes within a stream when deriving substream
	// seeds (also the second splitmix64 mixing multiplier).
	laneMix = 0x94d049bb133111eb
)

// Mix64 is the splitmix64 output function: a bijective avalanche of the
// raw sequence state.
func Mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// SubSeed derives the initial splitmix64 state for one (stream, lane)
// substream of seed. Streams separate draw categories; lanes separate
// independent actors within a category (ranks, patches, phases). Lane
// 0's substreams coincide with the historical per-category ones of
// internal/faults.
func SubSeed(seed uint64, stream, lane int) uint64 {
	return Mix64(seed ^ (uint64(stream+1) * golden) ^ (uint64(lane) * laneMix))
}

// Unit maps a state word to a uniform float64 in [0,1) without
// advancing anything — the stateless one-shot draw used for per-patch
// assignment, where the result must depend only on (seed, patch), not
// on visit order.
func Unit(state uint64) float64 {
	return float64(Mix64(state)>>11) / float64(1<<53)
}

// Stream is one splitmix64 sequence. The zero value is a valid stream
// seeded with 0; use New or NewSub to seed it deliberately.
type Stream struct {
	state uint64
}

// New creates a stream with the given raw initial state.
func New(state uint64) *Stream { return &Stream{state: state} }

// NewSub creates a stream seeded with SubSeed(seed, stream, lane).
func NewSub(seed uint64, stream, lane int) *Stream {
	return &Stream{state: SubSeed(seed, stream, lane)}
}

// Uint64 advances the stream and returns the next 64-bit output.
func (s *Stream) Uint64() uint64 {
	s.state += golden
	return Mix64(s.state)
}

// Uniform advances the stream and returns a uniform float64 in [0,1).
func (s *Stream) Uniform() float64 {
	return float64(s.Uint64()>>11) / float64(1<<53)
}

// Intn advances the stream and returns a uniform int in [0,n); n must
// be positive.
func (s *Stream) Intn(n int) int {
	v := int(s.Uniform() * float64(n))
	if v >= n { // guard the (theoretical) 1.0 rounding edge
		v = n - 1
	}
	return v
}
