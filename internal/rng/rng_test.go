package rng

import "testing"

// The golden values below were produced by the original splitmix64
// implementation inside internal/faults before the extraction. They pin
// the bit-compatibility contract: fault histories (and every cached
// result touched by a fault plan) recorded before internal/rng existed
// must replay identically.

func TestMix64Golden(t *testing.T) {
	cases := []struct{ in, want uint64 }{
		{0, 0x0},
		{1, 0x5692161d100b05e5},
		{42, 0xa759ea27d4727622},
	}
	for _, c := range cases {
		if got := Mix64(c.in); got != c.want {
			t.Errorf("Mix64(%d) = %#x, want %#x", c.in, got, c.want)
		}
	}
}

func TestSubSeedGolden(t *testing.T) {
	cases := []struct {
		seed         uint64
		stream, lane int
		want         uint64
	}{
		{1, 0, 0, 0xe4d971771b652c20},
		{1, 2, 0, 0x382ff84cb27281e9},
		{7, 1, 3, 0x67b2c8ff361c6442},
	}
	for _, c := range cases {
		if got := SubSeed(c.seed, c.stream, c.lane); got != c.want {
			t.Errorf("SubSeed(%d,%d,%d) = %#x, want %#x", c.seed, c.stream, c.lane, got, c.want)
		}
	}
}

func TestStreamUniformGolden(t *testing.T) {
	s := NewSub(1, 0, 0)
	want := []float64{0.36624209016975739, 0.74080506200138174, 0.51056208989368201}
	for i, w := range want {
		if got := s.Uniform(); got != w {
			t.Errorf("draw %d from SubSeed(1,0,0) = %.17g, want %.17g", i, got, w)
		}
	}
	s2 := NewSub(7, 1, 3)
	want2 := []float64{0.18535192565725955, 0.16105542646710269}
	for i, w := range want2 {
		if got := s2.Uniform(); got != w {
			t.Errorf("draw %d from SubSeed(7,1,3) = %.17g, want %.17g", i, got, w)
		}
	}
}

func TestUnitMatchesFirstDrawShape(t *testing.T) {
	// Unit is the stateless draw: same scaling as Uniform applied to a
	// mixed state. It must not advance anything and must be pure.
	st := SubSeed(3, 0, 11)
	a, b := Unit(st), Unit(st)
	if a != b {
		t.Fatalf("Unit is not pure: %v != %v", a, b)
	}
	if a < 0 || a >= 1 {
		t.Fatalf("Unit out of [0,1): %v", a)
	}
}

func TestStreamsDecorrelated(t *testing.T) {
	// Different lanes and streams from one seed must not produce the
	// same leading draws.
	a := NewSub(1, 0, 0).Uniform()
	b := NewSub(1, 0, 1).Uniform()
	c := NewSub(1, 1, 0).Uniform()
	if a == b || a == c || b == c {
		t.Fatalf("substreams collide: %v %v %v", a, b, c)
	}
}

func TestIntnBounds(t *testing.T) {
	s := NewSub(9, 4, 0)
	for i := 0; i < 1000; i++ {
		if v := s.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
	}
}
