package physics

import (
	"math"
	"reflect"
	"testing"

	"sunuintah/internal/advection"
	"sunuintah/internal/burgers"
	"sunuintah/internal/core"
	"sunuintah/internal/grid"
	"sunuintah/internal/heat3d"
	"sunuintah/internal/scheduler"
	"sunuintah/internal/taskgraph"
)

func TestParseSingles(t *testing.T) {
	for _, name := range Names() {
		sel, err := Parse(name)
		if err != nil {
			t.Fatalf("Parse(%q): %v", name, err)
		}
		if sel.Mixed() || sel.Canonical() != name {
			t.Fatalf("Parse(%q) -> %+v canonical %q", name, sel, sel.Canonical())
		}
	}
	sel, err := Parse("")
	if err != nil || !sel.IsDefault() {
		t.Fatalf("empty selector: %+v, %v", sel, err)
	}
}

func TestParseMixCanonicalises(t *testing.T) {
	// Order and duplicates normalise; seed is preserved.
	a, err := Parse("mix:heat3d=1,burgers=1,burgers=1,advection=1,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	want := "mix:burgers=2,advection=1,heat3d=1,seed=7"
	if a.Canonical() != want {
		t.Fatalf("canonical = %q, want %q", a.Canonical(), want)
	}
	b, err := Parse(a.Canonical())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("round trip changed selection: %+v vs %+v", a, b)
	}
}

func TestParseRejects(t *testing.T) {
	for _, s := range []string{
		"navierstokes",
		"mix:burgers",
		"mix:burgers=x",
		"mix:unknown=1",
		"mix:burgers=0,heat3d=0",
		"mix:seed=4",
	} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted", s)
		}
	}
}

func TestSingleWeightMixCollapses(t *testing.T) {
	sel, err := Parse("mix:heat3d=3,seed=9")
	if err != nil {
		t.Fatal(err)
	}
	if sel.Mixed() || sel.Canonical() != "heat3d" {
		t.Fatalf("one-model mixture should collapse: %+v", sel)
	}
}

func TestAssignDeterministicAndCovering(t *testing.T) {
	sel, err := Parse("mix:burgers=2,advection=1,heat3d=1,seed=3")
	if err != nil {
		t.Fatal(err)
	}
	a := sel.Assign(128)
	b := sel.Assign(128)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("assignment not deterministic")
	}
	seen := map[int]int{}
	for _, i := range a {
		seen[i]++
	}
	for i := range sel.Shares {
		if seen[i] == 0 {
			t.Fatalf("share %d got no patches out of 128 (distribution suspiciously skewed): %v", i, seen)
		}
	}
	// Different seed, different partition.
	sel2, _ := Parse("mix:burgers=2,advection=1,heat3d=1,seed=4")
	if reflect.DeepEqual(a, sel2.Assign(128)) {
		t.Fatal("assignment ignores the seed")
	}
}

func TestDefaultProblemMatchesHistoricalBurgers(t *testing.T) {
	cells := grid.IV(32, 32, 64)
	sel := Default()
	prob, err := sel.NewProblem(cells, grid.IV(2, 2, 2), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(prob.Tasks) != 1 || prob.Tasks[0].Patches != nil {
		t.Fatalf("default problem shape changed: %+v", prob.Tasks)
	}
	dx, dy, dz := 1.0/32, 1.0/32, 1.0/64
	if prob.Dt != burgers.StableDt(dx, dy, dz) {
		t.Fatalf("default Dt %v != burgers.StableDt %v", prob.Dt, burgers.StableDt(dx, dy, dz))
	}
	if prob.Tasks[0].Name != "burgers.advance" {
		t.Fatalf("default task name %q", prob.Tasks[0].Name)
	}
}

// runMixed builds and runs the canonical mixed problem functionally and
// returns the simulation (for gathering) plus the selection.
func runMixed(t *testing.T, shards int) (*core.Simulation, Selection, int) {
	t.Helper()
	sel, err := Parse("mix:burgers=1,advection=1,heat3d=1,seed=5")
	if err != nil {
		t.Fatal(err)
	}
	cells := grid.IV(16, 16, 32)
	layout := grid.IV(2, 2, 4)
	prob, err := sel.NewProblem(cells, layout, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{
		Cells:       cells,
		PatchCounts: layout,
		NumCGs:      4,
		Shards:      shards,
		Scheduler:   scheduler.Config{Mode: scheduler.ModeAsync, Functional: true},
	}
	sim, err := core.NewSimulation(cfg, prob)
	if err != nil {
		t.Fatal(err)
	}
	const steps = 4
	if _, err := sim.Run(steps); err != nil {
		t.Fatal(err)
	}
	return sim, sel, steps
}

// patchRegionSolve computes the per-model reference for a mixed run: on
// each model's own patches, the model solved on the model's subdomain
// with exact-solution values on every region boundary — which is what
// the runtime computes, since foreign-patch ghosts fill from the BC.
// Rather than re-deriving that per region, it checks interior accuracy
// against the exact solutions, which all three models track closely at
// this resolution.
func TestMixedRunTracksEachModel(t *testing.T) {
	sim, sel, steps := runMixed(t, 0)
	finalT := float64(steps) * sim.Prob.Dt
	assign := sel.Assign(sim.Level.Layout.NumPatches())

	type check struct {
		labelName string
		exact     func(x, y, z, t float64) float64
		tol       float64
	}
	checks := map[string]check{
		"burgers":   {"u", burgers.Exact, 0.05},
		"advection": {"q", advection.DefaultVelocity.Exact, 0.05},
		"heat3d":    {"T", heat3d.Exact, 0.05},
	}
	// Locate each model's label in the compiled graph by name.
	labels := map[string]*taskgraph.Label{}
	for _, l := range sim.Ranks[0].Graph().Labels {
		labels[l.Name()] = l
	}
	for si, sh := range sel.Shares {
		c := checks[sh.Name]
		l := labels[c.labelName]
		if l == nil {
			t.Fatalf("label %q missing from compiled graph", c.labelName)
		}
		f, err := sim.GatherField(l)
		if err != nil {
			t.Fatal(err)
		}
		patches := 0
		maxErr := 0.0
		for _, p := range sim.Level.Layout.Patches() {
			if assign[p.ID] != si {
				continue
			}
			patches++
			p.Box.ForEach(func(cell grid.IVec) {
				x, y, z := sim.Level.CellCenter(cell)
				if e := math.Abs(f.At(cell) - c.exact(x, y, z, finalT)); e > maxErr {
					maxErr = e
				}
			})
		}
		if patches == 0 {
			t.Fatalf("model %s got no patches", sh.Name)
		}
		if maxErr > c.tol {
			t.Errorf("model %s: max error %v on its %d patches (tol %v)", sh.Name, maxErr, patches, c.tol)
		}
	}
}

func TestMixedRunBitIdenticalAcrossShards(t *testing.T) {
	base, sel, _ := runMixed(t, 0)
	labels := map[string]*taskgraph.Label{}
	for _, l := range base.Ranks[0].Graph().Labels {
		labels[l.Name()] = l
	}
	_ = sel
	for _, shards := range []int{2, 4} {
		other, _, _ := runMixed(t, shards)
		otherLabels := map[string]*taskgraph.Label{}
		for _, l := range other.Ranks[0].Graph().Labels {
			otherLabels[l.Name()] = l
		}
		for name, l := range labels {
			a, err := base.GatherField(l)
			if err != nil {
				t.Fatal(err)
			}
			b, err := other.GatherField(otherLabels[name])
			if err != nil {
				t.Fatal(err)
			}
			base.Level.Layout.Domain.ForEach(func(c grid.IVec) {
				if a.At(c) != b.At(c) {
					t.Fatalf("label %s cell %v differs at shards=%d: %v vs %v", name, c, shards, a.At(c), b.At(c))
				}
			})
		}
	}
}
