// Package physics is the facade over the repo's model problems. It
// registers Burgers, advection and heat3d as first-class scheduled task
// types behind one interface, parses physics selectors (a single model
// or a seeded per-patch mixture), and builds the core.Problem a selector
// denotes. Mixtures partition the patch layout: each patch is assigned
// one model by a stateless seeded draw on its patch ID, the models'
// tasks carry taskgraph patch predicates restricting them to their own
// patches, and each physics region couples to its neighbours through
// the label's exact-solution boundary condition — a Dirichlet interface,
// the way mixed-physics AMR levels couple through prescribed boundaries.
//
// Selector syntax:
//
//	burgers | advection | heat3d
//	mix:burgers=2,advection=1,heat3d=1[,seed=N]
//
// The empty selector means burgers, the historical single-physics
// default; it builds a byte-identical problem (same tasks, same labels,
// same Dt), so every pre-existing cached result stays valid.
package physics

import (
	"fmt"
	"strconv"
	"strings"

	"sunuintah/internal/advection"
	"sunuintah/internal/burgers"
	"sunuintah/internal/core"
	"sunuintah/internal/grid"
	"sunuintah/internal/heat3d"
	"sunuintah/internal/rng"
	"sunuintah/internal/taskgraph"
)

// assignStream is the rng stream index of the per-patch assignment
// draws (lane = patch ID), chosen stateless so the assignment depends
// only on (seed, patch), never on evaluation order.
const assignStream = 0

// InitFunc supplies a label's t=0 values.
type InitFunc func(x, y, z float64) float64

// model is one registered model problem: its advance task, initial
// condition and stable timestep, in the shape specConfig historically
// built for Burgers.
type model struct {
	name string
	// taskPrefix is how the model's intervals are named in traces
	// ("burgers." for "burgers.advance"), used by workload trace replay.
	taskPrefix string
	build      func(simd bool) (*taskgraph.Task, *taskgraph.Label, InitFunc)
	stableDt   func(dx, dy, dz float64) float64
}

// models is the registry, in canonical order. Mixture canonical forms,
// assignment indices and task declaration order all follow it.
var models = []model{
	{
		name:       "burgers",
		taskPrefix: "burgers.",
		build: func(simd bool) (*taskgraph.Task, *taskgraph.Label, InitFunc) {
			u := burgers.NewULabel()
			return burgers.NewAdvanceTask(u, burgers.FastExpLib, simd), u, burgers.Initial
		},
		stableDt: burgers.StableDt,
	},
	{
		name:       "advection",
		taskPrefix: "advection.",
		build: func(simd bool) (*taskgraph.Task, *taskgraph.Label, InitFunc) {
			v := advection.DefaultVelocity
			q := v.NewLabel()
			return v.NewAdvanceTask(q), q, v.Initial
		},
		stableDt: advection.DefaultVelocity.StableDt,
	},
	{
		name:       "heat3d",
		taskPrefix: "heat.",
		build: func(simd bool) (*taskgraph.Task, *taskgraph.Label, InitFunc) {
			u := heat3d.NewLabel()
			return heat3d.NewAdvanceTask(u), u, heat3d.Initial
		},
		stableDt: heat3d.StableDt,
	},
}

// Names returns the registered model names in canonical order.
func Names() []string {
	out := make([]string, len(models))
	for i, m := range models {
		out[i] = m.name
	}
	return out
}

// modelIndex resolves a model name.
func modelIndex(name string) (int, error) {
	for i, m := range models {
		if m.name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("physics: unknown model %q (known: %s)", name, strings.Join(Names(), " "))
}

// ModelForTask maps a traced task name back to the model that emitted
// it ("heat.advance" -> "heat3d"), or "" if no model matches. Workload
// trace replay uses it to recover the physics mix of a recorded run.
func ModelForTask(taskName string) string {
	for _, m := range models {
		if strings.HasPrefix(taskName, m.taskPrefix) {
			return m.name
		}
	}
	return ""
}

// Share is one weighted component of a mixture.
type Share struct {
	Name   string
	Weight float64
}

// Selection is a parsed physics selector: a single model (one share) or
// a seeded per-patch mixture. The zero value is not valid; use Parse or
// Default.
type Selection struct {
	Shares []Share // canonical registry order, weights > 0
	Seed   uint64  // per-patch assignment stream (mixtures)
}

// Default returns the historical single-physics selection (Burgers).
func Default() Selection {
	return Selection{Shares: []Share{{Name: "burgers", Weight: 1}}}
}

// Parse parses a physics selector. The empty string is the Burgers
// default.
func Parse(s string) (Selection, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Default(), nil
	}
	if !strings.HasPrefix(s, "mix:") {
		if _, err := modelIndex(s); err != nil {
			return Selection{}, err
		}
		return Selection{Shares: []Share{{Name: s, Weight: 1}}}, nil
	}
	weights := make(map[string]float64)
	var seed uint64
	for _, tok := range strings.Split(strings.TrimPrefix(s, "mix:"), ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		k, v, ok := strings.Cut(tok, "=")
		if !ok {
			return Selection{}, fmt.Errorf("physics: mixture token %q is not name=weight", tok)
		}
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		if k == "seed" {
			u, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return Selection{}, fmt.Errorf("physics: bad mixture seed %q: %v", v, err)
			}
			seed = u
			continue
		}
		if _, err := modelIndex(k); err != nil {
			return Selection{}, err
		}
		w, err := strconv.ParseFloat(v, 64)
		if err != nil || w < 0 {
			return Selection{}, fmt.Errorf("physics: bad weight %q for model %s", v, k)
		}
		weights[k] += w
	}
	return FromWeights(weights, seed)
}

// FromWeights builds a selection from a name->weight map (a workload
// phase's physics mix) and an assignment seed. Zero-weight entries are
// dropped; a single surviving model collapses to that model (seedless).
func FromWeights(weights map[string]float64, seed uint64) (Selection, error) {
	for name, w := range weights {
		if _, err := modelIndex(name); err != nil {
			return Selection{}, err
		}
		if w < 0 {
			return Selection{}, fmt.Errorf("physics: negative weight %g for model %s", w, name)
		}
	}
	sel := Selection{Seed: seed}
	for _, m := range models {
		if w := weights[m.name]; w > 0 {
			sel.Shares = append(sel.Shares, Share{Name: m.name, Weight: w})
		}
	}
	if len(sel.Shares) == 0 {
		return Selection{}, fmt.Errorf("physics: mixture has no model with positive weight")
	}
	if len(sel.Shares) == 1 {
		// A one-model "mixture" is that model; the seed is meaningless.
		return Selection{Shares: sel.Shares}, nil
	}
	return sel, nil
}

// Canonical renders the selection in its canonical selector form:
// shares in registry order, seed last. Parse(sel.Canonical()) round-
// trips, and equal-behaviour selections render identically — the form
// workload generation puts into Spec.Physics so content hashes are
// stable.
func (sel Selection) Canonical() string {
	if len(sel.Shares) == 1 {
		return sel.Shares[0].Name
	}
	parts := make([]string, 0, len(sel.Shares)+1)
	for _, sh := range sel.Shares {
		parts = append(parts, fmt.Sprintf("%s=%g", sh.Name, sh.Weight))
	}
	parts = append(parts, fmt.Sprintf("seed=%d", sel.Seed))
	return "mix:" + strings.Join(parts, ",")
}

// IsDefault reports whether the selection is the historical Burgers
// default (and therefore must hash and run identically to a spec with
// no physics field at all).
func (sel Selection) IsDefault() bool {
	return len(sel.Shares) == 1 && sel.Shares[0].Name == "burgers"
}

// Mixed reports whether more than one model participates.
func (sel Selection) Mixed() bool { return len(sel.Shares) > 1 }

// Assign maps every patch ID to the index of its share. The draw is a
// stateless function of (seed, patch ID): stable under any evaluation
// order, rank count or shard count.
func (sel Selection) Assign(nPatches int) []int {
	out := make([]int, nPatches)
	if len(sel.Shares) <= 1 {
		return out
	}
	var total float64
	for _, sh := range sel.Shares {
		total += sh.Weight
	}
	for p := range out {
		u := rng.Unit(rng.SubSeed(sel.Seed, assignStream, p)) * total
		cum := 0.0
		for i, sh := range sel.Shares {
			cum += sh.Weight
			out[p] = i
			if u < cum {
				break
			}
		}
	}
	return out
}

// NewProblem builds the core.Problem the selection denotes on a global
// grid of cells partitioned into layout patches. A single-model
// selection builds exactly that model's historical problem (no patch
// predicates); a mixture assigns each patch one model, restricts every
// model's task to its own patches and steps all models with the
// smallest participating stable Dt so every region is stable.
func (sel Selection) NewProblem(cells, layout grid.IVec, simd bool) (core.Problem, error) {
	if len(sel.Shares) == 0 {
		return core.Problem{}, fmt.Errorf("physics: empty selection")
	}
	dx := 1.0 / float64(cells.X)
	dy := 1.0 / float64(cells.Y)
	dz := 1.0 / float64(cells.Z)
	prob := core.Problem{
		Initial: map[*taskgraph.Label]func(x, y, z float64) float64{},
	}
	nPatches := layout.X * layout.Y * layout.Z
	assign := sel.Assign(nPatches)
	for i, sh := range sel.Shares {
		mi, err := modelIndex(sh.Name)
		if err != nil {
			return core.Problem{}, err
		}
		m := models[mi]
		task, label, init := m.build(simd)
		if sel.Mixed() {
			i := i // capture the share index, not the loop variable
			task.Patches = func(patchID int) bool { return assign[patchID] == i }
		}
		prob.Tasks = append(prob.Tasks, task)
		prob.Initial[label] = init
		if dt := m.stableDt(dx, dy, dz); prob.Dt == 0 || dt < prob.Dt {
			prob.Dt = dt
		}
	}
	return prob, nil
}
