package obs

import (
	"testing"

	"sunuintah/internal/sim"
)

// The disabled recorder must stay free: every hook on nil probes (the
// state of every run without -report) is a no-op that allocates nothing,
// so attaching the obs plumbing to the hot paths cannot regress the
// benchgate e2e numbers.
func TestNilProbesZeroAlloc(t *testing.T) {
	var p *RankProbes
	var s *Sampler
	allocs := testing.AllocsPerRun(200, func() {
		p.QueueDepth(1, 3)
		p.QueueDelta(1, -1)
		p.Prepared(1, 2)
		p.Gangs(1, 1)
		p.MsgSent(1, 4096, 2)
		p.DMA(1, 1<<16)
		p.Mem(1, 1<<20)
		p.Fault(1)
		p.Recovery(1)
		_ = s.Rank(3)
		s.Finalize(1)
	})
	if allocs != 0 {
		t.Fatalf("nil probes allocated %.1f times per run, want 0", allocs)
	}
}

// The introspection hooks added for speculation telemetry and live
// progress follow the same contract: a nil recorder's Observe and a
// publish with no subscriber — what every non-instrumented, non-followed
// run pays per window and per rank-step — allocate nothing.
func TestNilSpecAndProgressZeroAlloc(t *testing.T) {
	var rec *SpecRecorder
	var nilBus *ProgressBus
	bus := NewProgressBus()
	ws := sim.WindowStats{Window: 3, Executed: 100, MaxDepth: 4}
	ev := ProgressEvent{Rank: 1, Step: 2, Done: 3, Total: 10}
	allocs := testing.AllocsPerRun(200, func() {
		rec.Observe(ws)
		nilBus.Publish("topic", ev)
		bus.Publish("topic", ev)
	})
	if allocs != 0 {
		t.Fatalf("disabled spec/progress hooks allocated %.1f times per run, want 0", allocs)
	}
}
