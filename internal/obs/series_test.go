package obs

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestSeriesLazyCommit(t *testing.T) {
	s := NewSeries(1, 64)
	s.Observe(0.5, 10)
	s.Observe(2.5, 20)
	s.Finalize(5)
	want := []float64{0, 10, 10, 20, 20, 20} // grid instants 0..5
	if got := s.Samples(); !reflect.DeepEqual(got, want) {
		t.Fatalf("samples = %v, want %v", got, want)
	}
}

// An update exactly on a grid instant must be reflected in that instant's
// sample: the sample is committed only once a strictly later transition
// (or Finalize) proves all same-instant updates have been seen.
func TestSeriesGridInstantUpdateIncluded(t *testing.T) {
	s := NewSeries(1, 64)
	s.Observe(1, 5)
	s.Add(1, 2) // second update at the same instant
	s.Finalize(2)
	want := []float64{0, 7, 7}
	if got := s.Samples(); !reflect.DeepEqual(got, want) {
		t.Fatalf("samples = %v, want %v", got, want)
	}
}

// Same-instant updates must commute in their committed effect: the
// sharded engine executes one virtual instant's events in arbitrary wall
// order, and the sampled series must not depend on it.
func TestSeriesSameInstantOrderInvariance(t *testing.T) {
	run := func(deltas []float64) []float64 {
		s := NewSeries(1, 64)
		for _, d := range deltas {
			s.Add(3.0, d)
		}
		s.Finalize(6)
		return s.Samples()
	}
	a := run([]float64{+1, -1, +2})
	b := run([]float64{+2, +1, -1})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("order-dependent samples: %v vs %v", a, b)
	}
}

func TestSeriesFutureTransition(t *testing.T) {
	s := NewSeries(1, 64)
	s.Add(0, 1)         // message posted at t=0
	s.AddAt(0, 2.5, -1) // lands at t=2.5
	s.Finalize(4)
	want := []float64{1, 1, 1, 0, 0}
	if got := s.Samples(); !reflect.DeepEqual(got, want) {
		t.Fatalf("samples = %v, want %v", got, want)
	}
}

func TestSeriesFutureTransitionClampedToNow(t *testing.T) {
	s := NewSeries(1, 64)
	s.AddAt(3, 1, 5) // "future" instant in the past clamps to t=3
	s.Finalize(4)
	want := []float64{0, 0, 0, 5, 5}
	if got := s.Samples(); !reflect.DeepEqual(got, want) {
		t.Fatalf("samples = %v, want %v", got, want)
	}
}

func TestSeriesDecimation(t *testing.T) {
	s := NewSeries(1, 8)
	for i := 0; i < 40; i++ {
		s.Observe(float64(i)+0.5, float64(i))
	}
	s.Finalize(40)
	if s.Interval() <= 1 {
		t.Fatalf("interval did not grow: %v", s.Interval())
	}
	got := s.Samples()
	if len(got) > 8 {
		t.Fatalf("samples exceed cap: %d", len(got))
	}
	// Every surviving sample must still sit on the coarse grid with the
	// value that held there: sample k at time k*interval has the value of
	// the last Observe before it, i.e. time-1 (Observe at i+0.5 sets i).
	iv := s.Interval()
	for k, v := range got {
		tk := float64(k) * iv
		want := tk - 1
		if tk == 0 {
			want = 0
		}
		if v != want {
			t.Fatalf("sample %d (t=%v) = %v, want %v (interval %v, all %v)", k, tk, v, want, iv, got)
		}
	}
}

func TestSeriesDecimationLockstep(t *testing.T) {
	// Two series on the same grid fed transitions at different times must
	// decimate at the same pushes and end with identical grids.
	a, b := NewSeries(1, 8), NewSeries(1, 8)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 100; i++ {
		a.Add(float64(i)+rng.Float64(), 1)
		b.Observe(float64(i)+rng.Float64(), float64(i))
	}
	a.Finalize(100)
	b.Finalize(100)
	if a.Interval() != b.Interval() {
		t.Fatalf("intervals diverged: %v vs %v", a.Interval(), b.Interval())
	}
	if len(a.Samples()) != len(b.Samples()) {
		t.Fatalf("lengths diverged: %d vs %d", len(a.Samples()), len(b.Samples()))
	}
}

func TestSeriesRefinalize(t *testing.T) {
	// A checkpointed run finalizes at each segment boundary and continues.
	s := NewSeries(1, 64)
	s.Observe(0.5, 1)
	s.Finalize(2)
	s.Observe(3.5, 2)
	s.Finalize(5)
	want := []float64{0, 1, 1, 1, 2, 2}
	if got := s.Samples(); !reflect.DeepEqual(got, want) {
		t.Fatalf("samples = %v, want %v", got, want)
	}
}

func TestSeriesNilSafe(t *testing.T) {
	var s *Series
	s.Observe(1, 2)
	s.Add(1, 2)
	s.AddAt(1, 2, 3)
	s.Finalize(10)
	if s.Samples() != nil || s.Value() != 0 || s.Interval() != 0 {
		t.Fatal("nil series must be inert")
	}
}

func TestSeriesOddCapRoundsUp(t *testing.T) {
	s := NewSeries(1, 7)
	if s.max != 8 {
		t.Fatalf("max = %d, want 8", s.max)
	}
}

// Filling the buffer to exactly its capacity must not decimate; the very
// next committed instant must. The boundary matters because the stride
// doubling assumes overflow happens on an even kept-count.
func TestSeriesDecimationExactBoundary(t *testing.T) {
	s := NewSeries(1, 8)
	for i := 0; i < 7; i++ {
		s.Observe(float64(i)+0.5, float64(i))
	}
	s.Finalize(7) // grid instants 0..7: exactly the cap
	if s.Interval() != 1 {
		t.Fatalf("interval = %v at exact capacity, want 1", s.Interval())
	}
	if got := len(s.Samples()); got != 8 {
		t.Fatalf("samples = %d at exact capacity, want 8", got)
	}
	s.Observe(7.5, 7)
	s.Finalize(8) // one instant past the cap: first decimation
	if s.Interval() != 2 {
		t.Fatalf("interval = %v after overflow, want 2", s.Interval())
	}
	got := s.Samples()
	if len(got) > 8 {
		t.Fatalf("samples exceed cap after overflow: %d", len(got))
	}
	if last := got[len(got)-1]; last != 7 {
		t.Fatalf("last sample = %v, want 7 (value holding at t=8)", last)
	}
}

// A single-sample series (one grid instant committed) must survive both
// sampling and a would-be decimation pass untouched.
func TestSeriesSingleSample(t *testing.T) {
	s := NewSeries(1, 8)
	s.Observe(0, 5)
	s.Finalize(0)
	want := []float64{5}
	if got := s.Samples(); !reflect.DeepEqual(got, want) {
		t.Fatalf("samples = %v, want %v", got, want)
	}
	if s.Interval() != 1 {
		t.Fatalf("interval = %v, want 1", s.Interval())
	}
}
