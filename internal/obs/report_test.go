package obs

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"sunuintah/internal/perf"
	"sunuintah/internal/trace"
)

// feed drives a small deterministic two-rank workload through a sampler.
func feed(s *Sampler) {
	for r := 0; r < 2; r++ {
		p := s.Rank(r)
		p.QueueDepth(0, 8)
		p.Prepared(0, 0)
		p.MsgSent(1e-5, 4096, 6e-5)
		p.Gangs(2e-5, 1)
		p.DMA(2e-5, 1<<16)
		p.Mem(2e-5, 1<<20)
		p.QueueDelta(5e-5, -1)
		p.Gangs(5e-5, 0)
		if r == 1 {
			p.Fault(3e-5)
			p.Recovery(4e-5)
		}
	}
}

func TestSamplerReport(t *testing.T) {
	s := NewSampler(Options{Interval: 1e-5}, 2)
	feed(s)
	rep := s.Report(1e-4)
	if rep.Samples == 0 || rep.IntervalSeconds != 1e-5 || len(rep.Ranks) != 2 {
		t.Fatalf("bad report header: %+v", rep)
	}
	r0, r1 := rep.Ranks[0], rep.Ranks[1]
	if r0.Rank != 0 || r1.Rank != 1 {
		t.Fatalf("rank order wrong: %d, %d", r0.Rank, r1.Rank)
	}
	// All tracks share the grid.
	n := len(r0.QueueDepth)
	for _, track := range [][]float64{r0.Prepared, r0.GangsBusy, r0.InflightMsgs,
		r0.InflightBytes, r0.DMABytes, r0.MemBytes, r1.Faults, r1.Recoveries} {
		if len(track) != n {
			t.Fatalf("track length %d != %d", len(track), n)
		}
	}
	// Fault-free rank omits fault tracks (omitempty keeps JSON lean).
	if r0.Faults != nil || r0.Recoveries != nil {
		t.Fatal("rank 0 should have no fault series")
	}
	// The in-flight message decrement lands at its sender-computed
	// arrival: up at 1e-5 (sample 2 covers t=2e-5), down by 6e-5.
	if r0.InflightMsgs[2] != 1 || r0.InflightMsgs[7] != 0 {
		t.Fatalf("inflight series wrong: %v", r0.InflightMsgs)
	}
	// Lazily created fault series backfill zeros before the first event.
	if r1.Faults[0] != 0 || r1.Faults[len(r1.Faults)-1] != 1 {
		t.Fatalf("fault series wrong: %v", r1.Faults)
	}
}

func TestReportDeterministicAcrossFeedOrder(t *testing.T) {
	mk := func(swap bool) []byte {
		s := NewSampler(Options{}, 2)
		// Same virtual instants, opposite hook call order — as happens
		// when shards execute an instant on different goroutines.
		if swap {
			s.Rank(1).QueueDepth(0, 4)
			s.Rank(0).QueueDepth(0, 8)
		} else {
			s.Rank(0).QueueDepth(0, 8)
			s.Rank(1).QueueDepth(0, 4)
		}
		s.Rank(0).QueueDelta(3e-5, -1)
		s.Rank(1).QueueDelta(3e-5, -1)
		b, err := json.Marshal(s.Report(1e-4))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if a, b := mk(false), mk(true); !reflect.DeepEqual(a, b) {
		t.Fatalf("report depends on feed order:\n%s\n%s", a, b)
	}
}

func TestReportFoldsOverlapAndRoofline(t *testing.T) {
	s := NewSampler(Options{}, 1)
	s.Rank(0).QueueDepth(0, 1)
	rep := s.Report(1e-4)

	rec := trace.New()
	rec.Add(trace.Event{Rank: 0, Kind: trace.KindKernel, Start: 0, End: 4})
	rec.Add(trace.Event{Rank: 0, Kind: trace.KindComm, Start: 1, End: 3})
	rep.AddOverlap(rec.Events(), 1)
	if len(rep.Overlap) != 1 {
		t.Fatalf("overlap rows: %d", len(rep.Overlap))
	}
	ov := rep.Overlap[0]
	if ov.KernelSeconds != 4 || ov.CommSeconds != 2 || ov.KernelCommOverlap != 2 {
		t.Fatalf("overlap fold wrong: %+v", ov)
	}

	rep.AddRoofline(perf.Roofline{PeakFlops: 16e9, MemBandwidth: 4e9}, 5.5, 0.34)
	rf := rep.Roofline
	if rf == nil || rf.PeakGflopsPerCG != 16 || rf.RidgeIntensity != 4 || rf.AchievedGflops != 5.5 {
		t.Fatalf("roofline fold wrong: %+v", rf)
	}

	var b strings.Builder
	rep.WriteTable(&b)
	out := b.String()
	for _, want := range []string{"flight recorder", "roofline", "rank", "kernel.s"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	s := NewSampler(Options{}, 2)
	feed(s)
	rep := s.Report(1e-4)
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(b2) {
		t.Fatal("report JSON does not round-trip")
	}
}

func TestNilSamplerAndTable(t *testing.T) {
	var s *Sampler
	if s.Rank(0) != nil {
		t.Fatal("nil sampler must hand out nil probes")
	}
	s.Finalize(1)
	if s.Report(1) != nil {
		t.Fatal("nil sampler report must be nil")
	}
	var b strings.Builder
	var rep *Report
	rep.AddOverlap(nil, 1)
	rep.AddRoofline(perf.Roofline{}, 0, 0)
	rep.WriteTable(&b)
	if !strings.Contains(b.String(), "no report") {
		t.Fatalf("nil table output: %q", b.String())
	}
}
