package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry is a small host-side metrics registry with Prometheus text
// exposition. It backs the HTTP service's /metrics endpoint: counters,
// gauges and histograms keyed by label values (method/path/code,
// rank/step/kind, ...). Unlike the virtual-time Series, registry metrics
// are wall-clock operational telemetry and make no determinism promise.
//
// A nil *Registry hands out nil vectors, whose methods are no-ops — the
// zero-cost disabled recorder pattern shared with RankProbes.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

type family struct {
	name    string
	help    string
	typ     string // "counter" | "gauge" | "histogram"
	labels  []string
	buckets []float64 // histogram upper bounds, ascending, no +Inf
	samples map[string]*metricSample
	order   []string // insertion keys, re-sorted on write
}

type metricSample struct {
	labelVals []string
	value     float64  // counter/gauge
	bucketN   []uint64 // histogram cumulative-by-write counts per bound
	sum       float64  // histogram sum
	count     uint64   // histogram observation count
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

func (r *Registry) familyFor(name, help, typ string, buckets []float64, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		return f
	}
	f := &family{
		name: name, help: help, typ: typ,
		labels: labels, buckets: buckets,
		samples: make(map[string]*metricSample),
	}
	r.fams[name] = f
	return f
}

// sampleFor finds or creates the sample for the given label values.
// Callers hold r.mu.
func (f *family) sampleFor(labelVals []string) *metricSample {
	key := strings.Join(labelVals, "\x00")
	if s, ok := f.samples[key]; ok {
		return s
	}
	s := &metricSample{labelVals: append([]string(nil), labelVals...)}
	if f.typ == "histogram" {
		s.bucketN = make([]uint64, len(f.buckets))
	}
	f.samples[key] = s
	f.order = append(f.order, key)
	return s
}

// CounterVec is a monotone counter family. The Set escape hatch exists
// for scrape-time sync from counters owned elsewhere (the runner pool's
// atomics).
type CounterVec struct {
	reg *Registry
	fam *family
}

// CounterVec registers (or returns) a counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{reg: r, fam: r.familyFor(name, help, "counter", nil, labels)}
}

// Inc adds 1 to the sample for the given label values.
func (v *CounterVec) Inc(labelVals ...string) { v.Add(1, labelVals...) }

// Add adds d (must be >= 0 to stay monotone) to the sample.
func (v *CounterVec) Add(d float64, labelVals ...string) {
	if v == nil {
		return
	}
	v.reg.mu.Lock()
	v.fam.sampleFor(labelVals).value += d
	v.reg.mu.Unlock()
}

// Set overwrites the counter value — only for mirroring an external
// monotone counter at scrape time.
func (v *CounterVec) Set(val float64, labelVals ...string) {
	if v == nil {
		return
	}
	v.reg.mu.Lock()
	v.fam.sampleFor(labelVals).value = val
	v.reg.mu.Unlock()
}

// GaugeVec is a set-anything gauge family.
type GaugeVec struct {
	reg *Registry
	fam *family
}

// GaugeVec registers (or returns) a gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{reg: r, fam: r.familyFor(name, help, "gauge", nil, labels)}
}

// Set records the gauge value for the given label values.
func (v *GaugeVec) Set(val float64, labelVals ...string) {
	if v == nil {
		return
	}
	v.reg.mu.Lock()
	v.fam.sampleFor(labelVals).value = val
	v.reg.mu.Unlock()
}

// Add adjusts the gauge by d.
func (v *GaugeVec) Add(d float64, labelVals ...string) {
	if v == nil {
		return
	}
	v.reg.mu.Lock()
	v.fam.sampleFor(labelVals).value += d
	v.reg.mu.Unlock()
}

// HistogramVec is a fixed-bucket histogram family.
type HistogramVec struct {
	reg *Registry
	fam *family
}

// HistogramVec registers (or returns) a histogram family with the given
// ascending upper bounds (+Inf is implicit).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	b := append([]float64(nil), buckets...)
	sort.Float64s(b)
	return &HistogramVec{reg: r, fam: r.familyFor(name, help, "histogram", b, labels)}
}

// Observe records one observation.
func (v *HistogramVec) Observe(val float64, labelVals ...string) {
	if v == nil {
		return
	}
	v.reg.mu.Lock()
	s := v.fam.sampleFor(labelVals)
	for i, ub := range v.fam.buckets {
		if val <= ub {
			s.bucketN[i]++
		}
	}
	s.sum += val
	s.count++
	v.reg.mu.Unlock()
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, samples sorted by
// label values, histograms with cumulative buckets, +Inf, _sum, _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := r.fams[name]
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		keys := append([]string(nil), f.order...)
		sort.Strings(keys)
		for _, key := range keys {
			s := f.samples[key]
			if err := writeSample(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSample(w io.Writer, f *family, s *metricSample) error {
	switch f.typ {
	case "histogram":
		for i, ub := range f.buckets {
			lbl := labelString(f.labels, s.labelVals, "le", formatFloat(ub))
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, lbl, s.bucketN[i]); err != nil {
				return err
			}
		}
		lbl := labelString(f.labels, s.labelVals, "le", "+Inf")
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, lbl, s.count); err != nil {
			return err
		}
		base := labelString(f.labels, s.labelVals, "", "")
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, base, formatFloat(s.sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, base, s.count)
		return err
	default:
		lbl := labelString(f.labels, s.labelVals, "", "")
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, lbl, formatFloat(s.value))
		return err
	}
}

// labelString renders {k="v",...}, optionally appending one extra pair
// (the histogram "le" bound); empty label sets render as nothing.
func labelString(names, vals []string, extraK, extraV string) string {
	if len(names) == 0 && extraK == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(vals) {
			v = vals[i]
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(v))
		b.WriteByte('"')
	}
	if extraK != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraK)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraV))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
