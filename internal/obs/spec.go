package obs

import (
	"fmt"
	"io"

	"sunuintah/internal/sim"
)

// SpecWindow is one recorded coordinator barrier. Counter fields are
// cumulative at the barrier (mirroring sim.WindowStats), which keeps the
// stream self-consistent under decimation: consumers diff adjacent kept
// rows to recover per-stride deltas.
type SpecWindow struct {
	Window        int64   `json:"window"`
	GVT           float64 `json:"gvt"`
	LagSeconds    float64 `json:"lagSeconds"`  // furthest shard clock ahead of GVT
	SpanSeconds   float64 `json:"spanSeconds"` // widest finite window granted
	Runnable      int     `json:"runnable"`
	Executed      uint64  `json:"executed"`
	RolledBack    uint64  `json:"rolledBack"`
	Rollbacks     int64   `json:"rollbacks"`
	Cascades      int64   `json:"cascades"`
	AntiMessages  int64   `json:"antiMessages"`
	DupSends      int64   `json:"dupSends"`
	Snapshots     int64   `json:"snapshots"`
	SnapshotBytes int64   `json:"snapshotBytes"`
	MailInjected  int64   `json:"mailInjected"`
	MinDepth      int     `json:"minDepth"`
	MaxDepth      int     `json:"maxDepth"`
	Speculative   bool    `json:"speculative,omitempty"`
}

// SpecReport is the per-window speculation telemetry of one run: the
// decimated barrier stream plus the final cumulative row. Deterministic
// for a fixed (shards, depth) configuration; across configurations the
// stream legitimately differs, so core carries it outside the Result
// JSON that the bit-identity gates compare.
type SpecReport struct {
	// Stride is the barrier distance between kept rows after decimation
	// (1 until the recorder overflowed).
	Stride  int          `json:"stride"`
	Seen    int64        `json:"seen"` // barriers observed in total
	Windows []SpecWindow `json:"windows"`
	// Total is the last observed barrier, kept even when decimation
	// dropped it from Windows — the end-of-run cumulative counters.
	Total SpecWindow `json:"total"`
}

// RollbackFrac is the end-of-run rolled-back fraction of executed events.
func (sr *SpecReport) RollbackFrac() float64 {
	if sr == nil || sr.Total.Executed == 0 {
		return 0
	}
	return float64(sr.Total.RolledBack) / float64(sr.Total.Executed)
}

// SpecRecorder accumulates WindowStats rows with bounded memory, using
// the same overflow policy as Series: at capacity, every other kept row
// is dropped and the keep-stride doubles, so long runs lose resolution
// instead of growing. Rows are kept at barrier ordinals ≡ 1 (mod stride)
// — barrier numbering is 1-based — so decimation preserves a regular
// grid. A nil recorder's Observe is a no-op, the zero-cost disabled
// pattern shared with RankProbes.
type SpecRecorder struct {
	max    int
	stride int64
	rows   []SpecWindow
	last   SpecWindow
	seen   int64
}

// NewSpecRecorder bounds the recorder at maxRows kept rows (rounded up
// to even; <= 0 selects DefaultMaxSamples).
func NewSpecRecorder(maxRows int) *SpecRecorder {
	if maxRows <= 0 {
		maxRows = DefaultMaxSamples
	}
	if maxRows%2 != 0 {
		maxRows++
	}
	return &SpecRecorder{max: maxRows, stride: 1}
}

// Observe records one barrier. It is a sim.WindowObserver and runs on the
// coordinator goroutine between windows: no locking, bounded work.
func (r *SpecRecorder) Observe(ws sim.WindowStats) {
	if r == nil {
		return
	}
	row := SpecWindow{
		Window:        ws.Window,
		GVT:           clampTime(ws.GVT),
		Runnable:      ws.Runnable,
		Executed:      ws.Executed,
		RolledBack:    ws.RolledBack,
		Rollbacks:     ws.Rollbacks,
		Cascades:      ws.CascadeRollbacks,
		AntiMessages:  ws.AntiMessages,
		DupSends:      ws.DupSends,
		Snapshots:     ws.Snapshots,
		SnapshotBytes: ws.SnapshotBytes,
		MailInjected:  ws.MailInjected,
		MinDepth:      ws.MinDepth,
		MaxDepth:      ws.MaxDepth,
		Speculative:   ws.Speculative,
	}
	if ws.MaxNow > ws.GVT && ws.GVT < sim.Infinity {
		row.LagSeconds = float64(ws.MaxNow - ws.GVT)
	}
	if ws.WindowEnd > ws.WindowStart && ws.WindowEnd < sim.Infinity {
		row.SpanSeconds = float64(ws.WindowEnd - ws.WindowStart)
	}
	r.last = row
	r.seen++
	// Keep barriers on the stride grid; (seen-1) is the 0-based ordinal.
	if (r.seen-1)%r.stride != 0 {
		return
	}
	if len(r.rows) >= r.max {
		half := len(r.rows) / 2
		for i := 0; i < half; i++ {
			r.rows[i] = r.rows[2*i]
		}
		r.rows = r.rows[:half]
		r.stride *= 2
		// The incoming ordinal is max*oldStride, divisible by the doubled
		// stride (max is even), so it lands on the coarser grid too.
	}
	r.rows = append(r.rows, row)
}

// Report snapshots the recorded stream; nil when nothing was observed
// (serial engine, or no windows ran).
func (r *SpecRecorder) Report() *SpecReport {
	if r == nil || r.seen == 0 {
		return nil
	}
	return &SpecReport{
		Stride:  int(r.stride),
		Seen:    r.seen,
		Windows: append([]SpecWindow(nil), r.rows...),
		Total:   r.last,
	}
}

// WriteTable renders the stream as a compact table: per-row deltas for
// the counters, instantaneous values for the gauges.
func (sr *SpecReport) WriteTable(w io.Writer) {
	if sr == nil || len(sr.Windows) == 0 {
		fmt.Fprintln(w, "no speculation telemetry (serial engine)")
		return
	}
	t := sr.Total
	fmt.Fprintf(w, "speculation: %d windows (stride %d), %d executed, %d rolled back (%.1f%%), gvt %.6g s\n",
		sr.Seen, sr.Stride, t.Executed, t.RolledBack, sr.RollbackFrac()*100, t.GVT)
	fmt.Fprintf(w, "%8s %12s %10s %10s %8s %8s %8s %8s %6s %5s\n",
		"window", "gvt", "lag.s", "exec+", "rolled+", "rb+", "anti+", "snapB+", "depth", "spec")
	var prev SpecWindow
	for _, row := range sr.Windows {
		spec := ""
		if row.Speculative {
			spec = "*"
		}
		fmt.Fprintf(w, "%8d %12.6g %10.3g %10d %8d %8d %8d %8d %3d-%-2d %5s\n",
			row.Window, row.GVT, row.LagSeconds,
			row.Executed-prev.Executed, row.RolledBack-prev.RolledBack,
			row.Rollbacks-prev.Rollbacks, row.AntiMessages-prev.AntiMessages,
			row.SnapshotBytes-prev.SnapshotBytes,
			row.MinDepth, row.MaxDepth, spec)
		prev = row
	}
}

// clampTime converts a sim.Time to a JSON-friendly float: the Infinity
// sentinel (idle shards) renders as 0 rather than 1.8e308.
func clampTime(t sim.Time) float64 {
	if t >= sim.Infinity {
		return 0
	}
	return float64(t)
}
