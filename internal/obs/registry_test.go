package obs

import (
	"strings"
	"testing"
)

func TestRegistryPrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	reqs := reg.CounterVec("http_requests_total", "Requests served.", "method", "path", "code")
	reqs.Inc("GET", "/metrics", "200")
	reqs.Inc("GET", "/metrics", "200")
	reqs.Inc("POST", "/run", "202")
	up := reg.GaugeVec("uptime_seconds", "Process uptime.")
	up.Set(12.5)
	lat := reg.HistogramVec("request_seconds", "Request latency.", []float64{0.01, 0.3, 1}, "path")
	lat.Observe(0.25, "/run")
	lat.Observe(0.5, "/run")
	lat.Observe(5, "/run")

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP http_requests_total Requests served.",
		"# TYPE http_requests_total counter",
		`http_requests_total{method="GET",path="/metrics",code="200"} 2`,
		`http_requests_total{method="POST",path="/run",code="202"} 1`,
		"# TYPE uptime_seconds gauge",
		"uptime_seconds 12.5",
		"# TYPE request_seconds histogram",
		`request_seconds_bucket{path="/run",le="0.01"} 0`,
		`request_seconds_bucket{path="/run",le="0.3"} 1`,
		`request_seconds_bucket{path="/run",le="1"} 2`,
		`request_seconds_bucket{path="/run",le="+Inf"} 3`,
		`request_seconds_sum{path="/run"} 5.75`,
		`request_seconds_count{path="/run"} 3`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Families must be sorted by name.
	if strings.Index(out, "http_requests_total") > strings.Index(out, "uptime_seconds") {
		t.Error("families not sorted by name")
	}
	// Every non-comment line must be "name{...} value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

func TestRegistryLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.CounterVec("weird_total", "", "v").Inc("a\"b\\c\nd")
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `weird_total{v="a\"b\\c\nd"} 1`
	if !strings.Contains(b.String(), want) {
		t.Fatalf("escaping wrong, got:\n%s\nwant %s", b.String(), want)
	}
}

func TestRegistryCounterSetMirrors(t *testing.T) {
	reg := NewRegistry()
	c := reg.CounterVec("pool_done_total", "Finished jobs.")
	c.Set(7)
	c.Set(9)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "pool_done_total 9\n") {
		t.Fatalf("got:\n%s", b.String())
	}
}

func TestRegistryNilSafe(t *testing.T) {
	var reg *Registry
	reg.CounterVec("x", "").Inc("a")
	reg.GaugeVec("y", "").Set(1)
	reg.HistogramVec("z", "", []float64{1}).Observe(2)
	if err := reg.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	var cv *CounterVec
	cv.Add(1)
	var gv *GaugeVec
	gv.Add(1)
	var hv *HistogramVec
	hv.Observe(1)
}
