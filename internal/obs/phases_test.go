package obs

import (
	"strings"
	"testing"
)

func TestFoldPhases(t *testing.T) {
	s := NewSampler(Options{Interval: 1e-5}, 2)
	feed(s)
	rep := s.Report(1e-4)

	stats := rep.FoldPhases([]PhaseWindow{
		{Name: "early", Start: 0, End: 5e-5},
		// The final sample's midpoint lies past the run end, so the last
		// window over-covers to absorb it.
		{Name: "late", Start: 5e-5, End: 2e-4},
	})
	if len(stats) != 2 {
		t.Fatalf("want 2 phase stats, got %d", len(stats))
	}
	early, late := stats[0], stats[1]
	if early.Samples == 0 || late.Samples == 0 {
		t.Fatalf("empty windows: %+v", stats)
	}
	// Queue sits at 8 until the 5e-5 decrement, then at 7: the early
	// window averages strictly higher than the late one.
	if early.QueueMean <= late.QueueMean {
		t.Fatalf("queue fold wrong: early %g <= late %g", early.QueueMean, late.QueueMean)
	}
	// feed injects rank 1's fault at 3e-5 and recovery at 4e-5 — both in
	// the early window, none in the late one.
	if early.Faults != 1 || early.Recoveries != 1 {
		t.Fatalf("early fault deltas wrong: %+v", early)
	}
	if late.Faults != 0 || late.Recoveries != 0 {
		t.Fatalf("late fault deltas wrong: %+v", late)
	}
	if early.MemPeak != 1<<20 {
		t.Fatalf("mem peak wrong: %g", early.MemPeak)
	}

	// Disjoint windows partition the samples: counts add up to the grid.
	if got := early.Samples + late.Samples; got != rep.Samples {
		t.Fatalf("windows cover %d samples of %d", got, rep.Samples)
	}

	var b strings.Builder
	WritePhaseTable(&b, stats)
	out := b.String()
	for _, want := range []string{"phase", "early", "late", "q.mean"} {
		if !strings.Contains(out, want) {
			t.Errorf("phase table missing %q:\n%s", want, out)
		}
	}
}

func TestFoldPhasesNilAndEmpty(t *testing.T) {
	var rep *Report
	if rep.FoldPhases([]PhaseWindow{{Name: "x", End: 1}}) != nil {
		t.Fatal("nil report must fold to nil")
	}
	s := NewSampler(Options{}, 1)
	s.Rank(0).QueueDepth(0, 1)
	stats := s.Report(1e-4).FoldPhases([]PhaseWindow{{Name: "beyond", Start: 1, End: 2}})
	if len(stats) != 1 || stats[0].Samples != 0 || stats[0].QueueMean != 0 {
		t.Fatalf("out-of-range window should be empty: %+v", stats)
	}
}
