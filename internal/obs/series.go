package obs

// Series is one fixed-interval virtual-time sample track. It records a
// piecewise-constant quantity (queue depth, in-flight bytes, cumulative
// DMA traffic, ...) by holding the current value and lazily committing
// grid samples: the sample at grid instant t_k = k*interval is written
// only once a transition strictly later than t_k arrives (or Finalize
// runs), and therefore always equals the value after *all* transitions at
// or before t_k. Two same-instant updates may arrive in either order —
// as they do when the sharded engine executes a virtual instant on
// concurrent goroutines in nondeterministic wall order — and the
// committed samples come out identical either way.
//
// When the sample buffer reaches its cap the series decimates: every
// other sample is dropped and the interval doubles. Because the kept
// samples are the even grid indices, the surviving grid is exactly the
// coarser grid's prefix and committing continues seamlessly — so all
// series driven with the same (interval, cap) stay in lockstep and a run
// of any virtual length fits in bounded memory.
//
// A nil *Series is a valid no-op recorder: every method returns
// immediately without allocating.
type Series struct {
	interval float64
	max      int
	cur      float64
	next     int     // grid index of the next uncommitted sample
	nextT    float64 // cached float64(next)*interval: the next grid instant
	samples  []float64
	pending  []transition // min-heap on (at, seq)
	pseq     uint64
}

// transition is a future-dated delta: the sender knows at post time when
// an in-flight message lands, so the decrement is queued here and applied
// lazily instead of being scheduled as an event on another rank's engine.
type transition struct {
	at    float64
	seq   uint64
	delta float64
}

// NewSeries builds a series on the given grid. interval and max fall back
// to the package defaults when non-positive; max is rounded up to even so
// that decimation (keep the even indices, double the interval) lands the
// next push exactly on the coarser grid.
func NewSeries(interval float64, max int) *Series {
	if interval <= 0 {
		interval = DefaultInterval
	}
	if max <= 0 {
		max = DefaultMaxSamples
	}
	if max%2 != 0 {
		max++
	}
	return &Series{interval: interval, max: max}
}

// Observe sets the current value as of virtual time t.
func (s *Series) Observe(t, v float64) {
	if s == nil {
		return
	}
	s.advance(t)
	s.cur = v
}

// Add applies a delta to the current value as of virtual time t.
func (s *Series) Add(t, dv float64) {
	if s == nil {
		return
	}
	s.advance(t)
	s.cur += dv
}

// AddAt records, at time t, a delta that takes effect at the future
// instant at (clamped to t). The delta is applied lazily when a later
// update or Finalize reaches it.
func (s *Series) AddAt(t, at, dv float64) {
	if s == nil {
		return
	}
	s.advance(t)
	if at < t {
		at = t
	}
	s.pseq++
	s.pushPending(transition{at: at, seq: s.pseq, delta: dv})
}

// Value returns the current (uncommitted) value.
func (s *Series) Value() float64 {
	if s == nil {
		return 0
	}
	return s.cur
}

// Interval returns the current grid interval (it doubles on decimation).
func (s *Series) Interval() float64 {
	if s == nil {
		return 0
	}
	return s.interval
}

// Samples returns a copy of the committed samples.
func (s *Series) Samples() []float64 {
	if s == nil || len(s.samples) == 0 {
		return nil
	}
	out := make([]float64, len(s.samples))
	copy(out, s.samples)
	return out
}

// Finalize drains pending transitions due by end and commits every grid
// sample at or before end (inclusive, unlike the strict commit driven by
// live transitions — the run is over, so the value at the boundary is
// final). Calling it again with a later end simply continues the series.
func (s *Series) Finalize(end float64) {
	if s == nil {
		return
	}
	s.advance(end)
	for s.nextT <= end {
		s.push(s.cur)
	}
}

// advance applies pending transitions due at or before t, committing the
// grid samples each one proves out, then commits samples strictly before
// t itself. The hooks fire orders of magnitude more often than the grid
// commits (event granularity is nanoseconds, the grid tens of
// microseconds), so the everything-already-committed case must stay two
// comparisons — that fast path is what keeps the sampler inside the
// benchgate obs.overhead_frac budget.
func (s *Series) advance(t float64) {
	if len(s.pending) > 0 && s.pending[0].at <= t {
		s.drainPending(t)
	}
	if s.nextT < t {
		s.commitBefore(t)
	}
}

// drainPending applies pending transitions due at or before t in (at,
// seq) order, committing the grid samples each one proves out.
func (s *Series) drainPending(t float64) {
	for len(s.pending) > 0 && s.pending[0].at <= t {
		tr := s.popPending()
		s.commitBefore(tr.at)
		s.cur += tr.delta
	}
}

// commitBefore commits grid samples strictly before t with the held
// value: an update at t proves the value held through every earlier grid
// instant, while the sample at t itself stays open for same-instant
// updates still to come.
//
// Committing is batched: the value is constant between updates, so a
// whole run of grid points lands as one slice fill instead of one call
// per point. The batch length starts from a float division and is then
// fixed against the exact per-index comparison (float64(idx)*interval <
// t, monotone in idx), so the committed samples are bit-identical to the
// one-at-a-time loop this replaces — only ~20x cheaper on the dense
// grids the e2e cases commit.
func (s *Series) commitBefore(t float64) {
	for s.nextT < t {
		if len(s.samples) >= s.max {
			s.decimate()
			continue
		}
		if s.samples == nil {
			// A series that commits at all almost always commits
			// hundreds of samples (the grid spans the whole run), so
			// allocate the full cap once instead of growing.
			s.samples = make([]float64, 0, s.max)
		}
		avail := s.max - len(s.samples)
		n := int((t - s.nextT) / s.interval)
		if n < 1 {
			n = 1
		}
		if n > avail {
			n = avail
		}
		for n > 1 && float64(s.next+n-1)*s.interval >= t {
			n--
		}
		for n < avail && float64(s.next+n)*s.interval < t {
			n++
		}
		l := len(s.samples)
		s.samples = s.samples[:l+n]
		for i := l; i < l+n; i++ {
			s.samples[i] = s.cur
		}
		s.next += n
		s.nextT = float64(s.next) * s.interval
	}
}

// decimate drops every other sample and doubles the grid interval. The
// kept samples are the even grid indices, so the surviving grid is the
// coarser grid's prefix and committing continues seamlessly.
func (s *Series) decimate() {
	half := len(s.samples) / 2
	for i := 0; i < half; i++ {
		s.samples[i] = s.samples[2*i]
	}
	s.samples = s.samples[:half]
	s.interval *= 2
	s.next = half
	s.nextT = float64(s.next) * s.interval
}

// push appends one committed sample, decimating first when full.
func (s *Series) push(v float64) {
	if s.samples == nil {
		s.samples = make([]float64, 0, s.max)
	}
	if len(s.samples) >= s.max {
		s.decimate()
	}
	s.samples = append(s.samples, v)
	s.next++
	s.nextT = float64(s.next) * s.interval
}

// pushPending / popPending maintain the min-heap on (at, seq). seq breaks
// ties so same-instant future deltas apply in post order.
func (s *Series) pushPending(tr transition) {
	s.pending = append(s.pending, tr)
	i := len(s.pending) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !transitionLess(s.pending[i], s.pending[p]) {
			break
		}
		s.pending[i], s.pending[p] = s.pending[p], s.pending[i]
		i = p
	}
}

func (s *Series) popPending() transition {
	top := s.pending[0]
	n := len(s.pending) - 1
	s.pending[0] = s.pending[n]
	s.pending = s.pending[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && transitionLess(s.pending[l], s.pending[small]) {
			small = l
		}
		if r < n && transitionLess(s.pending[r], s.pending[small]) {
			small = r
		}
		if small == i {
			break
		}
		s.pending[i], s.pending[small] = s.pending[small], s.pending[i]
		i = small
	}
	return top
}

func transitionLess(a, b transition) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}
