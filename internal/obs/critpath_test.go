package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"

	"sunuintah/internal/sim"
	"sunuintah/internal/trace"
)

// handoffTrace is a two-rank timeline with one cross-rank dependency:
// rank 0 computes and communicates, rank 1 starts its kernel only after
// rank 0's comm lands (with a 0.5s gap the walk must attribute as wait).
func handoffTrace() []trace.Event {
	return []trace.Event{
		{Rank: 0, Step: 0, Kind: trace.KindKernel, Name: "k0", Start: 0, End: 1},
		{Rank: 0, Step: 0, Kind: trace.KindComm, Name: "send", Start: 1, End: 1.5},
		{Rank: 1, Step: 0, Kind: trace.KindIdle, Name: "idle", Start: 0, End: 1.5},
		{Rank: 1, Step: 0, Kind: trace.KindKernel, Name: "k1", Start: 2, End: 4},
	}
}

func TestCriticalPathHandoff(t *testing.T) {
	rep := CriticalPath(handoffTrace(), 5)
	if rep == nil {
		t.Fatal("nil report for non-empty trace")
	}
	if rep.MakespanSeconds != 4 {
		t.Fatalf("makespan = %v, want 4", rep.MakespanSeconds)
	}
	sums := map[string]float64{}
	total := 0.0
	for _, c := range rep.Categories {
		sums[c.Category] = c.Seconds
		total += c.Seconds
	}
	// The walk telescopes, so the categories partition the makespan.
	if math.Abs(total-rep.MakespanSeconds) > 1e-12 {
		t.Fatalf("category seconds sum %v != makespan %v", total, rep.MakespanSeconds)
	}
	// k1 (2s) + k0 (1s) on the chain; the send covers 1–1.5; the 1.5–2 gap
	// is wait. The idle interval on rank 1 covers 0–1.5 but the chain hops
	// off rank 1 at 1.5 straight to the comm's end, so idle contributes
	// nothing here.
	if sums[CatCPEKernel] != 3 {
		t.Fatalf("cpe-kernel = %v, want 3", sums[CatCPEKernel])
	}
	if sums[CatComm] != 0.5 {
		t.Fatalf("comm = %v, want 0.5", sums[CatComm])
	}
	if sums[CatWait] != 0.5 {
		t.Fatalf("wait = %v, want 0.5", sums[CatWait])
	}
	if rep.Hops == 0 {
		t.Fatal("expected at least one rank hop on the handoff chain")
	}
	shareSum := 0.0
	for _, c := range rep.Categories {
		shareSum += c.Share
	}
	if math.Abs(shareSum-1) > 1e-12 {
		t.Fatalf("shares sum to %v, want 1", shareSum)
	}
}

// The chain is a pure function of the event multiset: input order must
// not matter, or the sharded engine's arrival order would leak into the
// report and break byte-identity.
func TestCriticalPathInputOrderInvariant(t *testing.T) {
	base := handoffTrace()
	want, err := json.Marshal(CriticalPath(base, 5))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		shuffled := append([]trace.Event(nil), base...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		got, err := json.Marshal(CriticalPath(shuffled, 5))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d: report differs under shuffle:\n%s\nvs\n%s", trial, got, want)
		}
	}
}

// A randomized multi-rank timeline still partitions exactly: whatever the
// walk does, attributed seconds must telescope to the makespan.
func TestCriticalPathPartitionsMakespan(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	kinds := []trace.Kind{trace.KindKernel, trace.KindMPEWork, trace.KindComm, trace.KindReduce, trace.KindIdle}
	var evs []trace.Event
	for rank := 0; rank < 4; rank++ {
		t0 := 0.0
		for i := 0; i < 50; i++ {
			dur := rng.Float64() * 0.1
			gap := rng.Float64() * 0.02
			evs = append(evs, trace.Event{
				Rank: rank, Step: i, Kind: kinds[rng.Intn(len(kinds))],
				Name:  "ev",
				Start: sim.Time(t0 + gap), End: sim.Time(t0 + gap + dur),
			})
			t0 += gap + dur
		}
	}
	rep := CriticalPath(evs, 3)
	if rep == nil {
		t.Fatal("nil report")
	}
	total := 0.0
	for _, c := range rep.Categories {
		if c.Seconds < 0 {
			t.Fatalf("negative category seconds: %+v", c)
		}
		total += c.Seconds
	}
	if math.Abs(total-rep.MakespanSeconds) > 1e-9 {
		t.Fatalf("category sum %v != makespan %v", total, rep.MakespanSeconds)
	}
	if len(rep.TopSegments) > 3 {
		t.Fatalf("topK not honoured: %d segments", len(rep.TopSegments))
	}
}

func TestCriticalPathEmptyAndZeroDuration(t *testing.T) {
	if rep := CriticalPath(nil, 5); rep != nil {
		t.Fatalf("empty timeline: got %+v, want nil", rep)
	}
	markers := []trace.Event{
		{Rank: 0, Kind: trace.KindFault, Start: 1, End: 1},
		{Rank: 1, Kind: trace.KindRecovery, Start: 2, End: 2},
	}
	if rep := CriticalPath(markers, 5); rep != nil {
		t.Fatalf("all-zero-duration timeline: got %+v, want nil", rep)
	}
}

func TestCriticalPathFaultMarkersOnChain(t *testing.T) {
	// A recovery interval with real duration lands in rollback-recovery.
	evs := []trace.Event{
		{Rank: 0, Kind: trace.KindKernel, Name: "k", Start: 0, End: 1},
		{Rank: 0, Kind: trace.KindRecovery, Name: "resend", Start: 1, End: 1.25},
		{Rank: 0, Kind: trace.KindKernel, Name: "k2", Start: 1.25, End: 2},
	}
	rep := CriticalPath(evs, 5)
	for _, c := range rep.Categories {
		if c.Category == CatRecovery && c.Seconds != 0.25 {
			t.Fatalf("rollback-recovery = %v, want 0.25", c.Seconds)
		}
	}
}

func TestWriteCriticalPath(t *testing.T) {
	r := &Report{}
	var buf bytes.Buffer
	r.WriteCriticalPath(&buf)
	if !strings.Contains(buf.String(), "no critical path") {
		t.Fatalf("nil-critpath table = %q", buf.String())
	}
	r.AddCriticalPath(handoffTrace(), 5)
	buf.Reset()
	r.WriteCriticalPath(&buf)
	out := buf.String()
	for _, want := range []string{"critical path:", "cpe-kernel", "100.0%", "top chain segments"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}
