package obs

import "sync"

// ProgressEvent is one live job-progress update: a rank finished a
// timestep. It is the payload of the SSE stream behind sunserver's
// GET /jobs/{id}/events.
type ProgressEvent struct {
	Seq            uint64  `json:"seq"`
	Rank           int     `json:"rank"`
	Step           int     `json:"step"`  // 0-based timestep just completed
	Steps          int     `json:"steps"` // timesteps in the current run segment
	Done           int64   `json:"done"`  // completed (rank, step) pairs this segment
	Total          int64   `json:"total"`
	VirtualSeconds float64 `json:"virtualSeconds"`
	// Dropped counts events this subscriber lost to backpressure since
	// its previous delivered event (slow-consumer drop, never blocking
	// the publisher).
	Dropped uint64 `json:"dropped,omitempty"`
}

// Frac is the fractional completion, 0 when Total is unknown.
func (e ProgressEvent) Frac() float64 {
	if e.Total <= 0 {
		return 0
	}
	return float64(e.Done) / float64(e.Total)
}

// ProgressBus is a topic-keyed fan-out for ProgressEvents with bounded,
// non-blocking delivery: each subscriber owns a fixed-capacity channel
// (the ring buffer), and a publish that finds it full drops the event and
// accounts the loss on the subscriber — the running simulation never
// waits on a consumer. Topics are implicit: publishing to a topic with no
// subscribers is a cheap no-op, so the execution path can publish
// unconditionally. A nil bus is safe to publish to.
type ProgressBus struct {
	mu     sync.Mutex
	topics map[string]*progressTopic
}

type progressTopic struct {
	seq  uint64
	subs []*ProgressSub
}

// ProgressSub is one subscription. Receive from C; the channel is closed
// by Unsubscribe. Events arrive in publish order with Seq strictly
// increasing per topic (gaps mark drops, also counted in Dropped).
type ProgressSub struct {
	C       <-chan ProgressEvent
	ch      chan ProgressEvent
	topic   string
	dropped uint64 // guarded by the bus mutex
}

// NewProgressBus builds an empty bus.
func NewProgressBus() *ProgressBus {
	return &ProgressBus{topics: make(map[string]*progressTopic)}
}

// Subscribe attaches a subscriber to topic with a ring of buf events
// (<= 0 selects 64).
func (b *ProgressBus) Subscribe(topic string, buf int) *ProgressSub {
	if buf <= 0 {
		buf = 64
	}
	ch := make(chan ProgressEvent, buf)
	sub := &ProgressSub{C: ch, ch: ch, topic: topic}
	b.mu.Lock()
	tp := b.topics[topic]
	if tp == nil {
		tp = &progressTopic{}
		b.topics[topic] = tp
	}
	tp.subs = append(tp.subs, sub)
	b.mu.Unlock()
	return sub
}

// Unsubscribe detaches sub and closes its channel. Idempotent; nil-safe.
func (b *ProgressBus) Unsubscribe(sub *ProgressSub) {
	if b == nil || sub == nil {
		return
	}
	b.mu.Lock()
	if tp := b.topics[sub.topic]; tp != nil {
		for i, s := range tp.subs {
			if s == sub {
				tp.subs = append(tp.subs[:i], tp.subs[i+1:]...)
				close(sub.ch)
				break
			}
		}
		if len(tp.subs) == 0 {
			delete(b.topics, sub.topic)
		}
	}
	b.mu.Unlock()
}

// Subscribers returns the current subscriber count for topic.
func (b *ProgressBus) Subscribers(topic string) int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if tp := b.topics[topic]; tp != nil {
		return len(tp.subs)
	}
	return 0
}

// Publish stamps ev's Seq and delivers it to every subscriber of topic
// without blocking: a full subscriber drops the event and the loss is
// reported on that subscriber's next delivered event.
func (b *ProgressBus) Publish(topic string, ev ProgressEvent) {
	if b == nil {
		return
	}
	b.mu.Lock()
	tp := b.topics[topic]
	if tp == nil || len(tp.subs) == 0 {
		b.mu.Unlock()
		return
	}
	tp.seq++
	ev.Seq = tp.seq
	for _, sub := range tp.subs {
		e := ev
		e.Dropped = sub.dropped
		select {
		case sub.ch <- e:
			sub.dropped = 0
		default:
			sub.dropped++
		}
	}
	b.mu.Unlock()
}
