package obs

import (
	"fmt"
	"io"
)

// PhaseWindow names one virtual-time window of a run — typically one
// phase of a workload scenario projected onto a job's timeline.
type PhaseWindow struct {
	Name  string  `json:"name"`
	Start float64 `json:"start"` // virtual seconds, inclusive
	End   float64 `json:"end"`   // virtual seconds, exclusive
}

// PhaseStat folds the report's rank series over one window, averaged
// across ranks. Faults and Recoveries are deltas of the cumulative
// counters over the window, summed across ranks.
type PhaseStat struct {
	Name         string  `json:"name"`
	Start        float64 `json:"start"`
	End          float64 `json:"end"`
	Samples      int     `json:"samples"` // samples per rank inside the window
	QueueMean    float64 `json:"queueMean"`
	GangsMean    float64 `json:"gangsMean"`
	InflightMean float64 `json:"inflightMean"`
	MemPeak      float64 `json:"memPeak"`
	Faults       float64 `json:"faults"`
	Recoveries   float64 `json:"recoveries"`
}

// FoldPhases slices the per-rank series into the given virtual-time
// windows and aggregates each. A sample belongs to the window containing
// its interval midpoint, so every sample lands in at most one window and
// the fold is independent of rank iteration order (pure arithmetic over
// committed series).
func (r *Report) FoldPhases(windows []PhaseWindow) []PhaseStat {
	if r == nil {
		return nil
	}
	out := make([]PhaseStat, len(windows))
	for wi, w := range windows {
		st := PhaseStat{Name: w.Name, Start: w.Start, End: w.End}
		var qSum, gSum, iSum float64
		var n int
		for _, rs := range r.Ranks {
			lastBefore := func(xs []float64) float64 {
				v := 0.0
				for i, x := range xs {
					if mid := (float64(i) + 0.5) * r.IntervalSeconds; mid < w.Start {
						v = x
					} else {
						break
					}
				}
				return v
			}
			fault0, recov0 := lastBefore(rs.Faults), lastBefore(rs.Recoveries)
			faultEnd, recovEnd := fault0, recov0
			rankSamples := 0
			for i := range rs.QueueDepth {
				mid := (float64(i) + 0.5) * r.IntervalSeconds
				if mid < w.Start || mid >= w.End {
					continue
				}
				rankSamples++
				qSum += rs.QueueDepth[i]
				if i < len(rs.GangsBusy) {
					gSum += rs.GangsBusy[i]
				}
				if i < len(rs.InflightMsgs) {
					iSum += rs.InflightMsgs[i]
				}
				if i < len(rs.MemBytes) && rs.MemBytes[i] > st.MemPeak {
					st.MemPeak = rs.MemBytes[i]
				}
				if i < len(rs.Faults) {
					faultEnd = rs.Faults[i]
				}
				if i < len(rs.Recoveries) {
					recovEnd = rs.Recoveries[i]
				}
			}
			n += rankSamples
			if rankSamples > st.Samples {
				st.Samples = rankSamples
			}
			st.Faults += faultEnd - fault0
			st.Recoveries += recovEnd - recov0
		}
		if n > 0 {
			st.QueueMean = qSum / float64(n)
			st.GangsMean = gSum / float64(n)
			st.InflightMean = iSum / float64(n)
		}
		out[wi] = st
	}
	return out
}

// WritePhaseTable renders folded phase stats as a fixed-width table.
func WritePhaseTable(w io.Writer, stats []PhaseStat) {
	fmt.Fprintf(w, "%-14s %10s %10s %8s %7s %7s %9s %11s %7s %7s\n",
		"phase", "start(s)", "end(s)", "samples", "q.mean", "gangs", "infl.mean", "mem.peak", "faults", "recov")
	for _, st := range stats {
		fmt.Fprintf(w, "%-14s %10.4g %10.4g %8d %7.2f %7.2f %9.2f %11.0f %7.0f %7.0f\n",
			st.Name, st.Start, st.End, st.Samples, st.QueueMean, st.GangsMean,
			st.InflightMean, st.MemPeak, st.Faults, st.Recoveries)
	}
}
