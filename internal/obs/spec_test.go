package obs

import (
	"bytes"
	"strings"
	"testing"

	"sunuintah/internal/sim"
)

func specWindow(i int) sim.WindowStats {
	return sim.WindowStats{
		Window:   int64(i),
		GVT:      sim.Time(i) * 0.001,
		MaxNow:   sim.Time(i)*0.001 + 0.0005,
		Runnable: 2,
		Executed: uint64(i) * 10,
		MaxDepth: 4,
	}
}

func TestSpecRecorderDecimation(t *testing.T) {
	r := NewSpecRecorder(8)
	for i := 1; i <= 40; i++ {
		r.Observe(specWindow(i))
	}
	rep := r.Report()
	if rep == nil {
		t.Fatal("nil report after 40 windows")
	}
	if rep.Seen != 40 {
		t.Fatalf("seen = %d, want 40", rep.Seen)
	}
	if len(rep.Windows) > 8 {
		t.Fatalf("rows exceed cap: %d", len(rep.Windows))
	}
	if rep.Stride&(rep.Stride-1) != 0 || rep.Stride < 2 {
		t.Fatalf("stride = %d, want a power of two > 1 after overflow", rep.Stride)
	}
	// Kept rows sit on the stride grid (1-based barrier ordinals ≡ 1 mod
	// stride) and stay in order.
	for i, row := range rep.Windows {
		if (row.Window-1)%int64(rep.Stride) != 0 {
			t.Fatalf("row %d (window %d) off the stride-%d grid", i, row.Window, rep.Stride)
		}
		if i > 0 && row.Window <= rep.Windows[i-1].Window {
			t.Fatalf("rows out of order at %d: %d after %d", i, row.Window, rep.Windows[i-1].Window)
		}
	}
	if rep.Total.Window != 40 || rep.Total.Executed != 400 {
		t.Fatalf("total = %+v, want the 40th barrier's cumulative row", rep.Total)
	}
}

func TestSpecRecorderNilAndEmpty(t *testing.T) {
	var r *SpecRecorder
	r.Observe(specWindow(1)) // must not panic
	if r.Report() != nil {
		t.Fatal("nil recorder must report nil")
	}
	if NewSpecRecorder(4).Report() != nil {
		t.Fatal("untouched recorder must report nil")
	}
}

func TestSpecRecorderInfinityClamped(t *testing.T) {
	r := NewSpecRecorder(8)
	r.Observe(sim.WindowStats{
		Window: 1, GVT: sim.Infinity, MaxNow: sim.Infinity,
		WindowStart: 1, WindowEnd: sim.Infinity,
	})
	rep := r.Report()
	row := rep.Windows[0]
	if row.GVT != 0 || row.LagSeconds != 0 || row.SpanSeconds != 0 {
		t.Fatalf("Infinity leaked into the row: %+v", row)
	}
}

func TestSpecReportRollbackFrac(t *testing.T) {
	var nilRep *SpecReport
	if nilRep.RollbackFrac() != 0 {
		t.Fatal("nil report frac must be 0")
	}
	rep := &SpecReport{Total: SpecWindow{Executed: 200, RolledBack: 50}}
	if f := rep.RollbackFrac(); f != 0.25 {
		t.Fatalf("frac = %v, want 0.25", f)
	}
}

func TestSpecReportWriteTable(t *testing.T) {
	var buf bytes.Buffer
	var nilRep *SpecReport
	nilRep.WriteTable(&buf)
	if !strings.Contains(buf.String(), "no speculation telemetry") {
		t.Fatalf("nil table = %q", buf.String())
	}
	r := NewSpecRecorder(8)
	for i := 1; i <= 5; i++ {
		r.Observe(specWindow(i))
	}
	buf.Reset()
	r.Report().WriteTable(&buf)
	out := buf.String()
	for _, want := range []string{"speculation:", "window", "gvt"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}
