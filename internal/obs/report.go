package obs

import (
	"fmt"
	"io"
	"sort"

	"sunuintah/internal/perf"
	"sunuintah/internal/sim"
	"sunuintah/internal/trace"
)

// RankSeries is one rank's committed sample tracks. All tracks share the
// report's grid (same interval, same length); Faults/Recoveries are
// omitted for fault-free runs.
type RankSeries struct {
	Rank          int       `json:"rank"`
	QueueDepth    []float64 `json:"queueDepth,omitempty"`
	Prepared      []float64 `json:"prepared,omitempty"`
	GangsBusy     []float64 `json:"gangsBusy,omitempty"`
	InflightMsgs  []float64 `json:"inflightMsgs,omitempty"`
	InflightBytes []float64 `json:"inflightBytes,omitempty"`
	DMABytes      []float64 `json:"dmaBytes,omitempty"`
	MemBytes      []float64 `json:"memBytes,omitempty"`
	Faults        []float64 `json:"faults,omitempty"`
	Recoveries    []float64 `json:"recoveries,omitempty"`
}

// RankOverlap folds the trace recorder's interval statistics for one
// rank: total busy time by class and how much of the kernel time was
// hidden under communication or MPE work (the paper's Table VI metric).
type RankOverlap struct {
	Rank          int     `json:"rank"`
	KernelSeconds float64 `json:"kernelSeconds"`
	MPEKernSecs   float64 `json:"mpeKernelSeconds,omitempty"`
	MPEWorkSecs   float64 `json:"mpeWorkSeconds"`
	CommSeconds   float64 `json:"commSeconds"`
	IdleSeconds   float64 `json:"idleSeconds"`
	// KernelCommOverlap is virtual time where an offloaded kernel and
	// communication were in flight together; KernelMPEOverlap likewise
	// for kernel + MPE-side work.
	KernelCommOverlap float64 `json:"kernelCommOverlapSeconds"`
	KernelMPEOverlap  float64 `json:"kernelMpeOverlapSeconds"`
}

// RooflineReport places the achieved rate on the machine's roofline.
type RooflineReport struct {
	PeakGflopsPerCG float64 `json:"peakGflopsPerCG"`
	MemBandwidthGBs float64 `json:"memBandwidthGBs"`
	RidgeIntensity  float64 `json:"ridgeIntensity"`
	AchievedGflops  float64 `json:"achievedGflops"`
	Efficiency      float64 `json:"efficiency"`
}

// Report is the run's flight-recorder output: the per-rank virtual-time
// series plus the folded overlap and roofline summaries. It is attached
// to core's Result and is byte-identical across -shards and -workers
// settings for the same Spec.
type Report struct {
	IntervalSeconds float64         `json:"intervalSeconds"`
	EndSeconds      float64         `json:"endSeconds"`
	Samples         int             `json:"samples"`
	Ranks           []RankSeries    `json:"ranks"`
	Overlap         []RankOverlap   `json:"overlap,omitempty"`
	Roofline        *RooflineReport `json:"roofline,omitempty"`
	CritPath        *CritPathReport `json:"critPath,omitempty"`
}

// Report finalizes every series at end and assembles the sampled half of
// the report. Overlap and roofline sections are folded in by the caller
// via AddOverlap/AddRoofline (they live in trace/perf, not here).
func (s *Sampler) Report(end sim.Time) *Report {
	if s == nil {
		return nil
	}
	s.Finalize(end)
	rep := &Report{EndSeconds: float64(end)}
	for _, p := range s.ranks {
		rep.Ranks = append(rep.Ranks, RankSeries{
			Rank:          p.rank,
			QueueDepth:    p.queue.Samples(),
			Prepared:      p.prepared.Samples(),
			GangsBusy:     p.gangs.Samples(),
			InflightMsgs:  p.inflight.Samples(),
			InflightBytes: p.inflightB.Samples(),
			DMABytes:      p.dma.Samples(),
			MemBytes:      p.mem.Samples(),
			Faults:        p.faults.Samples(),
			Recoveries:    p.recov.Samples(),
		})
		// All eagerly created series decimate in lockstep (same grid,
		// same push count), so any rank's queue track carries the
		// report-wide interval and sample count.
		rep.IntervalSeconds = p.queue.Interval()
		if n := len(rep.Ranks[len(rep.Ranks)-1].QueueDepth); n > rep.Samples {
			rep.Samples = n
		}
	}
	return rep
}

// AddOverlap folds per-rank interval statistics from the recorded trace
// events (any order; the caller usually hands the same canonical slice
// the critical path walks, so the whole report costs one snapshot).
//
// One pass accumulates every rank's totals and the two overlap pairs
// share one per-rank edge sweep. (The naive per-rank
// Recorder.OverlapTime calls each re-copy and re-scan the whole
// multi-rank event list — 3 passes x nRanks turned the flight recorder
// into the dominant cost of short observed runs, which the benchgate
// obs.overhead_frac metric now guards against.)
func (r *Report) AddOverlap(events []trace.Event, nRanks int) {
	if r == nil {
		return
	}
	r.Overlap = r.Overlap[:0]
	for rank := 0; rank < nRanks; rank++ {
		r.Overlap = append(r.Overlap, RankOverlap{Rank: rank})
	}

	// Edge sweep per rank over the three overlap-relevant kinds. delta
	// sorts close (-1) before open (+1) at equal times so adjacent
	// intervals do not count as overlapping — same tie rule as
	// trace.Recorder.OverlapTime.
	type edge struct {
		t     sim.Time
		kind  int8 // 0 kernel, 1 comm, 2 mpe-work
		delta int8
	}
	perRank := make([][]edge, nRanks)
	for _, e := range events {
		if e.Rank < 0 || e.Rank >= nRanks {
			continue
		}
		ov := &r.Overlap[e.Rank]
		var kind int8
		switch e.Kind {
		case trace.KindKernel:
			ov.KernelSeconds += float64(e.Duration())
			kind = 0
		case trace.KindComm:
			ov.CommSeconds += float64(e.Duration())
			kind = 1
		case trace.KindMPEWork:
			ov.MPEWorkSecs += float64(e.Duration())
			kind = 2
		case trace.KindMPEKern:
			ov.MPEKernSecs += float64(e.Duration())
			continue
		case trace.KindIdle:
			ov.IdleSeconds += float64(e.Duration())
			continue
		default:
			continue
		}
		perRank[e.Rank] = append(perRank[e.Rank],
			edge{e.Start, kind, +1}, edge{e.End, kind, -1})
	}
	for rank, edges := range perRank {
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].t != edges[j].t {
				return edges[i].t < edges[j].t
			}
			return edges[i].delta < edges[j].delta
		})
		var open [3]int
		var since sim.Time
		ov := &r.Overlap[rank]
		for _, ed := range edges {
			if open[0] > 0 {
				if open[1] > 0 {
					ov.KernelCommOverlap += float64(ed.t - since)
				}
				if open[2] > 0 {
					ov.KernelMPEOverlap += float64(ed.t - since)
				}
			}
			open[ed.kind] += int(ed.delta)
			since = ed.t
		}
	}
}

// AddRoofline folds the machine roofline and the achieved aggregate rate.
func (r *Report) AddRoofline(roof perf.Roofline, achievedGflops, efficiency float64) {
	if r == nil {
		return
	}
	r.Roofline = &RooflineReport{
		PeakGflopsPerCG: roof.PeakFlops / 1e9,
		MemBandwidthGBs: roof.MemBandwidth / 1e9,
		RidgeIntensity:  roof.RidgeIntensity(),
		AchievedGflops:  achievedGflops,
		Efficiency:      efficiency,
	}
}

// WriteTable renders the report as a compact human-readable table.
func (r *Report) WriteTable(w io.Writer) {
	if r == nil {
		fmt.Fprintln(w, "no report collected")
		return
	}
	fmt.Fprintf(w, "flight recorder: %d samples @ %.3g s virtual, run end %.6g s\n",
		r.Samples, r.IntervalSeconds, r.EndSeconds)
	if r.Roofline != nil {
		rf := r.Roofline
		fmt.Fprintf(w, "roofline: peak %.1f Gflop/s/CG, mem %.1f GB/s, ridge %.1f flop/B; achieved %.2f Gflop/s (%.1f%% eff)\n",
			rf.PeakGflopsPerCG, rf.MemBandwidthGBs, rf.RidgeIntensity,
			rf.AchievedGflops, rf.Efficiency*100)
	}
	fmt.Fprintf(w, "%4s %9s %9s %9s %10s %12s %11s %9s %9s\n",
		"rank", "q.mean", "q.max", "gang.mean", "infl.mean", "dma.last", "mem.peak", "faults", "recov")
	for _, rs := range r.Ranks {
		fmt.Fprintf(w, "%4d %9.2f %9.0f %9.2f %10.2f %12.0f %11.0f %9.0f %9.0f\n",
			rs.Rank,
			mean(rs.QueueDepth), maxOf(rs.QueueDepth),
			mean(rs.GangsBusy), mean(rs.InflightMsgs),
			last(rs.DMABytes), maxOf(rs.MemBytes),
			last(rs.Faults), last(rs.Recoveries))
	}
	if len(r.Overlap) > 0 {
		fmt.Fprintf(w, "%4s %10s %10s %10s %10s %12s %12s\n",
			"rank", "kernel.s", "mpe.s", "comm.s", "idle.s", "kern+comm.s", "kern+mpe.s")
		for _, ov := range r.Overlap {
			fmt.Fprintf(w, "%4d %10.3g %10.3g %10.3g %10.3g %12.3g %12.3g\n",
				ov.Rank, ov.KernelSeconds, ov.MPEWorkSecs, ov.CommSeconds,
				ov.IdleSeconds, ov.KernelCommOverlap, ov.KernelMPEOverlap)
		}
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

func maxOf(xs []float64) float64 {
	var m float64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func last(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return xs[len(xs)-1]
}
