package obs

import "sunuintah/internal/sim"

// RankProbes is one rank's probe set: the hook surface the scheduler, MPI
// model, core groups and athread layer call into. Each instance is
// mutated only from its own rank's engine events, so sharded runs touch
// it without locks or races. A nil *RankProbes is the zero-cost disabled
// recorder: every hook returns immediately without allocating (locked by
// an AllocsPerRun test).
type RankProbes struct {
	rank int
	opts Options

	queue     *Series // ready/remaining task objects this step
	prepared  *Series // work-ahead objects staged for offload
	gangs     *Series // CPE gangs with an offload in flight
	inflight  *Series // MPI messages posted but not yet delivered
	inflightB *Series // bytes on the wire
	dma       *Series // cumulative LDM DMA bytes
	mem       *Series // live MPE allocation bytes
	// faults/recoveries are created lazily on the first event so that
	// fault-free runs omit the (all-zero) series entirely. Lazy creation
	// commits the same leading zeros an eager series would: a fresh
	// series holds cur=0, so its first advance backfills zero samples.
	faults *Series
	recov  *Series
}

// eagerSeries is the number of always-on series per rank; the sampler
// backs them with one contiguous arena (see NewSampler).
const eagerSeries = 7

// newRankProbes carves the rank's eager series out of the sampler's
// arenas: ser holds eagerSeries Series structs, buf holds
// eagerSeries*MaxSamples floats. Lazily created series (faults,
// recoveries) still self-allocate — most runs never touch them.
func newRankProbes(rank int, opts Options, ser []Series, buf []float64) *RankProbes {
	i := 0
	mk := func() *Series {
		s := &ser[i]
		lo, hi := i*opts.MaxSamples, (i+1)*opts.MaxSamples
		*s = Series{interval: opts.Interval, max: opts.MaxSamples,
			samples: buf[lo:lo:hi]}
		i++
		return s
	}
	return &RankProbes{
		rank: rank, opts: opts,
		queue: mk(), prepared: mk(), gangs: mk(),
		inflight: mk(), inflightB: mk(), dma: mk(), mem: mk(),
	}
}

// QueueDepth records the scheduler's remaining-object count at t.
func (p *RankProbes) QueueDepth(t sim.Time, n int) {
	if p == nil {
		return
	}
	p.queue.Observe(float64(t), float64(n))
}

// QueueDelta adjusts the remaining-object count (object completed).
func (p *RankProbes) QueueDelta(t sim.Time, d int) {
	if p == nil {
		return
	}
	p.queue.Add(float64(t), float64(d))
}

// Prepared records the work-ahead (prepared-for-offload) backlog at t.
func (p *RankProbes) Prepared(t sim.Time, n int) {
	if p == nil {
		return
	}
	p.prepared.Observe(float64(t), float64(n))
}

// Gangs records how many CPE gangs have an offload in flight at t.
func (p *RankProbes) Gangs(t sim.Time, n int) {
	if p == nil {
		return
	}
	p.gangs.Observe(float64(t), float64(n))
}

// MsgSent records a posted message of the given size: in-flight counts
// rise at t and fall at the (sender-computed) arrival instant.
func (p *RankProbes) MsgSent(t sim.Time, bytes int64, arrive sim.Time) {
	if p == nil {
		return
	}
	p.inflight.Add(float64(t), 1)
	p.inflight.AddAt(float64(t), float64(arrive), -1)
	p.inflightB.Add(float64(t), float64(bytes))
	p.inflightB.AddAt(float64(t), float64(arrive), -float64(bytes))
}

// DMA adds to the cumulative LDM DMA byte counter at t.
func (p *RankProbes) DMA(t sim.Time, bytes int64) {
	if p == nil {
		return
	}
	p.dma.Add(float64(t), float64(bytes))
}

// Mem records the rank's live MPE allocation footprint at t.
func (p *RankProbes) Mem(t sim.Time, bytes int64) {
	if p == nil {
		return
	}
	p.mem.Observe(float64(t), float64(bytes))
}

// Fault bumps the cumulative injected/observed fault counter at t.
func (p *RankProbes) Fault(t sim.Time) {
	if p == nil {
		return
	}
	if p.faults == nil {
		p.faults = NewSeries(p.opts.Interval, p.opts.MaxSamples)
	}
	p.faults.Add(float64(t), 1)
}

// Recovery bumps the cumulative recovery-action counter at t.
func (p *RankProbes) Recovery(t sim.Time) {
	if p == nil {
		return
	}
	if p.recov == nil {
		p.recov = NewSeries(p.opts.Interval, p.opts.MaxSamples)
	}
	p.recov.Add(float64(t), 1)
}

// finalize commits every series (lazily created ones may still be nil —
// nil *Series methods no-op) up to and including end.
func (p *RankProbes) finalize(end float64) {
	for _, s := range []*Series{
		p.queue, p.prepared, p.gangs, p.inflight, p.inflightB,
		p.dma, p.mem, p.faults, p.recov,
	} {
		s.Finalize(end)
	}
}
