package obs

import (
	"sync"
	"testing"
)

func TestProgressBusDelivery(t *testing.T) {
	b := NewProgressBus()
	sub := b.Subscribe("t1", 4)
	b.Publish("t1", ProgressEvent{Rank: 0, Done: 1, Total: 2})
	b.Publish("t1", ProgressEvent{Rank: 1, Done: 2, Total: 2})
	e1, e2 := <-sub.C, <-sub.C
	if e1.Seq != 1 || e2.Seq != 2 {
		t.Fatalf("seqs = %d, %d, want 1, 2", e1.Seq, e2.Seq)
	}
	if e1.Dropped != 0 || e2.Dropped != 0 {
		t.Fatalf("unexpected drops: %d, %d", e1.Dropped, e2.Dropped)
	}
	if f := e2.Frac(); f != 1 {
		t.Fatalf("frac = %v, want 1", f)
	}
	b.Unsubscribe(sub)
	if _, ok := <-sub.C; ok {
		t.Fatal("channel must be closed after Unsubscribe")
	}
	b.Unsubscribe(sub) // idempotent
}

// A full subscriber loses events instead of blocking the publisher, and
// the loss is accounted on the next delivered event.
func TestProgressBusSlowConsumerDrops(t *testing.T) {
	b := NewProgressBus()
	sub := b.Subscribe("t", 1)
	b.Publish("t", ProgressEvent{Done: 1}) // fills the ring
	b.Publish("t", ProgressEvent{Done: 2}) // dropped
	b.Publish("t", ProgressEvent{Done: 3}) // dropped
	first := <-sub.C
	if first.Seq != 1 || first.Dropped != 0 {
		t.Fatalf("first = %+v, want seq 1, no drops", first)
	}
	b.Publish("t", ProgressEvent{Done: 4})
	next := <-sub.C
	if next.Seq != 4 || next.Dropped != 2 {
		t.Fatalf("next = %+v, want seq 4 with 2 drops", next)
	}
	b.Unsubscribe(sub)
}

func TestProgressBusTopicsIsolatedAndNilSafe(t *testing.T) {
	var nilBus *ProgressBus
	nilBus.Publish("x", ProgressEvent{}) // no-op
	nilBus.Unsubscribe(nil)
	if nilBus.Subscribers("x") != 0 {
		t.Fatal("nil bus has no subscribers")
	}

	b := NewProgressBus()
	b.Publish("nobody", ProgressEvent{}) // cheap no-op, must not panic
	a := b.Subscribe("a", 2)
	if got := b.Subscribers("a"); got != 1 {
		t.Fatalf("subscribers(a) = %d, want 1", got)
	}
	b.Publish("b", ProgressEvent{Done: 9})
	select {
	case ev := <-a.C:
		t.Fatalf("topic leak: %+v", ev)
	default:
	}
	b.Unsubscribe(a)
	if got := b.Subscribers("a"); got != 0 {
		t.Fatalf("subscribers(a) after unsubscribe = %d, want 0", got)
	}
}

// Concurrent publishers and a consumer that unsubscribes mid-stream: the
// race detector gates this path (Exec publishes from simulation
// goroutines while the SSE handler subscribes and drops out).
func TestProgressBusConcurrent(t *testing.T) {
	b := NewProgressBus()
	sub := b.Subscribe("hot", 8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				b.Publish("hot", ProgressEvent{Done: int64(i)})
			}
		}()
	}
	done := make(chan int)
	go func() {
		n := 0
		for range sub.C {
			n++
		}
		done <- n
	}()
	wg.Wait()
	b.Unsubscribe(sub) // closes the channel, ending the drain
	got := <-done
	// Publishing after the last unsubscribe is still a no-op.
	b.Publish("hot", ProgressEvent{})
	if got == 0 {
		t.Fatal("no events delivered under concurrent publish")
	}
}
