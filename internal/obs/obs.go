// Package obs is the runtime's observability layer: a deterministic
// virtual-time flight recorder (per-rank fixed-interval series of queue
// depths, in-flight MPI traffic, CPE-gang occupancy, DMA/memory footprint
// and fault activity), a run-report builder folding those series together
// with trace overlap statistics and roofline numbers, and a small
// Prometheus-style metrics registry for the HTTP service.
//
// Determinism is the design constraint that shapes everything here. The
// sharded engine executes ranks on concurrent host goroutines, and events
// that share a virtual instant execute in different wall-clock (and seq)
// orders between the serial and sharded engines. A literal "sampler
// process" — a periodic engine event reading global state — would
// therefore observe different same-instant intermediate states per shard
// count, and scheduling extra events would itself perturb the FIFO
// tie-break of model events. Instead:
//
//   - No events. Probes are updated inline by the instrumented code paths
//     and carry timestamps from the owning rank's engine clock.
//   - Per-rank ownership. Each rank's RankProbes is touched only by that
//     rank's engine events, so sharded runs race on nothing.
//   - Lazy grid commit. A Series holds its current value and commits
//     fixed-interval grid samples only when a later transition proves the
//     value held through them, so the sample at grid instant t reflects
//     the state after all events at t — independent of the order those
//     events executed in.
//   - Future-dated transitions. Quantities that fall at a time known in
//     advance (an in-flight message decrements at its arrival instant,
//     known at post time) are queued inside the sender's own series and
//     applied lazily, never by an event on another rank's engine.
//
// The result: every sampled series is byte-identical for every -shards
// and -workers setting, which the shard bit-identity tests enforce.
package obs

import "sunuintah/internal/sim"

// Defaults for Options fields left zero.
const (
	// DefaultInterval is the sampling grid in virtual seconds.
	DefaultInterval = 1e-5
	// DefaultMaxSamples caps each series; on overflow every other sample
	// is dropped and the grid interval doubles (so long runs degrade
	// resolution instead of memory).
	DefaultMaxSamples = 512
)

// Options configures run-report collection. The zero value of each field
// selects its default. Like scheduler.Config.Workers and core Shards,
// observability options are wall-clock/reporting knobs only: they never
// change the simulated outcome and never enter the runner's content hash.
type Options struct {
	// Interval is the sampling grid in virtual seconds.
	Interval float64 `json:"interval,omitempty"`
	// MaxSamples bounds each series before decimation.
	MaxSamples int `json:"maxSamples,omitempty"`
	// Trace additionally exports the canonically sorted event timeline
	// into the run's Result, enabling Perfetto/Chrome trace download.
	Trace bool `json:"trace,omitempty"`
	// HooksOnly attaches every sampler probe and speculation hook but
	// skips assembling Result.Obs when the run completes. It exists for
	// benchmark harnesses that time the always-on hook cost in isolation
	// from report assembly (benchgate's obs.overhead_frac gate); normal
	// runs leave it false.
	HooksOnly bool `json:"-"`
}

// normalized fills defaults.
func (o Options) normalized() Options {
	if o.Interval <= 0 {
		o.Interval = DefaultInterval
	}
	if o.MaxSamples <= 0 {
		o.MaxSamples = DefaultMaxSamples
	}
	if o.MaxSamples%2 != 0 {
		o.MaxSamples++
	}
	return o
}

// Sampler owns one RankProbes per rank and assembles the final Report.
// A nil Sampler is safe: Rank returns nil probes, whose hooks are no-ops.
type Sampler struct {
	opts  Options
	ranks []*RankProbes
}

// NewSampler builds the probe sets for nRanks ranks. All eager series
// structs and sample buffers come out of two contiguous arenas allocated
// here, before the run starts: hundreds of small lazily grown buffers
// used to be allocated from inside the hooks, and the GC churn they
// caused during the parallel run phase dominated the sampler's measured
// overhead (the benchgate obs.overhead_frac gate).
func NewSampler(opts Options, nRanks int) *Sampler {
	s := &Sampler{opts: opts.normalized()}
	if nRanks <= 0 {
		return s
	}
	ser := make([]Series, nRanks*eagerSeries)
	buf := make([]float64, nRanks*eagerSeries*s.opts.MaxSamples)
	s.ranks = make([]*RankProbes, 0, nRanks)
	for r := 0; r < nRanks; r++ {
		off := r * eagerSeries
		s.ranks = append(s.ranks, newRankProbes(r, s.opts,
			ser[off:off+eagerSeries], buf[off*s.opts.MaxSamples:(off+eagerSeries)*s.opts.MaxSamples]))
	}
	return s
}

// Options returns the (normalized) collection options.
func (s *Sampler) Options() Options {
	if s == nil {
		return Options{}
	}
	return s.opts
}

// Rank returns rank r's probe set; nil on a nil sampler or out-of-range
// rank, which disables that rank's probes at zero cost.
func (s *Sampler) Rank(r int) *RankProbes {
	if s == nil || r < 0 || r >= len(s.ranks) {
		return nil
	}
	return s.ranks[r]
}

// Finalize commits every series up to and including the grid points at or
// before end. Safe to call more than once with non-decreasing ends (a
// checkpointed run finalizes per segment and again at the end).
func (s *Sampler) Finalize(end sim.Time) {
	if s == nil {
		return
	}
	for _, p := range s.ranks {
		p.finalize(float64(end))
	}
}
