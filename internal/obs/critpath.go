package obs

import (
	"fmt"
	"io"
	"sort"

	"sunuintah/internal/trace"
)

// Critical-path categories, in fixed report order. DMA time is not a
// distinct trace kind — transfer stalls are folded into the interval that
// issued them (cpe-kernel for offloaded kernels, mpe-serial for host-side
// packing), as in the recorder itself.
const (
	CatCPEKernel = "cpe-kernel"        // CPE cluster busy with an offloaded kernel (incl. DMA)
	CatMPEKernel = "mpe-kernel"        // kernel executed on the MPE (host mode)
	CatMPESerial = "mpe-serial"        // MPE packing/unpacking/touches/BC fills
	CatComm      = "comm"              // MPI posting, testing, halo waits
	CatReduce    = "reduce"            // reductions
	CatWait      = "wait"              // blocked: idle intervals and uncovered gaps on the chain
	CatRecovery  = "rollback-recovery" // fault-plane recovery and rollback/coast-forward work
)

// critCategories is the fixed render order.
var critCategories = []string{
	CatCPEKernel, CatMPEKernel, CatMPESerial, CatComm, CatReduce, CatWait, CatRecovery,
}

func critCategory(k trace.Kind) string {
	switch k {
	case trace.KindKernel:
		return CatCPEKernel
	case trace.KindMPEKern:
		return CatMPEKernel
	case trace.KindMPEWork:
		return CatMPESerial
	case trace.KindComm:
		return CatComm
	case trace.KindReduce:
		return CatReduce
	case trace.KindFault, trace.KindRecovery:
		return CatRecovery
	default:
		return CatWait
	}
}

// CritSegment is one merged stretch of the critical chain: consecutive
// attributions on the same rank and category.
type CritSegment struct {
	Rank         int     `json:"rank"`
	Category     string  `json:"category"`
	Name         string  `json:"name,omitempty"` // longest contributing interval's name
	StartSeconds float64 `json:"startSeconds"`
	EndSeconds   float64 `json:"endSeconds"`
	Seconds      float64 `json:"seconds"`
}

// CritCategory is one category's share of the chain.
type CritCategory struct {
	Category string  `json:"category"`
	Seconds  float64 `json:"seconds"`
	Share    float64 `json:"share"` // fraction of the makespan; shares sum to 1
}

// CritPathReport is the longest weighted chain through the recorded
// trace's happens-before structure, attributed to categories. The walk
// telescopes — every attributed span abuts the next — so category seconds
// sum exactly to the makespan: the table answers "this is the X% you must
// attack next".
type CritPathReport struct {
	StartSeconds    float64        `json:"startSeconds"`
	EndSeconds      float64        `json:"endSeconds"`
	MakespanSeconds float64        `json:"makespanSeconds"`
	Categories      []CritCategory `json:"categories"`
	TopSegments     []CritSegment  `json:"topSegments,omitempty"`
	Segments        int            `json:"segments"` // merged chain segments
	Hops            int            `json:"hops"`     // rank switches along the chain
}

// rankLane is one rank's positive-duration intervals in canonical order
// (trace.Sorted: ascending Start), with a running prefix maximum of End
// for early exit in the covering search.
type rankLane struct {
	rank   int
	evs    []trace.Event
	prefix []float64 // prefix[i] = max End over evs[0..i]
	byEnd  []int     // event indices sorted by (End, canonical position)
}

// CriticalPath extracts the critical chain from a canonically sorted
// event timeline (trace.Sorted order; CriticalPath re-sorts defensively).
// Deterministic: the walk is a pure function of the event multiset, so
// the report inherits the trace's byte-identity across shard and worker
// counts. Returns nil for an empty (or all zero-duration) timeline.
func CriticalPath(events []trace.Event, topK int) *CritPathReport {
	evs := trace.Sorted(events)
	lanes := map[int]*rankLane{}
	var order []int
	begin, end := 0.0, 0.0
	endRank := -1
	first := true
	for _, e := range evs {
		if e.End <= e.Start {
			continue // zero-duration markers cannot carry chain time
		}
		if first || float64(e.Start) < begin {
			begin = float64(e.Start)
		}
		if first || float64(e.End) > end {
			end = float64(e.End)
			endRank = e.Rank
		}
		first = false
		ln := lanes[e.Rank]
		if ln == nil {
			ln = &rankLane{rank: e.Rank}
			lanes[e.Rank] = ln
			order = append(order, e.Rank)
		}
		ln.evs = append(ln.evs, e)
	}
	if endRank < 0 {
		return nil
	}
	sort.Ints(order)
	for _, r := range order {
		ln := lanes[r]
		ln.prefix = make([]float64, len(ln.evs))
		m := 0.0
		for i, e := range ln.evs {
			if f := float64(e.End); f > m {
				m = f
			}
			ln.prefix[i] = m
		}
		ln.byEnd = make([]int, len(ln.evs))
		for i := range ln.byEnd {
			ln.byEnd[i] = i
		}
		sort.SliceStable(ln.byEnd, func(a, b int) bool {
			return ln.evs[ln.byEnd[a]].End < ln.evs[ln.byEnd[b]].End
		})
	}

	// Backward walk from the makespan end. At each step the chain is at
	// (rank, t): the tightest interval still open on that rank at t
	// carries the span back to its start; a blocked rank hands the chain
	// to the globally latest interval finishing strictly before t (the
	// enabling predecessor), attributing the blocked span as wait. Both
	// moves strictly decrease t, so the walk terminates; the cap is a
	// defensive backstop only.
	var segs []CritSegment
	attribute := func(rank int, cat, name string, from, to float64) {
		if to <= from {
			return
		}
		if n := len(segs); n > 0 && segs[n-1].Rank == rank && segs[n-1].Category == cat &&
			segs[n-1].StartSeconds == to {
			s := &segs[n-1]
			s.StartSeconds = from
			s.Seconds = s.EndSeconds - from
			if name != "" && to-from > s.Seconds/2 {
				s.Name = name
			}
			return
		}
		segs = append(segs, CritSegment{Rank: rank, Category: cat, Name: name,
			StartSeconds: from, EndSeconds: to, Seconds: to - from})
	}
	r, t := endRank, end
	for iter := 0; t > begin; iter++ {
		if iter > 4*len(evs)+8 {
			attribute(r, CatWait, "", begin, t)
			break
		}
		ln := lanes[r]
		// Tightest covering interval on r: Start < t, End >= t, latest
		// Start (innermost open activity — the chain's "top of stack").
		cover := -1
		if ln != nil {
			i := sort.Search(len(ln.evs), func(i int) bool {
				return float64(ln.evs[i].Start) >= t
			}) - 1
			if i >= 0 && ln.prefix[i] >= t {
				for j := i; j >= 0; j-- {
					if float64(ln.evs[j].End) >= t {
						cover = j
						break
					}
				}
			}
		}
		if cover >= 0 {
			e := ln.evs[cover]
			attribute(r, critCategory(e.Kind), e.Name, float64(e.Start), t)
			t = float64(e.Start)
			continue
		}
		// Blocked: find the enabling predecessor — over all ranks, the
		// interval with the latest End strictly before t; ties break to
		// the lowest rank (order is ascending and the comparison strict).
		br := -1
		bEnd := 0.0
		for _, rk := range order {
			l := lanes[rk]
			p := sort.Search(len(l.byEnd), func(i int) bool {
				return float64(l.evs[l.byEnd[i]].End) >= t
			}) - 1
			if p < 0 {
				continue
			}
			if f := float64(l.evs[l.byEnd[p]].End); br < 0 || f > bEnd {
				br, bEnd = rk, f
			}
		}
		if br < 0 {
			attribute(r, CatWait, "", begin, t)
			break
		}
		attribute(r, CatWait, "", bEnd, t)
		r = br
		t = bEnd
	}

	rep := &CritPathReport{StartSeconds: begin, EndSeconds: end, MakespanSeconds: end - begin}
	// The walk appended segments back-to-front; flip to chronological.
	for i, j := 0, len(segs)-1; i < j; i, j = i+1, j-1 {
		segs[i], segs[j] = segs[j], segs[i]
	}
	rep.Segments = len(segs)
	total := 0.0
	sums := map[string]float64{}
	for i, s := range segs {
		sums[s.Category] += s.Seconds
		total += s.Seconds
		if i > 0 && segs[i-1].Rank != s.Rank {
			rep.Hops++
		}
	}
	if total <= 0 {
		total = rep.MakespanSeconds
	}
	for _, cat := range critCategories {
		sec := sums[cat]
		rep.Categories = append(rep.Categories, CritCategory{
			Category: cat, Seconds: sec, Share: sec / total})
	}
	if topK <= 0 {
		topK = 5
	}
	top := append([]CritSegment(nil), segs...)
	sort.SliceStable(top, func(a, b int) bool {
		if top[a].Seconds != top[b].Seconds {
			return top[a].Seconds > top[b].Seconds
		}
		return top[a].StartSeconds < top[b].StartSeconds
	})
	if len(top) > topK {
		top = top[:topK]
	}
	rep.TopSegments = top
	return rep
}

// AddCriticalPath folds the chain analysis into the report. Like
// AddOverlap, the trace lives outside obs, so the caller hands the
// events in.
func (r *Report) AddCriticalPath(events []trace.Event, topK int) {
	if r == nil {
		return
	}
	r.CritPath = CriticalPath(events, topK)
}

// WriteCriticalPath renders the chain breakdown as a compact table.
func (r *Report) WriteCriticalPath(w io.Writer) {
	if r == nil || r.CritPath == nil {
		fmt.Fprintln(w, "no critical path (trace not recorded)")
		return
	}
	cp := r.CritPath
	fmt.Fprintf(w, "critical path: %.6g s makespan, %d segments, %d rank hops\n",
		cp.MakespanSeconds, cp.Segments, cp.Hops)
	fmt.Fprintf(w, "%-18s %12s %7s\n", "category", "seconds", "share")
	sum := 0.0
	for _, c := range cp.Categories {
		sum += c.Share
		fmt.Fprintf(w, "%-18s %12.6g %6.1f%%\n", c.Category, c.Seconds, c.Share*100)
	}
	fmt.Fprintf(w, "%-18s %12.6g %6.1f%%\n", "total", cp.MakespanSeconds, sum*100)
	if len(cp.TopSegments) > 0 {
		fmt.Fprintf(w, "top chain segments:\n")
		fmt.Fprintf(w, "%4s %-18s %-24s %12s %12s\n", "rank", "category", "name", "start.s", "seconds")
		for _, s := range cp.TopSegments {
			name := s.Name
			if name == "" {
				name = "-"
			}
			fmt.Fprintf(w, "%4d %-18s %-24s %12.6g %12.6g\n",
				s.Rank, s.Category, name, s.StartSeconds, s.Seconds)
		}
	}
}
