package grid

import "fmt"

// Box is a half-open axis-aligned box of cells: it contains every cell c
// with Lo <= c < Hi componentwise. An empty box has Hi <= Lo on some axis.
type Box struct {
	Lo, Hi IVec
}

// NewBox constructs a box from its inclusive low corner and exclusive high
// corner.
func NewBox(lo, hi IVec) Box { return Box{Lo: lo, Hi: hi} }

// BoxFromSize constructs a box at lo with the given extents.
func BoxFromSize(lo, size IVec) Box { return Box{Lo: lo, Hi: lo.Add(size)} }

// Size returns the extents Hi-Lo (components may be non-positive for empty
// boxes).
func (b Box) Size() IVec { return b.Hi.Sub(b.Lo) }

// NumCells returns the number of cells, or 0 for an empty box.
func (b Box) NumCells() int64 {
	if b.Empty() {
		return 0
	}
	return b.Size().Volume()
}

// Empty reports whether the box contains no cells.
func (b Box) Empty() bool {
	s := b.Size()
	return s.X <= 0 || s.Y <= 0 || s.Z <= 0
}

// Contains reports whether cell c lies inside the box.
func (b Box) Contains(c IVec) bool {
	return c.AllGE(b.Lo) && c.X < b.Hi.X && c.Y < b.Hi.Y && c.Z < b.Hi.Z
}

// ContainsBox reports whether o is entirely inside b. An empty o is
// contained in anything.
func (b Box) ContainsBox(o Box) bool {
	if o.Empty() {
		return true
	}
	return o.Lo.AllGE(b.Lo) && o.Hi.AllLE(b.Hi)
}

// Intersect returns the overlap of the two boxes (possibly empty).
func (b Box) Intersect(o Box) Box {
	return Box{Lo: b.Lo.Max(o.Lo), Hi: b.Hi.Min(o.Hi)}
}

// Intersects reports whether the boxes share at least one cell.
func (b Box) Intersects(o Box) bool { return !b.Intersect(o).Empty() }

// Grow returns the box expanded by g cells in every direction (ghost
// margin). Negative g shrinks.
func (b Box) Grow(g int) Box {
	d := IV(g, g, g)
	return Box{Lo: b.Lo.Sub(d), Hi: b.Hi.Add(d)}
}

// Translate returns the box shifted by d.
func (b Box) Translate(d IVec) Box {
	return Box{Lo: b.Lo.Add(d), Hi: b.Hi.Add(d)}
}

// SurfaceCells returns the number of cells on the one-cell-thick shell just
// outside the box — the ghost-cell count for one ghost layer, faces, edges
// and corners included.
func (b Box) SurfaceCells() int64 {
	if b.Empty() {
		return 0
	}
	return b.Grow(1).NumCells() - b.NumCells()
}

// ForEach invokes fn for every cell in the box in k-outer, i-inner order
// (x fastest), the layout order used by the fields.
func (b Box) ForEach(fn func(c IVec)) {
	for k := b.Lo.Z; k < b.Hi.Z; k++ {
		for j := b.Lo.Y; j < b.Hi.Y; j++ {
			for i := b.Lo.X; i < b.Hi.X; i++ {
				fn(IVec{i, j, k})
			}
		}
	}
}

// String formats as "[lo,hi)".
func (b Box) String() string { return fmt.Sprintf("[%v,%v)", b.Lo, b.Hi) }
