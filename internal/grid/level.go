package grid

import "fmt"

// Level couples a patch layout with physical geometry: the grid covers the
// box [Origin, Origin+Spacing*DomainSize) in physical space, with solution
// values situated at cell centroids (as in the paper's discretisation).
type Level struct {
	Layout  *Layout
	Origin  [3]float64 // physical coordinate of the domain's low corner
	Spacing [3]float64 // dx, dy, dz
}

// NewUnitCubeLevel builds a level whose physical domain is the unit cube
// [0,1]^3 regardless of cell counts (anisotropic spacing when the counts
// differ per axis), subdivided into the given patch counts.
func NewUnitCubeLevel(cells, patchCounts IVec) (*Level, error) {
	layout, err := NewLayout(BoxFromSize(IV(0, 0, 0), cells), patchCounts)
	if err != nil {
		return nil, err
	}
	return &Level{
		Layout: layout,
		Origin: [3]float64{0, 0, 0},
		Spacing: [3]float64{
			1.0 / float64(cells.X),
			1.0 / float64(cells.Y),
			1.0 / float64(cells.Z),
		},
	}, nil
}

// CellCenter returns the physical coordinates of cell c's centroid.
func (lv *Level) CellCenter(c IVec) (x, y, z float64) {
	x = lv.Origin[0] + (float64(c.X)+0.5)*lv.Spacing[0]
	y = lv.Origin[1] + (float64(c.Y)+0.5)*lv.Spacing[1]
	z = lv.Origin[2] + (float64(c.Z)+0.5)*lv.Spacing[2]
	return
}

// String summarises the level.
func (lv *Level) String() string {
	return fmt.Sprintf("level %v cells, %v patches of %v",
		lv.Layout.Domain.Size(), lv.Layout.Counts, lv.Layout.PatchSize)
}
