package grid

import "fmt"

// Patch is one rectangular piece of the computational grid. Patches carry a
// global ID (dense, 0-based, in z-major layout order) and their position in
// the patch layout.
type Patch struct {
	ID  int
	Pos IVec // position in the patch layout (0..Counts-1 per axis)
	Box Box  // cells owned by the patch
}

// String formats as "patch#id pos box".
func (p *Patch) String() string {
	return fmt.Sprintf("patch#%d %v %v", p.ID, p.Pos, p.Box)
}

// NumCells is the number of interior (owned) cells.
func (p *Patch) NumCells() int64 { return p.Box.NumCells() }

// Layout is a regular partition of a domain box into Counts.X × Counts.Y ×
// Counts.Z equally sized patches (the paper uses a fixed 8x8x2 layout of 128
// patches). The domain size must be divisible by the patch counts.
type Layout struct {
	Domain    Box
	Counts    IVec
	PatchSize IVec
	patches   []*Patch
}

// NewLayout partitions domain into counts patches per axis.
func NewLayout(domain Box, counts IVec) (*Layout, error) {
	if domain.Empty() {
		return nil, fmt.Errorf("grid: empty domain %v", domain)
	}
	if !counts.AllPositive() {
		return nil, fmt.Errorf("grid: patch counts must be positive, got %v", counts)
	}
	size := domain.Size()
	if size.X%counts.X != 0 || size.Y%counts.Y != 0 || size.Z%counts.Z != 0 {
		return nil, fmt.Errorf("grid: domain %v not divisible by patch counts %v", size, counts)
	}
	ps := size.Div(counts)
	l := &Layout{Domain: domain, Counts: counts, PatchSize: ps}
	l.patches = make([]*Patch, 0, counts.Volume())
	id := 0
	for pz := 0; pz < counts.Z; pz++ {
		for py := 0; py < counts.Y; py++ {
			for px := 0; px < counts.X; px++ {
				pos := IV(px, py, pz)
				lo := domain.Lo.Add(pos.Mul(ps))
				l.patches = append(l.patches, &Patch{
					ID:  id,
					Pos: pos,
					Box: BoxFromSize(lo, ps),
				})
				id++
			}
		}
	}
	return l, nil
}

// NumPatches returns the total patch count.
func (l *Layout) NumPatches() int { return len(l.patches) }

// Patch returns the patch with the given ID.
func (l *Layout) Patch(id int) *Patch {
	if id < 0 || id >= len(l.patches) {
		panic(fmt.Sprintf("grid: patch id %d out of range [0,%d)", id, len(l.patches)))
	}
	return l.patches[id]
}

// Patches returns all patches in ID order. The returned slice is shared;
// callers must not modify it.
func (l *Layout) Patches() []*Patch { return l.patches }

// PatchAt returns the patch at layout position pos, or nil if out of range.
func (l *Layout) PatchAt(pos IVec) *Patch {
	if pos.X < 0 || pos.Y < 0 || pos.Z < 0 ||
		pos.X >= l.Counts.X || pos.Y >= l.Counts.Y || pos.Z >= l.Counts.Z {
		return nil
	}
	id := (pos.Z*l.Counts.Y+pos.Y)*l.Counts.X + pos.X
	return l.patches[id]
}

// PatchContaining returns the patch owning cell c, or nil if c is outside
// the domain.
func (l *Layout) PatchContaining(c IVec) *Patch {
	if !l.Domain.Contains(c) {
		return nil
	}
	rel := c.Sub(l.Domain.Lo)
	return l.PatchAt(rel.Div(l.PatchSize))
}

// GhostRegion describes one rectangular piece of a patch's ghost margin and
// where its data comes from: either a neighbouring patch (Src != nil) or
// the physical boundary (Src == nil), to be filled by boundary conditions.
type GhostRegion struct {
	Region Box    // cells in the ghost margin of the destination patch
	Src    *Patch // owning patch, or nil for a physical-boundary region
}

// GhostRegions returns the decomposition of patch p's ghost margin of the
// given width into source regions. Neighbour regions cover the part of the
// margin inside the domain; boundary regions cover the part outside.
//
// The decomposition walks the 26 (for width >= 1) neighbour offsets so each
// returned region maps to exactly one source patch; regions are returned in
// deterministic offset order (z-major).
func (l *Layout) GhostRegions(p *Patch, width int) []GhostRegion {
	if width <= 0 {
		return nil
	}
	var out []GhostRegion
	grown := p.Box.Grow(width)
	for dz := -1; dz <= 1; dz++ {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dx == 0 && dy == 0 && dz == 0 {
					continue
				}
				region := sideRegion(p.Box, grown, IV(dx, dy, dz))
				if region.Empty() {
					continue
				}
				inDomain := region.Intersect(l.Domain)
				if !inDomain.Empty() {
					// One neighbour patch owns the whole in-domain part
					// because ghost width never exceeds the patch size in
					// practice; split defensively if it straddles patches.
					out = append(out, l.splitByOwners(inDomain)...)
				}
				// The rest (outside the domain) is physical boundary.
				outside := subtractBox(region, l.Domain)
				for _, ob := range outside {
					out = append(out, GhostRegion{Region: ob, Src: nil})
				}
			}
		}
	}
	return out
}

// sideRegion returns the part of grown \ box lying in direction dir.
func sideRegion(box, grown Box, dir IVec) Box {
	r := grown
	for axis := 0; axis < 3; axis++ {
		switch dir.Comp(axis) {
		case -1:
			r.Lo = r.Lo.WithComp(axis, grown.Lo.Comp(axis))
			r.Hi = r.Hi.WithComp(axis, box.Lo.Comp(axis))
		case 0:
			r.Lo = r.Lo.WithComp(axis, box.Lo.Comp(axis))
			r.Hi = r.Hi.WithComp(axis, box.Hi.Comp(axis))
		case 1:
			r.Lo = r.Lo.WithComp(axis, box.Hi.Comp(axis))
			r.Hi = r.Hi.WithComp(axis, grown.Hi.Comp(axis))
		}
	}
	return r
}

// splitByOwners decomposes an in-domain box into per-owning-patch pieces.
func (l *Layout) splitByOwners(b Box) []GhostRegion {
	var out []GhostRegion
	// Patches owning b's corners bound the patch-position range to scan.
	rel := b.Lo.Sub(l.Domain.Lo)
	lop := rel.Div(l.PatchSize)
	relHi := b.Hi.Sub(IV(1, 1, 1)).Sub(l.Domain.Lo)
	hip := relHi.Div(l.PatchSize)
	for pz := lop.Z; pz <= hip.Z; pz++ {
		for py := lop.Y; py <= hip.Y; py++ {
			for px := lop.X; px <= hip.X; px++ {
				src := l.PatchAt(IV(px, py, pz))
				piece := b.Intersect(src.Box)
				if !piece.Empty() {
					out = append(out, GhostRegion{Region: piece, Src: src})
				}
			}
		}
	}
	return out
}

// subtractBox returns b minus cut as a list of disjoint boxes.
func subtractBox(b, cut Box) []Box {
	inter := b.Intersect(cut)
	if inter.Empty() {
		return []Box{b}
	}
	if inter == b {
		return nil
	}
	var out []Box
	rest := b
	for axis := 0; axis < 3; axis++ {
		// Slice off the parts of rest below and above inter on this axis.
		if lo, cutLo := rest.Lo.Comp(axis), inter.Lo.Comp(axis); lo < cutLo {
			below := rest
			below.Hi = below.Hi.WithComp(axis, cutLo)
			out = append(out, below)
			rest.Lo = rest.Lo.WithComp(axis, cutLo)
		}
		if hi, cutHi := rest.Hi.Comp(axis), inter.Hi.Comp(axis); hi > cutHi {
			above := rest
			above.Lo = above.Lo.WithComp(axis, cutHi)
			out = append(out, above)
			rest.Hi = rest.Hi.WithComp(axis, cutHi)
		}
	}
	return out
}

// Neighbours returns the distinct patches that contribute ghost data to p
// for the given ghost width, in ascending ID order.
func (l *Layout) Neighbours(p *Patch, width int) []*Patch {
	seen := map[int]*Patch{}
	for _, gr := range l.GhostRegions(p, width) {
		if gr.Src != nil {
			seen[gr.Src.ID] = gr.Src
		}
	}
	out := make([]*Patch, 0, len(seen))
	for id := 0; id < l.NumPatches(); id++ {
		if q, ok := seen[id]; ok {
			out = append(out, q)
		}
	}
	return out
}
