package grid

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIVecArithmetic(t *testing.T) {
	a, b := IV(1, 2, 3), IV(4, 5, 6)
	if got := a.Add(b); got != IV(5, 7, 9) {
		t.Errorf("Add = %v", got)
	}
	if got := b.Sub(a); got != IV(3, 3, 3) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Mul(b); got != IV(4, 10, 18) {
		t.Errorf("Mul = %v", got)
	}
	if got := b.Div(a); got != IV(4, 2, 2) {
		t.Errorf("Div = %v", got)
	}
	if got := a.Scale(3); got != IV(3, 6, 9) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Min(IV(2, 1, 5)); got != IV(1, 1, 3) {
		t.Errorf("Min = %v", got)
	}
	if got := a.Max(IV(2, 1, 5)); got != IV(2, 2, 5) {
		t.Errorf("Max = %v", got)
	}
	if got := a.Volume(); got != 6 {
		t.Errorf("Volume = %d", got)
	}
	if a.String() != "1x2x3" {
		t.Errorf("String = %q", a.String())
	}
}

func TestIVecCompAccess(t *testing.T) {
	v := IV(7, 8, 9)
	for axis, want := range []int{7, 8, 9} {
		if got := v.Comp(axis); got != want {
			t.Errorf("Comp(%d) = %d, want %d", axis, got, want)
		}
	}
	if got := v.WithComp(1, 42); got != IV(7, 42, 9) {
		t.Errorf("WithComp = %v", got)
	}
}

func TestBoxBasics(t *testing.T) {
	b := NewBox(IV(0, 0, 0), IV(4, 3, 2))
	if b.NumCells() != 24 {
		t.Errorf("NumCells = %d", b.NumCells())
	}
	if b.Empty() {
		t.Error("box should not be empty")
	}
	if !b.Contains(IV(3, 2, 1)) {
		t.Error("should contain high corner cell")
	}
	if b.Contains(IV(4, 0, 0)) {
		t.Error("Hi is exclusive")
	}
	empty := NewBox(IV(2, 0, 0), IV(2, 5, 5))
	if !empty.Empty() || empty.NumCells() != 0 {
		t.Error("degenerate box should be empty")
	}
}

func TestBoxIntersect(t *testing.T) {
	a := NewBox(IV(0, 0, 0), IV(10, 10, 10))
	b := NewBox(IV(5, 5, 5), IV(15, 15, 15))
	got := a.Intersect(b)
	if got != NewBox(IV(5, 5, 5), IV(10, 10, 10)) {
		t.Errorf("Intersect = %v", got)
	}
	c := NewBox(IV(20, 20, 20), IV(30, 30, 30))
	if a.Intersects(c) {
		t.Error("disjoint boxes intersect")
	}
}

func TestBoxGrowAndSurface(t *testing.T) {
	b := BoxFromSize(IV(0, 0, 0), IV(16, 16, 8))
	g := b.Grow(1)
	if g.Size() != IV(18, 18, 10) {
		t.Errorf("grown size = %v", g.Size())
	}
	want := g.NumCells() - b.NumCells()
	if b.SurfaceCells() != want {
		t.Errorf("SurfaceCells = %d, want %d", b.SurfaceCells(), want)
	}
	if got := b.Grow(-4).Size(); got != IV(8, 8, 0) {
		t.Errorf("negative grow size = %v", got)
	}
}

func TestBoxForEachOrderAndCount(t *testing.T) {
	b := BoxFromSize(IV(1, 2, 3), IV(2, 2, 2))
	var cells []IVec
	b.ForEach(func(c IVec) { cells = append(cells, c) })
	if len(cells) != 8 {
		t.Fatalf("visited %d cells", len(cells))
	}
	if cells[0] != IV(1, 2, 3) || cells[1] != IV(2, 2, 3) {
		t.Errorf("x must vary fastest: %v", cells[:2])
	}
	if cells[7] != IV(2, 3, 4) {
		t.Errorf("last cell = %v", cells[7])
	}
}

func TestLayoutPaperConfiguration(t *testing.T) {
	// The paper's smallest problem: 128x128x1024 grid, 8x8x2 patches of
	// 16x16x512.
	l, err := NewLayout(BoxFromSize(IV(0, 0, 0), IV(128, 128, 1024)), IV(8, 8, 2))
	if err != nil {
		t.Fatal(err)
	}
	if l.NumPatches() != 128 {
		t.Fatalf("NumPatches = %d, want 128", l.NumPatches())
	}
	if l.PatchSize != IV(16, 16, 512) {
		t.Fatalf("PatchSize = %v", l.PatchSize)
	}
	// Patches tile the domain exactly: total cells match, no overlaps.
	var total int64
	for _, p := range l.Patches() {
		total += p.NumCells()
	}
	if total != l.Domain.NumCells() {
		t.Errorf("patch cells %d != domain cells %d", total, l.Domain.NumCells())
	}
}

func TestLayoutRejectsBadConfigs(t *testing.T) {
	dom := BoxFromSize(IV(0, 0, 0), IV(10, 10, 10))
	if _, err := NewLayout(dom, IV(3, 1, 1)); err == nil {
		t.Error("indivisible layout should fail")
	}
	if _, err := NewLayout(dom, IV(0, 1, 1)); err == nil {
		t.Error("zero counts should fail")
	}
	if _, err := NewLayout(NewBox(IV(0, 0, 0), IV(0, 5, 5)), IV(1, 1, 1)); err == nil {
		t.Error("empty domain should fail")
	}
}

func TestPatchContaining(t *testing.T) {
	l, _ := NewLayout(BoxFromSize(IV(0, 0, 0), IV(8, 8, 8)), IV(2, 2, 2))
	p := l.PatchContaining(IV(5, 3, 7))
	if p == nil || p.Pos != IV(1, 0, 1) {
		t.Fatalf("PatchContaining = %v", p)
	}
	if l.PatchContaining(IV(8, 0, 0)) != nil {
		t.Error("outside cell should return nil")
	}
}

func TestGhostRegionsCoverMarginExactly(t *testing.T) {
	l, _ := NewLayout(BoxFromSize(IV(0, 0, 0), IV(8, 8, 8)), IV(2, 2, 2))
	for _, p := range l.Patches() {
		regions := l.GhostRegions(p, 1)
		// Regions must exactly tile Grow(1) minus the patch box.
		covered := map[IVec]int{}
		for _, gr := range regions {
			gr.Region.ForEach(func(c IVec) { covered[c]++ })
		}
		margin := p.Box.Grow(1)
		var wantCells int64 = margin.NumCells() - p.Box.NumCells()
		if int64(len(covered)) != wantCells {
			t.Fatalf("patch %v: covered %d cells, want %d", p, len(covered), wantCells)
		}
		for c, n := range covered {
			if n != 1 {
				t.Fatalf("patch %v: cell %v covered %d times", p, c, n)
			}
			if p.Box.Contains(c) || !margin.Contains(c) {
				t.Fatalf("patch %v: cell %v outside margin", p, c)
			}
		}
		// Source attribution: in-domain cells must come from the owning
		// patch; out-of-domain cells must be boundary regions.
		for _, gr := range regions {
			gr.Region.ForEach(func(c IVec) {
				owner := l.PatchContaining(c)
				if owner == nil {
					if gr.Src != nil {
						t.Fatalf("cell %v outside domain attributed to %v", c, gr.Src)
					}
				} else if gr.Src == nil || gr.Src.ID != owner.ID {
					t.Fatalf("cell %v owned by %v but attributed to %v", c, owner, gr.Src)
				}
			})
		}
	}
}

func TestNeighboursCornerAndCenterCounts(t *testing.T) {
	l, _ := NewLayout(BoxFromSize(IV(0, 0, 0), IV(12, 12, 12)), IV(3, 3, 3))
	corner := l.PatchAt(IV(0, 0, 0))
	if got := len(l.Neighbours(corner, 1)); got != 7 {
		t.Errorf("corner neighbours = %d, want 7", got)
	}
	center := l.PatchAt(IV(1, 1, 1))
	if got := len(l.Neighbours(center, 1)); got != 26 {
		t.Errorf("center neighbours = %d, want 26", got)
	}
	// Paper layout 8x8x2: an interior patch has 17 neighbours.
	l2, _ := NewLayout(BoxFromSize(IV(0, 0, 0), IV(128, 128, 1024)), IV(8, 8, 2))
	inner := l2.PatchAt(IV(4, 4, 0))
	if got := len(l2.Neighbours(inner, 1)); got != 17 {
		t.Errorf("8x8x2 interior neighbours = %d, want 17", got)
	}
}

// Property: ghost regions never overlap the patch and always lie within the
// grown box, for random layouts and widths.
func TestPropertyGhostRegions(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		counts := IV(1+rng.Intn(3), 1+rng.Intn(3), 1+rng.Intn(3))
		cellsPer := IV(2+rng.Intn(4), 2+rng.Intn(4), 2+rng.Intn(4))
		dom := BoxFromSize(IV(0, 0, 0), counts.Mul(cellsPer))
		l, err := NewLayout(dom, counts)
		if err != nil {
			return false
		}
		width := 1 + rng.Intn(2)
		if width >= cellsPer.X || width >= cellsPer.Y || width >= cellsPer.Z {
			width = 1
		}
		p := l.Patch(rng.Intn(l.NumPatches()))
		var cells int64
		for _, gr := range l.GhostRegions(p, width) {
			if gr.Region.Intersects(p.Box) {
				return false
			}
			if !p.Box.Grow(width).ContainsBox(gr.Region) {
				return false
			}
			cells += gr.Region.NumCells()
		}
		return cells == p.Box.Grow(width).NumCells()-p.Box.NumCells()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSubtractBox(t *testing.T) {
	b := BoxFromSize(IV(0, 0, 0), IV(4, 4, 4))
	cut := BoxFromSize(IV(1, 1, 1), IV(2, 2, 2))
	parts := subtractBox(b, cut)
	var cells int64
	for _, p := range parts {
		cells += p.NumCells()
		if p.Intersects(cut) {
			t.Fatalf("part %v overlaps cut", p)
		}
	}
	if cells != b.NumCells()-cut.NumCells() {
		t.Fatalf("cells = %d", cells)
	}
	// Disjoint cut returns the box unchanged.
	if parts := subtractBox(b, BoxFromSize(IV(10, 10, 10), IV(1, 1, 1))); len(parts) != 1 || parts[0] != b {
		t.Fatalf("disjoint subtract = %v", parts)
	}
	// Full cut removes everything.
	if parts := subtractBox(b, b); parts != nil {
		t.Fatalf("full subtract = %v", parts)
	}
}

func TestLevelCellCenters(t *testing.T) {
	lv, err := NewUnitCubeLevel(IV(10, 20, 40), IV(1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	x, y, z := lv.CellCenter(IV(0, 0, 0))
	if x != 0.05 || y != 0.025 || z != 0.0125 {
		t.Errorf("first center = %v,%v,%v", x, y, z)
	}
	x, _, _ = lv.CellCenter(IV(9, 0, 0))
	if math.Abs(x-0.95) > 1e-12 {
		t.Errorf("last x center = %v", x)
	}
}

func TestTilingPaperTileShape(t *testing.T) {
	// 16x16x512 patch with 16x16x8 tiles: 64 tiles, one z slab each.
	l, _ := NewLayout(BoxFromSize(IV(0, 0, 0), IV(16, 16, 512)), IV(1, 1, 1))
	tl, err := NewTiling(l.Patch(0), IV(16, 16, 8))
	if err != nil {
		t.Fatal(err)
	}
	if tl.NumTiles() != 64 || tl.Counts != IV(1, 1, 64) {
		t.Fatalf("tiles = %d counts = %v", tl.NumTiles(), tl.Counts)
	}
	// The paper's working set: 41.3 KiB for a 16x16x8 tile with 1 ghost.
	ws := WorkingSetBytes(tl.Tile(IV(0, 0, 0)), 1)
	if ws != 18*18*10*8+16*16*8*8 {
		t.Fatalf("working set = %d", ws)
	}
	if float64(ws)/1024 > 64 {
		t.Fatalf("working set %d exceeds 64 KiB LDM", ws)
	}
}

func TestTilingClipsAtEdges(t *testing.T) {
	l, _ := NewLayout(BoxFromSize(IV(0, 0, 0), IV(20, 16, 8)), IV(1, 1, 1))
	tl, _ := NewTiling(l.Patch(0), IV(16, 16, 8))
	if tl.Counts != IV(2, 1, 1) {
		t.Fatalf("counts = %v", tl.Counts)
	}
	edge := tl.Tile(IV(1, 0, 0))
	if edge.Box.Size() != IV(4, 16, 8) {
		t.Fatalf("clipped tile size = %v", edge.Box.Size())
	}
}

func TestAssignZOneSlabPerCPE(t *testing.T) {
	l, _ := NewLayout(BoxFromSize(IV(0, 0, 0), IV(16, 16, 512)), IV(1, 1, 1))
	tl, _ := NewTiling(l.Patch(0), IV(16, 16, 8))
	assign := tl.AssignZ(64)
	for w, tiles := range assign {
		if len(tiles) != 1 {
			t.Fatalf("worker %d got %d tiles, want 1", w, len(tiles))
		}
	}
}

func TestAssignZCoversAllTilesOnce(t *testing.T) {
	l, _ := NewLayout(BoxFromSize(IV(0, 0, 0), IV(128, 128, 512)), IV(1, 1, 1))
	tl, _ := NewTiling(l.Patch(0), IV(16, 16, 8))
	assign := tl.AssignZ(64)
	seen := map[IVec]bool{}
	total := 0
	for _, tiles := range assign {
		for _, tile := range tiles {
			if seen[tile.Index] {
				t.Fatalf("tile %v assigned twice", tile.Index)
			}
			seen[tile.Index] = true
			total++
		}
	}
	if total != tl.NumTiles() {
		t.Fatalf("assigned %d of %d tiles", total, tl.NumTiles())
	}
}

// Property: AssignZ covers every tile exactly once for arbitrary worker
// counts and tile grids.
func TestPropertyAssignZPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		size := IV(8*(1+rng.Intn(4)), 8*(1+rng.Intn(4)), 8*(1+rng.Intn(16)))
		l, err := NewLayout(BoxFromSize(IV(0, 0, 0), size), IV(1, 1, 1))
		if err != nil {
			return false
		}
		tl, err := NewTiling(l.Patch(0), IV(8, 8, 8))
		if err != nil {
			return false
		}
		workers := 1 + rng.Intn(80)
		total := 0
		for _, tiles := range tl.AssignZ(workers) {
			total += len(tiles)
		}
		return total == tl.NumTiles()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
