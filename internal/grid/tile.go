package grid

import "fmt"

// Tile is one TiDA-style sub-block of a patch, sized so a kernel's working
// set fits in a CPE's 64 KB local data memory (the paper uses 16x16x8).
type Tile struct {
	Index IVec // tile coordinates within the patch (0..per-axis count-1)
	Box   Box  // cells covered (clipped to the patch at high edges)
}

// Tiling subdivides a patch into tiles of a nominal size. Tiles at the high
// edge of the patch are clipped when the patch size is not divisible by the
// tile size.
type Tiling struct {
	Patch    *Patch
	TileSize IVec
	Counts   IVec // number of tiles per axis
}

// NewTiling builds the tiling of patch p with the given nominal tile size.
func NewTiling(p *Patch, tileSize IVec) (*Tiling, error) {
	if !tileSize.AllPositive() {
		return nil, fmt.Errorf("grid: tile size must be positive, got %v", tileSize)
	}
	s := p.Box.Size()
	counts := IV(ceilDiv(s.X, tileSize.X), ceilDiv(s.Y, tileSize.Y), ceilDiv(s.Z, tileSize.Z))
	return &Tiling{Patch: p, TileSize: tileSize, Counts: counts}, nil
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// NumTiles returns the total tile count.
func (t *Tiling) NumTiles() int { return int(t.Counts.Volume()) }

// Tile returns the tile at tile coordinates idx.
func (t *Tiling) Tile(idx IVec) Tile {
	lo := t.Patch.Box.Lo.Add(idx.Mul(t.TileSize))
	hi := lo.Add(t.TileSize).Min(t.Patch.Box.Hi)
	return Tile{Index: idx, Box: Box{Lo: lo, Hi: hi}}
}

// Tiles returns all tiles in z-major order (x fastest).
func (t *Tiling) Tiles() []Tile {
	out := make([]Tile, 0, t.NumTiles())
	for tz := 0; tz < t.Counts.Z; tz++ {
		for ty := 0; ty < t.Counts.Y; ty++ {
			for tx := 0; tx < t.Counts.X; tx++ {
				out = append(out, t.Tile(IV(tx, ty, tz)))
			}
		}
	}
	return out
}

// AssignZ partitions the tiles among nWorkers CPEs by naturally splitting
// the tile index space along the z dimension, as the paper's CPE tile
// scheduler does: worker w receives every tile whose z slab index falls in
// the contiguous block [w*nz/n, (w+1)*nz/n). All tiles of one z slab go to
// the same worker; workers beyond the slab count receive nothing.
//
// When the patch has fewer z slabs than workers, trailing workers idle —
// exactly the situation that makes 16x16x512 the smallest sensible patch for
// 64 CPEs with 16x16x8 tiles (64 slabs, one per CPE).
func (t *Tiling) AssignZ(nWorkers int) [][]Tile {
	if nWorkers <= 0 {
		panic("grid: AssignZ needs at least one worker")
	}
	out := make([][]Tile, nWorkers)
	nz := t.Counts.Z
	perSlab := t.Counts.X * t.Counts.Y
	for w := 0; w < nWorkers; w++ {
		zlo := w * nz / nWorkers
		zhi := (w + 1) * nz / nWorkers
		if zhi <= zlo {
			continue
		}
		tiles := make([]Tile, 0, (zhi-zlo)*perSlab)
		for tz := zlo; tz < zhi; tz++ {
			for ty := 0; ty < t.Counts.Y; ty++ {
				for tx := 0; tx < t.Counts.X; tx++ {
					tiles = append(tiles, t.Tile(IV(tx, ty, tz)))
				}
			}
		}
		out[w] = tiles
	}
	return out
}

// WorkingSetBytes returns the bytes of CPE local memory a kernel needs for
// one tile: the ghosted input region plus the interior output region, both
// in float64 (the paper's u and u_new working set; 41.3 KiB for a 16x16x8
// tile with one ghost layer).
func WorkingSetBytes(tile Tile, ghost int) int64 {
	in := tile.Box.Grow(ghost).NumCells()
	out := tile.Box.NumCells()
	return (in + out) * 8
}
