// Package grid provides the structured-mesh substrate of the runtime:
// integer index vectors, axis-aligned cell boxes, patches, regular patch
// layouts with neighbour computation, and TiDA-style tiles sized for the
// SW26010 scratch-pad memory.
//
// The conventions follow Uintah's patch-centric discretisation: the
// computational grid is a single box of cells subdivided into equally sized
// patches; each cell-centred variable lives on a patch, optionally with a
// margin of ghost cells replicated from neighbouring patches or filled from
// boundary conditions.
package grid

import "fmt"

// IVec is a 3-D integer index vector (cell coordinates or extents).
type IVec struct {
	X, Y, Z int
}

// IV is shorthand for constructing an IVec.
func IV(x, y, z int) IVec { return IVec{x, y, z} }

// Add returns a+b.
func (a IVec) Add(b IVec) IVec { return IVec{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }

// Sub returns a-b.
func (a IVec) Sub(b IVec) IVec { return IVec{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }

// Mul returns the componentwise product a*b.
func (a IVec) Mul(b IVec) IVec { return IVec{a.X * b.X, a.Y * b.Y, a.Z * b.Z} }

// Div returns the componentwise quotient a/b (truncated like Go's /).
func (a IVec) Div(b IVec) IVec { return IVec{a.X / b.X, a.Y / b.Y, a.Z / b.Z} }

// Scale returns a*s.
func (a IVec) Scale(s int) IVec { return IVec{a.X * s, a.Y * s, a.Z * s} }

// Min returns the componentwise minimum.
func (a IVec) Min(b IVec) IVec {
	return IVec{min(a.X, b.X), min(a.Y, b.Y), min(a.Z, b.Z)}
}

// Max returns the componentwise maximum.
func (a IVec) Max(b IVec) IVec {
	return IVec{max(a.X, b.X), max(a.Y, b.Y), max(a.Z, b.Z)}
}

// Volume returns X*Y*Z. Negative components produce meaningless results;
// callers guard with AllPositive when needed.
func (a IVec) Volume() int64 { return int64(a.X) * int64(a.Y) * int64(a.Z) }

// AllPositive reports whether every component is > 0.
func (a IVec) AllPositive() bool { return a.X > 0 && a.Y > 0 && a.Z > 0 }

// AllGE reports whether a >= b componentwise.
func (a IVec) AllGE(b IVec) bool { return a.X >= b.X && a.Y >= b.Y && a.Z >= b.Z }

// AllLE reports whether a <= b componentwise.
func (a IVec) AllLE(b IVec) bool { return a.X <= b.X && a.Y <= b.Y && a.Z <= b.Z }

// Comp returns the axis-th component (0=X, 1=Y, 2=Z).
func (a IVec) Comp(axis int) int {
	switch axis {
	case 0:
		return a.X
	case 1:
		return a.Y
	case 2:
		return a.Z
	}
	panic(fmt.Sprintf("grid: bad axis %d", axis))
}

// WithComp returns a copy with the axis-th component replaced by v.
func (a IVec) WithComp(axis, v int) IVec {
	switch axis {
	case 0:
		a.X = v
	case 1:
		a.Y = v
	case 2:
		a.Z = v
	default:
		panic(fmt.Sprintf("grid: bad axis %d", axis))
	}
	return a
}

// String formats as "XxYxZ", matching the paper's problem-size notation.
func (a IVec) String() string { return fmt.Sprintf("%dx%dx%d", a.X, a.Y, a.Z) }
