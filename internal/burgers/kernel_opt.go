package burgers

import (
	"sunuintah/internal/field"
	"sunuintah/internal/grid"
)

// The optimised kernel of the hot-path overhaul: phi depends only on one
// coordinate and the time level, so the three coefficient profiles are
// precomputed once per region into contiguous slices — O(nx+ny+nz)
// exponentials instead of O(nx*ny*nz) — with the exponentials evaluated
// in batched, monomorphically dispatched spans (FastExpSlice / the IEEE
// library; no per-cell function-pointer call). The stencil loop is then a
// straight-line fused update indexing both fields' raw storage directly.
//
// Every per-element float expression is kept exactly as in advance/Phi,
// so the results are bit-identical to the reference kernels (the cost
// model is unaffected either way: the simulated flop counters charge per
// cell regardless of hoisting).

// Advance applies one Burgers update over region with the monomorphic
// fused kernel — the functional body the runtime executes. Exported for
// external benchmarks and the perf-regression gate (cmd/benchgate).
func Advance(uOld, uNew *field.Cell, region grid.Box, lv *grid.Level, t, dt float64, e Exp) {
	advanceOpt(uOld, uNew, region, lv, t, dt, e)
}

// phiFillAxis fills dst[i-lo] = phi(coord(i), t) for i in [lo, lo+len),
// where coord(i) = origin + (i+0.5)*h. sa, sb, sc are caller scratch of
// at least len(dst) values.
func phiFillAxis(dst []float64, lo int, origin, h, t float64, e Exp, sa, sb, sc []float64) {
	n := len(dst)
	sa, sb, sc = sa[:n], sb[:n], sc[:n]
	for idx := range dst {
		x := origin + (float64(lo+idx)+0.5)*h
		a := -0.05 * (x - 0.5 + 4.95*t) / Nu
		b := -0.25 * (x - 0.5 + 0.75*t) / Nu
		c := -0.5 * (x - 0.375) / Nu
		// Normalise by the largest exponent so one exponential becomes
		// e^0=1, exactly as Phi does.
		m := a
		if b > m {
			m = b
		}
		if c > m {
			m = c
		}
		sa[idx] = a - m
		sb[idx] = b - m
		sc[idx] = c - m
	}
	e.expSlice(sa, sa)
	e.expSlice(sb, sb)
	e.expSlice(sc, sc)
	for idx := range dst {
		ea, eb, ec := sa[idx], sb[idx], sc[idx]
		dst[idx] = (0.1*ea + 0.5*eb + ec) / (ea + eb + ec)
	}
}

// advanceOpt computes the Burgers update over region like advance, with
// hoisted phi profiles and a fused stencil. Bit-identical to advance with
// the same exponential library.
func advanceOpt(uOld, uNew *field.Cell, region grid.Box, lv *grid.Level, t, dt float64, e Exp) {
	if region.Empty() {
		return
	}
	sz := region.Size()
	nx, ny, nz := sz.X, sz.Y, sz.Z
	nmax := nx
	if ny > nmax {
		nmax = ny
	}
	if nz > nmax {
		nmax = nz
	}
	phix := field.GetSlice(nx)
	phiy := field.GetSlice(ny)
	phiz := field.GetSlice(nz)
	sa := field.GetSlice(nmax)
	sb := field.GetSlice(nmax)
	sc := field.GetSlice(nmax)
	phiFillAxis(phix, region.Lo.X, lv.Origin[0], lv.Spacing[0], t, e, sa, sb, sc)
	phiFillAxis(phiy, region.Lo.Y, lv.Origin[1], lv.Spacing[1], t, e, sa, sb, sc)
	phiFillAxis(phiz, region.Lo.Z, lv.Origin[2], lv.Spacing[2], t, e, sa, sb, sc)

	dx, dy, dz := lv.Spacing[0], lv.Spacing[1], lv.Spacing[2]
	rdx, rdy, rdz := 1/dx, 1/dy, 1/dz
	rdx2, rdy2, rdz2 := rdx*rdx, rdy*rdy, rdz*rdz
	ys, zs := uOld.Strides()
	in := uOld.Data()
	out := uNew.Data()
	for k := region.Lo.Z; k < region.Hi.Z; k++ {
		pz := phiz[k-region.Lo.Z]
		for j := region.Lo.Y; j < region.Hi.Y; j++ {
			py := phiy[j-region.Lo.Y]
			base := uOld.Index(grid.IV(region.Lo.X, j, k))
			obase := uNew.Index(grid.IV(region.Lo.X, j, k))
			for ii := 0; ii < nx; ii++ {
				idx := base + ii
				px := phix[ii]
				u := in[idx]
				uDudx := px * (in[idx-1] - u) * rdx
				uDudy := py * (in[idx-ys] - u) * rdy
				uDudz := pz * (in[idx-zs] - u) * rdz
				d2udx2 := (-2*u + in[idx-1] + in[idx+1]) * rdx2
				d2udy2 := (-2*u + in[idx-ys] + in[idx+ys]) * rdy2
				d2udz2 := (-2*u + in[idx-zs] + in[idx+zs]) * rdz2
				du := (uDudx + uDudy + uDudz) + Nu*(d2udx2+d2udy2+d2udz2)
				out[obase+ii] = u + dt*du
			}
		}
	}

	field.PutSlice(sc)
	field.PutSlice(sb)
	field.PutSlice(sa)
	field.PutSlice(phiz)
	field.PutSlice(phiy)
	field.PutSlice(phix)
}
