package burgers

import (
	"strings"
	"testing"

	"sunuintah/internal/core"
	"sunuintah/internal/field"
	"sunuintah/internal/grid"
	"sunuintah/internal/scheduler"
	"sunuintah/internal/taskgraph"
)

func vectorProblem(cells grid.IVec) (core.Problem, *VectorSystem) {
	vs := NewVectorSystem()
	dx := 1.0 / float64(cells.X)
	dy := 1.0 / float64(cells.Y)
	dz := 1.0 / float64(cells.Z)
	return core.Problem{
		Tasks:   []*taskgraph.Task{vs.NewVectorAdvanceTask()},
		Initial: vs.Initial(),
		Dt:      0.5 * StableDt(dx, dy, dz), // extra margin for the coupling
	}, vs
}

func TestVectorWorkingSetForcesSmallerTiles(t *testing.T) {
	// Six fields per tile: the paper's 16x16x8 tile does not fit the LDM.
	ws16 := int64(3*(18*18*10)+3*(16*16*8)) * 8
	if ws16 <= 64*1024 {
		t.Fatalf("expected 16x16x8 six-field working set to exceed 64 KiB, got %d", ws16)
	}
	ws8 := int64(3*(10*10*10)+3*(8*8*8)) * 8
	if ws8 > 64*1024 {
		t.Fatalf("8x8x8 six-field working set %d should fit", ws8)
	}

	// Patches of 16x16x8 cells so the nominal tile is not clipped smaller.
	prob, _ := vectorProblem(grid.IV(32, 32, 16))
	cfg := core.Config{
		Cells:       grid.IV(32, 32, 16),
		PatchCounts: grid.IV(2, 2, 2),
		NumCGs:      2,
		Scheduler: scheduler.Config{Mode: scheduler.ModeAsync, Functional: true,
			TileSize: grid.IV(16, 16, 8)},
	}
	s, err := core.NewSimulation(cfg, prob)
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Run(1)
	if err == nil || !strings.Contains(err.Error(), "LDM") {
		t.Fatalf("16x16x8 tile should fail the LDM check, got %v", err)
	}
}

func TestVectorDistributedMatchesSerial(t *testing.T) {
	cells := grid.IV(16, 16, 16)
	lv, _ := grid.NewUnitCubeLevel(cells, grid.IV(2, 2, 2))
	prob, vs := vectorProblem(cells)
	const steps = 3
	ref := vs.VectorSerialSolve(lv, steps, prob.Dt)

	for _, mode := range []scheduler.Mode{scheduler.ModeSync, scheduler.ModeAsync} {
		cfg := core.Config{
			Cells:       cells,
			PatchCounts: grid.IV(2, 2, 2),
			NumCGs:      4,
			Scheduler: scheduler.Config{Mode: mode, Functional: true,
				TileSize: VectorTileSize},
		}
		s, err := core.NewSimulation(cfg, prob)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(steps); err != nil {
			t.Fatal(err)
		}
		for i, l := range vs.Labels() {
			got, err := s.GatherField(l)
			if err != nil {
				t.Fatal(err)
			}
			if d := field.MaxAbsDiff(got, ref[i], lv.Layout.Domain); d > 1e-13 {
				t.Fatalf("%v component %d differs from serial by %g", mode, i, d)
			}
		}
	}
}

func TestVectorStaysBounded(t *testing.T) {
	cells := grid.IV(16, 16, 16)
	lv, _ := grid.NewUnitCubeLevel(cells, grid.IV(2, 2, 2))
	prob, vs := vectorProblem(cells)
	ref := vs.VectorSerialSolve(lv, 20, prob.Dt)
	for comp, f := range ref {
		maxAbs := field.MaxAbs(f, lv.Layout.Domain)
		if maxAbs > 1.5 || maxAbs == 0 {
			t.Fatalf("component %d max |q| = %v after 20 steps", comp, maxAbs)
		}
	}
}

func TestVectorCountsThreeComponents(t *testing.T) {
	prob, _ := vectorProblem(grid.IV(16, 16, 16))
	cfg := core.Config{
		Cells:       grid.IV(16, 16, 16),
		PatchCounts: grid.IV(2, 2, 2),
		NumCGs:      1,
		Scheduler: scheduler.Config{Mode: scheduler.ModeAsync,
			TileSize: VectorTileSize},
	}
	s, err := core.NewSimulation(cfg, prob)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	// DMA traffic: per tile, three ghosted inputs and three outputs.
	cellsTotal := int64(16 * 16 * 16)
	wantFlops := int64(vectorFlopsPerCell) * cellsTotal
	if res.Counters.Flops != wantFlops {
		t.Fatalf("flops = %d, want %d", res.Counters.Flops, wantFlops)
	}
	tilesPerPatch := int64(1) // 8x8x8 patch = one 8x8x8 tile
	wantDMA := 8 * tilesPerPatch * (3*10*10*10 + 3*8*8*8) * 8
	if res.Counters.DMABytes != wantDMA {
		t.Fatalf("DMA bytes = %d, want %d", res.Counters.DMABytes, wantDMA)
	}
}
