// Package burgers implements the paper's model fluid-flow problem
// (Section III): the 3-D linearised Burgers equation
//
//	du/dt = -phi(x,t) du/dx - phi(y,t) du/dy - phi(z,t) du/dz + nu*Lap(u)
//
// discretised with backward differences for first derivatives, central
// differences for second derivatives, and forward Euler in time, where
// phi(x,t) is the three-wave solution of the 1-D Burgers equation. The
// manufactured solution u(x,y,z,t) = phi(x,t) phi(y,t) phi(z,t) supplies
// the initial and boundary conditions and the correctness reference.
//
// The package provides the scalar and 4-wide "SIMD" kernels of Section VI,
// the fast non-IEEE exponential of Section VI-C, and the counted
// floating-point costs that feed the simulated hardware FLOP counters.
package burgers

import "math"

// Exp selects an exponential implementation (Section VI-C: Sunway emulates
// exp in software with an IEEE-conforming library and a faster, slightly
// inaccurate one).
type Exp int

// Exponential library choices.
const (
	// FastExpLib is the fast non-IEEE software exponential (the paper's
	// choice: "as the IEEE conforming library proved to be slow in tests,
	// the fast library was used").
	FastExpLib Exp = iota
	// IEEEExpLib is the IEEE-754-conforming (slow) library.
	IEEEExpLib
)

// Counted floating-point operations per evaluation, as the SW26010
// performance counters would see them (divides count as one operation).
const (
	// FastExpFlops: argument reduction (2) + Cody-Waite remainder (4) +
	// degree-10 Horner polynomial (20).
	FastExpFlops = 26
	// IEEEExpFlops approximates the conforming library's extra-precision
	// arithmetic and special-case handling.
	IEEEExpFlops = 40
	// IEEEExpWeight is the compute-time penalty of the conforming library
	// relative to the fast one, applied to the exponential share of the
	// kernel cost model.
	IEEEExpWeight = 2.5
)

// Exponential reduction constants (Cody–Waite split of ln 2).
const (
	invLn2 = 1.4426950408889634
	ln2Hi  = 6.93147180369123816490e-01
	ln2Lo  = 1.90821492927058770002e-10
)

// FastExp is the fast, non-IEEE software exponential: range reduction
// around ln 2 followed by a degree-10 Taylor polynomial. Relative error is
// below 3e-13 over the normal range — the "some inaccuracy" the paper
// accepts for speed. Overflow and underflow saturate without setting IEEE
// flags.
func FastExp(x float64) float64 {
	switch {
	case x != x: // NaN
		return x
	case x > 709.0:
		return math.Inf(1)
	case x < -745.0:
		return 0
	}
	n := math.Floor(x*invLn2 + 0.5)
	r := x - n*ln2Hi - n*ln2Lo
	// exp(r) for |r| <= ln2/2 by Horner's rule on the Taylor series.
	p := 1.0 / 3628800.0
	p = p*r + 1.0/362880.0
	p = p*r + 1.0/40320.0
	p = p*r + 1.0/5040.0
	p = p*r + 1.0/720.0
	p = p*r + 1.0/120.0
	p = p*r + 1.0/24.0
	p = p*r + 1.0/6.0
	p = p*r + 0.5
	p = p*r + 1.0
	p = p*r + 1.0
	return math.Ldexp(p, int(n))
}

// FastExpSlice evaluates dst[i] = FastExp(src[i]) over contiguous spans,
// unrolled by the paper's SIMD width of 4 (Section VI-B/VI-C: the fast
// exponential vectorises because its range reduction and polynomial are
// branch-free on the normal range). Each lane is exactly FastExp, so the
// results are bit-identical to per-element calls. dst and src must have
// equal length (dst may alias src).
func FastExpSlice(dst, src []float64) {
	const width = 4
	_ = dst[:len(src)]
	i := 0
	for ; i+width <= len(src); i += width {
		dst[i+0] = FastExp(src[i+0])
		dst[i+1] = FastExp(src[i+1])
		dst[i+2] = FastExp(src[i+2])
		dst[i+3] = FastExp(src[i+3])
	}
	for ; i < len(src); i++ {
		dst[i] = FastExp(src[i])
	}
}

// ieeeExpSlice is the batched IEEE-library evaluation.
func ieeeExpSlice(dst, src []float64) {
	_ = dst[:len(src)]
	for i, x := range src {
		dst[i] = math.Exp(x)
	}
}

// expSlice dispatches one batched exponential evaluation for the library.
// The choice is made once per span — never per cell — which is what makes
// the monomorphic kernels free of per-element indirect calls.
func (e Exp) expSlice(dst, src []float64) {
	if e == IEEEExpLib {
		ieeeExpSlice(dst, src)
		return
	}
	FastExpSlice(dst, src)
}

// ExpFunc returns the chosen library's evaluation function.
func (e Exp) ExpFunc() func(float64) float64 {
	if e == IEEEExpLib {
		return math.Exp
	}
	return FastExp
}

// Flops returns the counted operations per exponential for the library.
func (e Exp) Flops() float64 {
	if e == IEEEExpLib {
		return IEEEExpFlops
	}
	return FastExpFlops
}

func (e Exp) String() string {
	if e == IEEEExpLib {
		return "ieee"
	}
	return "fast"
}
